package plurality

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// This file pins the JSON wire format the serving layer (internal/server,
// cmd/pluralityd) speaks: stable snake_case field names on Spec and its
// nested option structs, Summary, SweepCell and BenchReport, and lossless
// round-trips for every serializable field.

// TestSpecJSONRoundTrip marshals a fully populated Spec and checks the
// decode reproduces it exactly (runtime-only fields excepted, which must
// not appear on the wire at all).
func TestSpecJSONRoundTrip(t *testing.T) {
	in := Spec{
		N: 1200, K: 5, Alpha: 2.5, Seed: 99, Eps: 0.01,
		MaxSteps: 77, MaxTime: 123.5, RecordEvery: 2,
		Latency:           LatencySpec{Kind: "erlang", Mean: 1.5, Shape: 3},
		Topology:          TopologySpec{Kind: TopologyTorus, Rows: 30, Cols: 40, GraphSeed: 4},
		Adversary:         AdversarySpec{Kind: AdversaryCrash, Fraction: 0.2, Rate: 1.5, At: 3, Seed: 8},
		DiscardTrajectory: true,
		Checkpoint:        CheckpointSpec{SnapshotAt: 10, Halt: true},
		Sync:              SyncOptions{Gamma: 0.4, TheoreticalSchedule: true},
		Async:             AsyncOptions{ClusterTargetSize: 64},
		Baseline:          BaselineOptions{Sequential: true},
		Observer:          ObserverFunc(func(TrajectoryPoint) {}), // must not serialize
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"n":`, `"k":`, `"alpha":`, `"seed":`, `"eps":`,
		`"max_steps":`, `"max_time":`, `"record_every":`, `"latency":`,
		`"topology":`, `"adversary":`, `"discard_trajectory":`, `"checkpoint":`,
		`"snapshot_at":`, `"graph_seed":`, `"fraction":`, `"gamma":`,
		`"theoretical_schedule":`, `"cluster_target_size":`, `"sequential":`} {
		if !strings.Contains(string(b), key) {
			t.Errorf("wire form missing %s: %s", key, b)
		}
	}
	if strings.Contains(string(b), "Observer") || strings.Contains(string(b), "Sink") {
		t.Fatalf("runtime-only field leaked onto the wire: %s", b)
	}
	var out Spec
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	in.Observer = nil // not serializable by design
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip lost data:\n in: %+v\nout: %+v", in, out)
	}
}

// TestSpecJSONOmitsDefaults checks a zero-knob Spec stays terse on the
// wire: optional fields are omitted rather than spelled as zeros.
func TestSpecJSONOmitsDefaults(t *testing.T) {
	b, err := json.Marshal(Spec{N: 100, K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"n":100,"k":2,"seed":1}`
	if string(b) != want {
		t.Fatalf("zero-knob spec marshals as %s, want %s", b, want)
	}
}

// TestSummaryAndSweepCellJSONRoundTrip pins the per-cell wire format — the
// NDJSON lines a pluralityd sweep stream is made of.
func TestSummaryAndSweepCellJSONRoundTrip(t *testing.T) {
	in := SweepCell{
		N: 1000, K: 4, Alpha: 2, Topology: "torus(25x40)", Adversary: "crash(f=0.2)",
		Metrics: map[string]Summary{
			"duration": {N: 5, Mean: 12.5, SE: 0.25, Min: 11, Max: 14},
		},
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"n":`, `"k":`, `"alpha":`, `"topology":`,
		`"adversary":`, `"metrics":`, `"mean":`, `"se":`, `"min":`, `"max":`} {
		if !strings.Contains(string(b), key) {
			t.Errorf("wire form missing %s: %s", key, b)
		}
	}
	var out SweepCell
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip lost data:\n in: %+v\nout: %+v", in, out)
	}
}

// TestBenchReportJSONRoundTrip pins the benchmark report wire format.
func TestBenchReportJSONRoundTrip(t *testing.T) {
	in := BenchReport{
		Protocol: "leader", Topology: "complete", N: 1000, K: 4, Alpha: 2, Seed: 1,
		Events: 123456, WallSeconds: 1.5, EventsPerSec: 82304,
		AllocBytes: 1 << 20, Allocs: 1000, BytesPerEvent: 8.5, AllocsPerEvent: 0.008,
		PeakHeapBytes: 1 << 22, GoMaxProcs: 8, Workers: 4, Reps: 3,
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"events_per_sec":`) || !strings.Contains(string(b), `"wall_seconds":`) {
		t.Fatalf("wire form missing snake_case keys: %s", b)
	}
	var out BenchReport
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip lost data:\n in: %+v\nout: %+v", in, out)
	}
}
