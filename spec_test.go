package plurality

import (
	"math"
	"strings"
	"testing"
)

// TestSpecValidate is the table-driven contract of the centralized input
// validation every protocol shares.
func TestSpecValidate(t *testing.T) {
	valid := Spec{N: 100, K: 4, Alpha: 2}
	cases := []struct {
		name    string
		mutate  func(*Spec)
		wantErr string // substring; "" means valid
	}{
		{"baseline valid", func(s *Spec) {}, ""},
		{"unbiased alpha zero", func(s *Spec) { s.Alpha = 0 }, ""},
		{"alpha exactly one", func(s *Spec) { s.Alpha = 1 }, ""},
		{"n too small", func(s *Spec) { s.N = 1 }, "need N >= 2"},
		{"n negative", func(s *Spec) { s.N = -5 }, "need N >= 2"},
		{"k zero", func(s *Spec) { s.K = 0 }, "need K >= 1"},
		{"k beyond packed word", func(s *Spec) { s.K = MaxOpinions + 1 }, "MaxOpinions"},
		{"k at packed ceiling", func(s *Spec) {
			// MaxOpinions itself is representable: opinions occupy exactly
			// the 24 low bits of the per-node state word.
			s.K = MaxOpinions
		}, ""},
		{"alpha below one", func(s *Spec) { s.Alpha = 0.5 }, "Alpha"},
		{"alpha ignored with assignment", func(s *Spec) {
			s.Alpha = 0.5
			s.N = 4
			s.Assignment = []int{0, 1, 2, 3}
		}, ""},
		{"assignment short", func(s *Spec) { s.Assignment = []int{0, 1} }, "assignment length"},
		{"assignment out of range", func(s *Spec) {
			s.N = 2
			s.Assignment = []int{0, 7}
		}, "outside [0, 4)"},
		{"assignment negative value", func(s *Spec) {
			s.N = 2
			s.Assignment = []int{0, -1}
		}, "outside [0, 4)"},
		{"eps negative", func(s *Spec) { s.Eps = -0.1 }, "Eps"},
		{"eps one", func(s *Spec) { s.Eps = 1 }, "Eps"},
		{"eps just below one", func(s *Spec) { s.Eps = 0.999 }, ""},
		{"negative max steps", func(s *Spec) { s.MaxSteps = -1 }, "MaxSteps"},
		{"negative max time", func(s *Spec) { s.MaxTime = -2 }, "MaxTime"},
		{"negative record every", func(s *Spec) { s.RecordEvery = -1 }, "RecordEvery"},
		{"bad latency kind", func(s *Spec) { s.Latency.Kind = "bogus" }, "latency kind"},
		{"negative latency mean", func(s *Spec) { s.Latency.Mean = -1 }, "latency mean"},
		{"gamma too large", func(s *Spec) { s.Sync.Gamma = 1.5 }, "Gamma"},
		{"gamma valid", func(s *Spec) { s.Sync.Gamma = 0.25 }, ""},
		{"negative cluster size", func(s *Spec) { s.Async.ClusterTargetSize = -3 }, "ClusterTargetSize"},
		{"alpha NaN", func(s *Spec) { s.Alpha = math.NaN() }, "Alpha"},
		{"alpha Inf", func(s *Spec) { s.Alpha = math.Inf(1) }, "Alpha"},
		{"eps NaN", func(s *Spec) { s.Eps = math.NaN() }, "Eps"},
		{"max time NaN", func(s *Spec) { s.MaxTime = math.NaN() }, "MaxTime"},
		{"record every NaN", func(s *Spec) { s.RecordEvery = math.NaN() }, "RecordEvery"},
		{"gamma NaN", func(s *Spec) { s.Sync.Gamma = math.NaN() }, "Gamma"},
		{"latency mean NaN", func(s *Spec) { s.Latency.Mean = math.NaN() }, "latency mean"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := valid
			tc.mutate(&spec)
			err := spec.validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("no error, want one mentioning %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestValidationIsSharedByEveryProtocol runs one representative invalid
// spec through every registered protocol: the error must come from the
// shared validator, not from per-engine ad-hoc checks.
func TestValidationIsSharedByEveryProtocol(t *testing.T) {
	for _, name := range Protocols() {
		if _, err := Run(nil, name, Spec{N: 1, K: 2}); err == nil ||
			!strings.Contains(err.Error(), "need N >= 2") {
			t.Errorf("%s: error %v, want the shared N >= 2 message", name, err)
		}
		if _, err := Run(nil, name, Spec{N: 100, K: 2, Eps: 2}); err == nil ||
			!strings.Contains(err.Error(), "Eps") {
			t.Errorf("%s: error %v, want the shared Eps message", name, err)
		}
	}
}

func TestRecordEveryRounds(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want int
	}{{0, 0}, {0.2, 1}, {1, 1}, {1.6, 2}, {8, 8}} {
		s := Spec{RecordEvery: tc.in}
		if got := s.recordEveryRounds(); got != tc.want {
			t.Errorf("recordEveryRounds(%v) = %d, want %d", tc.in, got, tc.want)
		}
	}
}
