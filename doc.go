// Package plurality is a Go implementation of the generation-based plurality
// consensus protocols of Bankhamer, Elsässer, Kaaser and Krnc, "Positive
// Aging Admits Fast Asynchronous Plurality Consensus" (PODC 2020;
// arXiv:1806.02596).
//
// n nodes each hold one of k opinions; the goal is that (almost) all nodes
// adopt the initially most frequent opinion, fast, using only tiny local
// interactions. The package implements the paper's three protocols —
// synchronous (Algorithm 1), asynchronous with a designated leader
// (Algorithms 2–3) and fully decentralized with emergent cluster leaders
// (Algorithms 4–5) — plus the classical baselines they are compared against
// (pull voting, two-choices, 3-majority, undecided-state dynamics).
//
// Asynchronous protocols run on a deterministic discrete-event simulation of
// the paper's communication model: a rate-1 Poisson clock per node and a
// random latency per opened channel (exponential with rate λ in the paper,
// generalizable here to constant, uniform or Erlang "positively aging"
// latencies). Every run is reproducible from its Seed.
//
// Quick start:
//
//	res, err := plurality.RunSynchronous(plurality.SyncConfig{
//		N: 100_000, K: 8, Alpha: 1.5, Seed: 1,
//	})
//	if err != nil { ... }
//	fmt.Println(res.Winner, res.ConsensusTime)
//
// See the examples/ directory for complete programs and cmd/experiments for
// the harness that regenerates the paper's figures and claims.
package plurality
