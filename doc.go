// Package plurality is a Go implementation of the generation-based plurality
// consensus protocols of Bankhamer, Elsässer, Kaaser and Krnc, "Positive
// Aging Admits Fast Asynchronous Plurality Consensus" (PODC 2020;
// arXiv:1806.02596).
//
// n nodes each hold one of k opinions; the goal is that (almost) all nodes
// adopt the initially most frequent opinion, fast, using only tiny local
// interactions. The package implements the paper's three protocols —
// synchronous (Algorithm 1), asynchronous with a designated leader
// (Algorithms 2–3) and fully decentralized with emergent cluster leaders
// (Algorithms 4–5) — plus the classical baselines they are compared against
// (pull voting, two-choices, 3-majority, undecided-state dynamics).
//
// Every protocol lives behind a single registry keyed by name: Protocols()
// lists the available names and Run executes one of them under a unified
// Spec:
//
//	res, err := plurality.Run(ctx, "sync", plurality.Spec{
//		N: 100_000, K: 8, Alpha: 1.5, Seed: 1,
//	})
//	if err != nil { ... }
//	fmt.Println(res.Winner, res.ConsensusTime)
//
// Run honours context cancellation and deadlines promptly, so callers can
// bound a stochastic run by wall-clock time. Spec.Observer streams
// trajectory snapshots as they are recorded, and Spec.DiscardTrajectory
// keeps recording memory O(1) — the combination that makes million-node
// runs affordable. Additional protocols (new dynamics, new schedulers) can
// be added with Register and are then served by Run, the CLIs and the sweep
// layer without further wiring.
//
// For batches, RunMany replicates one spec across seeds in parallel and
// Sweep runs a protocol over an (n, k, α, topology) factor grid with
// aggregated metrics, renderable as a table or CSV.
//
// # Checkpoint and restore
//
// Every built-in protocol can snapshot its complete simulator state
// mid-flight and resume it bit-exactly. Spec.Checkpoint requests a capture
// at a virtual time (or round); the Snapshot arrives through the
// CheckpointSpec.Sink observer and on Result.Snapshot, encodes to one
// self-describing versioned blob (Snapshot.Encode / DecodeSnapshot), and
// continues through Resume — the resumed Result is identical to the one an
// uninterrupted run would have produced. Snapshots are also the warm-start
// primitive: RunBatchFrom fans a shared prefix out into deterministic
// divergent futures (ResumeOptions.Perturb), Sweep's WarmStart aggregates
// them, and ResumeOptions.MaxTime extends a timed-out run past its
// original horizon — the workflows behind long-horizon tail studies and
// time-travel debugging (see examples/timetravel).
//
// Every protocol samples its interaction partners through a pluggable
// topology (Spec.Topology): the default complete graph — the paper's model,
// byte-identical to earlier releases for the same seed and free of
// per-sample allocations — or a ring, torus, random regular graph or
// Erdős–Rényi graph (Topologies() lists the kinds). The paper's theorems
// cover the complete graph only; the sparse kinds open the general-graph
// regime of the related literature.
//
// Orthogonally, Spec.Adversary injects faults (Adversaries() lists the
// kinds): crash or crash/recovery churn of a node fraction, message delays
// bounded by the run's edge-latency model, message drops, and a Byzantine
// minority lying about its opinion. The paper's analysis assumes the honest
// setting — adversarial runs measure degradation, with actions tallied as
// adv_* entries in Result.Stats. Adversarial randomness lives in its own
// generator (AdversarySpec.Seed), so honest runs are byte-identical whether
// or not the subsystem exists, and adversarial runs snapshot and resume
// bit-exactly like honest ones. Sweep takes an Adversaries axis; protocols
// without message latency reject the delay kind at validation.
//
// Asynchronous protocols run on a deterministic discrete-event simulation of
// the paper's communication model: a rate-1 Poisson clock per node and a
// random latency per opened channel (exponential with rate λ in the paper,
// generalizable here to constant, uniform or Erlang "positively aging"
// latencies). Every run is reproducible from its Seed: the same (protocol,
// Spec) pair yields an identical Result.
//
// # Determinism under parallel batching
//
// The determinism guarantee extends to every batch entry point. A single
// run executes events in (virtual time, insertion sequence) order on a
// single goroutine; all randomness derives from Spec.Seed through named
// splittable RNG streams. RunMany, RunBatch and Sweep shard replications
// across a bounded worker pool, but each replication derives its own seed
// (Seed + i for batches, a fixed per-replication offset for sweeps), owns
// its entire simulator state, and writes an index-addressed result slot —
// so the returned slice (and every aggregated sweep table) is bit-identical
// for every worker count and goroutine interleaving, including workers=1.
// The worker bound therefore only trades wall-clock time against peak
// memory (each in-flight replication holds one simulator). Scale is bounded
// by MaxNodes (the event kernel addresses nodes as int32); steady-state
// event scheduling allocates nothing, which is what makes n = 10⁶
// asynchronous runs seconds-scale — see Bench and BENCH_PR3.json for the
// measured trajectory.
//
// # Serving and canonical spec identity
//
// Spec.CanonicalBytes renders a Spec as a version-tagged canonical byte
// encoding: defaults the engines are documented to fold are folded, fields
// with no wire meaning are cleared, and the rest is laid out positionally —
// so two Specs encode identically exactly when the engine layer treats
// them identically, and equal encodings imply equal Results. That makes
// the encoding a correct content-address for simulation work, which is
// what cmd/pluralityd (internal/server) builds on: an HTTP daemon that
// accepts runs and sweeps as JSON, executes them on a bounded pool with
// admission control, streams sweep cells as NDJSON as they complete, caches
// every finished job under its canonical key, and — given a store
// directory — checkpoints long jobs so a restart resumes them bit-exactly.
// The wire forms of Spec, Summary, SweepCell and BenchReport are pinned by
// stable snake_case JSON tags.
//
// See the examples/ directory for complete programs, cmd/experiments for
// the harness that regenerates the paper's figures and claims,
// ARCHITECTURE.md for the layer map and the invariants behind these
// guarantees, and TESTING.md for the golden-digest workflow that pins
// them.
package plurality
