// Chaos: the same consensus instance under increasingly hostile conditions.
// The paper's theorems assume an honest world — no failures, benign Poisson
// scheduling; this example measures what each protocol's speed and accuracy
// cost when that world breaks. One Sweep per protocol walks the adversary
// axis from honest through crash-churn (a fifth of the fleet toggling
// between dead and alive) to message loss, and prints how consensus time
// degrades and how often the initial plurality still wins. The adversary is
// one Spec field; nothing else changes — and honest cells are byte-identical
// to runs without the subsystem.
package main

import (
	"context"
	"fmt"
	"log"

	"plurality"
)

func main() {
	const (
		n     = 2000
		k     = 3
		alpha = 2.0
		reps  = 5
	)
	adversaries := []plurality.AdversarySpec{
		{}, // honest: the paper's model
		{Kind: plurality.AdversaryCrash, Fraction: 0.2},          // one-shot fail-stop
		{Kind: plurality.AdversaryCrash, Fraction: 0.2, Rate: 2}, // churn
		{Kind: plurality.AdversaryDrop, Fraction: 0.2},
		{Kind: plurality.AdversaryDrop, Fraction: 0.5},
	}
	fmt.Printf("chaos: %d nodes, %d opinions, bias %.0f (%d seeds per cell)\n\n",
		n, k, alpha, reps)
	fmt.Printf("%-16s  %-18s  %14s  %12s  %10s\n",
		"protocol", "adversary", "consensus time", "degradation", "won")

	for _, protocol := range []string{"leader", "sync", "3-majority"} {
		res, err := plurality.Sweep(context.Background(), plurality.SweepConfig{
			Protocol:    protocol,
			Base:        plurality.Spec{Seed: 7},
			Ns:          []int{n},
			Ks:          []int{k},
			Alphas:      []float64{alpha},
			Adversaries: adversaries,
			Reps:        reps,
		})
		if err != nil {
			log.Fatal(err)
		}
		base := 0.0
		for _, cell := range res.Cells {
			cons, won := "-", "-"
			degradation := ""
			if s, ok := cell.Metrics["consensus_time"]; ok && s.N > 0 {
				if base == 0 {
					base = s.Mean
				} else if base > 0 {
					degradation = fmt.Sprintf("%.1fx", s.Mean/base)
				}
				cons = fmt.Sprintf("%.1f", s.Mean)
			}
			if s, ok := cell.Metrics["plurality_won"]; ok && s.N > 0 {
				won = fmt.Sprintf("%.0f/%d", s.Mean*float64(s.N), s.N)
			}
			fmt.Printf("%-16s  %-18s  %14s  %12s  %10s\n",
				protocol, cell.Adversary, cons, degradation, won)
		}
		fmt.Println()
	}
	fmt.Println("takeaway: crash-churn stretches consensus (survivors must re-absorb")
	fmt.Println("recovered nodes) and heavy message loss slows every rule, but the")
	fmt.Println("plurality usually still prevails — the generation mechanism degrades")
	fmt.Println("gracefully well outside the regime the theorems cover.")
}
