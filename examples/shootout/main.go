// Shootout: the generation protocol against the classical dynamics from the
// paper's related-work section, on identical inputs. With many opinions and
// a small bias the ranking the paper predicts emerges: pull voting is slow
// and unreliable, 3-majority slows down linearly in k, two-choices stalls
// without a strong bias, and the generation protocol converges in a handful
// of rounds.
package main

import (
	"fmt"
	"log"

	"plurality"
)

func main() {
	const (
		n     = 20_000
		k     = 16
		alpha = 1.5
		seed  = 3
	)
	assign, err := plurality.PlantedBias(n, k, alpha, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("n=%d, k=%d, α=%.1f — same initial assignment for every protocol\n\n", n, k, alpha)
	fmt.Printf("%-18s  %10s  %12s  %s\n", "protocol", "rounds", "plurality?", "notes")

	resG, err := plurality.RunSynchronous(plurality.SyncConfig{
		N: n, K: k, Assignment: assign, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	report("generations", resG)

	for _, rule := range plurality.Baselines() {
		res, err := plurality.RunBaseline(rule, plurality.BaselineConfig{
			N: n, K: k, Assignment: assign, Seed: seed, RecordEvery: 8,
		})
		if err != nil {
			log.Fatal(err)
		}
		report(rule, res)
	}
}

func report(name string, res *plurality.Result) {
	rounds := fmt.Sprintf("%.0f", res.Duration)
	verdict := "no"
	if res.PluralityWon && res.FullConsensus {
		verdict = "yes"
	}
	note := ""
	if !res.FullConsensus {
		note = "did not reach full consensus before the horizon"
	}
	fmt.Printf("%-18s  %10s  %12s  %s\n", name, rounds, verdict, note)
}
