// Shootout: every round-based protocol in the registry against the same
// skewed input (the asynchronous ones are skipped to keep the comparison on
// identical synchronous-round semantics; see examples/sensors and
// examples/pollnet for them). With many opinions and a small bias the
// ranking the paper predicts emerges: pull voting is slow and unreliable,
// 3-majority slows down linearly in k, two-choices stalls without a strong
// bias, and the generation protocol converges in a handful of rounds. The
// loop body is the point of the registry redesign: one code path serves
// every registered protocol.
package main

import (
	"context"
	"fmt"
	"log"

	"plurality"
)

func main() {
	const (
		n     = 20_000
		k     = 16
		alpha = 1.5
		seed  = 3
	)
	assign, err := plurality.PlantedBias(n, k, alpha, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("n=%d, k=%d, α=%.1f — same initial assignment for every protocol\n\n", n, k, alpha)
	fmt.Printf("%-18s  %-10s  %10s  %8s  %12s  %s\n",
		"protocol", "family", "duration", "unit", "plurality?", "notes")

	for _, name := range plurality.Protocols() {
		info, err := plurality.Info(name)
		if err != nil {
			log.Fatal(err)
		}
		if info.Async {
			// Keep the comparison on identical synchronous-round semantics;
			// examples/sensors and examples/pollnet cover the asynchronous
			// protocols.
			continue
		}
		res, err := plurality.Run(context.Background(), name, plurality.Spec{
			N: n, K: k, Assignment: assign, Seed: seed, RecordEvery: 8,
		})
		if err != nil {
			log.Fatal(err)
		}
		report(info, res)
	}
}

func report(info plurality.ProtocolInfo, res *plurality.Result) {
	unit := "rounds"
	if info.Async {
		unit = "steps"
	}
	verdict := "no"
	if res.PluralityWon && res.FullConsensus {
		verdict = "yes"
	}
	note := ""
	if !res.FullConsensus {
		note = "did not reach full consensus before the horizon"
	}
	fmt.Printf("%-18s  %-10s  %10.0f  %8s  %12s  %s\n",
		info.Name, info.Family, res.Duration, unit, verdict, note)
}
