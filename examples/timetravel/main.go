// Command timetravel demonstrates the checkpoint/restore subsystem: runs
// can be paused, copied, resumed bit-exactly, branched into independent
// futures, and extended past their original horizon — the workflows behind
// long-horizon tail studies and warm-started parameter sweeps.
//
// It shows four tricks on one asynchronous single-leader run:
//
//  1. Bit-exact time travel: snapshot at half the consensus time, resume,
//     and land on the identical Result.
//  2. Branching futures: one shared burn-in, five perturbed continuations —
//     the consensus-time spread with the prefix randomness held fixed.
//  3. Warm-started sweeps: the same branching through the Sweep API.
//  4. The wire format: encode → decode survives a byte-for-byte roundtrip.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"plurality"
)

func main() {
	ctx := context.Background()
	spec := plurality.Spec{N: 5000, K: 4, Alpha: 2, Seed: 11}

	// The reference: one uninterrupted run.
	plain, err := plurality.Run(ctx, "leader", spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uninterrupted run:   consensus at t=%.4f (%d trajectory points)\n",
		plain.ConsensusTime, len(plain.Trajectory))

	// 1. Pause at half time. Halt discards the rest of the run; the
	// snapshot carries everything needed to continue it.
	cspec := spec
	cspec.Checkpoint = plurality.CheckpointSpec{SnapshotAt: plain.ConsensusTime / 2, Halt: true}
	half, err := plurality.Run(ctx, "leader", cspec)
	if err != nil {
		log.Fatal(err)
	}
	snapshot := half.Snapshot
	blob, err := snapshot.Encode()
	if err != nil {
		log.Fatal(err)
	}
	meta := snapshot.Meta()
	fmt.Printf("snapshot:            t=%.4f, %d events executed, %d-byte blob\n",
		meta.Time, meta.Events, len(blob))

	// 4. (early, so everything below exercises the decoded copy) The blob
	// is self-contained: decode and re-encode are byte-identical.
	decoded, err := plurality.DecodeSnapshot(blob)
	if err != nil {
		log.Fatal(err)
	}
	reblob, err := decoded.Encode()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wire roundtrip:      encode->decode->encode identical: %t\n", bytes.Equal(blob, reblob))

	// 1. (continued) Resume bit-exactly: the future is the one the
	// uninterrupted run lived.
	resumed, err := plurality.Resume(ctx, decoded, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bit-exact resume:    consensus at t=%.4f (equal: %t)\n",
		resumed.ConsensusTime, resumed.ConsensusTime == plain.ConsensusTime)

	// 2. Branch five futures off the shared prefix: replication 0 is the
	// exact continuation, the rest perturb every RNG stream with a
	// deterministic label — same label, same future.
	futures, err := plurality.RunBatchFrom(ctx, decoded, 5, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("branching futures:   consensus times from one burn-in:")
	for i, f := range futures {
		tag := "perturbed"
		if i == 0 {
			tag = "exact    "
		}
		fmt.Printf("  future %d (%s) t=%.4f\n", i, tag, f.ConsensusTime)
	}

	// 3. The same study through the sweep layer: aggregated statistics over
	// warm-started replications, the prefix simulated exactly once.
	sweep, err := plurality.Sweep(ctx, plurality.SweepConfig{WarmStart: decoded, Reps: 5})
	if err != nil {
		log.Fatal(err)
	}
	ct := sweep.Cells[0].Metrics["consensus_time"]
	fmt.Printf("warm-start sweep:    consensus_time mean=%.4f se=%.4f over %d futures\n",
		ct.Mean, ct.SE, ct.N)
}
