// Sensors: a fleet of sensors must agree on one of several calibration
// profiles, coordinated by a gateway (the designated leader of §3). The
// network is asynchronous — every reading costs a connection setup whose
// latency we vary — and the point of the example is the paper's central
// quantitative message: convergence time scales with the latency only
// through the time-unit constant C1 ≈ F⁻¹(0.9), so doubling the mean
// latency roughly doubles wall-clock time but leaves the time-unit count
// unchanged.
package main

import (
	"fmt"
	"log"

	"plurality"
)

func main() {
	const (
		n     = 5_000
		k     = 5
		alpha = 2.0
	)
	fmt.Printf("sensor fleet: %d sensors, %d calibration profiles, bias %.1f\n\n", n, k, alpha)
	fmt.Printf("%-22s  %10s  %12s  %12s  %10s\n",
		"latency", "C1 (steps)", "eps t", "eps units", "result")

	specs := []plurality.LatencySpec{
		{Kind: "exp", Mean: 0.5},
		{Kind: "exp", Mean: 1},
		{Kind: "exp", Mean: 2},
		{Kind: "exp", Mean: 4},
		{Kind: "const", Mean: 1},
		{Kind: "erlang", Mean: 1, Shape: 4},
	}
	for _, spec := range specs {
		res, err := plurality.RunSingleLeader(plurality.AsyncConfig{
			N: n, K: k, Alpha: alpha, Seed: 11, Latency: spec,
		})
		if err != nil {
			log.Fatal(err)
		}
		unit := res.Stats["c1"]
		status := "consensus"
		if !res.FullConsensus {
			status = "timeout"
		}
		eps := "-"
		units := "-"
		if res.EpsReached {
			eps = fmt.Sprintf("%.1f", res.EpsTime)
			units = fmt.Sprintf("%.2f", res.EpsTime/unit)
		}
		fmt.Printf("%-22s  %10.2f  %12s  %12s  %10s\n",
			fmt.Sprintf("%s(mean=%g)", orDefault(spec.Kind), spec.Mean),
			unit, eps, units, status)
	}
	fmt.Println("\ntakeaway: ε-convergence measured in time units is nearly constant;")
	fmt.Println("only the step count stretches with the latency mean (Figure 1).")
}

func orDefault(kind string) string {
	if kind == "" {
		return "exp"
	}
	return kind
}
