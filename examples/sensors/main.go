// Sensors: a fleet of sensors must agree on one of several calibration
// profiles, coordinated by a gateway (the designated leader of §3). The
// network is asynchronous — every reading costs a connection setup whose
// latency we vary — and the point of the example is the paper's central
// quantitative message: convergence time scales with the latency only
// through the time-unit constant C1 ≈ F⁻¹(0.9), so doubling the mean
// latency roughly doubles wall-clock time but leaves the time-unit count
// unchanged. The latency column of the table is one replicated batch
// through plurality.RunMany.
package main

import (
	"context"
	"fmt"
	"log"

	"plurality"
)

func main() {
	const (
		n     = 5_000
		k     = 5
		alpha = 2.0
		reps  = 3
	)
	fmt.Printf("sensor fleet: %d sensors, %d calibration profiles, bias %.1f (%d seeds each)\n\n",
		n, k, alpha, reps)
	fmt.Printf("%-22s  %10s  %12s  %12s  %10s\n",
		"latency", "C1 (steps)", "eps t", "eps units", "result")

	specs := []plurality.LatencySpec{
		{Kind: "exp", Mean: 0.5},
		{Kind: "exp", Mean: 1},
		{Kind: "exp", Mean: 2},
		{Kind: "exp", Mean: 4},
		{Kind: "const", Mean: 1},
		{Kind: "erlang", Mean: 1, Shape: 4},
	}
	for _, spec := range specs {
		results, err := plurality.RunMany(context.Background(), "leader", plurality.Spec{
			N: n, K: k, Alpha: alpha, Seed: 11, Latency: spec,
		}, reps)
		if err != nil {
			log.Fatal(err)
		}
		var unit, epsSum float64
		epsCount, consensus := 0, 0
		for _, res := range results {
			unit = res.Stats["c1"]
			if res.EpsReached {
				epsSum += res.EpsTime
				epsCount++
			}
			if res.FullConsensus {
				consensus++
			}
		}
		status := fmt.Sprintf("%d/%d done", consensus, len(results))
		eps := "-"
		units := "-"
		if epsCount > 0 {
			mean := epsSum / float64(epsCount)
			eps = fmt.Sprintf("%.1f", mean)
			units = fmt.Sprintf("%.2f", mean/unit)
		}
		fmt.Printf("%-22s  %10.2f  %12s  %12s  %10s\n",
			fmt.Sprintf("%s(mean=%g)", orDefault(spec.Kind), spec.Mean),
			unit, eps, units, status)
	}
	fmt.Println("\ntakeaway: ε-convergence measured in time units is nearly constant;")
	fmt.Println("only the step count stretches with the latency mean (Figure 1).")
}

func orDefault(kind string) string {
	if kind == "" {
		return "exp"
	}
	return kind
}
