// Gridnet: the same consensus dynamics on a clique versus a torus — a
// sensor mesh whose devices can only reach their four grid neighbors. The
// paper's analysis lives on the complete graph; this example measures what
// its absence costs. On the clique, 3-majority with a planted bias settles
// in a handful of rounds. On the 32×32 torus the identical rule crawls:
// information spreads along grid distance, the minority survives in spatial
// pockets, and consensus time grows by an order of magnitude or more. The
// ring is worse still — its diameter is Θ(n) instead of Θ(√n). Topology is
// one Spec field; nothing else changes.
package main

import (
	"context"
	"fmt"
	"log"

	"plurality"
)

func main() {
	const (
		n     = 1024 // 32×32
		k     = 2
		alpha = 4.0
		reps  = 5
	)
	fmt.Printf("grid mesh: %d devices, %d firmware candidates, bias %.0f (%d seeds each)\n\n",
		n, k, alpha, reps)
	fmt.Printf("%-19s  %10s  %12s  %12s  %10s\n",
		"topology", "avg degree", "eps rounds", "consensus", "result")

	topologies := []plurality.TopologySpec{
		{}, // complete graph: the paper's model
		{Kind: plurality.TopologyRandomRegular, Degree: 4},
		{Kind: plurality.TopologyTorus}, // 32×32
		{Kind: plurality.TopologyRing, Width: 2},
	}
	base := 0.0
	for _, tp := range topologies {
		results, err := plurality.RunMany(context.Background(), "3-majority", plurality.Spec{
			N: n, K: k, Alpha: alpha, Seed: 7, MaxSteps: 20_000, Topology: tp,
		}, reps)
		if err != nil {
			log.Fatal(err)
		}
		var epsSum, consSum float64
		epsCount, consCount := 0, 0
		degree := float64(n - 1)
		for _, res := range results {
			if d, ok := res.Stats["topology_avg_degree"]; ok {
				degree = d
			}
			if res.EpsReached {
				epsSum += res.EpsTime
				epsCount++
			}
			if res.FullConsensus {
				consSum += res.ConsensusTime
				consCount++
			}
		}
		eps, cons := "-", "-"
		if epsCount > 0 {
			eps = fmt.Sprintf("%.1f", epsSum/float64(epsCount))
		}
		slowdown := ""
		if consCount > 0 {
			mean := consSum / float64(consCount)
			if base == 0 {
				base = mean
			} else if base > 0 {
				slowdown = fmt.Sprintf(" (%.0fx)", mean/base)
			}
			cons = fmt.Sprintf("%.1f%s", mean, slowdown)
		}
		fmt.Printf("%-19s  %10.1f  %12s  %12s  %10s\n",
			tp.ResolvedLabel(n), degree, eps, cons,
			fmt.Sprintf("%d/%d done", consCount, len(results)))
	}
	fmt.Println("\ntakeaway: the protocols' speed leans on the clique's expansion.")
	fmt.Println("A degree-4 random graph (an expander) stays close to the clique,")
	fmt.Println("while the torus and the ring pay for their Θ(√n) and Θ(n) diameters.")
}
