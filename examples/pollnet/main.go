// Pollnet: a decentralized opinion poll in a peer-to-peer network — the
// workload the paper's introduction motivates (distributed databases,
// community detection, polling). 20k peers hold one of 12 candidate answers
// drawn from a skewed Zipf law; no coordinator exists. The peers first
// organize themselves into clusters with emergent leaders (§4.1), then run
// the decentralized generation protocol (Algorithms 4–5) over an
// asynchronous network with exponential connection latencies. The run is
// bounded by a context deadline, as a production caller would bound it.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"plurality"
)

func main() {
	const (
		n = 20_000
		k = 12
	)
	assign, err := plurality.ZipfAssignment(n, k, 0.8, 7)
	if err != nil {
		log.Fatal(err)
	}
	counts, err := plurality.Counts(assign, k)
	if err != nil {
		log.Fatal(err)
	}
	bias, err := plurality.Bias(assign, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("poll of %d peers over %d answers, Zipf-skewed (bias %.3f)\n", n, k, bias)
	fmt.Printf("initial counts: %v\n\n", counts)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	res, err := plurality.Run(ctx, "decentralized", plurality.Spec{
		N: n, K: k, Assignment: assign, Seed: 7,
		Latency: plurality.LatencySpec{Kind: "exp", Mean: 1},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("clustering:   %.1f time steps, %.1f%% of peers in participating clusters, %0.f leaders\n",
		res.Stats["clustering_time"], 100*res.Stats["participating_frac"], res.Stats["leaders"])
	unit := res.Stats["c1"]
	if res.EpsReached {
		fmt.Printf("ε-consensus:  t=%.1f steps (%.1f time units) — all but %.2g of peers agree\n",
			res.EpsTime, res.EpsTime/unit, res.Eps)
	}
	if res.FullConsensus {
		fmt.Printf("consensus:    t=%.1f steps (%.1f time units)\n",
			res.ConsensusTime, res.ConsensusTime/unit)
	}
	fmt.Printf("final counts: %v\n", res.FinalCounts)
	fmt.Println(res)
}
