// Quickstart: run the synchronous generation protocol on 100k nodes with 8
// opinions and a 1.5× plurality bias, streaming the trajectory as the bias
// squares its way to consensus. This is the 30-second tour of the library's
// public API: one Spec, one Run(ctx, name, spec) call, one Observer.
package main

import (
	"context"
	"fmt"
	"log"

	"plurality"
)

func main() {
	const (
		n     = 100_000
		k     = 8
		alpha = 1.5
	)
	fmt.Printf("plurality consensus: n=%d nodes, k=%d opinions, bias α=%.2f\n", n, k, alpha)
	fmt.Printf("theorem 1 needs α > %.4f at this size\n", plurality.MinTheoremBias(n, k))
	fmt.Printf("registered protocols: %v\n\n", plurality.Protocols())

	// The Observer streams snapshots as they happen; with DiscardTrajectory
	// the run itself keeps O(1) recording memory — the pattern that scales
	// to millions of nodes.
	fmt.Printf("%6s  %10s  %12s  %6s\n", "round", "top frac", "bias", "maxgen")
	res, err := plurality.Run(context.Background(), "sync", plurality.Spec{
		N: n, K: k, Alpha: alpha, Seed: 1,
		DiscardTrajectory: true,
		Observer: plurality.ObserverFunc(func(p plurality.TrajectoryPoint) {
			fmt.Printf("%6.0f  %10.4f  %12.4g  %6d\n", p.Time, p.TopFrac, p.Bias, p.MaxGen)
		}),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println(res)
	fmt.Printf("generations used: %.0f, two-choices rounds: %.0f\n",
		res.Stats["generations"], res.Stats["two_choices_steps"])
}
