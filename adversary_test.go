package plurality

import (
	"context"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"testing"
)

// This file pins the adversary subsystem's public contract: spec validation,
// golden digests for adversarial runs (the honest digests are pinned by
// TestKernelGolden and must not move when an adversary is merely *available*),
// worker-count invariance, and the checkpoint→resume acceptance criterion —
// an interrupted adversarial run finishes byte-identically to an
// uninterrupted one.

// TestAdversarySpecValidation table-drives AdversarySpec through
// Spec.validate's domains.
func TestAdversarySpecValidation(t *testing.T) {
	cases := []struct {
		name    string
		adv     AdversarySpec
		wantErr string // substring; "" means valid
	}{
		{"zero value", AdversarySpec{}, ""},
		{"crash defaults", AdversarySpec{Kind: AdversaryCrash}, ""},
		{"crash churn", AdversarySpec{Kind: AdversaryCrash, Fraction: 0.3, Rate: 2}, ""},
		{"crash deferred", AdversarySpec{Kind: AdversaryCrash, At: 5}, ""},
		{"delay", AdversarySpec{Kind: AdversaryDelay, Fraction: 0.5, Rate: 3}, ""},
		{"drop", AdversarySpec{Kind: AdversaryDrop, Fraction: 1}, ""},
		{"byzantine pinned seed", AdversarySpec{Kind: AdversaryByzantine, Fraction: 0.1, Seed: 99}, ""},
		{"unknown kind", AdversarySpec{Kind: "meteor"}, "unknown adversary kind"},
		{"kind needs lower case", AdversarySpec{Kind: "Crash"}, "unknown adversary kind"},
		{"negative fraction", AdversarySpec{Kind: AdversaryDrop, Fraction: -0.1}, "Fraction"},
		{"fraction above one", AdversarySpec{Kind: AdversaryDrop, Fraction: 1.5}, "Fraction"},
		{"NaN fraction", AdversarySpec{Kind: AdversaryDrop, Fraction: math.NaN()}, "Fraction"},
		{"crash everyone", AdversarySpec{Kind: AdversaryCrash, Fraction: 1}, "no survivors"},
		{"negative rate", AdversarySpec{Kind: AdversaryDelay, Rate: -1}, "Rate"},
		{"infinite rate", AdversarySpec{Kind: AdversaryCrash, Rate: math.Inf(1)}, "Rate"},
		{"negative at", AdversarySpec{Kind: AdversaryCrash, At: -2}, "At"},
		{"NaN at", AdversarySpec{Kind: AdversaryCrash, At: math.NaN()}, "At"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// leader accepts every kind, so only validation can reject here.
			spec := Spec{N: 100, K: 2, Alpha: 2, Seed: 1, Adversary: tc.adv}
			_, err := Run(context.Background(), "leader", spec)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid spec rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("got %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestAdversaryLabel pins the compact rendering used by sweep tables and the
// CLI, so table output stays stable.
func TestAdversaryLabel(t *testing.T) {
	cases := []struct {
		adv  AdversarySpec
		want string
	}{
		{AdversarySpec{}, "none"},
		{AdversarySpec{Kind: AdversaryCrash}, "crash(f=0.1)"},
		{AdversarySpec{Kind: AdversaryCrash, Fraction: 0.3, Rate: 2}, "crash(f=0.3,r=2)"},
		{AdversarySpec{Kind: AdversaryDelay, Fraction: 0.5, Rate: 3}, "delay(f=0.5,x3)"},
		{AdversarySpec{Kind: AdversaryDrop, Fraction: 0.25}, "drop(f=0.25)"},
		{AdversarySpec{Kind: AdversaryByzantine, Fraction: 0.1}, "byzantine(f=0.1)"},
	}
	for _, tc := range cases {
		if got := tc.adv.Label(); got != tc.want {
			t.Errorf("Label(%+v) = %q, want %q", tc.adv, got, tc.want)
		}
	}
}

// adversaryGoldenMatrix is the protocol × fault-model grid the adversarial
// digests pin. Delay needs message latency, so only the asynchronous
// protocols carry it.
func adversaryGoldenMatrix() []struct {
	protocol string
	adv      AdversarySpec
} {
	crash := AdversarySpec{Kind: AdversaryCrash, Fraction: 0.2, Rate: 1, At: 2}
	drop := AdversarySpec{Kind: AdversaryDrop, Fraction: 0.3}
	byz := AdversarySpec{Kind: AdversaryByzantine, Fraction: 0.15}
	delay := AdversarySpec{Kind: AdversaryDelay, Fraction: 0.5, Rate: 2}
	var out []struct {
		protocol string
		adv      AdversarySpec
	}
	for _, p := range []string{"leader", "decentralized", "sync", "3-majority"} {
		kinds := []AdversarySpec{crash, drop, byz}
		if p == "leader" || p == "decentralized" {
			kinds = append(kinds, delay)
		}
		for _, a := range kinds {
			out = append(out, struct {
				protocol string
				adv      AdversarySpec
			}{p, a})
		}
	}
	return out
}

func adversaryGoldenSpec(adv AdversarySpec) Spec {
	return Spec{N: 400, K: 3, Alpha: 2, Seed: 11, Adversary: adv}
}

// adversaryGolden maps "protocol/label" to the digest recorded when the
// subsystem landed. Any change to adversary draw order, victim selection or
// engine arithmetic under faults shows up here. Re-record with:
//
//	PLURALITY_GOLDEN_RECORD=1 go test -run TestAdversaryGolden -v .
var adversaryGolden = map[string]string{
	"3-majority/byzantine(f=0.15)":    "b629ee7d5e23a884d573179db02870113219077cde33e8bfbeffa6ae488f8597",
	"3-majority/crash(f=0.2,r=1)":     "e6bfb542fe0d8d10c784900f9b637368c4fa9edc388191c6b64730c19e5acd34",
	"3-majority/drop(f=0.3)":          "2254253292e3586ca390c00cb506c48e80f230f55d6fd0cc864f3f13808092a4",
	"decentralized/byzantine(f=0.15)": "b3415ee9b8f293543863f85134da2379032e9813a1ebe3ccc4f5238f5d2cf8a4",
	"decentralized/crash(f=0.2,r=1)":  "8fef3d64cb7a1d13f5466462139040f462bc7686d907a5f5a894bd9db49ad481",
	"decentralized/delay(f=0.5,x2)":   "6a2f17f22e979c2d7c22a15e25e542cf54ca9b83c8baeaf74a2b0acc5dda00e4",
	"decentralized/drop(f=0.3)":       "a941935e723102e7667908088992d5d0cdc8eed1bce9d555b4bef44237b6c95e",
	"leader/byzantine(f=0.15)":        "47daa6b5011229b4dc6a869f17a771cd2cc63e588abe74cc5e403ef878c6506b",
	"leader/crash(f=0.2,r=1)":         "16ca3e32df4b3ae579f762f19f5bc25a42c79895cd93f2ba2639086f7517ff8b",
	"leader/delay(f=0.5,x2)":          "cdd589fbbd7a05b06f03d11351edba38e4f84087c1cfacc1dc83a7ed92054a45",
	"leader/drop(f=0.3)":              "f72e0e61d6e63977d0bc82cbcb01f6141ef76a62ad859c24e56a6b07f8f71105",
	"sync/byzantine(f=0.15)":          "3e167fda88ed589bab65006f01ff8a80666028ef8e4926a7d5b879f2426b781b",
	"sync/crash(f=0.2,r=1)":           "9469d6ed882c14e57aca59ea2bd091dec8eaa98300b96e365e765d5d1ad76c9f",
	"sync/drop(f=0.3)":                "ab21dc27c3d8c9758f1396f05c781178c2e290ec9d579c966d0fe629c4930131",
}

// TestAdversaryGolden digests every cell of the adversarial matrix against
// the recorded values. Set PLURALITY_ADVERSARY_DIGESTS=<file> to dump the
// per-cell digests (the CI adversary job uploads them as an artifact).
func TestAdversaryGolden(t *testing.T) {
	record := os.Getenv("PLURALITY_GOLDEN_RECORD") != ""
	var digests []string
	for _, cell := range adversaryGoldenMatrix() {
		key := fmt.Sprintf("%s/%s", cell.protocol, cell.adv.Label())
		t.Run(key, func(t *testing.T) {
			res, err := Run(context.Background(), cell.protocol, adversaryGoldenSpec(cell.adv))
			if err != nil {
				t.Fatalf("Run(%s): %v", key, err)
			}
			got := digestResult(res)
			if record {
				fmt.Printf("GOLDEN\t%q: %q,\n", key, got)
				return
			}
			want, ok := adversaryGolden[key]
			if !ok {
				t.Fatalf("no golden digest recorded for %s (got %s)", key, got)
			}
			if got != want {
				t.Errorf("adversarial digest changed for %s:\n  got  %s\n  want %s", key, got, want)
			}
			digests = append(digests, fmt.Sprintf("%s\t%s", key, got))
		})
	}
	if out := os.Getenv("PLURALITY_ADVERSARY_DIGESTS"); out != "" && !t.Failed() && !record {
		sort.Strings(digests)
		body := strings.Join(digests, "\n") + "\n"
		if err := os.WriteFile(out, []byte(body), 0o644); err != nil {
			t.Errorf("writing digest artifact: %v", err)
		}
	}
}

// TestAdversaryDeterminism pins that adversarial replications are
// worker-count invariant: the same (spec, seed, adversary) triple digests
// identically whether the batch runs sequentially or on a parallel pool.
func TestAdversaryDeterminism(t *testing.T) {
	ctx := context.Background()
	for _, cell := range []struct {
		protocol string
		adv      AdversarySpec
	}{
		{"leader", AdversarySpec{Kind: AdversaryCrash, Fraction: 0.3, Rate: 2}},
		{"3-majority", AdversarySpec{Kind: AdversaryDrop, Fraction: 0.4}},
		{"decentralized", AdversarySpec{Kind: AdversaryByzantine, Fraction: 0.1}},
	} {
		key := fmt.Sprintf("%s/%s", cell.protocol, cell.adv.Label())
		t.Run(key, func(t *testing.T) {
			spec := Spec{N: 300, K: 3, Alpha: 2, Seed: 5, Adversary: cell.adv}
			seq, err := RunBatch(ctx, cell.protocol, spec, 3, 1)
			if err != nil {
				t.Fatal(err)
			}
			par, err := RunBatch(ctx, cell.protocol, spec, 3, 4)
			if err != nil {
				t.Fatal(err)
			}
			for i := range seq {
				if digestResult(seq[i]) != digestResult(par[i]) {
					t.Errorf("replication %d differs between 1 and 4 workers", i)
				}
			}
			// Replications face distinct adversarial schedules (the adversary
			// seed derives from the per-replication run seed).
			if digestResult(seq[0]) == digestResult(seq[1]) {
				t.Error("replications 0 and 1 digest equal; adversary seed not derived per replication")
			}
		})
	}
}

// TestAdversaryCheckpointResume pins the acceptance criterion for
// adversarial snapshots: checkpoint → encode → decode → resume of a run
// under every fault model reproduces the uninterrupted run bit-exactly —
// the adversary's generator, victim schedule and parked messages all travel
// in the versioned blob. The parallel leg re-checks through RunBatchFrom.
func TestAdversaryCheckpointResume(t *testing.T) {
	ctx := context.Background()
	cells := []struct {
		protocol string
		adv      AdversarySpec
	}{
		{"leader", AdversarySpec{Kind: AdversaryCrash, Fraction: 0.3, Rate: 2}},
		{"leader", AdversarySpec{Kind: AdversaryDelay, Fraction: 0.5, Rate: 2}},
		{"leader", AdversarySpec{Kind: AdversaryDrop, Fraction: 0.3}},
		{"leader", AdversarySpec{Kind: AdversaryByzantine, Fraction: 0.1}},
		{"decentralized", AdversarySpec{Kind: AdversaryCrash, Fraction: 0.2, At: 2}},
		{"decentralized", AdversarySpec{Kind: AdversaryDelay, Fraction: 0.5}},
		{"sync", AdversarySpec{Kind: AdversaryCrash, Fraction: 0.2, At: 2}},
		{"sync", AdversarySpec{Kind: AdversaryByzantine, Fraction: 0.15}},
		{"3-majority", AdversarySpec{Kind: AdversaryCrash, Fraction: 0.2, Rate: 0.5}},
		{"3-majority", AdversarySpec{Kind: AdversaryDrop, Fraction: 0.4}},
	}
	for _, cell := range cells {
		key := fmt.Sprintf("%s/%s", cell.protocol, cell.adv.Label())
		t.Run(key, func(t *testing.T) {
			spec := snapshotSpec()
			spec.Adversary = cell.adv
			sn, want := captureSnapshot(t, cell.protocol, spec)
			blob, err := sn.Encode()
			if err != nil {
				t.Fatal(err)
			}
			decoded, err := DecodeSnapshot(blob)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			res, err := Resume(ctx, decoded, nil)
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			if got := digestResult(res); got != want {
				t.Errorf("resumed adversarial digest %s != uninterrupted %s", got, want)
			}
			if testing.Short() {
				return // the parallel leg re-runs the tail once more
			}
			batch, err := RunBatchFrom(ctx, decoded, 2, 2)
			if err != nil {
				t.Fatalf("RunBatchFrom: %v", err)
			}
			if got := digestResult(batch[0]); got != want {
				t.Errorf("batch-resumed adversarial digest %s != uninterrupted %s", got, want)
			}
		})
	}
}

// TestAdversaryRoundBasedRejectsDelay pins that protocols without message
// latency reject the delay adversary with a diagnostic instead of silently
// ignoring it.
func TestAdversaryRoundBasedRejectsDelay(t *testing.T) {
	for _, protocol := range []string{"sync", "3-majority", "two-choices", "pull-voting", "undecided-state"} {
		spec := Spec{N: 200, K: 2, Alpha: 2, Seed: 1,
			Adversary: AdversarySpec{Kind: AdversaryDelay}}
		_, err := Run(context.Background(), protocol, spec)
		if err == nil || !strings.Contains(err.Error(), "delay") {
			t.Errorf("%s with delay adversary: got %v, want a delay-rejection error", protocol, err)
		}
	}
}

// TestAdversaryStats pins the counter plumbing: adversarial runs surface
// adv_* counters in Stats, honest runs stay free of them (so honest Results
// digest identically to pre-adversary builds).
func TestAdversaryStats(t *testing.T) {
	ctx := context.Background()
	honest, err := Run(ctx, "leader", Spec{N: 300, K: 3, Alpha: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for k := range honest.Stats {
		if strings.HasPrefix(k, "adv_") {
			t.Errorf("honest run carries adversary counter %q", k)
		}
	}
	faulty, err := Run(ctx, "leader", Spec{N: 300, K: 3, Alpha: 2, Seed: 3,
		Adversary: AdversarySpec{Kind: AdversaryCrash, Fraction: 0.3, Rate: 2}})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"adv_crashes", "adv_recoveries", "adv_drops", "adv_delayed", "adv_lies"} {
		if _, ok := faulty.Stats[k]; !ok {
			t.Errorf("adversarial run missing counter %q", k)
		}
	}
	if faulty.Stats["adv_crashes"] == 0 {
		t.Error("churn adversary recorded no crashes")
	}
}

// TestSweepAdversaryAxis pins the new factor: one honest and one faulty
// column, labelled through the table, worker-count invariant.
func TestSweepAdversaryAxis(t *testing.T) {
	ctx := context.Background()
	cfg := SweepConfig{
		Protocol: "3-majority",
		Base:     Spec{Seed: 9},
		Ns:       []int{200},
		Ks:       []int{2},
		Alphas:   []float64{2},
		Adversaries: []AdversarySpec{
			{},
			{Kind: AdversaryDrop, Fraction: 0.4},
		},
		Reps: 2,
	}
	res, err := Sweep(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("sweep produced %d cells, want 2", len(res.Cells))
	}
	if res.Cells[0].Adversary != "none" || res.Cells[1].Adversary != "drop(f=0.4)" {
		t.Errorf("cell adversary labels %q, %q", res.Cells[0].Adversary, res.Cells[1].Adversary)
	}
	if !strings.Contains(res.Render(), "drop(f=0.4)") {
		t.Error("rendered table is missing the adversary column")
	}

	cfg.Workers = 3
	par, err := Sweep(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Cells {
		for key, s := range res.Cells[i].Metrics {
			if p := par.Cells[i].Metrics[key]; p.Mean != s.Mean {
				t.Errorf("cell %d metric %s differs across worker counts: %v vs %v", i, key, s.Mean, p.Mean)
			}
		}
	}
}
