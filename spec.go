package plurality

import (
	"fmt"
	"math"

	"plurality/internal/topo"
)

// MaxNodes is the largest supported N. The event kernel addresses nodes and
// event payloads as int32, which is what keeps a queued event at 40 bytes
// and the steady-state scheduling path allocation-free; every configuration
// up to this bound — including the paper's asymptotic regime at n = 10⁶
// and beyond — is accepted by validation.
const MaxNodes = math.MaxInt32 - 1

// MaxOpinions is the largest supported K. The synchronous engine's memory
// model packs a node's (opinion, generation) pair into one 32-bit word —
// opinion in the low 24 bits, generation counter in the high 8 — so one
// node costs 4 bytes and a round's partner gathers touch a single array.
// That layout caps opinions at 2^24; the regime the paper studies
// (k = O(n^(1/2-ε)), and practically k up to ~n^(1/3)) sits far below the
// cap for every N the kernel addresses.
const MaxOpinions = 1 << 24

// Spec is the unified parameter set of every registered protocol. One Spec
// value describes one run regardless of the protocol family; fields a
// protocol does not use are ignored (for example Latency by the synchronous
// protocol). The zero value of every optional field means "use the engine's
// documented default".
type Spec struct {
	// N is the number of nodes (>= 2, at most MaxNodes; the decentralized
	// protocol needs >= 8 for its clustering substrate).
	N int `json:"n"`
	// K is the number of opinions (>= 1, at most MaxOpinions).
	K int `json:"k"`
	// Alpha is the planted initial bias used when Assignment is nil: the
	// assignment is then PlantedBias(N, K, Alpha, Seed-derived). 0 means
	// the unbiased worst case (α = 1); values in (0, 1) are invalid.
	Alpha float64 `json:"alpha,omitempty"`
	// Assignment optionally fixes the initial opinions (length N, values
	// in [0, K)). It is not mutated.
	Assignment []int `json:"assignment,omitempty"`
	// Seed drives all randomness of the run.
	Seed uint64 `json:"seed"`
	// Eps defines ε-convergence reporting; must lie in [0, 1). 0 means
	// the paper's 1/log² n.
	Eps float64 `json:"eps,omitempty"`
	// MaxSteps bounds round-based protocols (sync and the baselines) in
	// synchronous rounds; 0 means an automatic generous horizon.
	MaxSteps int `json:"max_steps,omitempty"`
	// MaxTime bounds the asynchronous protocols in virtual time steps;
	// 0 means an automatic generous horizon.
	MaxTime float64 `json:"max_time,omitempty"`
	// RecordEvery sets the snapshot interval: rounds for round-based
	// protocols (rounded to an integer, minimum 1), virtual time steps for
	// asynchronous ones. 0 means the protocol default (1 round, or one
	// snapshot per time unit).
	RecordEvery float64 `json:"record_every,omitempty"`
	// Latency describes the channel-establishment distribution T2 of the
	// asynchronous protocols. The zero value is the paper's Exp(1).
	Latency LatencySpec `json:"latency,omitzero"`
	// Topology selects the interaction graph nodes sample partners from.
	// The zero value is the complete graph — the paper's model — and is
	// guaranteed to reproduce pre-topology results byte-identically for
	// the same seed. See TopologySpec for the other kinds.
	Topology TopologySpec `json:"topology,omitzero"`
	// Adversary selects the fault model the run faces. The zero value is
	// the honest model — the only one the paper's theorems cover — and is
	// guaranteed to reproduce pre-adversary results byte-identically for
	// the same seed. See AdversarySpec for the kinds; the round-based
	// protocols reject the delay kind (no message latency to stretch).
	Adversary AdversarySpec `json:"adversary,omitzero"`
	// Observer, when non-nil, receives every trajectory snapshot as it is
	// recorded — the streaming alternative to Result.Trajectory. Under
	// RunMany or Sweep the same Observer serves concurrent runs and must
	// be safe for concurrent use. Runtime-only: it is not serialized into
	// checkpoint metadata (re-attach one via ResumeOptions.Observer).
	Observer Observer `json:"-"`
	// DiscardTrajectory leaves Result.Trajectory empty so recording costs
	// O(1) memory instead of O(steps); the outcome (winner, hitting
	// times) is evaluated incrementally and is unaffected. Combine with
	// Observer to consume snapshots without accumulating them.
	DiscardTrajectory bool `json:"discard_trajectory,omitempty"`
	// Checkpoint requests a mid-run state snapshot (see CheckpointSpec);
	// the zero value disables it. Snapshots capture the complete simulator
	// state and resume bit-exactly through Resume. Only checkpointable
	// protocols accept it (ProtocolInfo.Checkpointable; all built-ins are).
	Checkpoint CheckpointSpec `json:"checkpoint,omitzero"`
	// Shards splits one asynchronous run's node set across this many
	// parallel event ladders synchronized at ladder-window barriers
	// (conservative PDES). 0 or 1 selects the serial kernel, whose output
	// is byte-identical to previous releases; for a fixed value > 1 the
	// result is a deterministic function of (spec, seed, shards) but a
	// different sample path than the serial kernel's — statistically
	// equivalent, not byte-equal. Shards is an execution knob, not a model
	// parameter: it does not enter CanonicalBytes, so cached results are
	// shared across shard counts. The asynchronous protocols ("leader" and
	// "decentralized") support > 1, adversaries and checkpoints included —
	// a snapshot taken at Shards=S resumes only at Shards=S
	// (ErrSnapshotShards otherwise). The round-based protocols reject > 1:
	// they have no event ladder to shard.
	Shards int `json:"shards,omitempty"`
	// Sync holds the synchronous protocol's knobs.
	Sync SyncOptions `json:"sync,omitzero"`
	// Async holds the asynchronous protocols' knobs.
	Async AsyncOptions `json:"async,omitzero"`
	// Baseline holds the baseline dynamics' knobs.
	Baseline BaselineOptions `json:"baseline,omitzero"`

	// scratch carries per-worker reusable sampling buffers into the
	// engines. Runtime-only and internal: RunBatch and Sweep set it so the
	// replications a worker executes share batch buffers instead of
	// reallocating them; buffer contents never influence results, keeping
	// the batch layer's worker-count invariance intact.
	scratch *topo.Scratch
}

// SyncOptions are the knobs specific to the synchronous protocol ("sync").
type SyncOptions struct {
	// Gamma is the generation-density threshold γ ∈ (0, 1); 0 means 0.5.
	Gamma float64 `json:"gamma,omitempty"`
	// TheoreticalSchedule selects the paper's predefined two-choices
	// times {t_i} instead of the adaptive density trigger.
	TheoreticalSchedule bool `json:"theoretical_schedule,omitempty"`
}

// AsyncOptions are the knobs specific to the asynchronous protocols
// ("leader", "decentralized").
type AsyncOptions struct {
	// ClusterTargetSize overrides the decentralized protocol's cluster
	// size knob; 0 means automatic. Ignored by "leader".
	ClusterTargetSize int `json:"cluster_target_size,omitempty"`
}

// BaselineOptions are the knobs specific to the baseline dynamics.
type BaselineOptions struct {
	// Sequential uses the population-protocol scheduler (one interaction
	// at a time, time in parallel rounds) instead of synchronous rounds.
	Sequential bool `json:"sequential,omitempty"`
}

// Observer consumes trajectory snapshots as a run records them. Observe is
// called synchronously from the run in time order; an expensive Observe
// slows the run down.
type Observer interface {
	Observe(TrajectoryPoint)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(TrajectoryPoint)

// Observe calls f(p).
func (f ObserverFunc) Observe(p TrajectoryPoint) { f(p) }

// validate centralizes the input checks shared by every protocol. Engine
// packages keep their own protocol-specific constraints (e.g. the
// decentralized protocol's N >= 8) on top of these.
func (s *Spec) validate() error {
	if s.N < 2 {
		return fmt.Errorf("plurality: need N >= 2, got %d", s.N)
	}
	if s.N > MaxNodes {
		return fmt.Errorf("plurality: N %d exceeds MaxNodes %d (the kernel addresses nodes as int32)", s.N, MaxNodes)
	}
	if s.K < 1 {
		return fmt.Errorf("plurality: need K >= 1, got %d", s.K)
	}
	if s.K > MaxOpinions {
		return fmt.Errorf("plurality: K %d exceeds MaxOpinions %d (opinions pack into 24 bits of the per-node state word)", s.K, MaxOpinions)
	}
	if s.Assignment == nil {
		if math.IsNaN(s.Alpha) || math.IsInf(s.Alpha, 0) || (s.Alpha != 0 && s.Alpha < 1) {
			return fmt.Errorf("plurality: planted bias Alpha %v must be finite and >= 1 (or 0 for the unbiased default)", s.Alpha)
		}
	} else {
		if len(s.Assignment) != s.N {
			return fmt.Errorf("plurality: assignment length %d != N %d", len(s.Assignment), s.N)
		}
		for i, v := range s.Assignment {
			if v < 0 || v >= s.K {
				return fmt.Errorf("plurality: assignment[%d] = %d outside [0, %d)", i, v, s.K)
			}
		}
	}
	if s.Eps < 0 || s.Eps >= 1 || math.IsNaN(s.Eps) {
		return fmt.Errorf("plurality: Eps %v outside [0, 1)", s.Eps)
	}
	if s.MaxSteps < 0 {
		return fmt.Errorf("plurality: negative MaxSteps %d", s.MaxSteps)
	}
	if s.MaxTime < 0 || math.IsNaN(s.MaxTime) || math.IsInf(s.MaxTime, 0) {
		return fmt.Errorf("plurality: invalid MaxTime %v", s.MaxTime)
	}
	if s.RecordEvery < 0 || math.IsNaN(s.RecordEvery) || math.IsInf(s.RecordEvery, 0) {
		return fmt.Errorf("plurality: invalid RecordEvery %v", s.RecordEvery)
	}
	if _, err := s.Latency.build(); err != nil {
		return err
	}
	// Topology constraints (grid dims divide N, rings fit, random graphs
	// connected) are checked by constructing the sampler, exactly as the
	// adapters will; the random kinds are cheap enough (O(N + edges)) that
	// failing here, before any replication starts, is worth the rebuild.
	if _, err := s.Topology.build(s.N, s.Seed); err != nil {
		return err
	}
	if err := s.Adversary.validate(); err != nil {
		return err
	}
	if at := s.Checkpoint.SnapshotAt; at < 0 || math.IsNaN(at) || math.IsInf(at, 0) {
		return fmt.Errorf("plurality: invalid Checkpoint.SnapshotAt %v", at)
	}
	if g := s.Sync.Gamma; g != 0 && (g <= 0 || g >= 1 || math.IsNaN(g)) {
		return fmt.Errorf("plurality: Sync.Gamma %v outside (0, 1)", g)
	}
	if s.Async.ClusterTargetSize < 0 {
		return fmt.Errorf("plurality: negative Async.ClusterTargetSize %d", s.Async.ClusterTargetSize)
	}
	if s.Shards < 0 {
		return fmt.Errorf("plurality: negative Shards %d", s.Shards)
	}
	if s.Shards > s.N {
		return fmt.Errorf("plurality: Shards %d exceeds N %d", s.Shards, s.N)
	}
	return nil
}

// recordEveryRounds converts the continuous RecordEvery knob to the
// round-based engines' integer interval: 0 keeps the engine default and
// positive values round to the nearest round, minimum 1.
func (s *Spec) recordEveryRounds() int {
	if s.RecordEvery <= 0 {
		return 0
	}
	r := int(math.Round(s.RecordEvery))
	if r < 1 {
		r = 1
	}
	return r
}
