package plurality

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

// TestProtocolsListsAllSeven pins the registry contents: the paper's three
// protocols plus the four baseline dynamics, in registration order.
func TestProtocolsListsAllSeven(t *testing.T) {
	want := []string{"sync", "leader", "decentralized",
		"pull-voting", "two-choices", "3-majority", "undecided-state"}
	got := Protocols()
	if len(got) < len(want) {
		t.Fatalf("Protocols() = %v, want at least %v", got, want)
	}
	if !reflect.DeepEqual(got[:len(want)], want) {
		t.Errorf("Protocols() = %v, want prefix %v", got, want)
	}
	for _, name := range want {
		info, err := Info(name)
		if err != nil {
			t.Fatalf("Info(%s): %v", name, err)
		}
		if info.Name != name || info.Family == "" || info.Description == "" {
			t.Errorf("Info(%s) incomplete: %+v", name, info)
		}
	}
	for _, name := range []string{"leader", "decentralized"} {
		if info, _ := Info(name); !info.Async {
			t.Errorf("%s not marked async", name)
		}
	}
}

func TestRunUnknownProtocol(t *testing.T) {
	_, err := Run(context.Background(), "bogus", Spec{N: 10, K: 2})
	if !errors.Is(err, ErrUnknownProtocol) {
		t.Errorf("err = %v, want ErrUnknownProtocol", err)
	}
	if _, err := Lookup("bogus"); !errors.Is(err, ErrUnknownProtocol) {
		t.Errorf("Lookup err = %v, want ErrUnknownProtocol", err)
	}
}

// TestRunMatchesLegacyWrappers is the API-redesign acceptance check: the
// registry entry point must reproduce the deprecated Run* wrappers
// byte-identically for the same seed.
func TestRunMatchesLegacyWrappers(t *testing.T) {
	ctx := context.Background()

	legacySync, err := RunSynchronous(SyncConfig{N: 2000, K: 4, Alpha: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	newSync, err := Run(ctx, "sync", Spec{N: 2000, K: 4, Alpha: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacySync, newSync) {
		t.Error("sync: registry result differs from RunSynchronous")
	}

	legacyLeader, err := RunSingleLeader(AsyncConfig{N: 800, K: 3, Alpha: 2.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	newLeader, err := Run(ctx, "leader", Spec{N: 800, K: 3, Alpha: 2.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacyLeader, newLeader) {
		t.Error("leader: registry result differs from RunSingleLeader")
	}

	legacyDec, err := RunDecentralized(AsyncConfig{N: 1500, K: 2, Alpha: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	newDec, err := Run(ctx, "decentralized", Spec{N: 1500, K: 2, Alpha: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacyDec, newDec) {
		t.Error("decentralized: registry result differs from RunDecentralized")
	}

	for _, rule := range Baselines() {
		legacy, err := RunBaseline(rule, BaselineConfig{N: 600, K: 2, Alpha: 3, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := Run(ctx, rule, Spec{N: 600, K: 2, Alpha: 3, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(legacy, fresh) {
			t.Errorf("%s: registry result differs from RunBaseline", rule)
		}
	}
}

// TestRunDeterminism: the same (protocol, Spec, Seed) must yield a
// byte-identical Result — winner, counts, trajectory, stats — across runs,
// for one representative of each protocol family.
func TestRunDeterminism(t *testing.T) {
	specs := map[string]Spec{
		"sync":          {N: 2000, K: 4, Alpha: 2, Seed: 17},
		"leader":        {N: 600, K: 3, Alpha: 2.5, Seed: 17},
		"decentralized": {N: 1200, K: 2, Alpha: 3, Seed: 17},
		"3-majority":    {N: 800, K: 4, Alpha: 2, Seed: 17},
	}
	for name, spec := range specs {
		a, err := Run(context.Background(), name, spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := Run(context.Background(), name, spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: two runs of the same spec+seed differ", name)
		}
	}
}

// TestRunCancelledContext: a context cancelled before the run must abort
// every protocol promptly with ctx.Err().
func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range Protocols() {
		start := time.Now()
		res, err := Run(ctx, name, Spec{N: 5000, K: 8, Alpha: 1.2, Seed: 1})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
		if res != nil {
			t.Errorf("%s: non-nil result on cancellation", name)
		}
		if d := time.Since(start); d > 5*time.Second {
			t.Errorf("%s: cancellation took %v", name, d)
		}
	}
}

// TestRunMidFlightCancellation cancels from inside the observer — the run
// must stop at the next cancellation poll and return ctx.Err().
func TestRunMidFlightCancellation(t *testing.T) {
	for _, name := range []string{"sync", "leader", "3-majority"} {
		ctx, cancel := context.WithCancel(context.Background())
		var seen atomic.Int64
		_, err := Run(ctx, name, Spec{
			N: 3000, K: 4, Alpha: 1.5, Seed: 2,
			Observer: ObserverFunc(func(TrajectoryPoint) {
				if seen.Add(1) == 2 {
					cancel()
				}
			}),
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
	}
}

// TestObserverStreaming: the observer must see exactly the points that end
// up in Result.Trajectory, and discarding the trajectory must not change
// the outcome.
func TestObserverStreaming(t *testing.T) {
	var streamed []TrajectoryPoint
	spec := Spec{N: 1000, K: 3, Alpha: 2, Seed: 9,
		Observer: ObserverFunc(func(p TrajectoryPoint) { streamed = append(streamed, p) })}
	res, err := Run(context.Background(), "sync", spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(streamed, res.Trajectory) {
		t.Errorf("observer saw %d points, trajectory has %d and differs",
			len(streamed), len(res.Trajectory))
	}

	streamed = nil
	spec.DiscardTrajectory = true
	lean, err := Run(context.Background(), "sync", spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(lean.Trajectory) != 0 {
		t.Errorf("DiscardTrajectory left %d points", len(lean.Trajectory))
	}
	if !reflect.DeepEqual(streamed, res.Trajectory) {
		t.Error("streaming differs when discarding")
	}
	lean.Trajectory = res.Trajectory
	if !reflect.DeepEqual(lean, res) {
		t.Errorf("outcome changed by discarding: %+v vs %+v", lean, res)
	}
}

// TestObserverStreamingAsync covers the discrete-event engines' recorder
// path as well.
func TestObserverStreamingAsync(t *testing.T) {
	var count int
	res, err := Run(context.Background(), "leader", Spec{
		N: 500, K: 2, Alpha: 3, Seed: 6, DiscardTrajectory: true,
		Observer: ObserverFunc(func(TrajectoryPoint) { count++ }),
	})
	if err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Error("async observer saw no points")
	}
	if len(res.Trajectory) != 0 {
		t.Error("async DiscardTrajectory left points")
	}
	if !res.FullConsensus {
		t.Errorf("streaming run did not converge: %v", res)
	}
}

// testProtocol exercises external registration through the public API.
type testProtocol struct{ runs atomic.Int64 }

func (p *testProtocol) Info() ProtocolInfo {
	return ProtocolInfo{Name: "test-noop", Family: "test", Description: "registry test stub"}
}

func (p *testProtocol) Run(ctx context.Context, spec Spec) (*Result, error) {
	p.runs.Add(1)
	return &Result{Winner: spec.K - 1, FinalCounts: make([]int, spec.K)}, nil
}

// unregisterForTest removes a test-registered protocol at test end so the
// global registry stays pristine for other tests and repeated runs.
func unregisterForTest(t *testing.T, name string) {
	t.Cleanup(func() {
		registryMu.Lock()
		defer registryMu.Unlock()
		delete(registry, name)
		for i, n := range registryOrder {
			if n == name {
				registryOrder = append(registryOrder[:i], registryOrder[i+1:]...)
				break
			}
		}
	})
}

func TestRegisterExternalProtocol(t *testing.T) {
	p := &testProtocol{}
	Register(p)
	unregisterForTest(t, "test-noop")
	res, err := Run(context.Background(), "test-noop", Spec{N: 10, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != 2 || p.runs.Load() != 1 {
		t.Errorf("stub protocol not routed through the registry: %+v", res)
	}
	found := false
	for _, name := range Protocols() {
		if name == "test-noop" {
			found = true
		}
	}
	if !found {
		t.Error("registered protocol missing from Protocols()")
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register(p)
}
