package plurality

import (
	"context"
	"runtime"
	"testing"
)

// TestMillionNodeAsyncRun drives the asynchronous single-leader protocol at
// n = 10⁶ — the scale where the paper's O(log² n) bounds separate from the
// O(n log n) baselines — over a bounded virtual-time window. The typed
// event kernel makes this a seconds-scale test; it is skipped under -short
// so the CI race build stays fast while plain `go test ./...` still
// exercises the full path.
func TestMillionNodeAsyncRun(t *testing.T) {
	if testing.Short() {
		t.Skip("million-node run skipped in -short mode")
	}
	spec := Spec{
		N: 1_000_000, K: 4, Alpha: 2, Seed: 1,
		MaxTime: 2, DiscardTrajectory: true,
	}
	res, err := Run(context.Background(), "leader", spec)
	if err != nil {
		t.Fatal(err)
	}
	events := res.Stats["events"]
	// Two virtual time units of rate-1 clocks over 10⁶ nodes must produce
	// at least 2·10⁶ tick events (plus completes and signals).
	if events < 2_000_000 {
		t.Fatalf("n=10⁶ run processed only %.0f events", events)
	}
	total := 0
	for _, c := range res.FinalCounts {
		total += c
	}
	if total != spec.N {
		t.Fatalf("final counts sum to %d, want %d", total, spec.N)
	}
}

// TestMillionNodeShardedRun drives the same n = 10⁶ window through the
// sharded kernel with a multi-worker pool — the configuration the tentpole
// exists for, and (under the CI race build's plain-mode run) the test that
// puts the barrier loop, the exchange buffers and the published-state
// snapshots in front of the race detector at full scale. Skipped under
// -short like its serial sibling.
func TestMillionNodeShardedRun(t *testing.T) {
	if testing.Short() {
		t.Skip("million-node sharded run skipped in -short mode")
	}
	spec := Spec{
		N: 1_000_000, K: 4, Alpha: 2, Seed: 1,
		MaxTime: 2, DiscardTrajectory: true, Shards: 4,
	}
	res, err := Run(context.Background(), "leader", spec)
	if err != nil {
		t.Fatal(err)
	}
	events := res.Stats["events"]
	if events < 2_000_000 {
		t.Fatalf("sharded n=10⁶ run processed only %.0f events", events)
	}
	if res.Stats["shards"] != 4 {
		t.Fatalf("shards stat = %v, want 4", res.Stats["shards"])
	}
	total := 0
	for _, c := range res.FinalCounts {
		total += c
	}
	if total != spec.N {
		t.Fatalf("final counts sum to %d, want %d", total, spec.N)
	}
}

// TestRunBatchWorkerInvariance pins the batch layer's determinism contract:
// the result slice is bit-identical for every worker count — sequential,
// bounded, and GOMAXPROCS-wide — because each replication owns a seeded
// RNG stream and writes an index-addressed slot. Run with -race in CI, it
// also exercises the pool for data races.
func TestRunBatchWorkerInvariance(t *testing.T) {
	spec := Spec{N: 400, K: 3, Alpha: 2, Seed: 42}
	const reps = 6
	baseline, err := RunBatch(context.Background(), "leader", spec, reps, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 0} {
		got, err := RunBatch(context.Background(), "leader", spec, reps, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if digestResult(got[i]) != digestResult(baseline[i]) {
				t.Fatalf("workers=%d: replication %d diverged from the sequential run", workers, i)
			}
		}
	}
}

// TestRunBatchMatchesSoloRuns checks that replication i of a sharded batch
// is the same run as a standalone Run with seed+i.
func TestRunBatchMatchesSoloRuns(t *testing.T) {
	spec := Spec{N: 300, K: 2, Alpha: 2.5, Seed: 9}
	const reps = 4
	batch, err := RunBatch(context.Background(), "decentralized", spec, reps, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < reps; i++ {
		s := spec
		s.Seed = spec.Seed + uint64(i)
		solo, err := Run(context.Background(), "decentralized", s)
		if err != nil {
			t.Fatal(err)
		}
		if digestResult(batch[i]) != digestResult(solo) {
			t.Fatalf("batch replication %d differs from solo run with seed %d", i, s.Seed)
		}
	}
}

// TestSweepWorkerInvariance checks that the flattened sweep aggregates the
// same tables regardless of pool width.
func TestSweepWorkerInvariance(t *testing.T) {
	cfg := SweepConfig{
		Protocol: "sync",
		Base:     Spec{Seed: 3, Alpha: 2},
		Ns:       []int{200, 400},
		Ks:       []int{2, 4},
		Reps:     3,
	}
	cfg.Workers = 1
	seq, err := Sweep(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = runtime.GOMAXPROCS(0)
	par, err := Sweep(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if seq.CSV() != par.CSV() {
		t.Fatalf("sweep output depends on worker count:\nseq:\n%s\npar:\n%s", seq.CSV(), par.CSV())
	}
}

// TestBenchReport smoke-tests the public throughput-report API.
func TestBenchReport(t *testing.T) {
	rep, err := Bench(context.Background(), "leader", Spec{
		N: 2000, K: 2, Alpha: 2, Seed: 1, MaxTime: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events == 0 || rep.EventsPerSec <= 0 || rep.WallSeconds <= 0 {
		t.Fatalf("implausible bench report: %+v", rep)
	}
	if rep.JSON() == "" {
		t.Fatal("empty JSON rendering")
	}
	batch, err := BenchBatch(context.Background(), "leader", Spec{
		N: 1000, K: 2, Alpha: 2, Seed: 1, MaxTime: 1,
	}, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Reps != 4 || batch.Workers != 2 || batch.Events <= rep.Events/4 {
		t.Fatalf("implausible batch report: %+v", batch)
	}
}

// TestMaxNodesValidation pins the lifted N bound: anything up to MaxNodes
// validates, anything beyond errors before a run starts.
func TestMaxNodesValidation(t *testing.T) {
	s := Spec{N: MaxNodes + 1, K: 2}
	if err := s.validate(); err == nil {
		t.Fatal("N beyond MaxNodes validated")
	}
	// MaxNodes itself passes validation (the complete-graph sampler is
	// O(1) in n, so this does not allocate node state).
	s = Spec{N: MaxNodes, K: 2}
	if err := s.validate(); err != nil {
		t.Fatalf("N = MaxNodes rejected: %v", err)
	}
}
