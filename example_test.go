package plurality_test

import (
	"context"
	"fmt"

	"plurality"
)

// The registry entry point on a comfortable instance: 10k nodes, 4
// opinions, bias 2. Deterministic in the seed, so the output is stable.
func ExampleRun() {
	res, err := plurality.Run(context.Background(), "sync", plurality.Spec{
		N: 10_000, K: 4, Alpha: 2, Seed: 1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("winner:", res.Winner)
	fmt.Println("plurality won:", res.PluralityWon)
	fmt.Println("full consensus:", res.FullConsensus)
	// Output:
	// winner: 0
	// plurality won: true
	// full consensus: true
}

// Every protocol — the paper's three algorithms and the four classical
// baselines — is served by the same Run call.
func ExampleProtocols() {
	for _, name := range plurality.Protocols()[:7] {
		fmt.Println(name)
	}
	// Output:
	// sync
	// leader
	// decentralized
	// pull-voting
	// two-choices
	// 3-majority
	// undecided-state
}

// Streaming a run: the Observer sees every snapshot as it is recorded, and
// DiscardTrajectory keeps the run's recording memory O(1) — the pattern for
// million-node runs.
func ExampleObserverFunc() {
	points := 0
	res, err := plurality.Run(context.Background(), "sync", plurality.Spec{
		N: 10_000, K: 4, Alpha: 2, Seed: 1,
		DiscardTrajectory: true,
		Observer: plurality.ObserverFunc(func(p plurality.TrajectoryPoint) {
			points++
		}),
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("streamed snapshots:", points > 0)
	fmt.Println("accumulated points:", len(res.Trajectory))
	// Output:
	// streamed snapshots: true
	// accumulated points: 0
}

// Building a skewed assignment and inspecting its bias before running.
func ExamplePlantedBias() {
	assign, err := plurality.PlantedBias(1000, 2, 3, 7)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	counts, _ := plurality.Counts(assign, 2)
	fmt.Println("counts:", counts)
	// Output:
	// counts: [750 250]
}

// Interpreting asynchronous results in the paper's time units.
func ExampleEstimateTimeUnit() {
	unit, err := plurality.EstimateTimeUnit(plurality.LatencySpec{Kind: "exp", Mean: 1}, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// The unit for Exp(1) latencies is F⁻¹(0.9) of T3 ≈ 9-11 steps.
	fmt.Println("plausible:", unit > 8 && unit < 12)
	// Output:
	// plausible: true
}

// A small factor-grid sweep with seeded replications, rendered as CSV.
func ExampleSweep() {
	res, err := plurality.Sweep(context.Background(), plurality.SweepConfig{
		Protocol: "sync",
		Base:     plurality.Spec{Seed: 1},
		Ns:       []int{1000},
		Ks:       []int{2, 4},
		Alphas:   []float64{3},
		Reps:     2,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, cell := range res.Cells {
		fmt.Printf("n=%d k=%d won=%.0f\n", cell.N, cell.K, cell.Metrics["plurality_won"].Mean)
	}
	// Output:
	// n=1000 k=2 won=1
	// n=1000 k=4 won=1
}
