package plurality_test

import (
	"fmt"

	"plurality"
)

// The synchronous protocol on a comfortable instance: 10k nodes, 4 opinions,
// bias 2. Deterministic in the seed, so the output is stable.
func ExampleRunSynchronous() {
	res, err := plurality.RunSynchronous(plurality.SyncConfig{
		N: 10_000, K: 4, Alpha: 2, Seed: 1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("winner:", res.Winner)
	fmt.Println("plurality won:", res.PluralityWon)
	fmt.Println("full consensus:", res.FullConsensus)
	// Output:
	// winner: 0
	// plurality won: true
	// full consensus: true
}

// Building a skewed assignment and inspecting its bias before running.
func ExamplePlantedBias() {
	assign, err := plurality.PlantedBias(1000, 2, 3, 7)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	counts, _ := plurality.Counts(assign, 2)
	fmt.Println("counts:", counts)
	// Output:
	// counts: [750 250]
}

// Interpreting asynchronous results in the paper's time units.
func ExampleEstimateTimeUnit() {
	unit, err := plurality.EstimateTimeUnit(plurality.LatencySpec{Kind: "exp", Mean: 1}, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// The unit for Exp(1) latencies is F⁻¹(0.9) of T3 ≈ 9-11 steps.
	fmt.Println("plausible:", unit > 8 && unit < 12)
	// Output:
	// plausible: true
}
