package plurality_test

import (
	"context"
	"fmt"

	"plurality"
)

// The registry entry point on a comfortable instance: 10k nodes, 4
// opinions, bias 2. Deterministic in the seed, so the output is stable.
func ExampleRun() {
	res, err := plurality.Run(context.Background(), "sync", plurality.Spec{
		N: 10_000, K: 4, Alpha: 2, Seed: 1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("winner:", res.Winner)
	fmt.Println("plurality won:", res.PluralityWon)
	fmt.Println("full consensus:", res.FullConsensus)
	// Output:
	// winner: 0
	// plurality won: true
	// full consensus: true
}

// Every protocol — the paper's three algorithms and the four classical
// baselines — is served by the same Run call.
func ExampleProtocols() {
	for _, name := range plurality.Protocols()[:7] {
		fmt.Println(name)
	}
	// Output:
	// sync
	// leader
	// decentralized
	// pull-voting
	// two-choices
	// 3-majority
	// undecided-state
}

// Streaming a run: the Observer sees every snapshot as it is recorded, and
// DiscardTrajectory keeps the run's recording memory O(1) — the pattern for
// million-node runs.
func ExampleObserverFunc() {
	points := 0
	res, err := plurality.Run(context.Background(), "sync", plurality.Spec{
		N: 10_000, K: 4, Alpha: 2, Seed: 1,
		DiscardTrajectory: true,
		Observer: plurality.ObserverFunc(func(p plurality.TrajectoryPoint) {
			points++
		}),
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("streamed snapshots:", points > 0)
	fmt.Println("accumulated points:", len(res.Trajectory))
	// Output:
	// streamed snapshots: true
	// accumulated points: 0
}

// Building a skewed assignment and inspecting its bias before running.
func ExamplePlantedBias() {
	assign, err := plurality.PlantedBias(1000, 2, 3, 7)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	counts, _ := plurality.Counts(assign, 2)
	fmt.Println("counts:", counts)
	// Output:
	// counts: [750 250]
}

// Interpreting asynchronous results in the paper's time units.
func ExampleEstimateTimeUnit() {
	unit, err := plurality.EstimateTimeUnit(plurality.LatencySpec{Kind: "exp", Mean: 1}, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// The unit for Exp(1) latencies is F⁻¹(0.9) of T3 ≈ 9-11 steps.
	fmt.Println("plausible:", unit > 8 && unit < 12)
	// Output:
	// plausible: true
}

// A small factor-grid sweep with seeded replications, rendered as CSV.
func ExampleSweep() {
	res, err := plurality.Sweep(context.Background(), plurality.SweepConfig{
		Protocol: "sync",
		Base:     plurality.Spec{Seed: 1},
		Ns:       []int{1000},
		Ks:       []int{2, 4},
		Alphas:   []float64{3},
		Reps:     2,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, cell := range res.Cells {
		fmt.Printf("n=%d k=%d won=%.0f\n", cell.N, cell.K, cell.Metrics["plurality_won"].Mean)
	}
	// Output:
	// n=1000 k=2 won=1
	// n=1000 k=4 won=1
}

// Checkpointing a run half way, shipping the snapshot through its wire
// format, and resuming it bit-exactly: the resumed Result is the one the
// uninterrupted run would have produced — pause, copy and continue are
// free of drift.
func ExampleResume() {
	ctx := context.Background()
	spec := plurality.Spec{N: 2_000, K: 3, Alpha: 2, Seed: 5}
	plain, err := plurality.Run(ctx, "leader", spec)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	spec.Checkpoint = plurality.CheckpointSpec{SnapshotAt: plain.Duration / 2, Halt: true}
	half, err := plurality.Run(ctx, "leader", spec)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	blob, err := half.Snapshot.Encode() // a self-contained, file-ready blob
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	snapshot, err := plurality.DecodeSnapshot(blob)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := plurality.Resume(ctx, snapshot, nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("same winner:", res.Winner == plain.Winner)
	fmt.Println("same consensus time:", res.ConsensusTime == plain.ConsensusTime)
	fmt.Println("same trajectory length:", len(res.Trajectory) == len(plain.Trajectory))
	// Output:
	// same winner: true
	// same consensus time: true
	// same trajectory length: true
}

// Warm-started replication: one shared burn-in snapshot, several divergent
// futures. Replication 0 continues bit-exactly; the others perturb every
// RNG stream with a deterministic label.
func ExampleRunBatchFrom() {
	ctx := context.Background()
	spec := plurality.Spec{N: 2_000, K: 3, Alpha: 2, Seed: 5,
		Checkpoint: plurality.CheckpointSpec{SnapshotAt: 10, Halt: true}}
	half, err := plurality.Run(ctx, "leader", spec)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	futures, err := plurality.RunBatchFrom(ctx, half.Snapshot, 3, 0)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("futures:", len(futures))
	fmt.Println("all converged:", futures[0].FullConsensus &&
		futures[1].FullConsensus && futures[2].FullConsensus)
	fmt.Println("futures diverged:", futures[1].ConsensusTime != futures[2].ConsensusTime)
	// Output:
	// futures: 3
	// all converged: true
	// futures diverged: true
}
