package plurality

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestRunManyMatchesSingleRuns(t *testing.T) {
	spec := Spec{N: 500, K: 2, Alpha: 3, Seed: 40}
	many, err := RunMany(context.Background(), "sync", spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(many) != 4 {
		t.Fatalf("got %d results", len(many))
	}
	for i, got := range many {
		s := spec
		s.Seed = spec.Seed + uint64(i)
		want, err := Run(context.Background(), "sync", s)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("replication %d differs from the equivalent single run", i)
		}
	}
}

func TestRunManyErrors(t *testing.T) {
	if _, err := RunMany(context.Background(), "sync", Spec{N: 100, K: 2}, 0); err == nil {
		t.Error("reps=0 accepted")
	}
	if _, err := RunMany(context.Background(), "bogus", Spec{N: 100, K: 2}, 2); !errors.Is(err, ErrUnknownProtocol) {
		t.Errorf("err = %v, want ErrUnknownProtocol", err)
	}
	if _, err := RunMany(context.Background(), "sync", Spec{N: 1, K: 2}, 2); err == nil ||
		!strings.Contains(err.Error(), "need N >= 2") {
		t.Errorf("err = %v, want shared validation error", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunMany(ctx, "sync", Spec{N: 5000, K: 4, Alpha: 2}, 8); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestSweepGrid(t *testing.T) {
	res, err := Sweep(context.Background(), SweepConfig{
		Protocol: "sync",
		Base:     Spec{Seed: 7},
		Ns:       []int{400, 800},
		Ks:       []int{2, 4},
		Alphas:   []float64{3},
		Reps:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(res.Cells))
	}
	first := res.Cells[0]
	if first.N != 400 || first.K != 2 || first.Alpha != 3 {
		t.Errorf("grid order wrong: %+v", first)
	}
	for _, cell := range res.Cells {
		d, ok := cell.Metrics["duration"]
		if !ok || d.N != 2 || d.Mean <= 0 {
			t.Errorf("cell %+v: bad duration summary %+v", cell, d)
		}
		if won := cell.Metrics["plurality_won"]; won.Mean != 1 {
			t.Errorf("cell n=%d k=%d: plurality_won %v, want 1 at alpha=3",
				cell.N, cell.K, won.Mean)
		}
	}
	if out := res.Render(); !strings.Contains(out, "sweep: sync") {
		t.Errorf("Render missing caption:\n%s", out)
	}
	if csv := res.CSV(); !strings.Contains(csv, "duration_mean") {
		t.Errorf("CSV missing metric column:\n%s", csv)
	}
}

func TestSweepCustomMetricsAndErrors(t *testing.T) {
	res, err := Sweep(context.Background(), SweepConfig{
		Protocol: "two-choices",
		Base:     Spec{N: 300, K: 2, Alpha: 4, Seed: 1},
		Reps:     2,
		Metrics: func(r *Result) map[string]float64 {
			return map[string]float64{"winner": float64(r.Winner)}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 1 || res.Cells[0].Metrics["winner"].N != 2 {
		t.Fatalf("custom metrics not aggregated: %+v", res.Cells)
	}

	if _, err := Sweep(context.Background(), SweepConfig{Protocol: "bogus"}); !errors.Is(err, ErrUnknownProtocol) {
		t.Errorf("err = %v, want ErrUnknownProtocol", err)
	}
	if _, err := Sweep(context.Background(), SweepConfig{
		Protocol: "sync", Base: Spec{K: 2}, Ns: []int{1},
	}); err == nil {
		t.Error("invalid grid point accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Sweep(ctx, SweepConfig{
		Protocol: "sync", Base: Spec{N: 400, K: 2, Alpha: 3},
	}); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}
