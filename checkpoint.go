package plurality

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"

	"plurality/internal/harness"
	"plurality/internal/snap"
)

// SnapshotFormatVersion is the current snapshot blob format. Decoding a
// blob recorded under any other version fails with ErrSnapshotVersion:
// engine payloads are positional binary encodings, so cross-version
// restores would silently misinterpret state rather than degrade
// gracefully. Bump it whenever any engine's capture layout changes — or the
// meta JSON's field names do (version 2 switched SnapshotMeta.Spec to the
// stable snake_case wire tags the serving layer speaks; version 3 added the
// sharded engines' per-shard payload section — shard ladders, clocks, RNG
// substreams and parked-message arenas captured at a window barrier;
// version 4 switched the synchronous engine's payload to the packed
// word-per-node configuration, dropping the serialized tally matrix that
// is now rebuilt at restore).
const SnapshotFormatVersion = 4

// snapshotMagic is the 8-byte blob signature.
const snapshotMagic = "PLURSNAP"

// Typed snapshot errors, matchable with errors.Is.
var (
	// ErrSnapshotFormat reports that the input is not a snapshot blob at
	// all (bad magic).
	ErrSnapshotFormat = errors.New("plurality: not a snapshot blob")
	// ErrSnapshotVersion reports a blob recorded under a different
	// SnapshotFormatVersion.
	ErrSnapshotVersion = errors.New("plurality: unsupported snapshot format version")
	// ErrSnapshotTruncated reports a blob that ends before its declared
	// structure is complete.
	ErrSnapshotTruncated = errors.New("plurality: truncated snapshot")
	// ErrSnapshotCorrupt reports a structurally invalid blob (checksum
	// mismatch, impossible lengths, state that fails validation).
	ErrSnapshotCorrupt = errors.New("plurality: corrupt snapshot")
	// ErrNoCheckpoint reports a checkpoint request against a protocol that
	// does not support capture/resume (see ProtocolInfo.Checkpointable).
	ErrNoCheckpoint = errors.New("plurality: protocol does not support checkpointing")
	// ErrSnapshotShards reports a sharded blob resumed at a different shard
	// count: a snapshot taken at Shards=S embeds S per-shard sections
	// (ladder, clocks, RNG substreams) and resumes bit-exactly only at
	// Shards=S. Re-run from scratch at the new count instead.
	ErrSnapshotShards = errors.New("plurality: snapshot captured at a different shard count")
)

// CheckpointSpec configures mid-run snapshot capture; the zero value
// disables it. It lives on Spec, so every entry point — Run, RunMany,
// RunBatch, Sweep — can request snapshots.
type CheckpointSpec struct {
	// SnapshotAt requests one state capture the first time the run's
	// native clock reaches this value: virtual time steps for asynchronous
	// protocols, (parallel) rounds for synchronous ones — the same axis as
	// Result.Duration. For event-driven engines the capture happens after
	// the last event scheduled at or before SnapshotAt has executed, so no
	// extra event is injected and the trajectory is byte-identical to an
	// uninterrupted run. If the run terminates earlier, no snapshot is
	// taken. Must be >= 0; 0 disables capture.
	SnapshotAt float64 `json:"snapshot_at,omitempty"`
	// Halt stops the run right after the capture. The returned Result then
	// reflects the truncated run; the snapshot resumes it. Without Halt
	// the run continues to its normal end and the snapshot is a pure side
	// effect.
	Halt bool `json:"halt,omitempty"`
	// Sink, when non-nil, receives the snapshot the moment it is taken —
	// the streaming observer of the checkpoint subsystem. The snapshot is
	// also attached to Result.Snapshot either way. Runtime-only: not
	// serialized into checkpoint metadata.
	Sink func(*Snapshot) `json:"-"`
}

// SnapshotMeta is the self-describing header of a snapshot blob, stored as
// a JSON sidecar inside (and alongside) the binary payload.
type SnapshotMeta struct {
	// FormatVersion is the SnapshotFormatVersion the blob was recorded
	// under.
	FormatVersion int `json:"format_version"`
	// Protocol is the registry name of the captured run.
	Protocol string `json:"protocol"`
	// Time is the native-clock value at capture (virtual time or rounds).
	Time float64 `json:"time"`
	// Events is the number of kernel events executed at capture (0 for
	// round-based protocols).
	Events uint64 `json:"events"`
	// Spec is the captured run's configuration with runtime-only fields
	// (Observer, Checkpoint) cleared; Resume rebuilds the engine from it.
	Spec Spec `json:"spec"`
}

// Snapshot is one captured simulator state: versioned JSON metadata plus
// the engine's opaque binary payload. Encode/DecodeSnapshot convert it to
// and from a single self-contained blob; Resume continues the run.
// Snapshots are deterministic: capturing the same (protocol, Spec,
// SnapshotAt) twice yields byte-identical blobs.
type Snapshot struct {
	meta    SnapshotMeta
	payload []byte
}

// Meta returns the snapshot's descriptive header.
func (s *Snapshot) Meta() SnapshotMeta { return s.meta }

// MetaJSON renders the header as indented JSON — the sidecar the CLI
// writes next to blob files.
func (s *Snapshot) MetaJSON() ([]byte, error) {
	return json.MarshalIndent(s.meta, "", "  ")
}

// Encode renders the snapshot as one self-contained blob:
//
//	magic "PLURSNAP" | u16 version | u32 metaLen | meta JSON |
//	u32 payloadLen | payload | u32 CRC-32 (IEEE, over everything before it)
//
// all fixed-width integers little-endian.
func (s *Snapshot) Encode() ([]byte, error) {
	metaJSON, err := json.Marshal(s.meta)
	if err != nil {
		return nil, fmt.Errorf("plurality: encoding snapshot meta: %w", err)
	}
	buf := make([]byte, 0, len(snapshotMagic)+2+4+len(metaJSON)+4+len(s.payload)+4)
	buf = append(buf, snapshotMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(s.meta.FormatVersion))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(metaJSON)))
	buf = append(buf, metaJSON...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.payload)))
	buf = append(buf, s.payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf, nil
}

// DecodeSnapshot parses a blob produced by Encode. Failures are typed —
// ErrSnapshotFormat, ErrSnapshotVersion, ErrSnapshotTruncated,
// ErrSnapshotCorrupt — and never panic, whatever the input (fuzzed in
// FuzzDecodeSnapshot).
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	if len(data) < len(snapshotMagic) {
		return nil, fmt.Errorf("%w: %d bytes", ErrSnapshotTruncated, len(data))
	}
	if string(data[:len(snapshotMagic)]) != snapshotMagic {
		return nil, ErrSnapshotFormat
	}
	off := len(snapshotMagic)
	if len(data) < off+2+4 {
		return nil, fmt.Errorf("%w: header cut short at %d bytes", ErrSnapshotTruncated, len(data))
	}
	version := int(binary.LittleEndian.Uint16(data[off:]))
	off += 2
	if version != SnapshotFormatVersion {
		return nil, fmt.Errorf("%w: blob version %d, this build reads version %d",
			ErrSnapshotVersion, version, SnapshotFormatVersion)
	}
	metaLen := int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	if metaLen < 0 || off+metaLen+4 > len(data) {
		return nil, fmt.Errorf("%w: meta length %d exceeds blob", ErrSnapshotTruncated, metaLen)
	}
	metaJSON := data[off : off+metaLen]
	off += metaLen
	payloadLen := int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	if payloadLen < 0 || off+payloadLen+4 > len(data) {
		return nil, fmt.Errorf("%w: payload length %d exceeds blob", ErrSnapshotTruncated, payloadLen)
	}
	payload := data[off : off+payloadLen]
	off += payloadLen
	if off+4 != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrSnapshotCorrupt, len(data)-off-4)
	}
	if got, want := crc32.ChecksumIEEE(data[:off]), binary.LittleEndian.Uint32(data[off:]); got != want {
		return nil, fmt.Errorf("%w: checksum %08x, want %08x", ErrSnapshotCorrupt, got, want)
	}
	var meta SnapshotMeta
	if err := json.Unmarshal(metaJSON, &meta); err != nil {
		return nil, fmt.Errorf("%w: meta: %v", ErrSnapshotCorrupt, err)
	}
	if meta.FormatVersion != version {
		return nil, fmt.Errorf("%w: meta declares version %d inside a version-%d blob",
			ErrSnapshotCorrupt, meta.FormatVersion, version)
	}
	if meta.Protocol == "" {
		return nil, fmt.Errorf("%w: empty protocol name", ErrSnapshotCorrupt)
	}
	return &Snapshot{meta: meta, payload: append([]byte(nil), payload...)}, nil
}

// Resumer is the optional capability a Protocol implements to support
// checkpointing; all built-in protocols do. ResumeRun restores the engine
// state captured in an earlier snapshot of the same protocol and runs it to
// completion; perturb != 0 additionally folds a divergence label into every
// restored RNG stream (see ResumeOptions.Perturb). Implementations must
// honour spec.Checkpoint, so resumed runs can be checkpointed again.
type Resumer interface {
	ResumeRun(ctx context.Context, spec Spec, state []byte, perturb uint64) (*Result, error)
}

// ResumeOptions adjusts how a snapshot is resumed; nil keeps the captured
// configuration exactly.
type ResumeOptions struct {
	// Observer re-attaches a streaming observer (observers are not
	// serializable and therefore not part of the snapshot). It sees only
	// the points recorded after the restore; the accumulated trajectory in
	// the final Result is nevertheless complete.
	Observer Observer
	// MaxTime overrides the asynchronous horizon (> its captured value to
	// extend a run past its original deadline); 0 keeps the captured one.
	MaxTime float64
	// MaxSteps likewise overrides the round-based horizon; 0 keeps it.
	MaxSteps int
	// Perturb, when non-zero, deterministically decorrelates every RNG
	// stream from the captured continuation: the resumed run shares the
	// prefix but draws an independent future. Distinct labels give
	// distinct futures; the same label reproduces the same future. This is
	// the warm-start primitive behind RunBatchFrom and Sweep's WarmStart.
	Perturb uint64
	// DiscardTrajectory stops trajectory accumulation from the restore
	// onward (one-way: it cannot resurrect points a discarding capture
	// never stored). Points restored from the snapshot are kept; combine
	// with Observer to stream the rest at O(1) memory — the -stream mode
	// of a resumed CLI run.
	DiscardTrajectory bool
	// Checkpoint lets the resumed run take further snapshots.
	Checkpoint CheckpointSpec
}

// Resume continues a snapshotted run to completion and returns its final
// Result. With nil opts (or zero Perturb) the continuation is bit-exact:
// the Result is identical to the one an uninterrupted run would have
// produced — the roundtrip the snapshot golden tests pin. The snapshot's
// protocol must be registered and checkpointable.
func Resume(ctx context.Context, snapshot *Snapshot, opts *ResumeOptions) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if snapshot == nil {
		return nil, fmt.Errorf("%w: nil snapshot", ErrSnapshotCorrupt)
	}
	if len(snapshot.payload) == 0 {
		return nil, fmt.Errorf("%w: empty engine payload", ErrSnapshotTruncated)
	}
	p, err := Lookup(snapshot.meta.Protocol)
	if err != nil {
		return nil, err
	}
	rp, ok := p.(Resumer)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoCheckpoint, snapshot.meta.Protocol)
	}
	spec := snapshot.meta.Spec
	var perturb uint64
	if opts != nil {
		spec.Observer = opts.Observer
		if opts.MaxTime > 0 {
			spec.MaxTime = opts.MaxTime
		}
		if opts.MaxSteps > 0 {
			spec.MaxSteps = opts.MaxSteps
		}
		if opts.DiscardTrajectory {
			spec.DiscardTrajectory = true
		}
		spec.Checkpoint = opts.Checkpoint
		perturb = opts.Perturb
	}
	if err := spec.validate(); err != nil {
		return nil, fmt.Errorf("%w: captured spec invalid: %v", ErrSnapshotCorrupt, err)
	}
	res, err := rp.ResumeRun(ctx, spec, snapshot.payload, perturb)
	if err != nil {
		return nil, mapRestoreErr(err)
	}
	return res, nil
}

// mapRestoreErr lifts internal codec failures into the public typed errors
// while leaving every other error (cancellation, validation) untouched.
func mapRestoreErr(err error) error {
	switch {
	case errors.Is(err, snap.ErrShardCount):
		return fmt.Errorf("%w: %v", ErrSnapshotShards, err)
	case errors.Is(err, snap.ErrTruncated):
		return fmt.Errorf("%w: %v", ErrSnapshotTruncated, err)
	case errors.Is(err, snap.ErrCorrupt):
		return fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	default:
		return err
	}
}

// RunBatchFrom resumes one snapshot reps times on a bounded worker pool
// (workers <= 0 means GOMAXPROCS) — the warm-start batch: the snapshotted
// prefix is paid for once and every replication branches off it.
// Replication 0 is the bit-exact continuation; replication i > 0 resumes
// with Perturb label i, an independent deterministic future. Results are
// index-addressed, so the slice is identical for every worker count.
func RunBatchFrom(ctx context.Context, snapshot *Snapshot, reps, workers int) ([]*Result, error) {
	if reps <= 0 {
		return nil, fmt.Errorf("plurality: RunBatchFrom with reps=%d", reps)
	}
	if snapshot == nil {
		return nil, fmt.Errorf("%w: nil snapshot", ErrSnapshotCorrupt)
	}
	results := make([]*Result, reps)
	err := harness.ForEachWorkers(ctx, reps, workers, func(ctx context.Context, i int) error {
		res, err := Resume(ctx, snapshot, &ResumeOptions{Perturb: uint64(i)})
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}
