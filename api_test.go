package plurality

import (
	"math"
	"testing"
)

func TestRunSynchronousAPI(t *testing.T) {
	res, err := RunSynchronous(SyncConfig{N: 2000, K: 4, Alpha: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FullConsensus || !res.PluralityWon {
		t.Fatalf("outcome %v", res)
	}
	if res.Winner != 0 {
		t.Errorf("winner %d, want 0 (planted)", res.Winner)
	}
	if len(res.Trajectory) == 0 || res.Trajectory[0].Time != 0 {
		t.Error("trajectory missing initial snapshot")
	}
	if res.Stats["generations"] < 1 {
		t.Error("no generations reported")
	}
}

func TestRunSynchronousTheoretical(t *testing.T) {
	res, err := RunSynchronous(SyncConfig{
		N: 2000, K: 2, Alpha: 2, Seed: 2, TheoreticalSchedule: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FullConsensus {
		t.Fatalf("theoretical schedule failed: %v", res)
	}
}

func TestRunSingleLeaderAPI(t *testing.T) {
	res, err := RunSingleLeader(AsyncConfig{N: 800, K: 3, Alpha: 2.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FullConsensus || !res.PluralityWon {
		t.Fatalf("outcome %v (timed out %v)", res, res.TimedOut)
	}
	if res.Stats["c1"] <= 0 {
		t.Error("C1 not reported")
	}
	if res.Stats["events"] <= 0 {
		t.Error("events not reported")
	}
}

func TestRunDecentralizedAPI(t *testing.T) {
	res, err := RunDecentralized(AsyncConfig{N: 1500, K: 2, Alpha: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FullConsensus || !res.PluralityWon {
		t.Fatalf("outcome %v (timed out %v)", res, res.TimedOut)
	}
	if res.Stats["participating_frac"] < 0.7 {
		t.Errorf("participating fraction %v", res.Stats["participating_frac"])
	}
	if res.Stats["clustering_time"] <= 0 {
		t.Error("clustering time missing")
	}
}

func TestRunBaselineAPI(t *testing.T) {
	for _, rule := range Baselines() {
		res, err := RunBaseline(rule, BaselineConfig{N: 600, K: 2, Alpha: 3, Seed: 5})
		if err != nil {
			t.Fatalf("%s: %v", rule, err)
		}
		if !res.FullConsensus {
			t.Errorf("%s did not converge", rule)
		}
	}
	if _, err := RunBaseline("bogus", BaselineConfig{N: 10, K: 2}); err == nil {
		t.Error("unknown baseline accepted")
	}
}

func TestRunBaselineSequential(t *testing.T) {
	res, err := RunBaseline("3-majority", BaselineConfig{
		N: 400, K: 2, Alpha: 3, Seed: 6, Sequential: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FullConsensus {
		t.Error("sequential 3-majority did not converge")
	}
}

func TestCustomAssignmentRoundTrip(t *testing.T) {
	assign, err := PlantedBias(1000, 4, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bias(assign, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-2) > 0.2 {
		t.Errorf("bias %v, want ~2", b)
	}
	res, err := RunSynchronous(SyncConfig{N: 1000, K: 4, Assignment: assign, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FullConsensus {
		t.Error("custom assignment run failed")
	}
}

func TestAssignmentValidation(t *testing.T) {
	if _, err := PlantedBias(10, 0, 2, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := PlantedBias(10, 2, 0.5, 1); err == nil {
		t.Error("alpha<1 accepted")
	}
	if _, err := RunSynchronous(SyncConfig{N: 10, K: 2, Assignment: []int{5, 0, 0, 0, 0, 0, 0, 0, 0, 0}}); err == nil {
		t.Error("out-of-range assignment accepted")
	}
	if _, err := RunSynchronous(SyncConfig{N: 10, K: 2, Assignment: []int{0}}); err == nil {
		t.Error("short assignment accepted")
	}
}

func TestLatencySpecs(t *testing.T) {
	for _, spec := range []LatencySpec{
		{},
		{Kind: "exp", Mean: 0.5},
		{Kind: "const", Mean: 1},
		{Kind: "uniform", Mean: 1},
		{Kind: "erlang", Mean: 1, Shape: 3},
	} {
		res, err := RunSingleLeader(AsyncConfig{
			N: 400, K: 2, Alpha: 3, Seed: 9, Latency: spec,
		})
		if err != nil {
			t.Fatalf("latency %+v: %v", spec, err)
		}
		if !res.FullConsensus {
			t.Errorf("latency %+v: no consensus", spec)
		}
	}
	if _, err := RunSingleLeader(AsyncConfig{N: 400, K: 2, Latency: LatencySpec{Kind: "bogus"}}); err == nil {
		t.Error("unknown latency kind accepted")
	}
}

func TestZipfAndUniformAssignments(t *testing.T) {
	z, err := ZipfAssignment(5000, 10, 1.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := Counts(z, 10)
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] <= counts[9] {
		t.Error("Zipf assignment not skewed")
	}
	u, err := UniformAssignment(100, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(u) != 100 {
		t.Error("uniform assignment wrong length")
	}
}

func TestMinTheoremBias(t *testing.T) {
	if MinTheoremBias(100, 1) != 1 {
		t.Error("k=1 bias should be 1")
	}
	b := MinTheoremBias(1_000_000, 10)
	if b <= 1 || b > 2 {
		t.Errorf("MinTheoremBias(1e6, 10) = %v", b)
	}
}

func TestEstimateTimeUnit(t *testing.T) {
	u, err := EstimateTimeUnit(LatencySpec{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if u < 5 || u > 15 {
		t.Errorf("time unit %v for exp(1), want ~10", u)
	}
	slow, err := EstimateTimeUnit(LatencySpec{Mean: 10}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if slow < 5*u {
		t.Errorf("time unit %v for mean-10 latency, want ~10× the mean-1 value %v", slow, u)
	}
}

func TestMaxGenMonotoneAcrossProtocols(t *testing.T) {
	// Protocol invariant: the maximum generation present never decreases.
	runs := []func() (*Result, error){
		func() (*Result, error) {
			return RunSynchronous(SyncConfig{N: 2000, K: 4, Alpha: 2, Seed: 31})
		},
		func() (*Result, error) {
			return RunSingleLeader(AsyncConfig{N: 800, K: 4, Alpha: 2.5, Seed: 31})
		},
		func() (*Result, error) {
			return RunDecentralized(AsyncConfig{N: 1200, K: 4, Alpha: 2.5, Seed: 31})
		},
	}
	for i, run := range runs {
		res, err := run()
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		prevGen := -1
		prevT := -1.0
		for _, p := range res.Trajectory {
			if p.MaxGen < prevGen {
				t.Errorf("run %d: max generation decreased %d -> %d at t=%v",
					i, prevGen, p.MaxGen, p.Time)
			}
			if p.Time < prevT {
				t.Errorf("run %d: trajectory time went backwards at %v", i, p.Time)
			}
			prevGen, prevT = p.MaxGen, p.Time
		}
	}
}

func TestSchedulesAgreeOnWinner(t *testing.T) {
	// Both schedules must solve the same instance; on a comfortably biased
	// input they elect the same (planted) winner.
	assign, err := PlantedBias(3000, 4, 2.5, 33)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := RunSynchronous(SyncConfig{N: 3000, K: 4, Assignment: assign, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	theoretical, err := RunSynchronous(SyncConfig{
		N: 3000, K: 4, Assignment: assign, Seed: 33, TheoreticalSchedule: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !adaptive.PluralityWon || !theoretical.PluralityWon {
		t.Errorf("schedules disagree with the plantation: adaptive=%v theoretical=%v",
			adaptive.PluralityWon, theoretical.PluralityWon)
	}
	if adaptive.Winner != theoretical.Winner {
		t.Errorf("winners differ: %d vs %d", adaptive.Winner, theoretical.Winner)
	}
}

func TestFinalCountsConserveNodes(t *testing.T) {
	res, err := RunDecentralized(AsyncConfig{N: 1000, K: 3, Alpha: 3, Seed: 35})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range res.FinalCounts {
		total += c
	}
	if total != 1000 {
		t.Errorf("final counts sum to %d, want 1000", total)
	}
}

func TestResultString(t *testing.T) {
	res, err := RunSynchronous(SyncConfig{N: 500, K: 2, Alpha: 3, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.String() == "" {
		t.Error("empty Result.String()")
	}
}
