package plurality

import (
	"context"
	"fmt"
	"os"
	"testing"
)

// This file pins the sharded kernel's determinism contract at the public
// API, mirroring kernel_golden_test.go: for a FIXED shard count the full
// Result is a pure function of (spec, seed, shards) — invariant to
// GOMAXPROCS, the worker bound and the machine — and Shards <= 1 is the
// serial kernel, byte-identical to the pre-sharding goldens.
//
// To re-record after an intentional, reviewed behaviour change:
//
//	PLURALITY_GOLDEN_RECORD=1 go test -run TestShardedGolden -v .

// shardedGoldenSpec is the golden instance on the sharded path: same shape
// as kernelGoldenSpec but bigger, so every shard owns enough nodes for all
// protocol phases to cross shard boundaries.
func shardedGoldenSpec(shards int, tp TopologySpec) Spec {
	return Spec{N: 2400, K: 3, Alpha: 2.5, Seed: 7, Shards: shards, Topology: tp}
}

// shardedGolden maps "<protocol>/S=<shards>/<topology>" to the digest
// recorded when that protocol's sharded kernel landed.
var shardedGolden = map[string]string{
	"decentralized/S=2/complete":     "41e226572d6ecc33ceb3335bac1301dcf5564babcc0315f33520ca17bd46193d",
	"decentralized/S=2/torus(48x50)": "11a26366610cfd933d7a54809efaa547254b1ba6bacea15f51bdc852a7dcee99",
	"decentralized/S=4/complete":     "4c4666c5efe122be0282e3c6b44303d84c86d2315e2a17e8e462f755bd3ae2d1",
	"decentralized/S=4/torus(48x50)": "13d6878c51108231e177864de119b2d02cf776a1d896989a8463dfc1800a4b03",
	"leader/S=2/complete":            "b0668c90e6ebad1aa615cea93d445457f65df1585a1d4853745ea949fbb7b159",
	"leader/S=2/torus(48x50)":        "ec67dbf96cd3d1aa2d5ca6f91eea6dfa23fe230067253d1d1ab3cd1f98a17dd0",
	"leader/S=4/complete":            "d55c97df1543abd7e96e9924c46bb16fa6f2e212ba4368f2d88d7e18eb7bed25",
	"leader/S=4/torus(48x50)":        "2fd3c1006dd7943bca70df0e637da4c391da9b0b6b178350b98e3be3b4a56e51",
}

// TestShardedGolden pins shard-count invariance the way worker-count
// invariance is pinned for batches: the digest for a fixed S must reproduce
// everywhere, and must stay stable across refactors of the barrier loop,
// the exchange buffers or the partitioner.
func TestShardedGolden(t *testing.T) {
	record := os.Getenv("PLURALITY_GOLDEN_RECORD") != ""
	topos := []TopologySpec{{Kind: TopologyComplete}, {Kind: TopologyTorus}}
	for _, name := range []string{"leader", "decentralized"} {
		for _, shards := range []int{2, 4} {
			for _, tp := range topos {
				spec := shardedGoldenSpec(shards, tp)
				key := fmt.Sprintf("%s/S=%d/%s", name, shards, tp.ResolvedLabel(spec.N))
				t.Run(key, func(t *testing.T) {
					if testing.Short() && tp.Kind != TopologyComplete && !record {
						t.Skip("sparse-topology sharded column skipped in -short mode")
					}
					res, err := Run(context.Background(), name, spec)
					if err != nil {
						t.Fatalf("Run(%s): %v", key, err)
					}
					got := digestResult(res)
					if record {
						fmt.Printf("GOLDEN\t%q: %q,\n", key, got)
						return
					}
					want, ok := shardedGolden[key]
					if !ok || want == "" {
						t.Fatalf("no golden digest recorded for %s (got %s)", key, got)
					}
					if got != want {
						t.Errorf("sharded digest changed for %s:\n  got  %s\n  want %s\nfor a fixed shard count the result must be a pure function of (spec, seed, shards)", key, got, want)
					}
				})
			}
		}
	}
}

// TestShardsOneIsSerial pins the compatibility half of the contract at the
// public API: Shards: 1 routes through the serial kernel and reproduces the
// pre-sharding golden digest byte for byte.
func TestShardsOneIsSerial(t *testing.T) {
	for _, name := range []string{"leader", "decentralized"} {
		for _, tp := range goldenTopologies {
			spec := kernelGoldenSpec(tp)
			spec.Shards = 1
			key := fmt.Sprintf("%s/%s", name, tp.ResolvedLabel(spec.N))
			t.Run(key, func(t *testing.T) {
				if testing.Short() && tp.Kind != TopologyComplete {
					t.Skip("sparse-topology column skipped in -short mode")
				}
				res, err := Run(context.Background(), name, spec)
				if err != nil {
					t.Fatal(err)
				}
				if got := digestResult(res); got != kernelGolden[key] {
					t.Errorf("Shards=1 digest %s != serial golden %s: the serial path is no longer byte-identical", got, kernelGolden[key])
				}
			})
		}
	}
}
