package plurality

import (
	"fmt"

	"plurality/internal/metrics"
	"plurality/internal/opinion"
)

// TrajectoryPoint is one recorded snapshot of a run. Time is measured in
// synchronous rounds for RunSynchronous and RunBaseline, and in virtual time
// steps (one expected Poisson tick per node per step) for the asynchronous
// protocols.
type TrajectoryPoint struct {
	Time          float64
	TopFrac       float64
	PluralityFrac float64
	Bias          float64
	MaxGen        int
}

// Result is the outcome of one protocol run.
type Result struct {
	// Winner is the opinion held by the most nodes at termination.
	Winner int
	// PluralityWon reports whether Winner is the initially dominant
	// opinion — the correctness criterion of plurality consensus.
	PluralityWon bool
	// FullConsensus reports whether every node held Winner at termination,
	// and ConsensusTime when that first happened.
	FullConsensus bool
	ConsensusTime float64
	// EpsReached reports whether a 1−Eps fraction of nodes held the
	// initial plurality opinion at some recorded time, and EpsTime the
	// first such time (Theorem 13's ε-convergence).
	EpsReached bool
	EpsTime    float64
	Eps        float64
	// Duration is the total virtual time (or rounds) the run executed.
	Duration float64
	// TimedOut reports that the run hit its horizon before full consensus.
	TimedOut bool
	// FinalCounts are the per-opinion supporter counts at termination.
	FinalCounts []int
	// Trajectory holds the recorded snapshots.
	Trajectory []TrajectoryPoint
	// Stats carries protocol-specific measurements, e.g. "c1" (steps per
	// time unit), "events" (simulator events), "clustering_time",
	// "participating_frac", "gstar", "generations".
	Stats map[string]float64
	// Snapshot holds the mid-run state capture requested via
	// Spec.Checkpoint; nil when none was requested or the run ended before
	// reaching SnapshotAt. It is excluded from JSON output — snapshots are
	// exported explicitly through Snapshot.Encode.
	Snapshot *Snapshot `json:"-"`
}

// String renders a one-line summary.
func (r *Result) String() string {
	status := "plurality LOST"
	if r.PluralityWon {
		status = "plurality won"
	}
	if r.FullConsensus {
		return fmt.Sprintf("winner=%d (%s), consensus at t=%.4g", r.Winner, status, r.ConsensusTime)
	}
	return fmt.Sprintf("winner=%d (%s), no full consensus by t=%.4g", r.Winner, status, r.Duration)
}

// convertResult translates internal outcome/trajectory types to the public
// Result.
func convertResult(out metrics.Outcome, tr metrics.Trajectory, final opinion.Counts,
	duration float64, timedOut bool, extra map[string]float64) *Result {
	res := &Result{
		Winner:        int(out.Winner),
		PluralityWon:  out.PluralityWon,
		FullConsensus: out.FullConsensus,
		ConsensusTime: out.ConsensusTime,
		EpsReached:    out.EpsReached,
		EpsTime:       out.EpsTime,
		Eps:           out.Eps,
		Duration:      duration,
		TimedOut:      timedOut,
		FinalCounts:   append([]int(nil), final...),
		Stats:         extra,
	}
	if len(tr) > 0 {
		res.Trajectory = make([]TrajectoryPoint, len(tr))
		for i, p := range tr {
			res.Trajectory[i] = publicPoint(p)
		}
	}
	return res
}

// publicPoint converts an internal snapshot to the public trajectory type.
func publicPoint(p metrics.Point) TrajectoryPoint {
	return TrajectoryPoint{
		Time:          p.Time,
		TopFrac:       p.TopFrac,
		PluralityFrac: p.PluralityFrac,
		Bias:          p.Bias,
		MaxGen:        p.MaxGen,
	}
}

// toInternalAssignment validates and converts a public assignment.
func toInternalAssignment(a []int, n, k int) ([]opinion.Opinion, error) {
	if a == nil {
		return nil, nil
	}
	if len(a) != n {
		return nil, fmt.Errorf("plurality: assignment length %d != N %d", len(a), n)
	}
	out := make([]opinion.Opinion, len(a))
	for i, v := range a {
		if v < 0 || v >= k {
			return nil, fmt.Errorf("plurality: assignment[%d] = %d outside [0, %d)", i, v, k)
		}
		out[i] = opinion.Opinion(v)
	}
	return out, nil
}
