package plurality

import (
	"encoding/binary"
	"math"
)

// The canonical spec encoding signature and format version. The version is
// the first thing after the magic, so a layout change can never be confused
// with a field-value change; bump it whenever the field order, the field
// set or a normalization rule below changes.
const (
	canonicalSpecMagic   = "PLURSPEC"
	canonicalSpecVersion = 1
)

// CanonicalBytes returns a deterministic, version-tagged byte encoding of
// the spec — the run's identity, and the basis of the serving layer's
// content-addressed result cache keys.
//
// Two guarantees define it:
//
//   - Stability: the encoding is a fixed positional binary layout
//     ("PLURSPEC" magic, u16 version, then every result-affecting field in
//     declaration order, little-endian, floats as IEEE-754 bits, strings
//     length-prefixed, the assignment as a length-prefixed uvarint list).
//     Nothing about it depends on map iteration, struct tag spelling or
//     JSON field order, so any wire representation that decodes to the same
//     Spec value encodes to the same bytes.
//
//   - Normalization: zero-valued knobs are folded to the defaults the
//     engines document before encoding — Alpha 0 to the unbiased 1 (and to
//     0 whenever an explicit Assignment overrides it), the latency's
//     ""/0 to exp with mean 1, topology defaults via
//     TopologySpec.Resolve with Kind-unused fields cleared, the enabled
//     adversary's Fraction 0 to 0.1 and the delay kind's Rate 0 to 1, a
//     disabled adversary to the zero spec, and Sync.Gamma 0 to 0.5. A spec
//     spelled with defaults implicit therefore shares its encoding with the
//     same spec spelled explicitly. Only equivalences the engines guarantee
//     are folded: knobs whose defaults are engine-internal (Eps, the
//     MaxSteps/MaxTime horizons, RecordEvery) encode verbatim.
//
// Runtime-only fields (Observer, CheckpointSpec.Sink, internal batch
// scratch) never enter the encoding, and neither does Shards: shard count
// is deployment configuration (how much hardware one run uses), not
// experiment identity, so a result cached at any shard count is served for
// requests at every other. Serial runs (Shards <= 1) of equal encodings
// produce byte-equal Results; sharded runs of the same spec are
// deterministic per shard count but follow a different, statistically
// equivalent sample path — callers that need the byte-exact serial
// trajectory must run with Shards <= 1. Otherwise, equal encodings imply
// equal Results for every registered protocol under the same protocol
// name; the converse does not hold (two specs may differ only in a field
// the chosen protocol ignores). The spec is validated first and invalid
// specs return the validation error, so a cache key can only ever name a
// runnable job.
func (s Spec) CanonicalBytes() ([]byte, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	c, err := s.normalizedForKey()
	if err != nil {
		return nil, err
	}
	b := make([]byte, 0, 256+2*len(c.Assignment))
	b = append(b, canonicalSpecMagic...)
	b = binary.LittleEndian.AppendUint16(b, canonicalSpecVersion)
	b = canonInt(b, int64(c.N))
	b = canonInt(b, int64(c.K))
	b = canonFloat(b, c.Alpha)
	b = binary.LittleEndian.AppendUint64(b, uint64(len(c.Assignment)))
	for _, v := range c.Assignment {
		b = binary.AppendUvarint(b, uint64(v))
	}
	b = binary.LittleEndian.AppendUint64(b, c.Seed)
	b = canonFloat(b, c.Eps)
	b = canonInt(b, int64(c.MaxSteps))
	b = canonFloat(b, c.MaxTime)
	b = canonFloat(b, c.RecordEvery)
	b = canonString(b, c.Latency.Kind)
	b = canonFloat(b, c.Latency.Mean)
	b = canonInt(b, int64(c.Latency.Shape))
	b = canonString(b, c.Topology.Kind)
	b = canonInt(b, int64(c.Topology.Width))
	b = canonInt(b, int64(c.Topology.Rows))
	b = canonInt(b, int64(c.Topology.Cols))
	b = canonInt(b, int64(c.Topology.Degree))
	b = canonFloat(b, c.Topology.P)
	b = binary.LittleEndian.AppendUint64(b, c.Topology.GraphSeed)
	b = canonString(b, c.Adversary.Kind)
	b = canonFloat(b, c.Adversary.Fraction)
	b = canonFloat(b, c.Adversary.Rate)
	b = canonFloat(b, c.Adversary.At)
	b = binary.LittleEndian.AppendUint64(b, c.Adversary.Seed)
	b = canonBool(b, c.DiscardTrajectory)
	b = canonFloat(b, c.Checkpoint.SnapshotAt)
	b = canonBool(b, c.Checkpoint.Halt)
	b = canonFloat(b, c.Sync.Gamma)
	b = canonBool(b, c.Sync.TheoreticalSchedule)
	b = canonInt(b, int64(c.Async.ClusterTargetSize))
	b = canonBool(b, c.Baseline.Sequential)
	return b, nil
}

// normalizedForKey folds the engine-documented defaults into their explicit
// form (see CanonicalBytes) and clears every runtime-only field. Call only
// on a validated spec; the only fallible step is re-resolving the topology,
// which validation has already proven resolvable.
func (s Spec) normalizedForKey() (Spec, error) {
	s.Observer = nil
	s.scratch = nil
	s.Checkpoint.Sink = nil
	s.Shards = 0 // execution knob, not identity (see CanonicalBytes)
	if s.Assignment != nil {
		s.Alpha = 0 // an explicit assignment makes the planted bias moot
	} else if s.Alpha == 0 {
		s.Alpha = 1 // the documented unbiased default
	}
	if s.Latency.Kind == "" {
		s.Latency.Kind = "exp"
	}
	if s.Latency.Mean == 0 {
		s.Latency.Mean = 1
	}
	if s.Latency.Kind != "erlang" {
		s.Latency.Shape = 0
	} else if s.Latency.Shape <= 0 {
		s.Latency.Shape = 2
	}
	t, err := s.Topology.Resolve(s.N)
	if err != nil {
		return s, err
	}
	// Clear the fields the resolved kind ignores, so e.g. a ring spec built
	// by a CLI that also filled Degree keys like a plain ring spec.
	switch t.Kind {
	case "", TopologyComplete:
		t = TopologySpec{Kind: TopologyComplete}
	case TopologyRing:
		t = TopologySpec{Kind: TopologyRing, Width: t.Width}
	case TopologyTorus:
		t = TopologySpec{Kind: TopologyTorus, Rows: t.Rows, Cols: t.Cols}
	case TopologyRandomRegular:
		t = TopologySpec{Kind: TopologyRandomRegular, Degree: t.Degree, GraphSeed: t.GraphSeed}
	case TopologyErdosRenyi:
		t = TopologySpec{Kind: TopologyErdosRenyi, P: t.P, GraphSeed: t.GraphSeed}
	}
	s.Topology = t
	if !s.Adversary.Enabled() {
		s.Adversary = AdversarySpec{} // every knob of a disabled adversary is ignored
	} else {
		if s.Adversary.Fraction == 0 {
			s.Adversary.Fraction = 0.1
		}
		if s.Adversary.Kind == AdversaryDelay && s.Adversary.Rate == 0 {
			s.Adversary.Rate = 1
		}
	}
	if s.Sync.Gamma == 0 {
		s.Sync.Gamma = 0.5
	}
	return s, nil
}

func canonInt(b []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(b, uint64(v))
}

func canonFloat(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func canonString(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint64(b, uint64(len(s)))
	return append(b, s...)
}

func canonBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}
