// Package sim implements the deterministic discrete-event simulation kernel
// underlying the paper's asynchronous communication model (§3.1): every node
// owns a rate-1 Poisson clock, and opening a communication channel costs an
// independent latency (exponential with rate λ in the paper, generalized
// here to any positive distribution to cover the positive-aging variant).
//
// The kernel is single-threaded and fully deterministic: events execute in
// (time, insertion-sequence) order, so equal-time events replay in the order
// they were scheduled. All stochastic behaviour enters through xrand.RNG
// instances supplied by the caller, which makes whole protocol executions
// reproducible from one seed.
package sim

import (
	"container/heap"
	"context"
	"fmt"
	"math"
)

// Handler is a scheduled action. It runs at its scheduled virtual time; the
// simulator passes no arguments because handlers close over their state.
type Handler func()

// event is a scheduled handler with a total order (time, then seq).
type event struct {
	at  float64
	seq uint64
	fn  Handler
}

// eventHeap is a binary min-heap of events ordered by (at, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = event{}
	*h = old[:n-1]
	return e
}

// Simulator is a deterministic discrete-event scheduler over continuous
// virtual time. The zero value is not usable; construct with New.
type Simulator struct {
	now       float64
	seq       uint64
	queue     eventHeap
	processed uint64
	stopped   bool
}

// New returns an empty simulator positioned at virtual time 0.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current virtual time.
func (s *Simulator) Now() float64 { return s.now }

// Processed returns the number of events executed so far; experiments report
// it as a proxy for simulated work.
func (s *Simulator) Processed() uint64 { return s.processed }

// Pending returns the number of events currently scheduled.
func (s *Simulator) Pending() int { return len(s.queue) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: the model has no causality violations, so such a call is always a
// protocol bug worth failing loudly on.
func (s *Simulator) At(t float64, fn Handler) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, s.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: scheduling at non-finite time %v", t))
	}
	heap.Push(&s.queue, event{at: t, seq: s.seq, fn: fn})
	s.seq++
}

// After schedules fn to run d >= 0 time after the current virtual time.
func (s *Simulator) After(d float64, fn Handler) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	s.At(s.now+d, fn)
}

// Step executes the single earliest pending event. It reports whether an
// event was executed (false when the queue is empty or the simulator has
// been stopped).
func (s *Simulator) Step() bool {
	if s.stopped || len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(event)
	s.now = e.at
	s.processed++
	e.fn()
	return true
}

// Run executes events until the queue drains or Stop is called.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunContext executes events until the queue drains, Stop is called, or ctx
// is cancelled. Cancellation is polled every few hundred events, so a run
// over millions of events still returns promptly; on cancellation the
// simulator is stopped and ctx.Err() is returned. A nil ctx behaves like
// Run.
func (s *Simulator) RunContext(ctx context.Context) error {
	if ctx == nil {
		s.Run()
		return nil
	}
	for i := uint(0); ; i++ {
		if i&255 == 0 {
			select {
			case <-ctx.Done():
				s.Stop()
				return ctx.Err()
			default:
			}
		}
		if !s.Step() {
			return nil
		}
	}
}

// RunUntil executes events with scheduled time <= t and then advances the
// clock to exactly t. It reports whether the simulator is still live (not
// stopped).
func (s *Simulator) RunUntil(t float64) bool {
	if t < s.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", t, s.now))
	}
	for !s.stopped && len(s.queue) > 0 && s.queue[0].at <= t {
		s.Step()
	}
	if !s.stopped && s.now < t {
		s.now = t
	}
	return !s.stopped
}

// Stop halts the simulation: no further events run. Pending events remain
// queued so diagnostics can inspect them; Resume is intentionally absent —
// a stopped run is finished.
func (s *Simulator) Stop() { s.stopped = true }

// Stopped reports whether Stop has been called.
func (s *Simulator) Stopped() bool { return s.stopped }
