// Package sim implements the deterministic discrete-event simulation kernel
// underlying the paper's asynchronous communication model (§3.1): every node
// owns a rate-1 Poisson clock, and opening a communication channel costs an
// independent latency (exponential with rate λ in the paper, generalized
// here to any positive distribution to cover the positive-aging variant).
//
// The kernel is single-threaded and fully deterministic: events execute in
// (time, insertion-sequence) order, so equal-time events replay in the order
// they were scheduled. All stochastic behaviour enters through xrand.RNG
// instances supplied by the caller, which makes whole protocol executions
// reproducible from one seed.
//
// # The (time, seq) invariant
//
// Every push assigns the next value of a monotone sequence counter, and the
// heap orders by (at, seq) — a strict total order, because seq is unique.
// Two properties follow, and everything above the kernel leans on them:
// ties between equal-time events are broken by scheduling order (never by
// map iteration, goroutine timing or heap layout), and the pop sequence is
// independent of the heap's internal array arrangement — any correct binary
// heap over the same pending set yields the same execution. The first makes
// asynchronous runs reproducible from a seed; the second is what lets a
// restored snapshot re-heapify its event array without changing the
// trajectory, and what let the typed kernel rewrite be pinned byte-exact
// against its predecessor (TestKernelGolden).
//
// # Event representation
//
// The hot path is typed: an Event is a fixed-size record {Kind, Node, A, B,
// C} stored by value in the scheduling heap and dispatched to the engine's
// EventHandler, so steady-state scheduling performs zero allocations — the
// heap slice is the only storage and it reaches a stable capacity after
// warm-up. Closure events (At/After) remain available for cold paths; their
// functions live out-of-line in a growable arena with free-list reuse, so a
// recorder that reschedules the same function value also stops allocating
// after the first occupancy. Cancellation is lazy: a cancelled closure
// event stays queued as a tombstone and is skipped (uncounted) when popped.
//
// Engines that want to be checkpointable schedule all of their actions —
// including recorder ticks and watchdogs — as typed events: closures are
// opaque to the state codec, and EncodeState refuses to capture while a
// live one is pending (ErrClosuresPending). All engines in this repository
// are fully typed.
//
// # Snapshot and restore
//
// EncodeState/DecodeState serialize the scheduler — clock, counters, the
// pending typed-event heap — and Clocks.EncodeState/DecodeState do the same
// for the per-node Poisson clocks (generator states, stop flags, tick
// counter). Capture happens at a barrier, not an event: RunContextTo runs
// everything scheduled at or before t and returns between events, so no
// sequence number is consumed and a run with a (non-halting) capture stays
// byte-identical to one without. Restores re-run the engine's
// deterministic setup and then overwrite mutable state, after which the
// continuation is bit-exact.
package sim

import (
	"context"
	"fmt"
	"math"
)

// Handler is a scheduled action. It runs at its scheduled virtual time; the
// simulator passes no arguments because handlers close over their state.
type Handler func()

// Event is the typed, allocation-free form of a scheduled action: a small
// POD record the engine interprets. Kind is an engine-defined discriminant
// (>= 0), Node the acting node, and A, B, C free payload words (sampled
// partner ids, signal values, ...). Engines receive popped events through
// their EventHandler and switch on Kind.
type Event struct {
	// Kind discriminates the event for the engine's dispatch; engines
	// define their own kinds starting at 0.
	Kind int32
	// Node is the node the event concerns (engine-defined; 0 if unused).
	Node int32
	// A, B and C carry event payload (engine-defined; 0 if unused).
	A, B, C int32
}

// EventHandler dispatches typed events. An engine implements it once and
// installs it with SetHandler; the simulator calls it for every typed event
// it pops.
type EventHandler interface {
	HandleEvent(ev Event)
}

// kindFunc marks an internal closure event; its arena index is in ev.a.
// Engine kinds are non-negative, so the namespaces cannot collide.
const kindFunc int32 = -1

// event is a scheduled action with a total order (time, then seq). Typed
// events embed their payload directly; closure events point into the fn
// arena via a (kind=kindFunc, a=index) pair.
type event struct {
	at      float64
	seq     uint64
	kind    int32
	node    int32
	a, b, c int32
}

// Token identifies one scheduled closure event for lazy cancellation. The
// zero Token is never valid: idx stores the arena slot + 1, so an engine
// can use a zero Token field as its "nothing scheduled" sentinel and
// Cancel it harmlessly.
type Token struct {
	idx int32 // arena slot + 1; 0 marks the invalid zero Token
	gen uint32
}

// Simulator is a deterministic discrete-event scheduler over continuous
// virtual time. The zero value is not usable; construct with New.
type Simulator struct {
	now       float64
	seq       uint64
	queue     []event // binary min-heap ordered by (at, seq)
	handler   EventHandler
	processed uint64
	stopped   bool

	// Closure arena: out-of-line storage for At/After functions, recycled
	// through a free list so steady-state closure scheduling reuses slots.
	fns     []Handler
	fnGen   []uint32
	freeFns []int32
}

// New returns an empty simulator positioned at virtual time 0.
func New() *Simulator {
	return &Simulator{}
}

// SetHandler installs the typed-event dispatcher. It must be set before the
// first typed event fires; closure events need no handler.
func (s *Simulator) SetHandler(h EventHandler) { s.handler = h }

// Reserve pre-sizes the event heap for at least n pending events, avoiding
// the O(log n) incremental growth reallocations during warm-up. Engines
// call it with a small multiple of the node count (every node keeps a tick
// plus a bounded number of in-flight channel events queued).
func (s *Simulator) Reserve(n int) {
	if cap(s.queue) >= n {
		return
	}
	q := make([]event, len(s.queue), n)
	copy(q, s.queue)
	s.queue = q
}

// Now returns the current virtual time.
func (s *Simulator) Now() float64 { return s.now }

// Processed returns the number of events executed so far (cancelled events
// are skipped, not executed); experiments report it as a proxy for
// simulated work.
func (s *Simulator) Processed() uint64 { return s.processed }

// Pending returns the number of events currently scheduled, counting
// cancelled-but-unpopped tombstones.
func (s *Simulator) Pending() int { return len(s.queue) }

// checkTime panics on causality violations and non-finite times: the model
// has no time travel, so such a call is always a protocol bug worth failing
// loudly on.
func (s *Simulator) checkTime(t float64) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, s.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: scheduling at non-finite time %v", t))
	}
}

// push appends an event and restores the heap property. This is the single
// scheduling primitive; it allocates only when the heap slice grows.
func (s *Simulator) push(e event) {
	e.seq = s.seq
	s.seq++
	s.queue = append(s.queue, e)
	s.siftUp(len(s.queue) - 1)
}

// Schedule enqueues a typed event at absolute virtual time t.
func (s *Simulator) Schedule(t float64, ev Event) {
	s.checkTime(t)
	if ev.Kind < 0 {
		panic(fmt.Sprintf("sim: negative event kind %d is reserved", ev.Kind))
	}
	s.push(event{at: t, kind: ev.Kind, node: ev.Node, a: ev.A, b: ev.B, c: ev.C})
}

// ScheduleAfter enqueues a typed event d >= 0 after the current time.
func (s *Simulator) ScheduleAfter(d float64, ev Event) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	s.Schedule(s.now+d, ev)
}

// grabSlot stores fn in the arena and returns its slot index.
func (s *Simulator) grabSlot(fn Handler) int32 {
	if n := len(s.freeFns); n > 0 {
		i := s.freeFns[n-1]
		s.freeFns = s.freeFns[:n-1]
		s.fns[i] = fn
		return i
	}
	s.fns = append(s.fns, fn)
	s.fnGen = append(s.fnGen, 0)
	return int32(len(s.fns) - 1)
}

// freeSlot clears a slot and recycles it; bumping the generation
// invalidates outstanding Tokens for the slot.
func (s *Simulator) freeSlot(i int32) {
	s.fns[i] = nil
	s.fnGen[i]++
	s.freeFns = append(s.freeFns, i)
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics. This is the cold-path API: the function is stored out-of-line in
// the arena; hot paths should use typed events instead.
func (s *Simulator) At(t float64, fn Handler) {
	s.checkTime(t)
	if fn == nil {
		panic("sim: At with nil handler")
	}
	s.push(event{at: t, kind: kindFunc, a: s.grabSlot(fn)})
}

// After schedules fn to run d >= 0 time after the current virtual time.
func (s *Simulator) After(d float64, fn Handler) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	s.At(s.now+d, fn)
}

// AtCancel schedules fn like At and returns a Token for lazy cancellation.
func (s *Simulator) AtCancel(t float64, fn Handler) Token {
	s.checkTime(t)
	if fn == nil {
		panic("sim: AtCancel with nil handler")
	}
	i := s.grabSlot(fn)
	s.push(event{at: t, kind: kindFunc, a: i})
	return Token{idx: i + 1, gen: s.fnGen[i]}
}

// Cancel lazily cancels a closure event scheduled with AtCancel: the queued
// entry becomes a tombstone that is skipped (and not counted as processed)
// when popped. It reports whether the event was still pending.
func (s *Simulator) Cancel(tok Token) bool {
	i := tok.idx - 1
	if i < 0 || int(i) >= len(s.fns) {
		return false // zero or corrupt Token
	}
	if s.fnGen[i] != tok.gen || s.fns[i] == nil {
		return false // already fired, freed or cancelled
	}
	s.fns[i] = nil
	return true
}

// Step executes the single earliest pending event, skipping cancelled
// tombstones. It reports whether an event was executed (false when the
// queue is empty or the simulator has been stopped).
func (s *Simulator) Step() bool {
	for {
		if s.stopped || len(s.queue) == 0 {
			return false
		}
		e := s.pop()
		if e.kind == kindFunc {
			fn := s.fns[e.a]
			s.freeSlot(e.a)
			if fn == nil {
				continue // lazily cancelled: skip without counting
			}
			s.now = e.at
			s.processed++
			fn()
			return true
		}
		s.now = e.at
		s.processed++
		s.handler.HandleEvent(Event{Kind: e.kind, Node: e.node, A: e.a, B: e.b, C: e.c})
		return true
	}
}

// Run executes events until the queue drains or Stop is called.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunContext executes events until the queue drains, Stop is called, or ctx
// is cancelled. Cancellation is polled every few hundred events, so a run
// over millions of events still returns promptly; on cancellation the
// simulator is stopped and ctx.Err() is returned. A nil ctx behaves like
// Run.
func (s *Simulator) RunContext(ctx context.Context) error {
	if ctx == nil {
		s.Run()
		return nil
	}
	for i := uint(0); ; i++ {
		if i&255 == 0 {
			select {
			case <-ctx.Done():
				s.Stop()
				return ctx.Err()
			default:
			}
		}
		if !s.Step() {
			return nil
		}
	}
}

// RunUntil executes events with scheduled time <= t and then advances the
// clock to exactly t. It reports whether the simulator is still live (not
// stopped).
func (s *Simulator) RunUntil(t float64) bool {
	if t < s.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", t, s.now))
	}
	for !s.stopped && len(s.queue) > 0 && s.queue[0].at <= t {
		s.Step()
	}
	if !s.stopped && s.now < t {
		s.now = t
	}
	return !s.stopped
}

// Stop halts the simulation: no further events run. Pending events remain
// queued so diagnostics can inspect them; Resume is intentionally absent —
// a stopped run is finished.
func (s *Simulator) Stop() { s.stopped = true }

// Stopped reports whether Stop has been called.
func (s *Simulator) Stopped() bool { return s.stopped }

// --- heap primitives ---
//
// A hand-rolled binary min-heap over the value-typed event slice. The
// (at, seq) key is a strict total order — seq is unique — so the pop
// sequence is implementation-independent: any correct heap yields the same
// execution order, which is what the golden kernel-equivalence tests pin.

// less orders events by (at, seq).
func (s *Simulator) less(i, j int) bool {
	if s.queue[i].at != s.queue[j].at {
		return s.queue[i].at < s.queue[j].at
	}
	return s.queue[i].seq < s.queue[j].seq
}

func (s *Simulator) siftUp(i int) {
	q := s.queue
	e := q[i]
	for i > 0 {
		parent := (i - 1) / 2
		p := q[parent]
		if e.at > p.at || (e.at == p.at && e.seq > p.seq) {
			break
		}
		q[i] = p
		i = parent
	}
	q[i] = e
}

func (s *Simulator) siftDown(i int) {
	q := s.queue
	n := len(q)
	e := q[i]
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && s.less(r, child) {
			child = r
		}
		c := q[child]
		if e.at < c.at || (e.at == c.at && e.seq < c.seq) {
			break
		}
		q[i] = c
		i = child
	}
	q[i] = e
}

// pop removes and returns the minimum event.
func (s *Simulator) pop() event {
	q := s.queue
	n := len(q)
	e := q[0]
	q[0] = q[n-1]
	q[n-1] = event{}
	s.queue = q[:n-1]
	if n > 1 {
		s.siftDown(0)
	}
	return e
}
