// Package sim implements the deterministic discrete-event simulation kernel
// underlying the paper's asynchronous communication model (§3.1): every node
// owns a rate-1 Poisson clock, and opening a communication channel costs an
// independent latency (exponential with rate λ in the paper, generalized
// here to any positive distribution to cover the positive-aging variant).
//
// The kernel is single-threaded and fully deterministic: events execute in
// (time, insertion-sequence) order, so equal-time events replay in the order
// they were scheduled. All stochastic behaviour enters through xrand.RNG
// instances supplied by the caller, which makes whole protocol executions
// reproducible from one seed.
//
// # The (time, seq) invariant
//
// Every push assigns the next value of a monotone sequence counter, and the
// scheduler orders by (at, seq) — a strict total order, because seq is
// unique. Two properties follow, and everything above the kernel leans on
// them: ties between equal-time events are broken by scheduling order
// (never by map iteration, goroutine timing or queue layout), and the pop
// sequence is independent of the queue's internal arrangement — any correct
// priority queue over the same pending set yields the same execution. The
// first makes asynchronous runs reproducible from a seed; the second is
// what lets a restored snapshot rebuild its pending set without changing
// the trajectory, what let the typed kernel rewrite be pinned byte-exact
// against its predecessor (TestKernelGolden), and what let the original
// binary heap be replaced outright by the bucketed event ladder (see
// Simulator) — a pure performance change.
//
// # Event representation
//
// The hot path is typed: an Event is a fixed-size record {Kind, Node, A, B,
// C} stored by value in the ladder's bucket slices and dispatched to the
// engine's EventHandler, so steady-state scheduling performs zero
// allocations — the bucket arrays are the only storage and they reach
// stable high-water capacities after warm-up. Closure events (At/After)
// remain available for cold paths; their
// functions live out-of-line in a growable arena with free-list reuse, so a
// recorder that reschedules the same function value also stops allocating
// after the first occupancy. Cancellation is lazy: a cancelled closure
// event stays queued as a tombstone and is skipped (uncounted) when popped.
//
// Engines that want to be checkpointable schedule all of their actions —
// including recorder ticks and watchdogs — as typed events: closures are
// opaque to the state codec, and EncodeState refuses to capture while a
// live one is pending (ErrClosuresPending). All engines in this repository
// are fully typed.
//
// # Snapshot and restore
//
// EncodeState/DecodeState serialize the scheduler — clock, counters, the
// pending typed-event heap — and Clocks.EncodeState/DecodeState do the same
// for the per-node Poisson clocks (generator states, stop flags, tick
// counter). Capture happens at a barrier, not an event: RunContextTo runs
// everything scheduled at or before t and returns between events, so no
// sequence number is consumed and a run with a (non-halting) capture stays
// byte-identical to one without. Restores re-run the engine's
// deterministic setup and then overwrite mutable state, after which the
// continuation is bit-exact.
package sim

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"slices"
)

// Handler is a scheduled action. It runs at its scheduled virtual time; the
// simulator passes no arguments because handlers close over their state.
type Handler func()

// Event is the typed, allocation-free form of a scheduled action: a small
// POD record the engine interprets. Kind is an engine-defined discriminant
// (>= 0), Node the acting node, and A, B, C free payload words (sampled
// partner ids, signal values, ...). Engines receive popped events through
// their EventHandler and switch on Kind.
type Event struct {
	// Kind discriminates the event for the engine's dispatch; engines
	// define their own kinds starting at 0.
	Kind int32
	// Node is the node the event concerns (engine-defined; 0 if unused).
	Node int32
	// A, B and C carry event payload (engine-defined; 0 if unused).
	A, B, C int32
}

// EventHandler dispatches typed events. An engine implements it once and
// installs it with SetHandler; the simulator calls it for every typed event
// it pops.
type EventHandler interface {
	HandleEvent(ev Event)
}

// kindFunc marks an internal closure event; its arena index is in ev.a.
// Engine kinds are non-negative, so the namespaces cannot collide.
const kindFunc int32 = -1

// event is a scheduled action with a total order (time, then seq). Typed
// events embed their payload directly; closure events point into the fn
// arena via a (kind=kindFunc, a=index) pair.
type event struct {
	at      float64
	seq     uint64
	kind    int32
	node    int32
	a, b, c int32
}

// Token identifies one scheduled closure event for lazy cancellation. The
// zero Token is never valid: idx stores the arena slot + 1, so an engine
// can use a zero Token field as its "nothing scheduled" sentinel and
// Cancel it harmlessly.
type Token struct {
	idx int32 // arena slot + 1; 0 marks the invalid zero Token
	gen uint32
}

// Ladder geometry: virtual time is cut into buckets of width 1/1024 (a
// power of two, so the time→bucket mapping is exact float arithmetic) and
// the ring covers 256 of them — a quarter-time-unit window. The window is a
// memory/scan trade: ring slots retain the capacity of the fullest bucket
// they ever hosted (occupancy-profiled at ~2.5·n/1024 per slot for the
// leader engine at n=10⁶, independent of ring length), so a wider window
// costs proportionally more steady-state memory, while events beyond the
// window wait in the overflow list and are rescanned once per window
// rebuild — a sequential sweep, milliseconds per simulated time unit at
// million-node scale against seconds of pop work. Ring occupancy and
// overflow occupancy are anti-correlated (the overflow peaks exactly when
// the ring has drained), so shortening the ring cuts the resident second
// tier without growing the first.
const (
	ladderBuckets = 256        // ring length in buckets (window = 1/4 time unit)
	invLadderW    = 1024.0     // buckets per time unit
	ladderW       = 1.0 / 1024 // bucket width
	maxLadderTime = 1 << 52    // beyond this, times collapse into one far bucket
	farBucket     = int64(1) << 62
)

// Simulator is a deterministic discrete-event scheduler over continuous
// virtual time. The zero value is not usable; construct with New.
//
// # The event ladder
//
// Pending events live in a two-tier calendar ("ladder") rather than an
// implicit heap: a binary heap over millions of pending events walks
// log(n) cache-missing levels per operation and was the single largest
// cost of million-node asynchronous runs. The ladder stores events by
// time bucket — cur is the current bucket, sorted by (at, seq) and drained
// sequentially; buckets is a ring of unsorted future buckets the hot path
// appends to in O(1); overflow catches the far tail beyond the ring's
// window and is redistributed as the window advances; near is a small
// binary heap for late arrivals into the bucket currently draining. Because
// bucket time ranges are disjoint and each bucket is sorted by the strict
// total order (at, seq) before draining, the pop sequence is exactly the
// one any correct priority queue produces — the layout is invisible to
// everything above the kernel (TestKernelGolden, snapshot restore).
type Simulator struct {
	now       float64
	seq       uint64
	handler   EventHandler
	processed uint64
	stopped   bool
	pending   int

	cur       []event   // current bucket, sorted ascending by (at, seq)
	curPos    int       // drain position in cur
	curIdx    int64     // absolute index of the current bucket
	winHi     int64     // exclusive upper bucket bound of the ring window
	near      []event   // binary min-heap: late arrivals into the current bucket
	buckets   [][]event // ring of unsorted future buckets; absolute bucket j lives in slot j%ladderBuckets
	inBuckets int       // events across all ring buckets
	overflow  []event   // events at or beyond winHi
	ovMinJ    int64     // minimum bucket index over overflow (MaxInt64 when empty)

	// Closure arena: out-of-line storage for At/After functions, recycled
	// through a free list so steady-state closure scheduling reuses slots.
	fns     []Handler
	fnGen   []uint32
	freeFns []int32
}

// New returns an empty simulator positioned at virtual time 0.
func New() *Simulator {
	return &Simulator{
		buckets: make([][]event, ladderBuckets),
		winHi:   ladderBuckets,
		ovMinJ:  math.MaxInt64,
	}
}

// SetHandler installs the typed-event dispatcher. It must be set before the
// first typed event fires; closure events need no handler.
func (s *Simulator) SetHandler(h EventHandler) { s.handler = h }

// Reserve hints the expected pending-event population. Engines call it with
// a small multiple of the node count (every node keeps a tick plus a
// bounded number of in-flight channel events queued); the ladder uses the
// hint to pre-size its bucket arrays and the overflow tail, so warm-up
// performs one allocation per tier instead of a doubling cascade. The
// overflow carries every pending event beyond the ring window — the
// majority, under mean-1 latencies; just before a window rebuild it holds
// essentially the whole pending set — which is why it gets the full hint,
// exactly the single array the pre-ladder binary heap reserved.
func (s *Simulator) Reserve(n int) {
	if cap(s.overflow) < n {
		ov := make([]event, len(s.overflow), n)
		copy(ov, s.overflow)
		s.overflow = ov
	}
	// A ring slot holds at most one bucket-width's share of the pending
	// population, so size per slot from the hint divided by buckets-per-unit
	// (not ring length). Occupancy fluctuates around that mean like a
	// Poisson count; mean + 4σ headroom keeps the maximum over the ring from
	// drifting past the cap. All slots are carved from one slab: one
	// allocation instead of one per slot, and no doubling cascade.
	per := n / int(invLadderW)
	if per < 1 {
		return
	}
	per += 4*isqrt(per) + 8
	slab := make([]event, 0, ladderBuckets*per)
	for i := range s.buckets {
		if cap(s.buckets[i]) >= per || len(s.buckets[i]) > per {
			continue
		}
		b := slab[i*per : i*per : (i+1)*per]
		b = append(b, s.buckets[i]...)
		s.buckets[i] = b
	}
}

// isqrt returns ⌊√n⌋ for small non-negative n (Newton iteration).
func isqrt(n int) int {
	if n < 2 {
		return n
	}
	x := n
	y := (x + 1) / 2
	for y < x {
		x = y
		y = (x + n/x) / 2
	}
	return x
}

// Now returns the current virtual time.
func (s *Simulator) Now() float64 { return s.now }

// Processed returns the number of events executed so far (cancelled events
// are skipped, not executed); experiments report it as a proxy for
// simulated work.
func (s *Simulator) Processed() uint64 { return s.processed }

// Pending returns the number of events currently scheduled, counting
// cancelled-but-unpopped tombstones.
func (s *Simulator) Pending() int { return s.pending }

// checkTime panics on causality violations and non-finite times: the model
// has no time travel, so such a call is always a protocol bug worth failing
// loudly on.
func (s *Simulator) checkTime(t float64) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, s.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: scheduling at non-finite time %v", t))
	}
}

// push assigns the next sequence number and files the event into the
// ladder. This is the single scheduling primitive; it allocates only when a
// bucket's array grows past its high-water capacity.
func (s *Simulator) push(e event) {
	e.seq = s.seq
	s.seq++
	s.insert(e)
}

// Schedule enqueues a typed event at absolute virtual time t.
func (s *Simulator) Schedule(t float64, ev Event) {
	s.checkTime(t)
	if ev.Kind < 0 {
		panic(fmt.Sprintf("sim: negative event kind %d is reserved", ev.Kind))
	}
	s.push(event{at: t, kind: ev.Kind, node: ev.Node, a: ev.A, b: ev.B, c: ev.C})
}

// ScheduleAfter enqueues a typed event d >= 0 after the current time.
func (s *Simulator) ScheduleAfter(d float64, ev Event) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	s.Schedule(s.now+d, ev)
}

// ScheduleBatch enqueues n typed events produced by next(0) … next(n-1) —
// the bulk form engines use to arm a million per-node clocks at startup.
// Sequence numbers are assigned in call order, so the execution order is
// exactly what n sequential Schedule calls would produce (the (at, seq)
// key is a total order; the ladder's internal layout is irrelevant).
func (s *Simulator) ScheduleBatch(n int, next func(i int) (float64, Event)) {
	for i := 0; i < n; i++ {
		t, ev := next(i)
		s.Schedule(t, ev)
	}
}

// grabSlot stores fn in the arena and returns its slot index.
func (s *Simulator) grabSlot(fn Handler) int32 {
	if n := len(s.freeFns); n > 0 {
		i := s.freeFns[n-1]
		s.freeFns = s.freeFns[:n-1]
		s.fns[i] = fn
		return i
	}
	s.fns = append(s.fns, fn)
	s.fnGen = append(s.fnGen, 0)
	return int32(len(s.fns) - 1)
}

// freeSlot clears a slot and recycles it; bumping the generation
// invalidates outstanding Tokens for the slot.
func (s *Simulator) freeSlot(i int32) {
	s.fns[i] = nil
	s.fnGen[i]++
	s.freeFns = append(s.freeFns, i)
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics. This is the cold-path API: the function is stored out-of-line in
// the arena; hot paths should use typed events instead.
func (s *Simulator) At(t float64, fn Handler) {
	s.checkTime(t)
	if fn == nil {
		panic("sim: At with nil handler")
	}
	s.push(event{at: t, kind: kindFunc, a: s.grabSlot(fn)})
}

// After schedules fn to run d >= 0 time after the current virtual time.
func (s *Simulator) After(d float64, fn Handler) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	s.At(s.now+d, fn)
}

// AtCancel schedules fn like At and returns a Token for lazy cancellation.
func (s *Simulator) AtCancel(t float64, fn Handler) Token {
	s.checkTime(t)
	if fn == nil {
		panic("sim: AtCancel with nil handler")
	}
	i := s.grabSlot(fn)
	s.push(event{at: t, kind: kindFunc, a: i})
	return Token{idx: i + 1, gen: s.fnGen[i]}
}

// Cancel lazily cancels a closure event scheduled with AtCancel: the queued
// entry becomes a tombstone that is skipped (and not counted as processed)
// when popped. It reports whether the event was still pending.
func (s *Simulator) Cancel(tok Token) bool {
	i := tok.idx - 1
	if i < 0 || int(i) >= len(s.fns) {
		return false // zero or corrupt Token
	}
	if s.fnGen[i] != tok.gen || s.fns[i] == nil {
		return false // already fired, freed or cancelled
	}
	s.fns[i] = nil
	return true
}

// Step executes the single earliest pending event, skipping cancelled
// tombstones. It reports whether an event was executed (false when the
// queue is empty or the simulator has been stopped).
func (s *Simulator) Step() bool {
	for {
		if s.stopped || !s.ensure() {
			return false
		}
		e := s.popMin()
		if e.kind == kindFunc {
			fn := s.fns[e.a]
			s.freeSlot(e.a)
			if fn == nil {
				continue // lazily cancelled: skip without counting
			}
			s.now = e.at
			s.processed++
			fn()
			return true
		}
		s.now = e.at
		s.processed++
		s.handler.HandleEvent(Event{Kind: e.kind, Node: e.node, A: e.a, B: e.b, C: e.c})
		return true
	}
}

// Run executes events until the queue drains or Stop is called.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunContext executes events until the queue drains, Stop is called, or ctx
// is cancelled. Cancellation is polled every few hundred events, so a run
// over millions of events still returns promptly; on cancellation the
// simulator is stopped and ctx.Err() is returned. A nil ctx behaves like
// Run.
func (s *Simulator) RunContext(ctx context.Context) error {
	if ctx == nil {
		s.Run()
		return nil
	}
	for i := uint(0); ; i++ {
		if i&255 == 0 {
			select {
			case <-ctx.Done():
				s.Stop()
				return ctx.Err()
			default:
			}
		}
		if !s.Step() {
			return nil
		}
	}
}

// RunUntil executes events with scheduled time <= t and then advances the
// clock to exactly t. It reports whether the simulator is still live (not
// stopped).
func (s *Simulator) RunUntil(t float64) bool {
	if t < s.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", t, s.now))
	}
	for !s.stopped {
		at, ok := s.peekAt()
		if !ok || at > t {
			break
		}
		s.Step()
	}
	if !s.stopped && s.now < t {
		s.now = t
	}
	return !s.stopped
}

// NextAt returns the scheduled time of the earliest pending event, or
// false when nothing is pending. It does not execute anything, but it may
// advance the ladder's internal window (a layout change invisible to the
// (at, seq) pop order). Shard barriers use it to agree on the next window.
func (s *Simulator) NextAt() (float64, bool) { return s.peekAt() }

// WindowEnd returns the end of the ladder bucket containing t — the
// smallest bucket boundary strictly greater than t. Conservative parallel
// execution uses it as the lookahead horizon: events scheduled by a handler
// running at time u land at or after u, so two shards processing disjoint
// nodes inside the same bucket window [floor(t·1024)/1024, WindowEnd(t))
// can only feed each other events for the next window, never the current
// one, provided cross-shard sends add at least one bucket width of latency.
// Times past maxLadderTime (never reached by real horizons) return +Inf.
func WindowEnd(t float64) float64 {
	if t >= maxLadderTime {
		return math.Inf(1)
	}
	return (math.Floor(t*invLadderW) + 1) * ladderW
}

// Stop halts the simulation: no further events run. Pending events remain
// queued so diagnostics can inspect them; Resume is intentionally absent —
// a stopped run is finished.
func (s *Simulator) Stop() { s.stopped = true }

// Stopped reports whether Stop has been called.
func (s *Simulator) Stopped() bool { return s.stopped }

// --- ladder primitives ---
//
// The (at, seq) key is a strict total order — seq is unique — so the pop
// sequence is implementation-independent: any correct priority queue over
// the same pending set yields the same execution order, which is what the
// golden kernel-equivalence tests pin. The ladder exploits that freedom
// for cache locality: scheduling is an O(1) append to one bucket tail,
// popping is a sequential read of the sorted current bucket, and the only
// logarithmic work left is one in-cache sort per bucket as it becomes
// current — versus the log(pending) cache-missing level walks of an
// implicit heap over a hundred-MB event array.

// eventLess orders events by the (at, seq) key.
func eventLess(a, b event) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// bucketOf maps a virtual time to its absolute ladder bucket. The width is
// a power of two, so the mapping is exact float arithmetic: every t lands
// in exactly the bucket whose [j·w, (j+1)·w) range contains it, which is
// what makes per-bucket sorting equivalent to a global sort. Times past
// maxLadderTime collapse into one far bucket — they still sort correctly
// against each other when that bucket is reached (in practice: never;
// horizons are many orders of magnitude smaller).
func bucketOf(t float64) int64 {
	if t >= maxLadderTime {
		return farBucket
	}
	return int64(t * invLadderW)
}

// insert files an already-sequenced event into the ladder tier its time
// belongs to: the near heap for the bucket currently draining, a ring
// bucket inside the window, or the overflow tail.
func (s *Simulator) insert(e event) {
	s.pending++
	j := bucketOf(e.at)
	switch {
	case j <= s.curIdx:
		s.nearPush(e)
	case j < s.winHi:
		slot := int(j & (ladderBuckets - 1))
		s.buckets[slot] = append(s.buckets[slot], e)
		s.inBuckets++
	default:
		s.overflow = append(s.overflow, e)
		if j < s.ovMinJ {
			s.ovMinJ = j
		}
	}
}

// ensure advances the ladder until the earliest pending event is reachable
// through cur or near. It reports false when no event is pending.
//
// The ring is swept bucket by bucket; the overflow list is consulted only
// when the ring runs dry, which rebuilds the window over the earliest
// overflow bucket. Because winHi never decreases and a rebuild absorbs
// everything below the new bound, overflow events can never be overtaken
// by ring events — the invariant overflow ⊆ [winHi, ∞) holds between
// rebuilds.
func (s *Simulator) ensure() bool {
	for s.curPos >= len(s.cur) && len(s.near) == 0 {
		if s.inBuckets == 0 {
			if len(s.overflow) == 0 {
				return false
			}
			// Window exhausted: jump it to the earliest overflow event and
			// refile everything that now fits (one sequential sweep).
			s.curIdx = s.ovMinJ - 1
			s.rebuildWindow()
			continue
		}
		s.curIdx++
		slot := int(s.curIdx & (ladderBuckets - 1))
		b := s.buckets[slot]
		if len(b) == 0 {
			continue
		}
		s.inBuckets -= len(b)
		s.buckets[slot] = s.cur[:0] // recycle the drained array as a future bucket
		sortEvents(b)
		s.cur = b
		s.curPos = 0
	}
	return true
}

// popMin removes and returns the earliest pending event. ensure must have
// reported true.
func (s *Simulator) popMin() event {
	s.pending--
	if len(s.near) > 0 {
		if s.curPos >= len(s.cur) || eventLess(s.near[0], s.cur[s.curPos]) {
			return s.nearPop()
		}
	}
	e := s.cur[s.curPos]
	s.curPos++
	return e
}

// peekAt returns the time of the earliest pending event.
func (s *Simulator) peekAt() (float64, bool) {
	if !s.ensure() {
		return 0, false
	}
	at := math.Inf(1)
	if s.curPos < len(s.cur) {
		at = s.cur[s.curPos].at
	}
	if len(s.near) > 0 && s.near[0].at < at {
		at = s.near[0].at
	}
	return at, true
}

// rebuildWindow re-anchors the ring window right above curIdx and refiles
// every overflow event that fits. One sequential sweep per window
// revolution — tens of milliseconds per simulated window at million-node
// scale, against seconds of pop work.
func (s *Simulator) rebuildWindow() {
	s.winHi = s.curIdx + 1 + ladderBuckets
	kept := s.overflow[:0]
	s.ovMinJ = math.MaxInt64
	for _, e := range s.overflow {
		j := bucketOf(e.at)
		if j < s.winHi {
			slot := int(j & (ladderBuckets - 1))
			s.buckets[slot] = append(s.buckets[slot], e)
			s.inBuckets++
			continue
		}
		kept = append(kept, e)
		if j < s.ovMinJ {
			s.ovMinJ = j
		}
	}
	s.overflow = kept
}

// sortEvents sorts one bucket ascending by (at, seq) before it drains —
// the only super-constant work per event left in the scheduler. It is a
// hand-rolled introsort so the comparator inlines (the generic library
// sort pays an indirect call per comparison, which at millions of sorted
// events per second was the scheduler's largest remaining cost); keys are
// strictly distinct (seq is unique), which keeps the Hoare partition
// simple. A depth limit delegates pathological inputs to the library sort.
func sortEvents(b []event) {
	if len(b) < 2 {
		return
	}
	depth := 2 * bits.Len(uint(len(b)))
	qsortEvents(b, depth)
}

func qsortEvents(b []event, depth int) {
	for len(b) > 24 {
		if depth == 0 {
			slices.SortFunc(b, func(x, y event) int {
				if eventLess(x, y) {
					return -1
				}
				return 1
			})
			return
		}
		depth--
		p := partitionEvents(b)
		// Recurse into the smaller half, loop on the larger: O(log n) stack.
		if p < len(b)-p-1 {
			qsortEvents(b[:p+1], depth)
			b = b[p+1:]
		} else {
			qsortEvents(b[p+1:], depth)
			b = b[:p+1]
		}
	}
	insertionSortEvents(b)
}

// partitionEvents performs a Hoare partition around a median-of-three
// pivot and returns the split index j: everything in b[:j+1] precedes
// everything in b[j+1:].
func partitionEvents(b []event) int {
	n := len(b)
	m := n / 2
	if eventLess(b[m], b[0]) {
		b[m], b[0] = b[0], b[m]
	}
	if eventLess(b[n-1], b[0]) {
		b[n-1], b[0] = b[0], b[n-1]
	}
	if eventLess(b[n-1], b[m]) {
		b[n-1], b[m] = b[m], b[n-1]
	}
	pivot := b[m]
	i, j := 0, n-1
	for {
		for eventLess(b[i], pivot) {
			i++
		}
		for eventLess(pivot, b[j]) {
			j--
		}
		if i >= j {
			return j
		}
		b[i], b[j] = b[j], b[i]
		i++
		j--
	}
}

func insertionSortEvents(b []event) {
	for i := 1; i < len(b); i++ {
		e := b[i]
		j := i - 1
		for j >= 0 && eventLess(e, b[j]) {
			b[j+1] = b[j]
			j--
		}
		b[j+1] = e
	}
}

// nearPush adds a late arrival to the small binary heap merged against the
// draining bucket.
func (s *Simulator) nearPush(e event) {
	q := append(s.near, e)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(e, q[parent]) {
			break
		}
		q[i] = q[parent]
		i = parent
	}
	q[i] = e
	s.near = q
}

// nearPop removes the minimum of the near heap.
func (s *Simulator) nearPop() event {
	q := s.near
	top := q[0]
	n := len(q) - 1
	e := q[n]
	s.near = q[:n]
	if n > 0 {
		q = q[:n]
		i := 0
		for {
			child := 2*i + 1
			if child >= n {
				break
			}
			if r := child + 1; r < n && eventLess(q[r], q[child]) {
				child = r
			}
			if eventLess(e, q[child]) {
				break
			}
			q[i] = q[child]
			i = child
		}
		q[i] = e
	}
	return top
}
