package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// ShardRunner advances a fixed set of simulators — one per shard — in
// lockstep over window barriers, the fork–join core of conservative
// parallel execution. Each Advance(t) runs every shard's events at or
// before t concurrently and returns when all shards have reached t; between
// barriers no two goroutines ever touch the same simulator (work is handed
// out by an atomic counter, one shard at a time), and the join barrier
// orders every shard's writes before the caller's merge phase reads them.
//
// Determinism is structural: each simulator's pop order depends only on its
// own pending set (the (at, seq) invariant), shards never share state
// inside a window, and the caller merges cross-shard traffic serially
// between barriers — so the execution is a pure function of the per-shard
// event sets, regardless of worker count or OS scheduling.
//
// The runner keeps a persistent worker pool; a barrier round costs two
// channel operations per worker and no allocations. With one worker (or
// one shard) Advance runs inline on the calling goroutine.
type ShardRunner struct {
	sims    []*Simulator
	workers int

	target float64       // barrier time for the round in flight
	next   atomic.Int64  // work-stealing shard index for the round
	begin  chan struct{} // one token per worker starts a round
	join   sync.WaitGroup
	closed bool
}

// NewShardRunner builds a runner over sims with the given worker bound;
// workers <= 0 means GOMAXPROCS, and the bound is clamped to len(sims).
// Close must be called to release the pool.
func NewShardRunner(sims []*Simulator, workers int) *ShardRunner {
	if len(sims) == 0 {
		panic("sim: ShardRunner over zero shards")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(sims) {
		workers = len(sims)
	}
	r := &ShardRunner{sims: sims, workers: workers}
	if workers > 1 {
		r.begin = make(chan struct{}, workers)
		for i := 0; i < workers; i++ {
			go r.work()
		}
	}
	return r
}

// work is the persistent worker loop: each begin token runs one round of
// shard-stealing, then joins the barrier.
func (r *ShardRunner) work() {
	for range r.begin {
		for {
			i := int(r.next.Add(1)) - 1
			if i >= len(r.sims) {
				break
			}
			r.sims[i].RunUntil(r.target)
		}
		r.join.Done()
	}
}

// Advance runs every shard's events scheduled at or before t and advances
// all shard clocks to exactly t. It returns once every shard has reached
// the barrier, so the caller may freely read and mutate shard state until
// the next Advance. It reports whether all shards are still live (no shard
// has been stopped).
func (r *ShardRunner) Advance(t float64) bool {
	if r.closed {
		panic("sim: Advance on closed ShardRunner")
	}
	if r.workers <= 1 {
		for _, s := range r.sims {
			s.RunUntil(t)
		}
	} else {
		r.target = t
		r.next.Store(0)
		r.join.Add(r.workers)
		for i := 0; i < r.workers; i++ {
			r.begin <- struct{}{}
		}
		r.join.Wait()
	}
	for _, s := range r.sims {
		if s.Stopped() {
			return false
		}
	}
	return true
}

// NextEventAt returns the earliest pending event time across all shards,
// or false when every shard is drained. Callers use it between barriers to
// pick the next window; it must not race with Advance.
func (r *ShardRunner) NextEventAt() (float64, bool) {
	min, ok := 0.0, false
	for _, s := range r.sims {
		if at, live := s.NextAt(); live && (!ok || at < min) {
			min, ok = at, true
		}
	}
	return min, ok
}

// Workers returns the effective worker bound.
func (r *ShardRunner) Workers() int { return r.workers }

// Close shuts the worker pool down. The runner must be idle (no Advance in
// flight); calling Advance after Close panics.
func (r *ShardRunner) Close() {
	if r.closed {
		return
	}
	r.closed = true
	if r.begin != nil {
		close(r.begin)
	}
}

// String describes the runner for diagnostics.
func (r *ShardRunner) String() string {
	return fmt.Sprintf("ShardRunner{shards: %d, workers: %d}", len(r.sims), r.workers)
}
