package sim

import (
	"testing"

	"plurality/internal/snap"
)

// TestPayloadArenaRecycle pins the free-list behavior: slots are reused
// LIFO and Live tracks the parked count.
func TestPayloadArenaRecycle(t *testing.T) {
	var a PayloadArena
	s0 := a.Put(Event{Kind: 1, Node: 10})
	s1 := a.Put(Event{Kind: 2, Node: 20})
	if a.Live() != 2 {
		t.Fatalf("Live = %d, want 2", a.Live())
	}
	if ev := a.Take(s0); ev.Kind != 1 || ev.Node != 10 {
		t.Fatalf("Take(s0) = %+v", ev)
	}
	// The freed slot is recycled before the arena grows.
	s2 := a.Put(Event{Kind: 3, Node: 30})
	if s2 != s0 {
		t.Errorf("recycled slot %d, want %d", s2, s0)
	}
	if ev := a.Take(s1); ev.Kind != 2 {
		t.Fatalf("Take(s1) = %+v", ev)
	}
	if ev := a.Take(s2); ev.Kind != 3 {
		t.Fatalf("Take(s2) = %+v", ev)
	}
	if a.Live() != 0 {
		t.Errorf("Live = %d after draining, want 0", a.Live())
	}
}

// TestPayloadArenaRoundtrip pins that encode → decode preserves slot ids,
// the property that keeps parked-event references in the kernel heap valid
// across a snapshot.
func TestPayloadArenaRoundtrip(t *testing.T) {
	var a PayloadArena
	s0 := a.Put(Event{Kind: 7, Node: 1, A: 2, B: 3, C: 4})
	s1 := a.Put(Event{Kind: 8, Node: 5})
	a.Take(s0) // leave a hole in the free list

	w := &snap.Writer{}
	a.EncodeState(w)
	var b PayloadArena
	r := snap.NewReader(w.Bytes())
	if err := b.DecodeState(r); err != nil {
		t.Fatal(err)
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
	if b.Live() != 1 {
		t.Fatalf("restored Live = %d, want 1", b.Live())
	}
	if ev := b.Take(s1); ev.Kind != 8 || ev.Node != 5 {
		t.Errorf("restored slot %d holds %+v, want the parked event", s1, ev)
	}
}

// TestPayloadArenaDecodeRejectsBadFreeList pins the corruption guards:
// out-of-range and duplicate free slots fail typed.
func TestPayloadArenaDecodeRejectsBadFreeList(t *testing.T) {
	encode := func(nSlots int, free []int32) []byte {
		w := &snap.Writer{}
		w.Len32(nSlots)
		for i := 0; i < nSlots; i++ {
			w.I32(0)
			w.I32(0)
			w.I32(0)
			w.I32(0)
			w.I32(0)
		}
		w.I32s(free)
		return w.Bytes()
	}
	for name, blob := range map[string][]byte{
		"slot out of range": encode(2, []int32{5}),
		"negative slot":     encode(2, []int32{-1}),
		"duplicate slot":    encode(2, []int32{0, 0}),
		"free exceeds pool": encode(1, []int32{0, 0, 0}),
	} {
		var a PayloadArena
		if err := a.DecodeState(snap.NewReader(blob)); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
}
