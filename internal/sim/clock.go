package sim

import (
	"fmt"

	"plurality/internal/xrand"
)

// Clock is a Poisson clock attached to a simulator: it fires its callback at
// exponentially distributed intervals with the configured rate, matching the
// paper's per-node "random Poisson clock that ticks at constant rate".
//
// A Clock must be started exactly once. Stopping is permanent; protocols use
// it when a node leaves the dynamics (e.g. a cluster is dissolved).
type Clock struct {
	sim     *Simulator
	rng     *xrand.RNG
	rate    float64
	tick    func()
	ticks   uint64
	stopped bool
	started bool
}

// NewClock creates a clock firing tick at Poisson rate on s, drawing
// inter-tick gaps from rng. It panics if rate <= 0.
func NewClock(s *Simulator, rng *xrand.RNG, rate float64, tick func()) *Clock {
	if rate <= 0 {
		panic(fmt.Sprintf("sim: clock rate %v", rate))
	}
	if tick == nil {
		panic("sim: nil tick handler")
	}
	return &Clock{sim: s, rng: rng, rate: rate, tick: tick}
}

// Start schedules the first tick. Calling Start twice panics: a doubled
// clock silently doubles the tick rate, corrupting the model.
func (c *Clock) Start() {
	if c.started {
		panic("sim: clock started twice")
	}
	c.started = true
	c.scheduleNext()
}

func (c *Clock) scheduleNext() {
	c.sim.After(c.rng.Exp(c.rate), func() {
		if c.stopped {
			return
		}
		c.ticks++
		c.tick()
		if !c.stopped {
			c.scheduleNext()
		}
	})
}

// Stop permanently silences the clock. Safe to call multiple times and from
// within the tick callback.
func (c *Clock) Stop() { c.stopped = true }

// Ticks returns how many times the clock has fired.
func (c *Clock) Ticks() uint64 { return c.ticks }

// Rate returns the configured Poisson rate.
func (c *Clock) Rate() float64 { return c.rate }
