package sim

import (
	"fmt"

	"plurality/internal/xrand"
)

// Clocks is the struct-of-arrays form of n Poisson clocks, one per node,
// firing typed events instead of closures: per-node generator state lives
// in one flat []xrand.RNG slice and every tick is a {kind, node} Event, so
// a million clocks cost two slices instead of a million clock objects and
// the steady-state tick path performs zero allocations. This matches the
// paper's per-node "random Poisson clock that ticks at constant rate".
//
// Seeding is bit-compatible with the legacy per-node construction the
// typed kernel replaced: the parent RNG is split once per node in node
// order, exactly as n successive parent.Split() calls would be.
type Clocks struct {
	sim     *Simulator
	kind    int32
	rate    float64
	rngs    []xrand.RNG
	stopped []bool
	ticks   uint64
	started bool
}

// NewClocks derives n per-node clocks of the given rate from parent,
// emitting Event{Kind: kind, Node: v} ticks on s. It panics if rate <= 0.
func NewClocks(s *Simulator, parent *xrand.RNG, n int, rate float64, kind int32) *Clocks {
	if rate <= 0 {
		panic(fmt.Sprintf("sim: clock rate %v", rate))
	}
	if kind < 0 {
		panic(fmt.Sprintf("sim: negative clock event kind %d", kind))
	}
	c := &Clocks{
		sim:     s,
		kind:    kind,
		rate:    rate,
		rngs:    make([]xrand.RNG, n),
		stopped: make([]bool, n),
	}
	for v := range c.rngs {
		parent.SplitInto(&c.rngs[v])
	}
	return c
}

// StartAll schedules the first tick of every clock in node order, through
// the kernel's bulk entry point (draw order and execution order are
// identical to n sequential ScheduleAfter calls; with the event ladder
// each insert is an O(1) bucket append, so the bulk form is a seam for
// future batching rather than a distinct fast path). Calling it twice
// panics: doubled clocks silently double the tick rate, corrupting the
// model.
func (c *Clocks) StartAll() {
	if c.started {
		panic("sim: clocks started twice")
	}
	c.started = true
	now := c.sim.Now()
	c.sim.ScheduleBatch(len(c.rngs), func(v int) (float64, Event) {
		return now + c.rngs[v].Exp(c.rate), Event{Kind: c.kind, Node: int32(v)}
	})
}

// Fire handles one popped tick event for node v: unless the clock is
// stopped it runs tick(v) and schedules the next tick (skipped when tick
// itself stopped the clock). Engines call it from their HandleEvent with a
// method value stored once at setup, so the call allocates nothing.
func (c *Clocks) Fire(v int32, tick func(int)) {
	if c.stopped[v] {
		return
	}
	c.ticks++
	tick(int(v))
	if !c.stopped[v] {
		c.sim.ScheduleAfter(c.rngs[v].Exp(c.rate), Event{Kind: c.kind, Node: v})
	}
}

// Stop permanently silences node v's clock; its pending tick becomes a
// no-op when popped (lazy cancellation). Safe to call repeatedly and from
// within the tick callback.
func (c *Clocks) Stop(v int32) { c.stopped[v] = true }

// Ticks returns the total number of ticks fired across all clocks.
func (c *Clocks) Ticks() uint64 { return c.ticks }

// Rate returns the configured Poisson rate.
func (c *Clocks) Rate() float64 { return c.rate }

// Len returns the number of clocks.
func (c *Clocks) Len() int { return len(c.rngs) }
