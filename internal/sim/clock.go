package sim

import (
	"fmt"

	"plurality/internal/xrand"
)

// Clocks is the struct-of-arrays form of n Poisson clocks, one per node,
// firing typed events instead of closures: per-node generator state lives
// in one flat []xrand.RNG slice and every tick is a {kind, node} Event, so
// a million clocks cost two slices instead of a million clock objects and
// the steady-state tick path performs zero allocations. This matches the
// paper's per-node "random Poisson clock that ticks at constant rate".
//
// Seeding is bit-compatible with the legacy per-node construction the
// typed kernel replaced: the parent RNG is split once per node in node
// order, exactly as n successive parent.Split() calls would be.
type Clocks struct {
	sim     *Simulator
	kind    int32
	rate    float64
	rngs    []xrand.RNG
	stopped []bool
	ticks   uint64
	started bool

	// Subset form (NewClocksFor): nodes lists the global ids owned by this
	// Clocks value in slab order, and local maps global id → slab index.
	// Both are nil for the dense whole-population form, whose slab index is
	// the node id itself.
	nodes []int32
	local []int32
}

// NewClocks derives n per-node clocks of the given rate from parent,
// emitting Event{Kind: kind, Node: v} ticks on s. It panics if rate <= 0.
func NewClocks(s *Simulator, parent *xrand.RNG, n int, rate float64, kind int32) *Clocks {
	if rate <= 0 {
		panic(fmt.Sprintf("sim: clock rate %v", rate))
	}
	if kind < 0 {
		panic(fmt.Sprintf("sim: negative clock event kind %d", kind))
	}
	c := &Clocks{
		sim:     s,
		kind:    kind,
		rate:    rate,
		rngs:    make([]xrand.RNG, n),
		stopped: make([]bool, n),
	}
	for v := range c.rngs {
		parent.SplitInto(&c.rngs[v])
	}
	return c
}

// NewClocksFor derives one clock per listed node from parent, in list
// order, emitting Event{Kind: kind, Node: v} ticks with v the *global* node
// id. local must map every listed global id to its position in nodes
// (shared across shards, indexed by global id); entries for unlisted nodes
// are never read. Sharded engines use this to give each shard a clock slab
// over only the nodes it owns while events keep carrying global ids.
func NewClocksFor(s *Simulator, parent *xrand.RNG, nodes []int32, local []int32, rate float64, kind int32) *Clocks {
	c := NewClocks(s, parent, len(nodes), rate, kind)
	c.nodes = nodes
	c.local = local
	return c
}

// slot maps a global node id to its index in the rngs/stopped slabs.
func (c *Clocks) slot(v int32) int32 {
	if c.local != nil {
		return c.local[v]
	}
	return v
}

// StartAll schedules the first tick of every clock in node order, through
// the kernel's bulk entry point (draw order and execution order are
// identical to n sequential ScheduleAfter calls; with the event ladder
// each insert is an O(1) bucket append, so the bulk form is a seam for
// future batching rather than a distinct fast path). Calling it twice
// panics: doubled clocks silently double the tick rate, corrupting the
// model.
func (c *Clocks) StartAll() {
	if c.started {
		panic("sim: clocks started twice")
	}
	c.started = true
	now := c.sim.Now()
	c.sim.ScheduleBatch(len(c.rngs), func(i int) (float64, Event) {
		v := int32(i)
		if c.nodes != nil {
			v = c.nodes[i]
		}
		return now + c.rngs[i].Exp(c.rate), Event{Kind: c.kind, Node: v}
	})
}

// Fire handles one popped tick event for node v: unless the clock is
// stopped it runs tick(v) and schedules the next tick (skipped when tick
// itself stopped the clock). Engines call it from their HandleEvent with a
// method value stored once at setup, so the call allocates nothing.
func (c *Clocks) Fire(v int32, tick func(int)) {
	i := c.slot(v)
	if c.stopped[i] {
		return
	}
	c.ticks++
	tick(int(v))
	if !c.stopped[i] {
		c.sim.ScheduleAfter(c.rngs[i].Exp(c.rate), Event{Kind: c.kind, Node: v})
	}
}

// Stop permanently silences node v's clock; its pending tick becomes a
// no-op when popped (lazy cancellation). Safe to call repeatedly and from
// within the tick callback.
func (c *Clocks) Stop(v int32) { c.stopped[c.slot(v)] = true }

// Ticks returns the total number of ticks fired across all clocks.
func (c *Clocks) Ticks() uint64 { return c.ticks }

// Rate returns the configured Poisson rate.
func (c *Clocks) Rate() float64 { return c.rate }

// Len returns the number of clocks.
func (c *Clocks) Len() int { return len(c.rngs) }
