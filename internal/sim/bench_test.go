package sim

import (
	"testing"

	"plurality/internal/xrand"
)

// steadyHandler reschedules every popped event a pseudo-random distance in
// the future — the kernel's steady-state regime: a fixed population of
// pending events cycling through the heap.
type steadyHandler struct {
	s   *Simulator
	rng *xrand.RNG
}

func (h *steadyHandler) HandleEvent(ev Event) {
	h.s.ScheduleAfter(h.rng.Exp(1), ev)
}

// BenchmarkEventScheduling pins the zero-allocation guarantee of the typed
// event path: after warm-up, scheduling and dispatching events performs no
// heap allocations (CI asserts 0 B/op on this benchmark).
func BenchmarkEventScheduling(b *testing.B) {
	s := New()
	h := &steadyHandler{s: s, rng: xrand.New(1)}
	s.SetHandler(h)
	const pending = 1024
	s.Reserve(pending + 16)
	for i := 0; i < pending; i++ {
		s.ScheduleAfter(h.rng.Exp(1), Event{Kind: 0, Node: int32(i)})
	}
	// Warm up until the ladder's bucket arrays reach their stable
	// high-water capacities (the maximum over slots drifts for a while, so
	// this is deliberately generous).
	for i := 0; i < 64*pending; i++ {
		s.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// BenchmarkClosureScheduling measures the cold-path closure events: the
// arena reuses slots, so rescheduling one function value stays allocation
// free after the first occupancy.
func BenchmarkClosureScheduling(b *testing.B) {
	s := New()
	rng := xrand.New(2)
	var fn Handler
	fn = func() { s.After(rng.Exp(1), fn) }
	s.After(rng.Exp(1), fn)
	for i := 0; i < 64; i++ {
		s.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// BenchmarkClocksTick measures the full per-node Poisson clock cycle
// (dispatch, Fire, Exp draw, reschedule) on a million clocks.
func BenchmarkClocksTick(b *testing.B) {
	s := New()
	const n = 1_000_000
	var ticks uint64
	var clocks *Clocks
	h := handlerFunc(func(ev Event) {
		clocks.Fire(ev.Node, func(int) { ticks++ })
	})
	s.SetHandler(h)
	s.Reserve(n + 16)
	clocks = NewClocks(s, xrand.New(3), n, 1, 0)
	clocks.StartAll()
	// Warm up past the first window rebuilds so the ladder reaches its
	// stable capacities before measurement.
	for i := 0; i < n; i++ {
		s.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
	if ticks == 0 {
		b.Fatal("no ticks fired")
	}
}

// handlerFunc adapts a function to EventHandler for tests.
type handlerFunc func(Event)

func (f handlerFunc) HandleEvent(ev Event) { f(ev) }
