package sim

import (
	"math"
	"sort"
	"testing"

	"plurality/internal/xrand"
)

// popRec is one observed pop: the event's time and its global identity
// (carried in the payload, since per-simulator seq counters are not
// comparable across shards).
type popRec struct {
	at  float64
	idx int32
}

// recorder collects pops for one simulator.
type recorder struct {
	s    *Simulator
	pops []popRec
	// spawn > 0 makes every popped event schedule one follow-on event
	// spawn generations deep, exercising dynamically created work.
	spawn int32
}

func (r *recorder) HandleEvent(ev Event) {
	r.pops = append(r.pops, popRec{at: r.s.Now(), idx: ev.A})
	if ev.B < r.spawn {
		// Distinct child time derived from the parent: collision-free in
		// practice, so (at) alone is a total order for the cross-check.
		at := r.s.Now() + 0.37 + float64(ev.A)*1.9073486328125e-08
		r.s.Schedule(at, Event{Kind: 0, A: ev.A + 100000, B: ev.B + 1})
	}
}

// buildWorkload returns n events with random times in [0, span) and global
// indices 0..n-1.
func buildWorkload(seed uint64, n int, span float64) []popRec {
	rng := xrand.New(seed)
	evs := make([]popRec, n)
	for i := range evs {
		evs[i] = popRec{at: rng.Float64() * span, idx: int32(i)}
	}
	return evs
}

// runSingle replays the workload on one simulator and returns its pop order.
func runSingle(evs []popRec, spawn int32) []popRec {
	s := New()
	r := &recorder{s: s, spawn: spawn}
	s.SetHandler(r)
	for _, e := range evs {
		s.Schedule(e.at, Event{Kind: 0, A: e.idx})
	}
	s.Run()
	return r.pops
}

// runSharded partitions the workload across shards (round-robin by index),
// drives them over window barriers with the given worker bound, and merges
// each window's pops across shards by (at, idx) — the only reordering a
// deterministic merge layer is allowed to do. If the barrier logic let an
// event slip into the wrong window, the merged order would diverge from
// the single-ladder reference.
func runSharded(t *testing.T, evs []popRec, shards, workers int, spawn int32) []popRec {
	t.Helper()
	sims := make([]*Simulator, shards)
	recs := make([]*recorder, shards)
	for i := range sims {
		sims[i] = New()
		recs[i] = &recorder{s: sims[i], spawn: spawn}
		sims[i].SetHandler(recs[i])
	}
	for _, e := range evs {
		sims[int(e.idx)%shards].Schedule(e.at, Event{Kind: 0, A: e.idx})
	}
	r := NewShardRunner(sims, workers)
	defer r.Close()

	var merged []popRec
	taken := make([]int, shards)
	for {
		at, ok := r.NextEventAt()
		if !ok {
			break
		}
		if !r.Advance(WindowEnd(at)) {
			t.Fatal("shard stopped unexpectedly")
		}
		var window []popRec
		for i, rec := range recs {
			window = append(window, rec.pops[taken[i]:]...)
			taken[i] = len(rec.pops)
		}
		sort.Slice(window, func(a, b int) bool {
			if window[a].at != window[b].at {
				return window[a].at < window[b].at
			}
			return window[a].idx < window[b].idx
		})
		merged = append(merged, window...)
	}
	return merged
}

// TestShardedPopOrderMatchesSingleLadder is the randomized cross-check the
// sharded scheduler's determinism contract rests on: for random event
// workloads (including dynamically spawned follow-ons), the per-window
// merge of shard pop streams reproduces exactly the single-ladder (at, seq)
// pop order.
func TestShardedPopOrderMatchesSingleLadder(t *testing.T) {
	for _, tc := range []struct {
		seed   uint64
		n      int
		span   float64
		shards int
		spawn  int32
	}{
		{seed: 1, n: 5000, span: 3, shards: 2, spawn: 0},
		{seed: 2, n: 5000, span: 0.01, shards: 4, spawn: 0}, // all in one bucket
		{seed: 3, n: 2000, span: 8, shards: 3, spawn: 2},
		{seed: 4, n: 1, span: 1, shards: 5, spawn: 4},
		{seed: 5, n: 7777, span: 600, shards: 8, spawn: 1}, // sparse: many empty windows
	} {
		evs := buildWorkload(tc.seed, tc.n, tc.span)
		want := runSingle(evs, tc.spawn)
		got := runSharded(t, evs, tc.shards, 4, tc.spawn)
		if len(got) != len(want) {
			t.Fatalf("seed %d: sharded popped %d events, single ladder %d", tc.seed, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: pop %d diverged: sharded %+v, single %+v", tc.seed, i, got[i], want[i])
			}
		}
	}
}

// TestShardRunnerWorkerInvariance pins that the merged execution is a pure
// function of the per-shard event sets: any worker bound (inline, fewer
// workers than shards, more than shards requested) yields byte-identical
// pop streams.
func TestShardRunnerWorkerInvariance(t *testing.T) {
	evs := buildWorkload(42, 4000, 5)
	ref := runSharded(t, evs, 4, 1, 1)
	for _, workers := range []int{2, 3, 4, 16} {
		got := runSharded(t, evs, 4, workers, 1)
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: popped %d events, want %d", workers, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: pop %d diverged: %+v != %+v", workers, i, got[i], ref[i])
			}
		}
	}
}

func TestWindowEnd(t *testing.T) {
	for _, tc := range []struct{ in, want float64 }{
		{0, ladderW},
		{0.5 * ladderW, ladderW},
		{ladderW, 2 * ladderW},
		{1.75, 1.75 + ladderW}, // 1.75*1024 = 1792 exactly
		{12345.6789, math.Floor(12345.6789*1024+1) / 1024},
	} {
		if got := WindowEnd(tc.in); got != tc.want {
			t.Errorf("WindowEnd(%v) = %v, want %v", tc.in, got, tc.want)
		}
		if got := WindowEnd(tc.in); got <= tc.in {
			t.Errorf("WindowEnd(%v) = %v does not advance", tc.in, got)
		}
	}
	if got := WindowEnd(maxLadderTime); !math.IsInf(got, 1) {
		t.Errorf("WindowEnd(maxLadderTime) = %v, want +Inf", got)
	}
}

func TestNewClocksFor(t *testing.T) {
	s := New()
	n := 10
	nodes := []int32{1, 3, 5, 7, 9}
	local := make([]int32, n)
	for i, v := range nodes {
		local[v] = int32(i)
	}
	parent := xrand.New(7)
	c := NewClocksFor(s, parent, nodes, local, 1, 0)
	if c.Len() != len(nodes) {
		t.Fatalf("Len() = %d, want %d", c.Len(), len(nodes))
	}
	fired := make(map[int32]int)
	h := handlerFunc(func(ev Event) {
		if ev.Node%2 == 0 {
			t.Fatalf("tick for unowned node %d", ev.Node)
		}
		fired[ev.Node]++
		if fired[ev.Node] >= 3 {
			c.Stop(ev.Node)
		}
		c.Fire(ev.Node, func(int) {})
	})
	s.SetHandler(h)
	c.StartAll()
	s.Run()
	for _, v := range nodes {
		if fired[v] < 3 {
			t.Errorf("node %d fired %d times, want >= 3", v, fired[v])
		}
	}
}

// BenchmarkShardRunnerAdvance measures the steady-state cost of one window
// barrier round with live per-shard work; it must stay allocation-free.
func BenchmarkShardRunnerAdvance(b *testing.B) {
	const shards = 4
	sims := make([]*Simulator, shards)
	for i := range sims {
		s := New()
		// Self-rescheduling handler: every pop schedules the next window's
		// event, so each barrier round carries live per-shard work.
		s.SetHandler(handlerFunc(func(ev Event) {
			s.Schedule(s.Now()+ladderW, ev)
		}))
		s.Schedule(0.5*ladderW, Event{Kind: 0, A: int32(i)})
		sims[i] = s
	}
	r := NewShardRunner(sims, 2)
	defer r.Close()
	b.ReportAllocs()
	b.ResetTimer()
	t := 0.0
	for i := 0; i < b.N; i++ {
		t += ladderW
		r.Advance(t)
	}
}
