package sim

import (
	"context"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"plurality/internal/xrand"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var got []int
	s.At(3, func() { got = append(got, 3) })
	s.At(1, func() { got = append(got, 1) })
	s.At(2, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestTieBreakFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("equal-time events reordered: %v", got)
		}
	}
}

func TestNowAdvances(t *testing.T) {
	s := New()
	var at1, at2 float64
	s.At(1.5, func() { at1 = s.Now() })
	s.At(4.25, func() { at2 = s.Now() })
	s.Run()
	if at1 != 1.5 || at2 != 4.25 {
		t.Fatalf("Now() inside handlers: %v, %v", at1, at2)
	}
}

func TestAfterRelative(t *testing.T) {
	s := New()
	var inner float64
	s.At(2, func() {
		s.After(3, func() { inner = s.Now() })
	})
	s.Run()
	if inner != 5 {
		t.Fatalf("After scheduled at %v, want 5", inner)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(5, func() {})
	})
	s.Run()
}

func TestNonFiniteTimePanics(t *testing.T) {
	s := New()
	for _, bad := range []float64{math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("scheduling at %v did not panic", bad)
				}
			}()
			s.At(bad, func() {})
		}()
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4, 5} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	s.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("RunUntil(3) fired %d events, want 3", len(fired))
	}
	if s.Now() != 3 {
		t.Fatalf("Now() = %v after RunUntil(3)", s.Now())
	}
	s.RunUntil(10)
	if len(fired) != 5 {
		t.Fatalf("fired %d events total, want 5", len(fired))
	}
	if s.Now() != 10 {
		t.Fatalf("Now() = %v after RunUntil(10)", s.Now())
	}
}

func TestRunUntilBoundaryInclusive(t *testing.T) {
	s := New()
	fired := false
	s.At(3, func() { fired = true })
	s.RunUntil(3)
	if !fired {
		t.Fatal("event exactly at the horizon did not fire")
	}
}

func TestStopHaltsExecution(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(float64(i), func() {
			count++
			if count == 4 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 4 {
		t.Fatalf("processed %d events after Stop, want 4", count)
	}
	if !s.Stopped() {
		t.Fatal("Stopped() = false")
	}
	if s.Pending() != 6 {
		t.Fatalf("Pending() = %d, want 6", s.Pending())
	}
}

func TestProcessedCount(t *testing.T) {
	s := New()
	for i := 0; i < 25; i++ {
		s.At(float64(i), func() {})
	}
	s.Run()
	if s.Processed() != 25 {
		t.Fatalf("Processed() = %d, want 25", s.Processed())
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func(seed uint64) []float64 {
		s := New()
		r := xrand.New(seed)
		var times []float64
		var spawn func(depth int)
		spawn = func(depth int) {
			if depth == 0 {
				return
			}
			s.After(r.Exp(1), func() {
				times = append(times, s.Now())
				spawn(depth - 1)
			})
		}
		for i := 0; i < 5; i++ {
			spawn(20)
		}
		s.Run()
		return times
	}
	a, b := run(77), run(77)
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestHeapOrderProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		s := New()
		var fired []float64
		for _, v := range raw {
			at := float64(v%100000) / 1000
			s.At(at, func() { fired = append(fired, at) })
		}
		s.Run()
		return sort.Float64sAreSorted(fired)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// startClocks wires a Clocks set firing tick into a fresh handler on s.
func startClocks(s *Simulator, seed uint64, n int, rate float64, tick func(int)) *Clocks {
	var c *Clocks
	s.SetHandler(handlerFunc(func(ev Event) { c.Fire(ev.Node, tick) }))
	c = NewClocks(s, xrand.New(seed), n, rate, 0)
	c.StartAll()
	return c
}

func TestClockRate(t *testing.T) {
	s := New()
	c := startClocks(s, 7, 1, 2.0, func(int) {})
	s.RunUntil(5000)
	c.Stop(0)
	// Expect ~rate*horizon ticks; Poisson sd is sqrt(mean).
	mean := 2.0 * 5000
	got := float64(c.Ticks())
	if math.Abs(got-mean) > 6*math.Sqrt(mean) {
		t.Fatalf("clock ticked %v times over horizon, want ~%v", got, mean)
	}
}

func TestClockInterTickExponential(t *testing.T) {
	s := New()
	var times []float64
	c := startClocks(s, 8, 1, 1.0, func(int) { times = append(times, s.Now()) })
	s.RunUntil(20000)
	c.Stop(0)
	// Kolmogorov-style check on gaps: fraction below ln 2 should be ~1/2.
	below := 0
	for i := 1; i < len(times); i++ {
		if times[i]-times[i-1] < math.Ln2 {
			below++
		}
	}
	frac := float64(below) / float64(len(times)-1)
	if math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("fraction of gaps below median %v, want ~0.5", frac)
	}
}

func TestClockStopInsideCallback(t *testing.T) {
	s := New()
	count := 0
	var c *Clocks
	c = startClocks(s, 9, 1, 1.0, func(int) {
		count++
		if count == 3 {
			c.Stop(0)
		}
	})
	s.Run()
	if count != 3 {
		t.Fatalf("clock fired %d times after Stop, want 3", count)
	}
}

func TestClockDoubleStartPanics(t *testing.T) {
	s := New()
	c := startClocks(s, 1, 4, 1, func(int) {})
	defer func() {
		if recover() == nil {
			t.Fatal("double StartAll did not panic")
		}
	}()
	c.StartAll()
}

func TestLatencyMeans(t *testing.T) {
	r := xrand.New(10)
	cases := []struct {
		l Latency
	}{
		{ExpLatency{Rate: 0.5}},
		{ConstLatency{D: 3}},
		{UniformLatency{Lo: 1, Hi: 5}},
		{ErlangLatency{K: 4, Rate: 2}},
	}
	for _, c := range cases {
		const n = 100000
		sum := 0.0
		for i := 0; i < n; i++ {
			v := c.l.Sample(r)
			if v < 0 {
				t.Fatalf("%s sampled negative %v", c.l.Name(), v)
			}
			sum += v
		}
		got := sum / n
		want := c.l.Mean()
		if math.Abs(got-want) > 0.03*want+0.001 {
			t.Errorf("%s empirical mean %v, want %v", c.l.Name(), got, want)
		}
	}
}

func TestMaxOfSumOf(t *testing.T) {
	r := xrand.New(11)
	// E[max of 2 Exp(1)] = 1.5; E[sum of 3 Exp(1)] = 3.
	const n = 200000
	sumMax, sumSum := 0.0, 0.0
	for i := 0; i < n; i++ {
		sumMax += MaxOf(r, ExpLatency{Rate: 1}, 2)
		sumSum += SumOf(r, ExpLatency{Rate: 1}, 3)
	}
	if got := sumMax / n; math.Abs(got-1.5) > 0.02 {
		t.Errorf("E[max of 2] = %v, want 1.5", got)
	}
	if got := sumSum / n; math.Abs(got-3) > 0.03 {
		t.Errorf("E[sum of 3] = %v, want 3", got)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		r := xrand.New(uint64(i))
		for j := 0; j < 1000; j++ {
			s.After(r.Exp(1), func() {})
		}
		s.Run()
	}
}

func BenchmarkClockTicks(b *testing.B) {
	s := New()
	startClocks(s, 1, 1, 1, func(int) {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RunUntil(s.Now() + 1)
	}
}

func TestRunContextCancellation(t *testing.T) {
	s := New()
	var reschedule func()
	ran := 0
	reschedule = func() {
		ran++
		s.After(1, reschedule) // never drains on its own
	}
	s.After(0, reschedule)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.RunContext(ctx); err != context.Canceled {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
	if !s.Stopped() {
		t.Error("simulator not stopped after cancellation")
	}
	if ran > 512 {
		t.Errorf("ran %d events after a pre-cancelled context", ran)
	}
}

func TestRunContextNilAndDrained(t *testing.T) {
	s := New()
	ran := false
	s.After(1, func() { ran = true })
	if err := s.RunContext(nil); err != nil {
		t.Fatalf("RunContext(nil) = %v", err)
	}
	if !ran {
		t.Error("event did not run")
	}
	s2 := New()
	s2.After(1, func() {})
	if err := s2.RunContext(context.Background()); err != nil {
		t.Fatalf("RunContext(Background) = %v", err)
	}
}

func TestAtCancel(t *testing.T) {
	s := New()
	fired := []string{}
	tok := s.AtCancel(1, func() { fired = append(fired, "cancelled") })
	s.At(2, func() { fired = append(fired, "kept") })
	if !s.Cancel(tok) {
		t.Fatal("pending event did not cancel")
	}
	if s.Cancel(tok) {
		t.Fatal("double Cancel reported success")
	}
	// The zero Token must be a harmless no-op, not an aliased slot 0.
	if s.Cancel(Token{}) {
		t.Fatal("zero Token cancelled something")
	}
	before := s.Processed()
	s.Run()
	if len(fired) != 1 || fired[0] != "kept" {
		t.Fatalf("fired %v, want only the kept event", fired)
	}
	// The cancelled tombstone is skipped without counting as processed.
	if s.Processed()-before != 1 {
		t.Fatalf("processed %d events, want 1", s.Processed()-before)
	}
}

func TestCancelAfterFire(t *testing.T) {
	s := New()
	ran := false
	tok := s.AtCancel(1, func() { ran = true })
	s.Run()
	if !ran {
		t.Fatal("event did not fire")
	}
	if s.Cancel(tok) {
		t.Fatal("Cancel after fire reported success")
	}
	// The slot is recycled; a stale token must not kill the new occupant.
	s.At(2, func() {})
	if s.Cancel(tok) {
		t.Fatal("stale token cancelled a recycled slot")
	}
	if !s.Step() {
		t.Fatal("recycled-slot event did not run")
	}
}

// TestScheduleBatchEquivalence pins that the bulk scheduling path yields
// exactly the execution a loop of Schedule calls would: same pop order,
// same sequence numbers, interleaved correctly with events that were
// already pending and events scheduled afterwards.
func TestScheduleBatchEquivalence(t *testing.T) {
	r := xrand.New(17)
	times := make([]float64, 500)
	for i := range times {
		times[i] = r.Float64() * 10
	}
	run := func(batch bool) []Event {
		s := New()
		var got []Event
		s.SetHandler(handlerFunc(func(ev Event) { got = append(got, ev) }))
		s.Schedule(5, Event{Kind: 2, Node: -1}) // pre-existing pending event
		if batch {
			s.ScheduleBatch(len(times), func(i int) (float64, Event) {
				return times[i], Event{Kind: 1, Node: int32(i)}
			})
		} else {
			for i, at := range times {
				s.Schedule(at, Event{Kind: 1, Node: int32(i)})
			}
		}
		s.Schedule(times[0], Event{Kind: 3, Node: -2}) // equal-time tie after the batch
		s.Run()
		return got
	}
	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pop %d differs: scalar %+v, batch %+v", i, a[i], b[i])
		}
	}
}
