package sim

import (
	"context"
	"errors"
	"fmt"
	"math"

	"plurality/internal/snap"
)

// ErrClosuresPending reports that the simulator state cannot be captured
// because live closure events (At/After/AtCancel) are still queued. Closures
// are opaque function values the codec cannot serialize; engines that want
// to be checkpointable must schedule their cold-path actions as typed
// events instead (all built-in engines do). Cancelled tombstones do not
// block capture — they are dropped, which is observationally equivalent to
// popping and skipping them.
var ErrClosuresPending = errors.New("sim: live closure events pending; only typed-event state is serializable")

// pendingEvents calls f for every queued event (tombstones included) in
// the ladder's canonical traversal order: the draining current bucket,
// then the near heap, then the ring slots, then the overflow tail. The
// order is a pure function of the execution that produced the state, so
// capturing the same state twice yields identical bytes.
func (s *Simulator) pendingEvents(f func(e event)) {
	for _, e := range s.cur[s.curPos:] {
		f(e)
	}
	for _, e := range s.near {
		f(e)
	}
	for _, b := range s.buckets {
		for _, e := range b {
			f(e)
		}
	}
	for _, e := range s.overflow {
		f(e)
	}
}

// EncodeState serializes the full scheduler state — virtual clock, sequence
// and processed counters, and the pending typed-event set — into w. The
// encoding is canonical (ladder traversal order), so capturing the same
// state twice yields identical bytes. It fails with ErrClosuresPending if a
// live closure event is queued.
func (s *Simulator) EncodeState(w *snap.Writer) error {
	live := 0
	var closures error
	s.pendingEvents(func(e event) {
		if e.kind == kindFunc {
			if s.fns[e.a] != nil {
				closures = ErrClosuresPending
			}
			return // cancelled tombstone: dropped, it would be skipped anyway
		}
		live++
	})
	if closures != nil {
		return closures
	}
	w.F64(s.now)
	w.U64(s.seq)
	w.U64(s.processed)
	w.Bool(s.stopped)
	w.Len32(live)
	s.pendingEvents(func(e event) {
		if e.kind == kindFunc {
			return
		}
		w.F64(e.at)
		w.U64(e.seq)
		w.I32(e.kind)
		w.I32(e.node)
		w.I32(e.a)
		w.I32(e.b)
		w.I32(e.c)
	})
	return nil
}

// DecodeState restores scheduler state previously written by EncodeState,
// discarding whatever was scheduled on s before the call (the closure arena
// included). The pending events are refiled into the ladder on load;
// because the (time, seq) key is a strict total order, the rebuilt
// scheduler pops in exactly the captured order regardless of its internal
// layout.
func (s *Simulator) DecodeState(r *snap.Reader) error {
	now := r.F64()
	seq := r.U64()
	processed := r.U64()
	stopped := r.Bool()
	n := r.Len32(40)
	if err := r.Err(); err != nil {
		return err
	}
	if math.IsNaN(now) || math.IsInf(now, 0) {
		return r.Fail(fmt.Errorf("%w: non-finite clock %v", snap.ErrCorrupt, now))
	}
	queue := make([]event, n)
	for i := range queue {
		e := event{
			at:   r.F64(),
			seq:  r.U64(),
			kind: r.I32(),
			node: r.I32(),
			a:    r.I32(),
			b:    r.I32(),
			c:    r.I32(),
		}
		if r.Err() != nil {
			return r.Err()
		}
		if math.IsNaN(e.at) || math.IsInf(e.at, 0) || e.at < now {
			return r.Fail(fmt.Errorf("%w: event at %v before clock %v", snap.ErrCorrupt, e.at, now))
		}
		if e.kind < 0 {
			return r.Fail(fmt.Errorf("%w: negative event kind %d", snap.ErrCorrupt, e.kind))
		}
		if e.seq >= seq {
			return r.Fail(fmt.Errorf("%w: event seq %d >= next seq %d", snap.ErrCorrupt, e.seq, seq))
		}
		queue[i] = e
	}
	s.now = now
	s.seq = seq
	s.processed = processed
	s.stopped = stopped
	s.fns = nil
	s.fnGen = nil
	s.freeFns = nil
	// Reset the ladder to the restored clock and refile every event; all
	// captured times are >= now, so they land at or after the new current
	// bucket.
	s.cur = s.cur[:0]
	s.curPos = 0
	s.curIdx = bucketOf(now)
	s.winHi = s.curIdx + 1 + ladderBuckets
	s.near = s.near[:0]
	for i := range s.buckets {
		s.buckets[i] = s.buckets[i][:0]
	}
	s.inBuckets = 0
	s.overflow = s.overflow[:0]
	s.ovMinJ = math.MaxInt64
	s.pending = 0
	for _, e := range queue {
		s.insert(e)
	}
	return nil
}

// RunContextTo executes events with scheduled time <= t and returns with
// later events still pending, leaving the clock at the last executed
// event's time (unlike RunUntil, which advances it to exactly t — a restored
// trajectory must not see a clock value the uninterrupted one never held).
// It returns early when the queue drains, Stop is called, or ctx is
// cancelled (polled every few hundred events, returning ctx.Err()). A nil
// ctx is never cancelled.
func (s *Simulator) RunContextTo(ctx context.Context, t float64) error {
	for i := uint(0); ; i++ {
		if ctx != nil && i&255 == 0 {
			select {
			case <-ctx.Done():
				s.Stop()
				return ctx.Err()
			default:
			}
		}
		if s.stopped {
			return nil
		}
		if at, ok := s.peekAt(); !ok || at > t {
			return nil
		}
		s.Step()
	}
}

// RunCheckpointed drives s to completion while honouring a pending
// checkpoint request — the shared barrier sequence of every engine: events
// scheduled at or before ck.At run first, then (if the run is still live
// and has pending work) capture produces the engine payload, the sink
// receives it, and ck.Halt optionally stops the run before the remainder
// executes. A nil or capture-less ck degrades to plain RunContext.
func RunCheckpointed(ctx context.Context, s *Simulator, ck *snap.Checkpoint, capture func() ([]byte, error)) error {
	if ck.Capturing() {
		if err := s.RunContextTo(ctx, ck.At); err != nil {
			return err
		}
		if !s.Stopped() && s.Pending() > 0 {
			state, err := capture()
			if err != nil {
				return err
			}
			ck.Sink(state, s.Now(), s.Processed())
			if ck.Halt {
				s.Stop()
			}
		}
	}
	return s.RunContext(ctx)
}

// EncodeState serializes the clocks' mutable state — per-node generator
// words, stopped flags and the tick counter — into w. The static rate and
// event kind are reconstructed by the owning engine, which also recreates
// the Clocks value before calling DecodeState.
func (c *Clocks) EncodeState(w *snap.Writer) {
	w.U64(c.ticks)
	w.Bool(c.started)
	w.Len32(len(c.rngs))
	for i := range c.rngs {
		w.RNG(&c.rngs[i])
	}
	w.Bools(c.stopped)
}

// DecodeState restores clock state previously written by EncodeState into a
// Clocks value constructed with the same node count.
func (c *Clocks) DecodeState(r *snap.Reader) error {
	ticks := r.U64()
	started := r.Bool()
	n := r.Len32(32)
	if err := r.Err(); err != nil {
		return err
	}
	if n != len(c.rngs) {
		return r.Fail(fmt.Errorf("%w: clock count %d != %d", snap.ErrCorrupt, n, len(c.rngs)))
	}
	for i := range c.rngs {
		if err := r.ReadRNG(&c.rngs[i]); err != nil {
			return err
		}
	}
	stopped := r.Bools()
	if err := r.Err(); err != nil {
		return err
	}
	if len(stopped) != len(c.stopped) {
		return r.Fail(fmt.Errorf("%w: clock stop-flag count %d != %d", snap.ErrCorrupt, len(stopped), len(c.stopped)))
	}
	copy(c.stopped, stopped)
	c.ticks = ticks
	c.started = started
	return nil
}

// Perturb folds a divergence label into every per-node clock generator; see
// xrand.RNG.Perturb (each generator's own state keeps the perturbed streams
// distinct across nodes). Label 0 is the identity.
func (c *Clocks) Perturb(label uint64) {
	if label == 0 {
		return
	}
	for i := range c.rngs {
		c.rngs[i].Perturb(label)
	}
}
