package sim

import (
	"fmt"

	"plurality/internal/snap"
)

// PayloadArena widens the fixed (Node, A, B, C) event payload: an engine
// parks a full Event in a slot and schedules a small typed "deliver" event
// whose A field carries the slot id; on dispatch it takes the slot back and
// re-dispatches the original event. It mirrors the kernel's closure arena —
// append-grown slots recycled through a free list — but holds plain data, so
// unlike closures the parked events serialize: arenas are captured verbatim
// (slots and free list), which keeps slot ids referenced by pending deliver
// events valid across a snapshot/restore cycle.
//
// The adversary layer is the first user: a delayed message is the original
// event parked in a slot, delivered later by the adversary's deliver event
// (see internal/adversary). The zero value is ready to use.
type PayloadArena struct {
	slots []Event
	free  []int32
}

// Put parks ev in a free slot and returns the slot id.
func (a *PayloadArena) Put(ev Event) int32 {
	if n := len(a.free); n > 0 {
		slot := a.free[n-1]
		a.free = a.free[:n-1]
		a.slots[slot] = ev
		return slot
	}
	a.slots = append(a.slots, ev)
	return int32(len(a.slots) - 1)
}

// Take returns the parked event and recycles the slot. Taking a slot that
// was never Put (or taking it twice) is a programming error; the arena does
// not track per-slot liveness beyond the free list, exactly like the closure
// arena's generation-free fast path.
func (a *PayloadArena) Take(slot int32) Event {
	ev := a.slots[slot]
	a.slots[slot] = Event{}
	a.free = append(a.free, slot)
	return ev
}

// Live returns the number of currently parked events.
func (a *PayloadArena) Live() int {
	return len(a.slots) - len(a.free)
}

// EncodeState serializes the arena — slots and free list verbatim — into w.
// The encoding preserves slot ids, so deliver events captured by the kernel
// codec keep pointing at the right parked payloads after a restore.
func (a *PayloadArena) EncodeState(w *snap.Writer) {
	w.Len32(len(a.slots))
	for _, ev := range a.slots {
		w.I32(ev.Kind)
		w.I32(ev.Node)
		w.I32(ev.A)
		w.I32(ev.B)
		w.I32(ev.C)
	}
	w.I32s(a.free)
}

// DecodeState restores arena state previously written by EncodeState,
// replacing the receiver's contents.
func (a *PayloadArena) DecodeState(r *snap.Reader) error {
	n := r.Len32(20)
	if err := r.Err(); err != nil {
		return err
	}
	slots := make([]Event, n)
	for i := range slots {
		slots[i] = Event{
			Kind: r.I32(),
			Node: r.I32(),
			A:    r.I32(),
			B:    r.I32(),
			C:    r.I32(),
		}
	}
	free := r.I32s()
	if err := r.Err(); err != nil {
		return err
	}
	if len(free) > len(slots) {
		return r.Fail(fmt.Errorf("%w: arena free list %d exceeds %d slots", snap.ErrCorrupt, len(free), len(slots)))
	}
	seen := make([]bool, len(slots))
	for _, f := range free {
		if f < 0 || int(f) >= len(slots) || seen[f] {
			return r.Fail(fmt.Errorf("%w: bad arena free slot %d", snap.ErrCorrupt, f))
		}
		seen[f] = true
	}
	a.slots = slots
	a.free = free
	return nil
}
