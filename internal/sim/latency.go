package sim

import (
	"fmt"
	"math"

	"plurality/internal/xrand"
)

// Latency models the random time to establish one communication channel
// (the paper's T2). The arXiv version fixes T2 ~ Exp(λ); the PODC version's
// "positive aging" result holds for a wider class, so the simulator accepts
// any positive distribution and the experiments sweep over several.
type Latency interface {
	// Sample draws one channel-establishment delay using r.
	Sample(r *xrand.RNG) float64
	// Mean returns the expected delay (used to report 1/λ-style axes).
	Mean() float64
	// Name identifies the distribution in experiment output.
	Name() string
}

// ExpLatency is the paper's exponential channel latency with rate Rate
// (mean 1/Rate).
type ExpLatency struct {
	// Rate is the exponential rate λ > 0.
	Rate float64
}

var _ Latency = ExpLatency{}

// Sample draws an Exp(Rate) delay.
func (l ExpLatency) Sample(r *xrand.RNG) float64 { return r.Exp(l.Rate) }

// Mean returns 1/Rate.
func (l ExpLatency) Mean() float64 { return 1 / l.Rate }

// Name returns a human-readable identifier.
func (l ExpLatency) Name() string { return fmt.Sprintf("exp(λ=%g)", l.Rate) }

// ConstLatency is a deterministic delay, the degenerate "new-better-than-
// used" extreme of the positive-aging class.
type ConstLatency struct {
	// D is the fixed delay, D >= 0.
	D float64
}

var _ Latency = ConstLatency{}

// Sample returns the fixed delay D.
func (l ConstLatency) Sample(_ *xrand.RNG) float64 { return l.D }

// Mean returns D.
func (l ConstLatency) Mean() float64 { return l.D }

// Name returns a human-readable identifier.
func (l ConstLatency) Name() string { return fmt.Sprintf("const(%g)", l.D) }

// UniformLatency is uniform on [Lo, Hi).
type UniformLatency struct {
	// Lo and Hi bound the support, 0 <= Lo <= Hi.
	Lo, Hi float64
}

var _ Latency = UniformLatency{}

// Sample draws a uniform delay on [Lo, Hi).
func (l UniformLatency) Sample(r *xrand.RNG) float64 { return r.Uniform(l.Lo, l.Hi) }

// Mean returns (Lo+Hi)/2.
func (l UniformLatency) Mean() float64 { return (l.Lo + l.Hi) / 2 }

// Name returns a human-readable identifier.
func (l UniformLatency) Name() string { return fmt.Sprintf("uniform[%g,%g)", l.Lo, l.Hi) }

// ErlangLatency is the sum of K exponentials with rate Rate — a smooth,
// strictly positively aged distribution (increasing hazard) used in the
// aging experiments (E10).
type ErlangLatency struct {
	// K is the integral shape, K >= 1.
	K int
	// Rate is the per-stage exponential rate.
	Rate float64
}

var _ Latency = ErlangLatency{}

// Sample draws an Erlang(K, Rate) delay.
func (l ErlangLatency) Sample(r *xrand.RNG) float64 { return r.Erlang(l.K, l.Rate) }

// Mean returns K/Rate.
func (l ErlangLatency) Mean() float64 { return float64(l.K) / l.Rate }

// Name returns a human-readable identifier.
func (l ErlangLatency) Name() string { return fmt.Sprintf("erlang(k=%d,λ=%g)", l.K, l.Rate) }

// MaxOf samples n independent latencies and returns the maximum; protocols
// use it for channels opened in parallel, e.g. the paper's max(T2, T2) when
// a node dials its two random samples concurrently.
func MaxOf(r *xrand.RNG, l Latency, n int) float64 {
	if n <= 0 {
		panic(fmt.Sprintf("sim: MaxOf with n=%d", n))
	}
	m := 0.0
	for i := 0; i < n; i++ {
		m = math.Max(m, l.Sample(r))
	}
	return m
}

// SumOf samples n independent latencies and returns the sum; used for
// channels opened sequentially.
func SumOf(r *xrand.RNG, l Latency, n int) float64 {
	if n <= 0 {
		panic(fmt.Sprintf("sim: SumOf with n=%d", n))
	}
	s := 0.0
	for i := 0; i < n; i++ {
		s += l.Sample(r)
	}
	return s
}
