package metrics

import (
	"reflect"
	"testing"

	"plurality/internal/opinion"
)

// points is a small run: the plurality opinion climbs from 0.6 to 1.
func recorderPoints() []Point {
	return []Point{
		{Time: 0, TopFrac: 0.6, PluralityFrac: 0.6, Bias: 1.5},
		{Time: 1, TopFrac: 0.8, PluralityFrac: 0.8, Bias: 4},
		{Time: 2, TopFrac: 0.95, PluralityFrac: 0.95, Bias: 19},
		{Time: 3, TopFrac: 1, PluralityFrac: 1, Bias: 100},
	}
}

func TestRecorderMatchesEvalOutcome(t *testing.T) {
	final := opinion.Counts{10, 0}
	var tr Trajectory
	rec := NewRecorder(0.1, false, nil)
	for _, p := range recorderPoints() {
		tr.Append(p)
		rec.Append(p)
	}
	want := EvalOutcome(tr, final, 0, 0.1)
	got := rec.Outcome(final, 0)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("recorder outcome %+v != EvalOutcome %+v", got, want)
	}
	if !reflect.DeepEqual(rec.Trajectory(), tr) {
		t.Error("accumulated trajectory differs")
	}
}

func TestRecorderDiscardKeepsOutcome(t *testing.T) {
	final := opinion.Counts{10, 0}
	keep := NewRecorder(0.1, false, nil)
	drop := NewRecorder(0.1, true, nil)
	for _, p := range recorderPoints() {
		keep.Append(p)
		drop.Append(p)
	}
	if drop.Trajectory() != nil {
		t.Error("discarding recorder accumulated points")
	}
	if !reflect.DeepEqual(keep.Outcome(final, 0), drop.Outcome(final, 0)) {
		t.Error("discarding changed the outcome")
	}
	if last, ok := drop.Last(); !ok || last.Time != 3 {
		t.Errorf("Last() = %v, %v", last, ok)
	}
}

func TestRecorderSinkSeesEveryPoint(t *testing.T) {
	var seen []Point
	rec := NewRecorder(0.1, true, func(p Point) { seen = append(seen, p) })
	for _, p := range recorderPoints() {
		rec.Append(p)
	}
	if !reflect.DeepEqual(seen, recorderPoints()) {
		t.Errorf("sink saw %v", seen)
	}
}

func TestRecorderNoConsensus(t *testing.T) {
	rec := NewRecorder(0.5, false, nil)
	rec.Append(Point{Time: 0, TopFrac: 0.6, PluralityFrac: 0.6})
	out := rec.Outcome(opinion.Counts{6, 4}, 0)
	if out.FullConsensus {
		t.Error("full consensus without monochromatic counts")
	}
	if !out.EpsReached || out.EpsTime != 0 {
		t.Errorf("eps outcome %+v", out)
	}
}

func TestRecorderOutOfOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on out-of-order point")
		}
	}()
	rec := NewRecorder(0.1, true, nil)
	rec.Append(Point{Time: 2})
	rec.Append(Point{Time: 1})
}
