// Package metrics defines the convergence criteria and trajectory recording
// shared by every protocol in the repository. The paper's statements come in
// two strengths — ε-convergence (all but an ε fraction hold the plurality
// opinion, Theorem 13) and full consensus — and the experiments need the
// first hitting times of both, plus enough of the trajectory to plot
// generation growth and bias evolution.
package metrics

import (
	"fmt"

	"plurality/internal/opinion"
)

// Point is one sampled snapshot of a running protocol.
type Point struct {
	// Time is virtual time: rounds for synchronous protocols, continuous
	// simulator time (in time steps) for asynchronous ones.
	Time float64
	// TopFrac is the fraction of nodes holding the currently dominant
	// opinion.
	TopFrac float64
	// PluralityFrac is the fraction of nodes holding the *initial*
	// plurality opinion (the one that is supposed to win).
	PluralityFrac float64
	// Bias is the current multiplicative bias between the two dominant
	// opinions.
	Bias float64
	// MaxGen is the highest generation present (0 for baselines).
	MaxGen int
	// MaxGenFrac is the fraction of nodes in MaxGen (0 for baselines).
	MaxGenFrac float64
}

// Trajectory is a time-ordered sequence of snapshots.
type Trajectory []Point

// Append adds a snapshot; points must be appended in non-decreasing time
// order, which is asserted because an out-of-order trajectory invalidates
// hitting-time queries.
func (tr *Trajectory) Append(p Point) {
	if n := len(*tr); n > 0 && p.Time < (*tr)[n-1].Time {
		panic(fmt.Sprintf("metrics: out-of-order trajectory point at %v after %v",
			p.Time, (*tr)[n-1].Time))
	}
	*tr = append(*tr, p)
}

// FirstTime returns the earliest recorded time at which pred holds, or
// (0, false) if it never does.
func (tr Trajectory) FirstTime(pred func(Point) bool) (float64, bool) {
	for _, p := range tr {
		if pred(p) {
			return p.Time, true
		}
	}
	return 0, false
}

// Last returns the final snapshot; ok is false when the trajectory is empty.
func (tr Trajectory) Last() (Point, bool) {
	if len(tr) == 0 {
		return Point{}, false
	}
	return tr[len(tr)-1], true
}

// Outcome summarizes a completed protocol run.
type Outcome struct {
	// Winner is the opinion held by the plurality of nodes at termination.
	Winner opinion.Opinion
	// PluralityWon reports whether Winner equals the initial plurality
	// opinion — the correctness criterion of plurality consensus.
	PluralityWon bool
	// FullConsensus reports whether every node held Winner at termination.
	FullConsensus bool
	// ConsensusTime is the first recorded time of full consensus (valid
	// only when FullConsensus is true).
	ConsensusTime float64
	// EpsReached reports whether ε-convergence toward the initial
	// plurality opinion was observed, and EpsTime its first hitting time.
	EpsReached bool
	EpsTime    float64
	// Eps is the ε the run was evaluated against.
	Eps float64
}

// String renders a compact human-readable outcome line.
func (o Outcome) String() string {
	status := "plurality LOST"
	if o.PluralityWon {
		status = "plurality won"
	}
	full := "no full consensus"
	if o.FullConsensus {
		full = fmt.Sprintf("full consensus at t=%.3g", o.ConsensusTime)
	}
	eps := "ε-convergence not reached"
	if o.EpsReached {
		eps = fmt.Sprintf("ε=%.3g-convergence at t=%.3g", o.Eps, o.EpsTime)
	}
	return fmt.Sprintf("winner=%d (%s), %s, %s", o.Winner, status, eps, full)
}

// EvalOutcome builds an Outcome from the trajectory, the final opinion
// counts, and the initial plurality opinion. eps defines ε-convergence; the
// hitting times are read from the trajectory (so the recording resolution
// bounds their accuracy).
func EvalOutcome(tr Trajectory, final opinion.Counts, initialPlurality opinion.Opinion, eps float64) Outcome {
	winner, _ := final.TopTwo()
	out := Outcome{
		Winner:       opinion.Opinion(winner),
		PluralityWon: opinion.Opinion(winner) == initialPlurality,
		Eps:          eps,
	}
	total := final.Total()
	if total > 0 && final[winner] == total {
		out.FullConsensus = true
		if t, ok := tr.FirstTime(func(p Point) bool { return p.TopFrac >= 1 }); ok {
			out.ConsensusTime = t
		} else if last, ok := tr.Last(); ok {
			out.ConsensusTime = last.Time
		}
	}
	if t, ok := tr.FirstTime(func(p Point) bool { return p.PluralityFrac >= 1-eps }); ok {
		out.EpsReached = true
		out.EpsTime = t
	}
	return out
}

// Snapshot builds a Point at the given time from an assignment, support size
// k and the initial plurality opinion. Generation fields are left zero;
// generation-aware protocols fill them in afterwards.
func Snapshot(t float64, a []opinion.Opinion, k int, initialPlurality opinion.Opinion) Point {
	return SnapshotCounts(t, opinion.CountOf(a, k), initialPlurality)
}

// SnapshotCounts is Snapshot for engines that already maintain the opinion
// counts incrementally (the synchronous engine's packed-state tallies): it
// skips the O(n) recount and builds the Point from the counts directly,
// computing exactly what Snapshot would — so switching an engine from
// Snapshot to SnapshotCounts never moves a recorded trajectory.
func SnapshotCounts(t float64, c opinion.Counts, initialPlurality opinion.Opinion) Point {
	top, _ := c.TopTwo()
	total := c.Total()
	p := Point{Time: t, Bias: c.Bias()}
	if total > 0 {
		p.TopFrac = float64(c[top]) / float64(total)
		if int(initialPlurality) >= 0 && int(initialPlurality) < len(c) {
			p.PluralityFrac = float64(c[initialPlurality]) / float64(total)
		}
	}
	return p
}
