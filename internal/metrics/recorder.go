package metrics

import (
	"fmt"

	"plurality/internal/opinion"
)

// Recorder consumes the snapshot stream of one protocol run. It tracks the
// first hitting times of ε-convergence and full consensus incrementally, so
// a run can evaluate its Outcome without retaining the whole trajectory:
// with discard set the recorder keeps O(1) state per run, which is what
// makes million-node runs with fine recording resolution affordable. An
// optional sink receives every point as it is recorded, enabling streaming
// consumers (live plots, on-line aggregation) regardless of discard.
type Recorder struct {
	eps     float64
	discard bool
	sink    func(Point)

	traj Trajectory
	last Point
	has  bool

	consHit  bool
	consTime float64
	epsHit   bool
	epsTime  float64
}

// NewRecorder returns a recorder evaluating ε-convergence against eps.
// discard suppresses trajectory accumulation; sink, when non-nil, receives
// every appended point in order.
func NewRecorder(eps float64, discard bool, sink func(Point)) *Recorder {
	return &Recorder{eps: eps, discard: discard, sink: sink}
}

// Append records one snapshot. Points must arrive in non-decreasing time
// order, as in Trajectory.Append.
func (r *Recorder) Append(p Point) {
	if r.has && p.Time < r.last.Time {
		panic(fmt.Sprintf("metrics: out-of-order trajectory point at %v after %v",
			p.Time, r.last.Time))
	}
	if !r.consHit && p.TopFrac >= 1 {
		r.consHit = true
		r.consTime = p.Time
	}
	if !r.epsHit && p.PluralityFrac >= 1-r.eps {
		r.epsHit = true
		r.epsTime = p.Time
	}
	r.last = p
	r.has = true
	if !r.discard {
		r.traj = append(r.traj, p)
	}
	if r.sink != nil {
		r.sink(p)
	}
}

// Last returns the most recently appended point; ok is false before the
// first Append. It is tracked even when the trajectory is discarded.
func (r *Recorder) Last() (Point, bool) { return r.last, r.has }

// Trajectory returns the accumulated snapshots (nil when discarding).
func (r *Recorder) Trajectory() Trajectory { return r.traj }

// RecorderState is the serializable mutable state of a Recorder, used by
// the checkpoint subsystem. The eps threshold, discard flag and sink are
// configuration, not state: a restored recorder is constructed with them
// and then overwritten from a RecorderState, after which its Outcome and
// Trajectory are indistinguishable from an uninterrupted recorder's.
type RecorderState struct {
	// Traj is the accumulated trajectory (nil when discarding).
	Traj Trajectory
	// Last is the most recent point and Has whether one was appended.
	Last Point
	Has  bool
	// ConsHit/ConsTime and EpsHit/EpsTime are the incremental first
	// hitting times of full consensus and ε-convergence.
	ConsHit  bool
	ConsTime float64
	EpsHit   bool
	EpsTime  float64
}

// State captures the recorder's mutable state for checkpointing.
func (r *Recorder) State() RecorderState {
	return RecorderState{
		Traj: r.traj, Last: r.last, Has: r.has,
		ConsHit: r.consHit, ConsTime: r.consTime,
		EpsHit: r.epsHit, EpsTime: r.epsTime,
	}
}

// SetState overwrites the recorder's mutable state from a checkpoint. The
// sink is not replayed: an observer attached to a resumed run sees only the
// points recorded after the restore.
func (r *Recorder) SetState(st RecorderState) {
	r.traj = st.Traj
	r.last = st.Last
	r.has = st.Has
	r.consHit = st.ConsHit
	r.consTime = st.ConsTime
	r.epsHit = st.EpsHit
	r.epsTime = st.EpsTime
}

// Outcome summarizes the recorded run, equivalently to EvalOutcome on the
// full trajectory: full consensus is decided by the final counts, its time
// is the first recorded monochromatic snapshot (falling back to the last
// recorded time), and ε-convergence is the first snapshot with a 1−ε
// plurality fraction.
func (r *Recorder) Outcome(final opinion.Counts, initialPlurality opinion.Opinion) Outcome {
	winner, _ := final.TopTwo()
	out := Outcome{
		Winner:       opinion.Opinion(winner),
		PluralityWon: opinion.Opinion(winner) == initialPlurality,
		Eps:          r.eps,
	}
	total := final.Total()
	if total > 0 && final[winner] == total {
		out.FullConsensus = true
		if r.consHit {
			out.ConsensusTime = r.consTime
		} else if r.has {
			out.ConsensusTime = r.last.Time
		}
	}
	if r.epsHit {
		out.EpsReached = true
		out.EpsTime = r.epsTime
	}
	return out
}
