package metrics

import (
	"testing"

	"plurality/internal/opinion"
)

func TestTrajectoryAppendOrdered(t *testing.T) {
	var tr Trajectory
	tr.Append(Point{Time: 1})
	tr.Append(Point{Time: 1})
	tr.Append(Point{Time: 2})
	if len(tr) != 3 {
		t.Fatalf("len = %d", len(tr))
	}
}

func TestTrajectoryAppendOutOfOrderPanics(t *testing.T) {
	var tr Trajectory
	tr.Append(Point{Time: 5})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order append did not panic")
		}
	}()
	tr.Append(Point{Time: 4})
}

func TestFirstTime(t *testing.T) {
	tr := Trajectory{
		{Time: 1, TopFrac: 0.5},
		{Time: 2, TopFrac: 0.8},
		{Time: 3, TopFrac: 0.95},
	}
	got, ok := tr.FirstTime(func(p Point) bool { return p.TopFrac >= 0.8 })
	if !ok || got != 2 {
		t.Fatalf("FirstTime = %v, %v", got, ok)
	}
	_, ok = tr.FirstTime(func(p Point) bool { return p.TopFrac >= 2 })
	if ok {
		t.Fatal("impossible predicate reported as hit")
	}
}

func TestLast(t *testing.T) {
	var tr Trajectory
	if _, ok := tr.Last(); ok {
		t.Fatal("empty trajectory has a last point")
	}
	tr.Append(Point{Time: 7})
	p, ok := tr.Last()
	if !ok || p.Time != 7 {
		t.Fatalf("Last = %v, %v", p, ok)
	}
}

func TestEvalOutcomeFullConsensus(t *testing.T) {
	tr := Trajectory{
		{Time: 0, TopFrac: 0.6, PluralityFrac: 0.6},
		{Time: 5, TopFrac: 0.99, PluralityFrac: 0.99},
		{Time: 9, TopFrac: 1, PluralityFrac: 1},
	}
	final := opinion.Counts{100, 0, 0}
	out := EvalOutcome(tr, final, 0, 0.01)
	if !out.PluralityWon {
		t.Error("plurality should have won")
	}
	if !out.FullConsensus || out.ConsensusTime != 9 {
		t.Errorf("consensus: %v at %v", out.FullConsensus, out.ConsensusTime)
	}
	if !out.EpsReached || out.EpsTime != 5 {
		t.Errorf("eps: %v at %v", out.EpsReached, out.EpsTime)
	}
}

func TestEvalOutcomePluralityLost(t *testing.T) {
	tr := Trajectory{{Time: 0, TopFrac: 1, PluralityFrac: 0}}
	final := opinion.Counts{0, 50}
	out := EvalOutcome(tr, final, 0, 0.1)
	if out.PluralityWon {
		t.Error("plurality marked as won although opinion 1 prevailed")
	}
	if out.Winner != 1 {
		t.Errorf("winner = %d", out.Winner)
	}
	if !out.FullConsensus {
		t.Error("opinion 1 holds all nodes; that is full consensus")
	}
}

func TestEvalOutcomeNoConsensus(t *testing.T) {
	tr := Trajectory{{Time: 0, TopFrac: 0.6, PluralityFrac: 0.6}}
	final := opinion.Counts{60, 40}
	out := EvalOutcome(tr, final, 0, 0.01)
	if out.FullConsensus {
		t.Error("no consensus expected")
	}
	if out.EpsReached {
		t.Error("eps-convergence not expected")
	}
	if out.String() == "" {
		t.Error("empty String()")
	}
}

func TestSnapshot(t *testing.T) {
	a := []opinion.Opinion{0, 0, 0, 1}
	p := Snapshot(2.5, a, 2, 0)
	if p.Time != 2.5 {
		t.Errorf("Time = %v", p.Time)
	}
	if p.TopFrac != 0.75 || p.PluralityFrac != 0.75 {
		t.Errorf("fracs = %v/%v", p.TopFrac, p.PluralityFrac)
	}
	if p.Bias != 3 {
		t.Errorf("Bias = %v", p.Bias)
	}
}

func TestSnapshotTracksPluralityNotTop(t *testing.T) {
	a := []opinion.Opinion{1, 1, 1, 0}
	p := Snapshot(0, a, 2, 0)
	if p.TopFrac != 0.75 {
		t.Errorf("TopFrac = %v", p.TopFrac)
	}
	if p.PluralityFrac != 0.25 {
		t.Errorf("PluralityFrac = %v, want fraction of opinion 0", p.PluralityFrac)
	}
}
