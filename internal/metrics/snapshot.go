package metrics

import "plurality/internal/snap"

// EncodeRecorder writes a recorder's mutable state (see RecorderState) in
// the canonical binary form shared by every engine checkpoint.
func EncodeRecorder(w *snap.Writer, rec *Recorder) {
	st := rec.State()
	w.Len32(len(st.Traj))
	for _, p := range st.Traj {
		encodePoint(w, p)
	}
	encodePoint(w, st.Last)
	w.Bool(st.Has)
	w.Bool(st.ConsHit)
	w.F64(st.ConsTime)
	w.Bool(st.EpsHit)
	w.F64(st.EpsTime)
}

// DecodeRecorder restores a recorder's mutable state previously written by
// EncodeRecorder. When the restored trajectory is empty it stays nil, so a
// resumed discarding run keeps its O(1) footprint.
func DecodeRecorder(r *snap.Reader, rec *Recorder) error {
	var st RecorderState
	n := r.Len32(48)
	if err := r.Err(); err != nil {
		return err
	}
	if n > 0 {
		st.Traj = make(Trajectory, n)
		for i := range st.Traj {
			st.Traj[i] = decodePoint(r)
		}
	}
	st.Last = decodePoint(r)
	st.Has = r.Bool()
	st.ConsHit = r.Bool()
	st.ConsTime = r.F64()
	st.EpsHit = r.Bool()
	st.EpsTime = r.F64()
	if err := r.Err(); err != nil {
		return err
	}
	rec.SetState(st)
	return nil
}

func encodePoint(w *snap.Writer, p Point) {
	w.F64(p.Time)
	w.F64(p.TopFrac)
	w.F64(p.PluralityFrac)
	w.F64(p.Bias)
	w.Int(p.MaxGen)
	w.F64(p.MaxGenFrac)
}

func decodePoint(r *snap.Reader) Point {
	return Point{
		Time:          r.F64(),
		TopFrac:       r.F64(),
		PluralityFrac: r.F64(),
		Bias:          r.F64(),
		MaxGen:        r.Int(),
		MaxGenFrac:    r.F64(),
	}
}
