package baseline

import (
	"testing"

	"plurality/internal/opinion"
	"plurality/internal/sim"
	"plurality/internal/xrand"
)

func TestRunPoissonConvergence(t *testing.T) {
	r := xrand.New(1)
	for _, name := range []string{"two-choices", "3-majority", "undecided-state"} {
		rule, err := NewRule(name, r)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunPoisson(rule, Config{N: 600, K: 2, Alpha: 3, Seed: 5}, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Outcome.FullConsensus {
			t.Errorf("%s (poisson) did not converge by t=%d", name, res.Rounds)
		}
	}
}

func TestRunPoissonPluralityWins(t *testing.T) {
	r := xrand.New(2)
	rule, _ := NewRule("3-majority", r)
	wins := 0
	const trials = 8
	for seed := 0; seed < trials; seed++ {
		res, err := RunPoisson(rule, Config{N: 1000, K: 3, Alpha: 3, Seed: uint64(seed)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome.PluralityWon {
			wins++
		}
	}
	if wins < trials-1 {
		t.Errorf("plurality won only %d/%d async runs", wins, trials)
	}
}

func TestRunPoissonDeterministic(t *testing.T) {
	mk := func() *Result {
		rule, _ := NewRule("two-choices", xrand.New(3))
		res, err := RunPoisson(rule, Config{N: 400, K: 2, Alpha: 2, Seed: 11}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(), mk()
	if a.Rounds != b.Rounds || a.Outcome.Winner != b.Outcome.Winner ||
		a.Outcome.ConsensusTime != b.Outcome.ConsensusTime {
		t.Fatal("async baseline replay diverged")
	}
}

func TestRunPoissonSlowLatencyStretchesTime(t *testing.T) {
	rule, _ := NewRule("two-choices", xrand.New(4))
	fast, err := RunPoisson(rule, Config{N: 500, K: 2, Alpha: 3, Seed: 7},
		sim.ExpLatency{Rate: 2})
	if err != nil {
		t.Fatal(err)
	}
	rule2, _ := NewRule("two-choices", xrand.New(4))
	slow, err := RunPoisson(rule2, Config{N: 500, K: 2, Alpha: 3, Seed: 7},
		sim.ExpLatency{Rate: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if !fast.Outcome.FullConsensus || !slow.Outcome.FullConsensus {
		t.Fatal("async runs did not converge")
	}
	if slow.Outcome.ConsensusTime <= fast.Outcome.ConsensusTime {
		t.Errorf("8× slower latency did not stretch time: fast %v, slow %v",
			fast.Outcome.ConsensusTime, slow.Outcome.ConsensusTime)
	}
}

func TestRunPoissonHorizonRespected(t *testing.T) {
	rule, _ := NewRule("pull-voting", xrand.New(5))
	res, err := RunPoisson(rule, Config{N: 2000, K: 2, Alpha: 1.01, Seed: 9, MaxRounds: 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > 11 {
		t.Errorf("async run continued to t=%d past the horizon", res.Rounds)
	}
}

func TestRunPoissonUndecidedCountsAsNotMono(t *testing.T) {
	// An assignment with undecided nodes cannot be monochromatic until they
	// decide; exercise the undecided bookkeeping.
	assign := make([]opinion.Opinion, 100)
	for i := range assign {
		assign[i] = 0
	}
	assign[0] = opinion.None
	rule, _ := NewRule("undecided-state", xrand.New(6))
	res, err := RunPoisson(rule, Config{N: 100, K: 2, Assignment: assign, Seed: 13}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outcome.FullConsensus {
		t.Error("single undecided node never resolved")
	}
	if res.Outcome.ConsensusTime <= 0 {
		t.Error("consensus reported at t=0 although node 0 was undecided")
	}
}
