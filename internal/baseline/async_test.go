package baseline

import (
	"crypto/sha256"
	"fmt"
	"os"
	"strconv"
	"testing"

	"plurality/internal/opinion"
	"plurality/internal/sim"
	"plurality/internal/xrand"
)

func TestRunPoissonConvergence(t *testing.T) {
	r := xrand.New(1)
	for _, name := range []string{"two-choices", "3-majority", "undecided-state"} {
		rule, err := NewRule(name, r)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunPoisson(rule, Config{N: 600, K: 2, Alpha: 3, Seed: 5}, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Outcome.FullConsensus {
			t.Errorf("%s (poisson) did not converge by t=%d", name, res.Rounds)
		}
	}
}

func TestRunPoissonPluralityWins(t *testing.T) {
	r := xrand.New(2)
	rule, _ := NewRule("3-majority", r)
	wins := 0
	const trials = 8
	for seed := 0; seed < trials; seed++ {
		res, err := RunPoisson(rule, Config{N: 1000, K: 3, Alpha: 3, Seed: uint64(seed)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome.PluralityWon {
			wins++
		}
	}
	if wins < trials-1 {
		t.Errorf("plurality won only %d/%d async runs", wins, trials)
	}
}

func TestRunPoissonDeterministic(t *testing.T) {
	mk := func() *Result {
		rule, _ := NewRule("two-choices", xrand.New(3))
		res, err := RunPoisson(rule, Config{N: 400, K: 2, Alpha: 2, Seed: 11}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(), mk()
	if a.Rounds != b.Rounds || a.Outcome.Winner != b.Outcome.Winner ||
		a.Outcome.ConsensusTime != b.Outcome.ConsensusTime {
		t.Fatal("async baseline replay diverged")
	}
}

func TestRunPoissonSlowLatencyStretchesTime(t *testing.T) {
	rule, _ := NewRule("two-choices", xrand.New(4))
	fast, err := RunPoisson(rule, Config{N: 500, K: 2, Alpha: 3, Seed: 7},
		sim.ExpLatency{Rate: 2})
	if err != nil {
		t.Fatal(err)
	}
	rule2, _ := NewRule("two-choices", xrand.New(4))
	slow, err := RunPoisson(rule2, Config{N: 500, K: 2, Alpha: 3, Seed: 7},
		sim.ExpLatency{Rate: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if !fast.Outcome.FullConsensus || !slow.Outcome.FullConsensus {
		t.Fatal("async runs did not converge")
	}
	if slow.Outcome.ConsensusTime <= fast.Outcome.ConsensusTime {
		t.Errorf("8× slower latency did not stretch time: fast %v, slow %v",
			fast.Outcome.ConsensusTime, slow.Outcome.ConsensusTime)
	}
}

func TestRunPoissonHorizonRespected(t *testing.T) {
	rule, _ := NewRule("pull-voting", xrand.New(5))
	res, err := RunPoisson(rule, Config{N: 2000, K: 2, Alpha: 1.01, Seed: 9, MaxRounds: 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > 11 {
		t.Errorf("async run continued to t=%d past the horizon", res.Rounds)
	}
}

func TestRunPoissonUndecidedCountsAsNotMono(t *testing.T) {
	// An assignment with undecided nodes cannot be monochromatic until they
	// decide; exercise the undecided bookkeeping.
	assign := make([]opinion.Opinion, 100)
	for i := range assign {
		assign[i] = 0
	}
	assign[0] = opinion.None
	rule, _ := NewRule("undecided-state", xrand.New(6))
	res, err := RunPoisson(rule, Config{N: 100, K: 2, Assignment: assign, Seed: 13}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outcome.FullConsensus {
		t.Error("single undecided node never resolved")
	}
	if res.Outcome.ConsensusTime <= 0 {
		t.Error("consensus reported at t=0 although node 0 was undecided")
	}
}

// digestPoisson folds the fields of a Poisson-kernel run that depend on
// event ordering into a SHA-256 digest; floats are rendered in hex so the
// digest changes iff the run is no longer bit-identical.
func digestPoisson(res *Result) string {
	h := sha256.New()
	hx := func(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }
	fmt.Fprintf(h, "rule=%s rounds=%d winner=%d full=%t ct=%s counts=%v\n",
		res.Rule, res.Rounds, res.Outcome.Winner, res.Outcome.FullConsensus,
		hx(res.Outcome.ConsensusTime), res.FinalCounts)
	for _, p := range res.Trajectory {
		fmt.Fprintf(h, "p %s %s %s\n", hx(p.Time), hx(p.TopFrac), hx(p.PluralityFrac))
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// TestRunPoissonGolden pins the Poisson scheduler against the pre-refactor
// closure kernel (recorded at commit 85af9cc): the typed event kernel must
// replay these runs byte-for-byte.
func TestRunPoissonGolden(t *testing.T) {
	golden := map[string]string{
		"pull-voting":     "a02f95c7ebb21b053cfebacd1b9a2f2e1016eef9856d3379a12044b4859ce197",
		"two-choices":     "5e1714f465bc0d30d1def074f6df7e7e2f26ae142e164feb9a5a3d19b471c3da",
		"3-majority":      "051468d0ab80091d0bfef2ea282ca40b409ee0dcbf8c107a7cb21879569f57ca",
		"undecided-state": "4c8db0f1a618d18edce066fc386d1ccd69123cf866053a79e732513d5d213024",
	}
	for name, want := range golden {
		rule, err := NewRule(name, xrand.New(21))
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunPoisson(rule, Config{N: 500, K: 3, Alpha: 2.5, Seed: 17}, nil)
		if err != nil {
			t.Fatal(err)
		}
		got := digestPoisson(res)
		if os.Getenv("PLURALITY_GOLDEN_RECORD") != "" {
			fmt.Printf("GOLDEN\t%q: %q,\n", name, got)
			continue
		}
		if got != want {
			t.Errorf("%s: poisson digest changed:\n  got  %s\n  want %s", name, got, want)
		}
	}
}
