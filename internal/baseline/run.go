package baseline

import (
	"context"
	"errors"
	"fmt"

	"plurality/internal/adversary"
	"plurality/internal/metrics"
	"plurality/internal/opinion"
	"plurality/internal/snap"
	"plurality/internal/topo"
	"plurality/internal/xrand"
)

// Config parametrizes one baseline run.
type Config struct {
	// N is the number of nodes (>= 2) and K the number of opinions (>= 1).
	N, K int
	// Alpha builds a planted-bias assignment when Assignment is nil.
	Alpha float64
	// Assignment optionally fixes the initial opinions (not mutated).
	Assignment []opinion.Opinion
	// MaxRounds caps the run; default 200·k·log₂n rounds, covering the
	// Θ(k log n) bound of 3-majority with ample slack.
	MaxRounds int
	// Seed drives all randomness.
	Seed uint64
	// RecordEvery sets the snapshot interval in rounds; default 1.
	RecordEvery int
	// Eps defines ε-convergence for the outcome; default 1/log² n.
	Eps float64
	// Topo is the interaction graph samples are drawn from; nil means the
	// complete graph on N nodes. Its size must equal N.
	Topo topo.Sampler
	// Ctx cancels or bounds the run; checked about once per (parallel)
	// round. nil means never cancelled.
	Ctx context.Context
	// Observe, when non-nil, receives every recorded snapshot as it
	// happens.
	Observe func(metrics.Point)
	// DiscardTrajectory leaves Result.Trajectory empty, keeping O(1)
	// recording memory; the Outcome is evaluated incrementally instead.
	DiscardTrajectory bool
	// Adv configures the shared adversary layer (crash/churn, drop,
	// Byzantine lying; see internal/adversary and adversary.go in this
	// package). The zero value disables it. The delay kind is rejected —
	// round-based runners have no message latency to stretch — and
	// RunPoisson does not support adversaries at all. Crash times and churn
	// gaps are measured in (parallel) rounds.
	Adv adversary.Config
	// Ckpt requests a mid-run state capture and/or resumes from one; nil
	// disables checkpointing. Ckpt.At is measured in (parallel) rounds for
	// RunSync and RunSequential and in virtual time for RunPoisson — the
	// time axis of the respective Result. See snap.Checkpoint for the
	// semantics shared by every engine.
	Ckpt *snap.Checkpoint
	// Scratch optionally supplies reusable batch-sampling buffers; nil
	// allocates run-local ones. The public batch layer passes one per
	// worker so replications sharing a worker share buffers.
	Scratch *topo.Scratch
}

// scratch returns the configured sampling workspace, defaulting a
// run-local one.
func (cfg *Config) scratch() *topo.Scratch {
	if cfg.Scratch == nil {
		cfg.Scratch = &topo.Scratch{}
	}
	return cfg.Scratch
}

// cancelled reports whether the config's context has been cancelled.
func (cfg *Config) cancelled() bool {
	if cfg.Ctx == nil {
		return false
	}
	select {
	case <-cfg.Ctx.Done():
		return true
	default:
		return false
	}
}

// Result captures one baseline run.
type Result struct {
	// Rule is the dynamics that ran.
	Rule string
	// Outcome summarizes correctness and hitting times. For the sequential
	// scheduler times are parallel rounds (interactions / n).
	Outcome metrics.Outcome
	// Trajectory holds the recorded snapshots.
	Trajectory metrics.Trajectory
	// Rounds is the number of (parallel) rounds executed.
	Rounds int
	// FinalCounts are the opinion counts at termination (undecided nodes
	// are not counted).
	FinalCounts opinion.Counts
	// InitialPlurality is the opinion that was initially dominant.
	InitialPlurality opinion.Opinion
	// AdvCounters tallies the adversary's actions (zero for honest runs).
	AdvCounters adversary.Counters
}

func (cfg *Config) normalize() error {
	if cfg.N < 2 {
		return fmt.Errorf("baseline: need N >= 2, got %d", cfg.N)
	}
	if cfg.K < 1 {
		return fmt.Errorf("baseline: need K >= 1, got %d", cfg.K)
	}
	if cfg.Assignment != nil && len(cfg.Assignment) != cfg.N {
		return fmt.Errorf("baseline: assignment length %d != N %d", len(cfg.Assignment), cfg.N)
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 200 * cfg.K * intLog2(cfg.N)
	}
	if cfg.RecordEvery <= 0 {
		cfg.RecordEvery = 1
	}
	if cfg.Eps <= 0 {
		l := float64(intLog2(cfg.N))
		cfg.Eps = 1 / (l * l)
	}
	tp, err := topo.OrComplete(cfg.Topo, cfg.N)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	cfg.Topo = tp
	if cfg.Adv.Kind == adversary.Delay {
		return errors.New("baseline: the delay adversary needs message latency; round-based runners reject it")
	}
	if cfg.Adv.Kind != adversary.None {
		cfg.Adv.N = cfg.N
	}
	return nil
}

func intLog2(n int) int {
	l := 0
	for v := n; v > 1; v >>= 1 {
		l++
	}
	if l == 0 {
		l = 1
	}
	return l
}

func initialState(cfg *Config, rng *xrand.RNG) ([]opinion.Opinion, opinion.Opinion) {
	var cols []opinion.Opinion
	if cfg.Assignment != nil {
		cols = make([]opinion.Opinion, cfg.N)
		copy(cols, cfg.Assignment)
	} else {
		alpha := cfg.Alpha
		if alpha < 1 {
			alpha = 1
		}
		cols = opinion.PlantedBias(cfg.N, cfg.K, alpha, rng.SplitNamed("assignment"))
	}
	counts := opinion.CountOf(cols, cfg.K)
	plurality, _ := counts.TopTwo()
	return cols, opinion.Opinion(plurality)
}

// RunSync drives the rule in synchronous rounds: every node samples and
// updates simultaneously against the previous round's state.
func RunSync(rule Rule, cfg Config) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	rng := xrand.New(cfg.Seed)
	cols, plurality := initialState(&cfg, rng)
	ad, err := newAdversary(&cfg, cols)
	if err != nil {
		return nil, err
	}
	next := make([]opinion.Opinion, cfg.N)
	res := &Result{Rule: rule.Name(), InitialPlurality: plurality}
	rec := metrics.NewRecorder(cfg.Eps, cfg.DiscardTrajectory, cfg.Observe)
	record := func(round int) {
		rec.Append(metrics.Snapshot(float64(round), cols, cfg.K, plurality))
	}
	stepRNG := rng.SplitNamed("steps")
	startRound := 1
	if ck := cfg.Ckpt; ck.Restoring() {
		st := &roundsState{cols: cols, stepRNG: stepRNG, rule: rule, rec: rec, ad: ad}
		round, rounds, err := restoreRounds(ck.Restore, st, cfg.K, ck.Perturb)
		if err != nil {
			return nil, err
		}
		res.Rounds = rounds
		startRound = round + 1
	} else {
		record(0)
	}
	captured := false
	nSamples := rule.Samples()
	samples := make([]opinion.Opinion, nSamples)
	bs := topo.Batch(cfg.Topo)
	sc := cfg.scratch()
	// Nodes per batch-draw chunk: all of a chunk's sample draws go through
	// one SampleNeighbors call, consuming the stream exactly as the
	// historical per-node scalar loop.
	chunk := 2048
	if nSamples > 0 {
		chunk = 4096 / nSamples
	}
	for round := startRound; round <= cfg.MaxRounds; round++ {
		if cfg.cancelled() {
			return nil, cfg.Ctx.Err()
		}
		if ad != nil {
			ad.applyCrash(float64(round))
		}
		for base := 0; base < cfg.N; base += chunk {
			m := chunk
			if base+m > cfg.N {
				m = cfg.N - base
			}
			vs, out := sc.Buffers(m * nSamples)
			for i := 0; i < m; i++ {
				for s := 0; s < nSamples; s++ {
					vs[i*nSamples+s] = int32(base + i)
				}
			}
			bs.SampleNeighbors(stepRNG, vs, out)
			for i := 0; i < m; i++ {
				v := base + i
				if ad != nil {
					next[v] = cols[v]
					if ad.observe(cols, v, out[i*nSamples:(i+1)*nSamples], samples) {
						next[v] = rule.Update(cols[v], samples)
					}
					continue
				}
				for s := 0; s < nSamples; s++ {
					samples[s] = cols[out[i*nSamples+s]]
				}
				next[v] = rule.Update(cols[v], samples)
			}
		}
		cols, next = next, cols
		res.Rounds = round
		done := ad.done(cols, cfg.K)
		if round%cfg.RecordEvery == 0 || done {
			record(round)
		}
		if ck := cfg.Ckpt; ck.Capturing() && !captured && !done && float64(round) >= ck.At {
			st := &roundsState{tick: round, rounds: res.Rounds, cols: cols,
				stepRNG: stepRNG, rule: rule, rec: rec, ad: ad}
			ck.Sink(captureRounds(st), float64(round), 0)
			captured = true
			if ck.Halt {
				break
			}
		}
		if done {
			break
		}
	}
	res.FinalCounts = opinion.CountOf(cols, cfg.K)
	res.Trajectory = rec.Trajectory()
	res.Outcome = rec.Outcome(res.FinalCounts, plurality)
	if ad != nil {
		ad.patchOutcome(res, cols, plurality)
	}
	return res, nil
}

// RunSequential drives the rule with the population-protocol scheduler: each
// interaction picks one node uniformly at random, which samples and updates
// immediately (asynchronous, sequentially consistent). Time is reported in
// parallel rounds of n interactions.
func RunSequential(rule Rule, cfg Config) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	rng := xrand.New(cfg.Seed)
	cols, plurality := initialState(&cfg, rng)
	ad, err := newAdversary(&cfg, cols)
	if err != nil {
		return nil, err
	}
	res := &Result{Rule: rule.Name(), InitialPlurality: plurality}
	rec := metrics.NewRecorder(cfg.Eps, cfg.DiscardTrajectory, cfg.Observe)
	record := func(round float64) {
		rec.Append(metrics.Snapshot(round, cols, cfg.K, plurality))
	}
	stepRNG := rng.SplitNamed("steps")
	startIt := 1
	if ck := cfg.Ckpt; ck.Restoring() {
		st := &roundsState{cols: cols, stepRNG: stepRNG, rule: rule, rec: rec, ad: ad}
		it, rounds, err := restoreRounds(ck.Restore, st, cfg.K, ck.Perturb)
		if err != nil {
			return nil, err
		}
		res.Rounds = rounds
		startIt = it + 1
	} else {
		record(0)
	}
	captured := false
	nSamples := rule.Samples()
	samples := make([]opinion.Opinion, nSamples)
	bs := topo.Batch(cfg.Topo)
	sc := cfg.scratch()
	maxInteractions := cfg.MaxRounds * cfg.N
	for it := startIt; it <= maxInteractions; it++ {
		if it%cfg.N == 0 && cfg.cancelled() {
			return nil, cfg.Ctx.Err()
		}
		// The activated node's draw and its own update feed the next
		// interaction's reads, so batching stops at the interaction
		// boundary: one bulk call for the S sample draws.
		if ad != nil {
			ad.applyCrash(float64(it) / float64(cfg.N))
		}
		v := stepRNG.Intn(cfg.N)
		vs, out := sc.Buffers(nSamples)
		for i := range vs {
			vs[i] = int32(v)
		}
		bs.SampleNeighbors(stepRNG, vs, out)
		if ad != nil {
			if ad.observe(cols, v, out, samples) {
				cols[v] = rule.Update(cols[v], samples)
			}
		} else {
			for i := range samples {
				samples[i] = cols[out[i]]
			}
			cols[v] = rule.Update(cols[v], samples)
		}
		done := false
		if it%(cfg.RecordEvery*cfg.N) == 0 {
			round := float64(it) / float64(cfg.N)
			res.Rounds = int(round)
			record(round)
			done = ad.done(cols, cfg.K)
		}
		if ck := cfg.Ckpt; ck.Capturing() && !captured && !done &&
			float64(it) >= ck.At*float64(cfg.N) {
			st := &roundsState{tick: it, rounds: res.Rounds, cols: cols,
				stepRNG: stepRNG, rule: rule, rec: rec, ad: ad}
			ck.Sink(captureRounds(st), float64(it)/float64(cfg.N), 0)
			captured = true
			if ck.Halt {
				break
			}
		}
		if done {
			break
		}
	}
	res.FinalCounts = opinion.CountOf(cols, cfg.K)
	res.Trajectory = rec.Trajectory()
	res.Outcome = rec.Outcome(res.FinalCounts, plurality)
	if ad != nil {
		ad.patchOutcome(res, cols, plurality)
	}
	return res, nil
}

func monochromatic(cols []opinion.Opinion, k int) bool {
	var seen opinion.Opinion = opinion.None
	for _, c := range cols {
		if c == opinion.None {
			return false
		}
		if seen == opinion.None {
			seen = c
		} else if c != seen {
			return false
		}
	}
	return true
}
