// Package baseline implements the voting dynamics the paper's related-work
// section (§1.1) positions the generation protocol against: pull voting
// (Hassin–Peleg), two-choices voting (Cooper–Elsässer–Radzik), 3-majority
// (Becchetti et al.) and the k-opinion undecided-state dynamics (Angluin et
// al., generalized by Becchetti et al.). Each rule can be driven either in
// synchronous rounds or by a sequential random-pairing scheduler whose time
// is reported in parallel units (interactions divided by n), the standard
// normalization for population protocols.
package baseline

import (
	"fmt"

	"plurality/internal/opinion"
	"plurality/internal/xrand"
)

// Rule is one local update rule. Implementations must be stateless: the
// whole node state is its opinion (possibly opinion.None for undecided
// dynamics).
type Rule interface {
	// Samples returns how many uniformly sampled opinions the rule reads.
	Samples() int
	// Update returns the node's next opinion given its current opinion and
	// the sampled opinions (length Samples()).
	Update(self opinion.Opinion, sampled []opinion.Opinion) opinion.Opinion
	// Name identifies the rule in experiment output.
	Name() string
}

// PullVoting adopts the sampled opinion unconditionally.
type PullVoting struct{}

var _ Rule = PullVoting{}

// Samples returns 1.
func (PullVoting) Samples() int { return 1 }

// Update adopts the sample (undecided samples are ignored).
func (PullVoting) Update(self opinion.Opinion, s []opinion.Opinion) opinion.Opinion {
	if s[0] == opinion.None {
		return self
	}
	return s[0]
}

// Name returns "pull-voting".
func (PullVoting) Name() string { return "pull-voting" }

// TwoChoices adopts the common opinion of two samples and keeps its own
// otherwise.
type TwoChoices struct{}

var _ Rule = TwoChoices{}

// Samples returns 2.
func (TwoChoices) Samples() int { return 2 }

// Update adopts the samples' opinion iff they coincide.
func (TwoChoices) Update(self opinion.Opinion, s []opinion.Opinion) opinion.Opinion {
	if s[0] == s[1] && s[0] != opinion.None {
		return s[0]
	}
	return self
}

// Name returns "two-choices".
func (TwoChoices) Name() string { return "two-choices" }

// ThreeMajority samples three opinions and adopts the majority among them,
// breaking three-way ties uniformly at random among the samples.
type ThreeMajority struct {
	// R supplies the tie-breaking randomness; required.
	R *xrand.RNG
}

var _ Rule = &ThreeMajority{}

// Samples returns 3.
func (*ThreeMajority) Samples() int { return 3 }

// Update applies the 3-majority rule of Becchetti et al.
func (m *ThreeMajority) Update(self opinion.Opinion, s []opinion.Opinion) opinion.Opinion {
	a, b, c := s[0], s[1], s[2]
	switch {
	case a == b || a == c:
		return a
	case b == c:
		return b
	default:
		return s[m.R.Intn(3)]
	}
}

// Name returns "3-majority".
func (*ThreeMajority) Name() string { return "3-majority" }

// Undecided is the k-opinion undecided-state dynamics: a decided node that
// pulls a different decided opinion becomes undecided; an undecided node
// adopts the first decided opinion it pulls.
type Undecided struct{}

var _ Rule = Undecided{}

// Samples returns 1.
func (Undecided) Samples() int { return 1 }

// Update applies the undecided-state transition.
func (Undecided) Update(self opinion.Opinion, s []opinion.Opinion) opinion.Opinion {
	o := s[0]
	switch {
	case self == opinion.None && o != opinion.None:
		return o
	case self != opinion.None && o != opinion.None && o != self:
		return opinion.None
	default:
		return self
	}
}

// Name returns "undecided-state".
func (Undecided) Name() string { return "undecided-state" }

// NewRule constructs a rule by name: "pull-voting", "two-choices",
// "3-majority" or "undecided-state". r is used by rules that need their own
// randomness; it must not be nil for "3-majority".
func NewRule(name string, r *xrand.RNG) (Rule, error) {
	switch name {
	case "pull-voting":
		return PullVoting{}, nil
	case "two-choices":
		return TwoChoices{}, nil
	case "3-majority":
		if r == nil {
			return nil, fmt.Errorf("baseline: 3-majority needs an RNG")
		}
		return &ThreeMajority{R: r}, nil
	case "undecided-state":
		return Undecided{}, nil
	default:
		return nil, fmt.Errorf("baseline: unknown rule %q", name)
	}
}

// RuleNames lists the available rules in a stable order.
func RuleNames() []string {
	return []string{"pull-voting", "two-choices", "3-majority", "undecided-state"}
}
