package baseline

import (
	"reflect"
	"testing"

	"plurality/internal/snap"
	"plurality/internal/xrand"
)

// roundtrip runs rule under all three schedulers and asserts the
// run-half → capture → restore → finish result deeply equals the
// uninterrupted run.
func roundtrip(t *testing.T, name string, run func(Rule, Config) (*Result, error)) {
	t.Helper()
	newRule := func() Rule {
		r, err := NewRule(name, xrand.New(99).SplitNamed("rule"))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	base := Config{N: 300, K: 3, Alpha: 2, Seed: 17}
	plain, err := run(newRule(), base)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Rounds < 2 {
		t.Fatalf("run too short (%d rounds) to checkpoint meaningfully", plain.Rounds)
	}

	var blob []byte
	ckpt := base
	ckpt.Ckpt = &snap.Checkpoint{
		At:   float64(plain.Rounds) / 2,
		Halt: true,
		Sink: func(state []byte, _ float64, _ uint64) { blob = append([]byte(nil), state...) },
	}
	if _, err := run(newRule(), ckpt); err != nil {
		t.Fatal(err)
	}
	if blob == nil {
		t.Fatal("no snapshot captured")
	}

	resumed := base
	resumed.Ckpt = &snap.Checkpoint{Restore: blob}
	res, err := run(newRule(), resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, plain) {
		t.Errorf("resumed result differs from uninterrupted run:\nresumed: %+v\nplain:   %+v", res, plain)
	}
}

func TestCheckpointRoundtripSync(t *testing.T) {
	for _, rule := range RuleNames() {
		t.Run(rule, func(t *testing.T) { roundtrip(t, rule, RunSync) })
	}
}

func TestCheckpointRoundtripSequential(t *testing.T) {
	for _, rule := range RuleNames() {
		t.Run(rule, func(t *testing.T) { roundtrip(t, rule, RunSequential) })
	}
}

func TestCheckpointRoundtripPoisson(t *testing.T) {
	for _, rule := range RuleNames() {
		t.Run(rule, func(t *testing.T) {
			roundtrip(t, rule, func(r Rule, cfg Config) (*Result, error) {
				return RunPoisson(r, cfg, nil)
			})
		})
	}
}

// TestCheckpointRuleMismatch pins that resuming a stateful-rule blob into a
// stateless rule (and vice versa) is a typed error, not a panic.
func TestCheckpointRuleMismatch(t *testing.T) {
	base := Config{N: 200, K: 3, Alpha: 2, Seed: 23}
	maj, err := NewRule("3-majority", xrand.New(1).SplitNamed("rule"))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := RunSync(maj, base)
	if err != nil {
		t.Fatal(err)
	}
	var blob []byte
	ckpt := base
	ckpt.Ckpt = &snap.Checkpoint{
		At:   float64(plain.Rounds) / 2,
		Halt: true,
		Sink: func(state []byte, _ float64, _ uint64) { blob = append([]byte(nil), state...) },
	}
	maj2, _ := NewRule("3-majority", xrand.New(1).SplitNamed("rule"))
	if _, err := RunSync(maj2, ckpt); err != nil {
		t.Fatal(err)
	}
	resumed := base
	resumed.Ckpt = &snap.Checkpoint{Restore: blob}
	if _, err := RunSync(PullVoting{}, resumed); err == nil {
		t.Error("resuming a 3-majority blob into pull-voting succeeded, want error")
	}
}
