package baseline

import (
	"context"
	"fmt"

	"plurality/internal/metrics"
	"plurality/internal/opinion"
	"plurality/internal/sim"
	"plurality/internal/snap"
	"plurality/internal/xrand"
)

// This file implements the baseline runners' checkpoint hooks. The
// round-based schedulers (RunSync, RunSequential) have tiny state — the
// opinion vector, the step RNG, the rule's tie-break RNG and the recorder —
// captured at a round (or interaction) boundary; the Poisson scheduler
// additionally carries the event kernel and the per-node clocks, exactly
// like the paper's protocols.

// ruleStream returns a rule's internal RNG (nil for stateless rules); it is
// part of the checkpoint state because tie-break draws advance it.
func ruleStream(rule Rule) *xrand.RNG {
	if m, ok := rule.(*ThreeMajority); ok {
		return m.R
	}
	return nil
}

// encodeRuleStream writes the rule RNG (or its absence).
func encodeRuleStream(w *snap.Writer, rule Rule) {
	s := ruleStream(rule)
	w.Bool(s != nil)
	if s != nil {
		w.RNG(s)
	}
}

// decodeRuleStream restores the rule RNG, validating statefulness agreement
// between the blob and the rule being resumed.
func decodeRuleStream(r *snap.Reader, rule Rule) error {
	has := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	s := ruleStream(rule)
	if has != (s != nil) {
		return r.Fail(fmt.Errorf("%w: rule statefulness mismatch (blob for a different rule?)", snap.ErrCorrupt))
	}
	if s != nil {
		return r.ReadRNG(s)
	}
	return nil
}

// roundsState is the shared mutable state of the round-based schedulers.
type roundsState struct {
	tick    int // rounds for RunSync, interactions for RunSequential
	cols    []opinion.Opinion
	rounds  int // res.Rounds at capture
	stepRNG *xrand.RNG
	rule    Rule
	rec     *metrics.Recorder
	ad      *advState // nil for honest runs
}

// captureRounds serializes a round-based run at a scheduler boundary.
func captureRounds(st *roundsState) []byte {
	w := &snap.Writer{}
	w.Int(st.tick)
	w.Int(st.rounds)
	w.RNG(st.stepRNG)
	encodeRuleStream(w, st.rule)
	opinion.EncodeSlice(w, st.cols)
	metrics.EncodeRecorder(w, st.rec)
	// Adversarial runs append the crash flags and the adversary state; the
	// suffix's presence is a pure function of the Config, so capture and
	// restore agree on it and honest blobs decode unchanged.
	if st.ad != nil {
		w.Bools(st.ad.crashed)
		w.Int(st.ad.aliveN)
		st.ad.adv.EncodeState(w)
	}
	return w.Bytes()
}

// restoreRounds overwrites a round-based run's state from a captured
// payload, returning the (tick, rounds) pair to resume after. The cols
// slice is filled in place so caller-held references stay valid.
func restoreRounds(state []byte, st *roundsState, k int, perturb uint64) (tick, rounds int, err error) {
	r := snap.NewReader(state)
	tick = r.Int()
	rounds = r.Int()
	if err := r.ReadRNG(st.stepRNG); err != nil {
		return 0, 0, fmt.Errorf("baseline: step rng: %w", err)
	}
	if err := decodeRuleStream(r, st.rule); err != nil {
		return 0, 0, fmt.Errorf("baseline: rule rng: %w", err)
	}
	cols, err := opinion.DecodeSlice(r, k)
	if err != nil {
		return 0, 0, fmt.Errorf("baseline: opinions: %w", err)
	}
	if err := metrics.DecodeRecorder(r, st.rec); err != nil {
		return 0, 0, fmt.Errorf("baseline: recorder: %w", err)
	}
	var crashed []bool
	aliveN := len(st.cols)
	if st.ad != nil {
		crashed = r.Bools()
		aliveN = r.Int()
		if err := st.ad.adv.DecodeState(r); err != nil {
			return 0, 0, fmt.Errorf("baseline: adversary state: %w", err)
		}
		if len(crashed) != len(st.cols) && r.Err() == nil {
			return 0, 0, fmt.Errorf("baseline: %w: crash-flag length mismatch", snap.ErrCorrupt)
		}
		if aliveN < 0 || aliveN > len(st.cols) {
			return 0, 0, fmt.Errorf("baseline: %w: alive count %d outside [0, %d]", snap.ErrCorrupt, aliveN, len(st.cols))
		}
	}
	if err := r.Finish(); err != nil {
		return 0, 0, fmt.Errorf("baseline: state: %w", err)
	}
	if len(cols) != len(st.cols) {
		return 0, 0, fmt.Errorf("baseline: %w: %d opinions for N=%d (blob for a different N?)", snap.ErrCorrupt, len(cols), len(st.cols))
	}
	if tick < 0 || rounds < 0 {
		return 0, 0, fmt.Errorf("baseline: %w: negative scheduler position", snap.ErrCorrupt)
	}
	copy(st.cols, cols)
	if st.ad != nil {
		copy(st.ad.crashed, crashed)
		st.ad.aliveN = aliveN
	}
	if perturb != 0 {
		st.stepRNG.Perturb(perturb)
		if s := ruleStream(st.rule); s != nil {
			s.Perturb(perturb)
		}
		if st.ad != nil {
			st.ad.adv.Perturb(perturb)
		}
	}
	return tick, rounds, nil
}

// runSim drives the Poisson kernel through the shared checkpoint barrier
// (sim.RunCheckpointed), exactly like the paper's asynchronous engines.
func (ps *poissonState) runSim(ctx context.Context) error {
	return sim.RunCheckpointed(ctx, ps.sm, ps.cfg.Ckpt, ps.capture)
}

// capture serializes a Poisson-scheduler run's mutable state.
func (ps *poissonState) capture() ([]byte, error) {
	w := &snap.Writer{}
	if err := ps.sm.EncodeState(w); err != nil {
		return nil, err
	}
	ps.clocks.EncodeState(w)
	w.RNG(ps.smp)
	w.RNG(ps.latR)
	encodeRuleStream(w, ps.rule)
	opinion.EncodeSlice(w, ps.cols)
	w.Bools(ps.locked)
	opinion.EncodeCounts(w, ps.counts)
	w.Int(ps.undecided)
	w.Bool(ps.mono)
	w.F64(ps.monoAt)
	metrics.EncodeRecorder(w, ps.rec)
	return w.Bytes(), nil
}

// restore overwrites a Poisson-scheduler run's mutable state from a
// captured payload. The cols slice is filled in place so the caller-held
// reference in RunPoisson stays valid.
func (ps *poissonState) restore(state []byte, perturb uint64) error {
	r := snap.NewReader(state)
	if err := ps.sm.DecodeState(r); err != nil {
		return fmt.Errorf("baseline: kernel state: %w", err)
	}
	if err := ps.clocks.DecodeState(r); err != nil {
		return fmt.Errorf("baseline: clock state: %w", err)
	}
	if err := r.ReadRNG(ps.smp); err != nil {
		return fmt.Errorf("baseline: sampling rng: %w", err)
	}
	if err := r.ReadRNG(ps.latR); err != nil {
		return fmt.Errorf("baseline: latency rng: %w", err)
	}
	if err := decodeRuleStream(r, ps.rule); err != nil {
		return fmt.Errorf("baseline: rule rng: %w", err)
	}
	cols, err := opinion.DecodeSlice(r, ps.cfg.K)
	if err != nil {
		return fmt.Errorf("baseline: opinions: %w", err)
	}
	locked := r.Bools()
	counts, err := opinion.DecodeCounts(r, ps.cfg.K)
	if err != nil {
		return fmt.Errorf("baseline: counts: %w", err)
	}
	undecided := r.Int()
	mono := r.Bool()
	monoAt := r.F64()
	if err := metrics.DecodeRecorder(r, ps.rec); err != nil {
		return fmt.Errorf("baseline: recorder: %w", err)
	}
	if err := r.Finish(); err != nil {
		return fmt.Errorf("baseline: state: %w", err)
	}
	if len(cols) != ps.cfg.N || len(locked) != ps.cfg.N {
		return fmt.Errorf("baseline: %w: node-state length mismatch (blob for a different N?)", snap.ErrCorrupt)
	}
	copy(ps.cols, cols)
	copy(ps.locked, locked)
	ps.counts = counts
	ps.undecided = undecided
	ps.mono = mono
	ps.monoAt = monoAt
	if perturb != 0 {
		ps.smp.Perturb(perturb)
		ps.latR.Perturb(perturb)
		if s := ruleStream(ps.rule); s != nil {
			s.Perturb(perturb)
		}
		ps.clocks.Perturb(perturb)
	}
	return nil
}
