package baseline

import (
	"testing"

	"plurality/internal/opinion"
	"plurality/internal/topo"
	"plurality/internal/xrand"
)

func TestNewRule(t *testing.T) {
	r := xrand.New(1)
	for _, name := range RuleNames() {
		rule, err := NewRule(name, r)
		if err != nil {
			t.Fatalf("NewRule(%q): %v", name, err)
		}
		if rule.Name() != name {
			t.Errorf("rule %q reports name %q", name, rule.Name())
		}
		if rule.Samples() < 1 {
			t.Errorf("rule %q samples %d", name, rule.Samples())
		}
	}
	if _, err := NewRule("nope", r); err == nil {
		t.Error("unknown rule accepted")
	}
	if _, err := NewRule("3-majority", nil); err == nil {
		t.Error("3-majority without RNG accepted")
	}
}

func TestPullVotingRule(t *testing.T) {
	var p PullVoting
	if got := p.Update(1, []opinion.Opinion{2}); got != 2 {
		t.Errorf("pull update = %d", got)
	}
	if got := p.Update(1, []opinion.Opinion{opinion.None}); got != 1 {
		t.Errorf("pull of undecided = %d", got)
	}
}

func TestTwoChoicesRule(t *testing.T) {
	var tc TwoChoices
	if got := tc.Update(0, []opinion.Opinion{1, 1}); got != 1 {
		t.Errorf("agreeing samples: %d", got)
	}
	if got := tc.Update(0, []opinion.Opinion{1, 2}); got != 0 {
		t.Errorf("disagreeing samples: %d", got)
	}
}

func TestThreeMajorityRule(t *testing.T) {
	m := &ThreeMajority{R: xrand.New(2)}
	if got := m.Update(0, []opinion.Opinion{1, 1, 2}); got != 1 {
		t.Errorf("majority: %d", got)
	}
	if got := m.Update(0, []opinion.Opinion{2, 1, 2}); got != 2 {
		t.Errorf("majority (split positions): %d", got)
	}
	// Three distinct: result must be one of the samples.
	seen := map[opinion.Opinion]bool{}
	for i := 0; i < 100; i++ {
		got := m.Update(0, []opinion.Opinion{3, 4, 5})
		if got != 3 && got != 4 && got != 5 {
			t.Fatalf("tie-break outside samples: %d", got)
		}
		seen[got] = true
	}
	if len(seen) != 3 {
		t.Errorf("tie-break not random: saw %v", seen)
	}
}

func TestUndecidedRule(t *testing.T) {
	var u Undecided
	if got := u.Update(opinion.None, []opinion.Opinion{3}); got != 3 {
		t.Errorf("undecided adopting: %d", got)
	}
	if got := u.Update(1, []opinion.Opinion{2}); got != opinion.None {
		t.Errorf("conflict should undecide: %d", got)
	}
	if got := u.Update(1, []opinion.Opinion{1}); got != 1 {
		t.Errorf("agreement should keep: %d", got)
	}
	if got := u.Update(1, []opinion.Opinion{opinion.None}); got != 1 {
		t.Errorf("pulling undecided should keep: %d", got)
	}
}

func TestRunSyncConvergence(t *testing.T) {
	r := xrand.New(1)
	for _, name := range RuleNames() {
		rule, err := NewRule(name, r)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunSync(rule, Config{N: 1000, K: 2, Alpha: 2, Seed: 7})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Outcome.FullConsensus {
			t.Errorf("%s did not reach consensus in %d rounds", name, res.Rounds)
		}
	}
}

func TestRunSequentialConvergence(t *testing.T) {
	r := xrand.New(2)
	for _, name := range []string{"two-choices", "3-majority", "undecided-state"} {
		rule, err := NewRule(name, r)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunSequential(rule, Config{N: 500, K: 2, Alpha: 3, Seed: 11})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Outcome.FullConsensus {
			t.Errorf("%s (sequential) did not converge in %d rounds", name, res.Rounds)
		}
	}
}

func TestStrongBiasPluralityWins(t *testing.T) {
	r := xrand.New(3)
	for _, name := range []string{"two-choices", "3-majority"} {
		rule, err := NewRule(name, r)
		if err != nil {
			t.Fatal(err)
		}
		wins := 0
		const trials = 10
		for seed := 0; seed < trials; seed++ {
			res, err := RunSync(rule, Config{N: 2000, K: 3, Alpha: 3, Seed: uint64(seed)})
			if err != nil {
				t.Fatal(err)
			}
			if res.Outcome.PluralityWon {
				wins++
			}
		}
		if wins < trials-1 {
			t.Errorf("%s: plurality won only %d/%d", name, wins, trials)
		}
	}
}

func TestPullVotingSlowerThanTwoChoices(t *testing.T) {
	// §1.1: pull voting needs Ω(n) expected rounds; two-choices O(log n).
	// At n=1000 the gap should be unmistakable on average.
	r := xrand.New(4)
	pull, _ := NewRule("pull-voting", r)
	two, _ := NewRule("two-choices", r)
	var pullTotal, twoTotal int
	const trials = 5
	for seed := 0; seed < trials; seed++ {
		rp, err := RunSync(pull, Config{N: 1000, K: 2, Alpha: 2, Seed: uint64(seed), RecordEvery: 10})
		if err != nil {
			t.Fatal(err)
		}
		rt, err := RunSync(two, Config{N: 1000, K: 2, Alpha: 2, Seed: uint64(seed), RecordEvery: 10})
		if err != nil {
			t.Fatal(err)
		}
		pullTotal += rp.Rounds
		twoTotal += rt.Rounds
	}
	if pullTotal <= 2*twoTotal {
		t.Errorf("pull voting (%d rounds) not clearly slower than two-choices (%d rounds)",
			pullTotal, twoTotal)
	}
}

func TestMaxRoundsRespected(t *testing.T) {
	r := xrand.New(5)
	rule, _ := NewRule("pull-voting", r)
	res, err := RunSync(rule, Config{N: 5000, K: 2, Alpha: 1.01, Seed: 1, MaxRounds: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > 7 {
		t.Errorf("ran %d rounds beyond MaxRounds", res.Rounds)
	}
}

func TestAssignmentNotMutated(t *testing.T) {
	r := xrand.New(6)
	assign := opinion.PlantedBias(300, 2, 2, r)
	orig := make([]opinion.Opinion, len(assign))
	copy(orig, assign)
	rule, _ := NewRule("undecided-state", r)
	if _, err := RunSequential(rule, Config{N: 300, K: 2, Assignment: assign, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if assign[i] != orig[i] {
			t.Fatal("sequential run mutated caller's assignment")
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	r := xrand.New(7)
	rule, _ := NewRule("3-majority", r)
	cfg := Config{N: 500, K: 3, Alpha: 2, Seed: 99}
	a, err := RunSync(rule, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rule2, _ := NewRule("3-majority", xrand.New(7))
	b, err := RunSync(rule2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != b.Rounds || a.Outcome.Winner != b.Outcome.Winner {
		t.Fatalf("replay diverged: %d vs %d rounds", a.Rounds, b.Rounds)
	}
}

func TestValidation(t *testing.T) {
	r := xrand.New(8)
	rule, _ := NewRule("pull-voting", r)
	if _, err := RunSync(rule, Config{N: 1, K: 2}); err == nil {
		t.Error("N=1 accepted")
	}
	if _, err := RunSequential(rule, Config{N: 10, K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := RunSync(rule, Config{N: 10, K: 2, Assignment: make([]opinion.Opinion, 9)}); err == nil {
		t.Error("bad assignment length accepted")
	}
}

func BenchmarkThreeMajorityRound(b *testing.B) {
	r := xrand.New(1)
	rule := &ThreeMajority{R: r}
	cols := opinion.PlantedBias(10000, 8, 2, r)
	tp := topo.NewComplete(len(cols))
	next := make([]opinion.Opinion, len(cols))
	samples := make([]opinion.Opinion, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for v := range cols {
			for j := range samples {
				samples[j] = cols[tp.SampleNeighbor(r, v)]
			}
			next[v] = rule.Update(cols[v], samples)
		}
		cols, next = next, cols
	}
}
