package baseline

import (
	"errors"
	"math"

	"plurality/internal/adversary"
	"plurality/internal/metrics"
	"plurality/internal/opinion"
	"plurality/internal/sim"
	"plurality/internal/topo"
	"plurality/internal/xrand"
)

// Typed event kinds of the Poisson baseline engine (see HandleEvent). The
// cold-path actions (periodic recorder, deadline watchdog) are typed events
// too, so the pending queue is plain data and a run is checkpointable
// mid-flight.
const (
	// evTick is one Poisson tick of node ev.Node.
	evTick int32 = iota
	// evComplete is node ev.Node's channels to its (up to three) sampled
	// targets ev.A, ev.B, ev.C completing.
	evComplete
	// evRecord is the periodic trajectory recorder; it reschedules itself
	// every cfg.RecordEvery time steps.
	evRecord
	// evDeadline is the hard MaxRounds watchdog.
	evDeadline
)

// poissonState is the mutable state of one Poisson-scheduler baseline run.
// Sampled targets travel inside the typed event payload and the opinion
// reads go through a fixed scratch buffer, so the per-tick path performs no
// allocations.
type poissonState struct {
	cfg      Config
	rule     Rule
	nSamples int
	sm       *sim.Simulator
	clocks   *sim.Clocks
	tickFn   func(int)
	bs       topo.BatchSampler // cfg.Topo's bulk path, resolved once
	scratch  *topo.Scratch     // batch-sampling buffers (per-worker under RunBatch)
	lat      sim.Latency
	smp      *xrand.RNG
	latR     *xrand.RNG

	cols      []opinion.Opinion
	locked    []bool
	counts    opinion.Counts
	undecided int
	opBuf     [3]opinion.Opinion // rule.Samples() <= 3 for every built-in rule

	mono   bool
	monoAt float64

	// maxTime is the effective abort horizon, plurality the initially
	// dominant opinion and rec the trajectory recorder; they live on the
	// state so the evRecord/evDeadline handlers can reach them.
	maxTime   float64
	plurality opinion.Opinion
	rec       *metrics.Recorder
}

// HandleEvent dispatches the Poisson baseline's typed events.
func (ps *poissonState) HandleEvent(ev sim.Event) {
	switch ev.Kind {
	case evTick:
		ps.clocks.Fire(ev.Node, ps.tickFn)
	case evComplete:
		ps.complete(int(ev.Node), ev.A, ev.B, ev.C)
	case evRecord:
		ps.record()
		if ps.mono || ps.sm.Now() >= ps.maxTime {
			ps.sm.Stop()
			return
		}
		ps.sm.ScheduleAfter(float64(ps.cfg.RecordEvery), sim.Event{Kind: evRecord})
	case evDeadline:
		if ps.sm.Now() < ps.maxTime {
			// The horizon was extended after this watchdog was queued (a
			// resumed run may override MaxRounds); re-arm at the new
			// deadline.
			ps.sm.Schedule(ps.maxTime, sim.Event{Kind: evDeadline})
			return
		}
		if !ps.mono {
			ps.record()
			ps.sm.Stop()
		}
	}
}

// record appends one trajectory snapshot at the current virtual time.
func (ps *poissonState) record() {
	ps.rec.Append(metrics.Snapshot(ps.sm.Now(), ps.cols, ps.cfg.K, ps.plurality))
}

func (ps *poissonState) isMono() bool {
	if ps.undecided > 0 {
		return false
	}
	for _, c := range ps.counts {
		if c == ps.counts.Total() && c > 0 {
			return true
		}
	}
	return false
}

func (ps *poissonState) setNode(v int, c opinion.Opinion) {
	old := ps.cols[v]
	if old == c {
		return
	}
	ps.cols[v] = c
	if old == opinion.None {
		ps.undecided--
	} else {
		ps.counts[old]--
	}
	if c == opinion.None {
		ps.undecided++
	} else {
		ps.counts[c]++
	}
	if !ps.mono && ps.isMono() {
		ps.mono = true
		ps.monoAt = ps.sm.Now()
	}
}

func (ps *poissonState) tick(v int) {
	if ps.mono || ps.locked[v] {
		return
	}
	ps.locked[v] = true
	var t [3]int32
	if ps.nSamples > 0 {
		vs, out := ps.scratch.Buffers(ps.nSamples)
		for i := range vs {
			vs[i] = int32(v)
		}
		ps.bs.SampleNeighbors(ps.smp, vs, out)
		copy(t[:], out)
	}
	d := 0.0
	for i := 0; i < ps.nSamples; i++ {
		d = math.Max(d, ps.lat.Sample(ps.latR))
	}
	ps.sm.ScheduleAfter(d, sim.Event{Kind: evComplete, Node: int32(v), A: t[0], B: t[1], C: t[2]})
}

func (ps *poissonState) complete(v int, a, b, c int32) {
	ps.locked[v] = false
	if ps.mono {
		return
	}
	t := [3]int32{a, b, c}
	for i := 0; i < ps.nSamples; i++ {
		ps.opBuf[i] = ps.cols[t[i]]
	}
	ps.setNode(v, ps.rule.Update(ps.cols[v], ps.opBuf[:ps.nSamples]))
}

// RunPoisson drives a rule under the paper's asynchronous communication
// model (§3.1): every node ticks at Poisson rate 1, opens channels to its
// samples in parallel (accumulated latency = max of the individual
// latencies), reads their opinions when all channels are up, and updates
// atomically. While waiting, the node is locked and skips further ticks.
// This is the model-true asynchronous form of the classical dynamics,
// letting E16 compare them head-to-head with the leader-based protocol on
// identical semantics. Time in the result is virtual time steps; lat nil
// means Exp(1).
func RunPoisson(rule Rule, cfg Config, lat sim.Latency) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if cfg.Adv.Kind != adversary.None {
		return nil, errors.New("baseline: the Poisson runner has no adversary support")
	}
	if lat == nil {
		lat = sim.ExpLatency{Rate: 1}
	}
	if n := rule.Samples(); n > 3 {
		panic("baseline: rules with more than 3 samples need a wider event payload")
	}
	root := xrand.New(cfg.Seed)
	cols, plurality := initialState(&cfg, root)
	res := &Result{Rule: rule.Name(), InitialPlurality: plurality}
	rec := metrics.NewRecorder(cfg.Eps, cfg.DiscardTrajectory, cfg.Observe)

	sm := sim.New()
	ps := &poissonState{
		cfg:      cfg,
		rule:     rule,
		nSamples: rule.Samples(),
		sm:       sm,
		bs:       topo.Batch(cfg.Topo),
		scratch:  cfg.scratch(),
		lat:      lat,
		smp:      root.SplitNamed("sampling"),
		latR:     root.SplitNamed("latency"),
		cols:     cols,
		locked:   make([]bool, cfg.N),
		counts:   opinion.CountOf(cols, cfg.K),
	}
	for _, c := range cols {
		if c == opinion.None {
			ps.undecided++
		}
	}

	ps.tickFn = ps.tick
	sm.SetHandler(ps)
	sm.Reserve(2*cfg.N + 64)
	clockR := root.SplitNamed("clocks")
	ps.clocks = sim.NewClocks(sm, clockR, cfg.N, 1, evTick)
	ps.maxTime = float64(cfg.MaxRounds)
	ps.plurality = plurality
	ps.rec = rec
	if cfg.Ckpt.Restoring() {
		// Deterministic setup above sized every slice; now overwrite all
		// mutable state (event heap included) from the captured payload.
		if err := ps.restore(cfg.Ckpt.Restore, cfg.Ckpt.Perturb); err != nil {
			return nil, err
		}
	} else {
		ps.clocks.StartAll()
		// Periodic recorder + termination watchdog, both typed events so
		// the pending queue stays plain data (see evRecord/evDeadline).
		ps.record()
		sm.ScheduleAfter(float64(cfg.RecordEvery), sim.Event{Kind: evRecord})
		sm.Schedule(ps.maxTime, sim.Event{Kind: evDeadline})
	}
	if err := ps.runSim(cfg.Ctx); err != nil {
		return nil, err
	}

	res.Rounds = int(sm.Now())
	res.FinalCounts = opinion.CountOf(cols, cfg.K)
	res.Trajectory = rec.Trajectory()
	res.Outcome = rec.Outcome(res.FinalCounts, plurality)
	if ps.mono {
		res.Outcome.FullConsensus = true
		res.Outcome.ConsensusTime = ps.monoAt
	}
	return res, nil
}
