package baseline

import (
	"math"

	"plurality/internal/metrics"
	"plurality/internal/opinion"
	"plurality/internal/sim"
	"plurality/internal/xrand"
)

// RunPoisson drives a rule under the paper's asynchronous communication
// model (§3.1): every node ticks at Poisson rate 1, opens channels to its
// samples in parallel (accumulated latency = max of the individual
// latencies), reads their opinions when all channels are up, and updates
// atomically. While waiting, the node is locked and skips further ticks.
// This is the model-true asynchronous form of the classical dynamics,
// letting E16 compare them head-to-head with the leader-based protocol on
// identical semantics. Time in the result is virtual time steps; lat nil
// means Exp(1).
func RunPoisson(rule Rule, cfg Config, lat sim.Latency) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if lat == nil {
		lat = sim.ExpLatency{Rate: 1}
	}
	root := xrand.New(cfg.Seed)
	cols, plurality := initialState(&cfg, root)
	res := &Result{Rule: rule.Name(), InitialPlurality: plurality}
	rec := metrics.NewRecorder(cfg.Eps, cfg.DiscardTrajectory, cfg.Observe)

	sm := sim.New()
	smp := root.SplitNamed("sampling")
	latR := root.SplitNamed("latency")
	locked := make([]bool, cfg.N)
	counts := opinion.CountOf(cols, cfg.K)
	undecided := 0
	for _, c := range cols {
		if c == opinion.None {
			undecided++
		}
	}
	mono := false
	monoAt := 0.0
	isMono := func() bool {
		if undecided > 0 {
			return false
		}
		for _, c := range counts {
			if c == counts.Total() && c > 0 {
				return true
			}
		}
		return false
	}

	setNode := func(v int, c opinion.Opinion) {
		old := cols[v]
		if old == c {
			return
		}
		cols[v] = c
		if old == opinion.None {
			undecided--
		} else {
			counts[old]--
		}
		if c == opinion.None {
			undecided++
		} else {
			counts[c]++
		}
		if !mono && isMono() {
			mono = true
			monoAt = sm.Now()
		}
	}

	nSamples := rule.Samples()
	tick := func(v int) {
		if mono || locked[v] {
			return
		}
		locked[v] = true
		targets := make([]int, nSamples)
		for i := range targets {
			targets[i] = cfg.Topo.SampleNeighbor(smp, v)
		}
		d := 0.0
		for range targets {
			d = math.Max(d, lat.Sample(latR))
		}
		sm.After(d, func() {
			defer func() { locked[v] = false }()
			if mono {
				return
			}
			samples := make([]opinion.Opinion, nSamples)
			for i, u := range targets {
				samples[i] = cols[u]
			}
			setNode(v, rule.Update(cols[v], samples))
		})
	}

	clockR := root.SplitNamed("clocks")
	for v := 0; v < cfg.N; v++ {
		v := v
		c := sim.NewClock(sm, clockR.Split(), 1, func() { tick(v) })
		c.Start()
	}

	maxTime := float64(cfg.MaxRounds)
	record := func() {
		rec.Append(metrics.Snapshot(sm.Now(), cols, cfg.K, plurality))
	}
	var recordTick func()
	recordTick = func() {
		record()
		if mono || sm.Now() >= maxTime {
			sm.Stop()
			return
		}
		sm.After(float64(cfg.RecordEvery), recordTick)
	}
	record()
	sm.After(float64(cfg.RecordEvery), recordTick)
	sm.At(maxTime, func() {
		if !mono {
			record()
			sm.Stop()
		}
	})
	if err := sm.RunContext(cfg.Ctx); err != nil {
		return nil, err
	}

	res.Rounds = int(sm.Now())
	res.FinalCounts = opinion.CountOf(cols, cfg.K)
	res.Trajectory = rec.Trajectory()
	res.Outcome = rec.Outcome(res.FinalCounts, plurality)
	if mono {
		res.Outcome.FullConsensus = true
		res.Outcome.ConsensusTime = monoAt
	}
	return res, nil
}
