package baseline

import (
	"fmt"

	"plurality/internal/adversary"
	"plurality/internal/opinion"
	"plurality/internal/xrand"
)

// This file is the baseline runners' adversary support (crash/churn, drop,
// Byzantine lying; see internal/adversary). The rule interface consumes a
// complete sample vector, so a contact that fails — the partner crashed or
// the reply was dropped — aborts the node's update for that activation: no
// information means no move. Byzantine liars misreport their color in the
// sample vector. Crash state (flags, alive count) belongs to the runner; the
// adversary only decides which node toggles when. Honest runs carry a nil
// *advState and are byte-untouched.

// advState bundles the runner-owned crash bookkeeping with the adversary.
type advState struct {
	adv     *adversary.State
	crashed []bool
	aliveN  int
}

// newAdversary constructs the run's adversary, or nil when the config
// disables it. The adversary draws from a private generator seeded
// independently of the run's root stream, so honest draws are untouched.
func newAdversary(cfg *Config, cols []opinion.Opinion) (*advState, error) {
	if cfg.Adv.Kind == adversary.None {
		return nil, nil
	}
	adv, err := adversary.New(cfg.Adv, xrand.New(cfg.Adv.Seed))
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	if _, second := opinion.CountOf(cols, cfg.K).TopTwo(); second >= 0 {
		adv.SetLieTarget(int32(second))
	}
	return &advState{adv: adv, crashed: make([]bool, cfg.N), aliveN: cfg.N}, nil
}

// applyCrash runs every crash action due at or before round `now`: the
// one-shot fail-stop of the pool, or all pending churn toggles. Rounds are
// the runners' clock, so At/Exp(Rate) gaps are measured in rounds here.
func (ad *advState) applyCrash(now float64) {
	adv := ad.adv
	if adv.Kind() != adversary.Crash {
		return
	}
	if !adv.Churning() {
		if c := adv.Counters; c.Crashes == 0 && now >= adv.NextCrashAt() {
			for _, v := range adv.Victims() {
				ad.crashNode(v)
			}
		}
		return
	}
	for {
		at := adv.NextCrashAt()
		if at < 0 || at > now {
			return
		}
		v := adv.NextVictim()
		if ad.crashed[v] {
			ad.crashed[v] = false
			ad.aliveN++
			adv.NoteRecovery()
		} else {
			ad.crashNode(v)
		}
	}
}

func (ad *advState) crashNode(v int) {
	if ad.crashed[v] {
		return
	}
	ad.crashed[v] = true
	ad.aliveN--
	ad.adv.NoteCrash()
}

// observe fills the sample vector with the adversary's view of node v's
// drawn partners and reports whether the activation may proceed. A crashed
// activator keeps its state, and a single failed contact — crashed partner
// or dropped reply — aborts the whole update: no information means no move.
func (ad *advState) observe(cols []opinion.Opinion, v int,
	out []int32, samples []opinion.Opinion) bool {
	if ad.crashed[v] {
		return false
	}
	for i := range samples {
		u := int(out[i])
		if ad.crashed[u] || ad.adv.DropMessage() {
			return false
		}
		samples[i] = opinion.Opinion(ad.adv.Lie(u, int32(cols[u])))
	}
	return true
}

// monochromaticAlive reports whether all non-crashed nodes share one decided
// color; with a crash adversary consensus is evaluated over the survivors.
func (ad *advState) monochromaticAlive(cols []opinion.Opinion) bool {
	var seen opinion.Opinion = opinion.None
	for v, c := range cols {
		if ad.crashed[v] {
			continue
		}
		if c == opinion.None {
			return false
		}
		if seen == opinion.None {
			seen = c
		} else if c != seen {
			return false
		}
	}
	return true
}

// done evaluates the runners' termination test: survivor consensus under a
// crash adversary, plain consensus otherwise. ad may be nil.
func (ad *advState) done(cols []opinion.Opinion, k int) bool {
	if ad == nil {
		return monochromatic(cols, k)
	}
	return ad.aliveN > 0 && ad.monochromaticAlive(cols)
}

// patchOutcome rewrites the count-based Outcome for survivor consensus:
// crashed nodes hold stale colors, so the recorder cannot see the winner.
func (ad *advState) patchOutcome(res *Result, cols []opinion.Opinion, plurality opinion.Opinion) {
	res.AdvCounters = ad.adv.Counters
	if ad.adv.Kind() != adversary.Crash || res.Outcome.FullConsensus ||
		ad.aliveN <= 0 || !ad.monochromaticAlive(cols) {
		return
	}
	for v, c := range cols {
		if !ad.crashed[v] {
			res.Outcome.Winner = c
			break
		}
	}
	res.Outcome.FullConsensus = true
	res.Outcome.ConsensusTime = float64(res.Rounds)
	res.Outcome.PluralityWon = res.Outcome.Winner == plurality
}
