package cluster

import (
	"testing"

	"plurality/internal/sim"
)

func TestFormValidation(t *testing.T) {
	if _, err := Form(Params{N: 2}); err == nil {
		t.Error("N=2 accepted")
	}
	if _, err := Form(Params{N: 100, LeaderProb: 2}); err == nil {
		t.Error("LeaderProb=2 accepted")
	}
}

func TestFormBasic(t *testing.T) {
	cl, err := Form(Params{N: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cl.TimedOut {
		t.Fatalf("formation timed out at t=%v", cl.EndTime)
	}
	if len(cl.Leaders) == 0 {
		t.Fatal("no leaders elected")
	}
	if got := cl.ParticipatingFrac(); got < 0.8 {
		t.Errorf("only %.3f of nodes in participating clusters", got)
	}
	if cl.FirstSwitch < 0 {
		t.Fatal("no leader switched to consensus mode")
	}
}

func TestFormLeadersSelfAssigned(t *testing.T) {
	cl, err := Form(Params{N: 1000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range cl.Leaders {
		if int(cl.LeaderOf[l]) != l {
			t.Errorf("leader %d assigned to %d", l, cl.LeaderOf[l])
		}
	}
}

func TestFormAssignmentsConsistent(t *testing.T) {
	cl, err := Form(Params{N: 1500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	isLeader := map[int]bool{}
	for _, l := range cl.Leaders {
		isLeader[l] = true
	}
	// Every assigned node points at an actual leader, and sizes add up.
	sizes := map[int]int{}
	for v := 0; v < cl.N; v++ {
		l := int(cl.LeaderOf[v])
		if l < 0 {
			continue
		}
		if !isLeader[l] {
			t.Fatalf("node %d assigned to non-leader %d", v, l)
		}
		sizes[l]++
	}
	for l, want := range cl.Size {
		if sizes[l] != want {
			t.Errorf("leader %d: recorded size %d, actual members %d", l, want, sizes[l])
		}
	}
}

func TestParticipatingClustersAreBig(t *testing.T) {
	cl, err := Form(Params{N: 2000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range cl.ParticipatingLeaders() {
		if cl.Size[l] < cl.TargetSize {
			t.Errorf("participating cluster %d has size %d < target %d",
				l, cl.Size[l], cl.TargetSize)
		}
	}
}

func TestSwitchSpreadSmall(t *testing.T) {
	// Theorem 27: t_l - t_f = O(1). With constant-time rebroadcast the
	// spread must be well under the whole formation time.
	cl, err := Form(Params{N: 3000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	spread := cl.LastSwitch - cl.FirstSwitch
	if spread < 0 {
		t.Fatal("switch times inverted")
	}
	if spread > cl.EndTime/2 {
		t.Errorf("switch spread %v not small relative to formation time %v",
			spread, cl.EndTime)
	}
}

func TestCoverageMonotone(t *testing.T) {
	cl, err := Form(Params{N: 1000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, p := range cl.Coverage {
		if p.ClusteredFrac < prev-1e-12 {
			t.Fatalf("coverage decreased at t=%v", p.Time)
		}
		prev = p.ClusteredFrac
	}
}

func TestFormDeterministic(t *testing.T) {
	a, err := Form(Params{N: 800, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Form(Params{N: 800, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.EndTime != b.EndTime || len(a.Leaders) != len(b.Leaders) ||
		a.FirstSwitch != b.FirstSwitch {
		t.Fatal("formation not deterministic")
	}
}

func TestFormExplicitParams(t *testing.T) {
	cl, err := Form(Params{N: 1000, TargetSize: 16, LeaderProb: 0.02, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if cl.TargetSize != 16 {
		t.Errorf("TargetSize overridden: %d", cl.TargetSize)
	}
}

func TestBroadcastCompletes(t *testing.T) {
	cl, err := Form(Params{N: 2000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Broadcast(cl, nil, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut || res.CompleteTime < 0 {
		t.Fatalf("broadcast timed out: %+v", res)
	}
	if len(res.InformTimes) != res.LeaderCount {
		t.Errorf("informed %d of %d leaders", len(res.InformTimes), res.LeaderCount)
	}
}

func TestBroadcastFastRelativeToN(t *testing.T) {
	// Theorem 28: completion in O(1) time. Check it does not blow up with n
	// (the two sizes must be within a small factor).
	timeFor := func(n int) float64 {
		cl, err := Form(Params{N: n, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Broadcast(cl, nil, 12, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.CompleteTime < 0 {
			t.Fatalf("broadcast at n=%d timed out", n)
		}
		return res.CompleteTime
	}
	small := timeFor(500)
	large := timeFor(4000)
	if large > 6*small+10 {
		t.Errorf("broadcast time grew from %v (n=500) to %v (n=4000)", small, large)
	}
}

func TestBroadcastSlowLatency(t *testing.T) {
	cl, err := Form(Params{N: 1000, Seed: 13, Latency: sim.ExpLatency{Rate: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Broadcast(cl, sim.ExpLatency{Rate: 0.5}, 14, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompleteTime < 0 {
		t.Fatal("broadcast with slow latency timed out")
	}
}

func BenchmarkFormN2000(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Form(Params{N: 2000, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
