package cluster

import (
	"fmt"
	"math"

	"plurality/internal/sim"
	"plurality/internal/topo"
	"plurality/internal/xrand"
)

// BroadcastResult reports one inter-cluster broadcast experiment
// (Theorem 28): starting from a single informed leader, how long until all
// participating leaders are informed.
type BroadcastResult struct {
	// CompleteTime is the virtual time at which the last participating
	// leader became informed (-1 if the run timed out first).
	CompleteTime float64
	// LeaderCount is the number of participating leaders.
	LeaderCount int
	// InformTimes maps each informed leader to its inform time.
	InformTimes map[int]float64
	// TimedOut reports whether MaxTime passed before completion.
	TimedOut bool
}

// Broadcast runs the §4.2 push–pull broadcast over an existing clustering:
// on each tick an active node contacts its own leader and two random nodes,
// obtains their leaders' addresses, contacts those, and equalizes the
// informed bit across the three leaders. seed controls the randomness,
// lat the channel latency (nil for Exp(1)), maxTime the abort horizon
// (<= 0 for a default of 64·(1+mean latency)).
func Broadcast(cl *Clustering, lat sim.Latency, seed uint64, maxTime float64) (*BroadcastResult, error) {
	leaders := cl.ParticipatingLeaders()
	if len(leaders) == 0 {
		return nil, fmt.Errorf("cluster: broadcast needs at least one participating leader")
	}
	if lat == nil {
		lat = sim.ExpLatency{Rate: 1}
	}
	if maxTime <= 0 {
		maxTime = 64 * (1 + lat.Mean())
	}
	root := xrand.New(seed)
	smp := root.SplitNamed("sampling")
	latR := root.SplitNamed("latency")
	sm := sim.New()

	participating := make(map[int]bool, len(leaders))
	for _, l := range leaders {
		participating[l] = true
	}
	informed := make(map[int]bool, len(leaders))
	informTimes := make(map[int]float64, len(leaders))
	remaining := len(leaders)

	inform := func(l int) {
		if !participating[l] || informed[l] {
			return
		}
		informed[l] = true
		informTimes[l] = sm.Now()
		remaining--
		if remaining == 0 {
			sm.Stop()
		}
	}
	// The message originates at the first participating leader.
	inform(leaders[0])
	res := &BroadcastResult{LeaderCount: len(leaders), InformTimes: informTimes}
	if remaining == 0 {
		res.CompleteTime = 0
		return res, nil
	}

	n := cl.N
	tp, err := topo.OrComplete(cl.Topo, n)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	locked := make([]bool, n)
	tick := func(v int) {
		my := int(cl.LeaderOf[v])
		if my < 0 || !participating[my] {
			return // inactive node: not in a participating cluster
		}
		if locked[v] {
			return
		}
		locked[v] = true
		a := tp.SampleNeighbor(smp, v)
		b := tp.SampleNeighbor(smp, v)
		// Own leader + two contacts in parallel, then their leaders in
		// parallel: max(T2,T2,T2) + max(T2,T2).
		d := math.Max(lat.Sample(latR), math.Max(lat.Sample(latR), lat.Sample(latR))) +
			math.Max(lat.Sample(latR), lat.Sample(latR))
		sm.After(d, func() {
			defer func() { locked[v] = false }()
			la, lb := int(cl.LeaderOf[a]), int(cl.LeaderOf[b])
			group := [3]int{my, la, lb}
			any := false
			for _, l := range group {
				if l >= 0 && informed[l] {
					any = true
					break
				}
			}
			if any {
				for _, l := range group {
					if l >= 0 {
						inform(l)
					}
				}
			}
		})
	}

	clockR := root.SplitNamed("clocks")
	for v := 0; v < n; v++ {
		v := v
		c := sim.NewClock(sm, clockR.Split(), 1, func() { tick(v) })
		c.Start()
	}
	sm.At(maxTime, func() {
		res.TimedOut = true
		sm.Stop()
	})
	sm.Run()

	if res.TimedOut && remaining > 0 {
		res.CompleteTime = -1
		return res, nil
	}
	last := 0.0
	for _, t := range informTimes {
		if t > last {
			last = t
		}
	}
	res.CompleteTime = last
	return res, nil
}
