package cluster

import (
	"fmt"
	"math"

	"plurality/internal/adversary"
	"plurality/internal/sim"
	"plurality/internal/snap"
	"plurality/internal/topo"
	"plurality/internal/xrand"
)

// BroadcastResult reports one inter-cluster broadcast experiment
// (Theorem 28): starting from a single informed leader, how long until all
// participating leaders are informed.
type BroadcastResult struct {
	// CompleteTime is the virtual time at which the last participating
	// leader became informed (-1 if the run timed out first).
	CompleteTime float64
	// LeaderCount is the number of participating leaders.
	LeaderCount int
	// InformTimes maps each informed leader to its inform time.
	InformTimes map[int]float64
	// TimedOut reports whether MaxTime passed before completion.
	TimedOut bool
}

// Typed event kinds of the broadcast engine (see bcastState.HandleEvent).
const (
	// bcTick is one Poisson tick of node ev.Node.
	bcTick int32 = iota
	// bcComplete is node ev.Node's channels to contacts ev.A and ev.B
	// completing: equalize the informed bit across the visible leaders.
	bcComplete
	// bcDeadline is the hard maxTime watchdog.
	bcDeadline
	// bcAdvDeliver delivers a message the delay adversary held back: A is
	// the payload-arena slot holding the original event.
	bcAdvDeliver
)

// bcastState is the mutable state of one broadcast run; per-node flags are
// flat slices indexed by node id.
type bcastState struct {
	cl     *Clustering
	sm     *sim.Simulator
	clocks *sim.Clocks
	tickFn func(int)
	tp     topo.Sampler
	lat    sim.Latency
	smp    *xrand.RNG
	latR   *xrand.RNG

	participating []bool
	informed      []bool
	locked        []bool
	informTimes   map[int]float64
	remaining     int
	res           *BroadcastResult

	// adv is the run's adversary (nil for honest runs) and payload the
	// side-arena delayed messages park their original event in; see
	// BroadcastUnder.
	adv     *adversary.State
	payload *sim.PayloadArena
}

// HandleEvent dispatches the broadcast engine's typed events.
func (bs *bcastState) HandleEvent(ev sim.Event) {
	switch ev.Kind {
	case bcTick:
		bs.clocks.Fire(ev.Node, bs.tickFn)
	case bcComplete:
		bs.complete(int(ev.Node), int(ev.A), int(ev.B))
	case bcDeadline:
		bs.res.TimedOut = true
		bs.sm.Stop()
	case bcAdvDeliver:
		bs.HandleEvent(bs.payload.Take(ev.A))
	}
}

// sendMsg schedules a protocol message, giving the delay adversary a chance
// to stretch the delivery: a delayed message parks the original event in the
// payload arena and is re-dispatched by bcAdvDeliver.
func (bs *bcastState) sendMsg(d float64, ev sim.Event) {
	if bs.adv != nil {
		if extra := bs.adv.DelayExtra(bs.lat); extra > 0 {
			bs.sm.ScheduleAfter(d+extra, sim.Event{Kind: bcAdvDeliver, A: bs.payload.Put(ev)})
			return
		}
	}
	bs.sm.ScheduleAfter(d, ev)
}

func (bs *bcastState) inform(l int) {
	if !bs.participating[l] || bs.informed[l] {
		return
	}
	bs.informed[l] = true
	bs.informTimes[l] = bs.sm.Now()
	bs.remaining--
	if bs.remaining == 0 {
		bs.sm.Stop()
	}
}

func (bs *bcastState) tick(v int) {
	my := int(bs.cl.LeaderOf[v])
	if my < 0 || !bs.participating[my] {
		return // inactive node: not in a participating cluster
	}
	if bs.locked[v] {
		return
	}
	bs.locked[v] = true
	a := bs.tp.SampleNeighbor(bs.smp, v)
	b := bs.tp.SampleNeighbor(bs.smp, v)
	// Own leader + two contacts in parallel, then their leaders in
	// parallel: max(T2,T2,T2) + max(T2,T2).
	lat := bs.lat
	d := math.Max(lat.Sample(bs.latR), math.Max(lat.Sample(bs.latR), lat.Sample(bs.latR))) +
		math.Max(lat.Sample(bs.latR), lat.Sample(bs.latR))
	bs.sendMsg(d, sim.Event{Kind: bcComplete, Node: int32(v), A: int32(a), B: int32(b)})
}

func (bs *bcastState) complete(v, a, b int) {
	bs.locked[v] = false
	my := int(bs.cl.LeaderOf[v])
	la, lb := int(bs.cl.LeaderOf[a]), int(bs.cl.LeaderOf[b])
	if bs.adv != nil {
		// A dropped reply hides that contact's leader from the exchange.
		if bs.adv.DropMessage() {
			la = -1
		}
		if bs.adv.DropMessage() {
			lb = -1
		}
	}
	group := [3]int{my, la, lb}
	any := false
	for _, l := range group {
		if l >= 0 && bs.informed[l] {
			any = true
			break
		}
	}
	if any {
		for _, l := range group {
			if l >= 0 {
				bs.inform(l)
			}
		}
	}
}

// Broadcast runs the §4.2 push–pull broadcast over an existing clustering:
// on each tick an active node contacts its own leader and two random nodes,
// obtains their leaders' addresses, contacts those, and equalizes the
// informed bit across the three leaders. seed controls the randomness,
// lat the channel latency (nil for Exp(1)), maxTime the abort horizon
// (<= 0 for a default of 64·(1+mean latency)).
func Broadcast(cl *Clustering, lat sim.Latency, seed uint64, maxTime float64) (*BroadcastResult, error) {
	return BroadcastWithCheckpoint(cl, lat, seed, maxTime, nil)
}

// BroadcastWithCheckpoint is Broadcast with checkpoint support: ck may
// request a mid-run capture and/or resume from one (see snap.Checkpoint).
// A restore must be given the same clustering and seed the capture ran
// with; everything mutable — kernel heap, clocks, RNG streams, informed
// bits — comes from the payload.
func BroadcastWithCheckpoint(cl *Clustering, lat sim.Latency, seed uint64, maxTime float64, ck *snap.Checkpoint) (*BroadcastResult, error) {
	return BroadcastUnder(cl, lat, seed, maxTime, adversary.Config{}, ck)
}

// BroadcastUnder is BroadcastWithCheckpoint with an adversary: delay
// stretches message deliveries by multiples of the edge-latency model and
// drop hides a contact's leader from the equalization step. Crash and
// Byzantine kinds are rejected — broadcast has no opinions to lie about, and
// its termination condition assumes every participating leader is eventually
// reachable. The zero Config disables the adversary; adv.Seed drives its
// private generator, so honest runs are byte-identical either way.
func BroadcastUnder(cl *Clustering, lat sim.Latency, seed uint64, maxTime float64, advCfg adversary.Config, ck *snap.Checkpoint) (*BroadcastResult, error) {
	leaders := cl.ParticipatingLeaders()
	if len(leaders) == 0 {
		return nil, fmt.Errorf("cluster: broadcast needs at least one participating leader")
	}
	if lat == nil {
		lat = sim.ExpLatency{Rate: 1}
	}
	if maxTime <= 0 {
		maxTime = 64 * (1 + lat.Mean())
	}
	root := xrand.New(seed)
	n := cl.N
	tp, err := topo.OrComplete(cl.Topo, n)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	sm := sim.New()
	bs := &bcastState{
		cl:            cl,
		sm:            sm,
		tp:            tp,
		lat:           lat,
		smp:           root.SplitNamed("sampling"),
		latR:          root.SplitNamed("latency"),
		participating: make([]bool, n),
		informed:      make([]bool, n),
		locked:        make([]bool, n),
		informTimes:   make(map[int]float64, len(leaders)),
		remaining:     len(leaders),
	}
	for _, l := range leaders {
		bs.participating[l] = true
	}
	if advCfg.Kind != adversary.None {
		if advCfg.Kind != adversary.Delay && advCfg.Kind != adversary.Drop {
			return nil, fmt.Errorf("cluster: broadcast supports only the delay and drop adversaries, got %v", advCfg.Kind)
		}
		advCfg.N = n
		adv, err := adversary.New(advCfg, xrand.New(advCfg.Seed))
		if err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
		bs.adv = adv
		bs.payload = &sim.PayloadArena{}
	}

	// The message originates at the first participating leader.
	bs.inform(leaders[0])
	res := &BroadcastResult{LeaderCount: len(leaders), InformTimes: bs.informTimes}
	if bs.remaining == 0 {
		res.CompleteTime = 0
		return res, nil
	}

	bs.res = res
	bs.tickFn = bs.tick
	sm.SetHandler(bs)
	sm.Reserve(2*n + 64)
	clockR := root.SplitNamed("clocks")
	bs.clocks = sim.NewClocks(sm, clockR, n, 1, bcTick)
	if ck.Restoring() {
		if err := bs.restore(ck.Restore, ck.Perturb, leaders); err != nil {
			return nil, err
		}
	} else {
		bs.clocks.StartAll()
		sm.Schedule(maxTime, sim.Event{Kind: bcDeadline})
	}
	if err := bs.runSim(ck); err != nil {
		return nil, err
	}
	remaining := bs.remaining
	informTimes := bs.informTimes

	if res.TimedOut && remaining > 0 {
		res.CompleteTime = -1
		return res, nil
	}
	last := 0.0
	for _, t := range informTimes {
		if t > last {
			last = t
		}
	}
	res.CompleteTime = last
	return res, nil
}
