package cluster

import (
	"reflect"
	"testing"

	"plurality/internal/snap"
)

// TestFormCheckpointRoundtrip pins that cluster formation itself can be
// captured mid-flight and restored to an identical outcome.
func TestFormCheckpointRoundtrip(t *testing.T) {
	base := Params{N: 600, Seed: 4}
	plain, err := Form(base)
	if err != nil {
		t.Fatal(err)
	}

	var blob []byte
	ckpt := base
	ckpt.Ckpt = &snap.Checkpoint{
		At:   plain.EndTime / 2,
		Halt: true,
		Sink: func(state []byte, _ float64, _ uint64) { blob = append([]byte(nil), state...) },
	}
	halted, err := Form(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if blob == nil {
		t.Fatal("no snapshot captured")
	}
	if halted.EndTime >= plain.EndTime {
		t.Fatalf("halted formation reached %v, want < %v", halted.EndTime, plain.EndTime)
	}

	resumed := base
	resumed.Ckpt = &snap.Checkpoint{Restore: blob}
	res, err := Form(resumed)
	if err != nil {
		t.Fatal(err)
	}
	res.Topo, plain.Topo = nil, nil
	if !reflect.DeepEqual(res, plain) {
		t.Errorf("resumed clustering differs from uninterrupted formation:\nresumed: %+v\nplain:   %+v", res, plain)
	}
}

// TestClusteringCodecRoundtrip pins the canonical Clustering encoding the
// decentralized engine's snapshots embed.
func TestClusteringCodecRoundtrip(t *testing.T) {
	cl, err := Form(Params{N: 400, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	w := &snap.Writer{}
	EncodeClustering(w, cl)
	first := append([]byte(nil), w.Bytes()...)

	got, err := DecodeClustering(snap.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	want := *cl
	want.Topo = nil
	if !reflect.DeepEqual(got, &want) {
		t.Error("decoded clustering differs from the original")
	}

	// Canonical: encoding twice yields identical bytes.
	w2 := &snap.Writer{}
	EncodeClustering(w2, got)
	if !reflect.DeepEqual(first, w2.Bytes()) {
		t.Error("re-encoding a decoded clustering changed the bytes")
	}

	// Truncations must fail typed, never panic.
	for _, cut := range []int{0, 3, len(first) / 2, len(first) - 1} {
		if _, err := DecodeClustering(snap.NewReader(first[:cut])); err == nil {
			t.Errorf("decode of %d/%d bytes succeeded, want error", cut, len(first))
		}
	}
}

// TestBroadcastCheckpointRoundtrip pins capture/restore of the §4.2 leader
// broadcast.
func TestBroadcastCheckpointRoundtrip(t *testing.T) {
	cl, err := Form(Params{N: 600, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Broadcast(cl, nil, 31, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plain.CompleteTime <= 0 {
		t.Skip("broadcast completed instantly; nothing to checkpoint")
	}

	var blob []byte
	ck := &snap.Checkpoint{
		At:   plain.CompleteTime / 2,
		Halt: true,
		Sink: func(state []byte, _ float64, _ uint64) { blob = append([]byte(nil), state...) },
	}
	if _, err := BroadcastWithCheckpoint(cl, nil, 31, 0, ck); err != nil {
		t.Fatal(err)
	}
	if blob == nil {
		t.Fatal("no snapshot captured")
	}
	res, err := BroadcastWithCheckpoint(cl, nil, 31, 0, &snap.Checkpoint{Restore: blob})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, plain) {
		t.Errorf("resumed broadcast differs from uninterrupted run:\nresumed: %+v\nplain:   %+v", res, plain)
	}
}
