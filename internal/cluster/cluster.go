// Package cluster implements the decentralized substrate of §4 of the
// paper: the clustering protocol that partitions almost all nodes into
// polylog-sized clusters with emergent leaders (§4.1, Theorem 27), and the
// constant-time broadcast among cluster leaders (§4.2, Theorem 28).
//
// The paper states its parameters asymptotically (leader probability
// 1/log^c n, cluster size log^{c-1} n with "c sufficiently large"); those
// exceed n for every laptop-scale n, so the implementation exposes them as
// explicit knobs whose defaults are polylog in n but calibrated to yield
// n/polylog(n) clusters for n up to ~10⁶. DESIGN.md documents this
// substitution; the Theorem 27/28 experiments validate the shape claims
// (constant broadcast time, O(log log n)-scale formation, near-total
// coverage) against these scaled knobs.
package cluster

import (
	"context"
	"fmt"
	"math"

	"plurality/internal/sim"
	"plurality/internal/snap"
	"plurality/internal/topo"
	"plurality/internal/xrand"
)

// Params configures cluster formation.
type Params struct {
	// N is the number of nodes (>= 4).
	N int
	// TargetSize is the paper's log^{c-1} n: the size a cluster must reach
	// before its leader may enter consensus mode. Default
	// ⌈(log₂ n)^1.5⌉ clamped to [8, N/8].
	TargetSize int
	// LeaderProb is the self-election probability (paper: 1/log^c n).
	// Default 1/(4·TargetSize), so first-phase capacity is about N/4 and
	// the remaining nodes join during the reacceptance phase.
	LeaderProb float64
	// C2Mult scales the counting pause after a cluster fills
	// (paper: c₂·log^{c-1} n·log log n received 0-signals). Default 1.
	C2Mult float64
	// C3Mult scales the additional count before the first leader switches
	// to consensus mode (paper: c₃·log^{c-1} n·log log n). Default 1.
	C3Mult float64
	// RebroadcastTime is the constant time window during which leaders
	// forward the consensus-mode message after receiving it. Default 4
	// time steps.
	RebroadcastTime float64
	// Latency is the channel-establishment distribution; default Exp(1).
	Latency sim.Latency
	// Topo is the interaction graph random contacts are sampled from; nil
	// means the complete graph on N nodes (the paper's model). Its size
	// must equal N. Signals to an already-known leader are addressed
	// directly and do not traverse the graph.
	Topo topo.Sampler
	// MaxTime aborts formation (virtual time steps); default
	// 64·log₂ log₂ n·(1 + mean latency) + 64.
	MaxTime float64
	// Seed drives all randomness.
	Seed uint64
	// RecordEvery sets the coverage-trajectory resolution; default 1 step.
	RecordEvery float64
	// Ctx cancels or bounds formation; polled every few hundred simulator
	// events. nil means never cancelled.
	Ctx context.Context
	// Ckpt requests a mid-formation state capture and/or resumes from one;
	// nil disables checkpointing. See snap.Checkpoint for the semantics
	// shared by every engine.
	Ckpt *snap.Checkpoint
}

func (p *Params) normalize() error {
	if p.N < 4 {
		return fmt.Errorf("cluster: need N >= 4, got %d", p.N)
	}
	if p.TargetSize <= 0 {
		l := math.Log2(float64(p.N))
		s := int(math.Ceil(math.Pow(l, 1.5)))
		if s < 8 {
			s = 8
		}
		if s > p.N/8 {
			s = p.N / 8
		}
		if s < 2 {
			s = 2
		}
		p.TargetSize = s
	}
	if p.LeaderProb == 0 {
		p.LeaderProb = 1 / (4 * float64(p.TargetSize))
	}
	if p.LeaderProb <= 0 || p.LeaderProb > 1 {
		return fmt.Errorf("cluster: LeaderProb %v outside (0,1]", p.LeaderProb)
	}
	if p.Latency == nil {
		p.Latency = sim.ExpLatency{Rate: 1}
	}
	tp, err := topo.OrComplete(p.Topo, p.N)
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	p.Topo = tp
	if p.C2Mult == 0 {
		p.C2Mult = 1
	}
	if p.C3Mult == 0 {
		// The c₃ window (between reacceptance and the consensus-mode wave)
		// is where the bulk of the nodes joins; a join attempt costs about
		// one accumulated latency plus a tick gap, so the window must scale
		// with the latency mean. The paper buries this in "c sufficiently
		// large"; here it is explicit.
		p.C3Mult = 4 * (1 + 2*p.Latency.Mean())
	}
	if p.RebroadcastTime <= 0 {
		p.RebroadcastTime = 4 * (1 + p.Latency.Mean())
	}
	if p.MaxTime <= 0 {
		p.MaxTime = 64*math.Log2(math.Log2(float64(p.N))+2)*(1+p.Latency.Mean()) + 64
	}
	if p.RecordEvery <= 0 {
		p.RecordEvery = 1
	}
	return nil
}

// CoveragePoint samples cluster coverage over time.
type CoveragePoint struct {
	// Time is virtual time.
	Time float64
	// ClusteredFrac is the fraction of nodes assigned to any cluster.
	ClusteredFrac float64
	// BigClusterFrac is the fraction of nodes in clusters that reached
	// TargetSize.
	BigClusterFrac float64
}

// Clustering is the outcome of cluster formation, consumed by the
// multi-leader consensus protocol and by the Theorem 27/28 experiments.
type Clustering struct {
	// N is the node count and TargetSize the effective threshold used.
	N          int
	TargetSize int
	// LeaderOf maps each node to its cluster leader's node id (-1 if the
	// node never joined a cluster). Leaders map to themselves.
	LeaderOf []int32
	// Leaders lists the node ids that self-elected as leaders.
	Leaders []int
	// Size maps a leader node id to its final cluster size (leader
	// included).
	Size map[int]int
	// InConsensusMode maps a leader node id to whether it switched to the
	// consensus protocol (clusters below TargetSize never switch).
	InConsensusMode map[int]bool
	// SwitchTime maps a leader id to its consensus-mode switch time.
	SwitchTime map[int]float64
	// FirstSwitch and LastSwitch bracket the switch times of participating
	// leaders (Theorem 27's t_f and t_l); both -1 when nothing switched.
	FirstSwitch, LastSwitch float64
	// Coverage is the recorded coverage trajectory.
	Coverage []CoveragePoint
	// EndTime is the virtual time when formation settled (all leaders
	// decided) or MaxTime.
	EndTime float64
	// TimedOut reports whether MaxTime was hit before every big-cluster
	// leader switched.
	TimedOut bool
	// Topo is the interaction graph formation ran on; Broadcast and the
	// consensus phase reuse it so all three phases share one topology.
	Topo topo.Sampler
}

// ParticipatingLeaders returns the leaders that are in consensus mode,
// i.e. the coordinators of the §4.4 protocol.
func (c *Clustering) ParticipatingLeaders() []int {
	out := make([]int, 0, len(c.Leaders))
	for _, l := range c.Leaders {
		if c.InConsensusMode[l] {
			out = append(out, l)
		}
	}
	return out
}

// ParticipatingFrac returns the fraction of all nodes that belong to a
// cluster whose leader participates.
func (c *Clustering) ParticipatingFrac() float64 {
	total := 0
	for _, l := range c.ParticipatingLeaders() {
		total += c.Size[l]
	}
	return float64(total) / float64(c.N)
}

// Typed event kinds of the clustering engine (see formState.HandleEvent).
// The periodic coverage recorder is a typed event too, so the pending queue
// is plain data and formation is checkpointable mid-flight.
const (
	// evTick is one Poisson tick of node ev.Node.
	evTick int32 = iota
	// evSignal is a 0-signal arriving at leader ev.Node.
	evSignal
	// evJoin is node ev.Node's channels to contacts ev.A, ev.B, ev.C
	// completing: join attempt plus consensus-wave gossip.
	evJoin
	// evRecord is the periodic coverage recorder; it reschedules itself
	// every RecordEvery time steps and stops the run once formation
	// settled or MaxTime passed.
	evRecord
)

// formState is the mutable state of one clustering run. Per-leader state is
// dense struct-of-arrays, addressed by leaderIdx, so the signal and join
// hot paths are slice arithmetic without map lookups.
type formState struct {
	p      Params
	sm     *sim.Simulator
	clocks *sim.Clocks
	tickFn func(int)
	smp    *xrand.RNG
	latR   *xrand.RNG

	leaderOf []int32
	rank     []int32 // join order within the cluster
	locked   []bool

	// leaderIdx maps a node id to its dense leader slot (-1 otherwise);
	// the l* slices are indexed by slot, in Leaders order.
	leaderIdx   []int32
	lSize       []int32 // members including the leader
	lCount      []int32 // 0-signals received since filled
	lFilled     []bool  // reached TargetSize
	lPauseDone  []bool  // finished the c2 counting pause
	lConsensus  []bool  // switched to consensus mode
	lExcluded   []bool  // too small when the wave arrived; never participates
	lSwitchTime []float64
	lRebcastEnd []float64 // forwards the wave until this time

	pauseTicks, switchTicks int32
	clustered               int
	cl                      *Clustering
}

// HandleEvent dispatches the clustering engine's typed events.
func (fs *formState) HandleEvent(ev sim.Event) {
	switch ev.Kind {
	case evTick:
		fs.clocks.Fire(ev.Node, fs.tickFn)
	case evSignal:
		fs.leaderSignal(fs.leaderIdx[ev.Node])
	case evJoin:
		fs.join(int(ev.Node), int(ev.A), int(ev.B), int(ev.C))
	case evRecord:
		fs.record()
		if fs.settled() {
			fs.sm.Stop()
			return
		}
		if fs.sm.Now() >= fs.p.MaxTime {
			fs.cl.TimedOut = true
			fs.sm.Stop()
			return
		}
		fs.sm.ScheduleAfter(fs.p.RecordEvery, sim.Event{Kind: evRecord})
	}
}

// record appends one coverage snapshot at the current virtual time.
func (fs *formState) record() {
	fs.cl.Coverage = append(fs.cl.Coverage, CoveragePoint{
		Time:           fs.sm.Now(),
		ClusteredFrac:  float64(fs.clustered) / float64(fs.p.N),
		BigClusterFrac: fs.bigFrac(),
	})
}

// bigFrac returns the fraction of nodes in clusters that reached
// TargetSize.
func (fs *formState) bigFrac() float64 {
	tot := int32(0)
	for li := range fs.lSize {
		if int(fs.lSize[li]) >= fs.p.TargetSize {
			tot += fs.lSize[li]
		}
	}
	return float64(tot) / float64(fs.p.N)
}

// settled reports whether every big cluster's leader has decided and the
// rebroadcast window of the slowest switch has passed.
func (fs *formState) settled() bool {
	if fs.cl.FirstSwitch < 0 {
		return false
	}
	for li := range fs.lSize {
		if int(fs.lSize[li]) >= fs.p.TargetSize && !fs.lConsensus[li] && !fs.lExcluded[li] {
			return false
		}
	}
	return fs.sm.Now() > fs.cl.LastSwitch+fs.p.RebroadcastTime
}

// switchLeader moves leader slot li into consensus mode (or excludes it)
// when the consensus wave reaches it.
func (fs *formState) switchLeader(li int32) {
	if fs.lConsensus[li] || fs.lExcluded[li] {
		return
	}
	if int(fs.lSize[li]) < fs.p.TargetSize {
		fs.lExcluded[li] = true
		return
	}
	now := fs.sm.Now()
	fs.lConsensus[li] = true
	fs.lSwitchTime[li] = now
	fs.lRebcastEnd[li] = now + fs.p.RebroadcastTime
	if fs.cl.FirstSwitch < 0 {
		fs.cl.FirstSwitch = now
	}
	fs.cl.LastSwitch = now
}

// leaderSignal processes a 0-signal arriving at leader slot li.
func (fs *formState) leaderSignal(li int32) {
	if fs.lConsensus[li] || fs.lExcluded[li] || !fs.lFilled[li] {
		return
	}
	fs.lCount[li]++
	if fs.lCount[li] >= fs.pauseTicks {
		fs.lPauseDone[li] = true
	}
	if fs.lCount[li] >= fs.switchTicks {
		// This leader originates the consensus wave.
		fs.switchLeader(li)
	}
}

// tick is the per-node clustering action.
func (fs *formState) tick(v int) {
	myLeader := int(fs.leaderOf[v])
	// Members among the first TargetSize joiners keep clocking their
	// leader with 0-signals.
	if myLeader >= 0 && fs.rank[v] < int32(fs.p.TargetSize) {
		fs.sm.ScheduleAfter(fs.p.Latency.Sample(fs.latR),
			sim.Event{Kind: evSignal, Node: int32(myLeader)})
	}
	if fs.locked[v] {
		return
	}
	fs.locked[v] = true
	// Contact own leader (if any) and three random nodes in parallel,
	// then the leader of one of them: accumulated latency
	// max(T2,T2,T2,T2) + T2.
	c1 := fs.p.Topo.SampleNeighbor(fs.smp, v)
	c2 := fs.p.Topo.SampleNeighbor(fs.smp, v)
	c3 := fs.p.Topo.SampleNeighbor(fs.smp, v)
	lat := fs.p.Latency
	d := math.Max(math.Max(lat.Sample(fs.latR), lat.Sample(fs.latR)),
		math.Max(lat.Sample(fs.latR), lat.Sample(fs.latR))) +
		lat.Sample(fs.latR)
	fs.sm.ScheduleAfter(d,
		sim.Event{Kind: evJoin, Node: int32(v), A: int32(c1), B: int32(c2), C: int32(c3)})
}

// join handles node v's established channels: the join attempt if
// unassigned, then consensus-wave gossip between the visible leaders.
func (fs *formState) join(v, c1, c2, c3 int) {
	fs.locked[v] = false
	// Choose a reported leader to call: prefer the first contact with an
	// assigned leader (paper: "one of these leaders is called").
	called := -1
	for _, c := range [3]int{c1, c2, c3} {
		if lc := int(fs.leaderOf[c]); lc >= 0 {
			called = lc
			break
		}
	}
	my := int(fs.leaderOf[v])
	// Join attempt if unassigned.
	if my < 0 && called >= 0 {
		li := fs.leaderIdx[called]
		accepting := !fs.lConsensus[li] && !fs.lExcluded[li] &&
			(int(fs.lSize[li]) < fs.p.TargetSize || fs.lPauseDone[li])
		if accepting {
			fs.leaderOf[v] = int32(called)
			fs.rank[v] = fs.lSize[li]
			fs.lSize[li]++
			if int(fs.lSize[li]) >= fs.p.TargetSize {
				fs.lFilled[li] = true
			}
			fs.clustered++
		}
	}
	// Consensus-wave gossip between the two leaders we can see.
	my = int(fs.leaderOf[v])
	if fs.rebroadcasting(called) && my >= 0 && my != called {
		fs.switchLeader(fs.leaderIdx[my])
	}
	if fs.rebroadcasting(my) && called >= 0 && called != my {
		fs.switchLeader(fs.leaderIdx[called])
	}
}

// rebroadcasting reports whether leader node l is currently forwarding the
// consensus wave.
func (fs *formState) rebroadcasting(l int) bool {
	if l < 0 {
		return false
	}
	li := fs.leaderIdx[l]
	return fs.lConsensus[li] && fs.sm.Now() <= fs.lRebcastEnd[li]
}

// Form runs the clustering protocol of §4.1 and returns the resulting
// structure.
func Form(p Params) (*Clustering, error) {
	if err := p.normalize(); err != nil {
		return nil, err
	}
	root := xrand.New(p.Seed)
	sm := sim.New()
	n := p.N

	fs := &formState{
		p:         p,
		sm:        sm,
		smp:       root.SplitNamed("sampling"),
		latR:      root.SplitNamed("latency"),
		leaderOf:  make([]int32, n),
		rank:      make([]int32, n),
		locked:    make([]bool, n),
		leaderIdx: make([]int32, n),
	}
	coinR := root.SplitNamed("coins")
	for i := range fs.leaderOf {
		fs.leaderOf[i] = -1
		fs.rank[i] = -1
		fs.leaderIdx[i] = -1
	}
	var leaders []int
	addLeader := func(v int) {
		fs.leaderIdx[v] = int32(len(leaders))
		leaders = append(leaders, v)
		fs.leaderOf[v] = int32(v)
		fs.rank[v] = 0
	}
	for v := 0; v < n; v++ {
		if coinR.Bernoulli(p.LeaderProb) {
			addLeader(v)
		}
	}
	if len(leaders) == 0 {
		// Degenerate draw: force one leader so the protocol is well posed.
		addLeader(coinR.Intn(n))
	}
	fs.lSize = make([]int32, len(leaders))
	fs.lCount = make([]int32, len(leaders))
	fs.lFilled = make([]bool, len(leaders))
	fs.lPauseDone = make([]bool, len(leaders))
	fs.lConsensus = make([]bool, len(leaders))
	fs.lExcluded = make([]bool, len(leaders))
	fs.lSwitchTime = make([]float64, len(leaders))
	fs.lRebcastEnd = make([]float64, len(leaders))
	for li := range fs.lSize {
		fs.lSize[li] = 1
	}

	fs.pauseTicks = int32(math.Ceil(p.C2Mult * float64(p.TargetSize) *
		math.Log2(math.Log2(float64(n))+2)))
	fs.switchTicks = fs.pauseTicks + int32(math.Ceil(p.C3Mult*float64(p.TargetSize)*
		math.Log2(math.Log2(float64(n))+2)))

	cl := &Clustering{
		N:               n,
		TargetSize:      p.TargetSize,
		LeaderOf:        fs.leaderOf,
		Leaders:         leaders,
		Size:            make(map[int]int, len(leaders)),
		InConsensusMode: make(map[int]bool, len(leaders)),
		SwitchTime:      make(map[int]float64, len(leaders)),
		FirstSwitch:     -1,
		LastSwitch:      -1,
		Topo:            p.Topo,
	}
	fs.cl = cl
	fs.clustered = len(leaders)

	fs.tickFn = fs.tick
	sm.SetHandler(fs)
	sm.Reserve(3*n + 64)
	clockR := root.SplitNamed("clocks")
	fs.clocks = sim.NewClocks(sm, clockR, n, 1, evTick)
	if p.Ckpt.Restoring() {
		// Deterministic setup above re-derived the leader set; overwrite
		// all mutable state (event heap included) from the payload.
		if err := fs.restore(p.Ckpt.Restore, p.Ckpt.Perturb); err != nil {
			return nil, err
		}
	} else {
		fs.clocks.StartAll()
		// Coverage recorder + settlement watchdog, a typed event so the
		// pending queue stays plain data (see evRecord).
		fs.record()
		sm.ScheduleAfter(p.RecordEvery, sim.Event{Kind: evRecord})
	}

	if err := fs.runSim(p.Ctx); err != nil {
		return nil, err
	}

	cl.EndTime = sm.Now()
	for li, l := range leaders {
		cl.Size[l] = int(fs.lSize[li])
		cl.InConsensusMode[l] = fs.lConsensus[li]
		if fs.lConsensus[li] {
			cl.SwitchTime[l] = fs.lSwitchTime[li]
		}
	}
	return cl, nil
}
