package cluster

import (
	"context"
	"fmt"

	"plurality/internal/sim"
	"plurality/internal/snap"
)

// This file implements the clustering substrate's checkpoint hooks: a
// canonical codec for the Clustering structure (consumed by the
// decentralized consensus engine's snapshots, so a resumed run does not
// replay formation), plus capture/restore of a formation run in flight and
// of a leader broadcast.

// EncodeClustering writes a formation outcome in canonical form: map-valued
// fields are iterated in Leaders order, so encoding the same clustering
// twice yields identical bytes. The interaction graph (Topo) is not
// serialized — it is a deterministic function of the run configuration and
// is re-attached by the caller after decoding.
func EncodeClustering(w *snap.Writer, cl *Clustering) {
	w.Int(cl.N)
	w.Int(cl.TargetSize)
	w.I32s(cl.LeaderOf)
	w.Ints(cl.Leaders)
	w.Len32(len(cl.Leaders))
	for _, l := range cl.Leaders {
		w.Int(cl.Size[l])
		w.Bool(cl.InConsensusMode[l])
		st, ok := cl.SwitchTime[l]
		w.Bool(ok)
		w.F64(st)
	}
	w.F64(cl.FirstSwitch)
	w.F64(cl.LastSwitch)
	w.Len32(len(cl.Coverage))
	for _, p := range cl.Coverage {
		w.F64(p.Time)
		w.F64(p.ClusteredFrac)
		w.F64(p.BigClusterFrac)
	}
	w.F64(cl.EndTime)
	w.Bool(cl.TimedOut)
}

// DecodeClustering reads a structure written by EncodeClustering. The
// caller must attach the interaction graph (Topo) afterwards.
func DecodeClustering(r *snap.Reader) (*Clustering, error) {
	cl := &Clustering{}
	cl.N = r.Int()
	cl.TargetSize = r.Int()
	cl.LeaderOf = r.I32s()
	cl.Leaders = r.Ints()
	nl := r.Len32(18)
	if err := r.Err(); err != nil {
		return nil, err
	}
	if nl != len(cl.Leaders) {
		return nil, r.Fail(fmt.Errorf("%w: %d leader records for %d leaders", snap.ErrCorrupt, nl, len(cl.Leaders)))
	}
	if len(cl.LeaderOf) != cl.N {
		return nil, r.Fail(fmt.Errorf("%w: LeaderOf length %d != N %d", snap.ErrCorrupt, len(cl.LeaderOf), cl.N))
	}
	cl.Size = make(map[int]int, nl)
	cl.InConsensusMode = make(map[int]bool, nl)
	cl.SwitchTime = make(map[int]float64, nl)
	for _, l := range cl.Leaders {
		if l < 0 || l >= cl.N {
			return nil, r.Fail(fmt.Errorf("%w: leader id %d outside [0, %d)", snap.ErrCorrupt, l, cl.N))
		}
		cl.Size[l] = r.Int()
		cl.InConsensusMode[l] = r.Bool()
		hasSwitch := r.Bool()
		st := r.F64()
		if hasSwitch {
			cl.SwitchTime[l] = st
		}
	}
	cl.FirstSwitch = r.F64()
	cl.LastSwitch = r.F64()
	nc := r.Len32(24)
	if err := r.Err(); err != nil {
		return nil, err
	}
	cl.Coverage = make([]CoveragePoint, nc)
	for i := range cl.Coverage {
		cl.Coverage[i] = CoveragePoint{
			Time:           r.F64(),
			ClusteredFrac:  r.F64(),
			BigClusterFrac: r.F64(),
		}
	}
	cl.EndTime = r.F64()
	cl.TimedOut = r.Bool()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return cl, nil
}

// runSim drives the broadcast kernel through the shared checkpoint barrier
// (Broadcast has no context parameter, so only the barrier interrupts the
// run).
func (bs *bcastState) runSim(ck *snap.Checkpoint) error {
	return sim.RunCheckpointed(nil, bs.sm, ck, bs.capture)
}

// capture serializes a broadcast run's mutable state; the participating set
// is derived from the clustering and not stored.
func (bs *bcastState) capture() ([]byte, error) {
	w := &snap.Writer{}
	if err := bs.sm.EncodeState(w); err != nil {
		return nil, err
	}
	bs.clocks.EncodeState(w)
	w.RNG(bs.smp)
	w.RNG(bs.latR)
	w.Bools(bs.informed)
	w.Bools(bs.locked)
	leaders := bs.cl.ParticipatingLeaders()
	w.Len32(len(leaders))
	for _, l := range leaders {
		t, ok := bs.informTimes[l]
		w.Bool(ok)
		w.F64(t)
	}
	w.Int(bs.remaining)
	w.Bool(bs.res.TimedOut)
	// Adversarial runs append the adversary state and the delayed-message
	// arena; the suffix's presence is a pure function of the caller's
	// adversary.Config, so capture and restore agree on it and honest blobs
	// decode unchanged.
	if bs.adv != nil {
		bs.adv.EncodeState(w)
		bs.payload.EncodeState(w)
	}
	return w.Bytes(), nil
}

// restore overwrites a broadcast run's mutable state from a captured
// payload; leaders is the participating set in canonical order.
func (bs *bcastState) restore(state []byte, perturb uint64, leaders []int) error {
	r := snap.NewReader(state)
	if err := bs.sm.DecodeState(r); err != nil {
		return fmt.Errorf("cluster: broadcast kernel state: %w", err)
	}
	if err := bs.clocks.DecodeState(r); err != nil {
		return fmt.Errorf("cluster: broadcast clock state: %w", err)
	}
	if err := r.ReadRNG(bs.smp); err != nil {
		return fmt.Errorf("cluster: broadcast sampling rng: %w", err)
	}
	if err := r.ReadRNG(bs.latR); err != nil {
		return fmt.Errorf("cluster: broadcast latency rng: %w", err)
	}
	informed := r.Bools()
	locked := r.Bools()
	nl := r.Len32(9)
	if err := r.Err(); err != nil {
		return fmt.Errorf("cluster: broadcast state: %w", err)
	}
	if nl != len(leaders) {
		return fmt.Errorf("cluster: %w: %d inform records for %d leaders", snap.ErrCorrupt, nl, len(leaders))
	}
	// Refill the inform-time map in place: the result aliases it.
	for k := range bs.informTimes {
		delete(bs.informTimes, k)
	}
	for _, l := range leaders {
		ok := r.Bool()
		t := r.F64()
		if ok {
			bs.informTimes[l] = t
		}
	}
	remaining := r.Int()
	timedOut := r.Bool()
	if bs.adv != nil {
		if err := bs.adv.DecodeState(r); err != nil {
			return fmt.Errorf("cluster: broadcast adversary state: %w", err)
		}
		if err := bs.payload.DecodeState(r); err != nil {
			return fmt.Errorf("cluster: broadcast delayed messages: %w", err)
		}
	}
	if err := r.Finish(); err != nil {
		return fmt.Errorf("cluster: broadcast state: %w", err)
	}
	if len(informed) != len(bs.informed) || len(locked) != len(bs.locked) {
		return fmt.Errorf("cluster: %w: broadcast node-state length mismatch", snap.ErrCorrupt)
	}
	copy(bs.informed, informed)
	copy(bs.locked, locked)
	bs.remaining = remaining
	bs.res.TimedOut = timedOut
	if perturb != 0 {
		bs.smp.Perturb(perturb)
		bs.latR.Perturb(perturb)
		bs.clocks.Perturb(perturb)
		if bs.adv != nil {
			bs.adv.Perturb(perturb)
		}
	}
	return nil
}

// runSim drives the formation kernel through the shared checkpoint barrier
// (sim.RunCheckpointed), exactly like the consensus engines.
func (fs *formState) runSim(ctx context.Context) error {
	return sim.RunCheckpointed(ctx, fs.sm, fs.p.Ckpt, fs.capture)
}

// capture serializes a formation run's mutable state.
func (fs *formState) capture() ([]byte, error) {
	w := &snap.Writer{}
	if err := fs.sm.EncodeState(w); err != nil {
		return nil, err
	}
	fs.clocks.EncodeState(w)
	w.RNG(fs.smp)
	w.RNG(fs.latR)
	w.I32s(fs.leaderOf)
	w.I32s(fs.rank)
	w.Bools(fs.locked)
	w.I32s(fs.lSize)
	w.I32s(fs.lCount)
	w.Bools(fs.lFilled)
	w.Bools(fs.lPauseDone)
	w.Bools(fs.lConsensus)
	w.Bools(fs.lExcluded)
	w.F64s(fs.lSwitchTime)
	w.F64s(fs.lRebcastEnd)
	w.Int(fs.clustered)
	w.F64(fs.cl.FirstSwitch)
	w.F64(fs.cl.LastSwitch)
	w.Bool(fs.cl.TimedOut)
	w.Len32(len(fs.cl.Coverage))
	for _, p := range fs.cl.Coverage {
		w.F64(p.Time)
		w.F64(p.ClusteredFrac)
		w.F64(p.BigClusterFrac)
	}
	return w.Bytes(), nil
}

// restore overwrites a formation run's mutable state from a captured
// payload. The leader set is a deterministic function of the seed and was
// already recomputed by setup; the blob only carries the mutable words.
func (fs *formState) restore(state []byte, perturb uint64) error {
	r := snap.NewReader(state)
	if err := fs.sm.DecodeState(r); err != nil {
		return fmt.Errorf("cluster: kernel state: %w", err)
	}
	if err := fs.clocks.DecodeState(r); err != nil {
		return fmt.Errorf("cluster: clock state: %w", err)
	}
	if err := r.ReadRNG(fs.smp); err != nil {
		return fmt.Errorf("cluster: sampling rng: %w", err)
	}
	if err := r.ReadRNG(fs.latR); err != nil {
		return fmt.Errorf("cluster: latency rng: %w", err)
	}
	leaderOf := r.I32s()
	rank := r.I32s()
	locked := r.Bools()
	lSize := r.I32s()
	lCount := r.I32s()
	lFilled := r.Bools()
	lPauseDone := r.Bools()
	lConsensus := r.Bools()
	lExcluded := r.Bools()
	lSwitchTime := r.F64s()
	lRebcastEnd := r.F64s()
	clustered := r.Int()
	firstSwitch := r.F64()
	lastSwitch := r.F64()
	timedOut := r.Bool()
	nc := r.Len32(24)
	if err := r.Err(); err != nil {
		return fmt.Errorf("cluster: state: %w", err)
	}
	coverage := make([]CoveragePoint, nc)
	for i := range coverage {
		coverage[i] = CoveragePoint{
			Time:           r.F64(),
			ClusteredFrac:  r.F64(),
			BigClusterFrac: r.F64(),
		}
	}
	if err := r.Finish(); err != nil {
		return fmt.Errorf("cluster: state: %w", err)
	}
	if len(leaderOf) != fs.p.N || len(rank) != fs.p.N || len(locked) != fs.p.N {
		return fmt.Errorf("cluster: %w: node-state length mismatch (blob for a different N?)", snap.ErrCorrupt)
	}
	nl := len(fs.lSize)
	if len(lSize) != nl || len(lCount) != nl || len(lFilled) != nl ||
		len(lPauseDone) != nl || len(lConsensus) != nl || len(lExcluded) != nl ||
		len(lSwitchTime) != nl || len(lRebcastEnd) != nl {
		return fmt.Errorf("cluster: %w: leader-state length mismatch (blob for a different seed?)", snap.ErrCorrupt)
	}
	// cl.LeaderOf aliases fs.leaderOf; copy in place to keep the aliasing.
	copy(fs.leaderOf, leaderOf)
	copy(fs.rank, rank)
	copy(fs.locked, locked)
	copy(fs.lSize, lSize)
	copy(fs.lCount, lCount)
	copy(fs.lFilled, lFilled)
	copy(fs.lPauseDone, lPauseDone)
	copy(fs.lConsensus, lConsensus)
	copy(fs.lExcluded, lExcluded)
	copy(fs.lSwitchTime, lSwitchTime)
	copy(fs.lRebcastEnd, lRebcastEnd)
	fs.clustered = clustered
	fs.cl.FirstSwitch = firstSwitch
	fs.cl.LastSwitch = lastSwitch
	fs.cl.TimedOut = timedOut
	fs.cl.Coverage = coverage
	if perturb != 0 {
		fs.smp.Perturb(perturb)
		fs.latR.Perturb(perturb)
		fs.clocks.Perturb(perturb)
	}
	return nil
}
