package harness

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsJobs(t *testing.T) {
	p := NewPool(4, 100, nil)
	defer p.Close()
	var n atomic.Int64
	var handles []*JobHandle
	for i := 0; i < 50; i++ {
		h, ok := p.TrySubmit(func(ctx context.Context, _ any) error {
			n.Add(1)
			return nil
		})
		if !ok {
			t.Fatalf("submit %d refused", i)
		}
		handles = append(handles, h)
	}
	for _, h := range handles {
		<-h.Done()
		if err := h.Err(); err != nil {
			t.Fatal(err)
		}
	}
	if n.Load() != 50 {
		t.Fatalf("ran %d jobs, want 50", n.Load())
	}
}

func TestPoolScratchPerWorker(t *testing.T) {
	type ws struct{ uses int }
	var mu sync.Mutex
	made := 0
	p := NewPool(3, 100, func() any {
		mu.Lock()
		made++
		mu.Unlock()
		return &ws{}
	})
	defer p.Close()
	// Three jobs that must run concurrently force every worker to start;
	// the barrier releases once all three are in flight.
	var arrived sync.WaitGroup
	arrived.Add(3)
	release := make(chan struct{})
	var handles []*JobHandle
	for i := 0; i < 3; i++ {
		h, _ := p.TrySubmit(func(ctx context.Context, s any) error {
			s.(*ws).uses++ // worker-private: no lock needed
			arrived.Done()
			<-release
			return nil
		})
		handles = append(handles, h)
	}
	arrived.Wait()
	close(release)
	for _, h := range handles {
		<-h.Done()
	}
	mu.Lock()
	defer mu.Unlock()
	if made != 3 {
		t.Fatalf("built %d scratches, want one per worker (3)", made)
	}
}

func TestPoolAdmissionControl(t *testing.T) {
	p := NewPool(1, 2, nil)
	defer p.Close()
	block := make(chan struct{})
	// Occupy the single worker, then fill the queue.
	running, ok := p.TrySubmit(func(ctx context.Context, _ any) error {
		<-block
		return nil
	})
	if !ok {
		t.Fatal("first submit refused")
	}
	waitRunning(t, p)
	for i := 0; i < 2; i++ {
		if _, ok := p.TrySubmit(func(ctx context.Context, _ any) error { return nil }); !ok {
			t.Fatalf("queue submit %d refused below capacity", i)
		}
	}
	if _, ok := p.TrySubmit(func(ctx context.Context, _ any) error { return nil }); ok {
		t.Fatal("submit accepted beyond queue capacity")
	}
	// All-or-nothing: a 2-job batch must not squeeze into 0 free slots,
	// and must fit after the queue drains.
	if _, ok := p.TrySubmitAll(make([]Job, 2)); ok {
		t.Fatal("batch accepted beyond queue capacity")
	}
	close(block)
	<-running.Done()
	q, _ := p.Pending()
	_ = q
	deadline := time.After(5 * time.Second)
	for {
		if q, r := p.Pending(); q == 0 && r == 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("queue never drained")
		case <-time.After(time.Millisecond):
		}
	}
	hs, ok := p.TrySubmitAll([]Job{
		func(ctx context.Context, _ any) error { return nil },
		func(ctx context.Context, _ any) error { return nil },
	})
	if !ok {
		t.Fatal("batch refused with free capacity")
	}
	for _, h := range hs {
		<-h.Done()
	}
}

func TestPoolCancelQueuedJob(t *testing.T) {
	p := NewPool(1, 10, nil)
	defer p.Close()
	block := make(chan struct{})
	first, _ := p.TrySubmit(func(ctx context.Context, _ any) error {
		<-block
		return nil
	})
	waitRunning(t, p)
	ran := false
	queued, _ := p.TrySubmit(func(ctx context.Context, _ any) error {
		ran = true
		return nil
	})
	queued.Cancel()
	close(block)
	<-first.Done()
	<-queued.Done()
	if ran {
		t.Fatal("cancelled queued job still ran")
	}
	if !errors.Is(queued.Err(), context.Canceled) {
		t.Fatalf("cancelled job error = %v, want context.Canceled", queued.Err())
	}
}

func TestPoolDrainWaitsForJobs(t *testing.T) {
	p := NewPool(2, 10, nil)
	var done atomic.Int64
	for i := 0; i < 6; i++ {
		p.TrySubmit(func(ctx context.Context, _ any) error {
			time.Sleep(5 * time.Millisecond)
			done.Add(1)
			return nil
		})
	}
	if err := p.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if done.Load() != 6 {
		t.Fatalf("drain returned with %d/6 jobs finished", done.Load())
	}
	if _, ok := p.TrySubmit(func(ctx context.Context, _ any) error { return nil }); ok {
		t.Fatal("submit accepted after Drain")
	}
}

func TestPoolDrainDeadlineCancelsJobs(t *testing.T) {
	p := NewPool(1, 10, nil)
	started := make(chan struct{})
	h, _ := p.TrySubmit(func(ctx context.Context, _ any) error {
		close(started)
		<-ctx.Done() // a job that only ends under cancellation
		return ctx.Err()
	})
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain error = %v, want deadline exceeded", err)
	}
	<-h.Done()
	if !errors.Is(h.Err(), context.Canceled) {
		t.Fatalf("job error = %v, want context.Canceled", h.Err())
	}
}

// waitRunning blocks until the pool reports a running job, so tests can
// distinguish "worker busy" from "job still queued".
func waitRunning(t *testing.T, p *Pool) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		if _, r := p.Pending(); r > 0 {
			return
		}
		select {
		case <-deadline:
			t.Fatal("no job ever started")
		case <-time.After(time.Millisecond):
		}
	}
}
