package harness

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"plurality/internal/stats"
)

func TestReplicateAggregates(t *testing.T) {
	agg, _ := ReplicateCtx(context.Background(), 100, func(_ context.Context, seed uint64) (Metrics, error) {
		return Metrics{"seed": float64(seed), "one": 1}, nil
	})
	if agg["seed"].N() != 100 {
		t.Fatalf("N = %d", agg["seed"].N())
	}
	if math.Abs(agg["seed"].Mean()-49.5) > 1e-9 {
		t.Errorf("mean of seeds %v, want 49.5", agg["seed"].Mean())
	}
	if agg["one"].Mean() != 1 || agg["one"].Std() != 0 {
		t.Error("constant metric aggregated wrong")
	}
}

func TestReplicateRunsAll(t *testing.T) {
	var count int64
	ReplicateCtx(context.Background(), 37, func(_ context.Context, seed uint64) (Metrics, error) {
		atomic.AddInt64(&count, 1)
		return Metrics{}, nil
	})
	if count != 37 {
		t.Fatalf("ran %d replications, want 37", count)
	}
}

func TestReplicateDeterministicSeeds(t *testing.T) {
	seen := make([]int64, 10)
	ReplicateCtx(context.Background(), 10, func(_ context.Context, seed uint64) (Metrics, error) {
		atomic.AddInt64(&seen[seed], 1)
		return Metrics{}, nil
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("seed %d ran %d times", i, c)
		}
	}
}

func TestReplicatePartialMetrics(t *testing.T) {
	// Metrics reported only by some replications must still aggregate.
	agg, _ := ReplicateCtx(context.Background(), 10, func(_ context.Context, seed uint64) (Metrics, error) {
		m := Metrics{"always": 1}
		if seed%2 == 0 {
			m["even"] = float64(seed)
		}
		return m, nil
	})
	if agg["always"].N() != 10 {
		t.Errorf("always.N = %d", agg["always"].N())
	}
	if agg["even"].N() != 5 {
		t.Errorf("even.N = %d", agg["even"].N())
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", []string{"n"}, []string{"time"})
	s := &stats.Summary{}
	s.AddAll([]float64{1, 2, 3})
	tb.Append(map[string]float64{"n": 100}, map[string]*stats.Summary{"time": s})
	out := tb.Render()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "time") {
		t.Errorf("render missing headers:\n%s", out)
	}
	if !strings.Contains(out, "2 ±") {
		t.Errorf("render missing mean:\n%s", out)
	}
}

func TestTableAppendsUnknownMetrics(t *testing.T) {
	tb := NewTable("Demo", []string{"n"}, []string{"a"})
	s := &stats.Summary{}
	s.Add(5)
	tb.Append(map[string]float64{"n": 1},
		map[string]*stats.Summary{"a": s, "b": s})
	if len(tb.MetricOrder) != 2 {
		t.Fatalf("metric order %v", tb.MetricOrder)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("Demo", []string{"n", "k"}, []string{"time"})
	s := &stats.Summary{}
	s.AddAll([]float64{2, 4})
	tb.Append(map[string]float64{"n": 100, "k": 2}, map[string]*stats.Summary{"time": s})
	csv := tb.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV lines: %v", lines)
	}
	if lines[0] != "n,k,time_mean,time_se,time_n" {
		t.Errorf("CSV header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "100,2,3,") {
		t.Errorf("CSV row %q", lines[1])
	}
}

func TestTableMissingCell(t *testing.T) {
	tb := NewTable("Demo", []string{"n"}, []string{"a", "b"})
	s := &stats.Summary{}
	s.Add(1)
	tb.Append(map[string]float64{"n": 1}, map[string]*stats.Summary{"a": s})
	if !strings.Contains(tb.Render(), "-") {
		t.Error("missing cell not rendered as dash")
	}
	if !strings.Contains(tb.CSV(), ",,,0") {
		t.Error("missing cell not rendered in CSV")
	}
}

func TestReplicateCtxAggregates(t *testing.T) {
	agg, err := ReplicateCtx(context.Background(), 8,
		func(_ context.Context, seed uint64) (Metrics, error) {
			return Metrics{"seed": float64(seed)}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	s := agg["seed"]
	if s.N() != 8 || s.Mean() != 3.5 {
		t.Errorf("seed summary n=%d mean=%v", s.N(), s.Mean())
	}
}

func TestReplicateCtxPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	_, err := ReplicateCtx(context.Background(), 4,
		func(_ context.Context, seed uint64) (Metrics, error) {
			if seed == 2 {
				return nil, boom
			}
			return Metrics{"x": 1}, nil
		})
	if err != boom {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestReplicateCtxErrorCancelsBatch(t *testing.T) {
	boom := errors.New("boom")
	var started atomic.Int64
	_, err := ReplicateCtx(context.Background(), 1000,
		func(ctx context.Context, seed uint64) (Metrics, error) {
			started.Add(1)
			if seed == 0 {
				return nil, boom
			}
			// Replications that honour ctx abort once the batch failed.
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(10 * time.Millisecond):
				return Metrics{"x": 1}, nil
			}
		})
	if err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := started.Load(); n >= 1000 {
		t.Errorf("all %d replications ran despite the early error", n)
	}
}

func TestReplicateCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ReplicateCtx(ctx, 1000,
		func(_ context.Context, seed uint64) (Metrics, error) {
			return Metrics{"x": 1}, nil
		})
	if err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}
