package harness

import (
	"context"
	"runtime"
	"sync"
)

// Job is one unit of work submitted to a Pool. The scratch argument is the
// executing worker's private reusable workspace (see NewPool's newScratch);
// it is reused across the jobs one worker runs and must not be retained.
type Job func(ctx context.Context, scratch any) error

// JobHandle tracks one job accepted by Pool.TrySubmit/TrySubmitAll.
type JobHandle struct {
	ctx    context.Context
	cancel context.CancelFunc
	fn     Job
	done   chan struct{}
	err    error
}

// Done returns a channel closed when the job has finished (or was skipped
// after cancellation).
func (h *JobHandle) Done() <-chan struct{} { return h.done }

// Err returns the job's error; it is meaningful only after Done is closed.
// A job cancelled before it started reports its context error.
func (h *JobHandle) Err() error {
	select {
	case <-h.done:
		return h.err
	default:
		return nil
	}
}

// Cancel cancels the job's context. A queued job is skipped when a worker
// reaches it; a running job sees its ctx cancelled and is expected to
// return promptly, as every simulator entry point does.
func (h *JobHandle) Cancel() { h.cancel() }

// Pool is the long-lived counterpart of ForEachWorkers: a bounded worker
// pool with a bounded FIFO queue for jobs that arrive over time — the
// execution substrate of the pluralityd serving layer. Admission control is
// explicit: TrySubmit/TrySubmitAll never block and fail when the queue is
// full, so callers can shed load (HTTP 429) instead of queueing unboundedly.
// Like the batch helpers, the pool imposes no ordering of its own beyond
// FIFO dispatch; determinism stays with the jobs, which write
// index-addressed slots.
type Pool struct {
	mu         sync.Mutex
	cond       *sync.Cond
	queue      []*JobHandle
	queueCap   int
	newScratch func() any
	closed     bool

	baseCtx    context.Context
	baseCancel context.CancelFunc
	workers    int
	running    int
	wg         sync.WaitGroup
}

// NewPool starts a pool of `workers` goroutines (<= 0 means GOMAXPROCS)
// accepting at most queueCap queued jobs (<= 0 means 1024). newScratch,
// when non-nil, builds one reusable workspace per worker, passed to every
// job the worker runs.
func NewPool(workers, queueCap int, newScratch func() any) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queueCap <= 0 {
		queueCap = 1024
	}
	p := &Pool{queueCap: queueCap, newScratch: newScratch, workers: workers}
	p.cond = sync.NewCond(&p.mu)
	p.baseCtx, p.baseCancel = context.WithCancel(context.Background())
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	var scratch any
	if p.newScratch != nil {
		scratch = p.newScratch()
	}
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 { // closed and drained
			p.mu.Unlock()
			return
		}
		h := p.queue[0]
		p.queue[0] = nil
		p.queue = p.queue[1:]
		if len(p.queue) == 0 {
			p.queue = nil // release the drained backing array
		}
		p.running++
		p.mu.Unlock()

		if err := h.ctx.Err(); err != nil {
			h.err = err // cancelled while queued: skip the work
		} else {
			h.err = h.fn(h.ctx, scratch)
		}
		h.cancel() // release the context's resources
		close(h.done)

		p.mu.Lock()
		p.running--
		p.cond.Broadcast()
		p.mu.Unlock()
	}
}

// TrySubmit enqueues one job without blocking. It returns (nil, false) when
// the queue is full or the pool is draining/closed.
func (p *Pool) TrySubmit(fn Job) (*JobHandle, bool) {
	hs, ok := p.TrySubmitAll([]Job{fn})
	if !ok {
		return nil, false
	}
	return hs[0], true
}

// TrySubmitAll enqueues all the given jobs or none of them: if admitting
// the whole batch would exceed the queue capacity — or the pool is
// draining/closed — nothing is enqueued and ok is false. All-or-nothing
// admission is what lets a multi-job request (a sweep) be refused atomically
// instead of wedging half-admitted.
func (p *Pool) TrySubmitAll(fns []Job) (handles []*JobHandle, ok bool) {
	if len(fns) == 0 {
		return nil, true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || len(p.queue)+len(fns) > p.queueCap {
		return nil, false
	}
	handles = make([]*JobHandle, len(fns))
	for i, fn := range fns {
		ctx, cancel := context.WithCancel(p.baseCtx)
		handles[i] = &JobHandle{ctx: ctx, cancel: cancel, fn: fn, done: make(chan struct{})}
	}
	p.queue = append(p.queue, handles...)
	p.cond.Broadcast()
	return handles, true
}

// Pending returns the number of queued (not yet started) and currently
// running jobs — the load signal behind Retry-After hints.
func (p *Pool) Pending() (queued, running int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue), p.running
}

// Drain stops admission and waits until every queued and running job has
// finished. If ctx expires first, the outstanding jobs' contexts are
// cancelled and Drain still waits for the workers to observe that (jobs
// honour cancellation promptly), then returns ctx's error.
func (p *Pool) Drain(ctx context.Context) error {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		p.baseCancel()
		<-done
		return ctx.Err()
	}
}

// Close cancels every queued and running job and waits for the workers to
// exit — the abrupt counterpart of Drain.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.baseCancel()
	p.wg.Wait()
}
