// Package harness runs experiments: seeded replications of a measurement
// function across a grid of factor values, executed in parallel with a
// bounded worker pool, aggregated into summaries and rendered as ASCII
// tables or CSV. Every experiment in cmd/experiments and every benchmark in
// bench_test.go is expressed through this package, so the paper's figures
// and claims are regenerated through one code path.
//
// # Worker-count invariance
//
// The pool guarantees that batch output is a pure function of the job list,
// independent of the worker bound and of goroutine interleaving. The
// contract has three parts, and every caller in this repository follows it:
// each job derives all of its randomness from its own index (seed offsets
// or perturbation labels — never from a shared stream), owns its entire
// mutable state (one simulator per in-flight replication), and writes its
// result into an index-addressed slot that aggregation later walks in
// order. Under that contract workers only trade wall-clock time against
// peak memory; TestRunBatch*/TestSweepWorkerInvariance pin the property
// under -race, and the checkpoint roundtrip test extends it to resumed
// runs (RunBatchFrom with ≥ 2 workers).
//
// Cancellation is prompt and first-error-wins: the first failing job (or
// the outer context) cancels the context handed to in-flight jobs, no new
// job starts, and ForEach returns that first error.
package harness

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"plurality/internal/stats"
)

// Metrics is one replication's named measurements.
type Metrics map[string]float64

// ForEach runs fn for each index in [0, n) on a bounded worker pool
// (GOMAXPROCS workers). fn must be safe for concurrent use across distinct
// indices (the repository's Run functions are: each owns all of its
// state). The first error any call returns — or the outer ctx's
// cancellation — stops the batch: no new call starts and the ctx passed to
// the in-flight calls is cancelled, so calls that honour it abort
// promptly. ForEach returns that first error, or nil once every call
// completed.
func ForEach(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	return ForEachWorkers(ctx, n, 0, fn)
}

// ForEachWorkers is ForEach with an explicit worker bound: workers <= 0
// means GOMAXPROCS, workers == 1 runs the batch sequentially on one
// goroutine (useful for bounding memory: each in-flight replication owns
// its full simulator state). Results are index-addressed by the caller, so
// the outcome is identical for every worker count.
func ForEachWorkers(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	return ForEachWorkersScratch(ctx, n, workers, nil,
		func(ctx context.Context, i int, _ any) error { return fn(ctx, i) })
}

// ForEachWorkersScratch is ForEachWorkers with a per-worker scratch value:
// newScratch (nil means no scratch) runs once per worker goroutine and its
// value is handed to every job that worker executes. Jobs on the same
// worker run sequentially, so they may freely reuse the scratch's buffers;
// the worker-count-invariance contract still holds as long as scratch
// contents never influence results — which is exactly how the batch layer
// uses it, threading reusable sampling buffers (topo.Scratch) through the
// engines.
func ForEachWorkersScratch(ctx context.Context, n, workers int, newScratch func() any, fn func(ctx context.Context, i int, scratch any) error) error {
	if n <= 0 {
		panic(fmt.Sprintf("harness: ForEach with n=%d", n))
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		cancel()
	}
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var scratch any
			if newScratch != nil {
				scratch = newScratch()
			}
			for i := range jobs {
				if err := fn(ctx, i, scratch); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		// Pre-check cancellation: with both select cases ready Go picks
		// randomly, which would keep dispatching after a cancel.
		if err := ctx.Err(); err != nil {
			fail(err)
			break feed
		}
		select {
		case jobs <- i:
		case <-ctx.Done():
			fail(ctx.Err())
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	return firstErr
}

// ReplicateCtx runs fn for each seed in [0, reps) on the ForEach pool and
// returns per-metric summaries. A replication may also report binary
// outcomes by returning 0/1-valued metrics. The first error or
// cancellation stops the batch; the returned summaries always cover the
// replications that completed successfully — partial on error, complete on
// a nil error.
func ReplicateCtx(ctx context.Context, reps int, fn func(ctx context.Context, seed uint64) (Metrics, error)) (map[string]*stats.Summary, error) {
	if reps <= 0 {
		panic(fmt.Sprintf("harness: ReplicateCtx with reps=%d", reps))
	}
	results := make([]Metrics, reps)
	err := ForEach(ctx, reps, func(ctx context.Context, i int) error {
		m, err := fn(ctx, uint64(i))
		if err != nil {
			return err
		}
		results[i] = m
		return nil
	})

	agg := make(map[string]*stats.Summary)
	for _, m := range results {
		for k, v := range m {
			s, ok := agg[k]
			if !ok {
				s = &stats.Summary{}
				agg[k] = s
			}
			s.Add(v)
		}
	}
	return agg, err
}

// Row is one line of an experiment table: factor values plus aggregated
// metric summaries.
type Row struct {
	// Factors holds the independent variables of this row, e.g.
	// {"n": 10000, "k": 8}.
	Factors map[string]float64
	// Labels holds non-numeric factor values, e.g. {"topology": "torus"};
	// nil for purely numeric rows.
	Labels map[string]string
	// Cells holds the aggregated measurements.
	Cells map[string]*stats.Summary
}

// Table is an ordered collection of rows with a caption, renderable as
// aligned ASCII or CSV.
type Table struct {
	// Caption names the experiment (e.g. "Figure 1").
	Caption string
	// FactorOrder, LabelOrder and MetricOrder fix the column order:
	// numeric factors first, then string-valued label columns, then the
	// metrics. LabelOrder is empty for purely numeric tables.
	FactorOrder []string
	LabelOrder  []string
	MetricOrder []string
	// Rows holds the data in insertion order.
	Rows []Row
}

// NewTable creates a table with the given caption and column orders.
func NewTable(caption string, factors, metricsOrder []string) *Table {
	return &Table{Caption: caption, FactorOrder: factors, MetricOrder: metricsOrder}
}

// Append adds a row. Metric summaries not listed in MetricOrder are appended
// to the order on first sight so nothing is silently dropped.
func (t *Table) Append(factors map[string]float64, cells map[string]*stats.Summary) {
	t.AppendLabeled(nil, factors, cells)
}

// AppendLabeled adds a row carrying string-valued label columns (declared in
// LabelOrder) alongside the numeric factors.
func (t *Table) AppendLabeled(labels map[string]string, factors map[string]float64, cells map[string]*stats.Summary) {
	known := make(map[string]bool, len(t.MetricOrder))
	for _, m := range t.MetricOrder {
		known[m] = true
	}
	extra := make([]string, 0, len(cells))
	for m := range cells {
		if !known[m] {
			extra = append(extra, m)
		}
	}
	sort.Strings(extra)
	t.MetricOrder = append(t.MetricOrder, extra...)
	t.Rows = append(t.Rows, Row{Factors: factors, Labels: labels, Cells: cells})
}

// Render returns the table as aligned ASCII text.
func (t *Table) Render() string {
	headers := make([]string, 0, len(t.FactorOrder)+len(t.LabelOrder)+len(t.MetricOrder))
	headers = append(headers, t.FactorOrder...)
	headers = append(headers, t.LabelOrder...)
	headers = append(headers, t.MetricOrder...)
	rows := make([][]string, 0, len(t.Rows)+1)
	rows = append(rows, headers)
	for _, r := range t.Rows {
		cells := make([]string, 0, len(headers))
		for _, f := range t.FactorOrder {
			cells = append(cells, trimFloat(r.Factors[f]))
		}
		for _, l := range t.LabelOrder {
			cells = append(cells, r.Labels[l])
		}
		for _, m := range t.MetricOrder {
			if s, ok := r.Cells[m]; ok && s.N() > 0 {
				if s.N() == 1 {
					cells = append(cells, fmt.Sprintf("%.5g", s.Mean()))
				} else {
					cells = append(cells, fmt.Sprintf("%.5g ±%.2g", s.Mean(), s.SE()))
				}
			} else {
				cells = append(cells, "-")
			}
		}
		rows = append(rows, cells)
	}
	widths := make([]int, len(headers))
	for _, row := range rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	out := fmt.Sprintf("## %s\n", t.Caption)
	for ri, row := range rows {
		line := ""
		for i, c := range row {
			line += fmt.Sprintf("%-*s", widths[i]+2, c)
		}
		out += line + "\n"
		if ri == 0 {
			sep := ""
			for _, w := range widths {
				for j := 0; j < w; j++ {
					sep += "-"
				}
				sep += "  "
			}
			out += sep + "\n"
		}
	}
	return out
}

// CSV returns the table in CSV form (mean and SE columns per metric).
func (t *Table) CSV() string {
	out := ""
	for i, f := range t.FactorOrder {
		if i > 0 {
			out += ","
		}
		out += f
	}
	for _, l := range t.LabelOrder {
		out += "," + l
	}
	for _, m := range t.MetricOrder {
		out += "," + m + "_mean," + m + "_se," + m + "_n"
	}
	out += "\n"
	for _, r := range t.Rows {
		line := ""
		for i, f := range t.FactorOrder {
			if i > 0 {
				line += ","
			}
			line += trimFloat(r.Factors[f])
		}
		for _, l := range t.LabelOrder {
			line += "," + r.Labels[l]
		}
		for _, m := range t.MetricOrder {
			if s, ok := r.Cells[m]; ok && s.N() > 0 {
				line += fmt.Sprintf(",%g,%g,%d", s.Mean(), s.SE(), s.N())
			} else {
				line += ",,,0"
			}
		}
		out += line + "\n"
	}
	return out
}

func trimFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
