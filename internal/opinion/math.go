package opinion

import "math"

// Small math helpers kept local so the package reads without qualifiers.

func log2(x float64) float64 { return math.Log2(x) }

func sqrt(x float64) float64 { return math.Sqrt(x) }
