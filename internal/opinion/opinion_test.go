package opinion

import (
	"math"
	"testing"
	"testing/quick"

	"plurality/internal/xrand"
)

func TestCountOf(t *testing.T) {
	a := []Opinion{0, 1, 1, 2, 2, 2, None}
	c := CountOf(a, 3)
	want := Counts{1, 2, 3}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("counts %v, want %v", c, want)
		}
	}
	if c.Total() != 6 {
		t.Fatalf("Total() = %d, want 6 (None skipped)", c.Total())
	}
}

func TestCountOfOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range opinion did not panic")
		}
	}()
	CountOf([]Opinion{5}, 3)
}

func TestTopTwo(t *testing.T) {
	cases := []struct {
		c      Counts
		first  int
		second int
	}{
		{Counts{5, 3, 1}, 0, 1},
		{Counts{1, 3, 5}, 2, 1},
		{Counts{2, 2, 1}, 0, 1}, // tie toward smaller index
		{Counts{7}, 0, -1},
		{Counts{0, 0, 4}, 2, 0},
	}
	for _, tc := range cases {
		f, s := tc.c.TopTwo()
		if f != tc.first || s != tc.second {
			t.Errorf("TopTwo(%v) = (%d,%d), want (%d,%d)", tc.c, f, s, tc.first, tc.second)
		}
	}
}

func TestBias(t *testing.T) {
	if got := (Counts{60, 30, 10}).Bias(); math.Abs(got-2) > 1e-12 {
		t.Errorf("Bias = %v, want 2", got)
	}
	if got := (Counts{10, 0, 0}).Bias(); got != 10 {
		t.Errorf("monochromatic Bias = %v, want pseudo-infinite 10", got)
	}
	if got := (Counts{0, 0}).Bias(); got != 1 {
		t.Errorf("empty Bias = %v, want 1", got)
	}
}

func TestAdditiveGap(t *testing.T) {
	if got := (Counts{60, 30, 10}).AdditiveGap(); got != 30 {
		t.Errorf("AdditiveGap = %d, want 30", got)
	}
}

func TestCollisionProb(t *testing.T) {
	// Uniform over k colors: p = 1/k.
	c := Counts{25, 25, 25, 25}
	if got := c.CollisionProb(); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("CollisionProb = %v, want 0.25", got)
	}
	// Monochromatic: p = 1.
	if got := (Counts{9, 0}).CollisionProb(); math.Abs(got-1) > 1e-12 {
		t.Errorf("CollisionProb monochromatic = %v, want 1", got)
	}
}

func TestCollisionProbBounds(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		c := make(Counts, len(raw))
		total := 0
		for i, v := range raw {
			c[i] = int(v)
			total += int(v)
		}
		if total == 0 {
			return c.CollisionProb() == 0
		}
		p := c.CollisionProb()
		return p >= 1/float64(len(c))-1e-12 && p <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestRemark2LowerBound(t *testing.T) {
	// Remark 2: within a generation, p >= (α²+k-1)/(α+k-1)², with equality
	// when all minority colors are equal. PlantedBias realizes exactly that
	// worst case, so measured p must match the bound closely and never fall
	// below it.
	r := xrand.New(1)
	for _, k := range []int{2, 5, 20} {
		for _, alpha := range []float64{1.1, 2, 10} {
			a := PlantedBias(100000, k, alpha, r)
			c := CountOf(a, k)
			p := c.CollisionProb()
			bound := RemarkLowerBound(c.Bias(), k)
			if p < bound-1e-9 {
				t.Errorf("k=%d alpha=%v: p=%v below Remark 2 bound %v", k, alpha, p, bound)
			}
			if p > bound*1.02 {
				t.Errorf("k=%d alpha=%v: planted worst case p=%v far above bound %v",
					k, alpha, p, bound)
			}
		}
	}
}

func TestMonochromatic(t *testing.T) {
	if !(Counts{0, 5, 0}).Monochromatic() {
		t.Error("single-color counts not detected as monochromatic")
	}
	if (Counts{1, 5}).Monochromatic() {
		t.Error("two-color counts detected as monochromatic")
	}
	if !(Counts{0, 0}).Monochromatic() {
		t.Error("empty counts should count as monochromatic")
	}
}

func TestSortedDescending(t *testing.T) {
	c := Counts{3, 9, 1, 9}
	idx := c.SortedDescending()
	want := []int{1, 3, 0, 2}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("SortedDescending = %v, want %v", idx, want)
		}
	}
}

func TestPlantedBiasRealizesAlpha(t *testing.T) {
	r := xrand.New(2)
	for _, tc := range []struct {
		n, k  int
		alpha float64
	}{
		{10000, 2, 1.5}, {10000, 10, 2}, {100000, 50, 1.05},
	} {
		a := PlantedBias(tc.n, tc.k, tc.alpha, r)
		if len(a) != tc.n {
			t.Fatalf("len = %d, want %d", len(a), tc.n)
		}
		c := CountOf(a, tc.k)
		if got := c.Bias(); math.Abs(got-tc.alpha) > 0.05*tc.alpha {
			t.Errorf("n=%d k=%d: bias %v, want ~%v", tc.n, tc.k, got, tc.alpha)
		}
		f, _ := c.TopTwo()
		if f != 0 {
			t.Errorf("plurality opinion is %d, want 0", f)
		}
	}
}

func TestPlantedBiasShuffled(t *testing.T) {
	r := xrand.New(3)
	a := PlantedBias(1000, 2, 1.5, r)
	// The first 100 nodes should not all share the plurality opinion.
	all0 := true
	for _, o := range a[:100] {
		if o != 0 {
			all0 = false
			break
		}
	}
	if all0 {
		t.Error("assignment does not look shuffled")
	}
}

func TestPlantedGapExact(t *testing.T) {
	r := xrand.New(4)
	a := PlantedGap(1003, 3, 100, r)
	c := CountOf(a, 3)
	if c.Total() != 1003 {
		t.Fatalf("total %d, want 1003", c.Total())
	}
	f, s := c.TopTwo()
	if f != 0 {
		t.Fatalf("plurality is %d", f)
	}
	if gap := c[f] - c[s]; gap < 100 {
		t.Errorf("gap %d, want >= 100", gap)
	}
}

func TestUniformCoversSupport(t *testing.T) {
	r := xrand.New(5)
	a := Uniform(10000, 7, r)
	c := CountOf(a, 7)
	for i, v := range c {
		if v == 0 {
			t.Errorf("opinion %d unsupported in uniform assignment", i)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := xrand.New(6)
	a := Zipf(50000, 10, 1.2, r)
	c := CountOf(a, 10)
	if c[0] <= c[9] {
		t.Errorf("Zipf assignment not skewed: c0=%d c9=%d", c[0], c[9])
	}
}

func TestFromCountsExact(t *testing.T) {
	r := xrand.New(7)
	a := FromCounts([]int{5, 0, 3}, r)
	c := CountOf(a, 3)
	if c[0] != 5 || c[1] != 0 || c[2] != 3 {
		t.Fatalf("FromCounts realized %v", c)
	}
}

func TestBiasPermutationInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		a := PlantedBias(500, 4, 2, r)
		c1 := CountOf(a, 4)
		r.Shuffle(len(a), func(i, j int) { a[i], a[j] = a[j], a[i] })
		c2 := CountOf(a, 4)
		return c1.Bias() == c2.Bias() && c1.CollisionProb() == c2.CollisionProb()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMonochromaticDistance(t *testing.T) {
	// Monochromatic: md = 1. Uniform over k: md = k.
	if got := (Counts{10, 0, 0}).MonochromaticDistance(); math.Abs(got-1) > 1e-12 {
		t.Errorf("monochromatic md = %v", got)
	}
	if got := (Counts{5, 5, 5, 5}).MonochromaticDistance(); math.Abs(got-4) > 1e-12 {
		t.Errorf("uniform md = %v, want 4", got)
	}
	// Bias 2 over two colors: 1 + (1/2)² = 1.25.
	if got := (Counts{20, 10}).MonochromaticDistance(); math.Abs(got-1.25) > 1e-12 {
		t.Errorf("biased md = %v, want 1.25", got)
	}
}

func TestMonochromaticDistanceBounds(t *testing.T) {
	f := func(raw []uint8) bool {
		c := make(Counts, 0, len(raw))
		total := 0
		for _, v := range raw {
			c = append(c, int(v))
			total += int(v)
		}
		if len(c) == 0 || total == 0 {
			return true
		}
		md := c.MonochromaticDistance()
		return md >= 1-1e-12 && md <= float64(len(c))+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMinBias(t *testing.T) {
	if got := MinBias(100, 1); got != 1 {
		t.Errorf("MinBias(k=1) = %v", got)
	}
	got := MinBias(1<<20, 4)
	want := 1 + 4*20.0/math.Sqrt(1<<20)*2
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("MinBias = %v, want %v", got, want)
	}
	if MinBias(1000, 10) <= 1 {
		t.Error("MinBias should exceed 1 for k > 1")
	}
}
