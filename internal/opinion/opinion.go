// Package opinion models the input of the plurality-consensus problem: an
// assignment of one of k colors (opinions) to each of n nodes, together with
// the bias statistics the paper's analysis is parametrized by — the
// multiplicative bias α between the two most-supported colors (§2.2), the
// additive gap, and the collision probability p = Σ c_j² that drives
// generation birth sizes.
package opinion

import (
	"fmt"
	"sort"
)

// Opinion identifies a color. Opinions are dense integers in [0, k).
type Opinion int32

// None marks the absence of an opinion (used by baselines with an undecided
// state; the paper's protocols never hold it).
const None Opinion = -1

// Counts holds the number of supporters of each opinion.
type Counts []int

// CountOf tallies the opinions in assignment a over support size k.
// Nodes holding None are skipped.
func CountOf(a []Opinion, k int) Counts {
	c := make(Counts, k)
	for _, o := range a {
		if o == None {
			continue
		}
		if int(o) < 0 || int(o) >= k {
			panic(fmt.Sprintf("opinion: value %d out of range k=%d", o, k))
		}
		c[o]++
	}
	return c
}

// Total returns the number of counted nodes.
func (c Counts) Total() int {
	t := 0
	for _, v := range c {
		t += v
	}
	return t
}

// TopTwo returns the indices of the most- and second-most-supported
// opinions. Ties are broken toward the smaller index, deterministically.
// With k == 1 the second return is -1.
func (c Counts) TopTwo() (first, second int) {
	if len(c) == 0 {
		panic("opinion: TopTwo on empty counts")
	}
	first, second = 0, -1
	for i := 1; i < len(c); i++ {
		switch {
		case c[i] > c[first]:
			second = first
			first = i
		case second == -1 || c[i] > c[second]:
			second = i
		}
	}
	return first, second
}

// Bias returns the multiplicative bias α = c_a / c_b between the dominant
// and second-dominant opinions. If the second-dominant opinion has no
// supporters (or k == 1) it returns +Inf represented as the count of the
// winner (callers treat bias >= n as "effectively monochromatic"); if the
// assignment is empty it returns 1.
func (c Counts) Bias() float64 {
	a, b := c.TopTwo()
	if b < 0 || c[b] == 0 {
		if c[a] == 0 {
			return 1
		}
		return float64(c[a]) // pseudo-infinite: larger than any real ratio
	}
	return float64(c[a]) / float64(c[b])
}

// AdditiveGap returns c_a - c_b for the top two opinions.
func (c Counts) AdditiveGap() int {
	a, b := c.TopTwo()
	if b < 0 {
		return c[a]
	}
	return c[a] - c[b]
}

// Fractions returns the opinion frequencies c_j / total. On an empty
// assignment all fractions are zero.
func (c Counts) Fractions() []float64 {
	t := c.Total()
	f := make([]float64, len(c))
	if t == 0 {
		return f
	}
	for i, v := range c {
		f[i] = float64(v) / float64(t)
	}
	return f
}

// CollisionProb returns p = Σ_j c_j², the probability that two independently
// sampled supporters share a color (the paper's p_{i,t}). It is 0 on an
// empty assignment.
func (c Counts) CollisionProb() float64 {
	t := float64(c.Total())
	if t == 0 {
		return 0
	}
	p := 0.0
	for _, v := range c {
		f := float64(v) / t
		p += f * f
	}
	return p
}

// Monochromatic reports whether at most one opinion has supporters.
func (c Counts) Monochromatic() bool {
	seen := false
	for _, v := range c {
		if v > 0 {
			if seen {
				return false
			}
			seen = true
		}
	}
	return true
}

// SortedDescending returns opinion indices ordered by decreasing support
// (ties toward smaller index). Useful for reporting.
func (c Counts) SortedDescending() []int {
	idx := make([]int, len(c))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool { return c[idx[i]] > c[idx[j]] })
	return idx
}

// RemarkLowerBound returns the paper's Remark 2 lower bound on the collision
// probability within a generation: p >= (α² + k - 1) / (α + k - 1)².
func RemarkLowerBound(alpha float64, k int) float64 {
	kk := float64(k)
	den := (alpha + kk - 1) * (alpha + kk - 1)
	return (alpha*alpha + kk - 1) / den
}

// MonochromaticDistance returns the measure md(c̄) = Σ_j (c_j/c_a)² of
// Becchetti et al. (SODA'15), cited in the paper's related work: the
// squared color fractions normalized by the dominant one. It ranges from 1
// (monochromatic) to k (uniform) and parametrizes the running time of the
// k-opinion undecided-state dynamics, so the shoot-out workloads report it
// for context. It panics on an empty support.
func (c Counts) MonochromaticDistance() float64 {
	a, _ := c.TopTwo()
	if c[a] == 0 {
		panic("opinion: MonochromaticDistance of empty counts")
	}
	ca := float64(c[a])
	md := 0.0
	for _, v := range c {
		f := float64(v) / ca
		md += f * f
	}
	return md
}
