package opinion

import (
	"fmt"

	"plurality/internal/snap"
)

// EncodeSlice writes an opinion assignment in the canonical checkpoint
// form (length-prefixed int32s; None is -1).
func EncodeSlice(w *snap.Writer, a []Opinion) {
	w.Len32(len(a))
	for _, o := range a {
		w.I32(int32(o))
	}
}

// DecodeSlice reads an assignment written by EncodeSlice, validating every
// value against k opinions (None allowed).
func DecodeSlice(r *snap.Reader, k int) ([]Opinion, error) {
	n := r.Len32(4)
	if err := r.Err(); err != nil {
		return nil, err
	}
	a := make([]Opinion, n)
	for i := range a {
		o := Opinion(r.I32())
		if r.Err() != nil {
			return nil, r.Err()
		}
		if o != None && (o < 0 || int(o) >= k) {
			return nil, r.Fail(fmt.Errorf("%w: opinion %d outside [0, %d)", snap.ErrCorrupt, o, k))
		}
		a[i] = o
	}
	return a, nil
}

// EncodeCounts writes a per-opinion tally.
func EncodeCounts(w *snap.Writer, c Counts) { w.Ints([]int(c)) }

// DecodeCounts reads a tally written by EncodeCounts, validating its length
// against k.
func DecodeCounts(r *snap.Reader, k int) (Counts, error) {
	vs := r.Ints()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if len(vs) != k {
		return nil, r.Fail(fmt.Errorf("%w: %d counts for k=%d", snap.ErrCorrupt, len(vs), k))
	}
	return Counts(vs), nil
}
