package opinion

import (
	"fmt"

	"plurality/internal/xrand"
)

// PlantedBias builds an n-node assignment over k opinions in which opinion 0
// has multiplicative bias approximately alpha over each other opinion: the
// non-plurality opinions share the remainder as evenly as possible. This is
// the worst-case profile from Remark 2 (all minority colors equal) and the
// canonical input of the paper's theorems. The assignment is returned in a
// deterministically shuffled order driven by r, so node index carries no
// information. It panics on k <= 0, n < 0, or alpha < 1.
func PlantedBias(n, k int, alpha float64, r *xrand.RNG) []Opinion {
	if k <= 0 || n < 0 {
		panic(fmt.Sprintf("opinion: PlantedBias with n=%d k=%d", n, k))
	}
	if alpha < 1 {
		panic(fmt.Sprintf("opinion: PlantedBias with alpha=%v < 1", alpha))
	}
	// c_a = alpha / (alpha + k - 1) fraction; the rest split evenly.
	counts := make([]int, k)
	ca := int(float64(n) * alpha / (alpha + float64(k) - 1))
	if ca > n {
		ca = n
	}
	counts[0] = ca
	rem := n - ca
	for i := 1; i < k; i++ {
		share := rem / (k - i)
		counts[i] = share
		rem -= share
	}
	counts[0] += rem // leftover from integer division stays with plurality
	return fromCountsShuffled(counts, r)
}

// PlantedGap builds an assignment in which opinion 0 has exactly gap more
// supporters than each other opinion (as close as integer arithmetic
// allows); related work often states bias additively, and E12 uses this to
// align workloads across protocols.
func PlantedGap(n, k, gap int, r *xrand.RNG) []Opinion {
	if k <= 0 || n < 0 || gap < 0 {
		panic(fmt.Sprintf("opinion: PlantedGap with n=%d k=%d gap=%d", n, k, gap))
	}
	base := (n - gap) / k
	if base < 0 {
		base = 0
	}
	counts := make([]int, k)
	for i := range counts {
		counts[i] = base
	}
	counts[0] += n - base*k // plurality absorbs gap and rounding
	return fromCountsShuffled(counts, r)
}

// Uniform assigns each node an independent uniform opinion; the α ≈ 1
// regime used for failure-injection tests.
func Uniform(n, k int, r *xrand.RNG) []Opinion {
	if k <= 0 || n < 0 {
		panic(fmt.Sprintf("opinion: Uniform with n=%d k=%d", n, k))
	}
	a := make([]Opinion, n)
	for i := range a {
		a[i] = Opinion(r.Intn(k))
	}
	return a
}

// Zipf assigns opinions i.i.d. from a Zipf(s) law over k colors — the
// skewed "plurality with a long tail" workload motivating the paper's
// community-detection and polling applications.
func Zipf(n, k int, s float64, r *xrand.RNG) []Opinion {
	z := xrand.NewZipf(k, s)
	a := make([]Opinion, n)
	for i := range a {
		a[i] = Opinion(z.Sample(r))
	}
	return a
}

// FromCounts builds an assignment realizing the given counts exactly, in
// shuffled node order.
func FromCounts(counts []int, r *xrand.RNG) []Opinion {
	for i, c := range counts {
		if c < 0 {
			panic(fmt.Sprintf("opinion: FromCounts with counts[%d]=%d", i, c))
		}
	}
	return fromCountsShuffled(counts, r)
}

func fromCountsShuffled(counts []int, r *xrand.RNG) []Opinion {
	n := 0
	for _, c := range counts {
		n += c
	}
	a := make([]Opinion, 0, n)
	for op, c := range counts {
		for j := 0; j < c; j++ {
			a = append(a, Opinion(op))
		}
	}
	r.Shuffle(len(a), func(i, j int) { a[i], a[j] = a[j], a[i] })
	return a
}

// MinBias returns the smallest initial bias Theorem 1 admits for the given
// n and k: 1 + (k·log₂ n/√n)·log₂ k. For k = 1 it returns 1.
func MinBias(n, k int) float64 {
	if n <= 1 || k <= 1 {
		return 1
	}
	return 1 + float64(k)*log2(float64(n))/sqrt(float64(n))*log2(float64(k))
}
