package adversary

import (
	"reflect"
	"testing"

	"plurality/internal/sim"
	"plurality/internal/snap"
	"plurality/internal/xrand"
)

// drawSequence collects node's first k delay decisions through view v.
func drawSequence(v *ShardView, node, k int, lat sim.Latency) []float64 {
	out := make([]float64, k)
	for i := range out {
		out[i] = v.DelayExtra(node, lat)
	}
	return out
}

// TestShardViewOrderIndependence pins the tentpole property of the
// node-keyed API: a node's decision sequence is a pure function of (config,
// seed, node) — independent of which view draws it, and of how draws for
// other nodes interleave with it.
func TestShardViewOrderIndependence(t *testing.T) {
	cfg := Config{Kind: Delay, Fraction: 0.5, Rate: 2, N: 8}
	lat := sim.ExpLatency{Rate: 1}
	build := func() *State {
		s, err := New(cfg, xrand.New(99))
		if err != nil {
			t.Fatal(err)
		}
		s.ShardSetup()
		return s
	}

	// Reference: one view, nodes drawn strictly in order.
	ref := build()
	refView := ref.View()
	want := make(map[int][]float64)
	for node := 0; node < cfg.N; node++ {
		want[node] = drawSequence(refView, node, 6, lat)
	}

	// Same run, two views, draws interleaved node-by-node in reverse with
	// the views alternating — a schedule no draw-order stream reproduces.
	alt := build()
	va, vb := alt.View(), alt.View()
	got := make(map[int][]float64)
	for i := 0; i < 6; i++ {
		for node := cfg.N - 1; node >= 0; node-- {
			v := va
			if (i+node)%2 == 0 {
				v = vb
			}
			got[node] = append(got[node], v.DelayExtra(node, lat))
		}
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("node-keyed decisions depend on draw interleaving:\n got %v\nwant %v", got, want)
	}
	if total := va.Counters.Add(vb.Counters); total != refView.Counters {
		t.Fatalf("folded view counters %+v != reference %+v", total, refView.Counters)
	}
}

// TestShardViewKindShortCircuit pins that non-matching kinds draw nothing:
// a Drop query must not advance the node counter a Delay adversary would
// use, mirroring the serial hooks' short-circuits.
func TestShardViewKindShortCircuit(t *testing.T) {
	s, err := New(Config{Kind: Delay, Fraction: 0.5, Rate: 1, N: 4}, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	s.ShardSetup()
	v := s.View()
	lat := sim.ExpLatency{Rate: 1}
	first := v.DelayExtra(0, lat)

	s2, err := New(Config{Kind: Delay, Fraction: 0.5, Rate: 1, N: 4}, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	s2.ShardSetup()
	v2 := s2.View()
	if v2.DropMessage(0) {
		t.Fatal("Delay adversary dropped a message")
	}
	if v2.Lie(0, 3) != 3 {
		t.Fatal("Delay adversary lied")
	}
	if got := v2.DelayExtra(0, lat); got != first {
		t.Fatalf("Drop/Lie queries advanced the Delay stream: %v != %v", got, first)
	}
}

// TestShardStateRoundtrip pins that EncodeShardState/DecodeShardState plus
// per-view counters reproduce the decision stream and totals exactly at a
// mid-run cut.
func TestShardStateRoundtrip(t *testing.T) {
	cfg := Config{Kind: Drop, Fraction: 0.4, N: 6}
	s, err := New(cfg, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	s.ShardSetup()
	v := s.View()
	for i := 0; i < 20; i++ {
		v.DropMessage(i % cfg.N)
	}

	w := &snap.Writer{}
	s.EncodeShardState(w)
	v.EncodeState(w)

	s2, err := New(cfg, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	s2.ShardSetup()
	r := snap.NewReader(w.Bytes())
	if err := s2.DecodeShardState(r); err != nil {
		t.Fatal(err)
	}
	v2 := s2.View()
	if err := v2.DecodeState(r); err != nil {
		t.Fatal(err)
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
	if v2.Counters != v.Counters {
		t.Fatalf("restored counters %+v != captured %+v", v2.Counters, v.Counters)
	}
	for i := 20; i < 40; i++ {
		a, b := v.DropMessage(i%cfg.N), v2.DropMessage(i%cfg.N)
		if a != b {
			t.Fatalf("decision %d diverged after restore: %v != %v", i, a, b)
		}
	}
}
