// Package adversary is the pluggable fault layer shared by every engine: it
// owns the adversarial randomness, the deterministic victim pools, and the
// per-kind decision hooks (crash/recovery churn, message delay, message
// drop, Byzantine opinion lying), while the engines keep owning the state
// the decisions act on (crashed flags, alive counts, event scheduling).
//
// The split is deliberate. Engine hot paths stay byte-identical when no
// adversary is configured — every hook is behind a nil check and the
// adversary draws from its own generator, never from an engine stream — and
// engine snapshot layouts stay unchanged: adversary state (generator words,
// churn cursor, counters) is appended to an engine's payload only when the
// run is adversarial, so pre-adversary blobs load unchanged.
//
// Hook placement follows the three seams named in the roadmap: node
// activation (is the node crashed? is it time for the next churn toggle?),
// partner sampling (is the sampled contact's reply dropped?), and message or
// state exchange (is the delivery delayed? is the reported opinion a lie?).
package adversary

import (
	"fmt"
	"math"

	"plurality/internal/sim"
	"plurality/internal/snap"
	"plurality/internal/xrand"
)

// Kind selects the adversarial behavior of a run.
type Kind int

const (
	// None disables the adversary; the zero Config means an honest run.
	None Kind = iota
	// Crash fail-stops a Fraction of the nodes at time At. With Rate > 0
	// the one-shot crash becomes churn: victims toggle between crashed and
	// recovered one at a time, with Exp(Rate) gaps between toggles.
	Crash
	// Delay stretches message deliveries: each message is delayed with
	// probability Fraction by Rate× an extra sample of the run's own
	// edge-latency distribution, so the slowdown stays bounded by (a
	// multiple of) the latency model rather than being arbitrary.
	Delay
	// Drop loses each sampled contact's reply independently with
	// probability Fraction; the affected node simply sees no usable state
	// from that partner.
	Drop
	// Byzantine makes a Fraction of the nodes lie about their opinion
	// whenever they are read, reporting an adversarially chosen target
	// opinion (the initial runner-up) instead of their true state.
	Byzantine
)

// String names the kind for errors and labels.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Crash:
		return "crash"
	case Delay:
		return "delay"
	case Drop:
		return "drop"
	case Byzantine:
		return "byzantine"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Config parametrizes one adversary instance. Engines construct the State
// themselves (see New) so restore paths rebuild it deterministically.
type Config struct {
	// Kind selects the behavior; None disables everything.
	Kind Kind
	// Fraction is the affected share: of nodes for Crash/Byzantine, of
	// messages for Delay/Drop.
	Fraction float64
	// Rate is the churn rate for Crash (0 = one-shot) and the latency
	// multiplier for Delay.
	Rate float64
	// At is the virtual time (or round) the Crash adversary first acts.
	At float64
	// N is the node count the victim pools are drawn over.
	N int
	// Seed seeds the adversary's private generator. New does not read it —
	// the caller builds the generator (xrand.New(Seed) for the standalone
	// kinds, a named engine substream for the legacy crash mapping) — but
	// carrying it here keeps engine configs to a single adversary field.
	Seed uint64
}

// Counters tallies every adversarial action of a run; engines surface them
// through their results and the public Stats map.
type Counters struct {
	// Crashes and Recoveries count fail-stop and churn-recovery toggles.
	Crashes, Recoveries uint64
	// Drops counts lost contact replies, Delayed counts stretched message
	// deliveries, Lies counts Byzantine opinion reads.
	Drops, Delayed, Lies uint64
}

// State is one run's adversary: configuration, private generator, victim
// pool, churn cursor and counters. It is not safe for concurrent use — like
// everything else in a run, it belongs to exactly one replication.
type State struct {
	cfg Config
	rng *xrand.RNG

	// victims is the deterministic pool (crash victims or Byzantine liars):
	// a Perm(N) prefix of the construction generator, recomputed — not
	// serialized — on restore, exactly like topology construction seeds.
	victims  []int
	isVictim []bool

	// cursor walks the victim pool round-robin under churn; nextAt is the
	// time of the next churn toggle.
	cursor int
	nextAt float64

	lieTarget int32

	// keySeed and nodeCtr drive the node-keyed decision substreams of
	// sharded runs (see sharded.go); serial runs never touch them.
	keySeed uint64
	nodeCtr []int32

	// Counters tallies the actions applied so far.
	Counters Counters
}

// New builds the adversary state for cfg, drawing the victim pool from rng;
// the generator is retained as the adversary's private stream. cfg must have
// been validated by the caller (the public AdversarySpec and the engine
// configs both do); New only guards against structurally impossible values.
func New(cfg Config, rng *xrand.RNG) (*State, error) {
	if cfg.Kind == None {
		return nil, fmt.Errorf("adversary: New with Kind None")
	}
	if cfg.N < 2 {
		return nil, fmt.Errorf("adversary: need N >= 2, got %d", cfg.N)
	}
	if cfg.Fraction < 0 || cfg.Fraction > 1 || math.IsNaN(cfg.Fraction) {
		return nil, fmt.Errorf("adversary: Fraction %v outside [0,1]", cfg.Fraction)
	}
	if cfg.Rate < 0 || math.IsNaN(cfg.Rate) || math.IsInf(cfg.Rate, 0) {
		return nil, fmt.Errorf("adversary: invalid Rate %v", cfg.Rate)
	}
	if cfg.At < 0 || math.IsNaN(cfg.At) || math.IsInf(cfg.At, 0) {
		return nil, fmt.Errorf("adversary: invalid At %v", cfg.At)
	}
	s := &State{cfg: cfg, rng: rng, nextAt: cfg.At}
	if cfg.Kind == Crash || cfg.Kind == Byzantine {
		m := int(cfg.Fraction * float64(cfg.N))
		if cfg.Kind == Crash && m >= cfg.N {
			return nil, fmt.Errorf("adversary: crash fraction %v leaves no survivors", cfg.Fraction)
		}
		s.victims = rng.Perm(cfg.N)[:m]
		s.isVictim = make([]bool, cfg.N)
		for _, v := range s.victims {
			s.isVictim[v] = true
		}
	}
	return s, nil
}

// Kind returns the configured behavior.
func (s *State) Kind() Kind { return s.cfg.Kind }

// Victims returns the deterministic victim pool (crash victims or Byzantine
// liars). Callers must not mutate it.
func (s *State) Victims() []int { return s.victims }

// Churning reports whether the Crash adversary toggles victims continuously
// (Rate > 0) rather than one-shot fail-stopping the pool at At.
func (s *State) Churning() bool { return s.cfg.Kind == Crash && s.cfg.Rate > 0 }

// NextCrashAt returns the time of the next crash/churn action, or -1 when
// the adversary has none pending (non-crash kinds, or an empty pool).
func (s *State) NextCrashAt() float64 {
	if s.cfg.Kind != Crash || len(s.victims) == 0 {
		return -1
	}
	return s.nextAt
}

// NextVictim returns the victim of the current churn toggle and advances the
// churn cursor and next-toggle time (Exp(Rate) gap). The engine decides the
// toggle's direction — crash if alive, recover if crashed — and reports it
// back through NoteCrash/NoteRecovery.
func (s *State) NextVictim() int {
	v := s.victims[s.cursor]
	s.cursor = (s.cursor + 1) % len(s.victims)
	s.nextAt += s.rng.Exp(s.cfg.Rate)
	return v
}

// DelayExtra returns the extra delivery delay for one message: 0 for
// non-Delay kinds, and with probability Fraction an extra Rate·lat sample
// drawn from the adversary's own generator. A non-zero return is counted.
func (s *State) DelayExtra(lat sim.Latency) float64 {
	if s.cfg.Kind != Delay || !s.rng.Bernoulli(s.cfg.Fraction) {
		return 0
	}
	d := s.cfg.Rate * lat.Sample(s.rng)
	if d > 0 {
		s.Counters.Delayed++
	}
	return d
}

// DropMessage reports whether one sampled contact's reply is lost (Drop kind
// only, probability Fraction). A drop is counted.
func (s *State) DropMessage() bool {
	if s.cfg.Kind != Drop || !s.rng.Bernoulli(s.cfg.Fraction) {
		return false
	}
	s.Counters.Drops++
	return true
}

// SetLieTarget fixes the opinion Byzantine liars report. Engines call it
// once after computing the initial counts (the target is the initial
// runner-up, the most disruptive consistent lie).
func (s *State) SetLieTarget(col int32) { s.lieTarget = col }

// Lie filters one opinion read: when node is a Byzantine liar the lie target
// replaces (and counts) the true opinion, otherwise col passes through.
func (s *State) Lie(node int, col int32) int32 {
	if s.cfg.Kind != Byzantine || !s.isVictim[node] {
		return col
	}
	s.Counters.Lies++
	return s.lieTarget
}

// NoteCrash and NoteRecovery record the direction the engine resolved a
// churn toggle (or one-shot crash) to.
func (s *State) NoteCrash()    { s.Counters.Crashes++ }
func (s *State) NoteRecovery() { s.Counters.Recoveries++ }

// EncodeState serializes the mutable adversary state — generator words,
// churn cursor and next-toggle time, lie target, counters — into w. The
// victim pool is a pure function of the construction seed and is recomputed
// by New on restore, so it is deliberately not serialized.
func (s *State) EncodeState(w *snap.Writer) {
	w.RNG(s.rng)
	w.Int(s.cursor)
	w.F64(s.nextAt)
	w.I32(s.lieTarget)
	w.U64(s.Counters.Crashes)
	w.U64(s.Counters.Recoveries)
	w.U64(s.Counters.Drops)
	w.U64(s.Counters.Delayed)
	w.U64(s.Counters.Lies)
}

// DecodeState restores state previously written by EncodeState into an
// adversary freshly constructed with the same Config and construction seed.
func (s *State) DecodeState(r *snap.Reader) error {
	if err := r.ReadRNG(s.rng); err != nil {
		return err
	}
	cursor := r.Int()
	nextAt := r.F64()
	lieTarget := r.I32()
	var c Counters
	c.Crashes = r.U64()
	c.Recoveries = r.U64()
	c.Drops = r.U64()
	c.Delayed = r.U64()
	c.Lies = r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if cursor < 0 || (len(s.victims) > 0 && cursor >= len(s.victims)) ||
		(len(s.victims) == 0 && cursor != 0) {
		return r.Fail(fmt.Errorf("%w: adversary cursor %d outside pool of %d", snap.ErrCorrupt, cursor, len(s.victims)))
	}
	if math.IsNaN(nextAt) || math.IsInf(nextAt, 0) {
		return r.Fail(fmt.Errorf("%w: non-finite adversary nextAt %v", snap.ErrCorrupt, nextAt))
	}
	s.cursor = cursor
	s.nextAt = nextAt
	s.lieTarget = lieTarget
	s.Counters = c
	return nil
}

// Perturb folds a divergence label into the adversary generator (see
// xrand.RNG.Perturb); label 0 is the identity.
func (s *State) Perturb(label uint64) {
	if label == 0 {
		return
	}
	s.rng.Perturb(label)
}
