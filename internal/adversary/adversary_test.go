package adversary

import (
	"testing"

	"plurality/internal/sim"
	"plurality/internal/snap"
	"plurality/internal/xrand"
)

// TestVictimPoolDeterministic pins that the victim pool is a pure function
// of (Config, construction seed) — the property that lets restore recompute
// it instead of serializing it.
func TestVictimPoolDeterministic(t *testing.T) {
	cfg := Config{Kind: Crash, Fraction: 0.3, N: 50}
	a, err := New(cfg, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Victims()) != 15 {
		t.Fatalf("pool size %d, want 15", len(a.Victims()))
	}
	for i := range a.Victims() {
		if a.Victims()[i] != b.Victims()[i] {
			t.Fatalf("victim %d differs between identically seeded adversaries", i)
		}
	}
	c, err := New(cfg, xrand.New(8))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Victims() {
		if a.Victims()[i] != c.Victims()[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds drew the same victim pool")
	}
}

// TestNewRejectsBadConfig covers New's structural guards.
func TestNewRejectsBadConfig(t *testing.T) {
	rng := func() *xrand.RNG { return xrand.New(1) }
	for _, cfg := range []Config{
		{Kind: None, N: 10},
		{Kind: Crash, N: 1},
		{Kind: Crash, N: 10, Fraction: -0.5},
		{Kind: Crash, N: 10, Fraction: 2},
		{Kind: Crash, N: 10, Fraction: 1}, // no survivors
		{Kind: Delay, N: 10, Fraction: 0.5, Rate: -1},
		{Kind: Crash, N: 10, Fraction: 0.5, At: -3},
	} {
		if _, err := New(cfg, rng()); err == nil {
			t.Errorf("New(%+v) succeeded, want error", cfg)
		}
	}
}

// TestChurnSchedule pins the churn walk: round-robin over the pool with
// strictly increasing toggle times.
func TestChurnSchedule(t *testing.T) {
	s, err := New(Config{Kind: Crash, Fraction: 0.2, Rate: 2, At: 1, N: 20}, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Churning() {
		t.Fatal("Rate > 0 should churn")
	}
	if got := s.NextCrashAt(); got != 1 {
		t.Fatalf("first toggle at %g, want the configured At=1", got)
	}
	pool := s.Victims()
	last := s.NextCrashAt()
	for i := 0; i < 2*len(pool); i++ {
		v := s.NextVictim()
		if v != pool[i%len(pool)] {
			t.Fatalf("toggle %d hit %d, want round-robin %d", i, v, pool[i%len(pool)])
		}
		if next := s.NextCrashAt(); next <= last {
			t.Fatalf("toggle times not increasing: %g after %g", next, last)
		} else {
			last = next
		}
	}
}

// TestLieFiltersVictimsOnly pins the Byzantine read filter and its counter.
func TestLieFiltersVictimsOnly(t *testing.T) {
	s, err := New(Config{Kind: Byzantine, Fraction: 0.25, N: 40}, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	s.SetLieTarget(2)
	liar := s.Victims()[0]
	honest := -1
	flags := make([]bool, 40)
	for _, v := range s.Victims() {
		flags[v] = true
	}
	for v, lies := range flags {
		if !lies {
			honest = v
			break
		}
	}
	if got := s.Lie(honest, 0); got != 0 {
		t.Errorf("honest node's opinion rewritten to %d", got)
	}
	if got := s.Lie(liar, 0); got != 2 {
		t.Errorf("liar reported %d, want the lie target 2", got)
	}
	if s.Counters.Lies != 1 {
		t.Errorf("Lies counter %d, want 1", s.Counters.Lies)
	}
}

// TestStateRoundtrip pins that encode → decode restores the generator,
// cursor, toggle time and counters, so a restored adversary continues the
// same future. The drop stream doubles as the determinism probe.
func TestStateRoundtrip(t *testing.T) {
	mk := func() *State {
		s, err := New(Config{Kind: Drop, Fraction: 0.5, N: 10}, xrand.New(21))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a := mk()
	for i := 0; i < 100; i++ {
		a.DropMessage()
	}
	w := &snap.Writer{}
	a.EncodeState(w)

	b := mk()
	r := snap.NewReader(w.Bytes())
	if err := b.DecodeState(r); err != nil {
		t.Fatal(err)
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
	if b.Counters != a.Counters {
		t.Fatalf("restored counters %+v != captured %+v", b.Counters, a.Counters)
	}
	for i := 0; i < 200; i++ {
		if a.DropMessage() != b.DropMessage() {
			t.Fatalf("drop stream diverges %d draws after restore", i)
		}
	}
}

// TestDelayBounded pins that delay stays within Rate× the latency model and
// is counted only when non-zero.
func TestDelayBounded(t *testing.T) {
	s, err := New(Config{Kind: Delay, Fraction: 1, Rate: 3, N: 10}, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	lat := sim.ConstLatency{D: 2}
	for i := 0; i < 50; i++ {
		if d := s.DelayExtra(lat); d != 6 {
			t.Fatalf("delay %g under Const(2) with Rate 3, want exactly 6", d)
		}
	}
	if s.Counters.Delayed != 50 {
		t.Errorf("Delayed counter %d, want 50", s.Counters.Delayed)
	}
}
