// Sharded execution support: node-keyed decision draws.
//
// The serial hooks (State.DelayExtra, State.DropMessage) consume the
// adversary's single generator in event order, which is exactly what a
// sharded run cannot reproduce — shards interleave events differently at
// every worker count, so a shared draw-order stream would make adversarial
// decisions depend on scheduling. The sharded engines instead key every
// decision by the acting node: a per-node draw counter plus a run-wide key
// seed define an independent substream per (node, decision index), so the
// decision sequence each node observes is a pure function of (spec, seed)
// no matter how shards interleave. Each shard draws through its own
// ShardView (private scratch generator, private counters), which keeps the
// hot path free of cross-shard writes: the only shared mutable state is the
// per-node counter, and node v's messages originate only on v's owner
// shard, so each counter has exactly one writer.
package adversary

import (
	"fmt"

	"plurality/internal/sim"
	"plurality/internal/snap"
	"plurality/internal/xrand"
)

// Add returns the field-wise sum of two counter sets; engines fold their
// per-shard view counters into the base state's counters with it.
func (c Counters) Add(d Counters) Counters {
	c.Crashes += d.Crashes
	c.Recoveries += d.Recoveries
	c.Drops += d.Drops
	c.Delayed += d.Delayed
	c.Lies += d.Lies
	return c
}

// ShardSetup switches the adversary into node-keyed mode: it draws the
// run-wide key seed from the private generator and allocates the per-node
// draw counters. Sharded engines call it exactly once, right after New —
// including on restore, before DecodeState, so the key seed is recomputed
// from the construction generator rather than serialized (the same
// recompute-don't-serialize rule the victim pool follows).
func (s *State) ShardSetup() {
	s.keySeed = s.rng.Uint64()
	s.nodeCtr = make([]int32, s.cfg.N)
}

// View returns a fresh per-shard decision view. Each shard of a sharded run
// owns one view; views share the node counters (single writer per node, see
// the package comment above) but keep private scratch generators and
// private counters, so concurrent shards never write the same memory.
func (s *State) View() *ShardView {
	if s.nodeCtr == nil {
		panic("adversary: View before ShardSetup")
	}
	return &ShardView{s: s}
}

// ShardView is one shard's handle on the adversary: node-keyed variants of
// the serial decision hooks plus a private counter set the engine folds at
// the end of the run (Counters.Add is associative, so fold order and shard
// count do not affect the totals).
type ShardView struct {
	s       *State
	scratch xrand.RNG
	// Counters tallies the decisions drawn through this view.
	Counters Counters
}

// draw reseeds the scratch generator for node's next keyed decision and
// advances the node's counter. splitmix-style mixing of (keySeed, node,
// counter) is injective over the realistic ranges, so distinct decisions
// get distinct, well-separated streams.
func (v *ShardView) draw(node int) *xrand.RNG {
	s := v.s
	ctr := s.nodeCtr[node]
	s.nodeCtr[node] = ctr + 1
	v.scratch.Reseed(s.keySeed ^ (uint64(uint32(node))<<32 | uint64(uint32(ctr))))
	return &v.scratch
}

// DelayExtra is the node-keyed form of State.DelayExtra: the extra delivery
// delay for one message originated by node. Non-Delay kinds return 0
// without drawing (and without advancing node's counter), mirroring the
// serial hook's short-circuit.
func (v *ShardView) DelayExtra(node int, lat sim.Latency) float64 {
	if v.s.cfg.Kind != Delay {
		return 0
	}
	g := v.draw(node)
	if !g.Bernoulli(v.s.cfg.Fraction) {
		return 0
	}
	d := v.s.cfg.Rate * lat.Sample(g)
	if d > 0 {
		v.Counters.Delayed++
	}
	return d
}

// DropMessage is the node-keyed form of State.DropMessage: whether one of
// node's sampled contact replies is lost. Non-Drop kinds draw nothing.
func (v *ShardView) DropMessage(node int) bool {
	if v.s.cfg.Kind != Drop {
		return false
	}
	if !v.draw(node).Bernoulli(v.s.cfg.Fraction) {
		return false
	}
	v.Counters.Drops++
	return true
}

// Lie filters one opinion read through this view; the decision itself is
// the same deterministic pool lookup as State.Lie (no randomness), only the
// count lands on the view so shards never share a counter word.
func (v *ShardView) Lie(node int, col int32) int32 {
	if v.s.cfg.Kind != Byzantine || !v.s.isVictim[node] {
		return col
	}
	v.Counters.Lies++
	return v.s.lieTarget
}

// EncodeShardState serializes the sharded adversary's base state: the
// serial layout (EncodeState) followed by the per-node draw counters. The
// key seed is recomputed by ShardSetup on restore and deliberately not
// serialized. Per-view counters are serialized by the engine next to the
// rest of each shard's section (see ShardView.EncodeState).
func (s *State) EncodeShardState(w *snap.Writer) {
	s.EncodeState(w)
	w.I32s(s.nodeCtr)
}

// DecodeShardState restores state written by EncodeShardState into an
// adversary rebuilt with the same Config and seed, after ShardSetup.
func (s *State) DecodeShardState(r *snap.Reader) error {
	if err := s.DecodeState(r); err != nil {
		return err
	}
	ctr := r.I32s()
	if err := r.Err(); err != nil {
		return err
	}
	if len(ctr) != s.cfg.N {
		return r.Fail(fmt.Errorf("%w: adversary node counters for %d nodes, want %d", snap.ErrCorrupt, len(ctr), s.cfg.N))
	}
	for i, c := range ctr {
		if c < 0 {
			return r.Fail(fmt.Errorf("%w: negative adversary draw counter %d for node %d", snap.ErrCorrupt, c, i))
		}
	}
	s.nodeCtr = ctr
	return nil
}

// EncodeState serializes one view's counters into w.
func (v *ShardView) EncodeState(w *snap.Writer) {
	w.U64(v.Counters.Crashes)
	w.U64(v.Counters.Recoveries)
	w.U64(v.Counters.Drops)
	w.U64(v.Counters.Delayed)
	w.U64(v.Counters.Lies)
}

// DecodeState restores counters written by ShardView.EncodeState.
func (v *ShardView) DecodeState(r *snap.Reader) error {
	v.Counters.Crashes = r.U64()
	v.Counters.Recoveries = r.U64()
	v.Counters.Drops = r.U64()
	v.Counters.Delayed = r.U64()
	v.Counters.Lies = r.U64()
	return r.Err()
}
