// Package snap provides the binary state-serialization substrate of the
// checkpoint/restore subsystem: a little-endian, length-checked byte codec
// (Writer/Reader) shared by the simulation kernel and every engine, and the
// Checkpoint request record engines consume.
//
// The codec is deliberately primitive: fixed-width integers, IEEE-754
// float64 bits and length-prefixed slices, no reflection and no varints.
// Every field an engine serializes is either plain data already (the typed
// event heap, struct-of-arrays node state, xoshiro RNG words) or is written
// in a canonical order (maps iterated in a deterministic key order by the
// caller), so encoding the same state twice yields identical bytes — which
// is what lets snapshot blobs themselves be golden-tested.
//
// Reading is sticky-error: a Reader records the first failure and every
// subsequent read returns zero values, so decoders can be written as
// straight-line field reads with a single Err check at the end. A truncated
// or oversized input surfaces as ErrTruncated, an impossible value (e.g. a
// negative length) as ErrCorrupt; neither ever panics, which the public
// decoder's fuzz test pins.
package snap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrTruncated reports that the input ended before the declared structure
// was complete.
var ErrTruncated = errors.New("snap: truncated input")

// ErrCorrupt reports structurally impossible input (bad lengths, invalid
// discriminants).
var ErrCorrupt = errors.New("snap: corrupt input")

// ErrShardCount reports a sharded snapshot resumed at a different shard
// count than it was captured at. A sharded blob's per-shard sections
// (ladders, clocks, RNG substreams, outbox arenas) only describe the shard
// layout that produced them — re-sharding a run mid-flight is not a defined
// operation, so engines reject the mismatch instead of guessing.
var ErrShardCount = errors.New("snap: snapshot shard count mismatch")

// Checkpoint is one engine's checkpoint request, threaded through the
// engine Config by the public layer. A nil *Checkpoint (or a zero one)
// disables checkpointing entirely; the hot path never consults it.
type Checkpoint struct {
	// At requests a state capture the first time the engine's native clock
	// (virtual time for event-driven engines, rounds for synchronous ones)
	// reaches this value. For event-driven engines the capture happens
	// after the last event scheduled at or before At has executed; for
	// round-based engines after the first completed round >= At. 0 (or a
	// nil Sink) disables capture. If the run terminates before At, no
	// capture happens.
	At float64
	// Halt stops the run right after the capture; the engine then returns
	// its (partial) result through the normal path. Without Halt the run
	// continues to its regular end and the snapshot is a pure side effect.
	Halt bool
	// Sink receives the captured engine state: the engine-encoded payload,
	// the native-clock value at capture, and the number of kernel events
	// executed so far (0 for round-based engines).
	Sink func(state []byte, at float64, events uint64)
	// Restore, when non-nil, resumes the run from a previously captured
	// payload instead of starting fresh: the engine performs its normal
	// deterministic setup, then overwrites all mutable state from the
	// payload. At/Sink still apply to the resumed run, so checkpoint
	// chains are possible.
	Restore []byte
	// Perturb, when non-zero, folds a divergence label into every restored
	// RNG stream (xrand.RNG.Perturb): the resumed run shares the prefix
	// history but draws an independent future — the warm-start primitive
	// for replicated parameter studies. 0 resumes the bit-exact
	// continuation.
	Perturb uint64
}

// Capturing reports whether a capture was requested.
func (c *Checkpoint) Capturing() bool { return c != nil && c.Sink != nil && c.At > 0 }

// Restoring reports whether a restore payload is present.
func (c *Checkpoint) Restoring() bool { return c != nil && c.Restore != nil }

// Writer accumulates a little-endian binary encoding. The zero value is
// ready to use.
type Writer struct {
	buf []byte
}

// Bytes returns the accumulated encoding.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// U8 writes one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool writes a bool as one byte (0 or 1).
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U32 writes a fixed 32-bit unsigned integer.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U64 writes a fixed 64-bit unsigned integer.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// I32 writes a fixed 32-bit signed integer.
func (w *Writer) I32(v int32) { w.U32(uint32(v)) }

// I64 writes a fixed 64-bit signed integer.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int writes an int as 64 bits.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// F64 writes a float64 as its IEEE-754 bit pattern, preserving it exactly.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Len32 writes a slice length. Lengths get their own method so readers can
// bound-check them against the remaining input.
func (w *Writer) Len32(n int) {
	if n < 0 || n > math.MaxInt32 {
		panic(fmt.Sprintf("snap: slice length %d out of range", n))
	}
	w.U32(uint32(n))
}

// I32s writes a length-prefixed []int32.
func (w *Writer) I32s(vs []int32) {
	w.Len32(len(vs))
	for _, v := range vs {
		w.I32(v)
	}
}

// I8s writes a length-prefixed []int8.
func (w *Writer) I8s(vs []int8) {
	w.Len32(len(vs))
	for _, v := range vs {
		w.U8(uint8(v))
	}
}

// Ints writes a length-prefixed []int (64-bit elements).
func (w *Writer) Ints(vs []int) {
	w.Len32(len(vs))
	for _, v := range vs {
		w.Int(v)
	}
}

// U32s writes a length-prefixed []uint32.
func (w *Writer) U32s(vs []uint32) {
	w.Len32(len(vs))
	for _, v := range vs {
		w.U32(v)
	}
}

// U64s writes a length-prefixed []uint64.
func (w *Writer) U64s(vs []uint64) {
	w.Len32(len(vs))
	for _, v := range vs {
		w.U64(v)
	}
}

// F64s writes a length-prefixed []float64.
func (w *Writer) F64s(vs []float64) {
	w.Len32(len(vs))
	for _, v := range vs {
		w.F64(v)
	}
}

// Bools writes a length-prefixed []bool.
func (w *Writer) Bools(vs []bool) {
	w.Len32(len(vs))
	for _, v := range vs {
		w.Bool(v)
	}
}

// Bytes writes a length-prefixed byte slice.
func (w *Writer) BytesSlice(vs []byte) {
	w.Len32(len(vs))
	w.buf = append(w.buf, vs...)
}

// Reader decodes a Writer encoding with sticky error handling: after the
// first failure every read returns the zero value and Err reports the
// failure.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a reader over buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first decoding failure, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Fail records err (the first one sticks) and returns it.
func (r *Reader) Fail(err error) error {
	if r.err == nil {
		r.err = err
	}
	return r.err
}

// take returns the next n bytes, or nil after recording ErrTruncated.
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) || r.off+n < r.off {
		r.Fail(fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrTruncated, n, r.off, len(r.buf)))
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a bool; any value other than 0 or 1 is corrupt.
func (r *Reader) Bool() bool {
	v := r.U8()
	if v > 1 {
		r.Fail(fmt.Errorf("%w: bool byte %d", ErrCorrupt, v))
		return false
	}
	return v == 1
}

// U32 reads a fixed 32-bit unsigned integer.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a fixed 64-bit unsigned integer.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I32 reads a fixed 32-bit signed integer.
func (r *Reader) I32() int32 { return int32(r.U32()) }

// I64 reads a fixed 64-bit signed integer.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int written by Writer.Int.
func (r *Reader) Int() int { return int(r.I64()) }

// F64 reads a float64 bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Len32 reads a slice length and bounds it against the remaining input,
// assuming each element occupies at least elemSize bytes; an impossible
// length is recorded as ErrTruncated so a hostile header cannot force a
// huge allocation.
func (r *Reader) Len32(elemSize int) int {
	n := int(r.U32())
	if r.err != nil {
		return 0
	}
	if elemSize < 1 {
		elemSize = 1
	}
	if n*elemSize > r.Remaining() {
		r.Fail(fmt.Errorf("%w: declared length %d exceeds %d remaining bytes", ErrTruncated, n, r.Remaining()))
		return 0
	}
	return n
}

// I32s reads a length-prefixed []int32.
func (r *Reader) I32s() []int32 {
	n := r.Len32(4)
	if r.err != nil {
		return nil
	}
	vs := make([]int32, n)
	for i := range vs {
		vs[i] = r.I32()
	}
	return vs
}

// I8s reads a length-prefixed []int8.
func (r *Reader) I8s() []int8 {
	n := r.Len32(1)
	if r.err != nil {
		return nil
	}
	vs := make([]int8, n)
	for i := range vs {
		vs[i] = int8(r.U8())
	}
	return vs
}

// Ints reads a length-prefixed []int.
func (r *Reader) Ints() []int {
	n := r.Len32(8)
	if r.err != nil {
		return nil
	}
	vs := make([]int, n)
	for i := range vs {
		vs[i] = r.Int()
	}
	return vs
}

// U32s reads a length-prefixed []uint32.
func (r *Reader) U32s() []uint32 {
	n := r.Len32(4)
	if r.err != nil {
		return nil
	}
	vs := make([]uint32, n)
	for i := range vs {
		vs[i] = r.U32()
	}
	return vs
}

// U64s reads a length-prefixed []uint64.
func (r *Reader) U64s() []uint64 {
	n := r.Len32(8)
	if r.err != nil {
		return nil
	}
	vs := make([]uint64, n)
	for i := range vs {
		vs[i] = r.U64()
	}
	return vs
}

// F64s reads a length-prefixed []float64.
func (r *Reader) F64s() []float64 {
	n := r.Len32(8)
	if r.err != nil {
		return nil
	}
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = r.F64()
	}
	return vs
}

// Bools reads a length-prefixed []bool.
func (r *Reader) Bools() []bool {
	n := r.Len32(1)
	if r.err != nil {
		return nil
	}
	vs := make([]bool, n)
	for i := range vs {
		vs[i] = r.Bool()
	}
	return vs
}

// BytesSlice reads a length-prefixed byte slice (copied out of the input).
func (r *Reader) BytesSlice() []byte {
	n := r.Len32(1)
	if r.err != nil {
		return nil
	}
	b := r.take(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// Finish returns ErrCorrupt if undecoded bytes remain, or the sticky error.
// Call it after the last field read to reject padded or mismatched input.
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if r.Remaining() != 0 {
		return r.Fail(fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, r.Remaining()))
	}
	return nil
}
