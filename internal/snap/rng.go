package snap

import (
	"fmt"

	"plurality/internal/xrand"
)

// RNG writes the four xoshiro256++ state words of g.
func (w *Writer) RNG(g *xrand.RNG) {
	st := g.State()
	w.U64(st[0])
	w.U64(st[1])
	w.U64(st[2])
	w.U64(st[3])
}

// ReadRNG restores g from four state words written by Writer.RNG. The
// all-zero state is rejected as corrupt (it is the fixed point of xoshiro).
func (r *Reader) ReadRNG(g *xrand.RNG) error {
	var st [4]uint64
	st[0] = r.U64()
	st[1] = r.U64()
	st[2] = r.U64()
	st[3] = r.U64()
	if r.err != nil {
		return r.err
	}
	if err := g.SetState(st); err != nil {
		return r.Fail(fmt.Errorf("%w: %v", ErrCorrupt, err))
	}
	return nil
}
