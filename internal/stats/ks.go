package stats

import (
	"fmt"
	"math"
	"sort"
)

// KSStatistic returns the one-sample Kolmogorov–Smirnov statistic
// D_n = sup_x |F_n(x) − F(x)| of the sample against the reference CDF.
// It does not modify the sample.
func KSStatistic(sample []float64, cdf func(float64) float64) float64 {
	if len(sample) == 0 {
		panic("stats: KSStatistic of empty sample")
	}
	sorted := make([]float64, len(sample))
	copy(sorted, sample)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	d := 0.0
	for i, x := range sorted {
		f := cdf(x)
		lo := f - float64(i)/n
		hi := float64(i+1)/n - f
		if lo > d {
			d = lo
		}
		if hi > d {
			d = hi
		}
	}
	return d
}

// KSPValue returns the asymptotic p-value for the one-sample KS statistic d
// with sample size n, using the Kolmogorov distribution series
// Q(λ) = 2 Σ (−1)^{j−1} e^{−2 j² λ²} with the Stephens small-sample
// correction. Accurate enough for hypothesis testing at conventional
// levels.
func KSPValue(d float64, n int) float64 {
	if n <= 0 {
		panic(fmt.Sprintf("stats: KSPValue with n=%d", n))
	}
	if d <= 0 {
		return 1
	}
	sqrtN := math.Sqrt(float64(n))
	lambda := (sqrtN + 0.12 + 0.11/sqrtN) * d
	sum := 0.0
	sign := 1.0
	for j := 1; j <= 100; j++ {
		term := sign * math.Exp(-2*float64(j*j)*lambda*lambda)
		sum += term
		sign = -sign
		if math.Abs(term) < 1e-12 {
			break
		}
	}
	p := 2 * sum
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p
}

// KSTest reports whether the sample is consistent with the reference CDF at
// the given significance level (true = not rejected). Used by the sampler
// test-suites as a distribution-level check beyond moments.
func KSTest(sample []float64, cdf func(float64) float64, significance float64) bool {
	d := KSStatistic(sample, cdf)
	return KSPValue(d, len(sample)) > significance
}
