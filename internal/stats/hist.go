package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-width-bin histogram over [Lo, Hi); observations
// outside the range land in saturating under/overflow bins so no data is
// silently dropped.
type Histogram struct {
	lo, hi    float64
	bins      []int
	underflow int
	overflow  int
	count     int
}

// NewHistogram creates a histogram with the given number of equal bins over
// [lo, hi). It panics on a non-positive bin count or an empty range.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic(fmt.Sprintf("stats: NewHistogram with bins=%d", bins))
	}
	if !(hi > lo) {
		panic(fmt.Sprintf("stats: NewHistogram with lo=%v hi=%v", lo, hi))
	}
	return &Histogram{lo: lo, hi: hi, bins: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.count++
	switch {
	case x < h.lo:
		h.underflow++
	case x >= h.hi:
		h.overflow++
	default:
		i := int(float64(len(h.bins)) * (x - h.lo) / (h.hi - h.lo))
		if i == len(h.bins) { // x == hi-epsilon rounding guard
			i--
		}
		h.bins[i]++
	}
}

// Count returns the total number of observations, including out-of-range.
func (h *Histogram) Count() int { return h.count }

// Bin returns the count of the i-th bin.
func (h *Histogram) Bin(i int) int { return h.bins[i] }

// Bins returns the number of in-range bins.
func (h *Histogram) Bins() int { return len(h.bins) }

// OutOfRange returns the under- and overflow counts.
func (h *Histogram) OutOfRange() (under, over int) { return h.underflow, h.overflow }

// BinCenter returns the midpoint of the i-th bin.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.hi - h.lo) / float64(len(h.bins))
	return h.lo + (float64(i)+0.5)*w
}

// Render draws an ASCII bar chart with the given maximum bar width, suitable
// for CLI experiment output.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 40
	}
	maxCount := 1
	for _, c := range h.bins {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	for i, c := range h.bins {
		bar := int(math.Round(float64(width) * float64(c) / float64(maxCount)))
		fmt.Fprintf(&b, "%10.4g | %-*s %d\n", h.BinCenter(i), width, strings.Repeat("#", bar), c)
	}
	if h.underflow > 0 || h.overflow > 0 {
		fmt.Fprintf(&b, "(underflow %d, overflow %d)\n", h.underflow, h.overflow)
	}
	return b.String()
}
