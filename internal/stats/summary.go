// Package stats provides the measurement substrate for the experiment
// harness: streaming summaries (Welford), exact sample quantiles,
// histograms, confidence intervals and least-squares fits. The experiments
// report every "whp." claim of the paper as an empirical success rate with a
// confidence interval and every running-time claim as a scaling fit, so this
// package is the part of the repository that turns protocol runs into the
// rows of EXPERIMENTS.md.
package stats

import (
	"fmt"
	"math"
)

// Summary accumulates a stream of observations with Welford's numerically
// stable one-pass algorithm. The zero value is an empty, usable summary.
type Summary struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (s *Summary) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// AddAll incorporates every value in xs.
func (s *Summary) AddAll(xs []float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 when empty).
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance (0 for fewer than 2 points).
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 when empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 when empty).
func (s *Summary) Max() float64 { return s.max }

// SE returns the standard error of the mean.
func (s *Summary) SE() float64 {
	if s.n == 0 {
		return 0
	}
	return s.Std() / math.Sqrt(float64(s.n))
}

// String renders "mean ± se [min, max] (n=…)" for experiment tables.
func (s *Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g [%.4g, %.4g] (n=%d)",
		s.Mean(), s.SE(), s.Min(), s.Max(), s.n)
}

// Merge combines another summary into s, as if all of o's observations had
// been added to s (Chan et al. parallel variance update).
func (s *Summary) Merge(o *Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	delta := o.mean - s.mean
	total := s.n + o.n
	s.m2 += o.m2 + delta*delta*float64(s.n)*float64(o.n)/float64(total)
	s.mean += delta * float64(o.n) / float64(total)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n = total
}
