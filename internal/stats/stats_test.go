package stats

import (
	"math"
	"testing"
	"testing/quick"

	"plurality/internal/xrand"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	s.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	// Population variance is 4; sample variance is 4*8/7.
	if math.Abs(s.Var()-32.0/7) > 1e-12 {
		t.Errorf("Var = %v, want %v", s.Var(), 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.SE() != 0 {
		t.Error("empty summary should be all zeros")
	}
}

func TestSummarySingle(t *testing.T) {
	var s Summary
	s.Add(42)
	if s.Mean() != 42 || s.Var() != 0 || s.Min() != 42 || s.Max() != 42 {
		t.Error("single-value summary wrong")
	}
}

func TestSummaryMergeEquivalence(t *testing.T) {
	f := func(a, b []float64) bool {
		clean := func(xs []float64) []float64 {
			out := xs[:0]
			for _, x := range xs {
				if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
					out = append(out, x)
				}
			}
			return out
		}
		a, b = clean(a), clean(b)
		var s1, s2, merged Summary
		s1.AddAll(a)
		s2.AddAll(b)
		merged.AddAll(a)
		merged.AddAll(b)
		s1.Merge(&s2)
		if s1.N() != merged.N() {
			return false
		}
		if s1.N() == 0 {
			return true
		}
		tol := 1e-7 * (1 + math.Abs(merged.Mean()))
		if math.Abs(s1.Mean()-merged.Mean()) > tol {
			return false
		}
		return math.Abs(s1.Var()-merged.Var()) <= 1e-6*(1+merged.Var())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Errorf("median = %v", got)
	}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Errorf("q.25 = %v", got)
	}
}

func TestQuantileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.5); got != 5 {
		t.Errorf("interpolated median = %v, want 5", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Quantile mutated input")
	}
}

func TestQuantilesConsistent(t *testing.T) {
	r := xrand.New(1)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = r.Float64()
	}
	qs := Quantiles(xs, 0.1, 0.5, 0.9)
	for i, q := range []float64{0.1, 0.5, 0.9} {
		if got := Quantile(xs, q); got != qs[i] {
			t.Errorf("Quantiles[%d] = %v, Quantile = %v", i, qs[i], got)
		}
	}
	if !(qs[0] < qs[1] && qs[1] < qs[2]) {
		t.Error("quantiles not monotone")
	}
}

func TestEmpiricalCDF(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := EmpiricalCDF(xs, 2.5); got != 0.5 {
		t.Errorf("CDF(2.5) = %v", got)
	}
	if got := EmpiricalCDF(xs, 0); got != 0 {
		t.Errorf("CDF(0) = %v", got)
	}
	if got := EmpiricalCDF(xs, 4); got != 1 {
		t.Errorf("CDF(4) = %v", got)
	}
}

func TestMeanCICoverage(t *testing.T) {
	// Check that ~95% of 95% CIs over normal samples cover the true mean.
	r := xrand.New(2)
	covered := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		var s Summary
		for j := 0; j < 50; j++ {
			s.Add(10 + 2*r.Norm())
		}
		if MeanCI(&s, 0.95).Contains(10) {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.90 || rate > 0.99 {
		t.Errorf("95%% CI coverage %v, want ~0.95", rate)
	}
}

func TestMeanCISmallSampleWider(t *testing.T) {
	var small, large Summary
	for i := 0; i < 5; i++ {
		small.Add(float64(i))
	}
	for i := 0; i < 500; i++ {
		large.Add(float64(i % 5))
	}
	smallCI := MeanCI(&small, 0.95)
	largeCI := MeanCI(&large, 0.95)
	if (smallCI.Hi - smallCI.Lo) <= (largeCI.Hi - largeCI.Lo) {
		t.Error("small-sample CI not wider than large-sample CI")
	}
}

func TestProportionCI(t *testing.T) {
	iv := ProportionCI(95, 100, 0.95)
	if !iv.Contains(0.95) {
		t.Errorf("Wilson interval %v does not contain the MLE", iv)
	}
	if iv.Lo < 0.88 || iv.Hi > 0.99 {
		t.Errorf("Wilson interval %v unexpectedly wide", iv)
	}
	// Degenerate all-success case must stay within [0,1] and not collapse.
	iv = ProportionCI(100, 100, 0.95)
	if iv.Hi != 1 || iv.Lo > 1 || iv.Lo < 0.9 {
		t.Errorf("all-success Wilson interval %v", iv)
	}
	iv = ProportionCI(0, 100, 0.95)
	if iv.Lo != 0 || iv.Hi < 0.005 || iv.Hi > 0.1 {
		t.Errorf("no-success Wilson interval %v", iv)
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 2x + 3
	f := LinearFit(xs, ys)
	if math.Abs(f.Slope-2) > 1e-12 || math.Abs(f.Intercept-3) > 1e-12 {
		t.Errorf("fit %v, want slope 2 intercept 3", f)
	}
	if math.Abs(f.R2-1) > 1e-12 {
		t.Errorf("R² = %v, want 1", f.R2)
	}
}

func TestLinearFitNoisy(t *testing.T) {
	r := xrand.New(3)
	xs := make([]float64, 500)
	ys := make([]float64, 500)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 0.5*xs[i] + 1 + 0.1*r.Norm()
	}
	f := LinearFit(xs, ys)
	if math.Abs(f.Slope-0.5) > 0.01 {
		t.Errorf("noisy slope %v", f.Slope)
	}
	if f.R2 < 0.99 {
		t.Errorf("noisy R² %v", f.R2)
	}
}

func TestLogLogFitRecoversExponent(t *testing.T) {
	xs := []float64{10, 100, 1000, 10000}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * math.Pow(x, 1.5)
	}
	f := LogLogFit(xs, ys)
	if math.Abs(f.Slope-1.5) > 1e-9 {
		t.Errorf("log-log slope %v, want 1.5", f.Slope)
	}
}

func TestSemiLogFitRecoversLogLaw(t *testing.T) {
	xs := []float64{10, 100, 1000, 10000}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2*math.Log(x) + 5
	}
	f := SemiLogFit(xs, ys)
	if math.Abs(f.Slope-2) > 1e-9 || math.Abs(f.Intercept-5) > 1e-9 {
		t.Errorf("semi-log fit %v", f)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)
	h.Add(11)
	if h.Count() != 12 {
		t.Fatalf("Count = %d", h.Count())
	}
	for i := 0; i < 10; i++ {
		if h.Bin(i) != 1 {
			t.Errorf("bin %d = %d, want 1", i, h.Bin(i))
		}
	}
	u, o := h.OutOfRange()
	if u != 1 || o != 1 {
		t.Errorf("out of range %d/%d", u, o)
	}
	if h.BinCenter(0) != 0.5 {
		t.Errorf("BinCenter(0) = %v", h.BinCenter(0))
	}
	if h.Render(20) == "" {
		t.Error("Render produced empty output")
	}
}

func TestHistogramBoundary(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(0)    // first bin
	h.Add(0.25) // second bin boundary
	h.Add(1)    // overflow (hi-exclusive)
	if h.Bin(0) != 1 || h.Bin(1) != 1 {
		t.Errorf("boundary binning: %v %v", h.Bin(0), h.Bin(1))
	}
	_, over := h.OutOfRange()
	if over != 1 {
		t.Errorf("hi boundary not overflow: %d", over)
	}
}
