package stats

import (
	"fmt"
	"math"

	"plurality/internal/xrand"
)

// Interval is a two-sided confidence interval.
type Interval struct {
	Lo, Hi float64
}

// Contains reports whether x lies inside the interval.
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// String renders the interval for tables.
func (iv Interval) String() string { return fmt.Sprintf("[%.4g, %.4g]", iv.Lo, iv.Hi) }

// MeanCI returns the two-sided confidence interval for the mean at the given
// confidence level (e.g. 0.95), using the Student-t critical value for small
// samples and the normal critical value asymptotically. It panics on an
// empty summary or a level outside (0, 1).
func MeanCI(s *Summary, level float64) Interval {
	if s.N() == 0 {
		panic("stats: MeanCI of empty summary")
	}
	if level <= 0 || level >= 1 {
		panic(fmt.Sprintf("stats: MeanCI with level=%v", level))
	}
	if s.N() == 1 {
		return Interval{Lo: s.Mean(), Hi: s.Mean()}
	}
	crit := tCritical(s.N()-1, level)
	half := crit * s.SE()
	return Interval{Lo: s.Mean() - half, Hi: s.Mean() + half}
}

// ProportionCI returns the Wilson score interval for a binomial proportion
// with successes out of trials at the given confidence level. It is the
// interval the experiments attach to every "whp." success rate, where
// success counts near trials make the normal approximation useless.
func ProportionCI(successes, trials int, level float64) Interval {
	if trials <= 0 {
		panic(fmt.Sprintf("stats: ProportionCI with trials=%d", trials))
	}
	if successes < 0 || successes > trials {
		panic(fmt.Sprintf("stats: ProportionCI with successes=%d trials=%d", successes, trials))
	}
	z := xrand.NormalQuantile(1 - (1-level)/2)
	n := float64(trials)
	p := float64(successes) / n
	denom := 1 + z*z/n
	center := (p + z*z/(2*n)) / denom
	half := z * math.Sqrt(p*(1-p)/n+z*z/(4*n*n)) / denom
	lo := center - half
	hi := center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return Interval{Lo: lo, Hi: hi}
}

// tCritical returns the two-sided Student-t critical value for df degrees of
// freedom at the given confidence level. Values for common levels are
// tabulated for small df; beyond the table the normal quantile is an
// excellent approximation.
func tCritical(df int, level float64) float64 {
	z := xrand.NormalQuantile(1 - (1-level)/2)
	if df >= 30 {
		return z
	}
	// Two-sided 95% and 99% critical values, df = 1..29.
	t95 := [...]float64{12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
		2.306, 2.262, 2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
		2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060,
		2.056, 2.052, 2.048, 2.045}
	t99 := [...]float64{63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499,
		3.355, 3.250, 3.169, 3.106, 3.055, 3.012, 2.977, 2.947, 2.921,
		2.898, 2.878, 2.861, 2.845, 2.831, 2.819, 2.807, 2.797, 2.787,
		2.779, 2.771, 2.763, 2.756}
	switch {
	case math.Abs(level-0.95) < 1e-9:
		return t95[df-1]
	case math.Abs(level-0.99) < 1e-9:
		return t99[df-1]
	default:
		// Hill's approximation: inflate the normal quantile.
		g := (z*z*z + z) / (4 * float64(df))
		return z + g
	}
}
