package stats

import (
	"math"
	"testing"

	"plurality/internal/xrand"
)

func uniformCDF(x float64) float64 {
	switch {
	case x < 0:
		return 0
	case x > 1:
		return 1
	default:
		return x
	}
}

func TestKSStatisticPerfectFit(t *testing.T) {
	// Sample at the exact quantile midpoints: D must be 1/(2n).
	n := 100
	sample := make([]float64, n)
	for i := range sample {
		sample[i] = (float64(i) + 0.5) / float64(n)
	}
	d := KSStatistic(sample, uniformCDF)
	if math.Abs(d-0.5/float64(n)) > 1e-12 {
		t.Errorf("D = %v, want %v", d, 0.5/float64(n))
	}
}

func TestKSAcceptsMatchingDistribution(t *testing.T) {
	r := xrand.New(1)
	sample := make([]float64, 5000)
	for i := range sample {
		sample[i] = r.Exp(2)
	}
	if !KSTest(sample, func(x float64) float64 { return xrand.ExpCDF(2, x) }, 0.001) {
		t.Error("KS rejected exponential sample against its own CDF")
	}
}

func TestKSRejectsWrongDistribution(t *testing.T) {
	r := xrand.New(2)
	sample := make([]float64, 5000)
	for i := range sample {
		sample[i] = r.Exp(2)
	}
	// Test against Exp(1): clearly wrong.
	if KSTest(sample, func(x float64) float64 { return xrand.ExpCDF(1, x) }, 0.001) {
		t.Error("KS failed to reject Exp(2) sample against Exp(1) CDF")
	}
}

func TestKSGammaSampler(t *testing.T) {
	// Distribution-level check of the Gamma sampler used for the paper's
	// Erlang majorants (stronger than the moment tests in xrand).
	r := xrand.New(3)
	sample := make([]float64, 5000)
	for i := range sample {
		sample[i] = r.Gamma(7, 1)
	}
	if !KSTest(sample, func(x float64) float64 { return xrand.GammaCDF(7, 1, x) }, 0.001) {
		t.Error("KS rejected Gamma(7,1) sampler against the analytic CDF")
	}
}

func TestKSPValueMonotone(t *testing.T) {
	prev := 1.0
	for d := 0.0; d <= 0.2; d += 0.01 {
		p := KSPValue(d, 1000)
		if p > prev+1e-12 {
			t.Fatalf("p-value not monotone at d=%v", d)
		}
		if p < 0 || p > 1 {
			t.Fatalf("p-value out of range at d=%v: %v", d, p)
		}
		prev = p
	}
}

func TestKSPValueEdges(t *testing.T) {
	if p := KSPValue(0, 100); p != 1 {
		t.Errorf("p(0) = %v", p)
	}
	if p := KSPValue(1, 100); p > 1e-10 {
		t.Errorf("p(1) = %v, want ~0", p)
	}
}
