package stats

import (
	"math"
	"testing"

	"plurality/internal/xrand"
)

func TestChiSquareStatisticExactFit(t *testing.T) {
	obs := []int{10, 20, 30}
	exp := []float64{10, 20, 30}
	if got := ChiSquareStatistic(obs, exp); got != 0 {
		t.Errorf("χ² = %v for exact fit", got)
	}
}

func TestChiSquareStatisticKnown(t *testing.T) {
	// Single bin off by d: χ² = d²/e.
	obs := []int{15, 20}
	exp := []float64{10, 20}
	if got := ChiSquareStatistic(obs, exp); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("χ² = %v, want 2.5", got)
	}
}

func TestChiSquareEmptyExpectedBin(t *testing.T) {
	if got := ChiSquareStatistic([]int{0, 5}, []float64{0, 5}); got != 0 {
		t.Errorf("zero-expected zero-observed bin contributed: %v", got)
	}
	if got := ChiSquareStatistic([]int{1, 5}, []float64{0, 5}); !math.IsInf(got, 1) && got < 1e300 {
		t.Errorf("impossible observation not flagged: %v", got)
	}
}

func TestChiSquarePValueKnownValues(t *testing.T) {
	// χ² = 3.841 with df=1 is the 95th percentile.
	if p := ChiSquarePValue(3.841458820694124, 1); math.Abs(p-0.05) > 1e-6 {
		t.Errorf("p(3.8415, df=1) = %v, want 0.05", p)
	}
	// χ² = 18.307 with df=10 is the 95th percentile.
	if p := ChiSquarePValue(18.307038053275146, 10); math.Abs(p-0.05) > 1e-6 {
		t.Errorf("p(18.307, df=10) = %v, want 0.05", p)
	}
}

func TestChiSquareAcceptsPoissonSampler(t *testing.T) {
	// Distribution-level check of the Poisson sampler (both regimes).
	for _, mu := range []float64{4, 60} {
		r := xrand.New(5)
		const n = 50000
		maxBin := int(mu + 8*math.Sqrt(mu))
		observed := make([]int, maxBin+1)
		for i := 0; i < n; i++ {
			v := r.Poisson(mu)
			if v > maxBin {
				v = maxBin
			}
			observed[v]++
		}
		expected := make([]float64, maxBin+1)
		p := math.Exp(-mu)
		cum := 0.0
		for k := 0; k <= maxBin; k++ {
			if k > 0 {
				p *= mu / float64(k)
			}
			expected[k] = p * n
			cum += p
		}
		expected[maxBin] += (1 - cum) * n // fold the tail into the last bin
		// Merge sparse bins (< 5 expected) into neighbours.
		obsM, expM := mergeSparse(observed, expected, 5)
		if !ChiSquareTest(obsM, expM, 0.001) {
			t.Errorf("χ² rejected Poisson(%v) sampler", mu)
		}
	}
}

func TestChiSquareRejectsWrongMean(t *testing.T) {
	r := xrand.New(6)
	const n = 50000
	observed := make([]int, 30)
	for i := 0; i < n; i++ {
		v := r.Poisson(8)
		if v > 29 {
			v = 29
		}
		observed[v]++
	}
	// Expected under Poisson(10): must be rejected.
	expected := make([]float64, 30)
	p := math.Exp(-10.0)
	cum := 0.0
	for k := 0; k < 30; k++ {
		if k > 0 {
			p *= 10.0 / float64(k)
		}
		expected[k] = p * n
		cum += p
	}
	expected[29] += (1 - cum) * n
	obsM, expM := mergeSparse(observed, expected, 5)
	if ChiSquareTest(obsM, expM, 0.001) {
		t.Error("χ² failed to reject Poisson(8) sample against Poisson(10)")
	}
}

// mergeSparse folds bins with expected counts below minExpected into their
// left neighbour (the first bin folds right).
func mergeSparse(observed []int, expected []float64, minExpected float64) ([]int, []float64) {
	var obs []int
	var exp []float64
	for i := range observed {
		if len(exp) > 0 && (expected[i] < minExpected || exp[len(exp)-1] < minExpected) {
			obs[len(obs)-1] += observed[i]
			exp[len(exp)-1] += expected[i]
		} else {
			obs = append(obs, observed[i])
			exp = append(exp, expected[i])
		}
	}
	return obs, exp
}
