package stats

import (
	"fmt"
	"math"
	"sort"
)

// Quantile returns the q-quantile of xs using linear interpolation between
// order statistics (type-7, the R default). It does not modify xs. It panics
// on an empty sample or q outside [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		panic(fmt.Sprintf("stats: Quantile with q=%v", q))
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// Quantiles returns the quantiles at each q in qs, sorting the sample once.
func Quantiles(xs []float64, qs ...float64) []float64 {
	if len(xs) == 0 {
		panic("stats: Quantiles of empty sample")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		if q < 0 || q > 1 || math.IsNaN(q) {
			panic(fmt.Sprintf("stats: Quantiles with q=%v", q))
		}
		out[i] = quantileSorted(sorted, q)
	}
	return out
}

func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	h := q * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// EmpiricalCDF returns the fraction of xs at or below x.
func EmpiricalCDF(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		panic("stats: EmpiricalCDF of empty sample")
	}
	count := 0
	for _, v := range xs {
		if v <= x {
			count++
		}
	}
	return float64(count) / float64(len(xs))
}
