package stats

import (
	"fmt"
	"math"
)

// Fit is the result of an ordinary-least-squares line fit y = Slope·x +
// Intercept.
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
	N         int
}

// String renders the fit for experiment tables.
func (f Fit) String() string {
	return fmt.Sprintf("slope=%.4g intercept=%.4g R²=%.4f (n=%d)",
		f.Slope, f.Intercept, f.R2, f.N)
}

// LinearFit performs OLS on the paired samples. It panics if the lengths
// differ or fewer than two points are supplied.
func LinearFit(xs, ys []float64) Fit {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stats: LinearFit with %d xs and %d ys", len(xs), len(ys)))
	}
	if len(xs) < 2 {
		panic("stats: LinearFit needs at least 2 points")
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		panic("stats: LinearFit with zero x-variance")
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	r2 := 1.0
	if syy > 0 {
		ssRes := 0.0
		for i := range xs {
			e := ys[i] - (intercept + slope*xs[i])
			ssRes += e * e
		}
		r2 = 1 - ssRes/syy
	}
	return Fit{Slope: slope, Intercept: intercept, R2: r2, N: len(xs)}
}

// LogLogFit fits log(y) = Slope·log(x) + Intercept; the slope estimates the
// polynomial exponent in scaling experiments. Non-positive pairs are
// rejected with a panic since they indicate a broken measurement.
func LogLogFit(xs, ys []float64) Fit {
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			panic(fmt.Sprintf("stats: LogLogFit with non-positive pair (%v, %v)", xs[i], ys[i]))
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	return LinearFit(lx, ly)
}

// SemiLogFit fits y = Slope·log(x) + Intercept, the shape of logarithmic
// running-time laws.
func SemiLogFit(xs, ys []float64) Fit {
	lx := make([]float64, len(xs))
	for i := range xs {
		if xs[i] <= 0 {
			panic(fmt.Sprintf("stats: SemiLogFit with non-positive x=%v", xs[i]))
		}
		lx[i] = math.Log(xs[i])
	}
	return LinearFit(lx, ys)
}
