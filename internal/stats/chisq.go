package stats

import (
	"fmt"
	"math"

	"plurality/internal/xrand"
)

// ChiSquareStatistic returns Pearson's χ² statistic for observed counts
// against expected counts. Bins with expected < 1e-12 must have zero
// observations or the statistic is +Inf by convention; callers should merge
// sparse bins first (the usual ≥ 5 expected rule).
func ChiSquareStatistic(observed []int, expected []float64) float64 {
	if len(observed) != len(expected) {
		panic(fmt.Sprintf("stats: ChiSquare with %d observed and %d expected bins",
			len(observed), len(expected)))
	}
	if len(observed) == 0 {
		panic("stats: ChiSquare with no bins")
	}
	stat := 0.0
	for i, o := range observed {
		e := expected[i]
		if e < 1e-12 {
			if o != 0 {
				return inf()
			}
			continue
		}
		d := float64(o) - e
		stat += d * d / e
	}
	return stat
}

// ChiSquarePValue returns P(X² >= stat) for df degrees of freedom, using
// the regularized upper incomplete gamma function (X² ~ Gamma(df/2, 1/2)).
func ChiSquarePValue(stat float64, df int) float64 {
	if df <= 0 {
		panic(fmt.Sprintf("stats: ChiSquarePValue with df=%d", df))
	}
	if stat <= 0 {
		return 1
	}
	return 1 - xrand.GammaCDF(float64(df)/2, 0.5, stat)
}

// ChiSquareTest reports whether observed counts are consistent with the
// expected counts at the given significance level (true = not rejected).
// Degrees of freedom are bins−1.
func ChiSquareTest(observed []int, expected []float64, significance float64) bool {
	stat := ChiSquareStatistic(observed, expected)
	df := len(observed) - 1
	if df < 1 {
		df = 1
	}
	return ChiSquarePValue(stat, df) > significance
}

func inf() float64 {
	return math.Inf(1)
}
