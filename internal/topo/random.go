package topo

import (
	"fmt"
	"math"

	"plurality/internal/xrand"
)

// AdjGraph is an explicit graph in compressed-sparse-row form: the neighbors
// of v are adj[off[v]:off[v+1]]. It backs the random topologies, whose
// neighborhoods have no closed form. Construction is seeded and
// deterministic; sampling is one Intn plus two slice reads.
type AdjGraph struct {
	name string
	off  []int
	adj  []int32
	// uniformDeg is the common degree when the graph is regular (0 when
	// degrees are mixed); the batch sampler uses it to draw all row offsets
	// in one bounded bulk pass.
	uniformDeg int32
}

// SampleNeighbor returns a uniform neighbor of v.
func (g *AdjGraph) SampleNeighbor(r *xrand.RNG, v int) int {
	lo, hi := g.off[v], g.off[v+1]
	return int(g.adj[lo+r.Intn(hi-lo)])
}

// Degree returns the number of neighbors of v.
func (g *AdjGraph) Degree(v int) int { return g.off[v+1] - g.off[v] }

// Size returns the node count.
func (g *AdjGraph) Size() int { return len(g.off) - 1 }

// String names the graph for diagnostics.
func (g *AdjGraph) String() string { return g.name }

// newCSR builds the CSR arrays from an undirected edge list.
func newCSR(name string, n int, edges [][2]int32) *AdjGraph {
	off := make([]int, n+1)
	for _, e := range edges {
		off[e[0]+1]++
		off[e[1]+1]++
	}
	for v := 0; v < n; v++ {
		off[v+1] += off[v]
	}
	adj := make([]int32, off[n])
	fill := make([]int, n)
	copy(fill, off[:n])
	for _, e := range edges {
		a, b := e[0], e[1]
		adj[fill[a]] = b
		fill[a]++
		adj[fill[b]] = a
		fill[b]++
	}
	g := &AdjGraph{name: name, off: off, adj: adj}
	if n > 0 {
		d := g.Degree(0)
		uniform := d > 0
		for v := 1; v < n && uniform; v++ {
			uniform = g.Degree(v) == d
		}
		if uniform {
			g.uniformDeg = int32(d)
		}
	}
	return g
}

// connected reports whether g is connected, by BFS from node 0.
func (g *AdjGraph) connected() bool {
	n := g.Size()
	if n == 0 {
		return false
	}
	seen := make([]bool, n)
	queue := make([]int32, 0, n)
	seen[0] = true
	queue = append(queue, 0)
	visited := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.adj[g.off[v]:g.off[v+1]] {
			if !seen[u] {
				seen[u] = true
				visited++
				queue = append(queue, u)
			}
		}
	}
	return visited == n
}

// NewRandomRegular returns a random d-regular graph on n nodes via the
// configuration model with double-edge-swap repair: n·d stubs are shuffled
// and paired, then every self-loop or multi-edge is swapped against a
// random good edge until the pairing is simple (a whole-graph restart would
// need e^{Θ(d²)} expected attempts, hopeless already at d ≈ 8). The repaired
// graph must be connected or the construction restarts. Deterministic in
// seed; n·d must be even, 2 <= d < n.
func NewRandomRegular(n, d int, seed uint64) (*AdjGraph, error) {
	if n < 3 {
		return nil, fmt.Errorf("topo: random-regular needs n >= 3, got %d", n)
	}
	if d < 2 || d >= n {
		return nil, fmt.Errorf("topo: random-regular degree %d outside [2, n)", d)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("topo: random-regular needs n*d even, got %d*%d", n, d)
	}
	r := xrand.New(seed).SplitNamed("random-regular")
	key := func(a, b int32) uint64 {
		if a > b {
			a, b = b, a
		}
		return uint64(a)*uint64(n) + uint64(b)
	}
	stubs := make([]int32, n*d)
	const maxRestarts = 64
	for restart := 0; restart < maxRestarts; restart++ {
		for i := range stubs {
			stubs[i] = int32(i / d)
		}
		r.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		edges := make([][2]int32, 0, n*d/2)
		seen := make(map[uint64]struct{}, n*d/2)
		var bad []int // indices of loops and duplicate edges
		isBad := make([]bool, n*d/2)
		for i := 0; i < len(stubs); i += 2 {
			a, b := stubs[i], stubs[i+1]
			idx := len(edges)
			edges = append(edges, [2]int32{a, b})
			if a == b {
				bad = append(bad, idx)
				isBad[idx] = true
				continue
			}
			k := key(a, b)
			if _, dup := seen[k]; dup {
				bad = append(bad, idx)
				isBad[idx] = true
				continue
			}
			seen[k] = struct{}{}
		}
		// Repair: swap each bad edge (a,b) with a random good edge (c,d)
		// into (a,c)+(b,d) or (a,d)+(b,c); both replacements must be new
		// simple edges. The partner must be good — a duplicate's key is
		// owned by its first occurrence, so swapping the duplicate would
		// strip that key and later admit a real multi-edge. Each success
		// fixes one bad edge, so the loop terminates quickly; the attempt
		// cap guards degenerate corners (e.g. d = n-1 leaves nothing to
		// swap against).
		attempts := 0
		maxAttempts := 200 * (len(bad) + 1)
		for len(bad) > 0 && attempts < maxAttempts {
			attempts++
			i := bad[len(bad)-1]
			j := r.Intn(len(edges))
			if isBad[j] {
				continue
			}
			a, b := edges[i][0], edges[i][1]
			c, dd := edges[j][0], edges[j][1]
			if r.Bool() {
				c, dd = dd, c
			}
			// Proposed replacement: (a,c) and (b,dd).
			if a == c || b == dd {
				continue
			}
			k1, k2 := key(a, c), key(b, dd)
			if k1 == k2 {
				continue
			}
			if _, dup := seen[k1]; dup {
				continue
			}
			if _, dup := seen[k2]; dup {
				continue
			}
			delete(seen, key(c, dd))
			seen[k1] = struct{}{}
			seen[k2] = struct{}{}
			edges[i] = [2]int32{a, c}
			edges[j] = [2]int32{b, dd}
			bad = bad[:len(bad)-1]
			isBad[i] = false
		}
		if len(bad) > 0 {
			continue
		}
		g := newCSR(fmt.Sprintf("random-regular(n=%d,d=%d)", n, d), n, edges)
		if !g.connected() {
			continue
		}
		return g, nil
	}
	return nil, fmt.Errorf("topo: no simple connected %d-regular graph on %d nodes after %d attempts (d = 2 disconnects easily; use d >= 3)", d, n, maxRestarts)
}

// NewErdosRenyi returns a G(n, p) sample, constructed in O(n + edges) by
// geometric gap-skipping over each row of the upper triangle. Construction
// is deterministic in seed; it errors when the sampled graph is not
// connected (raise p — connectivity needs p ≳ ln n / n).
func NewErdosRenyi(n int, p float64, seed uint64) (*AdjGraph, error) {
	if n < 2 {
		return nil, fmt.Errorf("topo: erdos-renyi needs n >= 2, got %d", n)
	}
	if !(p > 0 && p <= 1) || math.IsNaN(p) {
		return nil, fmt.Errorf("topo: erdos-renyi p %v outside (0, 1]", p)
	}
	r := xrand.New(seed).SplitNamed("erdos-renyi")
	var edges [][2]int32
	if p == 1 {
		for v := 0; v < n-1; v++ {
			for j := v + 1; j < n; j++ {
				edges = append(edges, [2]int32{int32(v), int32(j)})
			}
		}
	} else {
		logQ := math.Log1p(-p) // log(1-p) < 0
		for v := 0; v < n-1; v++ {
			j := v
			for {
				// Skip a Geometric(p) number of absent pairs.
				gap := math.Floor(math.Log(r.Float64Open()) / logQ)
				if gap >= float64(n) { // beyond any row; avoids int overflow
					break
				}
				j += 1 + int(gap)
				if j >= n {
					break
				}
				edges = append(edges, [2]int32{int32(v), int32(j)})
			}
		}
	}
	g := newCSR(fmt.Sprintf("erdos-renyi(n=%d,p=%g)", n, p), n, edges)
	if !g.connected() {
		return nil, fmt.Errorf("topo: erdos-renyi(n=%d, p=%g, seed=%d) is not connected; raise p (connectivity needs p ≳ ln(n)/n ≈ %.2g)",
			n, p, seed, math.Log(float64(n))/float64(n))
	}
	return g, nil
}
