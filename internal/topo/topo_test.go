package topo

import (
	"testing"

	"plurality/internal/xrand"
)

// legacySampleOther is the helper every engine used to carry: one Intn(n-1)
// draw shifted past v. Complete must consume randomness identically so that
// zero-value-topology runs reproduce pre-topology results bit for bit.
func legacySampleOther(r *xrand.RNG, n, v int) int {
	u := r.Intn(n - 1)
	if u >= v {
		u++
	}
	return u
}

func TestCompleteMatchesLegacySampleOther(t *testing.T) {
	const n = 257
	g := NewComplete(n)
	r1 := xrand.New(42)
	r2 := xrand.New(42)
	for i := 0; i < 10_000; i++ {
		v := i % n
		got := g.SampleNeighbor(r1, v)
		want := legacySampleOther(r2, n, v)
		if got != want {
			t.Fatalf("draw %d: Complete.SampleNeighbor = %d, legacy sampleOther = %d", i, got, want)
		}
		if got == v {
			t.Fatalf("draw %d: sampled self", i)
		}
	}
}

func TestCompleteCoversAllOthers(t *testing.T) {
	const n = 16
	g := NewComplete(n)
	r := xrand.New(7)
	seen := make(map[int]bool)
	for i := 0; i < 4000; i++ {
		seen[g.SampleNeighbor(r, 3)] = true
	}
	if len(seen) != n-1 || seen[3] {
		t.Fatalf("complete graph from node 3 saw %d targets (self: %v), want %d", len(seen), seen[3], n-1)
	}
	if g.Degree(0) != n-1 || g.Size() != n {
		t.Fatalf("degree/size = %d/%d, want %d/%d", g.Degree(0), g.Size(), n-1, n)
	}
}

func TestRingNeighborhood(t *testing.T) {
	g, err := NewRing(20, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(3)
	counts := map[int]int{}
	const v, draws = 0, 8000
	for i := 0; i < draws; i++ {
		counts[g.SampleNeighbor(r, v)]++
	}
	want := map[int]bool{1: true, 2: true, 18: true, 19: true}
	if len(counts) != 4 {
		t.Fatalf("ring(20,2) from 0 hit %d targets %v, want the 4 offsets", len(counts), counts)
	}
	for u, c := range counts {
		if !want[u] {
			t.Fatalf("ring(20,2) from 0 sampled non-neighbor %d", u)
		}
		if f := float64(c) / draws; f < 0.2 || f > 0.3 {
			t.Errorf("neighbor %d frequency %.3f far from uniform 0.25", u, f)
		}
	}
	if g.Degree(5) != 4 {
		t.Fatalf("ring degree = %d, want 4", g.Degree(5))
	}
	if _, err := NewRing(4, 2); err == nil {
		t.Fatal("ring(4,2) accepted; needs n >= 2*width+1")
	}
	if _, err := NewRing(10, 0); err == nil {
		t.Fatal("ring width 0 accepted")
	}
}

func TestTorusNeighborhood(t *testing.T) {
	g, err := NewTorus(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(9)
	// Node 0 = (0,0): neighbors (1,0)=5, (3,0)=15, (0,1)=1, (0,4)=4.
	want := map[int]bool{5: true, 15: true, 1: true, 4: true}
	seen := map[int]bool{}
	for i := 0; i < 2000; i++ {
		u := g.SampleNeighbor(r, 0)
		if !want[u] {
			t.Fatalf("torus(4x5) from 0 sampled non-neighbor %d", u)
		}
		seen[u] = true
	}
	if len(seen) != 4 {
		t.Fatalf("torus(4x5) from 0 saw %d of 4 neighbors", len(seen))
	}
	if g.Size() != 20 || g.Degree(7) != 4 {
		t.Fatalf("size/degree = %d/%d, want 20/4", g.Size(), g.Degree(7))
	}
	if _, err := NewTorus(2, 10); err == nil {
		t.Fatal("2-row torus accepted; folds neighbors together")
	}
}

func TestNearSquareDims(t *testing.T) {
	cases := []struct {
		n, rows, cols int
		ok            bool
	}{
		{1024, 32, 32, true},
		{1000, 25, 40, true},
		{12, 3, 4, true},
		{9, 3, 3, true},
		{13, 0, 0, false},    // prime
		{2 * 7, 0, 0, false}, // no factor pair with both >= 3
		{8, 0, 0, false},
	}
	for _, c := range cases {
		rows, cols, ok := NearSquareDims(c.n)
		if ok != c.ok || rows != c.rows || cols != c.cols {
			t.Errorf("NearSquareDims(%d) = (%d, %d, %v), want (%d, %d, %v)",
				c.n, rows, cols, ok, c.rows, c.cols, c.ok)
		}
		if ok && rows*cols != c.n {
			t.Errorf("NearSquareDims(%d): %d*%d != %d", c.n, rows, cols, c.n)
		}
	}
}

func TestRandomRegular(t *testing.T) {
	const n, d = 200, 4
	g, err := NewRandomRegular(n, d, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != n {
		t.Fatalf("size = %d, want %d", g.Size(), n)
	}
	for v := 0; v < n; v++ {
		if g.Degree(v) != d {
			t.Fatalf("node %d degree = %d, want %d", v, g.Degree(v), d)
		}
		seen := map[int32]bool{}
		for _, u := range g.adj[g.off[v]:g.off[v+1]] {
			if int(u) == v {
				t.Fatalf("node %d has a self-loop", v)
			}
			if seen[u] {
				t.Fatalf("node %d has a multi-edge to %d", v, u)
			}
			seen[u] = true
		}
	}
	if !g.connected() {
		t.Fatal("random-regular graph not connected")
	}
	// Sampling stays inside the adjacency.
	r := xrand.New(1)
	for i := 0; i < 1000; i++ {
		v := i % n
		u := g.SampleNeighbor(r, v)
		found := false
		for _, w := range g.adj[g.off[v]:g.off[v+1]] {
			if int(w) == u {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("sampled %d which is not a neighbor of %d", u, v)
		}
	}
	// Deterministic in seed.
	h, err := NewRandomRegular(n, d, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range g.adj {
		if g.adj[i] != h.adj[i] {
			t.Fatal("same seed produced different random-regular graphs")
		}
	}
	if _, err := NewRandomRegular(5, 3, 1); err == nil {
		t.Fatal("odd n*d accepted")
	}
	if _, err := NewRandomRegular(10, 1, 1); err == nil {
		t.Fatal("degree 1 accepted")
	}
}

func TestErdosRenyi(t *testing.T) {
	const n = 400
	const p = 0.05
	g, err := NewErdosRenyi(n, p, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !g.connected() {
		t.Fatal("graph reported connected=false after successful construction")
	}
	// Edge count near n(n-1)/2 * p (sd ~ sqrt(mean) ≈ 61; allow 6 sd).
	m := len(g.adj) / 2
	mean := float64(n*(n-1)) / 2 * p
	if f := float64(m); f < mean-400 || f > mean+400 {
		t.Errorf("edge count %d far from expectation %.0f", m, mean)
	}
	// Deterministic in seed, different across seeds.
	h, _ := NewErdosRenyi(n, p, 11)
	same := len(g.adj) == len(h.adj)
	if same {
		for i := range g.adj {
			if g.adj[i] != h.adj[i] {
				same = false
				break
			}
		}
	}
	if !same {
		t.Fatal("same seed produced different erdos-renyi graphs")
	}
	// Disconnected draws must error, not silently strand nodes.
	if _, err := NewErdosRenyi(500, 0.001, 1); err == nil {
		t.Fatal("sub-connectivity-threshold p accepted")
	}
	if _, err := NewErdosRenyi(10, 0, 1); err == nil {
		t.Fatal("p=0 accepted")
	}
	// p=1 degenerates to the complete graph.
	k, err := NewErdosRenyi(12, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 12; v++ {
		if k.Degree(v) != 11 {
			t.Fatalf("G(12,1) degree = %d, want 11", k.Degree(v))
		}
	}
}

func TestAvgDegree(t *testing.T) {
	g, _ := NewTorus(5, 5)
	if d := AvgDegree(g); d != 4 {
		t.Fatalf("torus avg degree = %v, want 4", d)
	}
	if d := AvgDegree(NewComplete(10)); d != 9 {
		t.Fatalf("complete avg degree = %v, want 9", d)
	}
}

// TestCliqueSamplerZeroAlloc pins the no-regression guarantee of the
// refactor: sampling on the clique through the Sampler interface must not
// allocate. The CI bench-smoke job asserts the same via -benchmem.
func TestCliqueSamplerZeroAlloc(t *testing.T) {
	var g Sampler = NewComplete(1 << 16)
	r := xrand.New(1)
	v := 0
	allocs := testing.AllocsPerRun(10_000, func() {
		v = g.SampleNeighbor(r, v)
	})
	if allocs != 0 {
		t.Fatalf("clique SampleNeighbor allocates %.1f per op, want 0", allocs)
	}
}

// TestSparseSamplersZeroAlloc extends the guarantee to every topology: the
// per-sample hot path never allocates regardless of graph kind.
func TestSparseSamplersZeroAlloc(t *testing.T) {
	ring, _ := NewRing(1000, 3)
	torus, _ := NewTorus(30, 30)
	reg, err := NewRandomRegular(900, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	er, err := NewErdosRenyi(900, 0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []Sampler{ring, torus, reg, er} {
		r := xrand.New(1)
		v := 0
		allocs := testing.AllocsPerRun(5_000, func() {
			v = g.SampleNeighbor(r, v)
		})
		if allocs != 0 {
			t.Errorf("%v SampleNeighbor allocates %.1f per op, want 0", g, allocs)
		}
	}
}

// BenchmarkSampleNeighbor measures the per-sample cost of every topology;
// CI greps the Complete line for "0 B/op" to pin the clique fast path.
func BenchmarkSampleNeighbor(b *testing.B) {
	const n = 1 << 14
	ring, _ := NewRing(n, 2)
	torus, _ := NewTorus(128, 128)
	reg, err := NewRandomRegular(n, 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	er, err := NewErdosRenyi(n, 0.002, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name string
		g    Sampler
	}{
		{"Complete", NewComplete(n)},
		{"Ring", ring},
		{"Torus", torus},
		{"RandomRegular", reg},
		{"ErdosRenyi", er},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			r := xrand.New(1)
			v := 0
			for i := 0; i < b.N; i++ {
				v = bc.g.SampleNeighbor(r, v)
			}
		})
	}
}
