package topo

import "testing"

// checkPartition validates the structural contract: every node owned, owner
// ids in [0, s), block sizes within one of each other.
func checkPartition(t *testing.T, owner []int32, s int) {
	t.Helper()
	counts := make([]int, s)
	for v, b := range owner {
		if b < 0 || int(b) >= s {
			t.Fatalf("node %d has owner %d outside [0, %d)", v, b, s)
		}
		counts[b]++
	}
	lo, hi := len(owner), 0
	for _, c := range counts {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	if hi-lo > 1 {
		t.Fatalf("unbalanced partition: block sizes range %d..%d", lo, hi)
	}
}

func TestPartitionBalancedBlocks(t *testing.T) {
	for _, n := range []int{2, 7, 100, 1000} {
		for _, s := range []int{1, 2, 3, 8, 1000, 2000} {
			g := NewComplete(n)
			owner := Partition(g, s)
			eff := s
			if eff > n {
				eff = n
			}
			if eff < 1 {
				eff = 1
			}
			checkPartition(t, owner, eff)
		}
	}
}

func TestPartitionContiguousForBlockTopologies(t *testing.T) {
	ring, err := NewRing(1000, 2)
	if err != nil {
		t.Fatal(err)
	}
	owner := Partition(ring, 4)
	checkPartition(t, owner, 4)
	for v := 1; v < len(owner); v++ {
		if owner[v] < owner[v-1] {
			t.Fatalf("block partition not monotone at node %d: %d after %d", v, owner[v], owner[v-1])
		}
	}
	// A contiguous 4-block partition of a width-2 ring cuts only the 8
	// boundary edges per seam, 4 seams: 2·2·2·4 = 32 directed cut edges of
	// 4000 total.
	cross := 0
	for v := 0; v < 1000; v++ {
		for d := -2; d <= 2; d++ {
			if d == 0 {
				continue
			}
			w := (v + d + 1000) % 1000
			if owner[v] != owner[w] {
				cross++
			}
		}
	}
	if cross > 32 {
		t.Fatalf("ring cut edges = %d, want <= 32", cross)
	}
}

func TestPartitionBFSBeatsStriping(t *testing.T) {
	g, err := NewRandomRegular(4000, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	const s = 8
	owner := Partition(g, s)
	checkPartition(t, owner, s)

	// Striped assignment v % s: expected cut fraction (s-1)/s ≈ 0.875 on a
	// random-regular graph. BFS-greedy should do no worse; on a random
	// 4-regular graph locality is weak, so only require parity, and pin
	// determinism instead.
	striped := make([]int32, g.Size())
	for v := range striped {
		striped[v] = int32(v % s)
	}
	bfsCut, stripedCut := CutFraction(g, owner), CutFraction(g, striped)
	if bfsCut > stripedCut {
		t.Fatalf("BFS cut %.3f worse than striped %.3f", bfsCut, stripedCut)
	}

	// Determinism: same graph, same s, same assignment.
	again := Partition(g, s)
	for v := range owner {
		if owner[v] != again[v] {
			t.Fatalf("partition not deterministic at node %d", v)
		}
	}
}

func TestPartitionBFSLocalityOnTorusCSR(t *testing.T) {
	// A torus expressed as a CSR graph has strong locality; BFS-greedy must
	// get a materially lower cut than striping.
	const rows, cols = 64, 64
	var edges [][2]int32
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := int32(r*cols + c)
			right := int32(r*cols + (c+1)%cols)
			down := int32(((r+1)%rows)*cols + c)
			edges = append(edges, [2]int32{v, right}, [2]int32{v, down})
		}
	}
	g := newCSR("torus-csr", rows*cols, edges)
	const s = 8
	owner := Partition(g, s)
	checkPartition(t, owner, s)
	striped := make([]int32, g.Size())
	for v := range striped {
		striped[v] = int32(v % s)
	}
	bfsCut, stripedCut := CutFraction(g, owner), CutFraction(g, striped)
	// Measured: BFS ≈ 0.16 vs striped 0.50 (the ideal rectangular band is
	// 0.125; BFS frontiers are ragged). Require at least a 2× win.
	if bfsCut > stripedCut/2 {
		t.Fatalf("BFS cut %.3f on torus CSR, want < %.3f (striped/2, striped=%.3f)", bfsCut, stripedCut/2, stripedCut)
	}
}

// TestPartitionAligned pins the cluster-alignment contract the decentralized
// sharded engine relies on: no group straddles shards, singletons (< 0
// entries) spread for balance, and the assignment is deterministic.
func TestPartitionAligned(t *testing.T) {
	// 40 nodes: four groups of 8 rooted at 0, 8, 16, 24, plus 8 singletons.
	group := make([]int32, 40)
	for v := range group {
		if v < 32 {
			group[v] = int32(v / 8 * 8)
		} else {
			group[v] = -1
		}
	}
	for _, s := range []int{1, 2, 3, 5} {
		owner := PartitionAligned(group, s)
		if len(owner) != len(group) {
			t.Fatalf("s=%d: owner length %d, want %d", s, len(owner), len(group))
		}
		for v, g := range group {
			if owner[v] < 0 || int(owner[v]) >= s {
				t.Fatalf("s=%d: node %d has owner %d outside [0, %d)", s, v, owner[v], s)
			}
			if g >= 0 && owner[v] != owner[g] {
				t.Fatalf("s=%d: node %d (group %d) on shard %d, group root on %d — group straddles shards", s, v, g, owner[v], owner[g])
			}
		}
		again := PartitionAligned(group, s)
		for v := range owner {
			if owner[v] != again[v] {
				t.Fatalf("s=%d: PartitionAligned not deterministic at node %d", s, v)
			}
		}
	}
	// Greedy least-loaded placement keeps shard loads within one group size.
	owner := PartitionAligned(group, 2)
	load := make([]int, 2)
	for _, b := range owner {
		load[b]++
	}
	if diff := load[0] - load[1]; diff < -8 || diff > 8 {
		t.Fatalf("shard loads %v differ by more than one group", load)
	}
}

// TestPartitionAlignedAllSingletons checks the degenerate all-singleton
// input balances like a plain partition.
func TestPartitionAlignedAllSingletons(t *testing.T) {
	group := make([]int32, 17)
	for v := range group {
		group[v] = -1
	}
	checkPartition(t, PartitionAligned(group, 4), 4)
}
