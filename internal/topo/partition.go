package topo

// Partition assigns every node of g to one of s shards, returning the
// owner array (owner[v] ∈ [0, s)). Sharded execution pays one exchange-
// buffer hop per cross-shard partner sample, so the partitioner's job is
// locality: keep each shard's sampled partners inside the shard as often
// as the topology allows.
//
// For topologies whose node numbering already encodes locality — ring and
// torus neighbors are close in id, and the complete graph has no locality
// to exploit — contiguous balanced blocks are optimal (a ring block of
// length L has 2·width·2 boundary edges regardless of L; a torus block of
// whole rows has one row of boundary per side). CSR graphs (random-regular,
// Erdős–Rényi) get a BFS-greedy partition: blocks grown breadth-first over
// the adjacency structure so that most of a block's neighbors were placed
// in the same block.
//
// The assignment is deterministic — a pure function of (g, s) — because
// shard ownership feeds the sharded kernel's RNG substream derivation and
// result merging; any ambient source of order (map iteration, goroutine
// timing) would break run reproducibility.
func Partition(g Sampler, s int) []int32 {
	n := g.Size()
	if s < 1 {
		s = 1
	}
	if s > n {
		s = n
	}
	if ag, ok := g.(*AdjGraph); ok && s > 1 {
		return bfsPartition(ag, s)
	}
	return blockPartition(n, s)
}

// blockPartition cuts [0, n) into s contiguous blocks whose sizes differ by
// at most one: block b gets n/s nodes plus one of the n%s leftovers.
func blockPartition(n, s int) []int32 {
	owner := make([]int32, n)
	v := 0
	for b := 0; b < s; b++ {
		size := n / s
		if b < n%s {
			size++
		}
		for i := 0; i < size; i++ {
			owner[v] = int32(b)
			v++
		}
	}
	return owner
}

// bfsPartition grows s blocks of near-equal size breadth-first over the
// CSR adjacency: each block starts from the lowest-numbered unassigned
// node and absorbs a BFS frontier until full, so most edges stay inside a
// block on graphs with any neighborhood structure. The frontier queue
// carries over across block boundaries — when a block fills mid-layer, the
// next block continues from the same frontier, which keeps adjacent
// regions in adjacent shards. Deterministic: BFS order is fixed by the CSR
// layout and node numbering.
func bfsPartition(g *AdjGraph, s int) []int32 {
	n := g.Size()
	owner := make([]int32, n)
	for v := range owner {
		owner[v] = -1
	}
	queue := make([]int32, 0, n)
	qpos := 0
	next := 0 // lowest node not yet assigned (scan cursor)

	for b := 0; b < s; b++ {
		size := n / s
		if b < n%s {
			size++
		}
		for taken := 0; taken < size; {
			var v int32
			if qpos < len(queue) {
				v = queue[qpos]
				qpos++
				if owner[v] >= 0 {
					continue
				}
			} else {
				for owner[next] >= 0 {
					next++
				}
				v = int32(next)
			}
			owner[v] = int32(b)
			taken++
			for _, w := range g.adj[g.off[v]:g.off[v+1]] {
				if owner[w] < 0 {
					queue = append(queue, w)
				}
			}
		}
	}
	return owner
}

// PartitionAligned assigns every node to one of s shards so that no group
// ever straddles a shard boundary: group[v] names the group node v belongs
// to (any representative id in [0, n); < 0 means v is a singleton), and all
// members of a group land on the same shard. The decentralized engine
// passes a clustering's LeaderOf array here, which makes every cluster —
// and therefore all intra-cluster leader traffic — shard-local.
//
// Groups are placed greedily: representatives are visited in ascending id
// order and each whole group goes to the currently least-loaded shard
// (ties to the lowest shard id). The result is a pure function of
// (group, s) — deterministic by the same argument as Partition.
func PartitionAligned(group []int32, s int) []int32 {
	n := len(group)
	if s < 1 {
		s = 1
	}
	if s > n {
		s = n
	}
	// size[g] counts the members of the group represented by node g;
	// singletons are groups of their own node.
	size := make([]int32, n)
	for v, g := range group {
		if g < 0 {
			g = int32(v)
		}
		size[g]++
	}
	load := make([]int, s)
	shardOf := make([]int32, n)
	for g := 0; g < n; g++ {
		if size[g] == 0 {
			continue
		}
		best := 0
		for b := 1; b < s; b++ {
			if load[b] < load[best] {
				best = b
			}
		}
		shardOf[g] = int32(best)
		load[best] += int(size[g])
	}
	owner := make([]int32, n)
	for v, g := range group {
		if g < 0 {
			g = int32(v)
		}
		owner[v] = shardOf[g]
	}
	return owner
}

// CutFraction reports the fraction of directed edges of a CSR graph that
// cross shard boundaries under owner — a diagnostic for partition quality,
// used by tests and benchmarks to verify the BFS partitioner beats naive
// striping on graphs with neighborhood structure.
func CutFraction(g *AdjGraph, owner []int32) float64 {
	if len(g.adj) == 0 {
		return 0
	}
	cut := 0
	for v := 0; v < g.Size(); v++ {
		for _, w := range g.adj[g.off[v]:g.off[v+1]] {
			if owner[v] != owner[w] {
				cut++
			}
		}
	}
	return float64(cut) / float64(len(g.adj))
}
