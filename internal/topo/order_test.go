package topo

import "testing"

// checkBlockOrder asserts the BlockOrder contract: off covers [0, n) with
// strictly increasing boundaries, and perm (when non-nil) is a permutation.
func checkBlockOrder(t *testing.T, g Sampler, target int) (perm, off []int32) {
	t.Helper()
	n := g.Size()
	perm, off = BlockOrder(g, target)
	if len(off) < 2 || off[0] != 0 || off[len(off)-1] != int32(n) {
		t.Fatalf("off = %v does not cover [0, %d)", off, n)
	}
	for b := 1; b < len(off); b++ {
		if off[b] <= off[b-1] {
			t.Fatalf("empty or inverted block %d: off = %v", b-1, off)
		}
	}
	if perm != nil {
		if len(perm) != n {
			t.Fatalf("perm length %d != n %d", len(perm), n)
		}
		seen := make([]bool, n)
		for _, v := range perm {
			if v < 0 || int(v) >= n || seen[v] {
				t.Fatalf("perm is not a permutation: node %d repeated or out of range", v)
			}
			seen[v] = true
		}
	}
	return perm, off
}

func TestBlockOrderIdentityKinds(t *testing.T) {
	ring, err := NewRing(1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	for name, g := range map[string]Sampler{
		"complete": NewComplete(1000),
		"ring":     ring,
	} {
		perm, off := checkBlockOrder(t, g, 128)
		if perm != nil {
			t.Errorf("%s: want identity order (nil perm), got a permutation", name)
		}
		for b := 1; b < len(off); b++ {
			if size := off[b] - off[b-1]; size > 129 {
				t.Errorf("%s: block %d holds %d nodes, target 128", name, b-1, size)
			}
		}
	}
}

func TestBlockOrderTorusTiles(t *testing.T) {
	g, err := NewTorus(40, 50)
	if err != nil {
		t.Fatal(err)
	}
	perm, off := checkBlockOrder(t, g, 100)
	if perm == nil {
		t.Fatal("torus larger than one tile should be permuted")
	}
	// Every block is a sub-grid: its nodes span at most √target+1 distinct
	// rows and columns, so in-tile gathers stay within a small footprint.
	for b := 1; b < len(off); b++ {
		rows := map[int32]bool{}
		cols := map[int32]bool{}
		for _, v := range perm[off[b-1]:off[b]] {
			rows[v/50] = true
			cols[v%50] = true
		}
		if len(rows) > 11 || len(cols) > 11 {
			t.Fatalf("block %d spans %dx%d rows/cols for target 100", b-1, len(rows), len(cols))
		}
	}
}

func TestBlockOrderTorusSingleTile(t *testing.T) {
	g, err := NewTorus(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	perm, off := checkBlockOrder(t, g, 1024)
	if perm != nil || len(off) != 2 {
		t.Fatalf("a torus that fits one tile should use the identity order, got %d blocks", len(off)-1)
	}
}

func TestBlockOrderCSRMatchesPartition(t *testing.T) {
	g, err := NewRandomRegular(600, 6, 9)
	if err != nil {
		t.Fatal(err)
	}
	perm, off := checkBlockOrder(t, g, 100)
	if perm == nil {
		t.Fatal("CSR graphs should be grouped by the BFS partition")
	}
	s := len(off) - 1
	owner := Partition(g, s)
	for b := 0; b < s; b++ {
		block := perm[off[b]:off[b+1]]
		for i, v := range block {
			if owner[v] != int32(b) {
				t.Fatalf("node %d in block %d belongs to shard %d", v, b, owner[v])
			}
			if i > 0 && block[i] <= block[i-1] {
				t.Fatalf("block %d not in ascending node order: %v", b, block)
			}
		}
	}
}

func TestBlockOrderDeterministic(t *testing.T) {
	g, err := NewRandomRegular(400, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	p1, o1 := BlockOrder(g, 64)
	p2, o2 := BlockOrder(g, 64)
	if len(p1) != len(p2) || len(o1) != len(o2) {
		t.Fatal("BlockOrder is not deterministic")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("perm diverges at %d", i)
		}
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("off diverges at %d", i)
		}
	}
}

func TestBlockOrderTinyTarget(t *testing.T) {
	checkBlockOrder(t, NewComplete(7), 1)
	g, err := NewTorus(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	checkBlockOrder(t, g, 1)
}
