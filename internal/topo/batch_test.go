package topo

import (
	"fmt"
	"testing"

	"plurality/internal/xrand"
)

// batchTestGraphs builds one instance of every topology kind for a given
// (n, seed) pair, mirroring the public layer's five TopologySpec kinds.
func batchTestGraphs(t testing.TB, n int, seed uint64) map[string]Sampler {
	t.Helper()
	ring, err := NewRing(n, 3)
	if err != nil {
		t.Fatal(err)
	}
	rows, cols, ok := NearSquareDims(n)
	if !ok {
		t.Fatalf("no torus dims for n=%d", n)
	}
	torus, err := NewTorus(rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := NewRandomRegular(n, 4, seed)
	if err != nil {
		t.Fatal(err)
	}
	er, err := NewErdosRenyi(n, 0.05, seed)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Sampler{
		"complete":       NewComplete(n),
		"ring":           ring,
		"torus":          torus,
		"random-regular": reg,
		"erdos-renyi":    er,
	}
}

// TestSampleNeighborsEquivalence pins the scalar-equivalence invariant for
// every topology kind across random (n, seed) pairs: the batch path must be
// draw-for-draw identical to scalar SampleNeighbor calls — same outputs and
// the same final RNG stream position — including when the batch is consumed
// in uneven chunks.
func TestSampleNeighborsEquivalence(t *testing.T) {
	meta := xrand.New(20260729)
	for trial := 0; trial < 8; trial++ {
		n := 120 + meta.Intn(800)
		if _, _, ok := NearSquareDims(n); !ok {
			n = 400 + trial // guaranteed torus-factorable fallback stays deterministic
		}
		seed := meta.Uint64()
		for kind, g := range batchTestGraphs(t, n, seed) {
			t.Run(fmt.Sprintf("%s/n=%d", kind, n), func(t *testing.T) {
				drawSeed := meta.Uint64()
				scalarR := xrand.New(drawSeed)
				batchR := xrand.New(drawSeed)
				chunkR := xrand.New(drawSeed)

				vs := make([]int32, 3*n)
				vsR := xrand.New(seed ^ 0x5eed)
				for i := range vs {
					vs[i] = int32(vsR.Intn(n))
				}
				want := make([]int32, len(vs))
				for i, v := range vs {
					want[i] = int32(g.SampleNeighbor(scalarR, int(v)))
				}

				got := make([]int32, len(vs))
				SampleNeighbors(g, batchR, vs, got)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("batch[%d] = %d, scalar %d (v=%d)", i, got[i], want[i], vs[i])
					}
				}
				if batchR.State() != scalarR.State() {
					t.Fatal("batch consumed a different number of draws than the scalar path")
				}

				// Chunked consumption must splice into the same stream.
				bs := Batch(g)
				chunked := make([]int32, len(vs))
				for lo := 0; lo < len(vs); {
					hi := lo + 1 + int(vs[lo])%97
					if hi > len(vs) {
						hi = len(vs)
					}
					bs.SampleNeighbors(chunkR, vs[lo:hi], chunked[lo:hi])
					lo = hi
				}
				for i := range want {
					if chunked[i] != want[i] {
						t.Fatalf("chunked[%d] = %d, scalar %d", i, chunked[i], want[i])
					}
				}
				if chunkR.State() != scalarR.State() {
					t.Fatal("chunked batch consumed a different number of draws")
				}
			})
		}
	}
}

// TestBatchFallback pins that a Sampler without a native bulk path still
// works through Batch / SampleNeighbors, with the definitional scalar
// semantics.
func TestBatchFallback(t *testing.T) {
	g := opaque{NewComplete(50)}
	if _, ok := Sampler(g).(BatchSampler); ok {
		t.Fatal("test double unexpectedly implements BatchSampler")
	}
	a, b := xrand.New(5), xrand.New(5)
	vs := []int32{0, 1, 2, 49, 25}
	out := make([]int32, len(vs))
	SampleNeighbors(g, a, vs, out)
	for i, v := range vs {
		if want := int32(g.SampleNeighbor(b, int(v))); out[i] != want {
			t.Fatalf("fallback[%d] = %d, want %d", i, out[i], want)
		}
	}
	if Batch(g).Size() != 50 {
		t.Fatal("Batch wrapper does not forward Sampler methods")
	}
}

// TestSampleNeighborsLengthMismatch pins the programming-error panic.
func TestSampleNeighborsLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched vs/out lengths did not panic")
		}
	}()
	NewComplete(10).SampleNeighbors(xrand.New(1), make([]int32, 3), make([]int32, 4))
}

// opaque hides the batch capability of an embedded sampler, standing in for
// a third-party Sampler implementation.
type opaque struct {
	inner *Complete
}

func (o opaque) SampleNeighbor(r *xrand.RNG, v int) int { return o.inner.SampleNeighbor(r, v) }
func (o opaque) Degree(v int) int                       { return o.inner.Degree(v) }
func (o opaque) Size() int                              { return o.inner.Size() }

// TestDivMagic checks the magic-number divider against hardware division
// over the divisors the torus uses plus adversarial values near the
// uint32 edges (the remainder paths derive mod as a - div(a)·d).
func TestDivMagic(t *testing.T) {
	divisors := []uint32{2, 3, 4, 5, 7, 24, 25, 1000, 1 << 16, 1<<31 - 1, ^uint32(0)}
	values := []uint32{0, 1, 2, 3, 1000, 1 << 20, 1<<31 - 1, 1 << 31, ^uint32(0) - 1, ^uint32(0)}
	r := xrand.New(3)
	for i := 0; i < 1000; i++ {
		values = append(values, uint32(r.Uint64()))
	}
	for _, d := range divisors {
		dm := newDivMagic(d)
		for _, a := range values {
			if got, want := dm.div(a), a/d; got != want {
				t.Fatalf("divMagic(%d).div(%d) = %d, want %d", d, a, got, want)
			}
		}
	}
}

// BenchmarkSampleNeighbors measures the bulk path against the scalar loop
// for every topology kind; CI asserts the batch rows allocate nothing.
func BenchmarkSampleNeighbors(b *testing.B) {
	const n = 9801 // 99x99: factorable for the torus, cheap to build
	for kind, g := range batchTestGraphs(b, n, 7) {
		bs := Batch(g)
		vs := make([]int32, 2048)
		out := make([]int32, 2048)
		vr := xrand.New(11)
		for i := range vs {
			vs[i] = int32(vr.Intn(n))
		}
		b.Run(kind+"/batch", func(b *testing.B) {
			r := xrand.New(1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bs.SampleNeighbors(r, vs, out)
			}
		})
		b.Run(kind+"/scalar", func(b *testing.B) {
			r := xrand.New(1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for j, v := range vs {
					out[j] = int32(g.SampleNeighbor(r, int(v)))
				}
			}
		})
	}
}
