// Package topo abstracts the interaction graph of the consensus protocols.
//
// The paper analyzes every protocol on the complete graph: a node contacting
// a "random other node" draws uniformly from the whole population. That
// assumption used to be copy-pasted into each engine as a local sampleOther
// helper; this package replaces those copies with one Sampler interface so
// the same dynamics run on restricted topologies — rings, tori, random
// regular graphs, Erdős–Rényi graphs — the regimes studied by the related
// general-graph literature (3-majority on expanders, two-choices k-party
// voting).
//
// Complete is the default and the fast path: it keeps O(1) memory, performs
// zero per-sample allocations (asserted by CI's bench-smoke job), and
// consumes randomness exactly like the old sampleOther helpers — one
// TwoDistinct-shaped draw per sample — so runs on the zero-value topology
// are byte-identical to the pre-topology code for the same seed. The sparse
// topologies carry an explicit CSR adjacency (or a closed-form
// neighborhood) and sample a uniform neighbor in O(1) as well.
//
// # Invariants
//
// Samplers are immutable after construction and safe for concurrent
// readers, which is what lets parallel replications (and warm-started
// resumes) share one graph value. Construction of the random kinds is a
// pure function of (n, parameters, seed): the same inputs rebuild the
// identical graph, so checkpoint blobs never serialize a sampler — a
// restored run reconstructs it from the spec. Randomness always flows from
// the caller's RNG into SampleNeighbor, never from sampler-owned state, so
// the RNG stream position — part of the checkpoint state — fully determines
// future samples.
package topo

import (
	"fmt"

	"plurality/internal/xrand"
)

// Sampler is one interaction graph. Implementations must be safe for
// concurrent readers (all methods are pure reads; randomness comes from the
// caller's RNG), which is what lets parallel replications share one graph.
type Sampler interface {
	// SampleNeighbor returns a uniformly random neighbor of v, drawing
	// randomness from r. v must lie in [0, Size()); every node of a valid
	// Sampler has at least one neighbor.
	SampleNeighbor(r *xrand.RNG, v int) int
	// Degree returns the number of neighbors of v (diagnostics).
	Degree(v int) int
	// Size returns the number of nodes.
	Size() int
}

// OrComplete defaults a nil sampler to the complete graph on n nodes — the
// convention every engine config follows — and rejects a sampler whose size
// differs from n.
func OrComplete(tp Sampler, n int) (Sampler, error) {
	if tp == nil {
		return NewComplete(n), nil
	}
	if tp.Size() != n {
		return nil, fmt.Errorf("topo: sampler size %d != n %d", tp.Size(), n)
	}
	return tp, nil
}

// Complete is the complete graph on n nodes — the paper's model and the
// zero-allocation fast path. Its sampling is bit-compatible with the
// historical per-engine sampleOther helpers: one Intn(n-1) draw, shifted
// past v.
type Complete struct {
	n int
}

// NewComplete returns the complete graph on n >= 2 nodes. It panics on a
// smaller n because every engine validates N >= 2 first, making a violation
// a programming error.
func NewComplete(n int) *Complete {
	if n < 2 {
		panic(fmt.Sprintf("topo: complete graph needs n >= 2, got %d", n))
	}
	return &Complete{n: n}
}

// SampleNeighbor returns a uniform node other than v.
func (c *Complete) SampleNeighbor(r *xrand.RNG, v int) int {
	u := r.Intn(c.n - 1)
	if u >= v {
		u++
	}
	return u
}

// Degree returns n-1 for every node.
func (c *Complete) Degree(int) int { return c.n - 1 }

// Size returns the node count.
func (c *Complete) Size() int { return c.n }

// String names the graph for diagnostics.
func (c *Complete) String() string { return fmt.Sprintf("complete(n=%d)", c.n) }

// Ring is the circulant graph on n nodes where v neighbors v±1, …, v±width
// (mod n): width 1 is the plain cycle, larger widths are the standard
// "fat ring" interpolation towards the clique.
type Ring struct {
	n, width int
}

// NewRing returns the ring on n nodes with half-width width >= 1. The 2·width
// neighbor offsets must be distinct modulo n, which requires n >= 2·width+1.
func NewRing(n, width int) (*Ring, error) {
	if width < 1 {
		return nil, fmt.Errorf("topo: ring width %d < 1", width)
	}
	if n < 2*width+1 {
		return nil, fmt.Errorf("topo: ring needs n >= 2*width+1 = %d, got n = %d", 2*width+1, n)
	}
	return &Ring{n: n, width: width}, nil
}

// SampleNeighbor returns a uniform element of {v±1, …, v±width} mod n. The
// wraparound is compare-and-adjust, not %: |off| <= width < n, so one
// conditional correction replaces the integer division.
func (g *Ring) SampleNeighbor(r *xrand.RNG, v int) int {
	j := r.Intn(2 * g.width)
	var off int
	if j < g.width {
		off = j + 1
	} else {
		off = g.width - 1 - j // -(j - width + 1)
	}
	x := v + off
	if x >= g.n {
		x -= g.n
	} else if x < 0 {
		x += g.n
	}
	return x
}

// Degree returns 2·width for every node.
func (g *Ring) Degree(int) int { return 2 * g.width }

// Size returns the node count.
func (g *Ring) Size() int { return g.n }

// String names the graph for diagnostics.
func (g *Ring) String() string { return fmt.Sprintf("ring(n=%d,width=%d)", g.n, g.width) }

// Torus is the rows×cols 2-D grid with wraparound: node (i, j) neighbors
// (i±1, j) and (i, j±1), all modulo the grid dimensions. Node v maps to
// row v/cols, column v%cols.
type Torus struct {
	rows, cols int
	colsDiv    divMagic // magic-number divider by cols for the row/col split
}

// NewTorus returns the rows×cols torus. Both dimensions must be >= 3 so the
// four directional neighbors are distinct (a 2-wide torus folds up and down
// onto the same node, silently biasing the sample).
func NewTorus(rows, cols int) (*Torus, error) {
	if rows < 3 || cols < 3 {
		return nil, fmt.Errorf("topo: torus needs rows, cols >= 3, got %dx%d", rows, cols)
	}
	return &Torus{rows: rows, cols: cols, colsDiv: newDivMagic(uint32(cols))}, nil
}

// SampleNeighbor returns a uniform one of v's four grid neighbors. The
// row/column split goes through the precomputed magic-number divider and the
// wraparounds are compare-and-adjust, so the sample performs no hardware
// division.
func (g *Torus) SampleNeighbor(r *xrand.RNG, v int) int {
	row := int(g.colsDiv.div(uint32(v)))
	col := v - row*g.cols
	switch r.Intn(4) {
	case 0:
		row++
		if row == g.rows {
			row = 0
		}
	case 1:
		if row == 0 {
			row = g.rows
		}
		row--
	case 2:
		col++
		if col == g.cols {
			col = 0
		}
	default:
		if col == 0 {
			col = g.cols
		}
		col--
	}
	return row*g.cols + col
}

// Degree returns 4 for every node.
func (g *Torus) Degree(int) int { return 4 }

// Size returns rows·cols.
func (g *Torus) Size() int { return g.rows * g.cols }

// String names the graph for diagnostics.
func (g *Torus) String() string { return fmt.Sprintf("torus(%dx%d)", g.rows, g.cols) }

// NearSquareDims factors n into rows×cols with both factors >= 3 and the
// pair as close to square as possible — the default torus shape for a given
// node count. ok is false when no such factorization exists (n < 9, primes,
// 2·prime, …).
func NearSquareDims(n int) (rows, cols int, ok bool) {
	if n < 9 {
		return 0, 0, false
	}
	for d := isqrt(n); d >= 3; d-- {
		if n%d == 0 && n/d >= 3 {
			return d, n / d, true
		}
	}
	return 0, 0, false
}

// isqrt returns ⌊√n⌋.
func isqrt(n int) int {
	if n < 0 {
		return 0
	}
	x := n
	y := (x + 1) / 2
	for y < x {
		x = y
		y = (x + n/x) / 2
	}
	return x
}

// AvgDegree returns the mean degree of g — the headline diagnostic the
// public layer surfaces in Result.Stats for non-complete topologies.
func AvgDegree(g Sampler) float64 {
	n := g.Size()
	if n == 0 {
		return 0
	}
	total := 0
	for v := 0; v < n; v++ {
		total += g.Degree(v)
	}
	return float64(total) / float64(n)
}
