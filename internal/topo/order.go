package topo

// This file implements the locality-order API behind the synchronous
// engine's cache-blocked traversal: BlockOrder groups a graph's nodes into
// cache-sized blocks such that most partner gathers issued while a block is
// being processed land on state that is already cache-resident. A block is
// exactly a shard at degree 1 — the torus case tiles the grid and the CSR
// case reuses the BFS-greedy partitioner — so the locality machinery stays
// shared with the sharded kernel (Partition) instead of growing a parallel
// implementation.
//
// BlockOrder only reorders *memory access*, never sampling: callers draw
// their random partners in canonical node-id order first and then walk the
// blocks, so a blocked traversal is observationally identical to a
// sequential one (the engines' RNG streams and golden digests are
// unaffected).

// BlockOrder returns a deterministic cache-blocked traversal order for g:
// a permutation perm of [0, Size()) and block boundaries off (off[0] = 0,
// off[len-1] = Size(), strictly increasing), such that perm[off[b]:off[b+1]]
// lists the nodes of block b. Blocks hold about target nodes each (at least
// 1); callers size target so a block's node state fits in cache.
//
// A nil perm signals the identity order: node ids already encode locality
// (complete graphs have none to exploit, ring neighbors are adjacent in
// id), so the blocks are the contiguous ranges [off[b], off[b+1]) and
// callers can skip the permutation indirection entirely. Tori are tiled
// into near-square sub-grids, and CSR graphs (random-regular, Erdős–Rényi)
// group nodes by the BFS-greedy Partition with one shard per block.
//
// The result is a pure function of (g, target) — like Partition, any
// ambient source of order would break run reproducibility.
func BlockOrder(g Sampler, target int) (perm []int32, off []int32) {
	n := g.Size()
	if target < 1 {
		target = 1
	}
	if target > n {
		target = n
	}
	switch t := g.(type) {
	case *Torus:
		return tileOrder(t, target)
	case *AdjGraph:
		s := (n + target - 1) / target
		if s <= 1 {
			return nil, []int32{0, int32(n)}
		}
		return groupByOwner(bfsPartition(t, s), s)
	default:
		return nil, contiguousBlocks(n, target)
	}
}

// contiguousBlocks cuts [0, n) into ⌈n/target⌉ contiguous ranges of near-
// equal size (they differ by at most one, like blockPartition).
func contiguousBlocks(n, target int) []int32 {
	s := (n + target - 1) / target
	off := make([]int32, s+1)
	v := 0
	for b := 0; b < s; b++ {
		size := n / s
		if b < n%s {
			size++
		}
		v += size
		off[b+1] = int32(v)
	}
	return off
}

// tileOrder covers the rows×cols torus with near-square tiles of about
// target nodes, visiting tiles row-major and each tile's nodes row-major.
// A tile's grid neighbors lie inside the tile or one cell beyond its rim,
// so gathers during a tile stay within the tile plus a thin halo.
func tileOrder(t *Torus, target int) (perm []int32, off []int32) {
	n := t.rows * t.cols
	side := isqrt(target)
	if side < 1 {
		side = 1
	}
	tr, tc := side, side
	if tr > t.rows {
		tr = t.rows
	}
	if tc > t.cols {
		tc = t.cols
	}
	if tr == t.rows && tc == t.cols {
		return nil, []int32{0, int32(n)}
	}
	perm = make([]int32, 0, n)
	off = append(off, 0)
	for r0 := 0; r0 < t.rows; r0 += tr {
		rHi := r0 + tr
		if rHi > t.rows {
			rHi = t.rows
		}
		for c0 := 0; c0 < t.cols; c0 += tc {
			cHi := c0 + tc
			if cHi > t.cols {
				cHi = t.cols
			}
			for r := r0; r < rHi; r++ {
				base := int32(r * t.cols)
				for c := c0; c < cHi; c++ {
					perm = append(perm, base+int32(c))
				}
			}
			off = append(off, int32(len(perm)))
		}
	}
	return perm, off
}

// groupByOwner turns a shard-owner array into a traversal order: nodes
// grouped by owner (block = shard), ascending node id within each block —
// a counting sort, so the order is deterministic and O(n + s).
func groupByOwner(owner []int32, s int) (perm []int32, off []int32) {
	n := len(owner)
	off = make([]int32, s+1)
	for _, o := range owner {
		off[o+1]++
	}
	for b := 1; b <= s; b++ {
		off[b] += off[b-1]
	}
	perm = make([]int32, n)
	cursor := make([]int32, s)
	copy(cursor, off[:s])
	for v := 0; v < n; v++ {
		o := owner[v]
		perm[cursor[o]] = int32(v)
		cursor[o]++
	}
	return perm, off
}
