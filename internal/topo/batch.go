package topo

import (
	"fmt"
	"math/bits"

	"plurality/internal/xrand"
)

// This file implements the batched sampling fast path. The contract every
// implementation obeys is the scalar-equivalence invariant:
//
//	SampleNeighbors(r, vs, out) consumes r's stream exactly as
//	len(vs) scalar SampleNeighbor(r, vs[i]) calls in index order, and
//	out[i] is the exact value call i would have returned.
//
// Batching is therefore purely a performance choice — a batched engine run
// is byte-identical to a scalar one, which is what keeps the golden kernel
// digests (TestKernelGolden) and snapshot roundtrips valid. The invariant
// is pinned for every built-in topology by TestSampleNeighborsEquivalence.
//
// The speed comes from three places: the per-sample virtual call is
// amortized over the whole slice, the raw draws flow through the
// xrand.Fill* bulk primitives (generator state stays in registers), and the
// per-kind transforms are branch-minimized (compare-and-adjust wraparound,
// magic-number division instead of hardware divide).

// BatchSampler is the optional bulk-sampling capability of a Sampler. All
// built-in topologies implement it; third-party Samplers keep working
// through the scalar fallback of Batch / SampleNeighbors.
type BatchSampler interface {
	Sampler
	// SampleNeighbors fills out[i] with a uniform neighbor of vs[i],
	// consuming randomness from r exactly as len(vs) scalar SampleNeighbor
	// calls in index order. vs and out must have equal length and must not
	// alias.
	SampleNeighbors(r *xrand.RNG, vs, out []int32)
}

// SampleNeighbors samples a neighbor for every element of vs into out,
// using s's bulk path when it has one and falling back to scalar calls
// otherwise. Engines on a hot loop should resolve the capability once with
// Batch instead of paying the type assertion per call.
func SampleNeighbors(s Sampler, r *xrand.RNG, vs, out []int32) {
	if bs, ok := s.(BatchSampler); ok {
		bs.SampleNeighbors(r, vs, out)
		return
	}
	scalarBatch{s}.SampleNeighbors(r, vs, out)
}

// Batch adapts any Sampler to the BatchSampler interface: samplers with a
// native bulk path are returned as-is, anything else is wrapped in a scalar
// fallback loop. Engines resolve this once at setup and call
// SampleNeighbors unconditionally on the hot path.
func Batch(s Sampler) BatchSampler {
	if bs, ok := s.(BatchSampler); ok {
		return bs
	}
	return scalarBatch{s}
}

// scalarBatch is the fallback BatchSampler over plain scalar calls — the
// definitional form of the scalar-equivalence invariant.
type scalarBatch struct {
	Sampler
}

func (sb scalarBatch) SampleNeighbors(r *xrand.RNG, vs, out []int32) {
	checkBatchArgs(len(vs), len(out))
	for i, v := range vs {
		out[i] = int32(sb.Sampler.SampleNeighbor(r, int(v)))
	}
}

// checkBatchArgs panics on mismatched batch slices — always a programming
// error in the calling engine.
func checkBatchArgs(nvs, nout int) {
	if nvs != nout {
		panic(fmt.Sprintf("topo: SampleNeighbors with len(vs)=%d != len(out)=%d", nvs, nout))
	}
}

// SampleNeighbors fills out with uniform non-self nodes: one bulk
// Intn(n-1) pass, then a branch-free shift past each vs[i].
func (c *Complete) SampleNeighbors(r *xrand.RNG, vs, out []int32) {
	checkBatchArgs(len(vs), len(out))
	r.FillInt32n(int32(c.n-1), out)
	for i, v := range vs {
		u := out[i]
		if u >= v {
			u++
		}
		out[i] = u
	}
}

// SampleNeighbors fills out with uniform ring neighbors: one bulk
// Intn(2·width) pass, then closed-form offsets with compare-and-adjust
// wraparound (no division).
func (g *Ring) SampleNeighbors(r *xrand.RNG, vs, out []int32) {
	checkBatchArgs(len(vs), len(out))
	w, n := g.width, g.n
	r.FillInt32n(int32(2*w), out)
	for i, v := range vs {
		j := int(out[i])
		off := j + 1
		if j >= w {
			off = w - 1 - j
		}
		x := int(v) + off
		if x >= n {
			x -= n
		} else if x < 0 {
			x += n
		}
		out[i] = int32(x)
	}
}

// torusSteps maps a direction draw j ∈ [0,4) to its (row, col) offset; the
// table form keeps the batch transform branch-poor.
var torusDRow = [4]int32{1, -1, 0, 0}
var torusDCol = [4]int32{0, 0, 1, -1}

// SampleNeighbors fills out with uniform grid neighbors: one bulk Intn(4)
// pass, then table-driven offsets with compare-and-adjust wraparound. The
// row/column split uses the precomputed magic-number divider, so the
// transform performs no hardware division.
func (g *Torus) SampleNeighbors(r *xrand.RNG, vs, out []int32) {
	checkBatchArgs(len(vs), len(out))
	rows, cols := int32(g.rows), int32(g.cols)
	r.FillInt32n(4, out)
	for i, v := range vs {
		j := out[i]
		row := int32(g.colsDiv.div(uint32(v)))
		col := v - row*cols
		row += torusDRow[j]
		if row == rows {
			row = 0
		} else if row < 0 {
			row = rows - 1
		}
		col += torusDCol[j]
		if col == cols {
			col = 0
		} else if col < 0 {
			col = cols - 1
		}
		out[i] = row*cols + col
	}
}

// SampleNeighbors fills out with uniform CSR neighbors. Regular graphs
// (every built-in RandomRegular instance) take one bulk Intn(d) pass
// followed by a pure gather; mixed-degree graphs fall back to a per-row
// bounded draw, still amortizing the virtual call over the slice.
func (g *AdjGraph) SampleNeighbors(r *xrand.RNG, vs, out []int32) {
	checkBatchArgs(len(vs), len(out))
	if g.uniformDeg > 0 {
		r.FillInt32n(g.uniformDeg, out)
		for i, v := range vs {
			out[i] = g.adj[g.off[v]+int(out[i])]
		}
		return
	}
	for i, v := range vs {
		lo, hi := g.off[v], g.off[v+1]
		out[i] = g.adj[lo+int(r.Uint64n(uint64(hi-lo)))]
	}
}

// divMagic performs division by a fixed uint32 divisor via one 64×64→128
// multiply (Lemire's fastdiv construction), replacing the ~20-cycle
// hardware divide on the torus sampling paths.
type divMagic struct {
	m uint64 // ceil(2^64 / d)
}

// newDivMagic returns the magic constant for divisor d >= 2 (d = 1 would
// need a 65-bit constant; no caller divides by 1 — torus dimensions are
// >= 3).
func newDivMagic(d uint32) divMagic {
	if d < 2 {
		panic(fmt.Sprintf("topo: divMagic needs d >= 2, got %d", d))
	}
	return divMagic{m: ^uint64(0)/uint64(d) + 1}
}

// div returns a / d for any a < 2^32; callers derive the remainder as
// a - div(a)·d, which is cheaper than a second magic multiply.
func (dm divMagic) div(a uint32) uint32 {
	hi, _ := bits.Mul64(dm.m, uint64(a))
	return uint32(hi)
}

// Scratch is a reusable sampling workspace: the (vs, out) slice pair every
// batched engine hot loop feeds to SampleNeighbors. A nil *Scratch is not
// usable; engines default one per run, and the public batch layer threads
// one per worker through harness.ForEachWorkersScratch so replications
// executed by the same worker share buffers instead of reallocating them.
// Scratch is not safe for concurrent use — exactly like the RNGs it rides
// alongside, each worker owns its own.
type Scratch struct {
	vs, out []int32
}

// Buffers returns the two length-n batch slices, growing the backing
// arrays when needed. The contents are unspecified; callers overwrite vs
// and then fill out through SampleNeighbors. Subsequent calls reuse the
// same arrays, so at most one caller may hold the buffers at a time.
func (s *Scratch) Buffers(n int) (vs, out []int32) {
	if cap(s.vs) < n {
		s.vs = make([]int32, n)
		s.out = make([]int32, n)
	}
	return s.vs[:n], s.out[:n]
}

// Compile-time checks: every built-in topology implements the bulk path.
var (
	_ BatchSampler = (*Complete)(nil)
	_ BatchSampler = (*Ring)(nil)
	_ BatchSampler = (*Torus)(nil)
	_ BatchSampler = (*AdjGraph)(nil)
)
