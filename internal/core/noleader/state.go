package noleader

import (
	"math"

	"plurality/internal/cluster"
	"plurality/internal/opinion"
	"plurality/internal/sim"
	"plurality/internal/xrand"
)

// consensusState bundles the mutable state of the consensus phase.
type consensusState struct {
	cfg  Config
	cl   *cluster.Clustering
	sm   *sim.Simulator
	smp  *xrand.RNG
	latR *xrand.RNG

	cols     []opinion.Opinion
	gens     []int32
	finished []bool
	locked   []bool
	tmpGen   []int32 // leader gen stored at the previous own-leader contact
	tmpState []int8  // leader state stored at the previous own-leader contact

	counts  opinion.Counts
	maxGen  int
	leaders map[int]*leaderState
	gStar   int
	load    map[int]map[int]uint64 // leader -> time-unit bucket -> messages

	plurality opinion.Opinion
	mono      bool
	monoAt    float64

	phase map[int]*GenPhases
	res   *Result
}

// notePhase updates the Figure 2 marks for generation g entering state s.
func (rs *consensusState) notePhase(g int, s LeaderStateKind, t float64) {
	ph, ok := rs.phase[g]
	if !ok {
		ph = &GenPhases{Gen: g,
			FirstTwoChoices: -1, LastTwoChoices: -1,
			FirstSleeping: -1, LastSleeping: -1,
			FirstPropagation: -1, LastPropagation: -1}
		rs.phase[g] = ph
	}
	var first, last *float64
	switch s {
	case StateTwoChoices:
		first, last = &ph.FirstTwoChoices, &ph.LastTwoChoices
	case StateSleeping:
		first, last = &ph.FirstSleeping, &ph.LastSleeping
	case StatePropagation:
		first, last = &ph.FirstPropagation, &ph.LastPropagation
	default:
		return
	}
	if *first < 0 || t < *first {
		*first = t
	}
	if t > *last {
		*last = t
	}
}

// setLeader transitions leader l to (gen, state), recording the phase marks.
func (rs *consensusState) setLeader(l int, st *leaderState, gen int, s LeaderStateKind) {
	if gen != st.gen || s != st.state {
		st.gen = gen
		st.state = s
		rs.notePhase(gen, s, rs.sm.Now())
	}
}

// leaderMessage accounts one message reaching leader l, bucketed by time
// unit for the §4.5 congestion metric.
func (rs *consensusState) leaderMessage(l int) {
	rs.res.TotalLeaderMessages++
	bucket := int(rs.sm.Now() / rs.cfg.C1)
	lb, ok := rs.load[l]
	if !ok {
		lb = make(map[int]uint64)
		rs.load[l] = lb
	}
	lb[bucket]++
}

// signal processes an (i, s, hasChanged)-signal arriving at leader l
// (Algorithm 5).
func (rs *consensusState) signal(l int, i int, s LeaderStateKind, hasChanged bool) {
	st, ok := rs.leaders[l]
	if !ok {
		return
	}
	rs.leaderMessage(l)
	if rs.mono {
		return
	}
	// Lines 1-3: lexicographic adoption of fresher leader states. Only the
	// tick counter t is rebased (Algorithm 5 line 3); gen_size survives
	// state-only changes and resets only when the generation moves on.
	if i > 0 && (i > st.gen || (i == st.gen && s > st.state)) {
		genChanged := i > st.gen
		rs.setLeader(l, st, i, s)
		switch s {
		case StateTwoChoices:
			st.t = 0
		case StateSleeping:
			st.t = st.sleepAt
		case StatePropagation:
			st.t = st.propAt
		}
		if genChanged {
			st.genSize = 0
		}
	}
	// Lines 4-9: the 0-signal clock.
	if i == 0 {
		st.t++
		if st.state == StateTwoChoices && st.t >= st.sleepAt {
			rs.setLeader(l, st, st.gen, StateSleeping)
		} else if st.state == StateSleeping && st.t >= st.propAt {
			rs.setLeader(l, st, st.gen, StatePropagation)
		}
	}
	// Lines 10-15: population estimate of the newest generation.
	if hasChanged && i == st.gen {
		st.genSize++
		thresh := int(math.Ceil(rs.cfg.GenFraction * float64(st.card)))
		if st.genSize >= thresh && st.gen < rs.gStar {
			rs.setLeader(l, st, st.gen+1, StateTwoChoices)
			st.t = 0
			st.genSize = 0
		}
	}
}

// sendSignal delivers an (i, s, hasChanged)-signal to leader l after one
// channel latency; fire-and-forget.
func (rs *consensusState) sendSignal(l int, i int, s LeaderStateKind, hasChanged bool) {
	if l < 0 {
		return
	}
	rs.sm.After(rs.cfg.Latency.Sample(rs.latR), func() {
		rs.signal(l, i, s, hasChanged)
	})
}

// setNode commits a color/generation update for node v.
func (rs *consensusState) setNode(v int, col opinion.Opinion, gen int32) {
	old := rs.cols[v]
	rs.cols[v] = col
	rs.gens[v] = gen
	if int(gen) > rs.maxGen {
		rs.maxGen = int(gen)
	}
	if old != col {
		rs.counts[old]--
		rs.counts[col]++
		if rs.counts[col] == rs.cfg.N && !rs.mono {
			rs.mono = true
			rs.monoAt = rs.sm.Now()
		}
	}
}

// tick handles one Poisson tick of node v (Algorithm 4).
func (rs *consensusState) tick(v int) {
	if rs.mono {
		return
	}
	myLeader := int(rs.cl.LeaderOf[v])
	participates := false
	if myLeader >= 0 {
		_, participates = rs.leaders[myLeader]
	}
	// Line 1: (0,3,·)-signal to the own leader.
	if participates {
		rs.sendSignal(myLeader, 0, StatePropagation, false)
	}
	// Line 2: locking.
	if rs.locked[v] {
		return
	}
	rs.locked[v] = true

	// Sample v1, v2, v3 now; their states are read at channel completion.
	v1 := rs.cfg.Topo.SampleNeighbor(rs.smp, v)
	v2 := rs.cfg.Topo.SampleNeighbor(rs.smp, v)
	v3 := rs.cfg.Topo.SampleNeighbor(rs.smp, v)
	// Accumulated latency: three contacts in parallel, then own leader and
	// v3's leader in parallel (§4.3).
	lat := rs.cfg.Latency
	three := math.Max(lat.Sample(rs.latR), math.Max(lat.Sample(rs.latR), lat.Sample(rs.latR)))
	two := math.Max(lat.Sample(rs.latR), lat.Sample(rs.latR))
	rs.sm.After(three+two, func() { rs.complete(v, v1, v2, v3, myLeader, participates) })
}

// complete handles node v's established channels (Algorithm 4 lines 5-21).
func (rs *consensusState) complete(v, v1, v2, v3, myLeader int, participates bool) {
	defer func() { rs.locked[v] = false }()
	if rs.mono {
		return
	}
	// Line 5: a finished node pushes its final opinion.
	if rs.finished[v] {
		for _, u := range [3]int{v1, v2, v3} {
			rs.setNode(u, rs.cols[v], rs.gens[u])
			rs.finished[u] = true
		}
		return
	}
	// Line 6-7: adopt a finished sample.
	for _, u := range [3]int{v1, v2, v3} {
		if rs.finished[u] {
			rs.setNode(v, rs.cols[u], rs.gens[v])
			rs.finished[v] = true
			return
		}
	}
	if !participates {
		// Nodes outside participating clusters only take part in the
		// finished-flag endgame (Theorem 27's "taken care of at the end").
		return
	}
	// Line 8: the sampled third node's leader must be active.
	l := int(rs.cl.LeaderOf[v3])
	lst, ok := rs.leaders[l]
	if !ok {
		return // gen(l) = 0: non-active cluster sampled
	}
	rs.leaderMessage(l) // the (gen, state) read is one served request
	lGen, lState := lst.gen, lst.state
	inSync := int(rs.tmpGen[v]) == lGen && LeaderStateKind(rs.tmpState[v]) == lState

	promoted := false
	if inSync {
		g1, g2 := rs.gens[v1], rs.gens[v2]
		gv := rs.gens[v]
		switch {
		case lState == StateTwoChoices &&
			g1 == g2 && int(g1) == lGen-1 && gv <= g1 &&
			rs.cols[v1] == rs.cols[v2]:
			// Line 13-16: two-choices promotion into generation lGen.
			rs.setNode(v, rs.cols[v1], int32(lGen))
			rs.sendSignal(myLeader, lGen, StateTwoChoices, true)
			promoted = true
		default:
			// Line 9-12: propagation. Algorithm 4 spells out the
			// top-generation case (gen(v_i) = gen(l), state 3); the prose
			// defers lower generations to Algorithm 2's rule
			// (gen(v̄) < gen is always safe), which we follow.
			pick := -1
			var pickGen int32 = -1
			for _, x := range [2]int{v1, v2} {
				gx := rs.gens[x]
				if gx > gv && (int(gx) < lGen ||
					(int(gx) == lGen && lState == StatePropagation)) && gx > pickGen {
					pick = x
					pickGen = gx
				}
			}
			if pick >= 0 {
				rs.setNode(v, rs.cols[pick], rs.gens[pick])
				rs.sendSignal(myLeader, int(rs.gens[pick]), StatePropagation, true)
				promoted = true
			}
		}
	}
	if !promoted {
		// Line 17-18: report the sampled leader's state to the own leader
		// (the broadcast backbone of Algorithm 5 lines 1-3).
		rs.sendSignal(myLeader, lGen, lState, false)
	}
	// Line 19: refresh the stored leader view from the own leader.
	if own, ok := rs.leaders[myLeader]; ok {
		rs.leaderMessage(myLeader)
		rs.tmpGen[v] = int32(own.gen)
		rs.tmpState[v] = int8(own.state)
	}
	// Line 20: the final generation finishes.
	if int(rs.gens[v]) >= rs.gStar {
		rs.finished[v] = true
	}
}
