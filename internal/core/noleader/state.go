package noleader

import (
	"math"

	"plurality/internal/adversary"
	"plurality/internal/cluster"
	"plurality/internal/metrics"
	"plurality/internal/opinion"
	"plurality/internal/sim"
	"plurality/internal/topo"
	"plurality/internal/xrand"
)

// Typed event kinds of the decentralized consensus engine (see HandleEvent).
// The cold-path actions (periodic recorder, deadline watchdog) are typed
// events too, so the pending queue is plain data and the consensus phase is
// checkpointable mid-flight.
const (
	// evTick is one Poisson tick of node ev.Node.
	evTick int32 = iota
	// evSignal is an (i, s, hasChanged)-signal arriving at leader ev.Node
	// with i = ev.A, s = ev.B and hasChanged = ev.C != 0.
	evSignal
	// evComplete is node ev.Node's channels to samples ev.A, ev.B, ev.C
	// completing (Algorithm 4 lines 5-21).
	evComplete
	// evRecord is the periodic trajectory recorder; it reschedules itself
	// every cfg.RecordEvery time steps.
	evRecord
	// evDeadline is the hard MaxTime watchdog.
	evDeadline
	// evCrash is one crash-adversary action: a one-shot fail-stop of the
	// victim pool, or one churn toggle (see internal/adversary).
	evCrash
	// evAdvDeliver delivers a message the delay adversary held back: A is
	// the payload-arena slot holding the original event.
	evAdvDeliver
)

// consensusState bundles the mutable state of the consensus phase. The
// per-leader state is held in dense struct-of-arrays form — one slot per
// participating leader, addressed through leaderIdx — so the hot signal
// path is pure slice arithmetic with no map lookups or pointer chasing.
type consensusState struct {
	cfg     Config
	cl      *cluster.Clustering
	sm      *sim.Simulator
	clocks  *sim.Clocks
	tickFn  func(int)         // rs.tick bound once so Fire calls allocate nothing
	bs      topo.BatchSampler // cfg.Topo's bulk path, resolved once
	scratch *topo.Scratch     // batch-sampling buffers (per-worker under RunBatch)
	smp     *xrand.RNG
	latR    *xrand.RNG

	cols     []opinion.Opinion
	gens     []int32
	finished []bool
	locked   []bool
	tmpGen   []int32 // leader gen stored at the previous own-leader contact
	tmpState []int8  // leader state stored at the previous own-leader contact

	counts opinion.Counts
	maxGen int

	// leaderIdx maps a node id to its dense leader slot, -1 for everything
	// that is not a participating leader. The l* slices are indexed by slot.
	leaderIdx []int32
	lGen      []int32
	lState    []int8
	lCard     []int32
	lT        []int32 // 0-signal counter
	lGenSize  []int32 // hasChanged signals for the current gen
	lSleepAt  []int32 // t threshold for state 2
	lPropAt   []int32 // t threshold for state 3

	gStar int

	// §4.5 congestion metric: leader-bound messages per C1-wide time
	// bucket. Virtual time is monotone, so per-leader bucket indices are
	// non-decreasing and a running (bucket, count) pair plus a global peak
	// replaces the old per-leader bucket maps.
	loadBucket []int32
	loadCount  []uint64
	peakLoad   uint64

	plurality opinion.Opinion
	mono      bool
	monoAt    float64

	// crashed marks fail-stopped nodes; aliveN is the survivor count
	// against which consensus is detected. The engine owns both — the
	// adversary only decides which node toggles when (see advCrash).
	// Honest runs keep every flag false and aliveN == N.
	crashed []bool
	aliveN  int

	// adv is the run's adversary (nil for honest runs — the nil check is
	// the only cost the hot path pays) and payload the side-arena delayed
	// messages park their original event in.
	adv     *adversary.State
	payload *sim.PayloadArena

	phase map[int]*GenPhases
	res   *Result

	// maxTime is the effective abort horizon and rec the trajectory
	// recorder; both live on the state so the evRecord/evDeadline handlers
	// can reach them.
	maxTime float64
	rec     *metrics.Recorder
}

// HandleEvent dispatches the engine's typed events — the hot path of the
// consensus phase; every case is allocation-free.
func (rs *consensusState) HandleEvent(ev sim.Event) {
	switch ev.Kind {
	case evTick:
		rs.clocks.Fire(ev.Node, rs.tickFn)
	case evSignal:
		rs.signal(int(ev.Node), int(ev.A), LeaderStateKind(ev.B), ev.C != 0)
	case evComplete:
		// The leader of v and its participation bit are static during the
		// consensus phase, so they are recomputed here instead of being
		// carried in the event payload.
		v := int(ev.Node)
		myLeader := int(rs.cl.LeaderOf[v])
		participates := myLeader >= 0 && rs.leaderIdx[myLeader] >= 0
		rs.complete(v, int(ev.A), int(ev.B), int(ev.C), myLeader, participates)
	case evRecord:
		rs.record()
		if rs.mono {
			rs.sm.Stop()
			return
		}
		if rs.sm.Now() >= rs.maxTime {
			rs.res.TimedOut = true
			rs.sm.Stop()
			return
		}
		rs.sm.ScheduleAfter(rs.cfg.RecordEvery, sim.Event{Kind: evRecord})
	case evDeadline:
		if rs.sm.Now() < rs.maxTime {
			// The horizon was extended after this watchdog was queued (a
			// resumed run may override MaxTime); re-arm at the new deadline.
			rs.sm.Schedule(rs.maxTime, sim.Event{Kind: evDeadline})
			return
		}
		if !rs.mono {
			rs.record()
			rs.res.TimedOut = true
			rs.sm.Stop()
		}
	case evCrash:
		rs.advCrash()
	case evAdvDeliver:
		rs.HandleEvent(rs.payload.Take(ev.A))
	}
}

// advCrash applies one crash-adversary action: the one-shot fail-stop of the
// whole victim pool, or — under churn — one crash/recover toggle followed by
// scheduling the next one.
func (rs *consensusState) advCrash() {
	if rs.adv.Churning() {
		v := rs.adv.NextVictim()
		if rs.crashed[v] {
			rs.recoverNode(v)
		} else {
			rs.crashNode(v)
		}
		rs.sm.Schedule(rs.adv.NextCrashAt(), sim.Event{Kind: evCrash})
	} else {
		for _, v := range rs.adv.Victims() {
			rs.crashNode(v)
		}
	}
	// Survivors may already be unanimous.
	for _, cnt := range rs.counts {
		if cnt == rs.aliveN && rs.aliveN > 0 && !rs.mono {
			rs.mono = true
			rs.monoAt = rs.sm.Now()
		}
	}
}

// crashNode fail-stops node v: it stops acting on ticks, becomes unreadable
// when sampled and — if it is a cluster leader — stops serving signals; its
// color leaves the survivor tally.
func (rs *consensusState) crashNode(v int) {
	if rs.crashed[v] {
		return
	}
	rs.crashed[v] = true
	rs.aliveN--
	rs.counts[rs.cols[v]]--
	rs.adv.NoteCrash()
}

// recoverNode rejoins a crashed node with the state it crashed with.
func (rs *consensusState) recoverNode(v int) {
	rs.crashed[v] = false
	rs.aliveN++
	rs.counts[rs.cols[v]]++
	rs.adv.NoteRecovery()
}

// sendMsg schedules a protocol message, giving the delay adversary a chance
// to stretch the delivery: a delayed message parks the original event in the
// payload arena and is re-dispatched by evAdvDeliver. Honest runs take the
// plain path (one nil check, no extra draws).
func (rs *consensusState) sendMsg(d float64, ev sim.Event) {
	if rs.adv != nil {
		if extra := rs.adv.DelayExtra(rs.cfg.Latency); extra > 0 {
			rs.sm.ScheduleAfter(d+extra, sim.Event{Kind: evAdvDeliver, A: rs.payload.Put(ev)})
			return
		}
	}
	rs.sm.ScheduleAfter(d, ev)
}

// record appends one trajectory snapshot at the current virtual time.
func (rs *consensusState) record() {
	p := metrics.Snapshot(rs.sm.Now(), rs.cols, rs.cfg.K, rs.plurality)
	p.MaxGen = rs.maxGen
	rs.rec.Append(p)
}

// notePhase updates the Figure 2 marks for generation g entering state s.
func (rs *consensusState) notePhase(g int, s LeaderStateKind, t float64) {
	ph, ok := rs.phase[g]
	if !ok {
		ph = &GenPhases{Gen: g,
			FirstTwoChoices: -1, LastTwoChoices: -1,
			FirstSleeping: -1, LastSleeping: -1,
			FirstPropagation: -1, LastPropagation: -1}
		rs.phase[g] = ph
	}
	var first, last *float64
	switch s {
	case StateTwoChoices:
		first, last = &ph.FirstTwoChoices, &ph.LastTwoChoices
	case StateSleeping:
		first, last = &ph.FirstSleeping, &ph.LastSleeping
	case StatePropagation:
		first, last = &ph.FirstPropagation, &ph.LastPropagation
	default:
		return
	}
	if *first < 0 || t < *first {
		*first = t
	}
	if t > *last {
		*last = t
	}
}

// setLeader transitions leader slot li to (gen, state), recording the phase
// marks.
func (rs *consensusState) setLeader(li int32, gen int32, s LeaderStateKind) {
	if gen != rs.lGen[li] || int8(s) != rs.lState[li] {
		rs.lGen[li] = gen
		rs.lState[li] = int8(s)
		rs.notePhase(int(gen), s, rs.sm.Now())
	}
}

// leaderMessage accounts one message reaching leader slot li, bucketed by
// time unit for the §4.5 congestion metric.
func (rs *consensusState) leaderMessage(li int32) {
	rs.res.TotalLeaderMessages++
	bucket := int32(rs.sm.Now() / rs.cfg.C1)
	if bucket != rs.loadBucket[li] {
		if rs.loadCount[li] > rs.peakLoad {
			rs.peakLoad = rs.loadCount[li]
		}
		rs.loadBucket[li] = bucket
		rs.loadCount[li] = 0
	}
	rs.loadCount[li]++
}

// signal processes an (i, s, hasChanged)-signal arriving at leader l
// (Algorithm 5).
func (rs *consensusState) signal(l int, i int, s LeaderStateKind, hasChanged bool) {
	li := rs.leaderIdx[l]
	if li < 0 || rs.crashed[l] {
		return // crashed leaders serve nothing until they recover
	}
	rs.leaderMessage(li)
	if rs.mono {
		return
	}
	// Lines 1-3: lexicographic adoption of fresher leader states. Only the
	// tick counter t is rebased (Algorithm 5 line 3); gen_size survives
	// state-only changes and resets only when the generation moves on.
	gen, state := rs.lGen[li], LeaderStateKind(rs.lState[li])
	if i > 0 && (int32(i) > gen || (int32(i) == gen && s > state)) {
		genChanged := int32(i) > gen
		rs.setLeader(li, int32(i), s)
		switch s {
		case StateTwoChoices:
			rs.lT[li] = 0
		case StateSleeping:
			rs.lT[li] = rs.lSleepAt[li]
		case StatePropagation:
			rs.lT[li] = rs.lPropAt[li]
		}
		if genChanged {
			rs.lGenSize[li] = 0
		}
	}
	// Lines 4-9: the 0-signal clock.
	if i == 0 {
		rs.lT[li]++
		if rs.lState[li] == int8(StateTwoChoices) && rs.lT[li] >= rs.lSleepAt[li] {
			rs.setLeader(li, rs.lGen[li], StateSleeping)
		} else if rs.lState[li] == int8(StateSleeping) && rs.lT[li] >= rs.lPropAt[li] {
			rs.setLeader(li, rs.lGen[li], StatePropagation)
		}
	}
	// Lines 10-15: population estimate of the newest generation.
	if hasChanged && int32(i) == rs.lGen[li] {
		rs.lGenSize[li]++
		thresh := int32(math.Ceil(rs.cfg.GenFraction * float64(rs.lCard[li])))
		if rs.lGenSize[li] >= thresh && int(rs.lGen[li]) < rs.gStar {
			rs.setLeader(li, rs.lGen[li]+1, StateTwoChoices)
			rs.lT[li] = 0
			rs.lGenSize[li] = 0
		}
	}
}

// sendSignal delivers an (i, s, hasChanged)-signal to leader l after one
// channel latency; fire-and-forget.
func (rs *consensusState) sendSignal(l int, i int, s LeaderStateKind, hasChanged bool) {
	if l < 0 {
		return
	}
	var hc int32
	if hasChanged {
		hc = 1
	}
	rs.sendMsg(rs.cfg.Latency.Sample(rs.latR),
		sim.Event{Kind: evSignal, Node: int32(l), A: int32(i), B: int32(s), C: hc})
}

// setNode commits a color/generation update for node v.
func (rs *consensusState) setNode(v int, col opinion.Opinion, gen int32) {
	old := rs.cols[v]
	rs.cols[v] = col
	rs.gens[v] = gen
	if int(gen) > rs.maxGen {
		rs.maxGen = int(gen)
	}
	if old != col {
		rs.counts[old]--
		rs.counts[col]++
		// counts tallies survivors only (crashNode removes a victim's
		// color), so unanimity is detected against aliveN; honest runs
		// have aliveN == N and behave exactly as before.
		if rs.counts[col] == rs.aliveN && rs.aliveN > 0 && !rs.mono {
			rs.mono = true
			rs.monoAt = rs.sm.Now()
		}
	}
}

// tick handles one Poisson tick of node v (Algorithm 4).
func (rs *consensusState) tick(v int) {
	if rs.mono || rs.crashed[v] {
		return
	}
	myLeader := int(rs.cl.LeaderOf[v])
	participates := myLeader >= 0 && rs.leaderIdx[myLeader] >= 0
	// Line 1: (0,3,·)-signal to the own leader.
	if participates {
		rs.sendSignal(myLeader, 0, StatePropagation, false)
	}
	// Line 2: locking.
	if rs.locked[v] {
		return
	}
	rs.locked[v] = true

	// Sample v1, v2, v3 now through the topology's bulk path (draw-for-draw
	// identical to three scalar samples); their states are read at channel
	// completion.
	vs, out := rs.scratch.Buffers(3)
	vs[0], vs[1], vs[2] = int32(v), int32(v), int32(v)
	rs.bs.SampleNeighbors(rs.smp, vs, out)
	// Accumulated latency: three contacts in parallel, then own leader and
	// v3's leader in parallel (§4.3).
	lat := rs.cfg.Latency
	three := math.Max(lat.Sample(rs.latR), math.Max(lat.Sample(rs.latR), lat.Sample(rs.latR)))
	two := math.Max(lat.Sample(rs.latR), lat.Sample(rs.latR))
	rs.sendMsg(three+two,
		sim.Event{Kind: evComplete, Node: int32(v), A: out[0], B: out[1], C: out[2]})
}

// complete handles node v's established channels (Algorithm 4 lines 5-21).
func (rs *consensusState) complete(v, v1, v2, v3, myLeader int, participates bool) {
	// The event runs atomically, so the lock can drop on entry: it only
	// gates future tick events.
	rs.locked[v] = false
	if rs.mono || rs.crashed[v] {
		return
	}
	// Adversary view of the three sampled partners: a crashed or dropped
	// partner is unreachable this round, and Byzantine liars misreport
	// their color (generations stay truthful — lying about freshness is a
	// different adversary). Honest runs see every partner up with its true
	// color.
	u1Up, u2Up, u3Up := !rs.crashed[v1], !rs.crashed[v2], !rs.crashed[v3]
	col1, col2, col3 := rs.cols[v1], rs.cols[v2], rs.cols[v3]
	if rs.adv != nil {
		u1Up = u1Up && !rs.adv.DropMessage()
		u2Up = u2Up && !rs.adv.DropMessage()
		u3Up = u3Up && !rs.adv.DropMessage()
		col1 = opinion.Opinion(rs.adv.Lie(v1, int32(col1)))
		col2 = opinion.Opinion(rs.adv.Lie(v2, int32(col2)))
		col3 = opinion.Opinion(rs.adv.Lie(v3, int32(col3)))
	}
	// Line 5: a finished node pushes its final opinion (to the reachable
	// partners; a push onto a crashed node would corrupt the survivor
	// tally).
	if rs.finished[v] {
		for i, u := range [3]int{v1, v2, v3} {
			up := u1Up
			switch i {
			case 1:
				up = u2Up
			case 2:
				up = u3Up
			}
			if !up {
				continue
			}
			rs.setNode(u, rs.cols[v], rs.gens[u])
			rs.finished[u] = true
		}
		return
	}
	// Line 6-7: adopt a finished sample (at the color it reported).
	for i, u := range [3]int{v1, v2, v3} {
		up, cu := u1Up, col1
		switch i {
		case 1:
			up, cu = u2Up, col2
		case 2:
			up, cu = u3Up, col3
		}
		if up && rs.finished[u] {
			rs.setNode(v, cu, rs.gens[v])
			rs.finished[v] = true
			return
		}
	}
	if !participates {
		// Nodes outside participating clusters only take part in the
		// finished-flag endgame (Theorem 27's "taken care of at the end").
		return
	}
	// Line 8: the sampled third node's leader must be active (and, under a
	// crash adversary, both v3's channel and the leader itself alive).
	if !u3Up {
		return
	}
	l := int(rs.cl.LeaderOf[v3])
	var li int32 = -1
	if l >= 0 && !rs.crashed[l] {
		li = rs.leaderIdx[l]
	}
	if li < 0 {
		return // gen(l) = 0: non-active cluster sampled
	}
	rs.leaderMessage(li) // the (gen, state) read is one served request
	lGen, lState := int(rs.lGen[li]), LeaderStateKind(rs.lState[li])
	inSync := int(rs.tmpGen[v]) == lGen && LeaderStateKind(rs.tmpState[v]) == lState

	promoted := false
	if inSync {
		g1, g2 := rs.gens[v1], rs.gens[v2]
		gv := rs.gens[v]
		switch {
		case lState == StateTwoChoices && u1Up && u2Up &&
			g1 == g2 && int(g1) == lGen-1 && gv <= g1 &&
			col1 == col2:
			// Line 13-16: two-choices promotion into generation lGen.
			rs.setNode(v, col1, int32(lGen))
			rs.sendSignal(myLeader, lGen, StateTwoChoices, true)
			promoted = true
		default:
			// Line 9-12: propagation. Algorithm 4 spells out the
			// top-generation case (gen(v_i) = gen(l), state 3); the prose
			// defers lower generations to Algorithm 2's rule
			// (gen(v̄) < gen is always safe), which we follow.
			pick := -1
			var pickGen int32 = -1
			var pickCol opinion.Opinion
			for i, x := range [2]int{v1, v2} {
				up, cx := u1Up, col1
				if i == 1 {
					up, cx = u2Up, col2
				}
				if !up {
					continue
				}
				gx := rs.gens[x]
				if gx > gv && (int(gx) < lGen ||
					(int(gx) == lGen && lState == StatePropagation)) && gx > pickGen {
					pick = x
					pickGen = gx
					pickCol = cx
				}
			}
			if pick >= 0 {
				rs.setNode(v, pickCol, pickGen)
				rs.sendSignal(myLeader, int(pickGen), StatePropagation, true)
				promoted = true
			}
		}
	}
	if !promoted {
		// Line 17-18: report the sampled leader's state to the own leader
		// (the broadcast backbone of Algorithm 5 lines 1-3).
		rs.sendSignal(myLeader, lGen, lState, false)
	}
	// Line 19: refresh the stored leader view from the own leader.
	if ownLi := rs.leaderIdx[myLeader]; ownLi >= 0 && !rs.crashed[myLeader] {
		rs.leaderMessage(ownLi)
		rs.tmpGen[v] = rs.lGen[ownLi]
		rs.tmpState[v] = rs.lState[ownLi]
	}
	// Line 20: the final generation finishes.
	if int(rs.gens[v]) >= rs.gStar {
		rs.finished[v] = true
	}
}
