package noleader

import (
	"fmt"
	"math"

	"plurality/internal/adversary"
	"plurality/internal/cluster"
	"plurality/internal/core/syncgen"
	"plurality/internal/metrics"
	"plurality/internal/opinion"
	"plurality/internal/sim"
	"plurality/internal/snap"
	"plurality/internal/topo"
	"plurality/internal/xrand"
)

// LeaderStateKind is a cluster leader's mode within one generation.
type LeaderStateKind int

const (
	// StateTwoChoices (1) allows two-choices promotions into the leader's
	// newest generation.
	StateTwoChoices LeaderStateKind = 1
	// StateSleeping (2) allows nothing; it absorbs broadcast skew.
	StateSleeping LeaderStateKind = 2
	// StatePropagation (3) allows pull propagation into the newest
	// generation.
	StatePropagation LeaderStateKind = 3
)

// String names the state for logs.
func (s LeaderStateKind) String() string {
	switch s {
	case StateTwoChoices:
		return "two-choices"
	case StateSleeping:
		return "sleeping"
	case StatePropagation:
		return "propagation"
	default:
		return "unknown"
	}
}

// GenPhases records, for one generation, when the fastest and slowest
// leaders entered each state — the six marks t̂₀..t̂₅ of the paper's
// Figure 2.
type GenPhases struct {
	// Gen is the generation index.
	Gen int
	// FirstTwoChoices (t̂₀) and LastTwoChoices (t̂₁) bracket entry into
	// state 1 across leaders; likewise for sleeping (t̂₂, t̂₃) and
	// propagation (t̂₄, t̂₅). A mark is -1 if no leader entered that state.
	FirstTwoChoices, LastTwoChoices   float64
	FirstSleeping, LastSleeping       float64
	FirstPropagation, LastPropagation float64
}

// Result captures one decentralized run.
type Result struct {
	// Outcome summarizes correctness and hitting times of the consensus
	// phase (virtual time, clustering excluded).
	Outcome metrics.Outcome
	// Trajectory holds the consensus-phase snapshots.
	Trajectory metrics.Trajectory
	// Clustering is the structure the consensus phase ran on.
	Clustering *cluster.Clustering
	// PhaseSpans records the Figure 2 marks per generation.
	PhaseSpans []GenPhases
	// EndTime is the consensus-phase virtual time at termination, and
	// ClusteringTime the formation time that preceded it.
	EndTime        float64
	ClusteringTime float64
	// Events is the number of consensus-phase simulator events.
	Events uint64
	// FinalCounts are the opinion counts at termination.
	FinalCounts opinion.Counts
	// InitialPlurality is the opinion that was initially dominant.
	InitialPlurality opinion.Opinion
	// C1 is the steps-per-unit constant used, GStar the generation cap.
	C1    float64
	GStar int
	// TimedOut reports that MaxTime was hit before full consensus.
	TimedOut bool
	// TotalLeaderMessages counts messages reaching any cluster leader, and
	// PeakLeaderLoad the maximum any single leader served per time unit —
	// the §4.5 congestion metric. The decentralized design exists so this
	// stays polylog(n) where the single leader's is Θ(n).
	TotalLeaderMessages uint64
	PeakLeaderLoad      float64
	// AdvCounters tallies the adversary's actions (zero for honest runs).
	AdvCounters adversary.Counters
}

// Run forms clusters and then executes Algorithms 4 and 5 under cfg.
func Run(cfg Config) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if cfg.Shards > 1 {
		return runSharded(cfg)
	}
	root := xrand.New(cfg.Seed)

	// Phase 1: clustering. A restored run decodes the finished clustering
	// from the snapshot instead of replaying formation; the substream draw
	// still happens so the root RNG stays in the same position either way.
	cp := cfg.Cluster
	cp.N = cfg.N
	cp.Latency = cfg.Latency
	cp.Topo = cfg.Topo
	cp.Seed = root.SplitNamed("clustering").Uint64()
	cp.Ctx = cfg.Ctx
	var cl *cluster.Clustering
	var restoreR *snap.Reader
	if cfg.Ckpt.Restoring() {
		restoreR = snap.NewReader(cfg.Ckpt.Restore)
		var err error
		cl, err = cluster.DecodeClustering(restoreR)
		if err != nil {
			return nil, fmt.Errorf("noleader: clustering state: %w", err)
		}
		if cl.N != cfg.N {
			return nil, fmt.Errorf("noleader: %w: clustering for N=%d, run has N=%d", snap.ErrCorrupt, cl.N, cfg.N)
		}
		cl.Topo = cfg.Topo
	} else {
		var err error
		cl, err = cluster.Form(cp)
		if err != nil {
			return nil, err
		}
	}

	// Initial opinions.
	cols := make([]opinion.Opinion, cfg.N)
	if cfg.Assignment != nil {
		copy(cols, cfg.Assignment)
	} else {
		alpha := cfg.Alpha
		if alpha < 1 {
			alpha = 1
		}
		cols = opinion.PlantedBias(cfg.N, cfg.K, alpha, root.SplitNamed("assignment"))
	}
	initCounts := opinion.CountOf(cols, cfg.K)
	pl, _ := initCounts.TopTwo()
	alphaHat := initCounts.Bias()
	gStar := cfg.GStar
	if gStar <= 0 {
		gStar = syncgen.GenerationBudget(cfg.N, alphaHat) + 2
	}
	maxTime := cfg.MaxTime
	if maxTime <= 0 {
		perGen := cfg.C1 * (cfg.TwoChoicesUnits + cfg.SleepUnits +
			math.Log(4.5*float64(cfg.K+1))/math.Log(1.4) + 2)
		maxTime = 6*float64(gStar)*perGen + 20*cfg.C1*math.Log2(float64(cfg.N))
	}

	scratch := cfg.Scratch
	if scratch == nil {
		scratch = &topo.Scratch{}
	}
	rs := &consensusState{
		cfg:       cfg,
		cl:        cl,
		sm:        sim.New(),
		bs:        topo.Batch(cfg.Topo),
		scratch:   scratch,
		smp:       root.SplitNamed("sampling"),
		latR:      root.SplitNamed("latency"),
		cols:      cols,
		gens:      make([]int32, cfg.N),
		finished:  make([]bool, cfg.N),
		locked:    make([]bool, cfg.N),
		tmpGen:    make([]int32, cfg.N),
		tmpState:  make([]int8, cfg.N),
		counts:    initCounts,
		crashed:   make([]bool, cfg.N),
		aliveN:    cfg.N,
		leaderIdx: make([]int32, cfg.N),
		gStar:     gStar,
		plurality: opinion.Opinion(pl),
		phase:     map[int]*GenPhases{},
		res: &Result{
			Clustering:       cl,
			ClusteringTime:   cl.EndTime,
			InitialPlurality: opinion.Opinion(pl),
			C1:               cfg.C1,
			GStar:            gStar,
		},
	}
	for i := range rs.leaderIdx {
		rs.leaderIdx[i] = -1
	}
	participating := cl.ParticipatingLeaders()
	for _, l := range participating {
		li := int32(len(rs.lGen))
		rs.leaderIdx[l] = li
		card := cl.Size[l]
		sleepAt := int32(math.Ceil(cfg.TwoChoicesUnits * cfg.C1 * float64(card)))
		rs.lGen = append(rs.lGen, 1)
		rs.lState = append(rs.lState, int8(StateTwoChoices))
		rs.lCard = append(rs.lCard, int32(card))
		rs.lT = append(rs.lT, 0)
		rs.lGenSize = append(rs.lGenSize, 0)
		rs.lSleepAt = append(rs.lSleepAt, sleepAt)
		rs.lPropAt = append(rs.lPropAt, sleepAt+int32(math.Ceil(cfg.SleepUnits*cfg.C1*float64(card))))
	}
	rs.loadBucket = make([]int32, len(participating))
	rs.loadCount = make([]uint64, len(participating))
	rs.notePhase(1, StateTwoChoices, 0)
	if len(participating) == 0 {
		// Degenerate clustering: report a failed run rather than panic.
		rs.res.TimedOut = true
		rs.res.FinalCounts = initCounts
		rs.res.Outcome = metrics.EvalOutcome(metrics.Trajectory{
			metrics.Snapshot(0, cols, cfg.K, rs.plurality)},
			initCounts, rs.plurality, cfg.Eps)
		return rs.res, nil
	}

	if cfg.Adv.Kind != adversary.None {
		// The adversary draws from a private generator seeded independently
		// of the root stream, so the honest engine streams are untouched.
		adv, err := adversary.New(cfg.Adv, xrand.New(cfg.Adv.Seed))
		if err != nil {
			return nil, fmt.Errorf("noleader: %w", err)
		}
		rs.adv = adv
		rs.payload = &sim.PayloadArena{}
		if _, second := initCounts.TopTwo(); second >= 0 {
			adv.SetLieTarget(int32(second))
		}
		if at := adv.NextCrashAt(); at >= 0 && restoreR == nil {
			rs.sm.Schedule(at, sim.Event{Kind: evCrash})
		}
	}

	rs.maxTime = maxTime
	rs.tickFn = rs.tick
	rs.sm.SetHandler(rs)
	rs.sm.Reserve(3*cfg.N + 64)
	clockR := root.SplitNamed("clocks")
	rs.clocks = sim.NewClocks(rs.sm, clockR, cfg.N, 1, evTick)
	rs.rec = metrics.NewRecorder(cfg.Eps, cfg.DiscardTrajectory, cfg.Observe)
	if restoreR != nil {
		// Deterministic setup above sized every slice; now overwrite all
		// mutable state (event heap included) from the captured payload.
		if err := rs.restore(restoreR, cfg.Ckpt.Perturb); err != nil {
			return nil, err
		}
	} else {
		rs.clocks.StartAll()
		// Periodic recorder + termination watchdog, both typed events so
		// the pending queue stays plain data (see evRecord/evDeadline).
		rs.record()
		rs.sm.ScheduleAfter(cfg.RecordEvery, sim.Event{Kind: evRecord})
		rs.sm.Schedule(maxTime, sim.Event{Kind: evDeadline})
	}

	if err := rs.runSim(cfg.Ctx); err != nil {
		return nil, err
	}

	rs.res.EndTime = rs.sm.Now()
	rs.res.Events = rs.sm.Processed()
	// Fold the still-open time-unit buckets into the running peak.
	for _, c := range rs.loadCount {
		if c > rs.peakLoad {
			rs.peakLoad = c
		}
	}
	rs.res.PeakLeaderLoad = float64(rs.peakLoad)
	rs.res.FinalCounts = opinion.CountOf(rs.cols, cfg.K)
	if last, ok := rs.rec.Last(); !ok || last.Time < rs.res.EndTime {
		rs.record()
	}
	rs.res.Trajectory = rs.rec.Trajectory()
	rs.res.Outcome = rs.rec.Outcome(rs.res.FinalCounts, rs.plurality)
	if rs.adv != nil {
		rs.res.AdvCounters = rs.adv.Counters
	}
	if rs.mono {
		rs.res.Outcome.FullConsensus = true
		rs.res.Outcome.ConsensusTime = rs.monoAt
		if rs.aliveN < cfg.N && rs.aliveN > 0 {
			// Survivor consensus: crashed nodes hold stale colors, so the
			// count-based Outcome cannot see the winner; read it off the
			// first survivor instead.
			for v := 0; v < cfg.N; v++ {
				if !rs.crashed[v] {
					rs.res.Outcome.Winner = rs.cols[v]
					break
				}
			}
			rs.res.Outcome.PluralityWon = rs.res.Outcome.Winner == rs.plurality
		}
	}
	// Flatten the phase map into ordered spans.
	for g := 1; g <= gStar+1; g++ {
		if ph, ok := rs.phase[g]; ok {
			rs.res.PhaseSpans = append(rs.res.PhaseSpans, *ph)
		}
	}
	return rs.res, nil
}
