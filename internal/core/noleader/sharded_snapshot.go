package noleader

import (
	"fmt"

	"plurality/internal/cluster"
	"plurality/internal/metrics"
	"plurality/internal/opinion"
	"plurality/internal/snap"
)

// Sharded checkpointing. A capture happens only at a window barrier — the
// single point where every shard is parked, the push outboxes are drained,
// the dirty lists are empty, the window phase marks are folded and the
// published copies equal the live state — so one serialized pass over the
// global arrays plus one per-shard section (ladder, clocks, RNG substreams,
// and for adversarial runs the decision-view counters and the parked-event
// arena) is a globally consistent cut. The payload leads with the shard
// count and then the finished clustering: a blob taken at Shards=S resumes
// bit-exactly at Shards=S and is rejected with snap.ErrShardCount at any
// other count (runSharded checks before decoding anything else).

// capture serializes the sharded run's mutable state at barrier time t and
// hands it to the checkpoint sink.
func (r *shardedRun) capture(t, nextRec float64) error {
	w := &snap.Writer{}
	w.Int(r.cfg.Shards)
	cluster.EncodeClustering(w, r.cl)
	w.F64(t)
	w.F64(nextRec)
	opinion.EncodeSlice(w, r.cols)
	w.I32s(r.gens)
	w.Bools(r.finished)
	w.Bools(r.locked)
	w.I32s(r.tmpGen)
	w.I8s(r.tmpState)
	opinion.EncodeCounts(w, r.counts)
	w.Int(r.maxGen)
	w.I32s(r.lGen)
	w.I8s(r.lState)
	w.I32s(r.lT)
	w.I32s(r.lGenSize)
	w.I32s(r.loadBucket)
	w.U64s(r.loadCount)
	w.U64(r.peakLoad)
	w.Bool(r.mono)
	w.F64(r.monoAt)
	// The Figure 2 phase marks, flattened in generation order like the
	// serial engine's snapshot (the shard-local maps are empty at a
	// barrier — the merge folded them into r.phase).
	marks := 0
	for g := 1; g <= r.gStar+1; g++ {
		if _, ok := r.phase[g]; ok {
			marks++
		}
	}
	w.Len32(marks)
	for g := 1; g <= r.gStar+1; g++ {
		ph, ok := r.phase[g]
		if !ok {
			continue
		}
		w.Int(ph.Gen)
		w.F64(ph.FirstTwoChoices)
		w.F64(ph.LastTwoChoices)
		w.F64(ph.FirstSleeping)
		w.F64(ph.LastSleeping)
		w.F64(ph.FirstPropagation)
		w.F64(ph.LastPropagation)
	}
	w.U64(r.res.TotalLeaderMessages)
	w.Bool(r.res.TimedOut)
	metrics.EncodeRecorder(w, r.rec)
	for _, ss := range r.shards {
		if err := ss.sm.EncodeState(w); err != nil {
			return err
		}
		ss.clocks.EncodeState(w)
		w.RNG(ss.smpR)
		w.RNG(ss.latR)
	}
	if r.adv != nil {
		w.Bools(r.crashed)
		w.Int(r.aliveN)
		w.Bool(r.advDone)
		r.adv.EncodeShardState(w)
		for _, ss := range r.shards {
			ss.view.EncodeState(w)
			ss.payload.EncodeState(w)
		}
	}
	var events uint64
	for _, sm := range r.sims {
		events += sm.Processed()
	}
	r.cfg.Ckpt.Sink(w.Bytes(), t, events)
	r.captured = true
	return nil
}

// restore overwrites the sharded run's mutable state from a captured
// payload; the reader is positioned right after the embedded clustering
// (runSharded already checked the shard count and decoded the clustering).
// It runs after the deterministic setup, which rebuilt the shard layout,
// the leader slots, the RNG substream tree and the adversary from the same
// seed.
func (r *shardedRun) restore(rd *snap.Reader, perturb uint64) error {
	t := rd.F64()
	nextRec := rd.F64()
	cols, err := opinion.DecodeSlice(rd, r.cfg.K)
	if err != nil {
		return fmt.Errorf("noleader: opinions: %w", err)
	}
	gens := rd.I32s()
	finished := rd.Bools()
	locked := rd.Bools()
	tmpGen := rd.I32s()
	tmpState := rd.I8s()
	counts, err := opinion.DecodeCounts(rd, r.cfg.K)
	if err != nil {
		return fmt.Errorf("noleader: counts: %w", err)
	}
	maxGen := rd.Int()
	lGen := rd.I32s()
	lState := rd.I8s()
	lT := rd.I32s()
	lGenSize := rd.I32s()
	loadBucket := rd.I32s()
	loadCount := rd.U64s()
	peakLoad := rd.U64()
	mono := rd.Bool()
	monoAt := rd.F64()
	nMarks := rd.Len32(56)
	if err := rd.Err(); err != nil {
		return fmt.Errorf("noleader: sharded state: %w", err)
	}
	phase := make(map[int]*GenPhases, nMarks)
	for i := 0; i < nMarks; i++ {
		ph := &GenPhases{
			Gen:              rd.Int(),
			FirstTwoChoices:  rd.F64(),
			LastTwoChoices:   rd.F64(),
			FirstSleeping:    rd.F64(),
			LastSleeping:     rd.F64(),
			FirstPropagation: rd.F64(),
			LastPropagation:  rd.F64(),
		}
		if rd.Err() != nil {
			return fmt.Errorf("noleader: phase marks: %w", rd.Err())
		}
		if ph.Gen < 1 || ph.Gen > r.gStar+1 {
			return fmt.Errorf("noleader: %w: phase mark for generation %d outside [1, %d]", snap.ErrCorrupt, ph.Gen, r.gStar+1)
		}
		phase[ph.Gen] = ph
	}
	leaderMsgs := rd.U64()
	timedOut := rd.Bool()
	if err := metrics.DecodeRecorder(rd, r.rec); err != nil {
		return fmt.Errorf("noleader: recorder: %w", err)
	}
	for _, ss := range r.shards {
		if err := ss.sm.DecodeState(rd); err != nil {
			return fmt.Errorf("noleader: shard %d kernel state: %w", ss.id, err)
		}
		if err := ss.clocks.DecodeState(rd); err != nil {
			return fmt.Errorf("noleader: shard %d clock state: %w", ss.id, err)
		}
		if err := rd.ReadRNG(ss.smpR); err != nil {
			return fmt.Errorf("noleader: shard %d sampling rng: %w", ss.id, err)
		}
		if err := rd.ReadRNG(ss.latR); err != nil {
			return fmt.Errorf("noleader: shard %d latency rng: %w", ss.id, err)
		}
	}
	if r.adv != nil {
		crashed := rd.Bools()
		aliveN := rd.Int()
		advDone := rd.Bool()
		if err := r.adv.DecodeShardState(rd); err != nil {
			return fmt.Errorf("noleader: adversary state: %w", err)
		}
		for _, ss := range r.shards {
			if err := ss.view.DecodeState(rd); err != nil {
				return fmt.Errorf("noleader: shard %d adversary view: %w", ss.id, err)
			}
			if err := ss.payload.DecodeState(rd); err != nil {
				return fmt.Errorf("noleader: shard %d payload arena: %w", ss.id, err)
			}
		}
		if len(crashed) != r.cfg.N && rd.Err() == nil {
			return fmt.Errorf("noleader: %w: crash-flag length mismatch", snap.ErrCorrupt)
		}
		if aliveN < 0 || aliveN > r.cfg.N {
			return fmt.Errorf("noleader: %w: alive count %d outside [0, %d]", snap.ErrCorrupt, aliveN, r.cfg.N)
		}
		copy(r.crashed, crashed)
		r.aliveN = aliveN
		r.advDone = advDone
	}
	if err := rd.Finish(); err != nil {
		return fmt.Errorf("noleader: sharded state: %w", err)
	}
	n := r.cfg.N
	if len(cols) != n || len(gens) != n || len(finished) != n || len(locked) != n ||
		len(tmpGen) != n || len(tmpState) != n {
		return fmt.Errorf("noleader: %w: node-state length mismatch (blob for a different N?)", snap.ErrCorrupt)
	}
	nl := len(r.lGen)
	if len(lGen) != nl || len(lState) != nl || len(lT) != nl || len(lGenSize) != nl ||
		len(loadBucket) != nl || len(loadCount) != nl {
		return fmt.Errorf("noleader: %w: leader-state length mismatch (blob for a different clustering?)", snap.ErrCorrupt)
	}
	r.cols = cols
	r.gens = gens
	r.finished = finished
	r.locked = locked
	r.tmpGen = tmpGen
	r.tmpState = tmpState
	r.counts = counts
	r.maxGen = maxGen
	copy(r.lGen, lGen)
	copy(r.lState, lState)
	copy(r.lT, lT)
	copy(r.lGenSize, lGenSize)
	copy(r.loadBucket, loadBucket)
	copy(r.loadCount, loadCount)
	r.peakLoad = peakLoad
	r.mono = mono
	r.monoAt = monoAt
	r.phase = phase
	r.res.TotalLeaderMessages = leaderMsgs
	r.res.TimedOut = timedOut
	// At a barrier the published copies equal the live state, so the cut
	// did not serialize them; rebuild all of them here.
	copy(r.pubCols, r.cols)
	copy(r.pubGens, r.gens)
	copy(r.pubFinished, r.finished)
	copy(r.pubLGen, r.lGen)
	copy(r.pubLState, r.lState)
	r.resumed = true
	r.resumedT = t
	r.resumedRec = nextRec
	if perturb != 0 {
		for _, ss := range r.shards {
			ss.smpR.Perturb(perturb)
			ss.latR.Perturb(perturb)
			ss.clocks.Perturb(perturb)
		}
		if r.adv != nil {
			r.adv.Perturb(perturb)
		}
	}
	return nil
}
