package noleader

import (
	"reflect"
	"testing"

	"plurality/internal/snap"
)

// TestCheckpointRoundtrip pins that capturing the consensus phase half way,
// restoring (which skips formation and decodes the clustering from the
// blob) and finishing reproduces the uninterrupted run deeply equal.
func TestCheckpointRoundtrip(t *testing.T) {
	base := Config{N: 600, K: 3, Alpha: 2.5, Seed: 7}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	var blob []byte
	ckpt := base
	ckpt.Ckpt = &snap.Checkpoint{
		At:   plain.EndTime / 2,
		Halt: true,
		Sink: func(state []byte, _ float64, _ uint64) { blob = append([]byte(nil), state...) },
	}
	if _, err := Run(ckpt); err != nil {
		t.Fatal(err)
	}
	if blob == nil {
		t.Fatal("no snapshot captured")
	}

	resumed := base
	resumed.Ckpt = &snap.Checkpoint{Restore: blob}
	res, err := Run(resumed)
	if err != nil {
		t.Fatal(err)
	}
	// The clustering structure is decoded rather than recomputed, so
	// compare it field-wise without the unserialized Topo attachment.
	if res.Clustering.Topo == nil {
		t.Error("restored clustering lost its topology attachment")
	}
	res.Clustering.Topo = plain.Clustering.Topo
	if !reflect.DeepEqual(res, plain) {
		t.Errorf("resumed result differs from uninterrupted run:\nresumed: %+v\nplain:   %+v", res, plain)
	}
}

// TestCheckpointTruncated pins typed-error (not panic) behaviour on
// truncated payloads.
func TestCheckpointTruncated(t *testing.T) {
	base := Config{N: 200, K: 2, Alpha: 2, Seed: 9}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	var blob []byte
	ckpt := base
	ckpt.Ckpt = &snap.Checkpoint{
		At:   plain.EndTime / 2,
		Halt: true,
		Sink: func(state []byte, _ float64, _ uint64) { blob = append([]byte(nil), state...) },
	}
	if _, err := Run(ckpt); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 9, len(blob) / 3, len(blob) - 2} {
		cfg := base
		cfg.Ckpt = &snap.Checkpoint{Restore: blob[:cut]}
		if _, err := Run(cfg); err == nil {
			t.Errorf("restore of %d/%d bytes succeeded, want error", cut, len(blob))
		}
	}
}
