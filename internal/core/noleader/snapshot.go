package noleader

import (
	"context"
	"fmt"

	"plurality/internal/cluster"
	"plurality/internal/metrics"
	"plurality/internal/opinion"
	"plurality/internal/sim"
	"plurality/internal/snap"
)

// This file implements the decentralized engine's checkpoint hooks. A
// snapshot embeds the finished clustering (via cluster.EncodeClustering)
// followed by every mutable word of the consensus phase, so a restored run
// skips formation entirely — the warm-start property that makes resumed
// long-horizon runs O(n) instead of O(clustering replay). Config-derived
// constants (C1, G*, thresholds, leader slot order) are recomputed at
// restore from the same seed.

// runSim drives the consensus kernel through the shared checkpoint barrier
// (sim.RunCheckpointed); Ckpt.At is consensus-phase virtual time, and a
// run that stops before reaching it takes no snapshot.
func (rs *consensusState) runSim(ctx context.Context) error {
	return sim.RunCheckpointed(ctx, rs.sm, rs.cfg.Ckpt, rs.capture)
}

// capture serializes the clustering and the consensus phase's mutable
// state.
func (rs *consensusState) capture() ([]byte, error) {
	w := &snap.Writer{}
	cluster.EncodeClustering(w, rs.cl)
	if err := rs.sm.EncodeState(w); err != nil {
		return nil, err
	}
	rs.clocks.EncodeState(w)
	w.RNG(rs.smp)
	w.RNG(rs.latR)
	opinion.EncodeSlice(w, rs.cols)
	w.I32s(rs.gens)
	w.Bools(rs.finished)
	w.Bools(rs.locked)
	w.I32s(rs.tmpGen)
	w.I8s(rs.tmpState)
	opinion.EncodeCounts(w, rs.counts)
	w.Int(rs.maxGen)
	w.I32s(rs.lGen)
	w.I8s(rs.lState)
	w.I32s(rs.lT)
	w.I32s(rs.lGenSize)
	w.I32s(rs.loadBucket)
	w.U64s(rs.loadCount)
	w.U64(rs.peakLoad)
	w.Bool(rs.mono)
	w.F64(rs.monoAt)
	// The Figure 2 phase marks, flattened in generation order (the same
	// order the final PhaseSpans use) for a canonical encoding.
	marks := 0
	for g := 1; g <= rs.gStar+1; g++ {
		if _, ok := rs.phase[g]; ok {
			marks++
		}
	}
	w.Len32(marks)
	for g := 1; g <= rs.gStar+1; g++ {
		ph, ok := rs.phase[g]
		if !ok {
			continue
		}
		w.Int(ph.Gen)
		w.F64(ph.FirstTwoChoices)
		w.F64(ph.LastTwoChoices)
		w.F64(ph.FirstSleeping)
		w.F64(ph.LastSleeping)
		w.F64(ph.FirstPropagation)
		w.F64(ph.LastPropagation)
	}
	w.U64(rs.res.TotalLeaderMessages)
	w.Bool(rs.res.TimedOut)
	metrics.EncodeRecorder(w, rs.rec)
	// Adversarial runs append the crash flags, the adversary state and the
	// delayed-message arena; the suffix's presence is a pure function of
	// the Config, so capture and restore agree on it and honest blobs
	// decode unchanged.
	if rs.adv != nil {
		w.Bools(rs.crashed)
		w.Int(rs.aliveN)
		rs.adv.EncodeState(w)
		rs.payload.EncodeState(w)
	}
	return w.Bytes(), nil
}

// restore overwrites the consensus phase's mutable state from a captured
// payload; the reader is positioned right after the embedded clustering,
// which Run already decoded.
func (rs *consensusState) restore(r *snap.Reader, perturb uint64) error {
	if err := rs.sm.DecodeState(r); err != nil {
		return fmt.Errorf("noleader: kernel state: %w", err)
	}
	if err := rs.clocks.DecodeState(r); err != nil {
		return fmt.Errorf("noleader: clock state: %w", err)
	}
	if err := r.ReadRNG(rs.smp); err != nil {
		return fmt.Errorf("noleader: sampling rng: %w", err)
	}
	if err := r.ReadRNG(rs.latR); err != nil {
		return fmt.Errorf("noleader: latency rng: %w", err)
	}
	cols, err := opinion.DecodeSlice(r, rs.cfg.K)
	if err != nil {
		return fmt.Errorf("noleader: opinions: %w", err)
	}
	gens := r.I32s()
	finished := r.Bools()
	locked := r.Bools()
	tmpGen := r.I32s()
	tmpState := r.I8s()
	counts, err := opinion.DecodeCounts(r, rs.cfg.K)
	if err != nil {
		return fmt.Errorf("noleader: counts: %w", err)
	}
	maxGen := r.Int()
	lGen := r.I32s()
	lState := r.I8s()
	lT := r.I32s()
	lGenSize := r.I32s()
	loadBucket := r.I32s()
	loadCount := r.U64s()
	peakLoad := r.U64()
	mono := r.Bool()
	monoAt := r.F64()
	nMarks := r.Len32(56)
	if err := r.Err(); err != nil {
		return fmt.Errorf("noleader: state: %w", err)
	}
	phase := make(map[int]*GenPhases, nMarks)
	for i := 0; i < nMarks; i++ {
		ph := &GenPhases{
			Gen:              r.Int(),
			FirstTwoChoices:  r.F64(),
			LastTwoChoices:   r.F64(),
			FirstSleeping:    r.F64(),
			LastSleeping:     r.F64(),
			FirstPropagation: r.F64(),
			LastPropagation:  r.F64(),
		}
		if r.Err() != nil {
			return fmt.Errorf("noleader: phase marks: %w", r.Err())
		}
		if ph.Gen < 1 || ph.Gen > rs.gStar+1 {
			return fmt.Errorf("noleader: %w: phase mark for generation %d outside [1, %d]", snap.ErrCorrupt, ph.Gen, rs.gStar+1)
		}
		phase[ph.Gen] = ph
	}
	leaderMsgs := r.U64()
	timedOut := r.Bool()
	if err := metrics.DecodeRecorder(r, rs.rec); err != nil {
		return fmt.Errorf("noleader: recorder: %w", err)
	}
	var crashed []bool
	aliveN := rs.cfg.N
	if rs.adv != nil {
		crashed = r.Bools()
		aliveN = r.Int()
		if err := rs.adv.DecodeState(r); err != nil {
			return fmt.Errorf("noleader: adversary state: %w", err)
		}
		if err := rs.payload.DecodeState(r); err != nil {
			return fmt.Errorf("noleader: delayed messages: %w", err)
		}
		if len(crashed) != rs.cfg.N && r.Err() == nil {
			return fmt.Errorf("noleader: %w: crash-flag length mismatch", snap.ErrCorrupt)
		}
		if aliveN < 0 || aliveN > rs.cfg.N {
			return fmt.Errorf("noleader: %w: alive count %d outside [0, %d]", snap.ErrCorrupt, aliveN, rs.cfg.N)
		}
	}
	if err := r.Finish(); err != nil {
		return fmt.Errorf("noleader: state: %w", err)
	}
	n := rs.cfg.N
	if len(cols) != n || len(gens) != n || len(finished) != n || len(locked) != n ||
		len(tmpGen) != n || len(tmpState) != n {
		return fmt.Errorf("noleader: %w: node-state length mismatch (blob for a different N?)", snap.ErrCorrupt)
	}
	nl := len(rs.lGen)
	if len(lGen) != nl || len(lState) != nl || len(lT) != nl || len(lGenSize) != nl ||
		len(loadBucket) != nl || len(loadCount) != nl {
		return fmt.Errorf("noleader: %w: leader-state length mismatch (blob for a different clustering?)", snap.ErrCorrupt)
	}
	rs.cols = cols
	rs.gens = gens
	rs.finished = finished
	rs.locked = locked
	rs.tmpGen = tmpGen
	rs.tmpState = tmpState
	rs.counts = counts
	rs.maxGen = maxGen
	copy(rs.lGen, lGen)
	copy(rs.lState, lState)
	copy(rs.lT, lT)
	copy(rs.lGenSize, lGenSize)
	copy(rs.loadBucket, loadBucket)
	copy(rs.loadCount, loadCount)
	rs.peakLoad = peakLoad
	rs.mono = mono
	rs.monoAt = monoAt
	rs.phase = phase
	rs.res.TotalLeaderMessages = leaderMsgs
	rs.res.TimedOut = timedOut
	if rs.adv != nil {
		copy(rs.crashed, crashed)
		rs.aliveN = aliveN
	}
	if perturb != 0 {
		rs.smp.Perturb(perturb)
		rs.latR.Perturb(perturb)
		rs.clocks.Perturb(perturb)
		if rs.adv != nil {
			rs.adv.Perturb(perturb)
		}
	}
	return nil
}
