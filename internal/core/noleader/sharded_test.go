package noleader

import (
	"errors"
	"reflect"
	"testing"

	"plurality/internal/adversary"
	"plurality/internal/snap"
)

func shardedTestConfig(shards, workers int) Config {
	return Config{
		N: 2000, K: 3, Alpha: 2.5, Seed: 11,
		Shards: shards, ShardWorkers: workers,
	}
}

// nlResultKey projects the fields that must be reproducible; trajectories
// are compared separately where relevant.
func nlResultKey(t *testing.T, res *Result) [2]interface{} {
	t.Helper()
	return [2]interface{}{
		[]interface{}{
			res.Outcome.Winner, res.Outcome.PluralityWon, res.Outcome.FullConsensus,
			res.Outcome.ConsensusTime, res.Outcome.EpsReached, res.Outcome.EpsTime,
			res.EndTime, res.Events, res.TimedOut,
			res.TotalLeaderMessages, res.PeakLeaderLoad,
		},
		[]interface{}{res.FinalCounts, res.PhaseSpans},
	}
}

// TestShardedConverges checks the sharded decentralized kernel still
// implements the protocol: plurality wins with full consensus for every
// shard count, and the congestion metric stays populated.
func TestShardedConverges(t *testing.T) {
	for _, shards := range []int{2, 3, 8} {
		res, err := Run(shardedTestConfig(shards, 0))
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !res.Outcome.FullConsensus {
			t.Fatalf("shards=%d: no full consensus (winner %d, initial %d)",
				shards, res.Outcome.Winner, res.InitialPlurality)
		}
		if !res.Outcome.PluralityWon {
			t.Fatalf("shards=%d: plurality lost (winner %d, initial %d)",
				shards, res.Outcome.Winner, res.InitialPlurality)
		}
		if res.Events == 0 || res.TotalLeaderMessages == 0 || res.PeakLeaderLoad <= 0 {
			t.Fatalf("shards=%d: empty run: %+v", shards, res)
		}
		if len(res.PhaseSpans) == 0 {
			t.Fatalf("shards=%d: no phase spans recorded", shards)
		}
	}
}

// TestShardedWorkerInvariance pins determinism contract #1: for a fixed
// shard count the full result is invariant to the worker bound.
func TestShardedWorkerInvariance(t *testing.T) {
	ref, err := Run(shardedTestConfig(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	refKey := nlResultKey(t, ref)
	for _, workers := range []int{2, 3, 4, 9} {
		res, err := Run(shardedTestConfig(4, workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if key := nlResultKey(t, res); !reflect.DeepEqual(key, refKey) {
			t.Fatalf("workers=%d diverged:\n got %+v\nwant %+v", workers, key, refKey)
		}
		if !reflect.DeepEqual(res.Trajectory, ref.Trajectory) {
			t.Fatalf("workers=%d: trajectory diverged", workers)
		}
	}
}

// TestShardedReproducible pins determinism contract #2: rerunning the same
// (config, seed, shards) reproduces the result exactly.
func TestShardedReproducible(t *testing.T) {
	a, err := Run(shardedTestConfig(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(shardedTestConfig(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(nlResultKey(t, a), nlResultKey(t, b)) {
		t.Fatalf("two identical sharded runs diverged:\n%+v\n%+v", nlResultKey(t, a), nlResultKey(t, b))
	}
}

// TestShardedRejectsBadShardCounts pins the range validation.
func TestShardedRejectsBadShardCounts(t *testing.T) {
	cfg := shardedTestConfig(-1, 0)
	if _, err := Run(cfg); err == nil {
		t.Error("negative shard count accepted, want error")
	}
	cfg = shardedTestConfig(2, 0)
	cfg.Shards = cfg.N + 1
	if _, err := Run(cfg); err == nil {
		t.Error("Shards > N accepted, want error")
	}
}

// shardedAdvConfigs enumerates one config per adversary kind, scaled down
// so the full matrix stays fast under -race.
func shardedAdvConfigs(shards, workers int) map[string]Config {
	out := make(map[string]Config)
	for name, adv := range map[string]adversary.Config{
		"crash":     {Kind: adversary.Crash, Fraction: 0.15, At: 2, Seed: 5},
		"churn":     {Kind: adversary.Crash, Fraction: 0.15, At: 2, Rate: 3, Seed: 5},
		"delay":     {Kind: adversary.Delay, Fraction: 0.3, Rate: 2, Seed: 5},
		"drop":      {Kind: adversary.Drop, Fraction: 0.2, Seed: 5},
		"byzantine": {Kind: adversary.Byzantine, Fraction: 0.1, Seed: 5},
	} {
		out[name] = Config{
			N: 1200, K: 3, Alpha: 2.5, Seed: 11,
			Shards: shards, ShardWorkers: workers, Adv: adv,
		}
	}
	return out
}

// TestShardedAdversaryWorkerInvariance extends determinism contract #1 to
// adversarial runs: node-keyed decision draws make every adversary kind's
// sharded result invariant to the worker bound, counters included.
func TestShardedAdversaryWorkerInvariance(t *testing.T) {
	for name := range shardedAdvConfigs(3, 0) {
		t.Run(name, func(t *testing.T) {
			ref, err := Run(shardedAdvConfigs(3, 1)[name])
			if err != nil {
				t.Fatal(err)
			}
			refKey := nlResultKey(t, ref)
			for _, workers := range []int{2, 5} {
				res, err := Run(shardedAdvConfigs(3, workers)[name])
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if key := nlResultKey(t, res); !reflect.DeepEqual(key, refKey) {
					t.Fatalf("workers=%d diverged:\n got %+v\nwant %+v", workers, key, refKey)
				}
				if res.AdvCounters != ref.AdvCounters {
					t.Fatalf("workers=%d: counters diverged: %+v != %+v", workers, res.AdvCounters, ref.AdvCounters)
				}
			}
			if ref.AdvCounters == (adversary.Counters{}) {
				t.Fatalf("adversary %s acted zero times; the test exercises nothing", name)
			}
		})
	}
}

// TestShardedCheckpointResume pins the window-barrier snapshot cut: an
// (adversarial) sharded run captured mid-run and resumed produces a result
// DeepEqual to the uninterrupted run, at several shard counts. Cross-shard-
// count resume is a typed rejection.
func TestShardedCheckpointResume(t *testing.T) {
	for _, shards := range []int{2, 3} {
		for _, advName := range []string{"honest", "churn", "delay"} {
			t.Run(advName, func(t *testing.T) {
				cfg := shardedAdvConfigs(shards, 0)[advName]
				if advName == "honest" {
					cfg = shardedTestConfig(shards, 0)
					cfg.N = 1200
				}
				plain, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}

				var blob []byte
				ccfg := cfg
				ccfg.Ckpt = &snap.Checkpoint{
					At:   plain.EndTime / 2,
					Halt: true,
					Sink: func(state []byte, _ float64, _ uint64) { blob = append([]byte(nil), state...) },
				}
				if _, err := Run(ccfg); err != nil {
					t.Fatal(err)
				}
				if blob == nil {
					t.Fatal("no snapshot captured")
				}

				rcfg := cfg
				rcfg.Ckpt = &snap.Checkpoint{Restore: blob}
				resumed, err := Run(rcfg)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(nlResultKey(t, resumed), nlResultKey(t, plain)) {
					t.Fatalf("shards=%d resumed run diverged from uninterrupted:\n got %+v\nwant %+v",
						shards, nlResultKey(t, resumed), nlResultKey(t, plain))
				}
				if !reflect.DeepEqual(resumed.Trajectory, plain.Trajectory) {
					t.Fatalf("shards=%d: resumed trajectory diverged", shards)
				}
				if resumed.AdvCounters != plain.AdvCounters {
					t.Fatalf("shards=%d: resumed counters %+v != %+v", shards, resumed.AdvCounters, plain.AdvCounters)
				}

				wcfg := rcfg
				wcfg.Shards = shards + 1
				if _, err := Run(wcfg); !errors.Is(err, snap.ErrShardCount) {
					t.Fatalf("resume at Shards=%d of a Shards=%d blob: err=%v, want snap.ErrShardCount", wcfg.Shards, shards, err)
				}
			})
		}
	}
}
