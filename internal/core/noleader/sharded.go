package noleader

import (
	"context"
	"math"

	"fmt"
	"plurality/internal/adversary"
	"plurality/internal/cluster"
	"plurality/internal/core/syncgen"
	"plurality/internal/metrics"
	"plurality/internal/opinion"
	"plurality/internal/sim"
	"plurality/internal/snap"
	"plurality/internal/topo"
	"plurality/internal/xrand"
)

// Sharded execution of the decentralized engine: conservative parallel
// discrete-event simulation over the bucketed event ladder, mirroring the
// single-leader engine's runSharded (internal/core/leader/sharded.go) with
// one structural difference that makes the decentralized protocol *easier*
// to shard: the partition is cluster-aligned.
//
// topo.PartitionAligned over the finished clustering's LeaderOf guarantees
// a cluster never straddles shards. Every (i, s, hasChanged)-signal flows
// from a member to its own cluster leader, so with the aligned partition
// ALL signal traffic is shard-local: each leader automaton (the lGen /
// lState / lT / lGenSize slots of Algorithm 5) has exactly one writer —
// the shard owning its cluster — and no cross-shard signal outbox exists
// at all. What crosses shards is read-only node sampling (Algorithm 4's
// v1, v2, v3) plus the finished-flag endgame pushes; both go through the
// window-barrier machinery:
//
//  1. Live node state (cols/gens/finished/locked/tmpGen/tmpState) is
//     owner-only. A shard reading a *remote* sample sees the published
//     copy (pubCols/pubGens/pubFinished), frozen at the last barrier —
//     one window (1/1024 time unit, far below any channel latency) stale.
//  2. Remote leader reads (the sampled third node's leader, Algorithm 4
//     line 8) see the published (pubLGen, pubLState) pair; their §4.5
//     load accounting accumulates in a per-shard slot list folded at the
//     barrier in fixed shard order.
//  3. A finished node pushing its opinion onto a remote sample (line 5)
//     parks the push in a per-shard outbox applied serially at the
//     barrier — the only cross-shard *write*, and the merge order is a
//     pure function of the per-shard executions.
//  4. Global aggregates (color tally, monochromaticity, the Figure 2
//     phase marks, §4.5 peak load, trajectory records) are folded from
//     per-shard deltas at barriers; the folds are sums and min/max, so
//     they are associative and the checkpoint cut loses nothing.
//
// Under these rules the result is a pure function of (config, seed,
// shards): worker count, GOMAXPROCS and OS scheduling are invisible.
// Shards <= 1 does not take this path at all — Run dispatches to the
// serial kernel, keeping its byte-exact golden contract.
type shardedRun struct {
	cfg    Config
	cl     *cluster.Clustering
	sims   []*sim.Simulator
	shards []*nlShard
	runner *sim.ShardRunner

	owner []int32 // node → shard (cluster-aligned)
	local []int32 // node → index within its shard's slabs

	// Owner-write live node state, indexed by global node id.
	cols     []opinion.Opinion
	gens     []int32
	finished []bool
	locked   []bool
	tmpGen   []int32
	tmpState []int8

	// Published copies, refreshed from per-shard dirty lists at barriers;
	// the only node state a non-owner shard may read.
	pubCols     []opinion.Opinion
	pubGens     []int32
	pubFinished []bool

	// Leader slots in dense struct-of-arrays form, exactly the serial
	// layout; each slot is written only by the shard owning its cluster.
	// Remote readers see the published pair, one window stale.
	leaderIdx []int32
	lGen      []int32
	lState    []int8
	lCard     []int32
	lT        []int32
	lGenSize  []int32
	lSleepAt  []int32
	lPropAt   []int32
	lOwner    []int32 // slot → owning shard
	pubLGen   []int32
	pubLState []int8

	// Barrier-folded aggregates.
	counts     opinion.Counts
	maxGen     int
	mono       bool
	monoAt     float64
	loadBucket []int32
	loadCount  []uint64
	peakLoad   uint64
	phase      map[int]*GenPhases

	// Adversary state. crashed/aliveN exist for honest runs too (all-false,
	// aliveN = N) so the hot-path gates need no nil checks; crash and churn
	// toggles are applied only at barriers, on the merge goroutine, which
	// makes remote crashed[] reads inside a window safe — the array is
	// frozen while shards run. adv is nil for honest runs.
	crashed []bool
	aliveN  int
	adv     *adversary.State
	advDone bool

	// Checkpoint bookkeeping: captures happen at window barriers, the only
	// globally consistent cut of a sharded run.
	captured   bool
	resumed    bool
	resumedT   float64
	resumedRec float64

	gStar     int
	maxTime   float64
	plurality opinion.Opinion
	rec       *metrics.Recorder
	res       *Result
}

// nlShard is the per-shard execution context; every field is touched by
// exactly one goroutine inside a window.
type nlShard struct {
	run     *shardedRun
	id      int32
	sm      *sim.Simulator
	clocks  *sim.Clocks
	tickFn  func(int)
	bs      topo.BatchSampler
	scratch topo.Scratch
	lat     sim.Latency
	smpR    *xrand.RNG
	latR    *xrand.RNG
	nodes   []int32

	// Adversarial runs only: the shard's node-keyed decision view and the
	// arena parking this shard's delayed events (evAdvDeliver). Signals are
	// shard-local under the aligned partition, so delayed signals park here
	// too — no cross-shard redelivery path exists.
	view    *adversary.ShardView
	payload *sim.PayloadArena

	// Window-local products, consumed and reset by the barrier merge.
	dirty      []int32           // nodes written this window (pub refresh)
	dirtyL     []int32           // leader slots transitioned this window
	pushN      []int32           // finished-endgame pushes onto remote nodes…
	pushCol    []opinion.Opinion // …and the opinions pushed
	remLi      []int32           // remote leader slots read (§4.5 accounting)
	colorDelta []int
	maxGenW    int
	msgs       uint64 // local leader messages this window
	peak       uint64 // max time-unit bucket rolled over this window
	phase      map[int]*GenPhases
}

// runSharded forms clusters (or decodes them from a snapshot) and executes
// Algorithms 4 and 5 on the sharded kernel. cfg has been normalized and
// cfg.Shards > 1.
func runSharded(cfg Config) (*Result, error) {
	root := xrand.New(cfg.Seed)

	// Phase 1: clustering, exactly as the serial path — the substream draw
	// always happens so the root RNG stays in the same position. A sharded
	// snapshot payload leads with the shard count (the typed-rejection
	// check) and then embeds the finished clustering.
	cp := cfg.Cluster
	cp.N = cfg.N
	cp.Latency = cfg.Latency
	cp.Topo = cfg.Topo
	cp.Seed = root.SplitNamed("clustering").Uint64()
	cp.Ctx = cfg.Ctx
	var cl *cluster.Clustering
	var restoreR *snap.Reader
	if cfg.Ckpt.Restoring() {
		restoreR = snap.NewReader(cfg.Ckpt.Restore)
		shards := restoreR.Int()
		if err := restoreR.Err(); err != nil {
			return nil, fmt.Errorf("noleader: sharded state: %w", err)
		}
		if shards != cfg.Shards {
			return nil, fmt.Errorf("noleader: %w: blob captured at Shards=%d, resumed at Shards=%d",
				snap.ErrShardCount, shards, cfg.Shards)
		}
		var err error
		cl, err = cluster.DecodeClustering(restoreR)
		if err != nil {
			return nil, fmt.Errorf("noleader: clustering state: %w", err)
		}
		if cl.N != cfg.N {
			return nil, fmt.Errorf("noleader: %w: clustering for N=%d, run has N=%d", snap.ErrCorrupt, cl.N, cfg.N)
		}
		cl.Topo = cfg.Topo
	} else {
		var err error
		cl, err = cluster.Form(cp)
		if err != nil {
			return nil, err
		}
	}

	cols := make([]opinion.Opinion, cfg.N)
	if cfg.Assignment != nil {
		copy(cols, cfg.Assignment)
	} else {
		alpha := cfg.Alpha
		if alpha < 1 {
			alpha = 1
		}
		cols = opinion.PlantedBias(cfg.N, cfg.K, alpha, root.SplitNamed("assignment"))
	}
	initCounts := opinion.CountOf(cols, cfg.K)
	pl, _ := initCounts.TopTwo()
	alphaHat := initCounts.Bias()
	gStar := cfg.GStar
	if gStar <= 0 {
		gStar = syncgen.GenerationBudget(cfg.N, alphaHat) + 2
	}
	maxTime := cfg.MaxTime
	if maxTime <= 0 {
		perGen := cfg.C1 * (cfg.TwoChoicesUnits + cfg.SleepUnits +
			math.Log(4.5*float64(cfg.K+1))/math.Log(1.4) + 2)
		maxTime = 6*float64(gStar)*perGen + 20*cfg.C1*math.Log2(float64(cfg.N))
	}

	s := cfg.Shards
	owner := topo.PartitionAligned(cl.LeaderOf, s)
	r := &shardedRun{
		cfg:         cfg,
		cl:          cl,
		sims:        make([]*sim.Simulator, s),
		shards:      make([]*nlShard, s),
		owner:       owner,
		local:       make([]int32, cfg.N),
		cols:        cols,
		gens:        make([]int32, cfg.N),
		finished:    make([]bool, cfg.N),
		locked:      make([]bool, cfg.N),
		tmpGen:      make([]int32, cfg.N),
		tmpState:    make([]int8, cfg.N),
		pubCols:     append([]opinion.Opinion(nil), cols...),
		pubGens:     make([]int32, cfg.N),
		pubFinished: make([]bool, cfg.N),
		leaderIdx:   make([]int32, cfg.N),
		counts:      initCounts,
		phase:       map[int]*GenPhases{},
		crashed:     make([]bool, cfg.N),
		aliveN:      cfg.N,
		gStar:       gStar,
		maxTime:     maxTime,
		plurality:   opinion.Opinion(pl),
		res: &Result{
			Clustering:       cl,
			ClusteringTime:   cl.EndTime,
			InitialPlurality: opinion.Opinion(pl),
			C1:               cfg.C1,
			GStar:            gStar,
		},
	}
	for i := range r.leaderIdx {
		r.leaderIdx[i] = -1
	}
	participating := cl.ParticipatingLeaders()
	for _, l := range participating {
		li := int32(len(r.lGen))
		r.leaderIdx[l] = li
		card := cl.Size[l]
		sleepAt := int32(math.Ceil(cfg.TwoChoicesUnits * cfg.C1 * float64(card)))
		r.lGen = append(r.lGen, 1)
		r.lState = append(r.lState, int8(StateTwoChoices))
		r.lCard = append(r.lCard, int32(card))
		r.lT = append(r.lT, 0)
		r.lGenSize = append(r.lGenSize, 0)
		r.lSleepAt = append(r.lSleepAt, sleepAt)
		r.lPropAt = append(r.lPropAt, sleepAt+int32(math.Ceil(cfg.SleepUnits*cfg.C1*float64(card))))
		r.lOwner = append(r.lOwner, owner[l])
	}
	r.pubLGen = append([]int32(nil), r.lGen...)
	r.pubLState = append([]int8(nil), r.lState...)
	r.loadBucket = make([]int32, len(participating))
	r.loadCount = make([]uint64, len(participating))
	r.notePhaseGlobal(1, StateTwoChoices, 0)
	if len(participating) == 0 {
		// Degenerate clustering: report a failed run rather than panic.
		r.res.TimedOut = true
		r.res.FinalCounts = initCounts
		r.res.Outcome = metrics.EvalOutcome(metrics.Trajectory{
			metrics.Snapshot(0, cols, cfg.K, r.plurality)},
			initCounts, r.plurality, cfg.Eps)
		return r.res, nil
	}

	if cfg.Adv.Kind != adversary.None {
		adv, err := adversary.New(cfg.Adv, xrand.New(cfg.Adv.Seed))
		if err != nil {
			return nil, fmt.Errorf("noleader: %w", err)
		}
		// Node-keyed mode: ShardSetup runs unconditionally — including on
		// restore, before the blob overwrites the generator — so the key
		// seed is recomputed, never serialized.
		adv.ShardSetup()
		if _, second := initCounts.TopTwo(); second >= 0 {
			adv.SetLieTarget(int32(second))
		}
		r.adv = adv
	}

	// Shard node lists in ascending id order — deterministic, and the order
	// the per-node clock RNGs are split in.
	nodes := make([][]int32, s)
	for v := 0; v < cfg.N; v++ {
		b := owner[v]
		r.local[v] = int32(len(nodes[b]))
		nodes[b] = append(nodes[b], int32(v))
	}

	// Per-shard RNG substreams: one named base per role, split once per
	// shard in shard order — a pure function of (seed, shards), independent
	// of workers. (The serial kernel consumes the same named bases without
	// the extra split, which is one reason shards=1 bypasses this path.)
	smpBase := root.SplitNamed("sampling")
	latBase := root.SplitNamed("latency")
	clockBase := root.SplitNamed("clocks")
	bs := topo.Batch(cfg.Topo)
	for b := 0; b < s; b++ {
		sm := sim.New()
		sm.Reserve(3*len(nodes[b]) + 64)
		ss := &nlShard{
			run:        r,
			id:         int32(b),
			sm:         sm,
			bs:         bs,
			lat:        cfg.Latency,
			smpR:       smpBase.Split(),
			latR:       latBase.Split(),
			nodes:      nodes[b],
			colorDelta: make([]int, cfg.K+1),
			phase:      map[int]*GenPhases{},
		}
		ss.tickFn = ss.tick
		ss.clocks = sim.NewClocksFor(sm, clockBase.Split(), nodes[b], r.local, 1, evTick)
		if r.adv != nil {
			ss.view = r.adv.View()
			ss.payload = &sim.PayloadArena{}
		}
		sm.SetHandler(ss)
		r.sims[b] = sm
		r.shards[b] = ss
	}
	r.rec = metrics.NewRecorder(cfg.Eps, cfg.DiscardTrajectory, cfg.Observe)
	if restoreR != nil {
		if err := r.restore(restoreR, cfg.Ckpt.Perturb); err != nil {
			return nil, err
		}
	} else {
		for _, ss := range r.shards {
			ss.clocks.StartAll()
		}
	}
	r.runner = sim.NewShardRunner(r.sims, cfg.ShardWorkers)
	defer r.runner.Close()

	if err := r.loop(cfg.Ctx); err != nil {
		return nil, err
	}

	var events uint64
	for _, sm := range r.sims {
		events += sm.Processed()
	}
	r.res.Events = events
	for _, c := range r.loadCount {
		if c > r.peakLoad {
			r.peakLoad = c
		}
	}
	r.res.PeakLeaderLoad = float64(r.peakLoad)
	r.res.FinalCounts = opinion.CountOf(r.cols, cfg.K)
	if last, ok := r.rec.Last(); !ok || last.Time < r.res.EndTime {
		r.record(r.res.EndTime)
	}
	r.res.Trajectory = r.rec.Trajectory()
	r.res.Outcome = r.rec.Outcome(r.res.FinalCounts, r.plurality)
	if r.adv != nil {
		c := r.adv.Counters
		for _, ss := range r.shards {
			c = c.Add(ss.view.Counters)
		}
		r.res.AdvCounters = c
	}
	if r.mono {
		r.res.Outcome.FullConsensus = true
		r.res.Outcome.ConsensusTime = r.monoAt
		if r.aliveN < cfg.N && r.aliveN > 0 {
			for v := 0; v < cfg.N; v++ {
				if !r.crashed[v] {
					r.res.Outcome.Winner = r.cols[v]
					break
				}
			}
			r.res.Outcome.PluralityWon = r.res.Outcome.Winner == r.plurality
		}
	}
	for g := 1; g <= gStar+1; g++ {
		if ph, ok := r.phase[g]; ok {
			r.res.PhaseSpans = append(r.res.PhaseSpans, *ph)
		}
	}
	return r.res, nil
}

// loop is the barrier driver: pick the next window boundary (capped by the
// record cadence, the deadline, the next crash toggle and a pending
// checkpoint cut), advance all shards to it in parallel, merge, repeat.
// Crash toggles and checkpoint captures happen only here, between windows,
// where every shard is parked — the only globally consistent cuts.
func (r *shardedRun) loop(ctx context.Context) error {
	t := 0.0
	nextRec := r.cfg.RecordEvery
	if r.resumed {
		t, nextRec = r.resumedT, r.resumedRec
	} else {
		r.record(0)
	}
	ck := r.cfg.Ckpt
	capturing := ck.Capturing()
	for i := uint(0); ; i++ {
		if ctx != nil && i&255 == 0 {
			select {
			case <-ctx.Done():
				r.res.EndTime = t
				return ctx.Err()
			default:
			}
		}
		at, ok := r.runner.NextEventAt()
		if !ok {
			break // cannot happen while clocks run; defensive
		}
		t1 := sim.WindowEnd(at)
		if t1 > nextRec {
			t1 = nextRec
		}
		if t1 > r.maxTime {
			t1 = r.maxTime
		}
		if r.adv != nil && !r.advDone {
			if ca := r.adv.NextCrashAt(); ca > t && ca < t1 {
				t1 = ca
			}
		}
		if capturing && !r.captured && ck.At > t && ck.At < t1 {
			t1 = ck.At
		}
		r.runner.Advance(t1)
		r.merge(t1)
		t = t1
		if r.adv != nil {
			r.advCrash(t1)
		}
		if r.mono {
			// Consensus is absorbing; stop at this barrier instead of
			// simulating dead ticks until the next record boundary.
			r.record(t)
			break
		}
		if t == nextRec {
			r.record(t)
			nextRec += r.cfg.RecordEvery
		}
		if capturing && !r.captured && t >= ck.At {
			if err := r.capture(t, nextRec); err != nil {
				return err
			}
			if ck.Halt {
				break
			}
		}
		if t >= r.maxTime {
			if last, ok := r.rec.Last(); !ok || last.Time < t {
				r.record(t)
			}
			r.res.TimedOut = true
			break
		}
	}
	r.res.EndTime = t
	return nil
}

// advCrash applies every crash/churn toggle due by the barrier time; the
// toggle times and victim order come from the adversary's own generator,
// consumed only here on the merge goroutine.
func (r *shardedRun) advCrash(t1 float64) {
	changed := false
	if r.adv.Churning() {
		for {
			ca := r.adv.NextCrashAt()
			if ca < 0 || ca > t1 {
				break
			}
			v := r.adv.NextVictim()
			if r.crashed[v] {
				r.recoverNode(v)
			} else {
				r.crashNode(v)
			}
			changed = true
		}
	} else if !r.advDone {
		if ca := r.adv.NextCrashAt(); ca >= 0 && ca <= t1 {
			for _, v := range r.adv.Victims() {
				r.crashNode(v)
			}
			r.advDone = true
			changed = true
		}
	}
	if changed && !r.mono {
		for _, cnt := range r.counts {
			if cnt == r.aliveN && r.aliveN > 0 {
				r.mono = true
				r.monoAt = t1
			}
		}
	}
}

func (r *shardedRun) crashNode(v int) {
	if r.crashed[v] {
		return
	}
	r.crashed[v] = true
	r.aliveN--
	r.counts[r.cols[v]]--
	r.adv.NoteCrash()
}

func (r *shardedRun) recoverNode(v int) {
	if !r.crashed[v] {
		return
	}
	r.crashed[v] = false
	r.aliveN++
	r.counts[r.cols[v]]++
	r.adv.NoteRecovery()
}

// merge is the barrier's serial phase: fold every shard's window products
// into the global state in fixed shard order. All shard goroutines are
// parked at the barrier, so plain reads and writes are safe.
func (r *shardedRun) merge(t1 float64) {
	for _, ss := range r.shards {
		for _, v := range ss.dirty {
			r.pubCols[v] = r.cols[v]
			r.pubGens[v] = r.gens[v]
			r.pubFinished[v] = r.finished[v]
		}
		ss.dirty = ss.dirty[:0]
		for k, d := range ss.colorDelta {
			if d != 0 {
				r.counts[k] += d
				ss.colorDelta[k] = 0
			}
		}
		if ss.maxGenW > r.maxGen {
			r.maxGen = ss.maxGenW
		}
		// Finished-endgame pushes onto remote nodes (Algorithm 4 line 5),
		// the only cross-shard write: the target adopts the pushed opinion
		// at its own generation and finishes, published immediately.
		for i, u := range ss.pushN {
			col := ss.pushCol[i]
			if old := r.cols[u]; old != col {
				r.counts[old]--
				r.counts[col]++
				r.cols[u] = col
				r.pubCols[u] = col
			}
			r.finished[u] = true
			r.pubFinished[u] = true
		}
		ss.pushN = ss.pushN[:0]
		ss.pushCol = ss.pushCol[:0]
		// Remote leader-state reads, accounted at window granularity
		// (windows are ~C1/1000 wide, so the bucket attribution error is
		// negligible).
		for _, li := range ss.remLi {
			r.leaderLoadAt(li, t1)
		}
		r.res.TotalLeaderMessages += ss.msgs + uint64(len(ss.remLi))
		ss.remLi = ss.remLi[:0]
		ss.msgs = 0
		if ss.peak > r.peakLoad {
			r.peakLoad = ss.peak
		}
		ss.peak = 0
		for _, li := range ss.dirtyL {
			r.pubLGen[li] = r.lGen[li]
			r.pubLState[li] = r.lState[li]
		}
		ss.dirtyL = ss.dirtyL[:0]
		// Fold the window's Figure 2 marks; min/max folds are associative,
		// so the global map equals the serial engine's semantics at window
		// granularity and the checkpoint cut loses nothing.
		for g, ph := range ss.phase {
			r.foldPhase(g, ph)
		}
		clear(ss.phase)
	}
	if !r.mono {
		for _, cnt := range r.counts {
			if cnt == r.aliveN && r.aliveN > 0 {
				r.mono = true
				r.monoAt = t1
			}
		}
	}
}

// leaderLoadAt folds one remote read into slot li's §4.5 bucket at barrier
// time t; it runs only on the merge goroutine.
func (r *shardedRun) leaderLoadAt(li int32, t float64) {
	bucket := int32(t / r.cfg.C1)
	if bucket != r.loadBucket[li] {
		if r.loadCount[li] > r.peakLoad {
			r.peakLoad = r.loadCount[li]
		}
		r.loadBucket[li] = bucket
		r.loadCount[li] = 0
	}
	r.loadCount[li]++
}

// notePhaseGlobal updates the global Figure 2 marks; used for the setup
// mark and by foldPhase.
func (r *shardedRun) notePhaseGlobal(g int, s LeaderStateKind, t float64) {
	ph, ok := r.phase[g]
	if !ok {
		ph = &GenPhases{Gen: g,
			FirstTwoChoices: -1, LastTwoChoices: -1,
			FirstSleeping: -1, LastSleeping: -1,
			FirstPropagation: -1, LastPropagation: -1}
		r.phase[g] = ph
	}
	var first, last *float64
	switch s {
	case StateTwoChoices:
		first, last = &ph.FirstTwoChoices, &ph.LastTwoChoices
	case StateSleeping:
		first, last = &ph.FirstSleeping, &ph.LastSleeping
	case StatePropagation:
		first, last = &ph.FirstPropagation, &ph.LastPropagation
	default:
		return
	}
	if *first < 0 || t < *first {
		*first = t
	}
	if t > *last {
		*last = t
	}
}

// foldPhase merges one shard's window marks for generation g into the
// global map.
func (r *shardedRun) foldPhase(g int, w *GenPhases) {
	ph, ok := r.phase[g]
	if !ok {
		cp := *w
		r.phase[g] = &cp
		return
	}
	foldMark(&ph.FirstTwoChoices, &ph.LastTwoChoices, w.FirstTwoChoices, w.LastTwoChoices)
	foldMark(&ph.FirstSleeping, &ph.LastSleeping, w.FirstSleeping, w.LastSleeping)
	foldMark(&ph.FirstPropagation, &ph.LastPropagation, w.FirstPropagation, w.LastPropagation)
}

func foldMark(first, last *float64, wf, wl float64) {
	if wf >= 0 && (*first < 0 || wf < *first) {
		*first = wf
	}
	if wl > *last {
		*last = wl
	}
}

// record appends one trajectory snapshot at barrier time t.
func (r *shardedRun) record(t float64) {
	p := metrics.Snapshot(t, r.cols, r.cfg.K, r.plurality)
	p.MaxGen = r.maxGen
	r.rec.Append(p)
}

// HandleEvent dispatches one shard's typed events; it runs on a worker
// goroutine inside a window and touches only shard-owned and published
// state. evRecord, evDeadline and evCrash never enter a sharded ladder —
// recording, the deadline and crash toggles are barrier-driven.
func (ss *nlShard) HandleEvent(ev sim.Event) {
	switch ev.Kind {
	case evTick:
		ss.clocks.Fire(ev.Node, ss.tickFn)
	case evSignal:
		// Shard-local by the aligned partition: signals only flow from a
		// member to its own cluster's leader.
		ss.signal(int(ev.Node), int(ev.A), LeaderStateKind(ev.B), ev.C != 0)
	case evComplete:
		v := int(ev.Node)
		myLeader := int(ss.run.cl.LeaderOf[v])
		participates := myLeader >= 0 && ss.run.leaderIdx[myLeader] >= 0
		ss.complete(v, int(ev.A), int(ev.B), int(ev.C), myLeader, participates)
	case evAdvDeliver:
		ss.HandleEvent(ss.payload.Take(ev.A))
	}
}

// notePhase updates the shard's window-local Figure 2 marks.
func (ss *nlShard) notePhase(g int, s LeaderStateKind, t float64) {
	ph, ok := ss.phase[g]
	if !ok {
		ph = &GenPhases{Gen: g,
			FirstTwoChoices: -1, LastTwoChoices: -1,
			FirstSleeping: -1, LastSleeping: -1,
			FirstPropagation: -1, LastPropagation: -1}
		ss.phase[g] = ph
	}
	var first, last *float64
	switch s {
	case StateTwoChoices:
		first, last = &ph.FirstTwoChoices, &ph.LastTwoChoices
	case StateSleeping:
		first, last = &ph.FirstSleeping, &ph.LastSleeping
	case StatePropagation:
		first, last = &ph.FirstPropagation, &ph.LastPropagation
	default:
		return
	}
	if *first < 0 || t < *first {
		*first = t
	}
	if t > *last {
		*last = t
	}
}

// setLeader transitions leader slot li (owned by this shard) to
// (gen, state), queueing the slot for publication at the barrier.
func (ss *nlShard) setLeader(li int32, gen int32, s LeaderStateKind) {
	r := ss.run
	if gen != r.lGen[li] || int8(s) != r.lState[li] {
		r.lGen[li] = gen
		r.lState[li] = int8(s)
		ss.dirtyL = append(ss.dirtyL, li)
		ss.notePhase(int(gen), s, ss.sm.Now())
	}
}

// leaderMessage accounts one message reaching a locally owned leader slot.
// Bucket rollovers fold into the shard's window peak, merged at barriers.
func (ss *nlShard) leaderMessage(li int32) {
	r := ss.run
	ss.msgs++
	bucket := int32(ss.sm.Now() / r.cfg.C1)
	if bucket != r.loadBucket[li] {
		if r.loadCount[li] > ss.peak {
			ss.peak = r.loadCount[li]
		}
		r.loadBucket[li] = bucket
		r.loadCount[li] = 0
	}
	r.loadCount[li]++
}

// sendMsg schedules a shard-local message, giving the delay adversary a
// chance to stretch the delivery: a delayed message parks the original
// event in the shard's payload arena and is re-dispatched by evAdvDeliver.
func (ss *nlShard) sendMsg(v int, d float64, ev sim.Event) {
	if ss.view != nil {
		if extra := ss.view.DelayExtra(v, ss.lat); extra > 0 {
			ss.sm.ScheduleAfter(d+extra, sim.Event{Kind: evAdvDeliver, A: ss.payload.Put(ev)})
			return
		}
	}
	ss.sm.ScheduleAfter(d, ev)
}

// sendSignal delivers an (i, s, hasChanged)-signal from node v to leader l
// after one channel latency; l is v's own leader, hence shard-local.
func (ss *nlShard) sendSignal(v, l, i int, s LeaderStateKind, hasChanged bool) {
	if l < 0 {
		return
	}
	var hc int32
	if hasChanged {
		hc = 1
	}
	ss.sendMsg(v, ss.lat.Sample(ss.latR),
		sim.Event{Kind: evSignal, Node: int32(l), A: int32(i), B: int32(s), C: hc})
}

// read returns a sampled partner's (color, generation, finished): live for
// owned nodes, published (last barrier) for remote ones.
func (ss *nlShard) read(x int) (opinion.Opinion, int32, bool) {
	r := ss.run
	if r.owner[x] == ss.id {
		return r.cols[x], r.gens[x], r.finished[x]
	}
	return r.pubCols[x], r.pubGens[x], r.pubFinished[x]
}

// setNode commits a color/generation update of an owned node and tracks
// the window deltas.
func (ss *nlShard) setNode(v int, col opinion.Opinion, gen int32) {
	r := ss.run
	old := r.cols[v]
	r.cols[v] = col
	r.gens[v] = gen
	ss.dirty = append(ss.dirty, int32(v))
	if int(gen) > ss.maxGenW {
		ss.maxGenW = int(gen)
	}
	if old != col {
		ss.colorDelta[old]--
		ss.colorDelta[col]++
	}
}

// push is the Algorithm 4 line 5 endgame: a finished node forces its
// opinion onto a sampled partner. Local targets update in place; remote
// ones go through the barrier outbox.
func (ss *nlShard) push(u int, col opinion.Opinion) {
	r := ss.run
	if r.owner[u] == ss.id {
		ss.setNode(u, col, r.gens[u])
		r.finished[u] = true
		return
	}
	ss.pushN = append(ss.pushN, int32(u))
	ss.pushCol = append(ss.pushCol, col)
}

// tick handles one Poisson tick of an owned node (Algorithm 4).
func (ss *nlShard) tick(v int) {
	r := ss.run
	if r.mono || r.crashed[v] {
		return
	}
	myLeader := int(r.cl.LeaderOf[v])
	participates := myLeader >= 0 && r.leaderIdx[myLeader] >= 0
	if participates {
		ss.sendSignal(v, myLeader, 0, StatePropagation, false)
	}
	if r.locked[v] {
		return
	}
	r.locked[v] = true
	vs, out := ss.scratch.Buffers(3)
	vs[0], vs[1], vs[2] = int32(v), int32(v), int32(v)
	ss.bs.SampleNeighbors(ss.smpR, vs, out)
	lat := ss.lat
	three := math.Max(lat.Sample(ss.latR), math.Max(lat.Sample(ss.latR), lat.Sample(ss.latR)))
	two := math.Max(lat.Sample(ss.latR), lat.Sample(ss.latR))
	ss.sendMsg(v, three+two,
		sim.Event{Kind: evComplete, Node: int32(v), A: out[0], B: out[1], C: out[2]})
}

// signal processes an (i, s, hasChanged)-signal arriving at a locally
// owned leader (Algorithm 5); the automaton mirrors the serial engine's
// statement for statement.
func (ss *nlShard) signal(l, i int, s LeaderStateKind, hasChanged bool) {
	r := ss.run
	li := r.leaderIdx[l]
	if li < 0 || r.crashed[l] {
		return
	}
	ss.leaderMessage(li)
	if r.mono {
		return
	}
	gen, state := r.lGen[li], LeaderStateKind(r.lState[li])
	if i > 0 && (int32(i) > gen || (int32(i) == gen && s > state)) {
		genChanged := int32(i) > gen
		ss.setLeader(li, int32(i), s)
		switch s {
		case StateTwoChoices:
			r.lT[li] = 0
		case StateSleeping:
			r.lT[li] = r.lSleepAt[li]
		case StatePropagation:
			r.lT[li] = r.lPropAt[li]
		}
		if genChanged {
			r.lGenSize[li] = 0
		}
	}
	if i == 0 {
		r.lT[li]++
		if r.lState[li] == int8(StateTwoChoices) && r.lT[li] >= r.lSleepAt[li] {
			ss.setLeader(li, r.lGen[li], StateSleeping)
		} else if r.lState[li] == int8(StateSleeping) && r.lT[li] >= r.lPropAt[li] {
			ss.setLeader(li, r.lGen[li], StatePropagation)
		}
	}
	if hasChanged && int32(i) == r.lGen[li] {
		r.lGenSize[li]++
		thresh := int32(math.Ceil(r.cfg.GenFraction * float64(r.lCard[li])))
		if r.lGenSize[li] >= thresh && int(r.lGen[li]) < r.gStar {
			ss.setLeader(li, r.lGen[li]+1, StateTwoChoices)
			r.lT[li] = 0
			r.lGenSize[li] = 0
		}
	}
}

// complete handles an owned node's established channels (Algorithm 4 lines
// 5-21). Sampled partners may be remote: their node state comes from the
// published copies and a remote third-node leader's (gen, state) from the
// published pair — both one window stale, a defined model. The own leader
// (lines 13-19) is always shard-local by the aligned partition.
func (ss *nlShard) complete(v, v1, v2, v3, myLeader int, participates bool) {
	r := ss.run
	r.locked[v] = false
	if r.mono || r.crashed[v] {
		return
	}
	u1Up, u2Up, u3Up := !r.crashed[v1], !r.crashed[v2], !r.crashed[v3]
	col1, g1, f1 := ss.read(v1)
	col2, g2, f2 := ss.read(v2)
	col3, _, f3 := ss.read(v3)
	if ss.view != nil {
		u1Up = u1Up && !ss.view.DropMessage(v)
		u2Up = u2Up && !ss.view.DropMessage(v)
		u3Up = u3Up && !ss.view.DropMessage(v)
		col1 = opinion.Opinion(ss.view.Lie(v1, int32(col1)))
		col2 = opinion.Opinion(ss.view.Lie(v2, int32(col2)))
		col3 = opinion.Opinion(ss.view.Lie(v3, int32(col3)))
	}
	// Line 5: a finished node pushes its final opinion onto the reachable
	// partners.
	if r.finished[v] {
		for i, u := range [3]int{v1, v2, v3} {
			up := u1Up
			switch i {
			case 1:
				up = u2Up
			case 2:
				up = u3Up
			}
			if !up {
				continue
			}
			ss.push(u, r.cols[v])
		}
		return
	}
	// Line 6-7: adopt a finished sample (at the color it reported).
	for i := 0; i < 3; i++ {
		up, cu, fu := u1Up, col1, f1
		switch i {
		case 1:
			up, cu, fu = u2Up, col2, f2
		case 2:
			up, cu, fu = u3Up, col3, f3
		}
		if up && fu {
			ss.setNode(v, cu, r.gens[v])
			r.finished[v] = true
			return
		}
	}
	if !participates {
		return
	}
	// Line 8: the sampled third node's leader must be active.
	if !u3Up {
		return
	}
	l := int(r.cl.LeaderOf[v3])
	var li int32 = -1
	if l >= 0 && !r.crashed[l] {
		li = r.leaderIdx[l]
	}
	if li < 0 {
		return
	}
	var lGen int
	var lState LeaderStateKind
	if r.lOwner[li] == ss.id {
		ss.leaderMessage(li)
		lGen, lState = int(r.lGen[li]), LeaderStateKind(r.lState[li])
	} else {
		ss.remLi = append(ss.remLi, li)
		lGen, lState = int(r.pubLGen[li]), LeaderStateKind(r.pubLState[li])
	}
	inSync := int(r.tmpGen[v]) == lGen && LeaderStateKind(r.tmpState[v]) == lState

	promoted := false
	if inSync {
		gv := r.gens[v]
		switch {
		case lState == StateTwoChoices && u1Up && u2Up &&
			g1 == g2 && int(g1) == lGen-1 && gv <= g1 &&
			col1 == col2:
			// Line 13-16: two-choices promotion into generation lGen.
			ss.setNode(v, col1, int32(lGen))
			ss.sendSignal(v, myLeader, lGen, StateTwoChoices, true)
			promoted = true
		default:
			// Line 9-12: propagation.
			pick := false
			var pickGen int32 = -1
			var pickCol opinion.Opinion
			for i := 0; i < 2; i++ {
				up, cx, gx := u1Up, col1, g1
				if i == 1 {
					up, cx, gx = u2Up, col2, g2
				}
				if !up {
					continue
				}
				if gx > gv && (int(gx) < lGen ||
					(int(gx) == lGen && lState == StatePropagation)) && gx > pickGen {
					pick = true
					pickGen = gx
					pickCol = cx
				}
			}
			if pick {
				ss.setNode(v, pickCol, pickGen)
				ss.sendSignal(v, myLeader, int(pickGen), StatePropagation, true)
				promoted = true
			}
		}
	}
	if !promoted {
		// Line 17-18: report the sampled leader's state to the own leader.
		ss.sendSignal(v, myLeader, lGen, lState, false)
	}
	// Line 19: refresh the stored leader view from the own leader, which is
	// shard-local, so the read is live.
	if ownLi := r.leaderIdx[myLeader]; ownLi >= 0 && !r.crashed[myLeader] {
		ss.leaderMessage(ownLi)
		r.tmpGen[v] = r.lGen[ownLi]
		r.tmpState[v] = r.lState[ownLi]
	}
	// Line 20: the final generation finishes.
	if int(r.gens[v]) >= r.gStar && !r.finished[v] {
		r.finished[v] = true
		ss.dirty = append(ss.dirty, int32(v))
	}
}
