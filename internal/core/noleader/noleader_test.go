package noleader

import (
	"sort"
	"testing"

	"plurality/internal/opinion"
	"plurality/internal/sim"
	"plurality/internal/xrand"
)

func TestValidation(t *testing.T) {
	cases := []Config{
		{N: 4, K: 2},
		{N: 100, K: 0},
		{N: 100, K: 2, GenFraction: 1.2},
		{N: 100, K: 2, Assignment: make([]opinion.Opinion, 5)},
	}
	for i, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestConverges(t *testing.T) {
	res, err := Run(Config{N: 2000, K: 2, Alpha: 2.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outcome.FullConsensus {
		t.Fatalf("no consensus by t=%v (timed out %v); counts %v",
			res.EndTime, res.TimedOut, res.FinalCounts)
	}
	if !res.Outcome.PluralityWon {
		t.Errorf("plurality lost: %v", res.Outcome)
	}
}

func TestConvergesManyOpinions(t *testing.T) {
	res, err := Run(Config{N: 3000, K: 6, Alpha: 2.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outcome.FullConsensus || !res.Outcome.PluralityWon {
		t.Fatalf("outcome %v (timed out %v)", res.Outcome, res.TimedOut)
	}
}

func TestDeterministicReplay(t *testing.T) {
	cfg := Config{N: 1200, K: 3, Alpha: 2.5, Seed: 7}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.EndTime != b.EndTime || a.Events != b.Events ||
		a.Outcome.Winner != b.Outcome.Winner {
		t.Fatalf("replay diverged: t=%v/%v events=%d/%d",
			a.EndTime, b.EndTime, a.Events, b.Events)
	}
}

func TestPhaseSpansOrdering(t *testing.T) {
	// Figure 2 / Proposition 31: within a generation the fastest leader's
	// two-choices start precedes sleeping which precedes propagation; and
	// generation g+1 starts only after generation g's propagation began.
	res, err := Run(Config{N: 2500, K: 4, Alpha: 2.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PhaseSpans) == 0 {
		t.Fatal("no phase spans recorded")
	}
	for _, ph := range res.PhaseSpans {
		if ph.FirstTwoChoices < 0 {
			t.Errorf("gen %d never entered two-choices", ph.Gen)
			continue
		}
		if ph.FirstSleeping >= 0 && ph.FirstSleeping < ph.FirstTwoChoices {
			t.Errorf("gen %d slept before two-choices", ph.Gen)
		}
		if ph.FirstPropagation >= 0 && ph.FirstSleeping >= 0 &&
			ph.FirstPropagation < ph.FirstSleeping {
			t.Errorf("gen %d propagated before sleeping", ph.Gen)
		}
	}
	// Spans are ordered by generation, strictly increasing.
	for i := 1; i < len(res.PhaseSpans); i++ {
		if res.PhaseSpans[i].Gen <= res.PhaseSpans[i-1].Gen {
			t.Fatal("phase spans not ordered by generation")
		}
	}
}

func TestProposition31aOverlap(t *testing.T) {
	// Prop. 31(a): when the fastest leader starts sleeping, every leader
	// has been in two-choices for a while — i.e. the last two-choices entry
	// precedes the first sleeping entry for each generation.
	res, err := Run(Config{N: 2500, K: 2, Alpha: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, ph := range res.PhaseSpans {
		if ph.FirstSleeping < 0 || ph.LastTwoChoices < 0 {
			continue
		}
		if ph.LastTwoChoices > ph.FirstSleeping {
			t.Errorf("gen %d: a leader entered two-choices at %v after the first sleep at %v",
				ph.Gen, ph.LastTwoChoices, ph.FirstSleeping)
		}
		checked++
	}
	if checked == 0 {
		t.Skip("no generation completed a full two-choices/sleep cycle")
	}
}

func TestSuccessRateAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed success-rate sweep skipped in -short mode")
	}
	wins := 0
	const trials = 6
	for seed := 0; seed < trials; seed++ {
		res, err := Run(Config{N: 1500, K: 3, Alpha: 3, Seed: uint64(seed)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome.PluralityWon && res.Outcome.FullConsensus {
			wins++
		}
	}
	if wins < trials-1 {
		t.Errorf("plurality won only %d/%d runs", wins, trials)
	}
}

func TestClusteringReported(t *testing.T) {
	res, err := Run(Config{N: 1500, K: 2, Alpha: 2.5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clustering == nil {
		t.Fatal("no clustering in result")
	}
	if res.ClusteringTime <= 0 {
		t.Error("clustering time not recorded")
	}
	if got := res.Clustering.ParticipatingFrac(); got < 0.7 {
		t.Errorf("participating fraction %v too small", got)
	}
}

func TestGenerationsBounded(t *testing.T) {
	res, err := Run(Config{N: 1500, K: 3, Alpha: 2.5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Trajectory {
		if p.MaxGen > res.GStar {
			t.Fatalf("generation %d exceeds G* = %d", p.MaxGen, res.GStar)
		}
	}
}

func TestSlowLatency(t *testing.T) {
	res, err := Run(Config{
		N: 1200, K: 2, Alpha: 3, Seed: 13,
		Latency: sim.ExpLatency{Rate: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outcome.FullConsensus {
		t.Fatalf("no consensus with slow latency (timed out %v)", res.TimedOut)
	}
}

func TestClusterLeaderLoadBounded(t *testing.T) {
	// §4.5: no cluster leader's per-unit load should be anywhere near n —
	// it is bounded by a small multiple of the cluster size (members send
	// one signal per tick plus reads from random samplers).
	res, err := Run(Config{N: 2000, K: 2, Alpha: 3, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalLeaderMessages == 0 {
		t.Fatal("no leader messages accounted")
	}
	maxCard := 0
	for _, l := range res.Clustering.ParticipatingLeaders() {
		if s := res.Clustering.Size[l]; s > maxCard {
			maxCard = s
		}
	}
	bound := 4 * float64(maxCard) * res.C1
	if res.PeakLeaderLoad > bound {
		t.Errorf("peak cluster-leader load %v exceeds %v (4×card×C1, card=%d)",
			res.PeakLeaderLoad, bound, maxCard)
	}
	// A designated leader would serve ≈ n messages per step, i.e. n·C1 per
	// time unit; cluster leaders must stay well below that scale.
	singleScale := float64(res.Clustering.N) * res.C1
	if res.PeakLeaderLoad >= singleScale/3 {
		t.Errorf("peak cluster-leader load %v within 3× of single-leader scale %v",
			res.PeakLeaderLoad, singleScale)
	}
}

func TestEstimateC1MultiAboveSingle(t *testing.T) {
	// The multi-leader accumulated latency max-of-3 + max-of-2 dominates
	// the single-leader max-of-2 + one, so its C1 must be at least as big.
	lat := sim.ExpLatency{Rate: 1}
	multi := EstimateC1(lat, 1)
	r := xrand.New(1).SplitNamed("cmp")
	const samples = 40000
	xs := make([]float64, samples)
	for i := range xs {
		acc := func() float64 {
			a, b := lat.Sample(r), lat.Sample(r)
			if b > a {
				a = b
			}
			return a + lat.Sample(r)
		}
		xs[i] = acc() + r.Exp(1) + acc()
	}
	sort.Float64s(xs)
	single := xs[int(0.9*float64(samples))]
	if multi < single*0.9 {
		t.Errorf("multi-leader C1 %v implausibly below single-leader %v", multi, single)
	}
}

func TestQuickselectAgainstSort(t *testing.T) {
	r := xrand.New(3)
	for trial := 0; trial < 30; trial++ {
		n := 1 + r.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Norm()
		}
		cp := make([]float64, n)
		copy(cp, xs)
		sort.Float64s(cp)
		k := r.Intn(n)
		if got := quickselect(xs, k); got != cp[k] {
			t.Fatalf("quickselect(k=%d) = %v, want %v", k, got, cp[k])
		}
	}
}

func BenchmarkRunN1500(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{N: 1500, K: 3, Alpha: 2.5, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
