// Package noleader implements the paper's fully decentralized
// plurality-consensus protocol (Algorithms 4 and 5, §4): after the
// clustering phase of internal/cluster has produced n/polylog(n) cluster
// leaders, the leaders jointly emulate the single leader of §3.
//
// Per generation every leader walks through three states — 1 (two-choices),
// 2 (sleeping), 3 (propagation) — driven by counting the (0,·,·)-signals of
// its members as a clock. Freshness spreads between leaders through ordinary
// node traffic: every node reports the (gen, state) pair of the random
// leader it sampled to its own leader, which adopts lexicographically newer
// pairs (Algorithm 5 lines 1–3). The sleeping state absorbs the O(1)
// broadcast skew so that no cluster is still doing two-choices for
// generation i when another already allows propagation (Proposition 31,
// Figure 2).
package noleader

import (
	"context"
	"fmt"
	"math"

	"plurality/internal/adversary"
	"plurality/internal/cluster"
	"plurality/internal/metrics"
	"plurality/internal/opinion"
	"plurality/internal/sim"
	"plurality/internal/snap"
	"plurality/internal/topo"
	"plurality/internal/xrand"
)

// Config parametrizes one decentralized run.
type Config struct {
	// N is the number of nodes (>= 8) and K the number of opinions (>= 1).
	N, K int
	// Alpha builds a planted-bias assignment when Assignment is nil.
	Alpha float64
	// Assignment optionally fixes the initial opinions (not mutated).
	Assignment []opinion.Opinion
	// Latency is the channel-establishment distribution; default Exp(1).
	Latency sim.Latency
	// Topo is the interaction graph random contacts are sampled from, in
	// both the clustering and the consensus phase; nil means the complete
	// graph on N nodes (the paper's model). Its size must equal N.
	Topo topo.Sampler
	// Cluster optionally overrides the clustering parameters; N, Latency,
	// Topo and Seed are filled in from this Config.
	Cluster cluster.Params
	// C1 is the steps-per-time-unit constant; default the measured
	// 0.9-quantile of the multi-leader waiting time T3 with
	// T'2 = max(T2,T2,T2) + max(T2,T2) (§4.3).
	C1 float64
	// TwoChoicesUnits is the length of the two-choices phase in time units
	// (the paper's C2 = Cbr + 1 + 2/C1 shape); default 3.5.
	TwoChoicesUnits float64
	// SleepUnits is the length of the sleeping phase in time units
	// (C3 − C2 in the paper); default 3.5.
	SleepUnits float64
	// GenFraction is the fraction of its cluster a leader must see in the
	// newest generation before advancing; default 1/2 + 1/√log₂ n
	// (Algorithm 5 line 12).
	GenFraction float64
	// GStar caps the number of generations; default
	// syncgen.GenerationBudget(N, α̂) + 2.
	GStar int
	// MaxTime aborts the consensus phase (virtual time steps); default
	// derived from the theoretical horizon with a ×16 safety factor.
	MaxTime float64
	// Seed drives all randomness (clustering and consensus).
	Seed uint64
	// RecordEvery sets the snapshot interval in time steps; default C1.
	RecordEvery float64
	// Eps defines ε-convergence; default 1/log² n.
	Eps float64
	// Ctx cancels or bounds the run (clustering and consensus phases);
	// polled every few hundred simulator events. nil means never cancelled.
	Ctx context.Context
	// Observe, when non-nil, receives every recorded consensus-phase
	// snapshot as it happens.
	Observe func(metrics.Point)
	// DiscardTrajectory leaves Result.Trajectory empty, keeping O(1)
	// recording memory; the Outcome is evaluated incrementally instead.
	DiscardTrajectory bool
	// Adv configures the shared adversary layer (crash/churn, message
	// delay/drop, Byzantine lying; see internal/adversary). The zero value
	// disables it; it draws from its own generator, so honest runs stay
	// byte-identical. Adversary actions apply to the consensus phase only —
	// the clustering phase runs before the adversary wakes up.
	Adv adversary.Config
	// Ckpt requests a mid-run state capture and/or resumes from one; nil
	// disables checkpointing. Ckpt.At refers to consensus-phase virtual
	// time (the time axis of the Result); the snapshot embeds the finished
	// clustering, so a restored run skips formation entirely. See
	// snap.Checkpoint for the semantics shared by every engine.
	Ckpt *snap.Checkpoint
	// Scratch optionally supplies reusable batch-sampling buffers; nil
	// allocates run-local ones. The public batch layer passes one per
	// worker so replications sharing a worker share buffers. Sharded runs
	// (Shards > 1) ignore it and use per-shard buffers.
	Scratch *topo.Scratch
	// Shards splits the node set across this many event ladders run in
	// parallel and synchronized at ladder-window barriers (conservative
	// PDES; see runSharded). 0 or 1 selects the serial kernel, whose output
	// is byte-identical to every release since the ladder landed. The
	// partition is cluster-aligned (topo.PartitionAligned over the finished
	// clustering's LeaderOf): a cluster never straddles shards, so every
	// member-to-leader signal stays shard-local and the leader automata
	// have a single writer each. For fixed Shards > 1 the result is a pure
	// function of (config, seed, shards) — reproducible, but a different
	// sample path than the serial kernel's. Sharded runs support
	// adversaries (Adv; decisions are keyed by node id, see
	// adversary.ShardView) and checkpointing (captured at a window barrier;
	// a blob taken at Shards=S resumes only at Shards=S).
	Shards int
	// ShardWorkers bounds the worker pool driving the shards; 0 means
	// GOMAXPROCS. Any value produces identical results (worker-count
	// invariance), it only changes how much hardware parallelism is used.
	ShardWorkers int
}

func (cfg *Config) normalize() error {
	if cfg.N < 8 {
		return fmt.Errorf("noleader: need N >= 8, got %d", cfg.N)
	}
	if cfg.K < 1 {
		return fmt.Errorf("noleader: need K >= 1, got %d", cfg.K)
	}
	if cfg.Assignment != nil && len(cfg.Assignment) != cfg.N {
		return fmt.Errorf("noleader: assignment length %d != N %d", len(cfg.Assignment), cfg.N)
	}
	if cfg.Latency == nil {
		cfg.Latency = sim.ExpLatency{Rate: 1}
	}
	tp, err := topo.OrComplete(cfg.Topo, cfg.N)
	if err != nil {
		return fmt.Errorf("noleader: %w", err)
	}
	cfg.Topo = tp
	if cfg.C1 <= 0 {
		cfg.C1 = EstimateC1(cfg.Latency, cfg.Seed)
	}
	if cfg.TwoChoicesUnits <= 0 {
		cfg.TwoChoicesUnits = 3.5
	}
	if cfg.SleepUnits <= 0 {
		cfg.SleepUnits = 3.5
	}
	if cfg.GenFraction == 0 {
		// Algorithm 5 line 12 uses 1/2 + 1/√log n, which at asymptotic n is
		// barely above 1/2; at laptop scale the raw formula reaches ~0.8
		// and leaves no slack for gen-signals that arrive while the own
		// leader lags (those are not counted), so the default is clamped.
		cfg.GenFraction = 0.5 + 1/math.Sqrt(math.Log2(float64(cfg.N)))
		if cfg.GenFraction > 0.7 {
			cfg.GenFraction = 0.7
		}
	}
	if cfg.GenFraction <= 0 || cfg.GenFraction >= 1 {
		return fmt.Errorf("noleader: GenFraction %v outside (0,1)", cfg.GenFraction)
	}
	if cfg.RecordEvery <= 0 {
		cfg.RecordEvery = cfg.C1
	}
	if cfg.Eps <= 0 {
		l := math.Log2(float64(cfg.N))
		cfg.Eps = 1 / (l * l)
	}
	if cfg.Adv.Kind != adversary.None {
		cfg.Adv.N = cfg.N
	}
	if cfg.Shards < 0 {
		return fmt.Errorf("noleader: negative Shards %d", cfg.Shards)
	}
	if cfg.Shards > cfg.N {
		return fmt.Errorf("noleader: Shards %d exceeds N %d", cfg.Shards, cfg.N)
	}
	return nil
}

// EstimateC1 returns the 0.9-quantile of the multi-leader waiting time
// T3 = T'2 + T1 + T'2, T'2 = max(T2,T2,T2) + max(T2,T2), estimated by
// Monte-Carlo; deterministic in seed.
func EstimateC1(lat sim.Latency, seed uint64) float64 {
	r := xrand.New(seed).SplitNamed("c1-estimate-multi")
	const samples = 40000
	xs := make([]float64, samples)
	acc := func() float64 {
		three := math.Max(lat.Sample(r), math.Max(lat.Sample(r), lat.Sample(r)))
		two := math.Max(lat.Sample(r), lat.Sample(r))
		return three + two
	}
	for i := range xs {
		xs[i] = acc() + r.Exp(1) + acc()
	}
	return quantile09(xs)
}

func quantile09(xs []float64) float64 {
	k := int(0.9 * float64(len(xs)))
	return quickselect(xs, k)
}

// quickselect returns the k-th smallest element (0-based), reordering xs.
func quickselect(xs []float64, k int) float64 {
	lo, hi := 0, len(xs)-1
	for {
		if lo == hi {
			return xs[lo]
		}
		mid := (lo + hi) / 2
		if xs[mid] < xs[lo] {
			xs[mid], xs[lo] = xs[lo], xs[mid]
		}
		if xs[hi] < xs[lo] {
			xs[hi], xs[lo] = xs[lo], xs[hi]
		}
		if xs[hi] < xs[mid] {
			xs[hi], xs[mid] = xs[mid], xs[hi]
		}
		pivot := xs[mid]
		i, j := lo, hi
		for i <= j {
			for xs[i] < pivot {
				i++
			}
			for xs[j] > pivot {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return xs[k]
		}
	}
}
