// Package core groups the implementations of the paper's primary
// contribution — generation-based plurality consensus — in three variants:
//
//   - syncgen:  the synchronous protocol (Algorithm 1, §2);
//   - leader:   the asynchronous protocol with a single designated leader
//     (Algorithms 2 and 3, §3);
//   - noleader: the fully decentralized protocol with cluster leaders
//     (Algorithms 4 and 5, §4), built on internal/cluster.
//
// The package itself contains no code; it exists so that godoc renders the
// family as one unit.
package core
