package syncgen

import (
	"math"

	"plurality/internal/adversary"
	"plurality/internal/opinion"
	"plurality/internal/topo"
	"plurality/internal/xrand"
)

// stepChunk is the number of nodes whose partner pairs are batch-drawn at
// a time: 2·stepChunk draws per SampleNeighbors call, sized so the vs
// scratch stays cache-resident while the per-call dispatch cost is fully
// amortized. Chunking affects only how the draws are grouped, never the
// stream: by the scalar-equivalence invariant the drawn partners are
// byte-identical for any chunk size.
const stepChunk = 2048

// blockTarget is the cache-block size of the step's apply stage: 8192
// packed words are 32 KiB of node state, so one block plus its partner
// halo stays L1/L2-resident while its gathers execute.
const blockTarget = 8192

// The packed node state: one uint32 word per node, generation in the high
// byte and color in the low 24 bits. A partner gather then touches one
// word instead of two parallel slices, which matters because the step loop
// is bound by exactly those gathers. The layout bounds the engine to
// maxPackedOpinions colors and maxPackedGen generations, both validated by
// Run (the public layer mirrors the color bound as plurality.MaxOpinions).
const (
	genShift          = 24
	colMask           = 1<<genShift - 1
	genUnit           = 1 << genShift // one-generation increment of a word
	maxPackedOpinions = 1 << genShift
	maxPackedGen      = math.MaxUint32 >> genShift
)

// state holds the full synchronous configuration in packed form plus the
// incremental tallies, so per-step bookkeeping stays O(n) and generation
// statistics are O(1) to read.
type state struct {
	n, k     int
	gCap     int      // highest representable generation (G*)
	packed   []uint32 // current configuration, one word per node
	next     []uint32 // scratch for the synchronous update
	partners []int32  // staged partner draws: nodes 2v, 2v+1 (id order)
	order    []int32  // cache-blocked traversal order; nil = identity
	blockOff []int32  // block boundaries (into order, or node-id ranges)
	// Per-block change buffers: the apply loop stages (old, new) word pairs
	// of the nodes it changed and the tally folds them at the block
	// boundary, keeping tally branches out of the gather loop.
	deltaOld []uint32
	deltaNew []uint32
	tally    *tally
	scratch  *topo.Scratch // batch-sampling buffers (per-worker under RunBatch)

	// Adversary support (nil/empty for honest runs; see adversary.go).
	adv     *adversary.State
	crashed []bool
	aliveN  int
}

// newState packs the initial assignment (generation 0 throughout) and
// prepares the blocked traversal for the run's topology. tp may be nil in
// unit tests, which keeps the identity order.
func newState(cols []opinion.Opinion, k, gStar int, tp topo.Sampler, scratch *topo.Scratch) *state {
	n := len(cols)
	if scratch == nil {
		scratch = &topo.Scratch{}
	}
	st := &state{
		n:        n,
		k:        k,
		gCap:     gStar,
		packed:   make([]uint32, n),
		next:     make([]uint32, n),
		partners: make([]int32, 2*n),
		tally:    newTally(k, gStar),
		scratch:  scratch,
	}
	for v, c := range cols {
		st.packed[v] = uint32(c)
	}
	if err := st.tally.rebuild(st.packed); err != nil {
		// The caller validated the assignment; a bad word here is a bug.
		panic(err)
	}
	if tp != nil {
		st.order, st.blockOff = topo.BlockOrder(tp, blockTarget)
	} else {
		st.blockOff = []int32{0}
		for v := blockTarget; v < n; v += blockTarget {
			st.blockOff = append(st.blockOff, int32(v))
		}
		st.blockOff = append(st.blockOff, int32(n))
	}
	maxBlock := 0
	for b := 1; b < len(st.blockOff); b++ {
		if size := int(st.blockOff[b] - st.blockOff[b-1]); size > maxBlock {
			maxBlock = size
		}
	}
	st.deltaOld = make([]uint32, maxBlock)
	st.deltaNew = make([]uint32, maxBlock)
	return st
}

// colOf returns node v's current color.
func (st *state) colOf(v int) opinion.Opinion {
	return opinion.Opinion(st.packed[v] & colMask)
}

// drawPartners stages the two partner draws of every node into
// st.partners, in node-id order — node 0's pair, then node 1's, … — which
// consumes the RNG stream exactly as the historical per-node scalar draws,
// so golden digests are unaffected. The apply stage is then free to walk
// the nodes in any order it likes.
func (st *state) drawPartners(r *xrand.RNG, tp topo.BatchSampler) {
	n := st.n
	for base := 0; base < n; base += stepChunk {
		m := stepChunk
		if base+m > n {
			m = n - base
		}
		vs, _ := st.scratch.Buffers(2 * m)
		for i := 0; i < m; i++ {
			v := int32(base + i)
			vs[2*i] = v
			vs[2*i+1] = v
		}
		tp.SampleNeighbors(r, vs, st.partners[2*base:2*(base+m)])
	}
}

// step executes one synchronous round of Algorithm 1 as a staged pipeline:
// partner pairs are batch-drawn in node-id order, then the two-choices /
// propagation rules are applied against the *previous* configuration,
// folding per-generation tally deltas at block boundaries. Topologies whose
// locality order is the identity (complete, ring, small grids) take the
// fused path, where the draw and apply stages interleave chunk by chunk and
// the partner indices never leave the L1-resident scratch buffer; permuted
// orders stage all draws first and then walk the blocked order. Either way
// the RNG stream is consumed in node-id order (the scalar-equivalence
// invariant makes the chunking invisible), updates read only the previous
// words, and the tally deltas commute — so both paths produce byte-identical
// results and differ purely in memory traffic.
func (st *state) step(r *xrand.RNG, tp topo.BatchSampler, twoChoices bool) {
	if st.order == nil {
		st.stepFused(r, tp, twoChoices)
		return
	}
	st.drawPartners(r, tp)
	packed, next, partners := st.packed, st.next, st.partners
	deltaOld, deltaNew := st.deltaOld, st.deltaNew
	gCap := uint32(st.gCap)
	for b := 1; b < len(st.blockOff); b++ {
		lo, hi := int(st.blockOff[b-1]), int(st.blockOff[b])
		nd := 0
		for _, v32 := range st.order[lo:hi] {
			v := int(v32)
			w := packed[v]
			wa := packed[partners[2*v]]
			wb := packed[partners[2*v+1]]
			// wlog gen(a) >= gen(b) (Algorithm 1 line 2).
			if wa>>genShift < wb>>genShift {
				wa, wb = wb, wa
			}
			nw := w
			if twoChoices && wa == wb &&
				w>>genShift <= wa>>genShift && wa>>genShift < gCap {
				// Two-choices promotion (line 3-5): equal partner
				// words mean equal generations and equal colors.
				nw = wa + genUnit
			} else if wa>>genShift > w>>genShift {
				// Propagation (line 6-8).
				nw = wa
			}
			next[v] = nw
			if nw != w {
				deltaOld[nd] = w
				deltaNew[nd] = nw
				nd++
			}
		}
		st.foldDeltas(nd)
	}
	st.tally.collapse()
	st.packed, st.next = st.next, st.packed
}

// foldDeltas folds one block's staged (old, new) word pairs into the tally.
// Node generations are monotone under both rules, so maxGen only moves up
// and the deltas replace the historical full zero-and-recount pass. Both
// modes stage two indexed adds per changed node — into the dense diff
// matrix, or into per-generation scratch rows — and collapse() folds the
// staged deltas into the aggregates once per step, keeping sorted-row
// searches (sparse) and bookkeeping branches (dense) off the per-node path.
func (st *state) foldDeltas(nd int) {
	deltaOld, deltaNew := st.deltaOld, st.deltaNew
	t := st.tally
	if diff := t.diff; diff != nil {
		k := st.k
		for i := 0; i < nd; i++ {
			o, nw := deltaOld[i], deltaNew[i]
			diff[int(o>>genShift)*k+int(o&colMask)]--
			diff[int(nw>>genShift)*k+int(nw&colMask)]++
		}
		return
	}
	for i := 0; i < nd; i++ {
		o, nw := deltaOld[i], deltaNew[i]
		t.rowDiffFor(int(o >> genShift))[o&colMask]--
		t.rowDiffFor(int(nw >> genShift))[nw&colMask]++
	}
}

// stepFused is the identity-order variant of step: each stepChunk-sized
// chunk of nodes has its partner pair drawn and applied before the next
// chunk draws, so the partner indices live entirely in the scratch buffer
// (16 KiB) instead of round-tripping through the full 2n-element partners
// array. The draw stream is still node-id order — chunk c draws nodes
// [c·stepChunk, (c+1)·stepChunk) in order — so it is byte-identical to the
// staged path.
func (st *state) stepFused(r *xrand.RNG, tp topo.BatchSampler, twoChoices bool) {
	n := st.n
	packed, next := st.packed, st.next
	deltaOld, deltaNew := st.deltaOld, st.deltaNew
	gCap := uint32(st.gCap)
	for base := 0; base < n; base += stepChunk {
		m := stepChunk
		if base+m > n {
			m = n - base
		}
		vs, out := st.scratch.Buffers(2 * m)
		for i := 0; i < m; i++ {
			v := int32(base + i)
			vs[2*i] = v
			vs[2*i+1] = v
		}
		tp.SampleNeighbors(r, vs, out)
		// The inner kernels are written branch-poor on purpose: the swap,
		// the rule selection and the delta staging all compile to
		// conditional moves, because a data-dependent mispredict here
		// flushes the in-flight partner gathers that dominate the step.
		// Staging a delta pair is therefore unconditional (two L1 stores)
		// and only the cursor advance depends on whether the word changed.
		nd := 0
		if twoChoices {
			for i := 0; i < m; i++ {
				v := base + i
				w := packed[v]
				wa := packed[out[2*i]]
				wb := packed[out[2*i+1]]
				// wlog gen(a) >= gen(b) (Algorithm 1 line 2).
				if wa>>genShift < wb>>genShift {
					wa, wb = wb, wa
				}
				nw := w
				if wa>>genShift > w>>genShift {
					// Propagation (line 6-8).
					nw = wa
				}
				if wa == wb && w>>genShift <= wa>>genShift && wa>>genShift < gCap {
					// Two-choices promotion (line 3-5) wins over
					// propagation, as in the if/else original: equal
					// partner words mean equal generations and colors.
					nw = wa + genUnit
				}
				next[v] = nw
				deltaOld[nd] = w
				deltaNew[nd] = nw
				if nw != w {
					nd++
				}
			}
		} else {
			for i := 0; i < m; i++ {
				v := base + i
				w := packed[v]
				wa := packed[out[2*i]]
				wb := packed[out[2*i+1]]
				if wa>>genShift < wb>>genShift {
					wa = wb
				}
				nw := w
				if wa>>genShift > w>>genShift {
					nw = wa
				}
				next[v] = nw
				deltaOld[nd] = w
				deltaNew[nd] = nw
				if nw != w {
					nd++
				}
			}
		}
		st.foldDeltas(nd)
	}
	st.tally.collapse()
	st.packed, st.next = st.next, st.packed
}

// genBias returns the color bias inside generation g (1 when empty).
func (st *state) genBias(g int) float64 {
	return st.tally.rowBias(g)
}

// monochromatic reports whether all nodes share one color.
func (st *state) monochromatic() bool {
	return st.tally.monochromatic()
}

// noteGenerations appends GenEvents for newly born generations and fills in
// establishment records once a generation reaches the γ threshold.
func (st *state) noteGenerations(step int, gamma float64, res *Result) {
	for g := 1; g <= st.gCap; g++ {
		size := st.tally.genSize[g]
		if size == 0 {
			continue
		}
		idx := -1
		for i := range res.Generations {
			if res.Generations[i].Gen == g {
				idx = i
				break
			}
		}
		if idx == -1 {
			res.Generations = append(res.Generations, GenEvent{
				Gen:             g,
				BirthStep:       step,
				BirthFrac:       float64(size) / float64(st.n),
				BirthBias:       st.genBias(g),
				EstablishedStep: -1,
			})
			idx = len(res.Generations) - 1
		}
		ev := &res.Generations[idx]
		if ev.EstablishedStep == -1 && float64(size) >= gamma*float64(st.n) {
			ev.EstablishedStep = step
			ev.EstablishedBias = st.genBias(g)
		}
	}
}

func log2f(x float64) float64 { return math.Log2(x) }
