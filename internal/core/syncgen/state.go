package syncgen

import (
	"math"

	"plurality/internal/opinion"
	"plurality/internal/topo"
	"plurality/internal/xrand"
)

// state holds the full synchronous configuration plus incremental
// per-generation color tallies, so per-step bookkeeping stays O(n) and
// generation statistics are O(1) to read.
type state struct {
	n, k    int
	gCap    int // highest representable generation (G*)
	cols    []opinion.Opinion
	gens    []int32
	next    []opinion.Opinion // scratch for the synchronous update
	nextG   []int32
	genCol  [][]int // genCol[g][c]: nodes of generation g with color c
	genSize []int
	maxGen  int
}

func newState(cols []opinion.Opinion, k, gStar int) *state {
	n := len(cols)
	st := &state{
		n:       n,
		k:       k,
		gCap:    gStar,
		cols:    cols,
		gens:    make([]int32, n),
		next:    make([]opinion.Opinion, n),
		nextG:   make([]int32, n),
		genCol:  make([][]int, gStar+1),
		genSize: make([]int, gStar+1),
	}
	for g := range st.genCol {
		st.genCol[g] = make([]int, k)
	}
	for _, c := range cols {
		st.genCol[0][c]++
	}
	st.genSize[0] = n
	return st
}

// step executes one synchronous round of Algorithm 1: every node samples two
// neighbors in tp from the *previous* configuration and applies the
// two-choices rule (when enabled) or the propagation rule.
func (st *state) step(r *xrand.RNG, tp topo.Sampler, twoChoices bool) {
	n := st.n
	for v := 0; v < n; v++ {
		a := tp.SampleNeighbor(r, v)
		b := tp.SampleNeighbor(r, v)
		// wlog gen(a) >= gen(b) (Algorithm 1 line 2).
		if st.gens[a] < st.gens[b] {
			a, b = b, a
		}
		col, gen := st.cols[v], st.gens[v]
		switch {
		case twoChoices &&
			st.gens[a] == st.gens[b] && gen <= st.gens[a] &&
			int(st.gens[a]) < st.gCap &&
			st.cols[a] == st.cols[b]:
			// Two-choices promotion (line 3-5).
			gen = st.gens[a] + 1
			col = st.cols[a]
		case st.gens[a] > gen:
			// Propagation (line 6-8).
			gen = st.gens[a]
			col = st.cols[a]
		}
		st.next[v] = col
		st.nextG[v] = gen
	}
	// Commit and retally.
	st.cols, st.next = st.next, st.cols
	st.gens, st.nextG = st.nextG, st.gens
	for g := range st.genCol {
		st.genSize[g] = 0
		row := st.genCol[g]
		for c := range row {
			row[c] = 0
		}
	}
	st.maxGen = 0
	for v := 0; v < n; v++ {
		g := int(st.gens[v])
		st.genCol[g][st.cols[v]]++
		st.genSize[g]++
		if g > st.maxGen {
			st.maxGen = g
		}
	}
}

// genBias returns the color bias inside generation g (1 when empty).
func (st *state) genBias(g int) float64 {
	return opinion.Counts(st.genCol[g]).Bias()
}

// monochromatic reports whether all nodes share one color.
func (st *state) monochromatic() bool {
	colored := 0
	for c := 0; c < st.k; c++ {
		tot := 0
		for g := range st.genCol {
			tot += st.genCol[g][c]
		}
		if tot > 0 {
			colored++
			if colored > 1 {
				return false
			}
		}
	}
	return true
}

// noteGenerations appends GenEvents for newly born generations and fills in
// establishment records once a generation reaches the γ threshold.
func (st *state) noteGenerations(step int, gamma float64, res *Result) {
	for g := 1; g <= st.gCap; g++ {
		size := st.genSize[g]
		if size == 0 {
			continue
		}
		idx := -1
		for i := range res.Generations {
			if res.Generations[i].Gen == g {
				idx = i
				break
			}
		}
		if idx == -1 {
			res.Generations = append(res.Generations, GenEvent{
				Gen:             g,
				BirthStep:       step,
				BirthFrac:       float64(size) / float64(st.n),
				BirthBias:       st.genBias(g),
				EstablishedStep: -1,
			})
			idx = len(res.Generations) - 1
		}
		ev := &res.Generations[idx]
		if ev.EstablishedStep == -1 && float64(size) >= gamma*float64(st.n) {
			ev.EstablishedStep = step
			ev.EstablishedBias = st.genBias(g)
		}
	}
}

func log2f(x float64) float64 { return math.Log2(x) }
