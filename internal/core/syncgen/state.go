package syncgen

import (
	"math"

	"plurality/internal/adversary"
	"plurality/internal/opinion"
	"plurality/internal/topo"
	"plurality/internal/xrand"
)

// stepChunk is the number of nodes whose partner pairs are batch-drawn at
// a time: 2·stepChunk draws per SampleNeighbors call, sized so the (vs,
// out) scratch stays cache-resident (32 KiB) while the per-call dispatch
// cost is fully amortized.
const stepChunk = 2048

// state holds the full synchronous configuration plus incremental
// per-generation color tallies, so per-step bookkeeping stays O(n) and
// generation statistics are O(1) to read.
type state struct {
	n, k    int
	gCap    int // highest representable generation (G*)
	cols    []opinion.Opinion
	gens    []int32
	next    []opinion.Opinion // scratch for the synchronous update
	nextG   []int32
	genCol  [][]int // genCol[g][c]: nodes of generation g with color c
	genSize []int
	maxGen  int
	scratch *topo.Scratch // batch-sampling buffers (per-worker under RunBatch)

	// Adversary support (nil/empty for honest runs; see adversary.go).
	adv     *adversary.State
	crashed []bool
	aliveN  int
}

func newState(cols []opinion.Opinion, k, gStar int, scratch *topo.Scratch) *state {
	n := len(cols)
	if scratch == nil {
		scratch = &topo.Scratch{}
	}
	st := &state{
		n:       n,
		k:       k,
		gCap:    gStar,
		cols:    cols,
		gens:    make([]int32, n),
		next:    make([]opinion.Opinion, n),
		nextG:   make([]int32, n),
		genCol:  make([][]int, gStar+1),
		genSize: make([]int, gStar+1),
		scratch: scratch,
	}
	for g := range st.genCol {
		st.genCol[g] = make([]int, k)
	}
	for _, c := range cols {
		st.genCol[0][c]++
	}
	st.genSize[0] = n
	return st
}

// step executes one synchronous round of Algorithm 1 as a staged pipeline:
// all partner pairs of a chunk of nodes are batch-drawn first (consuming
// the RNG stream exactly as the historical per-node scalar draws — a, b
// for node 0, then node 1, … — so golden digests are unaffected), then the
// two-choices/propagation rules are applied against the *previous*
// configuration with per-generation tally deltas instead of a full
// retally.
func (st *state) step(r *xrand.RNG, tp topo.BatchSampler, twoChoices bool) {
	n := st.n
	for base := 0; base < n; base += stepChunk {
		m := stepChunk
		if base+m > n {
			m = n - base
		}
		vs, out := st.scratch.Buffers(2 * m)
		for i := 0; i < m; i++ {
			v := int32(base + i)
			vs[2*i] = v
			vs[2*i+1] = v
		}
		tp.SampleNeighbors(r, vs, out)
		for i := 0; i < m; i++ {
			v := base + i
			a, b := int(out[2*i]), int(out[2*i+1])
			// wlog gen(a) >= gen(b) (Algorithm 1 line 2).
			if st.gens[a] < st.gens[b] {
				a, b = b, a
			}
			col, gen := st.cols[v], st.gens[v]
			switch {
			case twoChoices &&
				st.gens[a] == st.gens[b] && gen <= st.gens[a] &&
				int(st.gens[a]) < st.gCap &&
				st.cols[a] == st.cols[b]:
				// Two-choices promotion (line 3-5).
				gen = st.gens[a] + 1
				col = st.cols[a]
			case st.gens[a] > gen:
				// Propagation (line 6-8).
				gen = st.gens[a]
				col = st.cols[a]
			}
			st.next[v] = col
			st.nextG[v] = gen
		}
	}
	// Commit, folding the change of every node into the generation tallies.
	// Node generations are monotone under both rules, so maxGen only moves
	// up and the deltas replace the historical full zero-and-recount pass.
	st.cols, st.next = st.next, st.cols
	st.gens, st.nextG = st.nextG, st.gens
	for v := 0; v < n; v++ {
		oc, og := st.next[v], st.nextG[v] // previous configuration after swap
		c, g := st.cols[v], st.gens[v]
		if c != oc || g != og {
			st.genCol[og][oc]--
			st.genSize[og]--
			st.genCol[g][c]++
			st.genSize[g]++
			if int(g) > st.maxGen {
				st.maxGen = int(g)
			}
		}
	}
}

// genBias returns the color bias inside generation g (1 when empty).
func (st *state) genBias(g int) float64 {
	return opinion.Counts(st.genCol[g]).Bias()
}

// monochromatic reports whether all nodes share one color.
func (st *state) monochromatic() bool {
	colored := 0
	for c := 0; c < st.k; c++ {
		tot := 0
		for g := range st.genCol {
			tot += st.genCol[g][c]
		}
		if tot > 0 {
			colored++
			if colored > 1 {
				return false
			}
		}
	}
	return true
}

// noteGenerations appends GenEvents for newly born generations and fills in
// establishment records once a generation reaches the γ threshold.
func (st *state) noteGenerations(step int, gamma float64, res *Result) {
	for g := 1; g <= st.gCap; g++ {
		size := st.genSize[g]
		if size == 0 {
			continue
		}
		idx := -1
		for i := range res.Generations {
			if res.Generations[i].Gen == g {
				idx = i
				break
			}
		}
		if idx == -1 {
			res.Generations = append(res.Generations, GenEvent{
				Gen:             g,
				BirthStep:       step,
				BirthFrac:       float64(size) / float64(st.n),
				BirthBias:       st.genBias(g),
				EstablishedStep: -1,
			})
			idx = len(res.Generations) - 1
		}
		ev := &res.Generations[idx]
		if ev.EstablishedStep == -1 && float64(size) >= gamma*float64(st.n) {
			ev.EstablishedStep = step
			ev.EstablishedBias = st.genBias(g)
		}
	}
}

func log2f(x float64) float64 { return math.Log2(x) }
