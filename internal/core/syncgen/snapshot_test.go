package syncgen

import (
	"reflect"
	"testing"

	"plurality/internal/snap"
	"plurality/internal/topo"
)

// TestCheckpointRoundtrip pins the synchronous engine's checkpoint
// guarantee: run-to-end equals run-half, capture, restore, run-to-end.
func TestCheckpointRoundtrip(t *testing.T) {
	base := Config{N: 500, K: 4, Alpha: 2, Seed: 13}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	var blob []byte
	ckpt := base
	ckpt.Ckpt = &snap.Checkpoint{
		At:   float64(plain.Steps) / 2,
		Halt: true,
		Sink: func(state []byte, at float64, _ uint64) {
			blob = append([]byte(nil), state...)
			if at < float64(plain.Steps)/2 {
				t.Errorf("capture at step %v, want >= %v", at, float64(plain.Steps)/2)
			}
		},
	}
	halted, err := Run(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if blob == nil {
		t.Fatal("no snapshot captured")
	}
	if halted.Steps >= plain.Steps {
		t.Fatalf("halted run executed %d steps, want < %d", halted.Steps, plain.Steps)
	}

	resumed := base
	resumed.Ckpt = &snap.Checkpoint{Restore: blob}
	res, err := Run(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, plain) {
		t.Errorf("resumed result differs from uninterrupted run:\nresumed: %+v\nplain:   %+v", res, plain)
	}
}

// TestCheckpointTheoreticalSchedule exercises the schedule-position
// bookkeeping (nextTheoretical) across a restore.
func TestCheckpointTheoreticalSchedule(t *testing.T) {
	base := Config{N: 400, K: 3, Alpha: 2, Seed: 21, Schedule: ScheduleTheoretical}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	var blob []byte
	ckpt := base
	ckpt.Ckpt = &snap.Checkpoint{
		At:   float64(plain.Steps) / 3,
		Halt: true,
		Sink: func(state []byte, _ float64, _ uint64) { blob = append([]byte(nil), state...) },
	}
	if _, err := Run(ckpt); err != nil {
		t.Fatal(err)
	}
	if blob == nil {
		t.Fatal("no snapshot captured")
	}
	resumed := base
	resumed.Ckpt = &snap.Checkpoint{Restore: blob}
	res, err := Run(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, plain) {
		t.Error("resumed theoretical-schedule run differs from uninterrupted run")
	}
}

// TestCheckpointScratchIndependence pins that the batch-sampling scratch
// buffers are pure workspace, not run state: a snapshot captured mid-run
// between step batches resumes bit-identically no matter which Scratch the
// resuming run is handed — a fresh one, a shared per-worker one that other
// replications have already dirtied, or none at all. This is the invariant
// that lets harness.RunBatch thread one Scratch per worker without
// serializing it into checkpoint blobs.
func TestCheckpointScratchIndependence(t *testing.T) {
	shared := &topo.Scratch{}
	base := Config{N: 500, K: 4, Alpha: 2, Seed: 99, Scratch: shared}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	var blob []byte
	ckpt := base
	ckpt.Ckpt = &snap.Checkpoint{
		At:   float64(plain.Steps) / 2,
		Halt: true,
		Sink: func(state []byte, _ float64, _ uint64) { blob = append([]byte(nil), state...) },
	}
	if _, err := Run(ckpt); err != nil {
		t.Fatal(err)
	}
	if blob == nil {
		t.Fatal("no snapshot captured")
	}

	// Dirty the shared scratch the way a sibling replication on the same
	// worker would, then resume with it, with a fresh one, and with none.
	vs, out := shared.Buffers(4 * stepChunk)
	for i := range vs {
		vs[i], out[i] = int32(i), int32(^i)
	}
	for name, sc := range map[string]*topo.Scratch{
		"dirty-shared": shared, "fresh": new(topo.Scratch), "nil": nil,
	} {
		resumed := base
		resumed.Scratch = sc
		resumed.Ckpt = &snap.Checkpoint{Restore: blob}
		res, err := Run(resumed)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(res, plain) {
			t.Errorf("%s: resumed result differs from uninterrupted run", name)
		}
	}
}
