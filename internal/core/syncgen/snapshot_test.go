package syncgen

import (
	"reflect"
	"testing"

	"plurality/internal/snap"
)

// TestCheckpointRoundtrip pins the synchronous engine's checkpoint
// guarantee: run-to-end equals run-half, capture, restore, run-to-end.
func TestCheckpointRoundtrip(t *testing.T) {
	base := Config{N: 500, K: 4, Alpha: 2, Seed: 13}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	var blob []byte
	ckpt := base
	ckpt.Ckpt = &snap.Checkpoint{
		At:   float64(plain.Steps) / 2,
		Halt: true,
		Sink: func(state []byte, at float64, _ uint64) {
			blob = append([]byte(nil), state...)
			if at < float64(plain.Steps)/2 {
				t.Errorf("capture at step %v, want >= %v", at, float64(plain.Steps)/2)
			}
		},
	}
	halted, err := Run(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if blob == nil {
		t.Fatal("no snapshot captured")
	}
	if halted.Steps >= plain.Steps {
		t.Fatalf("halted run executed %d steps, want < %d", halted.Steps, plain.Steps)
	}

	resumed := base
	resumed.Ckpt = &snap.Checkpoint{Restore: blob}
	res, err := Run(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, plain) {
		t.Errorf("resumed result differs from uninterrupted run:\nresumed: %+v\nplain:   %+v", res, plain)
	}
}

// TestCheckpointTheoreticalSchedule exercises the schedule-position
// bookkeeping (nextTheoretical) across a restore.
func TestCheckpointTheoreticalSchedule(t *testing.T) {
	base := Config{N: 400, K: 3, Alpha: 2, Seed: 21, Schedule: ScheduleTheoretical}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	var blob []byte
	ckpt := base
	ckpt.Ckpt = &snap.Checkpoint{
		At:   float64(plain.Steps) / 3,
		Halt: true,
		Sink: func(state []byte, _ float64, _ uint64) { blob = append([]byte(nil), state...) },
	}
	if _, err := Run(ckpt); err != nil {
		t.Fatal(err)
	}
	if blob == nil {
		t.Fatal("no snapshot captured")
	}
	resumed := base
	resumed.Ckpt = &snap.Checkpoint{Restore: blob}
	res, err := Run(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, plain) {
		t.Error("resumed theoretical-schedule run differs from uninterrupted run")
	}
}
