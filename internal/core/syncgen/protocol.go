package syncgen

import (
	"context"
	"errors"
	"fmt"

	"plurality/internal/adversary"
	"plurality/internal/metrics"
	"plurality/internal/opinion"
	"plurality/internal/snap"
	"plurality/internal/topo"
	"plurality/internal/xrand"
)

// Config parametrizes one synchronous run. N and K are required; every
// other field has a documented default applied by Run.
type Config struct {
	// N is the number of nodes (>= 2).
	N int
	// K is the number of opinions (>= 1, at most 2^24: the packed node
	// word keeps the color in its low 24 bits). Above 512 opinions the
	// engine switches to sparse per-generation tallies, which keep k up to
	// about n^(1/3) practical.
	K int
	// Alpha is the initial multiplicative bias used when Assignment is nil;
	// the assignment is then opinion.PlantedBias(N, K, Alpha). Ignored when
	// Assignment is set.
	Alpha float64
	// Assignment optionally fixes the initial opinions (length N). Run does
	// not mutate it.
	Assignment []opinion.Opinion
	// Gamma is the generation-density threshold γ ∈ (0, 1); default 0.5,
	// the value §2.2 reports to work well empirically.
	Gamma float64
	// Schedule picks the two-choices trigger; default ScheduleAdaptive.
	Schedule ScheduleKind
	// GStar caps the number of generations; default GenerationBudget(N, α̂)
	// + 2, where α̂ is the measured initial bias. The two extra generations
	// are the Lemma 11 tail: at laptop-scale n the generation that first
	// pushes the bias past n is born with a few dissenting stragglers with
	// noticeable probability, and only further squarings remove them.
	// At most 255 (the packed node word keeps the generation in its high
	// byte); the default budget is O(log log n) and never comes close.
	GStar int
	// MaxSteps aborts a run that fails to converge; default
	// 64·(t_{G*} + PropagationTail).
	MaxSteps int
	// Seed drives all randomness of the run.
	Seed uint64
	// RecordEvery sets the snapshot interval in steps; default 1.
	RecordEvery int
	// Topo is the interaction graph partners are sampled from; nil means
	// the complete graph on N nodes (the paper's model). Its size must
	// equal N.
	Topo topo.Sampler
	// Eps defines ε-convergence for the reported outcome; default 1/log² n.
	Eps float64
	// Ctx cancels or bounds the run; checked once per synchronous step.
	// nil means never cancelled.
	Ctx context.Context
	// Observe, when non-nil, receives every recorded snapshot as it
	// happens.
	Observe func(metrics.Point)
	// DiscardTrajectory leaves Result.Trajectory empty, keeping O(1)
	// recording memory; the Outcome is evaluated incrementally instead.
	DiscardTrajectory bool
	// Adv configures the shared adversary layer (crash/churn, drop,
	// Byzantine lying; see internal/adversary). The zero value disables it.
	// The delay kind is rejected: a round-based engine has no message
	// latency to stretch. Crash times and churn gaps are measured in rounds.
	Adv adversary.Config
	// Ckpt requests a state capture at the first completed step >= Ckpt.At
	// and/or resumes from one; nil disables checkpointing. See
	// snap.Checkpoint for the semantics shared by every engine.
	Ckpt *snap.Checkpoint
	// Scratch optionally supplies reusable batch-sampling buffers; nil
	// allocates run-local ones. The public batch layer passes one per
	// worker so replications sharing a worker share buffers.
	Scratch *topo.Scratch
}

// GenEvent records the birth and establishment of one generation, the raw
// material of the bias-squaring experiment (E8) and the growth experiment
// (E9).
type GenEvent struct {
	// Gen is the generation index (>= 1).
	Gen int
	// BirthStep is the first step at which the generation was non-empty.
	BirthStep int
	// BirthFrac is its node fraction right after birth.
	BirthFrac float64
	// BirthBias is the color bias inside the generation right after birth.
	BirthBias float64
	// EstablishedStep is the first step at which the generation held at
	// least a γ fraction of nodes (-1 if never).
	EstablishedStep int
	// EstablishedBias is the in-generation bias at that step (0 if never).
	EstablishedBias float64
}

// Result captures everything the experiments need from one run.
type Result struct {
	// Outcome summarizes correctness and hitting times (times are steps).
	Outcome metrics.Outcome
	// Trajectory holds the recorded snapshots.
	Trajectory metrics.Trajectory
	// Steps is the number of synchronous steps executed.
	Steps int
	// TwoChoicesSteps lists the steps at which two-choices was enabled.
	TwoChoicesSteps []int
	// Generations holds one event record per born generation.
	Generations []GenEvent
	// FinalCounts are the opinion counts at termination.
	FinalCounts opinion.Counts
	// InitialPlurality is the opinion that was initially dominant.
	InitialPlurality opinion.Opinion
	// AdvCounters tallies the adversary's actions (zero for honest runs).
	AdvCounters adversary.Counters
}

// Run executes Algorithm 1 under cfg and returns the run record. It returns
// an error for invalid configurations; stochastic failure to converge is not
// an error but reported through the Outcome.
func Run(cfg Config) (*Result, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("syncgen: need N >= 2, got %d", cfg.N)
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("syncgen: need K >= 1, got %d", cfg.K)
	}
	if cfg.K > maxPackedOpinions {
		return nil, fmt.Errorf("syncgen: K %d exceeds %d (the packed node word holds the color in 24 bits)", cfg.K, maxPackedOpinions)
	}
	if cfg.Assignment != nil && len(cfg.Assignment) != cfg.N {
		return nil, fmt.Errorf("syncgen: assignment length %d != N %d", len(cfg.Assignment), cfg.N)
	}
	if cfg.Gamma == 0 {
		cfg.Gamma = 0.5
	}
	if cfg.Gamma <= 0 || cfg.Gamma >= 1 {
		return nil, fmt.Errorf("syncgen: gamma %v outside (0,1)", cfg.Gamma)
	}
	if cfg.Schedule == 0 {
		cfg.Schedule = ScheduleAdaptive
	}
	if cfg.Schedule != ScheduleTheoretical && cfg.Schedule != ScheduleAdaptive {
		return nil, errors.New("syncgen: unknown schedule kind")
	}
	if cfg.RecordEvery <= 0 {
		cfg.RecordEvery = 1
	}
	tp, err := topo.OrComplete(cfg.Topo, cfg.N)
	if err != nil {
		return nil, fmt.Errorf("syncgen: %w", err)
	}
	cfg.Topo = tp

	rng := xrand.New(cfg.Seed)
	cols := make([]opinion.Opinion, cfg.N)
	if cfg.Assignment != nil {
		copy(cols, cfg.Assignment)
	} else {
		alpha := cfg.Alpha
		if alpha < 1 {
			alpha = 1
		}
		cols = opinion.PlantedBias(cfg.N, cfg.K, alpha, rng.SplitNamed("assignment"))
	}
	initCounts := opinion.CountOf(cols, cfg.K)
	plurality, _ := initCounts.TopTwo()
	alphaHat := initCounts.Bias()

	gStar := cfg.GStar
	if gStar <= 0 {
		gStar = GenerationBudget(cfg.N, alphaHat) + 2
	}
	if gStar > maxPackedGen {
		return nil, fmt.Errorf("syncgen: G* %d exceeds %d (the packed node word holds the generation in 8 bits; the default budget O(log log n) never comes close)", gStar, maxPackedGen)
	}
	var schedule []int
	if cfg.Schedule == ScheduleTheoretical {
		schedule = TwoChoicesTimes(alphaHat, cfg.K, gStar, cfg.Gamma)
	}
	maxSteps := cfg.MaxSteps
	if maxSteps <= 0 {
		horizon := PropagationTail(cfg.N, cfg.Gamma)
		if cfg.Schedule == ScheduleTheoretical && len(schedule) > 0 {
			horizon += schedule[len(schedule)-1]
		} else {
			for i := 1; i <= gStar; i++ {
				horizon += int(LifeCycleLength(alphaHat, cfg.K, cfg.Gamma, i)) + 1
			}
		}
		maxSteps = 64 * (horizon + 1)
	}
	eps := cfg.Eps
	if eps <= 0 {
		l2 := log2f(float64(cfg.N))
		eps = 1 / (l2 * l2)
	}

	st := newState(cols, cfg.K, gStar, cfg.Topo, cfg.Scratch)
	if cfg.Adv.Kind != adversary.None {
		if cfg.Adv.Kind == adversary.Delay {
			return nil, errors.New("syncgen: the delay adversary needs message latency; round-based engines reject it")
		}
		cfg.Adv.N = cfg.N
		adv, err := adversary.New(cfg.Adv, xrand.New(cfg.Adv.Seed))
		if err != nil {
			return nil, fmt.Errorf("syncgen: %w", err)
		}
		if _, second := initCounts.TopTwo(); second >= 0 {
			adv.SetLieTarget(int32(second))
		}
		st.attachAdversary(adv)
	}
	bs := topo.Batch(cfg.Topo)
	res := &Result{InitialPlurality: opinion.Opinion(plurality)}
	rec := metrics.NewRecorder(eps, cfg.DiscardTrajectory, cfg.Observe)
	record := func(step int) {
		// The tally's global color totals equal opinion.CountOf on the
		// configuration, so the recorded Point is bit-identical to the
		// historical per-snapshot recount.
		p := metrics.SnapshotCounts(float64(step), st.tally.counts(), opinion.Opinion(plurality))
		p.MaxGen = st.tally.maxGen
		p.MaxGenFrac = float64(st.tally.genSize[st.tally.maxGen]) / float64(cfg.N)
		rec.Append(p)
	}
	stepRNG := rng.SplitNamed("steps")
	nextTheoretical := 0
	startStep := 1
	if ck := cfg.Ckpt; ck.Restoring() {
		step, nt, err := st.restore(ck.Restore, stepRNG, rec, res, ck.Perturb)
		if err != nil {
			return nil, err
		}
		nextTheoretical = nt
		startStep = step + 1
	} else {
		record(0)
	}
	captured := false
	for step := startStep; step <= maxSteps; step++ {
		if cfg.Ctx != nil {
			select {
			case <-cfg.Ctx.Done():
				return nil, cfg.Ctx.Err()
			default:
			}
		}
		twoChoices := false
		switch cfg.Schedule {
		case ScheduleTheoretical:
			if nextTheoretical < len(schedule) && step == schedule[nextTheoretical] {
				twoChoices = true
				nextTheoretical++
			}
		case ScheduleAdaptive:
			if st.tally.maxGen < gStar &&
				float64(st.tally.genSize[st.tally.maxGen]) >= cfg.Gamma*float64(cfg.N) {
				twoChoices = true
			}
		}
		if twoChoices {
			res.TwoChoicesSteps = append(res.TwoChoicesSteps, step)
		}
		var done bool
		if st.adv != nil {
			st.applyCrash(step)
			st.stepAdversarial(stepRNG, bs, twoChoices)
			st.noteGenerations(step, cfg.Gamma, res)
			done = st.monochromaticAlive()
		} else {
			st.step(stepRNG, bs, twoChoices)
			st.noteGenerations(step, cfg.Gamma, res)
			done = st.monochromatic()
		}
		if step%cfg.RecordEvery == 0 || done {
			record(step)
		}
		res.Steps = step
		if ck := cfg.Ckpt; ck.Capturing() && !captured && !done && float64(step) >= ck.At {
			ck.Sink(st.capture(step, nextTheoretical, stepRNG, rec, res), float64(step), 0)
			captured = true
			if ck.Halt {
				break
			}
		}
		if done {
			break
		}
	}

	// The tally's totals are what CountOf would produce on the final
	// configuration (copied: the state is about to go out of scope, but the
	// Result outlives it).
	res.FinalCounts = append(opinion.Counts(nil), st.tally.counts()...)
	res.Trajectory = rec.Trajectory()
	res.Outcome = rec.Outcome(res.FinalCounts, opinion.Opinion(plurality))
	if st.adv != nil {
		res.AdvCounters = st.adv.Counters
		if st.adv.Kind() == adversary.Crash && !res.Outcome.FullConsensus &&
			st.aliveN > 0 && st.monochromaticAlive() {
			// Survivor consensus: crashed nodes hold stale colors, so the
			// count-based outcome cannot see it; patch it here (mirroring
			// the asynchronous engines' aliveN-based detection).
			for v := 0; v < st.n; v++ {
				if !st.crashed[v] {
					res.Outcome.Winner = st.colOf(v)
					break
				}
			}
			res.Outcome.FullConsensus = true
			res.Outcome.ConsensusTime = float64(res.Steps)
			res.Outcome.PluralityWon = res.Outcome.Winner == opinion.Opinion(plurality)
		}
	}
	return res, nil
}
