// Package syncgen implements the paper's synchronous generation-based
// plurality-consensus protocol (Algorithm 1, §2).
//
// Nodes hold a color and a generation. At a predefined set of time steps
// {t_i} a node may perform a "two-choices" step — adopting the common color
// of two sampled nodes of the current top generation i and promoting itself
// to generation i+1 — and at every other step it performs a "propagation"
// step, adopting the state of a sampled node of strictly higher generation.
// Each new generation squares the bias between the top two colors (Lemma 4),
// so after G* = O(log log_α n) generations the top generation is
// monochromatic whp., and the last generation floods the system.
package syncgen

import (
	"math"

	"plurality/internal/xrand"
)

// ScheduleKind selects how two-choices steps are triggered.
type ScheduleKind int

const (
	// ScheduleTheoretical uses the paper's predefined time steps
	// t_1 = 1, t_{i+1} = t_i + X_i with the closed-form life-cycle lengths
	// X_i of §2.2. This is the variant the analysis covers.
	ScheduleTheoretical ScheduleKind = iota + 1
	// ScheduleAdaptive triggers a two-choices step as soon as the current
	// top generation holds at least a γ fraction of all nodes — the
	// condition the asynchronous leader of §3 measures by counting signals.
	// It is the robust practical variant for small n.
	ScheduleAdaptive
)

// String names the schedule for experiment output.
func (s ScheduleKind) String() string {
	switch s {
	case ScheduleTheoretical:
		return "theoretical"
	case ScheduleAdaptive:
		return "adaptive"
	default:
		return "unknown"
	}
}

// LifeCycleLength returns the paper's X_i: the number of synchronous steps
// generation i needs, after its birth at t_i, to populate a γ fraction of
// the nodes whp. (§2.2):
//
//	X_i = (2·ln(α^{2^{i-1}}+k-1) − ln(α^{2^i}+k-1) − ln γ) / ln(2−γ) + 2.
//
// The α powers are evaluated in log-domain, so the formula stays finite even
// when α^{2^i} overflows float64. The index i is 1-based: X_i describes
// generation i, whose parent generation i−1 has (idealized) bias α^{2^{i-1}}.
func LifeCycleLength(alpha float64, k int, gamma float64, i int) float64 {
	if alpha <= 1 {
		alpha = 1 + 1e-9 // degenerate bias: fall back to the largest cycle
	}
	lnAlpha := math.Log(alpha)
	lnKm1 := math.Inf(-1)
	if k > 1 {
		lnKm1 = math.Log(float64(k - 1))
	}
	pow := func(e int) float64 { return math.Exp2(float64(e)) * lnAlpha }
	lnParent := xrand.LogAddExp(pow(i-1), lnKm1) // ln(α^{2^{i-1}} + k−1)
	lnChild := xrand.LogAddExp(pow(i), lnKm1)    // ln(α^{2^i} + k−1)
	return (2*lnParent-lnChild-math.Log(gamma))/math.Log(2-gamma) + 2
}

// GenerationBudget returns the paper's G*: the number of generations after
// which the top generation is monochromatic whp., ⌈log₂ log_α n⌉ (at least
// 1). For α so large that a single squaring suffices it returns 1.
func GenerationBudget(n int, alpha float64) int {
	if n < 2 {
		return 1
	}
	if alpha <= 1 {
		// No usable bias: fall back to the k=2, minimal-bias budget; the
		// run will be capped by MaxSteps anyway.
		alpha = 1 + 1/math.Sqrt(float64(n))
	}
	g := math.Log2(math.Log(float64(n)) / math.Log(alpha))
	if g < 1 {
		return 1
	}
	return int(math.Ceil(g))
}

// TwoChoicesTimes returns the theoretical schedule {t_i} for i = 1..gStar:
// the synchronous steps at which two-choices promotions are allowed.
// t_1 = 1 (Example 3 of the paper) and t_{i+1} = t_i + ⌈X_i⌉.
func TwoChoicesTimes(alpha float64, k, gStar int, gamma float64) []int {
	times := make([]int, 0, gStar)
	t := 1
	for i := 1; i <= gStar; i++ {
		times = append(times, t)
		t += int(math.Ceil(LifeCycleLength(alpha, k, gamma, i)))
	}
	return times
}

// PropagationTail returns the paper's A = log γ / log(3/2) + log₂ log₂ n
// bound (Lemma 12) on the extra steps needed for the final generation to
// flood all nodes, rounded up and clamped to at least 1.
func PropagationTail(n int, gamma float64) int {
	if n < 4 {
		return 1
	}
	// |log γ / log 3/2| counts the 3/2-growth steps from γ to 1/2 and
	// log₂ log₂ n the squaring steps of the laggard fraction (Lemma 12).
	v := math.Abs(math.Log(gamma)/math.Log(1.5)) + math.Log2(math.Log2(float64(n)))
	if v < 1 {
		return 1
	}
	return int(math.Ceil(v))
}
