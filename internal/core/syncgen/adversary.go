package syncgen

import (
	"plurality/internal/adversary"
	"plurality/internal/topo"
	"plurality/internal/xrand"
)

// This file is the synchronous engine's adversary support. The honest step
// loop (state.step) is byte-untouched: adversarial runs execute the separate
// stepAdversarial variant below, so the honest RNG draw order and branch
// structure never change. Crash state (crashed flags, alive count) belongs
// to the engine; the adversary only decides which node toggles when.

// attachAdversary wires a constructed adversary into the state.
func (st *state) attachAdversary(adv *adversary.State) {
	st.adv = adv
	st.crashed = make([]bool, st.n)
	st.aliveN = st.n
}

// applyCrash runs every crash action due at or before the given step: the
// one-shot fail-stop of the pool once step reaches At, or all pending churn
// toggles. Rounds are the synchronous engine's clock, so At/Exp(Rate) gaps
// are measured in rounds here.
func (st *state) applyCrash(step int) {
	adv := st.adv
	if adv == nil || adv.Kind() != adversary.Crash {
		return
	}
	if !adv.Churning() {
		if c := adv.Counters; c.Crashes == 0 && float64(step) >= adv.NextCrashAt() {
			for _, v := range adv.Victims() {
				st.crashNode(v)
			}
		}
		return
	}
	for {
		at := adv.NextCrashAt()
		if at < 0 || at > float64(step) {
			return
		}
		v := adv.NextVictim()
		if st.crashed[v] {
			st.crashed[v] = false
			st.aliveN++
			adv.NoteRecovery()
		} else {
			st.crashNode(v)
		}
	}
}

func (st *state) crashNode(v int) {
	if st.crashed[v] {
		return
	}
	st.crashed[v] = true
	st.aliveN--
	st.adv.NoteCrash()
}

// stepAdversarial is state.step with the adversary consulted at the apply
// stage: crashed nodes keep their state and are unreadable when sampled, the
// drop adversary loses sampled replies, and Byzantine liars report the lie
// target. The partner batch draws are identical to the honest loop, and —
// unlike the honest loop's cache-blocked traversal — the apply stage walks
// nodes in id order: the adversary's own generator carries every extra
// decision, and those draws happen in processing order, so reordering the
// walk would reorder the adversary's stream and break its golden digests.
func (st *state) stepAdversarial(r *xrand.RNG, tp topo.BatchSampler, twoChoices bool) {
	st.drawPartners(r, tp)
	n := st.n
	adv := st.adv
	gCap := uint32(st.gCap)
	for v := 0; v < n; v++ {
		w := st.packed[v]
		st.next[v] = w
		if st.crashed[v] {
			continue
		}
		a, b := int(st.partners[2*v]), int(st.partners[2*v+1])
		aUp := !st.crashed[a] && !adv.DropMessage()
		bUp := !st.crashed[b] && !adv.DropMessage()
		wa, wb := st.packed[a], st.packed[b]
		ga, gb := wa>>genShift, wb>>genShift
		ca := uint32(adv.Lie(a, int32(wa&colMask)))
		cb := uint32(adv.Lie(b, int32(wb&colMask)))
		// wlog the a-side is the best available sample: swap when a is
		// unreadable or b is readable with the higher generation.
		if !aUp || (bUp && ga < gb) {
			aUp, bUp = bUp, aUp
			ga, gb = gb, ga
			ca, cb = cb, ca
		}
		if !aUp {
			continue // no readable sample: keep state
		}
		nw := w
		switch {
		case twoChoices && bUp &&
			ga == gb && w>>genShift <= ga && ga < gCap && ca == cb:
			nw = (ga+1)<<genShift | ca
		case ga > w>>genShift:
			nw = ga<<genShift | ca
		}
		st.next[v] = nw
		if nw != w {
			st.tally.moveWord(w, nw)
		}
	}
	st.packed, st.next = st.next, st.packed
}

// monochromaticAlive reports whether all non-crashed nodes share one color;
// with a crash adversary consensus is evaluated over the survivors, exactly
// like the asynchronous engines.
func (st *state) monochromaticAlive() bool {
	col := int64(-1)
	for v := 0; v < st.n; v++ {
		if st.crashed[v] {
			continue
		}
		c := int64(st.packed[v] & colMask)
		if col < 0 {
			col = c
		} else if c != col {
			return false
		}
	}
	return true
}
