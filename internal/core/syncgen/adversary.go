package syncgen

import (
	"plurality/internal/adversary"
	"plurality/internal/opinion"
	"plurality/internal/topo"
	"plurality/internal/xrand"
)

// This file is the synchronous engine's adversary support. The honest step
// loop (state.step) is byte-untouched: adversarial runs execute the separate
// stepAdversarial variant below, so the honest RNG draw order and branch
// structure never change. Crash state (crashed flags, alive count) belongs
// to the engine; the adversary only decides which node toggles when.

// attachAdversary wires a constructed adversary into the state.
func (st *state) attachAdversary(adv *adversary.State) {
	st.adv = adv
	st.crashed = make([]bool, st.n)
	st.aliveN = st.n
}

// applyCrash runs every crash action due at or before the given step: the
// one-shot fail-stop of the pool once step reaches At, or all pending churn
// toggles. Rounds are the synchronous engine's clock, so At/Exp(Rate) gaps
// are measured in rounds here.
func (st *state) applyCrash(step int) {
	adv := st.adv
	if adv == nil || adv.Kind() != adversary.Crash {
		return
	}
	if !adv.Churning() {
		if c := adv.Counters; c.Crashes == 0 && float64(step) >= adv.NextCrashAt() {
			for _, v := range adv.Victims() {
				st.crashNode(v)
			}
		}
		return
	}
	for {
		at := adv.NextCrashAt()
		if at < 0 || at > float64(step) {
			return
		}
		v := adv.NextVictim()
		if st.crashed[v] {
			st.crashed[v] = false
			st.aliveN++
			adv.NoteRecovery()
		} else {
			st.crashNode(v)
		}
	}
}

func (st *state) crashNode(v int) {
	if st.crashed[v] {
		return
	}
	st.crashed[v] = true
	st.aliveN--
	st.adv.NoteCrash()
}

// stepAdversarial is state.step with the adversary consulted at the apply
// stage: crashed nodes keep their state and are unreadable when sampled, the
// drop adversary loses sampled replies, and Byzantine liars report the lie
// target. The partner batch draws are identical to the honest loop — the
// adversary's own generator carries every extra decision.
func (st *state) stepAdversarial(r *xrand.RNG, tp topo.BatchSampler, twoChoices bool) {
	n := st.n
	adv := st.adv
	for base := 0; base < n; base += stepChunk {
		m := stepChunk
		if base+m > n {
			m = n - base
		}
		vs, out := st.scratch.Buffers(2 * m)
		for i := 0; i < m; i++ {
			v := int32(base + i)
			vs[2*i] = v
			vs[2*i+1] = v
		}
		tp.SampleNeighbors(r, vs, out)
		for i := 0; i < m; i++ {
			v := base + i
			col, gen := st.cols[v], st.gens[v]
			st.next[v] = col
			st.nextG[v] = gen
			if st.crashed[v] {
				continue
			}
			a, b := int(out[2*i]), int(out[2*i+1])
			aUp := !st.crashed[a] && !adv.DropMessage()
			bUp := !st.crashed[b] && !adv.DropMessage()
			ga, gb := st.gens[a], st.gens[b]
			ca := opinion.Opinion(adv.Lie(a, int32(st.cols[a])))
			cb := opinion.Opinion(adv.Lie(b, int32(st.cols[b])))
			// wlog the a-side is the best available sample: swap when a is
			// unreadable or b is readable with the higher generation.
			if !aUp || (bUp && ga < gb) {
				aUp, bUp = bUp, aUp
				ga, gb = gb, ga
				ca, cb = cb, ca
			}
			if !aUp {
				continue // no readable sample: keep state
			}
			switch {
			case twoChoices && bUp &&
				ga == gb && gen <= ga && int(ga) < st.gCap && ca == cb:
				gen = ga + 1
				col = ca
			case ga > gen:
				gen = ga
				col = ca
			}
			st.next[v] = col
			st.nextG[v] = gen
		}
	}
	st.cols, st.next = st.next, st.cols
	st.gens, st.nextG = st.nextG, st.gens
	for v := 0; v < n; v++ {
		oc, og := st.next[v], st.nextG[v]
		c, g := st.cols[v], st.gens[v]
		if c != oc || g != og {
			st.genCol[og][oc]--
			st.genSize[og]--
			st.genCol[g][c]++
			st.genSize[g]++
			if int(g) > st.maxGen {
				st.maxGen = int(g)
			}
		}
	}
}

// monochromaticAlive reports whether all non-crashed nodes share one color;
// with a crash adversary consensus is evaluated over the survivors, exactly
// like the asynchronous engines.
func (st *state) monochromaticAlive() bool {
	var col opinion.Opinion = -1
	for v := 0; v < st.n; v++ {
		if st.crashed[v] {
			continue
		}
		if col < 0 {
			col = st.cols[v]
		} else if st.cols[v] != col {
			return false
		}
	}
	return true
}
