package syncgen

import (
	"math"
	"testing"

	"plurality/internal/opinion"
	"plurality/internal/topo"
	"plurality/internal/xrand"
)

func TestRunValidation(t *testing.T) {
	cases := []Config{
		{N: 1, K: 2},
		{N: 10, K: 0},
		{N: 10, K: 2, Gamma: 1.5},
		{N: 10, K: 2, Assignment: make([]opinion.Opinion, 3)},
		{N: 10, K: 2, Schedule: ScheduleKind(99)},
	}
	for i, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestConvergesTwoOpinionsAdaptive(t *testing.T) {
	res, err := Run(Config{N: 2000, K: 2, Alpha: 1.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outcome.FullConsensus {
		t.Fatalf("no consensus after %d steps: %v", res.Steps, res.Outcome)
	}
	if !res.Outcome.PluralityWon {
		t.Errorf("plurality lost: %v", res.Outcome)
	}
}

func TestConvergesManyOpinions(t *testing.T) {
	res, err := Run(Config{N: 5000, K: 10, Alpha: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outcome.FullConsensus || !res.Outcome.PluralityWon {
		t.Fatalf("outcome %v after %d steps", res.Outcome, res.Steps)
	}
}

func TestConvergesTheoreticalSchedule(t *testing.T) {
	res, err := Run(Config{N: 5000, K: 4, Alpha: 2, Seed: 3, Schedule: ScheduleTheoretical})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outcome.FullConsensus {
		t.Fatalf("theoretical schedule failed to converge in %d steps", res.Steps)
	}
	if len(res.TwoChoicesSteps) == 0 {
		t.Error("no two-choices steps recorded")
	}
	if res.TwoChoicesSteps[0] != 1 {
		t.Errorf("first two-choices step %d, want t_1 = 1", res.TwoChoicesSteps[0])
	}
}

func TestDeterministicReplay(t *testing.T) {
	cfg := Config{N: 1000, K: 3, Alpha: 2, Seed: 42}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Steps != b.Steps || a.Outcome.Winner != b.Outcome.Winner {
		t.Fatalf("replay diverged: %d/%d steps, winners %d/%d",
			a.Steps, b.Steps, a.Outcome.Winner, b.Outcome.Winner)
	}
	if len(a.Trajectory) != len(b.Trajectory) {
		t.Fatal("replay trajectories differ in length")
	}
	for i := range a.Trajectory {
		if a.Trajectory[i] != b.Trajectory[i] {
			t.Fatalf("replay trajectories diverge at %d", i)
		}
	}
}

func TestFixedAssignmentNotMutated(t *testing.T) {
	r := xrand.New(7)
	assign := opinion.PlantedBias(500, 2, 2, r)
	orig := make([]opinion.Opinion, len(assign))
	copy(orig, assign)
	if _, err := Run(Config{N: 500, K: 2, Assignment: assign, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	for i := range assign {
		if assign[i] != orig[i] {
			t.Fatal("Run mutated the caller's assignment")
		}
	}
}

func TestMonochromaticInputStaysPut(t *testing.T) {
	assign := make([]opinion.Opinion, 100) // all opinion 0
	res, err := Run(Config{N: 100, K: 2, Assignment: assign, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outcome.FullConsensus || res.Outcome.Winner != 0 {
		t.Fatalf("monochromatic input broke: %v", res.Outcome)
	}
	if res.Steps > 1 {
		t.Errorf("monochromatic input took %d steps", res.Steps)
	}
}

func TestGenerationsNeverExceedBudget(t *testing.T) {
	res, err := Run(Config{N: 3000, K: 5, Alpha: 1.8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	gStar := GenerationBudget(3000, res.Trajectory[0].Bias) + 2 // default budget
	for _, p := range res.Trajectory {
		if p.MaxGen > gStar {
			t.Fatalf("generation %d exceeds budget %d", p.MaxGen, gStar)
		}
	}
}

func TestGenerationEventsOrdered(t *testing.T) {
	res, err := Run(Config{N: 5000, K: 4, Alpha: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Generations) == 0 {
		t.Fatal("no generation events recorded")
	}
	for i, ev := range res.Generations {
		if ev.Gen != i+1 {
			t.Errorf("generation event %d has Gen=%d", i, ev.Gen)
		}
		if ev.EstablishedStep >= 0 && ev.EstablishedStep < ev.BirthStep {
			t.Errorf("gen %d established before birth", ev.Gen)
		}
		if i > 0 && ev.BirthStep < res.Generations[i-1].BirthStep {
			t.Errorf("gen %d born before gen %d", ev.Gen, ev.Gen-1)
		}
	}
}

func TestBiasSquaringAcrossGenerations(t *testing.T) {
	// Lemma 4: the bias at the birth of generation i is close to the square
	// of the parent generation's bias. With alpha=2 and plenty of nodes the
	// relative error should be modest for the first generation.
	res, err := Run(Config{N: 200000, K: 2, Alpha: 2, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Generations) == 0 {
		t.Fatal("no generations")
	}
	first := res.Generations[0]
	// Parent bias is the initial assignment bias (generation 0).
	alpha0 := res.Trajectory[0].Bias
	want := alpha0 * alpha0
	if first.BirthBias < want*0.8 || first.BirthBias > want*1.25 {
		t.Errorf("generation 1 birth bias %v, want ~%v", first.BirthBias, want)
	}
}

func TestPluralitySuccessRate(t *testing.T) {
	// Theorem 1 is a whp. statement; at moderate n with comfortable bias
	// the success rate across seeds should be high.
	wins := 0
	const trials = 20
	for seed := 0; seed < trials; seed++ {
		res, err := Run(Config{N: 2000, K: 5, Alpha: 2, Seed: uint64(seed)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome.PluralityWon && res.Outcome.FullConsensus {
			wins++
		}
	}
	if wins < trials-2 {
		t.Errorf("plurality won only %d/%d runs", wins, trials)
	}
}

func TestUniformInputStillConverges(t *testing.T) {
	// Failure injection: α ≈ 1 (no planted bias). Consensus on *some*
	// opinion should still be reached (correctness of plurality cannot be
	// demanded); the run must terminate before MaxSteps on most seeds.
	r := xrand.New(100)
	assign := opinion.Uniform(2000, 2, r)
	res, err := Run(Config{N: 2000, K: 2, Assignment: assign, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outcome.FullConsensus {
		t.Logf("uniform input did not converge in %d steps (acceptable, whp-only)", res.Steps)
	}
}

func TestLifeCycleLengthFiniteForHugeBias(t *testing.T) {
	// α^{2^i} would overflow float64 quickly; the log-domain form must stay
	// finite and positive.
	for i := 1; i < 60; i++ {
		x := LifeCycleLength(1e6, 100, 0.5, i)
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("X_%d = %v", i, x)
		}
		if x < 0 {
			t.Fatalf("X_%d = %v < 0", i, x)
		}
	}
}

func TestLifeCycleLengthBoundedByLogK(t *testing.T) {
	// §2.2: X_i = O(log k) for all i.
	for _, k := range []int{2, 16, 256, 4096} {
		bound := 3*math.Log(float64(k))/math.Log(1.5) + 10
		for i := 1; i < 20; i++ {
			if x := LifeCycleLength(1.01, k, 0.5, i); x > bound {
				t.Errorf("X_%d(k=%d) = %v exceeds O(log k) bound %v", i, k, x, bound)
			}
		}
	}
}

func TestGenerationBudget(t *testing.T) {
	// α = 2, n = 2^16: log2 log2 n = 4.
	if got := GenerationBudget(1<<16, 2); got != 4 {
		t.Errorf("GenerationBudget(2^16, 2) = %d, want 4", got)
	}
	if got := GenerationBudget(100, 1e12); got != 1 {
		t.Errorf("huge alpha budget = %d, want 1", got)
	}
	if got := GenerationBudget(1, 2); got != 1 {
		t.Errorf("tiny n budget = %d, want 1", got)
	}
}

func TestTwoChoicesTimesMonotone(t *testing.T) {
	times := TwoChoicesTimes(1.5, 8, 6, 0.5)
	if len(times) != 6 {
		t.Fatalf("len = %d", len(times))
	}
	if times[0] != 1 {
		t.Errorf("t_1 = %d, want 1", times[0])
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			t.Fatalf("schedule not strictly increasing: %v", times)
		}
	}
}

func TestXiDecreasing(t *testing.T) {
	// As i grows the (idealized) bias explodes, so the life-cycles shrink
	// toward the O(1) floor (equations (10) and (11) of the paper).
	prev := math.Inf(1)
	for i := 1; i <= 10; i++ {
		x := LifeCycleLength(1.2, 64, 0.5, i)
		if x > prev+1e-9 {
			t.Fatalf("X_%d = %v > X_%d = %v", i, x, i-1, prev)
		}
		prev = x
	}
}

func TestPropagationTailPositive(t *testing.T) {
	for _, n := range []int{2, 10, 1000, 1 << 20} {
		if got := PropagationTail(n, 0.5); got < 1 {
			t.Errorf("PropagationTail(%d) = %d", n, got)
		}
	}
}

func TestScheduleKindString(t *testing.T) {
	if ScheduleTheoretical.String() != "theoretical" ||
		ScheduleAdaptive.String() != "adaptive" ||
		ScheduleKind(0).String() != "unknown" {
		t.Error("ScheduleKind.String broken")
	}
}

// BenchmarkStep measures the staged step pipeline (batch partner draws +
// delta tallies); CI's bench-smoke job asserts 0 B/op on it under the name
// BenchmarkSyncStep below.
func BenchmarkStep(b *testing.B) {
	r := xrand.New(1)
	cols := opinion.PlantedBias(10000, 8, 2, r)
	tp := topo.NewComplete(len(cols))
	st := newState(cols, 8, 5, tp, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.step(r, tp, i%10 == 0)
	}
}

// BenchmarkSyncStep pins the batched synchronous hot loop on every
// reference topology kind: one full n-node step per iteration, zero
// allocations after the state warms up (asserted by CI).
func BenchmarkSyncStep(b *testing.B) {
	const n = 10000 // 100x100: factorable for the torus
	mk := func(b *testing.B) map[string]topo.Sampler {
		b.Helper()
		ring, err := topo.NewRing(n, 4)
		if err != nil {
			b.Fatal(err)
		}
		torus, err := topo.NewTorus(100, 100)
		if err != nil {
			b.Fatal(err)
		}
		reg, err := topo.NewRandomRegular(n, 8, 3)
		if err != nil {
			b.Fatal(err)
		}
		return map[string]topo.Sampler{
			"complete": topo.NewComplete(n), "ring": ring,
			"torus": torus, "random-regular": reg,
		}
	}
	for kind, tp := range mk(b) {
		b.Run(kind, func(b *testing.B) {
			r := xrand.New(1)
			cols := opinion.PlantedBias(n, 8, 2, r)
			st := newState(cols, 8, 6, tp, nil)
			bs := topo.Batch(tp)
			st.step(r, bs, false) // warm the scratch buffers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.step(r, bs, i%10 == 0)
			}
		})
	}
}

func BenchmarkRunN10k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{N: 10000, K: 8, Alpha: 2, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSyncStepLargeK pins the wide-opinion-space hot loop: one full
// synchronous step at n = 100000 over k = 1024 opinions, which puts the
// tally in sparse mode (k > sparseTallyThreshold) so per-step bookkeeping
// scales with the occupied opinions, not with k. CI records its throughput
// next to the dense-mode BenchmarkSyncStep rows; the sparse rows may grow
// as generations colonize, so this benchmark asserts feasibility, not
// zero allocations.
func BenchmarkSyncStepLargeK(b *testing.B) {
	const n, k = 100000, 1024
	r := xrand.New(1)
	cols := opinion.PlantedBias(n, k, 2, r)
	tp := topo.NewComplete(n)
	st := newState(cols, k, 8, tp, nil)
	if !st.tally.sparse {
		b.Fatalf("k = %d must select the sparse tally", k)
	}
	bs := topo.Batch(tp)
	st.step(r, bs, false) // warm the scratch buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.step(r, bs, i%10 == 0)
	}
}
