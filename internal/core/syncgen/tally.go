package syncgen

import (
	"fmt"

	"plurality/internal/opinion"
	"plurality/internal/snap"
)

// This file implements the per-generation color tallies behind the packed
// sync state. The engine needs three aggregate reads per step — the size of
// each generation (the adaptive two-choices trigger), the color bias inside
// a generation (GenEvent records), and whether the whole system is
// monochromatic (termination) — and historically kept a dense genCol[g][k]
// matrix for them. Dense rows are perfect at small k but waste
// (G*+1)·k space and O(k) scan time per bias query once k approaches
// n^(1/3), so the tally goes sparse above sparseTallyThreshold colors:
// each generation then stores only its occupied (color, count) pairs, kept
// sorted by color so every query is deterministic, plus the engine keeps
// global per-color totals that make the monochromatic test O(1) in both
// modes. The mode is a pure function of k, so capture and restore always
// agree on it.

// sparseTallyThreshold is the color-count bound above which the
// per-generation tallies switch from dense k-wide rows to sorted sparse
// (color, count) pairs. 512 dense int32 rows still fit two cache lines per
// generation; beyond that the dense layout's O(G*·k) memory and O(k) bias
// scans start to dominate small-n runs, and sparse rows cost
// O(log occupied) per update instead.
const sparseTallyThreshold = 512

// tally maintains the generation/color statistics of a run incrementally:
// per-generation color counts (dense or sparse by k), per-generation sizes,
// the highest populated generation, and global per-color totals.
type tally struct {
	k, gCap int
	sparse  bool
	dense   []int32    // (gCap+1)×k row-major color counts; nil when sparse
	rows    []tallyRow // per-generation occupied colors; nil when dense
	genSize []int
	maxGen  int
	// colTot[c] counts supporters of color c across all generations and
	// colored how many colors have any: the O(1) monochromatic test. The
	// opinion.Counts type lets the recorder consume it directly.
	colTot  opinion.Counts
	colored int
	// diff stages one synchronous step's (generation, color) deltas in dense
	// mode: the step's fold loops do two branch-free adds per changed node
	// into this small array and collapse() folds it into the aggregates once
	// per step, replacing a moveWord call per node. nil in sparse mode,
	// all-zero between steps.
	diff []int32
	// Sparse-mode staging: rowDiff[g] is a k-wide scratch row allocated the
	// first time a step's fold touches generation g (diffGens lists them,
	// freeRows recycles them). Changed nodes cost two indexed adds instead
	// of two sorted-row searches; collapse() then merges each touched
	// scratch row into the sorted representation in one linear pass per
	// generation. Scratch memory is O(touched generations · k) per step and
	// transient — the sorted rows stay the canonical O(occupied) state.
	rowDiff   [][]int32
	diffGens  []int
	freeRows  [][]int32
	mergeKeys []int32
	mergeVals []int32
}

// tallyRow lists one generation's occupied colors, sorted ascending, with
// their counts. Zero-count entries are removed eagerly, so len(keys) is the
// number of colors present in the generation.
type tallyRow struct {
	keys []int32
	vals []int32
}

// newTally returns an empty tally for k colors and generations 0..gCap,
// picking the dense or sparse representation by k.
func newTally(k, gCap int) *tally {
	return newTallyMode(k, gCap, k > sparseTallyThreshold)
}

// newTallyMode is newTally with the representation forced — the test hook
// that pins sparse ≡ dense on the same run.
func newTallyMode(k, gCap int, sparse bool) *tally {
	t := &tally{
		k: k, gCap: gCap, sparse: sparse,
		genSize: make([]int, gCap+1),
		colTot:  make(opinion.Counts, k),
	}
	if sparse {
		t.rows = make([]tallyRow, gCap+1)
		t.rowDiff = make([][]int32, gCap+1)
	} else {
		t.dense = make([]int32, (gCap+1)*k)
		t.diff = make([]int32, (gCap+1)*k)
	}
	return t
}

// rebuild derives the full tally from a packed configuration vector,
// validating every word on the way (restore feeds it untrusted blobs). All
// aggregates are pure functions of the configuration, which is what lets
// snapshots carry only the packed words.
func (t *tally) rebuild(packed []uint32) error {
	for i := range t.genSize {
		t.genSize[i] = 0
	}
	for i := range t.colTot {
		t.colTot[i] = 0
	}
	if t.sparse {
		for g := range t.rows {
			t.rows[g].keys = t.rows[g].keys[:0]
			t.rows[g].vals = t.rows[g].vals[:0]
		}
		// Staged scratch rows are empty between steps; clear defensively so
		// a restore mid-construction cannot leak stale deltas.
		for _, g := range t.diffGens {
			if d := t.rowDiff[g]; d != nil {
				for i := range d {
					d[i] = 0
				}
				t.freeRows = append(t.freeRows, d)
				t.rowDiff[g] = nil
			}
		}
		t.diffGens = t.diffGens[:0]
	} else {
		for i := range t.dense {
			t.dense[i] = 0
		}
		for i := range t.diff {
			t.diff[i] = 0
		}
	}
	t.maxGen = 0
	t.colored = 0
	for v, w := range packed {
		g, c := int(w>>genShift), int(w&colMask)
		if c >= t.k {
			return fmt.Errorf("%w: node %d holds color %d outside [0, %d)", snap.ErrCorrupt, v, c, t.k)
		}
		if g > t.gCap {
			return fmt.Errorf("%w: node %d holds generation %d beyond G* %d", snap.ErrCorrupt, v, g, t.gCap)
		}
		t.inc(g, c)
		t.genSize[g]++
		if g > t.maxGen {
			t.maxGen = g
		}
		if t.colTot[c] == 0 {
			t.colored++
		}
		t.colTot[c]++
	}
	return nil
}

// moveWord folds one node's transition from packed word old to packed word
// new into every aggregate. The fold is a sum of commutative deltas, so the
// order nodes are folded in — node-id or cache-blocked — cannot change the
// resulting tally.
func (t *tally) moveWord(old, new uint32) {
	og, oc := int(old>>genShift), int(old&colMask)
	g, c := int(new>>genShift), int(new&colMask)
	t.dec(og, oc)
	t.inc(g, c)
	t.genSize[og]--
	t.genSize[g]++
	if g > t.maxGen {
		t.maxGen = g
	}
	if oc != c {
		t.colTot[oc]--
		if t.colTot[oc] == 0 {
			t.colored--
		}
		if t.colTot[c] == 0 {
			t.colored++
		}
		t.colTot[c]++
	}
}

// rowDiffFor returns generation g's staged scratch row, allocating (or
// recycling) it on first touch within a step.
func (t *tally) rowDiffFor(g int) []int32 {
	d := t.rowDiff[g]
	if d == nil {
		if n := len(t.freeRows); n > 0 {
			d = t.freeRows[n-1]
			t.freeRows = t.freeRows[:n-1]
		} else {
			d = make([]int32, t.k)
		}
		t.rowDiff[g] = d
		t.diffGens = append(t.diffGens, g)
	}
	return d
}

// mergeRow folds generation g's staged scratch row into its sorted
// representation in one linear pass: the scratch row enumerates colors
// ascending, the sorted row is walked alongside, and the merged entries are
// rebuilt without any per-entry search. Zero results are dropped (the
// eager-removal invariant) and every global aggregate — generation size,
// per-color totals, the colored count and the maxGen watermark — folds from
// the same pass.
func (t *tally) mergeRow(g int) {
	d := t.rowDiff[g]
	t.rowDiff[g] = nil
	row := &t.rows[g]
	nk, nv := t.mergeKeys[:0], t.mergeVals[:0]
	i, nrow := 0, len(row.keys)
	gs := 0
	for c := 0; c < t.k; c++ {
		var cur int32
		if i < nrow && row.keys[i] == int32(c) {
			cur = row.vals[i]
			i++
		}
		delta := d[c]
		if delta == 0 {
			if cur != 0 {
				nk = append(nk, int32(c))
				nv = append(nv, cur)
			}
			continue
		}
		d[c] = 0
		val := cur + delta
		if val < 0 {
			panic(fmt.Sprintf("syncgen: tally underflow at generation %d color %d", g, c))
		}
		if val != 0 {
			nk = append(nk, int32(c))
			nv = append(nv, val)
		}
		gs += int(delta)
		tot := t.colTot[c]
		ntot := tot + int(delta)
		t.colTot[c] = ntot
		if tot == 0 && ntot != 0 {
			t.colored++
		} else if tot != 0 && ntot == 0 {
			t.colored--
		}
	}
	row.keys = append(row.keys[:0], nk...)
	row.vals = append(row.vals[:0], nv...)
	t.genSize[g] += gs
	if g > t.maxGen && t.genSize[g] > 0 {
		t.maxGen = g
	}
	t.freeRows = append(t.freeRows, d)
	t.mergeKeys, t.mergeVals = nk[:0], nv[:0]
}

// collapse folds a step's staged diffs into every aggregate and zeroes
// them. Dense mode scans the diff matrix; only generations up to maxGen+1
// can have staged deltas — node generations are monotone and grow one step
// at a time — so the scan is bounded by the occupied prefix, not G*.
// Sparse mode merges each touched generation's scratch row (mergeRow). In
// both modes the result is identical to having moveWord-ed every staged
// transition: per-cell deltas are plain sums, and colTot's zero-crossing
// updates are symmetric, so the order the cells fold in cannot change where
// colored ends up.
func (t *tally) collapse() {
	if t.sparse {
		for _, g := range t.diffGens {
			t.mergeRow(g)
		}
		t.diffGens = t.diffGens[:0]
		return
	}
	hi := t.maxGen + 1
	if hi > t.gCap {
		hi = t.gCap
	}
	for g := 0; g <= hi; g++ {
		base := g * t.k
		gs := 0
		for c := 0; c < t.k; c++ {
			d := t.diff[base+c]
			if d == 0 {
				continue
			}
			t.diff[base+c] = 0
			nv := t.dense[base+c] + d
			if nv < 0 {
				panic(fmt.Sprintf("syncgen: tally underflow at generation %d color %d", g, c))
			}
			t.dense[base+c] = nv
			gs += int(d)
			tot := t.colTot[c]
			ntot := tot + int(d)
			t.colTot[c] = ntot
			if tot == 0 && ntot != 0 {
				t.colored++
			} else if tot != 0 && ntot == 0 {
				t.colored--
			}
		}
		t.genSize[g] += gs
	}
	if hi > t.maxGen && t.genSize[hi] > 0 {
		t.maxGen = hi
	}
}

// inc adds one supporter of color c to generation g.
func (t *tally) inc(g, c int) {
	if !t.sparse {
		t.dense[g*t.k+c]++
		return
	}
	row := &t.rows[g]
	i, ok := row.find(int32(c))
	if ok {
		row.vals[i]++
		return
	}
	row.keys = append(row.keys, 0)
	row.vals = append(row.vals, 0)
	copy(row.keys[i+1:], row.keys[i:])
	copy(row.vals[i+1:], row.vals[i:])
	row.keys[i] = int32(c)
	row.vals[i] = 1
}

// dec removes one supporter of color c from generation g.
func (t *tally) dec(g, c int) {
	if !t.sparse {
		t.dense[g*t.k+c]--
		return
	}
	row := &t.rows[g]
	i, ok := row.find(int32(c))
	if !ok {
		panic(fmt.Sprintf("syncgen: tally underflow at generation %d color %d", g, c))
	}
	row.vals[i]--
	if row.vals[i] == 0 {
		row.keys = append(row.keys[:i], row.keys[i+1:]...)
		row.vals = append(row.vals[:i], row.vals[i+1:]...)
	}
}

// find locates color c in the row, returning its index when present or the
// sorted insertion point otherwise. The keys are distinct sorted values, so
// keys[i] >= i always: a row whose occupied prefix is packed answers
// keys[c] == c in O(1) — the dominant case once a wide opinion space fills
// its generations — and otherwise c can only sit below index c, so the
// search gallops left from that bound and the cost is logarithmic in the
// number of missing colors, not in the row length.
func (row *tallyRow) find(c int32) (int, bool) {
	keys := row.keys
	n := len(keys)
	hi := n
	if int(c) < n {
		if keys[c] == c {
			return int(c), true
		}
		hi = int(c)
	}
	lo := 0
	for step := 1; hi > 0; step <<= 1 {
		p := hi - step
		if p < 0 {
			p = 0
		}
		if keys[p] <= c {
			lo = p
			break
		}
		hi = p
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < n && keys[lo] == c
}

// count returns the number of generation-g supporters of color c.
func (t *tally) count(g, c int) int {
	if !t.sparse {
		return int(t.dense[g*t.k+c])
	}
	if i, ok := t.rows[g].find(int32(c)); ok {
		return int(t.rows[g].vals[i])
	}
	return 0
}

// monochromatic reports whether at most one color has supporters anywhere.
func (t *tally) monochromatic() bool { return t.colored <= 1 }

// counts returns the live global per-color totals (not a copy) — the
// recorder's replacement for re-counting the configuration every snapshot.
func (t *tally) counts() opinion.Counts { return t.colTot }

// rowBias returns the color bias inside generation g, computing exactly
// what opinion.Counts.Bias would on the dense k-wide row (1 when the
// generation is empty, the pseudo-infinite winner count when only one color
// is present). The sparse path scans only the occupied colors: they are
// sorted ascending, and TopTwo's min-index tie-breaks depend only on the
// relative order of the positive entries, so the scan reproduces the dense
// result bit-for-bit.
func (t *tally) rowBias(g int) float64 {
	if !t.sparse {
		return denseRowBias(t.dense[g*t.k : (g+1)*t.k])
	}
	row := &t.rows[g]
	if len(row.keys) == 0 {
		return 1
	}
	if len(row.keys) == 1 {
		return float64(row.vals[0])
	}
	first, second := 0, -1
	for i := 1; i < len(row.vals); i++ {
		switch {
		case row.vals[i] > row.vals[first]:
			second = first
			first = i
		case second == -1 || row.vals[i] > row.vals[second]:
			second = i
		}
	}
	return float64(row.vals[first]) / float64(row.vals[second])
}

// denseRowBias is opinion.Counts.TopTwo + Bias over an int32 row, kept in
// lockstep with the opinion package so dense tallies report identical
// biases to the historical genCol matrix.
func denseRowBias(row []int32) float64 {
	first, second := 0, -1
	for i := 1; i < len(row); i++ {
		switch {
		case row[i] > row[first]:
			second = first
			first = i
		case second == -1 || row[i] > row[second]:
			second = i
		}
	}
	if second < 0 || row[second] == 0 {
		if row[first] == 0 {
			return 1
		}
		return float64(row[first])
	}
	return float64(row[first]) / float64(row[second])
}
