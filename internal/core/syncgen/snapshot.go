package syncgen

import (
	"fmt"

	"plurality/internal/metrics"
	"plurality/internal/snap"
	"plurality/internal/xrand"
)

// This file implements the synchronous engine's checkpoint hooks. The
// configuration travels as the packed word vector — one uint32 per node —
// and nothing else: the per-generation tallies, generation sizes and the
// maxGen watermark are pure functions of the words (node generations are
// monotone, so the running maximum equals the current maximum) and are
// rebuilt at restore, which halves the payload the historical parallel
// cols/gens slices and dense tally matrix used to occupy. Thresholds and
// the theoretical schedule itself are likewise recomputed from the Config.

// capture serializes the run's mutable state after completing `step`.
func (st *state) capture(step, nextTheoretical int, stepRNG *xrand.RNG,
	rec *metrics.Recorder, res *Result) []byte {
	w := &snap.Writer{}
	w.Int(step)
	w.Int(nextTheoretical)
	w.RNG(stepRNG)
	w.U32s(st.packed)
	w.Ints(res.TwoChoicesSteps)
	w.Len32(len(res.Generations))
	for _, g := range res.Generations {
		w.Int(g.Gen)
		w.Int(g.BirthStep)
		w.F64(g.BirthFrac)
		w.F64(g.BirthBias)
		w.Int(g.EstablishedStep)
		w.F64(g.EstablishedBias)
	}
	metrics.EncodeRecorder(w, rec)
	// Adversarial runs append the crash flags and the adversary state; the
	// suffix's presence is a pure function of the Config, so capture and
	// restore agree on it and honest blobs decode unchanged.
	if st.adv != nil {
		w.Bools(st.crashed)
		w.Int(st.aliveN)
		st.adv.EncodeState(w)
	}
	return w.Bytes()
}

// restore overwrites the run's mutable state from a captured payload and
// returns the (step, nextTheoretical) position to resume after. Slices are
// filled in place so caller-held references stay valid; the tallies are
// rebuilt from the restored words, validating every one against (k, G*).
func (st *state) restore(stateBytes []byte, stepRNG *xrand.RNG,
	rec *metrics.Recorder, res *Result, perturb uint64) (step, nextTheoretical int, err error) {
	r := snap.NewReader(stateBytes)
	step = r.Int()
	nextTheoretical = r.Int()
	if err := r.ReadRNG(stepRNG); err != nil {
		return 0, 0, fmt.Errorf("syncgen: step rng: %w", err)
	}
	packed := r.U32s()
	twoChoices := r.Ints()
	nGen := r.Len32(40)
	if e := r.Err(); e != nil {
		return 0, 0, fmt.Errorf("syncgen: state: %w", e)
	}
	gensEvents := make([]GenEvent, nGen)
	for i := range gensEvents {
		gensEvents[i] = GenEvent{
			Gen:             r.Int(),
			BirthStep:       r.Int(),
			BirthFrac:       r.F64(),
			BirthBias:       r.F64(),
			EstablishedStep: r.Int(),
			EstablishedBias: r.F64(),
		}
	}
	if err := metrics.DecodeRecorder(r, rec); err != nil {
		return 0, 0, fmt.Errorf("syncgen: recorder: %w", err)
	}
	var crashed []bool
	aliveN := st.n
	if st.adv != nil {
		crashed = r.Bools()
		aliveN = r.Int()
		if err := st.adv.DecodeState(r); err != nil {
			return 0, 0, fmt.Errorf("syncgen: adversary state: %w", err)
		}
		if len(crashed) != st.n && r.Err() == nil {
			return 0, 0, fmt.Errorf("syncgen: %w: crash-flag length mismatch", snap.ErrCorrupt)
		}
		if aliveN < 0 || aliveN > st.n {
			return 0, 0, fmt.Errorf("syncgen: %w: alive count %d outside [0, %d]", snap.ErrCorrupt, aliveN, st.n)
		}
	}
	if err := r.Finish(); err != nil {
		return 0, 0, fmt.Errorf("syncgen: state: %w", err)
	}
	if len(packed) != st.n {
		return 0, 0, fmt.Errorf("syncgen: %w: node-state length mismatch (blob for a different N?)", snap.ErrCorrupt)
	}
	if step < 0 || nextTheoretical < 0 {
		return 0, 0, fmt.Errorf("syncgen: %w: negative resume position", snap.ErrCorrupt)
	}
	copy(st.packed, packed)
	if err := st.tally.rebuild(st.packed); err != nil {
		return 0, 0, fmt.Errorf("syncgen: %w (blob for a different K or G*?)", err)
	}
	if st.adv != nil {
		copy(st.crashed, crashed)
		st.aliveN = aliveN
	}
	res.Steps = step
	res.TwoChoicesSteps = twoChoices
	res.Generations = gensEvents
	if perturb != 0 {
		stepRNG.Perturb(perturb)
		if st.adv != nil {
			st.adv.Perturb(perturb)
		}
	}
	return step, nextTheoretical, nil
}
