package syncgen

import (
	"fmt"

	"plurality/internal/metrics"
	"plurality/internal/opinion"
	"plurality/internal/snap"
	"plurality/internal/xrand"
)

// This file implements the synchronous engine's checkpoint hooks: the full
// configuration (opinion and generation vectors, per-generation tallies),
// the step RNG, the schedule position and the partial result are captured
// at a step boundary; thresholds and the theoretical schedule itself are
// recomputed at restore from the Config.

// capture serializes the run's mutable state after completing `step`.
func (st *state) capture(step, nextTheoretical int, stepRNG *xrand.RNG,
	rec *metrics.Recorder, res *Result) []byte {
	w := &snap.Writer{}
	w.Int(step)
	w.Int(nextTheoretical)
	w.RNG(stepRNG)
	opinion.EncodeSlice(w, st.cols)
	w.I32s(st.gens)
	w.Len32(len(st.genCol))
	for _, row := range st.genCol {
		w.Ints(row)
	}
	w.Ints(st.genSize)
	w.Int(st.maxGen)
	w.Ints(res.TwoChoicesSteps)
	w.Len32(len(res.Generations))
	for _, g := range res.Generations {
		w.Int(g.Gen)
		w.Int(g.BirthStep)
		w.F64(g.BirthFrac)
		w.F64(g.BirthBias)
		w.Int(g.EstablishedStep)
		w.F64(g.EstablishedBias)
	}
	metrics.EncodeRecorder(w, rec)
	// Adversarial runs append the crash flags and the adversary state; the
	// suffix's presence is a pure function of the Config, so capture and
	// restore agree on it and honest blobs decode unchanged.
	if st.adv != nil {
		w.Bools(st.crashed)
		w.Int(st.aliveN)
		st.adv.EncodeState(w)
	}
	return w.Bytes()
}

// restore overwrites the run's mutable state from a captured payload and
// returns the (step, nextTheoretical) position to resume after. Slices are
// filled in place so caller-held references stay valid.
func (st *state) restore(stateBytes []byte, stepRNG *xrand.RNG,
	rec *metrics.Recorder, res *Result, perturb uint64) (step, nextTheoretical int, err error) {
	r := snap.NewReader(stateBytes)
	step = r.Int()
	nextTheoretical = r.Int()
	if err := r.ReadRNG(stepRNG); err != nil {
		return 0, 0, fmt.Errorf("syncgen: step rng: %w", err)
	}
	cols, err := opinion.DecodeSlice(r, st.k)
	if err != nil {
		return 0, 0, fmt.Errorf("syncgen: opinions: %w", err)
	}
	gens := r.I32s()
	ng := r.Len32(4)
	if e := r.Err(); e != nil {
		return 0, 0, fmt.Errorf("syncgen: state: %w", e)
	}
	if ng != len(st.genCol) {
		return 0, 0, fmt.Errorf("syncgen: %w: %d generation rows for G*=%d (blob for a different G*?)", snap.ErrCorrupt, ng, st.gCap)
	}
	genCol := make([][]int, ng)
	for g := range genCol {
		genCol[g] = r.Ints()
		if len(genCol[g]) != st.k && r.Err() == nil {
			return 0, 0, fmt.Errorf("syncgen: %w: generation row width %d != k %d", snap.ErrCorrupt, len(genCol[g]), st.k)
		}
	}
	genSize := r.Ints()
	maxGen := r.Int()
	twoChoices := r.Ints()
	nGen := r.Len32(40)
	if e := r.Err(); e != nil {
		return 0, 0, fmt.Errorf("syncgen: state: %w", e)
	}
	gensEvents := make([]GenEvent, nGen)
	for i := range gensEvents {
		gensEvents[i] = GenEvent{
			Gen:             r.Int(),
			BirthStep:       r.Int(),
			BirthFrac:       r.F64(),
			BirthBias:       r.F64(),
			EstablishedStep: r.Int(),
			EstablishedBias: r.F64(),
		}
	}
	if err := metrics.DecodeRecorder(r, rec); err != nil {
		return 0, 0, fmt.Errorf("syncgen: recorder: %w", err)
	}
	var crashed []bool
	aliveN := st.n
	if st.adv != nil {
		crashed = r.Bools()
		aliveN = r.Int()
		if err := st.adv.DecodeState(r); err != nil {
			return 0, 0, fmt.Errorf("syncgen: adversary state: %w", err)
		}
		if len(crashed) != st.n && r.Err() == nil {
			return 0, 0, fmt.Errorf("syncgen: %w: crash-flag length mismatch", snap.ErrCorrupt)
		}
		if aliveN < 0 || aliveN > st.n {
			return 0, 0, fmt.Errorf("syncgen: %w: alive count %d outside [0, %d]", snap.ErrCorrupt, aliveN, st.n)
		}
	}
	if err := r.Finish(); err != nil {
		return 0, 0, fmt.Errorf("syncgen: state: %w", err)
	}
	if len(cols) != st.n || len(gens) != st.n {
		return 0, 0, fmt.Errorf("syncgen: %w: node-state length mismatch (blob for a different N?)", snap.ErrCorrupt)
	}
	if len(genSize) != len(st.genSize) || maxGen < 0 || maxGen > st.gCap ||
		step < 0 || nextTheoretical < 0 {
		return 0, 0, fmt.Errorf("syncgen: %w: generation bookkeeping out of range", snap.ErrCorrupt)
	}
	copy(st.cols, cols)
	copy(st.gens, gens)
	for g := range st.genCol {
		copy(st.genCol[g], genCol[g])
	}
	copy(st.genSize, genSize)
	st.maxGen = maxGen
	if st.adv != nil {
		copy(st.crashed, crashed)
		st.aliveN = aliveN
	}
	res.Steps = step
	res.TwoChoicesSteps = twoChoices
	res.Generations = gensEvents
	if perturb != 0 {
		stepRNG.Perturb(perturb)
		if st.adv != nil {
			st.adv.Perturb(perturb)
		}
	}
	return step, nextTheoretical, nil
}
