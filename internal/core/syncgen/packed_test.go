package syncgen

import (
	"testing"

	"plurality/internal/metrics"
	"plurality/internal/opinion"
	"plurality/internal/topo"
	"plurality/internal/xrand"
)

// This file pins the packed memory layout against straightforward reference
// implementations. The engine stores each node's (opinion, generation) pair
// in one uint32 and keeps every aggregate incrementally — these tests hold
// that machinery to the definitional form: parallel cols/gens slices stepped
// with scalar draws, and tallies recounted (or re-represented) from scratch.

// refState is the unpacked, scalar reference of the synchronous update: the
// historical parallel cols/gens layout, partner draws taken one scalar
// SampleNeighbor call at a time in node-id order. By the scalar-equivalence
// invariant it consumes the RNG stream exactly as the packed engine's
// chunked batch draws.
type refState struct {
	cols []opinion.Opinion
	gens []int
}

func newRefState(cols []opinion.Opinion) *refState {
	return &refState{
		cols: append([]opinion.Opinion(nil), cols...),
		gens: make([]int, len(cols)),
	}
}

func (rs *refState) step(r *xrand.RNG, tp topo.Sampler, gCap int, twoChoices bool) {
	n := len(rs.cols)
	pa := make([]int, n)
	pb := make([]int, n)
	for v := 0; v < n; v++ {
		pa[v] = tp.SampleNeighbor(r, v)
		pb[v] = tp.SampleNeighbor(r, v)
	}
	ncols := append([]opinion.Opinion(nil), rs.cols...)
	ngens := append([]int(nil), rs.gens...)
	for v := 0; v < n; v++ {
		ca, ga := rs.cols[pa[v]], rs.gens[pa[v]]
		cb, gb := rs.cols[pb[v]], rs.gens[pb[v]]
		if ga < gb { // wlog gen(a) >= gen(b)
			ca, ga, cb, gb = cb, gb, ca, ga
		}
		switch {
		case twoChoices && ga == gb && ca == cb && rs.gens[v] <= ga && ga < gCap:
			ncols[v], ngens[v] = ca, ga+1
		case ga > rs.gens[v]:
			ncols[v], ngens[v] = ca, ga
		}
	}
	rs.cols, rs.gens = ncols, ngens
}

// TestPackedStateEquivalence steps the packed engine and the unpacked
// reference in lockstep over every topology kind — identity block order
// (complete, ring) and permuted block order (torus, CSR) both take their
// real code paths — and demands the full configuration match word-for-word
// after every round, two-choices and propagation rounds interleaved.
func TestPackedStateEquivalence(t *testing.T) {
	const n, k, gStar, steps = 3000, 6, 7, 40
	ring, err := topo.NewRing(n, 3)
	if err != nil {
		t.Fatal(err)
	}
	torus, err := topo.NewTorus(50, 60)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := topo.NewRandomRegular(n, 6, 11)
	if err != nil {
		t.Fatal(err)
	}
	tops := map[string]topo.Sampler{
		"complete": topo.NewComplete(n), "ring": ring,
		"torus": torus, "random-regular": reg,
	}
	for kind, tp := range tops {
		t.Run(kind, func(t *testing.T) {
			cols := opinion.PlantedBias(n, k, 2, xrand.New(7))
			st := newState(cols, k, gStar, tp, nil)
			ref := newRefState(cols)
			rPacked, rRef := xrand.New(99), xrand.New(99)
			bs := topo.Batch(tp)
			for s := 0; s < steps; s++ {
				twoChoices := s%3 == 0
				st.step(rPacked, bs, twoChoices)
				ref.step(rRef, tp, gStar, twoChoices)
				for v := 0; v < n; v++ {
					w := st.packed[v]
					if got, want := int(w&colMask), int(ref.cols[v]); got != want {
						t.Fatalf("step %d node %d: packed color %d, reference %d", s, v, got, want)
					}
					if got, want := int(w>>genShift), ref.gens[v]; got != want {
						t.Fatalf("step %d node %d: packed generation %d, reference %d", s, v, got, want)
					}
				}
			}
		})
	}
}

// checkTalliesAgree compares every observable of two tallies over the same
// configuration: global counts, generation sizes, watermark, biases and
// individual cells.
func checkTalliesAgree(t *testing.T, step int, a, b *tally) {
	t.Helper()
	if a.maxGen != b.maxGen {
		t.Fatalf("step %d: maxGen %d vs %d", step, a.maxGen, b.maxGen)
	}
	if a.monochromatic() != b.monochromatic() {
		t.Fatalf("step %d: monochromatic %v vs %v", step, a.monochromatic(), b.monochromatic())
	}
	for g := 0; g <= a.gCap; g++ {
		if a.genSize[g] != b.genSize[g] {
			t.Fatalf("step %d: genSize[%d] %d vs %d", step, g, a.genSize[g], b.genSize[g])
		}
		if ab, bb := a.rowBias(g), b.rowBias(g); ab != bb {
			t.Fatalf("step %d: rowBias(%d) %v vs %v", step, g, ab, bb)
		}
	}
	for c := 0; c < a.k; c++ {
		if a.colTot[c] != b.colTot[c] {
			t.Fatalf("step %d: colTot[%d] %d vs %d", step, c, a.colTot[c], b.colTot[c])
		}
	}
	for g := 0; g <= a.maxGen; g++ {
		for c := 0; c < a.k; c++ {
			if a.count(g, c) != b.count(g, c) {
				t.Fatalf("step %d: count(%d, %d) %d vs %d", step, g, c, a.count(g, c), b.count(g, c))
			}
		}
	}
}

// TestSparseDenseTallyEquivalence runs the same configuration through a
// naturally-sparse state (k above the threshold) and a forced-dense twin,
// comparing every tally observable after every step. The representation is
// an implementation detail; no observable may depend on it.
func TestSparseDenseTallyEquivalence(t *testing.T) {
	const n, k, gStar, steps = 4000, 600, 6, 30
	if k <= sparseTallyThreshold {
		t.Fatalf("test needs k > sparseTallyThreshold %d to exercise sparse mode", sparseTallyThreshold)
	}
	cols := opinion.PlantedBias(n, k, 3, xrand.New(5))
	tp := topo.NewComplete(n)
	stSparse := newState(cols, k, gStar, tp, nil)
	stDense := newState(cols, k, gStar, tp, nil)
	stDense.tally = newTallyMode(k, gStar, false)
	if err := stDense.tally.rebuild(stDense.packed); err != nil {
		t.Fatal(err)
	}
	if !stSparse.tally.sparse || stDense.tally.sparse {
		t.Fatal("mode setup wrong: want one sparse and one forced-dense tally")
	}
	rs, rd := xrand.New(21), xrand.New(21)
	bs := topo.Batch(tp)
	for s := 0; s < steps; s++ {
		twoChoices := s%2 == 0
		stSparse.step(rs, bs, twoChoices)
		stDense.step(rd, bs, twoChoices)
		for v := 0; v < n; v++ {
			if stSparse.packed[v] != stDense.packed[v] {
				t.Fatalf("step %d: configurations diverged at node %d", s, v)
			}
		}
		checkTalliesAgree(t, s, stSparse.tally, stDense.tally)
	}
}

// TestLargeKStress drives the sparse tally at the issue's stress point —
// n = 10^5 nodes over k = 10^3 opinions — and cross-checks the incremental
// aggregates against a from-scratch rebuild at several steps. Bounded step
// count keeps it CI-cheap; the point is that the sparse representation
// survives a realistically wide opinion space without dense O(G*·k) scans.
func TestLargeKStress(t *testing.T) {
	const n, k, gStar, steps = 100000, 1000, 8, 12
	cols := opinion.PlantedBias(n, k, 2, xrand.New(3))
	tp := topo.NewComplete(n)
	st := newState(cols, k, gStar, tp, nil)
	if !st.tally.sparse {
		t.Fatalf("k = %d must select the sparse tally (threshold %d)", k, sparseTallyThreshold)
	}
	r := xrand.New(17)
	bs := topo.Batch(tp)
	for s := 0; s < steps; s++ {
		st.step(r, bs, s%3 == 0)
		if s%4 != 3 {
			continue
		}
		fresh := newTallyMode(k, gStar, true)
		if err := fresh.rebuild(st.packed); err != nil {
			t.Fatalf("step %d: rebuild: %v", s, err)
		}
		checkTalliesAgree(t, s, st.tally, fresh)
	}
	// The stressed configuration must still checkpoint: capture carries only
	// the packed words, so a sparse-mode restore rebuilds the whole tally.
	var res Result
	rec := metrics.NewRecorder(0.1, true, nil)
	blob := st.capture(steps, steps+1, r, rec, &res)
	st2 := newState(cols, k, gStar, tp, nil)
	rec2 := metrics.NewRecorder(0.1, true, nil)
	if _, _, err := st2.restore(blob, xrand.New(0), rec2, &Result{}, 0); err != nil {
		t.Fatalf("sparse restore: %v", err)
	}
	for v := 0; v < n; v++ {
		if st.packed[v] != st2.packed[v] {
			t.Fatalf("restored configuration diverged at node %d", v)
		}
	}
	checkTalliesAgree(t, steps, st.tally, st2.tally)
}
