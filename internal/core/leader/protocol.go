package leader

import (
	"fmt"
	"math"

	"plurality/internal/adversary"
	"plurality/internal/core/syncgen"
	"plurality/internal/metrics"
	"plurality/internal/opinion"
	"plurality/internal/sim"
	"plurality/internal/topo"
	"plurality/internal/xrand"
)

// Phase labels the leader's mode for one generation.
type Phase int

const (
	// PhaseTwoChoices means the leader currently allows two-choices
	// promotions into its newest generation (prop = false).
	PhaseTwoChoices Phase = iota + 1
	// PhasePropagation means the leader allows pull propagation into the
	// newest generation (prop = true).
	PhasePropagation
)

// String names the phase for logs.
func (p Phase) String() string {
	switch p {
	case PhaseTwoChoices:
		return "two-choices"
	case PhasePropagation:
		return "propagation"
	default:
		return "unknown"
	}
}

// PhaseEvent records one leader state change.
type PhaseEvent struct {
	// Time is the virtual time of the change.
	Time float64
	// Gen is the leader's generation after the change.
	Gen int
	// Phase is the leader's mode after the change.
	Phase Phase
}

// Result captures one asynchronous single-leader run.
type Result struct {
	// Outcome summarizes correctness and hitting times (virtual time).
	Outcome metrics.Outcome
	// Trajectory holds the periodic snapshots.
	Trajectory metrics.Trajectory
	// EndTime is the virtual time at termination.
	EndTime float64
	// Events is the number of simulator events processed.
	Events uint64
	// PhaseLog records every leader phase/generation change.
	PhaseLog []PhaseEvent
	// FinalCounts are the opinion counts at termination.
	FinalCounts opinion.Counts
	// InitialPlurality is the opinion that was initially dominant.
	InitialPlurality opinion.Opinion
	// C1 is the steps-per-time-unit constant the run used.
	C1 float64
	// GStar is the generation cap the run used.
	GStar int
	// TimedOut reports that MaxTime was hit before full consensus.
	TimedOut bool
	// TotalLeaderMessages counts every message that reached the leader
	// (0-signals, gen-signals and state reads), and PeakLeaderLoad the
	// maximum number of those per time unit — the §4.5 bottleneck metric
	// that motivates the decentralized protocol.
	TotalLeaderMessages uint64
	PeakLeaderLoad      float64
	// AdvCounters tallies the adversary's actions (zero for honest runs).
	AdvCounters adversary.Counters
}

// Typed event kinds of the single-leader engine (see HandleEvent). All
// scheduler state of a run is typed — the cold-path actions (periodic
// recorder, deadline watchdog, crash injection) are events too, not
// closures — which is what makes the pending event queue plain data and a
// run checkpointable mid-flight.
const (
	// evTick is one Poisson tick of node ev.Node.
	evTick int32 = iota
	// evSignal is an i-signal (i = ev.A) arriving at the leader.
	evSignal
	// evComplete is node ev.Node's channels to samples ev.A and ev.B
	// completing.
	evComplete
	// evRecord is the periodic trajectory recorder; it reschedules itself
	// every cfg.RecordEvery time steps and stops the run on consensus or
	// deadline.
	evRecord
	// evDeadline is the hard MaxTime watchdog, independent of the recorder
	// cadence.
	evDeadline
	// evCrash is one crash-adversary action: a one-shot fail-stop of the
	// victim pool, or one churn toggle (see internal/adversary). The legacy
	// CrashFrac knob schedules the same event, keeping its value stable.
	evCrash
	// evAdvDeliver delivers a message the delay adversary held back: A is
	// the payload-arena slot holding the original event.
	evAdvDeliver
)

// runState bundles the mutable simulation state of one run.
type runState struct {
	cfg     Config
	sm      *sim.Simulator
	clocks  *sim.Clocks
	tickFn  func(int)         // rs.tick bound once so Fire calls allocate nothing
	bs      topo.BatchSampler // cfg.Topo's bulk path, resolved once
	scratch *topo.Scratch     // batch-sampling buffers (per-worker under RunBatch)
	lat     sim.Latency
	tickR   *xrand.RNG // sampling randomness (targets)
	latR    *xrand.RNG // latency randomness

	cols   []opinion.Opinion
	gens   []int32
	locked []bool
	seenG  []int32 // l.gen stored at the previous leader contact
	seenP  []bool  // l.prop stored at the previous leader contact

	colorCount []int
	genCount   []int
	maxGen     int

	leaderGen  int
	leaderProp bool
	leaderT    int
	leaderSize int
	c3Ticks    int
	genThresh  int
	gStar      int

	// propSeen[g] is true once the leader has been in (gen=g, prop) state;
	// used for the §3.2 invariant check.
	propSeen []bool

	// §4.5 congestion metric: leader-bound messages per C1-wide time
	// bucket. Time is monotone, so one open (bucket, count) pair plus a
	// running peak replaces a per-bucket map.
	loadBucket int32
	loadCount  uint64
	peakLoad   uint64

	res        *Result
	plurality  opinion.Opinion
	mono       bool
	monoAt     float64
	totalTicks uint64

	// crashed marks fail-stopped nodes; aliveN is the survivor count
	// against which consensus is detected. The engine owns both — the
	// adversary only decides which node toggles when (see advCrash).
	crashed []bool
	aliveN  int

	// adv is the run's adversary (nil for honest runs — the nil check is
	// the only cost the hot path pays) and payload the side-arena delayed
	// messages park their original event in.
	adv     *adversary.State
	payload *sim.PayloadArena

	// maxTime is the effective abort horizon and rec the trajectory
	// recorder; both live on the state so the evRecord/evDeadline handlers
	// can reach them.
	maxTime float64
	rec     *metrics.Recorder
}

// Run executes Algorithms 2 and 3 under cfg. With cfg.Shards > 1 the run
// is handed to the sharded kernel (see runSharded); otherwise the serial
// path below executes, byte-identical to every release since the ladder.
func Run(cfg Config) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if cfg.Shards > 1 {
		return runSharded(cfg)
	}
	root := xrand.New(cfg.Seed)

	cols := make([]opinion.Opinion, cfg.N)
	if cfg.Assignment != nil {
		copy(cols, cfg.Assignment)
	} else {
		alpha := cfg.Alpha
		if alpha < 1 {
			alpha = 1
		}
		cols = opinion.PlantedBias(cfg.N, cfg.K, alpha, root.SplitNamed("assignment"))
	}
	initCounts := opinion.CountOf(cols, cfg.K)
	pl, _ := initCounts.TopTwo()
	alphaHat := initCounts.Bias()

	gStar := cfg.GStar
	if gStar <= 0 {
		gStar = syncgen.GenerationBudget(cfg.N, alphaHat) + 2
	}
	maxTime := cfg.MaxTime
	if maxTime <= 0 {
		perGen := cfg.C3 + cfg.C1*(math.Log(4.5*float64(cfg.K+1))/math.Log(1.4)+2)
		maxTime = 16*float64(gStar)*perGen + 30*cfg.C1*math.Log2(float64(cfg.N))
	}

	scratch := cfg.Scratch
	if scratch == nil {
		scratch = &topo.Scratch{}
	}
	rs := &runState{
		cfg:        cfg,
		sm:         sim.New(),
		bs:         topo.Batch(cfg.Topo),
		scratch:    scratch,
		lat:        cfg.Latency,
		tickR:      root.SplitNamed("ticks"),
		latR:       root.SplitNamed("latency"),
		cols:       cols,
		gens:       make([]int32, cfg.N),
		locked:     make([]bool, cfg.N),
		seenG:      make([]int32, cfg.N),
		seenP:      make([]bool, cfg.N),
		colorCount: initCounts,
		genCount:   make([]int, gStar+1),
		leaderGen:  1,
		c3Ticks:    int(cfg.C3 * float64(cfg.N)),
		genThresh:  int(math.Ceil(cfg.GenFraction * float64(cfg.N))),
		gStar:      gStar,
		propSeen:   make([]bool, gStar+2),
		plurality:  opinion.Opinion(pl),
		res: &Result{
			InitialPlurality: opinion.Opinion(pl),
			C1:               cfg.C1,
			GStar:            gStar,
		},
	}
	rs.genCount[0] = cfg.N
	rs.aliveN = cfg.N
	rs.maxTime = maxTime
	rs.crashed = make([]bool, cfg.N)
	rs.res.PhaseLog = append(rs.res.PhaseLog,
		PhaseEvent{Time: 0, Gen: 1, Phase: PhaseTwoChoices})
	restoring := cfg.Ckpt.Restoring()
	if cfg.CrashFrac > 0 {
		// Legacy crash knob, re-expressed on the shared adversary: the
		// construction generator is the same root substream at the same
		// position and the victim pool the same Perm prefix, so legacy runs
		// stay bit-identical (pinned by TestLegacyCrashDigest). The pool is
		// a deterministic function of the seed, so a restored run recomputes
		// it instead of carrying it in the blob.
		adv, err := adversary.New(adversary.Config{
			Kind: adversary.Crash, Fraction: cfg.CrashFrac,
			At: cfg.CrashTime, N: cfg.N,
		}, root.SplitNamed("crash"))
		if err != nil {
			return nil, fmt.Errorf("leader: %w", err)
		}
		rs.adv = adv
	} else if cfg.Adv.Kind != adversary.None {
		// Standalone adversary: a private generator seeded independently of
		// the root stream, so the honest engine streams are untouched.
		adv, err := adversary.New(cfg.Adv, xrand.New(cfg.Adv.Seed))
		if err != nil {
			return nil, fmt.Errorf("leader: %w", err)
		}
		rs.adv = adv
		if _, second := initCounts.TopTwo(); second >= 0 {
			adv.SetLieTarget(int32(second))
		}
	}
	if rs.adv != nil {
		rs.payload = &sim.PayloadArena{}
		if at := rs.adv.NextCrashAt(); at >= 0 && !restoring {
			rs.sm.Schedule(at, sim.Event{Kind: evCrash})
		}
	}

	// One Poisson clock per node, in struct-of-arrays form: clock RNGs are
	// split from the same parent in the same node order as the legacy
	// per-node Clock objects, so tick times are bit-identical.
	rs.tickFn = rs.tick
	rs.sm.SetHandler(rs)
	rs.sm.Reserve(3*cfg.N + 64)
	clockR := root.SplitNamed("clocks")
	rs.clocks = sim.NewClocks(rs.sm, clockR, cfg.N, 1, evTick)
	rs.rec = metrics.NewRecorder(cfg.Eps, cfg.DiscardTrajectory, cfg.Observe)
	if restoring {
		// Deterministic setup above sized every slice; now overwrite all
		// mutable state (event heap included) from the captured payload.
		if err := rs.restore(cfg.Ckpt.Restore, cfg.Ckpt.Perturb); err != nil {
			return nil, err
		}
	} else {
		rs.clocks.StartAll()
		// Periodic recorder + termination watchdog, both typed events so
		// the pending queue stays plain data (see evRecord/evDeadline).
		rs.record()
		rs.sm.ScheduleAfter(cfg.RecordEvery, sim.Event{Kind: evRecord})
		// Hard deadline, independent of the recorder cadence.
		rs.sm.Schedule(maxTime, sim.Event{Kind: evDeadline})
	}

	if err := rs.runSim(cfg.Ctx); err != nil {
		return nil, err
	}

	rs.res.EndTime = rs.sm.Now()
	rs.res.Events = rs.sm.Processed()
	if rs.adv != nil {
		rs.res.AdvCounters = rs.adv.Counters
	}
	if rs.loadCount > rs.peakLoad {
		rs.peakLoad = rs.loadCount
	}
	rs.res.PeakLeaderLoad = float64(rs.peakLoad)
	rs.res.FinalCounts = opinion.CountOf(rs.cols, cfg.K)
	// Ensure the final state is in the trajectory exactly once more (the
	// stop path records before stopping, but a monochromatic flip between
	// recordings would otherwise be missed).
	if last, ok := rs.rec.Last(); !ok || last.Time < rs.res.EndTime {
		rs.record()
	}
	rs.res.Trajectory = rs.rec.Trajectory()
	rs.res.Outcome = rs.rec.Outcome(rs.res.FinalCounts, rs.plurality)
	if rs.mono {
		// Tighten the consensus time to the exact flip moment.
		rs.res.Outcome.FullConsensus = true
		rs.res.Outcome.ConsensusTime = rs.monoAt
	}
	return rs.res, nil
}

// HandleEvent dispatches the engine's typed events; it is the hot path a
// run spends nearly all its time in, so every case is allocation-free.
func (rs *runState) HandleEvent(ev sim.Event) {
	switch ev.Kind {
	case evTick:
		rs.clocks.Fire(ev.Node, rs.tickFn)
	case evSignal:
		rs.leaderSignal(int(ev.A))
	case evComplete:
		rs.complete(int(ev.Node), int(ev.A), int(ev.B))
	case evRecord:
		rs.record()
		if rs.mono {
			rs.sm.Stop()
			return
		}
		if rs.sm.Now() >= rs.maxTime {
			rs.res.TimedOut = true
			rs.sm.Stop()
			return
		}
		rs.sm.ScheduleAfter(rs.cfg.RecordEvery, sim.Event{Kind: evRecord})
	case evDeadline:
		if rs.sm.Now() < rs.maxTime {
			// The horizon was extended after this watchdog was queued (a
			// resumed run may override MaxTime); re-arm at the new deadline.
			rs.sm.Schedule(rs.maxTime, sim.Event{Kind: evDeadline})
			return
		}
		if !rs.mono {
			rs.record()
			rs.res.TimedOut = true
			rs.sm.Stop()
		}
	case evCrash:
		rs.advCrash()
	case evAdvDeliver:
		rs.HandleEvent(rs.payload.Take(ev.A))
	}
}

// record appends one trajectory snapshot at the current virtual time.
func (rs *runState) record() {
	p := metrics.Snapshot(rs.sm.Now(), rs.cols, rs.cfg.K, rs.plurality)
	p.MaxGen = rs.maxGen
	p.MaxGenFrac = float64(rs.genCount[rs.maxGen]) / float64(rs.cfg.N)
	rs.rec.Append(p)
}

// advCrash applies one crash-adversary action: the one-shot fail-stop of the
// whole victim pool, or — under churn — one crash/recover toggle followed by
// scheduling the next one.
func (rs *runState) advCrash() {
	if rs.adv.Churning() {
		v := rs.adv.NextVictim()
		if rs.crashed[v] {
			rs.recoverNode(v)
		} else {
			rs.crashNode(v)
		}
		rs.sm.Schedule(rs.adv.NextCrashAt(), sim.Event{Kind: evCrash})
	} else {
		for _, v := range rs.adv.Victims() {
			rs.crashNode(v)
		}
	}
	// Survivors may already be unanimous.
	for _, cnt := range rs.colorCount {
		if cnt == rs.aliveN && rs.aliveN > 0 && !rs.mono {
			rs.mono = true
			rs.monoAt = rs.sm.Now()
		}
	}
}

// crashNode fail-stops node v: it stops acting on ticks and becomes
// unreadable when sampled, and leaves the survivor tallies.
func (rs *runState) crashNode(v int) {
	if rs.crashed[v] {
		return
	}
	rs.crashed[v] = true
	rs.aliveN--
	rs.colorCount[rs.cols[v]]--
	rs.adv.NoteCrash()
}

// recoverNode rejoins a crashed node with the state it crashed with.
func (rs *runState) recoverNode(v int) {
	rs.crashed[v] = false
	rs.aliveN++
	rs.colorCount[rs.cols[v]]++
	rs.adv.NoteRecovery()
}

// sendMsg schedules a protocol message, giving the delay adversary a chance
// to stretch the delivery: a delayed message parks the original event in the
// payload arena and is re-dispatched by evAdvDeliver. Honest runs take the
// plain path (one nil check, no extra draws).
func (rs *runState) sendMsg(d float64, ev sim.Event) {
	if rs.adv != nil {
		if extra := rs.adv.DelayExtra(rs.lat); extra > 0 {
			rs.sm.ScheduleAfter(d+extra, sim.Event{Kind: evAdvDeliver, A: rs.payload.Put(ev)})
			return
		}
	}
	rs.sm.ScheduleAfter(d, ev)
}

// tick handles one Poisson tick of node v (Algorithm 2 lines 1-3).
func (rs *runState) tick(v int) {
	if rs.mono || rs.crashed[v] {
		return
	}
	rs.totalTicks++
	// Line 1: 0-signal to the leader; fire-and-forget with latency.
	// SignalLoss (an extension; 0 in the paper's model) may drop it.
	if rs.cfg.SignalLoss == 0 || !rs.latR.Bernoulli(rs.cfg.SignalLoss) {
		rs.sendMsg(rs.lat.Sample(rs.latR), sim.Event{Kind: evSignal})
	}
	// Line 2: locked nodes do nothing else.
	if rs.locked[v] {
		return
	}
	rs.locked[v] = true
	// Lines 3-4: dial v', v'' in parallel, then the leader. Targets are
	// chosen now through the topology's bulk path (draw-for-draw identical
	// to two scalar samples); states are read when all channels are up.
	vs, out := rs.scratch.Buffers(2)
	vs[0], vs[1] = int32(v), int32(v)
	rs.bs.SampleNeighbors(rs.tickR, vs, out)
	d := math.Max(rs.lat.Sample(rs.latR), rs.lat.Sample(rs.latR)) +
		rs.lat.Sample(rs.latR)
	rs.sendMsg(d, sim.Event{Kind: evComplete, Node: int32(v), A: out[0], B: out[1]})
}

// complete handles the established channels of node v (Algorithm 2 lines
// 5-15).
func (rs *runState) complete(v, a, b int) {
	// The event runs atomically, so the lock can drop on entry: it only
	// gates future tick events.
	rs.locked[v] = false
	if rs.mono || rs.crashed[v] {
		return
	}
	// Reading (gen, prop) is one more request the leader serves.
	rs.leaderMessage()
	// Crashed samples never answer: the affected branch simply sees no
	// usable state from them. The drop adversary loses replies the same
	// way, and Byzantine liars answer with the lie target instead of their
	// true opinion.
	aUp, bUp := !rs.crashed[a], !rs.crashed[b]
	colA, colB := rs.cols[a], rs.cols[b]
	if rs.adv != nil {
		aUp = aUp && !rs.adv.DropMessage()
		bUp = bUp && !rs.adv.DropMessage()
		colA = opinion.Opinion(rs.adv.Lie(a, int32(colA)))
		colB = opinion.Opinion(rs.adv.Lie(b, int32(colB)))
	}
	lGen, lProp := rs.leaderGen, rs.leaderProp
	if int(rs.seenG[v]) != lGen || rs.seenP[v] != lProp {
		// Line 13-14: out of sync; refresh the stored leader state only.
		rs.seenG[v] = int32(lGen)
		rs.seenP[v] = lProp
		return
	}
	ga, gb := rs.gens[a], rs.gens[b]
	if aUp && bUp &&
		!lProp && ga == gb && int(ga) == lGen-1 && colA == colB {
		// Lines 6-8: two-choices promotion into generation lGen.
		if rs.cfg.CheckInvariants && rs.propSeen[lGen] {
			panic(fmt.Sprintf("leader: two-choices into gen %d after its propagation phase", lGen))
		}
		rs.setNode(v, colA, int32(lGen))
		return
	}
	// Lines 9-11: propagation from the best qualifying sample.
	pick := -1
	var pickGen int32 = -1
	var pickCol opinion.Opinion
	for i, x := range [2]int{a, b} {
		up, col := aUp, colA
		if i == 1 {
			up, col = bUp, colB
		}
		if !up {
			continue
		}
		gx := rs.gens[x]
		if gx > rs.gens[v] && (int(gx) < lGen || lProp) && gx > pickGen {
			pick = x
			pickGen = gx
			pickCol = col
		}
	}
	if pick >= 0 {
		rs.setNode(v, pickCol, rs.gens[pick])
	}
}

// setNode commits a color/generation update of node v and sends the
// gen-signal of Algorithm 2 line 12 when the generation increased.
func (rs *runState) setNode(v int, col opinion.Opinion, gen int32) {
	if rs.cfg.CheckInvariants && int(gen) > rs.leaderGen {
		panic(fmt.Sprintf("leader: node generation %d exceeds leader generation %d",
			gen, rs.leaderGen))
	}
	old := rs.cols[v]
	oldGen := rs.gens[v]
	rs.cols[v] = col
	rs.gens[v] = gen
	if old != col {
		rs.colorCount[old]--
		rs.colorCount[col]++
		if rs.colorCount[col] == rs.aliveN && !rs.mono {
			rs.mono = true
			rs.monoAt = rs.sm.Now()
		}
	}
	if gen != oldGen {
		rs.genCount[oldGen]--
		rs.genCount[gen]++
		if int(gen) > rs.maxGen {
			rs.maxGen = int(gen)
		}
		if gen > oldGen {
			if rs.cfg.SignalLoss == 0 || !rs.latR.Bernoulli(rs.cfg.SignalLoss) {
				rs.sendMsg(rs.lat.Sample(rs.latR),
					sim.Event{Kind: evSignal, A: int32(gen)})
			}
		}
	}
}

// leaderMessage accounts one message (signal or state read) reaching the
// leader, bucketed by time unit for the §4.5 congestion metric.
func (rs *runState) leaderMessage() {
	rs.res.TotalLeaderMessages++
	bucket := int32(rs.sm.Now() / rs.cfg.C1)
	if bucket != rs.loadBucket {
		if rs.loadCount > rs.peakLoad {
			rs.peakLoad = rs.loadCount
		}
		rs.loadBucket = bucket
		rs.loadCount = 0
	}
	rs.loadCount++
}

// leaderSignal processes one arriving i-signal at the leader (Algorithm 3).
func (rs *runState) leaderSignal(i int) {
	rs.leaderMessage()
	if rs.mono {
		return
	}
	if i == 0 {
		rs.leaderT++
		if !rs.leaderProp && rs.leaderT >= rs.c3Ticks {
			rs.leaderProp = true
			rs.propSeen[rs.leaderGen] = true
			rs.res.PhaseLog = append(rs.res.PhaseLog, PhaseEvent{
				Time: rs.sm.Now(), Gen: rs.leaderGen, Phase: PhasePropagation})
		}
	}
	if i == rs.leaderGen {
		rs.leaderSize++
		if rs.leaderSize >= rs.genThresh && rs.leaderGen < rs.gStar {
			rs.leaderGen++
			rs.leaderT = 0
			rs.leaderSize = 0
			rs.leaderProp = false
			rs.res.PhaseLog = append(rs.res.PhaseLog, PhaseEvent{
				Time: rs.sm.Now(), Gen: rs.leaderGen, Phase: PhaseTwoChoices})
		}
	}
}
