package leader

import (
	"math"
	"sort"
	"testing"

	"plurality/internal/opinion"
	"plurality/internal/sim"
	"plurality/internal/xrand"
)

func TestValidation(t *testing.T) {
	cases := []Config{
		{N: 1, K: 2},
		{N: 10, K: 0},
		{N: 10, K: 2, GenFraction: 1.5},
		{N: 10, K: 2, Assignment: make([]opinion.Opinion, 3)},
	}
	for i, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestConvergesTwoOpinions(t *testing.T) {
	res, err := Run(Config{N: 1000, K: 2, Alpha: 2, Seed: 1, CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outcome.FullConsensus {
		t.Fatalf("no consensus by t=%v (timed out: %v)", res.EndTime, res.TimedOut)
	}
	if !res.Outcome.PluralityWon {
		t.Errorf("plurality lost: %v", res.Outcome)
	}
}

func TestConvergesManyOpinions(t *testing.T) {
	res, err := Run(Config{N: 2000, K: 8, Alpha: 2, Seed: 2, CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outcome.FullConsensus || !res.Outcome.PluralityWon {
		t.Fatalf("outcome %v (timed out: %v)", res.Outcome, res.TimedOut)
	}
}

func TestEpsConvergenceBeforeFull(t *testing.T) {
	res, err := Run(Config{N: 2000, K: 4, Alpha: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outcome.EpsReached {
		t.Fatal("eps-convergence not reached")
	}
	if res.Outcome.FullConsensus && res.Outcome.EpsTime > res.Outcome.ConsensusTime {
		t.Errorf("eps time %v after consensus time %v",
			res.Outcome.EpsTime, res.Outcome.ConsensusTime)
	}
}

func TestDeterministicReplay(t *testing.T) {
	cfg := Config{N: 500, K: 3, Alpha: 2, Seed: 42}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.EndTime != b.EndTime || a.Events != b.Events ||
		a.Outcome.Winner != b.Outcome.Winner {
		t.Fatalf("replay diverged: t=%v/%v events=%d/%d",
			a.EndTime, b.EndTime, a.Events, b.Events)
	}
}

func TestPhaseLogAlternates(t *testing.T) {
	res, err := Run(Config{N: 1000, K: 4, Alpha: 2, Seed: 5, CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PhaseLog) < 3 {
		t.Fatalf("phase log too short: %v", res.PhaseLog)
	}
	// Within one generation: two-choices, then propagation; generation
	// numbers never decrease.
	for i := 1; i < len(res.PhaseLog); i++ {
		prev, cur := res.PhaseLog[i-1], res.PhaseLog[i]
		if cur.Time < prev.Time {
			t.Fatalf("phase log out of order at %d", i)
		}
		if cur.Gen < prev.Gen {
			t.Fatalf("leader generation decreased at %d: %v", i, res.PhaseLog)
		}
		if cur.Gen == prev.Gen && !(prev.Phase == PhaseTwoChoices && cur.Phase == PhasePropagation) {
			t.Fatalf("phase within gen %d did not go two-choices->propagation", cur.Gen)
		}
		if cur.Gen == prev.Gen+1 && cur.Phase != PhaseTwoChoices {
			t.Fatalf("new generation %d did not start in two-choices", cur.Gen)
		}
	}
}

func TestTwoChoicesPhaseDuration(t *testing.T) {
	// Proposition 16: the two-choices phase of each generation lasts about
	// C3/C1 = 2 time units (within generous tolerance: signal latencies
	// delay the counter).
	res, err := Run(Config{N: 4000, K: 2, Alpha: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	unit := res.C1
	type span struct{ start, end float64 }
	spans := map[int]*span{}
	for _, ev := range res.PhaseLog {
		switch ev.Phase {
		case PhaseTwoChoices:
			spans[ev.Gen] = &span{start: ev.Time, end: -1}
		case PhasePropagation:
			if s := spans[ev.Gen]; s != nil {
				s.end = ev.Time
			}
		}
	}
	checked := 0
	for gen, s := range spans {
		if s.end < 0 {
			continue
		}
		units := (s.end - s.start) / unit
		if units < 1 || units > 5 {
			t.Errorf("gen %d two-choices phase lasted %.2f units, want ~2", gen, units)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no completed two-choices phases measured")
	}
}

func TestGenerationsBounded(t *testing.T) {
	res, err := Run(Config{N: 1000, K: 4, Alpha: 2, Seed: 9, CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Trajectory {
		if p.MaxGen > res.GStar {
			t.Fatalf("node generation %d exceeds G* = %d", p.MaxGen, res.GStar)
		}
	}
}

func TestSuccessRateAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed success-rate sweep skipped in -short mode")
	}
	wins := 0
	const trials = 10
	for seed := 0; seed < trials; seed++ {
		res, err := Run(Config{N: 1000, K: 4, Alpha: 2.5, Seed: uint64(seed)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome.PluralityWon && res.Outcome.FullConsensus {
			wins++
		}
	}
	if wins < trials-1 {
		t.Errorf("plurality won only %d/%d runs", wins, trials)
	}
}

func TestSlowLatency(t *testing.T) {
	// With mean latency 5 (λ = 0.2) the protocol must still converge, just
	// proportionally slower (time units stretch with 1/λ).
	res, err := Run(Config{
		N: 800, K: 2, Alpha: 2.5, Seed: 11,
		Latency: sim.ExpLatency{Rate: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outcome.FullConsensus {
		t.Fatalf("no consensus with slow latency by t=%v (timeout %v)", res.EndTime, res.TimedOut)
	}
	if res.C1 < 30 {
		t.Errorf("C1 = %v for λ=0.2, expected ≈ 5× the λ=1 value (~53)", res.C1)
	}
}

func TestConstantLatencyAging(t *testing.T) {
	// Positive-aging variant: deterministic latencies.
	res, err := Run(Config{
		N: 800, K: 2, Alpha: 2.5, Seed: 13,
		Latency: sim.ConstLatency{D: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outcome.FullConsensus {
		t.Fatalf("no consensus with constant latency (timeout %v)", res.TimedOut)
	}
}

func TestMonochromaticInput(t *testing.T) {
	assign := make([]opinion.Opinion, 200)
	res, err := Run(Config{N: 200, K: 2, Assignment: assign, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outcome.FullConsensus || res.Outcome.Winner != 0 {
		t.Fatalf("monochromatic input broke: %v", res.Outcome)
	}
	if res.Outcome.ConsensusTime != 0 {
		t.Errorf("consensus time %v, want 0", res.Outcome.ConsensusTime)
	}
}

func TestEstimateC1MatchesGammaBound(t *testing.T) {
	// For exponential latencies, the exact T3 is stochastically dominated
	// by the Γ(7, β) majorant, so measured C1 must be at most the majorant
	// quantile, and within a sane factor of it.
	for _, rate := range []float64{0.5, 1, 2} {
		got := EstimateC1(sim.ExpLatency{Rate: rate}, 1)
		beta := math.Min(1, rate)
		bound := xrand.GammaQuantile(7, beta, 0.9)
		if got > bound {
			t.Errorf("λ=%v: measured C1 %v exceeds Γ(7,β) majorant %v", rate, got, bound)
		}
		if got < bound/4 {
			t.Errorf("λ=%v: measured C1 %v implausibly far below majorant %v", rate, got, bound)
		}
	}
}

func TestEstimateC1Deterministic(t *testing.T) {
	a := EstimateC1(sim.ExpLatency{Rate: 1}, 7)
	b := EstimateC1(sim.ExpLatency{Rate: 1}, 7)
	if a != b {
		t.Fatalf("EstimateC1 not deterministic: %v vs %v", a, b)
	}
}

func TestQuickselect(t *testing.T) {
	r := xrand.New(17)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64()
		}
		k := r.Intn(n)
		cp := make([]float64, n)
		copy(cp, xs)
		got := quickselect(xs, k)
		sort.Float64s(cp)
		if got != cp[k] {
			t.Fatalf("quickselect(k=%d) = %v, want %v", k, got, cp[k])
		}
	}
}

func TestLeaderLoadAccounting(t *testing.T) {
	// §4.5: the designated leader serves Θ(n) requests per time unit —
	// every node's tick produces a 0-signal plus, per completed operation,
	// one state read.
	res, err := Run(Config{N: 1000, K: 2, Alpha: 3, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalLeaderMessages == 0 {
		t.Fatal("no leader messages accounted")
	}
	if res.PeakLeaderLoad < float64(1000)*res.C1/4 {
		t.Errorf("peak leader load %v implausibly low for n=1000 (C1=%v)",
			res.PeakLeaderLoad, res.C1)
	}
}

func TestSignalLossTolerated(t *testing.T) {
	// With 20% of signals dropped the leader's counters run slow, but the
	// protocol must still converge to the plurality opinion.
	res, err := Run(Config{N: 1000, K: 3, Alpha: 2.5, Seed: 21, SignalLoss: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outcome.FullConsensus || !res.Outcome.PluralityWon {
		t.Fatalf("20%% signal loss broke consensus: %v (timed out %v)",
			res.Outcome, res.TimedOut)
	}
}

func TestCrashFaultTolerance(t *testing.T) {
	// 30% of nodes fail-stop mid-run; the survivors must still reach
	// unanimity on the plurality opinion (consensus semantics are
	// survivor-relative with CrashFrac > 0).
	res, err := Run(Config{
		N: 1000, K: 3, Alpha: 3, Seed: 25,
		CrashFrac: 0.3, CrashTime: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outcome.FullConsensus {
		t.Fatalf("survivors did not converge (timed out %v)", res.TimedOut)
	}
	if res.Outcome.Winner != res.InitialPlurality {
		t.Errorf("survivors converged to %d, plurality was %d",
			res.Outcome.Winner, res.InitialPlurality)
	}
	if res.Outcome.ConsensusTime < 20 {
		t.Errorf("consensus at t=%v before the crash at t=20 with a 3-color input",
			res.Outcome.ConsensusTime)
	}
}

func TestCrashValidation(t *testing.T) {
	if _, err := Run(Config{N: 100, K: 2, CrashFrac: 1}); err == nil {
		t.Error("CrashFrac=1 accepted")
	}
	if _, err := Run(Config{N: 100, K: 2, CrashFrac: 0.1, CrashTime: -1}); err == nil {
		t.Error("negative CrashTime accepted")
	}
}

func TestSignalLossValidation(t *testing.T) {
	if _, err := Run(Config{N: 100, K: 2, SignalLoss: 1.5}); err == nil {
		t.Error("SignalLoss > 1 accepted")
	}
	if _, err := Run(Config{N: 100, K: 2, SignalLoss: -0.1}); err == nil {
		t.Error("negative SignalLoss accepted")
	}
}

func TestMaxTimeAborts(t *testing.T) {
	res, err := Run(Config{N: 500, K: 2, Alpha: 1.0, Seed: 19, MaxTime: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut && !res.Outcome.FullConsensus {
		t.Error("run neither converged nor timed out")
	}
	if res.EndTime > 5+1 {
		t.Errorf("run continued to t=%v past MaxTime", res.EndTime)
	}
}

func BenchmarkRunN1000(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{N: 1000, K: 4, Alpha: 2, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
