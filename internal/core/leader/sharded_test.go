package leader

import (
	"reflect"
	"testing"

	"plurality/internal/adversary"
	"plurality/internal/snap"
	"plurality/internal/topo"
)

func shardedTestConfig(shards, workers int) Config {
	return Config{
		N: 3000, K: 3, Alpha: 2.5, Seed: 11,
		Shards: shards, ShardWorkers: workers,
	}
}

// resultKey projects the fields that must be reproducible; trajectories are
// compared separately where relevant.
func resultKey(t *testing.T, res *Result) [2]interface{} {
	t.Helper()
	return [2]interface{}{
		[]interface{}{
			res.Outcome.Winner, res.Outcome.PluralityWon, res.Outcome.FullConsensus,
			res.Outcome.ConsensusTime, res.Outcome.EpsReached, res.Outcome.EpsTime,
			res.EndTime, res.Events, res.TimedOut,
			res.TotalLeaderMessages, res.PeakLeaderLoad,
		},
		[]interface{}{res.FinalCounts, res.PhaseLog},
	}
}

// TestShardedLeaderConverges checks the sharded kernel still implements the
// protocol: on the complete graph (the paper's model) plurality wins with
// full consensus for every shard count; on the torus — where even the
// serial engine only reaches plurality dominance within the horizon — the
// sharded runs must do the same.
func TestShardedLeaderConverges(t *testing.T) {
	for _, shards := range []int{2, 3, 8} {
		for _, tp := range []string{"complete", "torus"} {
			cfg := shardedTestConfig(shards, 0)
			if tp == "torus" {
				g, err := topo.NewTorus(50, 60)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Topo = g
				cfg.MaxTime = 300 // plurality dominance shows early; don't run the full horizon
			}
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("shards=%d topo=%s: %v", shards, tp, err)
			}
			if tp == "complete" && !res.Outcome.FullConsensus {
				t.Fatalf("shards=%d topo=%s: no full consensus (winner %d, initial %d)",
					shards, tp, res.Outcome.Winner, res.InitialPlurality)
			}
			if !res.Outcome.PluralityWon {
				t.Fatalf("shards=%d topo=%s: plurality lost (winner %d, initial %d)",
					shards, tp, res.Outcome.Winner, res.InitialPlurality)
			}
			if res.Events == 0 || res.EndTime <= 0 {
				t.Fatalf("shards=%d topo=%s: empty run: %+v", shards, tp, res)
			}
		}
	}
}

// TestShardedLeaderWorkerInvariance pins determinism contract #1: for a
// fixed shard count the full result — outcome, counts, phase log, event
// totals, trajectory — is invariant to the worker bound.
func TestShardedLeaderWorkerInvariance(t *testing.T) {
	ref, err := Run(shardedTestConfig(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	refKey := resultKey(t, ref)
	for _, workers := range []int{2, 3, 4, 9} {
		res, err := Run(shardedTestConfig(4, workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if key := resultKey(t, res); !reflect.DeepEqual(key, refKey) {
			t.Fatalf("workers=%d diverged:\n got %+v\nwant %+v", workers, key, refKey)
		}
		if !reflect.DeepEqual(res.Trajectory, ref.Trajectory) {
			t.Fatalf("workers=%d: trajectory diverged", workers)
		}
	}
}

// TestShardedLeaderReproducible pins determinism contract #2: rerunning the
// same (config, seed, shards) reproduces the result exactly.
func TestShardedLeaderReproducible(t *testing.T) {
	a, err := Run(shardedTestConfig(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(shardedTestConfig(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resultKey(t, a), resultKey(t, b)) {
		t.Fatalf("two identical sharded runs diverged:\n%+v\n%+v", resultKey(t, a), resultKey(t, b))
	}
}

// TestShardedLeaderRejectsUnsupported pins the documented gating: sharded
// runs reject adversaries and checkpoints, and shard counts outside [0, N].
func TestShardedLeaderRejectsUnsupported(t *testing.T) {
	base := shardedTestConfig(2, 0)

	cfg := base
	cfg.CrashFrac = 0.1
	if _, err := Run(cfg); err == nil {
		t.Error("sharded run with CrashFrac accepted, want error")
	}
	cfg = base
	cfg.Adv = adversary.Config{Kind: adversary.Crash, Fraction: 0.1}
	if _, err := Run(cfg); err == nil {
		t.Error("sharded run with adversary accepted, want error")
	}
	cfg = base
	cfg.Ckpt = &snap.Checkpoint{At: 1, Sink: func([]byte, float64, uint64) {}}
	if _, err := Run(cfg); err == nil {
		t.Error("sharded run with checkpoint accepted, want error")
	}
	cfg = base
	cfg.Shards = -1
	if _, err := Run(cfg); err == nil {
		t.Error("negative shard count accepted, want error")
	}
	cfg = base
	cfg.Shards = cfg.N + 1
	if _, err := Run(cfg); err == nil {
		t.Error("Shards > N accepted, want error")
	}
}

// TestShardedLeaderSignalLoss exercises the one robustness knob the sharded
// path supports: lossy signals stretch phases but must not break
// convergence.
func TestShardedLeaderSignalLoss(t *testing.T) {
	cfg := shardedTestConfig(2, 0)
	cfg.SignalLoss = 0.2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outcome.FullConsensus {
		t.Fatalf("no consensus under 20%% signal loss: %+v", res.Outcome)
	}
}
