package leader

import (
	"fmt"

	"plurality/internal/metrics"
	"plurality/internal/opinion"
	"plurality/internal/snap"
)

// Sharded checkpointing. A capture happens only at a window barrier — the
// single point where every shard is parked, the outboxes are drained, the
// window delta lists are empty and the published copies equal the live
// state — so one serialized pass over the global arrays plus one per-shard
// section (ladder, clocks, RNG substreams, and for adversarial runs the
// decision-view counters and the parked-event arena) is a globally
// consistent cut. The payload leads with the shard count: a blob taken at
// Shards=S resumes bit-exactly at Shards=S and is rejected with
// snap.ErrShardCount at any other count.

// capture serializes the sharded run's mutable state at barrier time t and
// hands it to the checkpoint sink.
func (r *shardedRun) capture(t, nextRec float64) error {
	w := &snap.Writer{}
	w.Int(r.cfg.Shards)
	w.F64(t)
	w.F64(nextRec)
	opinion.EncodeSlice(w, r.cols)
	w.I32s(r.gens)
	w.Bools(r.locked)
	w.I32s(r.seenG)
	w.Bools(r.seenP)
	opinion.EncodeCounts(w, r.colorCount)
	w.Ints(r.genCount)
	w.Int(r.maxGen)
	w.Int(r.leaderGen)
	w.Bool(r.leaderProp)
	w.Int(r.leaderT)
	w.Int(r.leaderSize)
	w.I32(r.loadBucket)
	w.U64(r.loadCount)
	w.U64(r.peakLoad)
	w.Bool(r.mono)
	w.F64(r.monoAt)
	w.U64(r.res.TotalLeaderMessages)
	w.Bool(r.res.TimedOut)
	w.Len32(len(r.res.PhaseLog))
	for _, pe := range r.res.PhaseLog {
		w.F64(pe.Time)
		w.Int(pe.Gen)
		w.Int(int(pe.Phase))
	}
	metrics.EncodeRecorder(w, r.rec)
	for _, ss := range r.shards {
		if err := ss.sm.EncodeState(w); err != nil {
			return err
		}
		ss.clocks.EncodeState(w)
		w.RNG(ss.tickR)
		w.RNG(ss.latR)
	}
	if r.adv != nil {
		w.Bools(r.crashed)
		w.Int(r.aliveN)
		w.Bool(r.advDone)
		r.adv.EncodeShardState(w)
		for _, ss := range r.shards {
			ss.view.EncodeState(w)
			ss.payload.EncodeState(w)
		}
	}
	var events uint64
	for _, sm := range r.sims {
		events += sm.Processed()
	}
	r.cfg.Ckpt.Sink(w.Bytes(), t, events)
	r.captured = true
	return nil
}

// restore overwrites the sharded run's mutable state from a captured
// payload. It runs after the deterministic setup (which rebuilt the shard
// layout, the RNG substream tree and the adversary from the same seed) and
// instead of the initial clock scheduling.
func (r *shardedRun) restore(state []byte, perturb uint64) error {
	rd := snap.NewReader(state)
	shards := rd.Int()
	if err := rd.Err(); err != nil {
		return fmt.Errorf("leader: sharded state: %w", err)
	}
	if shards != r.cfg.Shards {
		return fmt.Errorf("leader: %w: blob captured at Shards=%d, resumed at Shards=%d", snap.ErrShardCount, shards, r.cfg.Shards)
	}
	t := rd.F64()
	nextRec := rd.F64()
	cols, err := opinion.DecodeSlice(rd, r.cfg.K)
	if err != nil {
		return fmt.Errorf("leader: opinions: %w", err)
	}
	gens := rd.I32s()
	locked := rd.Bools()
	seenG := rd.I32s()
	seenP := rd.Bools()
	colorCount, err := opinion.DecodeCounts(rd, r.cfg.K)
	if err != nil {
		return fmt.Errorf("leader: color counts: %w", err)
	}
	genCount := rd.Ints()
	maxGen := rd.Int()
	leaderGen := rd.Int()
	leaderProp := rd.Bool()
	leaderT := rd.Int()
	leaderSize := rd.Int()
	loadBucket := rd.I32()
	loadCount := rd.U64()
	peakLoad := rd.U64()
	mono := rd.Bool()
	monoAt := rd.F64()
	leaderMsgs := rd.U64()
	timedOut := rd.Bool()
	nPhases := rd.Len32(24)
	if err := rd.Err(); err != nil {
		return fmt.Errorf("leader: sharded state: %w", err)
	}
	phaseLog := make([]PhaseEvent, nPhases)
	for i := range phaseLog {
		phaseLog[i] = PhaseEvent{Time: rd.F64(), Gen: rd.Int(), Phase: Phase(rd.Int())}
	}
	if err := metrics.DecodeRecorder(rd, r.rec); err != nil {
		return fmt.Errorf("leader: recorder: %w", err)
	}
	for _, ss := range r.shards {
		if err := ss.sm.DecodeState(rd); err != nil {
			return fmt.Errorf("leader: shard %d kernel state: %w", ss.id, err)
		}
		if err := ss.clocks.DecodeState(rd); err != nil {
			return fmt.Errorf("leader: shard %d clock state: %w", ss.id, err)
		}
		if err := rd.ReadRNG(ss.tickR); err != nil {
			return fmt.Errorf("leader: shard %d sampling rng: %w", ss.id, err)
		}
		if err := rd.ReadRNG(ss.latR); err != nil {
			return fmt.Errorf("leader: shard %d latency rng: %w", ss.id, err)
		}
	}
	if r.adv != nil {
		crashed := rd.Bools()
		aliveN := rd.Int()
		advDone := rd.Bool()
		if err := r.adv.DecodeShardState(rd); err != nil {
			return fmt.Errorf("leader: adversary state: %w", err)
		}
		for _, ss := range r.shards {
			if err := ss.view.DecodeState(rd); err != nil {
				return fmt.Errorf("leader: shard %d adversary view: %w", ss.id, err)
			}
			if err := ss.payload.DecodeState(rd); err != nil {
				return fmt.Errorf("leader: shard %d payload arena: %w", ss.id, err)
			}
		}
		if len(crashed) != r.cfg.N {
			return fmt.Errorf("leader: %w: crashed flags for %d nodes, want %d", snap.ErrCorrupt, len(crashed), r.cfg.N)
		}
		if aliveN < 0 || aliveN > r.cfg.N {
			return fmt.Errorf("leader: %w: aliveN %d outside [0, %d]", snap.ErrCorrupt, aliveN, r.cfg.N)
		}
		r.crashed = crashed
		r.aliveN = aliveN
		r.advDone = advDone
	}
	if err := rd.Finish(); err != nil {
		return fmt.Errorf("leader: sharded state: %w", err)
	}
	n := r.cfg.N
	if len(cols) != n || len(gens) != n || len(locked) != n || len(seenG) != n || len(seenP) != n {
		return fmt.Errorf("leader: %w: node-state length mismatch (blob for a different N?)", snap.ErrCorrupt)
	}
	if len(genCount) != len(r.genCount) {
		return fmt.Errorf("leader: %w: generation-state length mismatch (blob for a different G*?)", snap.ErrCorrupt)
	}
	if maxGen < 0 || maxGen >= len(genCount) || leaderGen < 1 || leaderGen > r.gStar {
		return fmt.Errorf("leader: %w: generation indices out of range", snap.ErrCorrupt)
	}
	r.cols = cols
	r.gens = gens
	r.locked = locked
	r.seenG = seenG
	r.seenP = seenP
	r.colorCount = colorCount
	r.genCount = genCount
	r.maxGen = maxGen
	r.leaderGen = leaderGen
	r.leaderProp = leaderProp
	r.leaderT = leaderT
	r.leaderSize = leaderSize
	r.loadBucket = loadBucket
	r.loadCount = loadCount
	r.peakLoad = peakLoad
	r.mono = mono
	r.monoAt = monoAt
	r.res.TotalLeaderMessages = leaderMsgs
	r.res.TimedOut = timedOut
	r.res.PhaseLog = phaseLog
	// At a barrier the published copies equal the live state, so the cut
	// did not serialize them; rebuild both here.
	copy(r.pubCols, r.cols)
	copy(r.pubGens, r.gens)
	r.pubLeaderGen = int32(r.leaderGen)
	r.pubLeaderProp = r.leaderProp
	r.resumed = true
	r.resumedT = t
	r.resumedRec = nextRec
	if perturb != 0 {
		for _, ss := range r.shards {
			ss.tickR.Perturb(perturb)
			ss.latR.Perturb(perturb)
			ss.clocks.Perturb(perturb)
		}
		if r.adv != nil {
			r.adv.Perturb(perturb)
		}
	}
	return nil
}
