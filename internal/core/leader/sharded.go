package leader

import (
	"context"
	"math"

	"plurality/internal/adversary"
	"plurality/internal/core/syncgen"
	"plurality/internal/metrics"
	"plurality/internal/opinion"
	"plurality/internal/sim"
	"plurality/internal/topo"
	"plurality/internal/xrand"
)

// Sharded execution: conservative parallel discrete-event simulation over
// the bucketed event ladder.
//
// The node set is partitioned into S shards (topo.Partition — contiguous
// blocks for topologies whose numbering encodes locality, BFS-greedy over
// the CSR adjacency otherwise). Each shard owns an event ladder, a Poisson
// clock slab over its nodes, and private RNG substreams, and processes its
// own ticks and channel completions. Shards run concurrently inside one
// ladder-window [t, WindowEnd(t)) and synchronize at the window boundary (a
// sim.ShardRunner barrier); the 1/1024-unit bucket width is the lookahead.
//
// Determinism rests on three ownership rules:
//
//  1. Live state is owner-only. cols/gens/locked/seenG/seenP are written
//     exclusively by the owning shard; a shard reading a *remote* partner
//     sees the published copy (pubCols/pubGens), frozen at the last
//     barrier. Remote reads are therefore up to one window (1/1024 time
//     unit, far below any channel latency) stale — a defined model, not a
//     race.
//  2. The leader automaton lives on shard 0. Signals raised on shard 0
//     schedule directly; signals raised elsewhere accumulate in per-shard
//     outboxes that the barrier merges into shard 0's ladder in fixed
//     shard order — sequence numbers are assigned at merge time, so the
//     signal order is a pure function of the per-shard executions. Remote
//     shards read the leader's (gen, prop) from a published copy.
//  3. Global aggregates (color/generation tallies, §4.5 leader load,
//     monochromaticity, trajectory records) are folded from per-shard
//     deltas at barriers, giving them window granularity.
//
// Under these rules the result is a pure function of (config, seed,
// shards): worker count, GOMAXPROCS and OS scheduling are invisible
// (pinned by TestShardedLeaderWorkerInvariance and the shard golden
// digests). shards=1 does not take this path at all — Run dispatches to
// the serial kernel, keeping its byte-exact golden contract.
type shardedRun struct {
	cfg    Config
	sims   []*sim.Simulator
	shards []*shardState
	runner *sim.ShardRunner

	owner []int32 // node → shard
	local []int32 // node → index within its shard's slabs

	// Owner-write live state, indexed by global node id.
	cols   []opinion.Opinion
	gens   []int32
	locked []bool
	seenG  []int32
	seenP  []bool

	// Published copies, refreshed from per-shard dirty lists at barriers;
	// the only node state a non-owner shard may read.
	pubCols []opinion.Opinion
	pubGens []int32

	// Leader automaton (mutated only by shard 0's goroutine inside a
	// window, and by the barrier goroutine between windows).
	leaderGen     int
	leaderProp    bool
	leaderT       int
	leaderSize    int
	c3Ticks       int
	genThresh     int
	gStar         int
	pubLeaderGen  int32
	pubLeaderProp bool

	// Barrier-folded aggregates.
	colorCount []int
	genCount   []int
	maxGen     int
	mono       bool
	monoAt     float64
	loadBucket int32
	loadCount  uint64
	peakLoad   uint64

	// Adversary state. crashed/aliveN exist for honest runs too (all-false,
	// aliveN = N) so the hot-path gates need no nil checks; crash and churn
	// toggles are applied only at barriers, on the merge goroutine, which
	// makes remote crashed[] reads inside a window safe — the array is
	// frozen while shards run. adv is nil for honest runs.
	crashed []bool
	aliveN  int
	adv     *adversary.State
	advDone bool // one-shot crash pool applied

	// Checkpoint bookkeeping: captures happen at window barriers, the only
	// globally consistent cut of a sharded run.
	captured   bool
	resumed    bool
	resumedT   float64
	resumedRec float64

	maxTime   float64
	plurality opinion.Opinion
	rec       *metrics.Recorder
	res       *Result
}

// shardState is the per-shard execution context; every field is touched by
// exactly one goroutine inside a window.
type shardState struct {
	run     *shardedRun
	id      int32
	sm      *sim.Simulator
	clocks  *sim.Clocks
	tickFn  func(int)
	bs      topo.BatchSampler
	scratch topo.Scratch
	lat     sim.Latency
	tickR   *xrand.RNG
	latR    *xrand.RNG
	nodes   []int32

	// Adversarial runs only: the shard's node-keyed decision view and the
	// arena parking this shard's delayed local events (evAdvDeliver).
	view    *adversary.ShardView
	payload *sim.PayloadArena

	// Window-local products, consumed and reset by the barrier merge.
	dirty      []int32   // nodes written this window (pub refresh list)
	outAt      []float64 // cross-shard signal delivery times…
	outGen     []int32   // …and their generation payloads (0 = 0-signal)
	colorDelta []int
	genDelta   []int
	maxGen     int
	msgs       uint64 // leader-bound messages this window (§4.5)
}

// runSharded executes Algorithms 2 and 3 on the sharded kernel. cfg has
// been normalized and cfg.Shards > 1.
func runSharded(cfg Config) (*Result, error) {
	root := xrand.New(cfg.Seed)

	cols := make([]opinion.Opinion, cfg.N)
	if cfg.Assignment != nil {
		copy(cols, cfg.Assignment)
	} else {
		alpha := cfg.Alpha
		if alpha < 1 {
			alpha = 1
		}
		cols = opinion.PlantedBias(cfg.N, cfg.K, alpha, root.SplitNamed("assignment"))
	}
	initCounts := opinion.CountOf(cols, cfg.K)
	pl, _ := initCounts.TopTwo()
	alphaHat := initCounts.Bias()

	gStar := cfg.GStar
	if gStar <= 0 {
		gStar = syncgen.GenerationBudget(cfg.N, alphaHat) + 2
	}
	maxTime := cfg.MaxTime
	if maxTime <= 0 {
		perGen := cfg.C3 + cfg.C1*(math.Log(4.5*float64(cfg.K+1))/math.Log(1.4)+2)
		maxTime = 16*float64(gStar)*perGen + 30*cfg.C1*math.Log2(float64(cfg.N))
	}

	s := cfg.Shards
	owner := topo.Partition(cfg.Topo, s)
	r := &shardedRun{
		cfg:        cfg,
		sims:       make([]*sim.Simulator, s),
		shards:     make([]*shardState, s),
		owner:      owner,
		local:      make([]int32, cfg.N),
		cols:       cols,
		gens:       make([]int32, cfg.N),
		locked:     make([]bool, cfg.N),
		seenG:      make([]int32, cfg.N),
		seenP:      make([]bool, cfg.N),
		pubCols:    append([]opinion.Opinion(nil), cols...),
		pubGens:    make([]int32, cfg.N),
		leaderGen:  1,
		c3Ticks:    int(cfg.C3 * float64(cfg.N)),
		genThresh:  int(math.Ceil(cfg.GenFraction * float64(cfg.N))),
		gStar:      gStar,
		colorCount: initCounts,
		genCount:   make([]int, gStar+1),
		crashed:    make([]bool, cfg.N),
		aliveN:     cfg.N,
		maxTime:    maxTime,
		plurality:  opinion.Opinion(pl),
		res: &Result{
			InitialPlurality: opinion.Opinion(pl),
			C1:               cfg.C1,
			GStar:            gStar,
		},
	}
	if cfg.Adv.Kind != adversary.None {
		adv, err := adversary.New(cfg.Adv, xrand.New(cfg.Adv.Seed))
		if err != nil {
			return nil, err
		}
		// Node-keyed mode: ShardSetup runs unconditionally — including on
		// restore, before the blob overwrites the generator — so the key
		// seed is recomputed, never serialized.
		adv.ShardSetup()
		if _, second := initCounts.TopTwo(); second >= 0 {
			adv.SetLieTarget(int32(second))
		}
		r.adv = adv
	}
	r.genCount[0] = cfg.N
	r.pubLeaderGen = 1
	r.res.PhaseLog = append(r.res.PhaseLog,
		PhaseEvent{Time: 0, Gen: 1, Phase: PhaseTwoChoices})

	// Shard node lists in ascending id order — deterministic, and the order
	// the per-node clock RNGs are split in.
	nodes := make([][]int32, s)
	for v := 0; v < cfg.N; v++ {
		b := owner[v]
		r.local[v] = int32(len(nodes[b]))
		nodes[b] = append(nodes[b], int32(v))
	}

	// Per-shard RNG substreams: one named base per role, split once per
	// shard in shard order — a pure function of (seed, shards), independent
	// of workers. (The serial kernel consumes the same named bases without
	// the extra split, which is one reason shards=1 bypasses this path.)
	tickBase := root.SplitNamed("ticks")
	latBase := root.SplitNamed("latency")
	clockBase := root.SplitNamed("clocks")
	bs := topo.Batch(cfg.Topo)
	for b := 0; b < s; b++ {
		sm := sim.New()
		sm.Reserve(3*len(nodes[b]) + 64)
		ss := &shardState{
			run:        r,
			id:         int32(b),
			sm:         sm,
			bs:         bs,
			lat:        cfg.Latency,
			tickR:      tickBase.Split(),
			latR:       latBase.Split(),
			nodes:      nodes[b],
			colorDelta: make([]int, cfg.K+1),
			genDelta:   make([]int, gStar+1),
		}
		ss.tickFn = ss.tick
		ss.clocks = sim.NewClocksFor(sm, clockBase.Split(), nodes[b], r.local, 1, evTick)
		if r.adv != nil {
			ss.view = r.adv.View()
			ss.payload = &sim.PayloadArena{}
		}
		sm.SetHandler(ss)
		r.sims[b] = sm
		r.shards[b] = ss
	}
	r.rec = metrics.NewRecorder(cfg.Eps, cfg.DiscardTrajectory, cfg.Observe)
	if cfg.Ckpt.Restoring() {
		if err := r.restore(cfg.Ckpt.Restore, cfg.Ckpt.Perturb); err != nil {
			return nil, err
		}
	} else {
		for _, ss := range r.shards {
			ss.clocks.StartAll()
		}
	}
	r.runner = sim.NewShardRunner(r.sims, cfg.ShardWorkers)
	defer r.runner.Close()

	if err := r.loop(cfg.Ctx); err != nil {
		return nil, err
	}

	var events uint64
	for _, sm := range r.sims {
		events += sm.Processed()
	}
	r.res.Events = events
	if r.loadCount > r.peakLoad {
		r.peakLoad = r.loadCount
	}
	r.res.PeakLeaderLoad = float64(r.peakLoad)
	r.res.FinalCounts = opinion.CountOf(r.cols, cfg.K)
	if last, ok := r.rec.Last(); !ok || last.Time < r.res.EndTime {
		r.record(r.res.EndTime)
	}
	r.res.Trajectory = r.rec.Trajectory()
	r.res.Outcome = r.rec.Outcome(r.res.FinalCounts, r.plurality)
	if r.mono {
		r.res.Outcome.FullConsensus = true
		r.res.Outcome.ConsensusTime = r.monoAt
	}
	if r.adv != nil {
		c := r.adv.Counters
		for _, ss := range r.shards {
			c = c.Add(ss.view.Counters)
		}
		r.res.AdvCounters = c
	}
	return r.res, nil
}

// loop is the barrier driver: pick the next window boundary (capped by the
// record cadence, the deadline, the next crash toggle and a pending
// checkpoint cut), advance all shards to it in parallel, merge, repeat.
// Runs on the caller's goroutine. Crash toggles and checkpoint captures
// happen only here, between windows, where every shard is parked — the only
// globally consistent cuts of a sharded run.
func (r *shardedRun) loop(ctx context.Context) error {
	t := 0.0
	nextRec := r.cfg.RecordEvery
	if r.resumed {
		t, nextRec = r.resumedT, r.resumedRec
	} else {
		r.record(0)
	}
	ck := r.cfg.Ckpt
	capturing := ck.Capturing()
	for i := uint(0); ; i++ {
		if ctx != nil && i&255 == 0 {
			select {
			case <-ctx.Done():
				r.res.EndTime = t
				return ctx.Err()
			default:
			}
		}
		at, ok := r.runner.NextEventAt()
		if !ok {
			break // cannot happen while clocks run; defensive
		}
		t1 := sim.WindowEnd(at)
		if t1 > nextRec {
			t1 = nextRec
		}
		if t1 > r.maxTime {
			t1 = r.maxTime
		}
		// Both clamps below are no-ops for honest, uncheckpointed runs, so
		// their digests are untouched by the adversary/checkpoint layers.
		if r.adv != nil && !r.advDone {
			if ca := r.adv.NextCrashAt(); ca > t && ca < t1 {
				t1 = ca
			}
		}
		if capturing && !r.captured && ck.At > t && ck.At < t1 {
			t1 = ck.At
		}
		r.runner.Advance(t1)
		r.merge(t1)
		t = t1
		if r.adv != nil {
			r.advCrash(t1)
		}
		if r.mono {
			// Consensus is absorbing (no event can change a unanimous
			// color), so stop at this barrier instead of simulating dead
			// ticks until the next record boundary.
			r.record(t)
			break
		}
		if t == nextRec {
			r.record(t)
			nextRec += r.cfg.RecordEvery
		}
		if capturing && !r.captured && t >= ck.At {
			if err := r.capture(t, nextRec); err != nil {
				return err
			}
			if ck.Halt {
				break
			}
		}
		if t >= r.maxTime {
			if last, ok := r.rec.Last(); !ok || last.Time < t {
				r.record(t)
			}
			r.res.TimedOut = true
			break
		}
	}
	r.res.EndTime = t
	return nil
}

// advCrash applies every crash/churn toggle due by the barrier time. The
// toggle times and victim order come from the adversary's own generator,
// consumed only here on the merge goroutine — deterministic at any worker
// count. A one-shot pool (Rate == 0) fires exactly once.
func (r *shardedRun) advCrash(t1 float64) {
	changed := false
	if r.adv.Churning() {
		for {
			ca := r.adv.NextCrashAt()
			if ca < 0 || ca > t1 {
				break
			}
			v := r.adv.NextVictim()
			if r.crashed[v] {
				r.recoverNode(v)
			} else {
				r.crashNode(v)
			}
			changed = true
		}
	} else if !r.advDone {
		if ca := r.adv.NextCrashAt(); ca >= 0 && ca <= t1 {
			for _, v := range r.adv.Victims() {
				r.crashNode(v)
			}
			r.advDone = true
			changed = true
		}
	}
	// A crash can leave the survivors unanimous; detect it here like the
	// serial engine does after its crash event.
	if changed && !r.mono {
		for _, cnt := range r.colorCount {
			if cnt == r.aliveN && r.aliveN > 0 {
				r.mono = true
				r.monoAt = t1
			}
		}
	}
}

// crashNode and recoverNode adjust the live-population aggregates the same
// way the serial engine's do; they run only between windows.
func (r *shardedRun) crashNode(v int) {
	if r.crashed[v] {
		return
	}
	r.crashed[v] = true
	r.aliveN--
	r.colorCount[r.cols[v]]--
	r.adv.NoteCrash()
}

func (r *shardedRun) recoverNode(v int) {
	if !r.crashed[v] {
		return
	}
	r.crashed[v] = false
	r.aliveN++
	r.colorCount[r.cols[v]]++
	r.adv.NoteRecovery()
}

// merge is the barrier's serial phase: fold every shard's window products
// into the global state in fixed shard order. All shard goroutines are
// parked at the barrier, so plain reads and writes are safe.
func (r *shardedRun) merge(t1 float64) {
	for _, ss := range r.shards {
		for _, v := range ss.dirty {
			r.pubCols[v] = r.cols[v]
			r.pubGens[v] = r.gens[v]
		}
		ss.dirty = ss.dirty[:0]
		for k, d := range ss.colorDelta {
			if d != 0 {
				r.colorCount[k] += d
				ss.colorDelta[k] = 0
			}
		}
		for g, d := range ss.genDelta {
			if d != 0 {
				r.genCount[g] += d
				ss.genDelta[g] = 0
			}
		}
		if ss.maxGen > r.maxGen {
			r.maxGen = ss.maxGen
		}
		// Cross-shard signals: deterministic merge into shard 0's ladder.
		// A delivery time that fell inside the window just executed clamps
		// to the barrier — conservative lookahead means shard 0 has already
		// passed it.
		for i, at := range ss.outAt {
			if at < t1 {
				at = t1
			}
			r.sims[0].Schedule(at, sim.Event{Kind: evSignal, A: ss.outGen[i]})
		}
		ss.outAt = ss.outAt[:0]
		ss.outGen = ss.outGen[:0]
		r.leaderLoad(t1, ss.msgs)
		ss.msgs = 0
	}
	r.pubLeaderGen = int32(r.leaderGen)
	r.pubLeaderProp = r.leaderProp
	if !r.mono {
		for _, cnt := range r.colorCount {
			if cnt == r.aliveN && r.aliveN > 0 {
				r.mono = true
				r.monoAt = t1
			}
		}
	}
}

// leaderLoad folds one shard's window message count into the §4.5
// congestion metric at window granularity (windows are ~C1/1000 wide, so
// the bucket attribution error is negligible).
func (r *shardedRun) leaderLoad(t float64, msgs uint64) {
	if msgs == 0 {
		return
	}
	r.res.TotalLeaderMessages += msgs
	bucket := int32(t / r.cfg.C1)
	if bucket != r.loadBucket {
		if r.loadCount > r.peakLoad {
			r.peakLoad = r.loadCount
		}
		r.loadBucket = bucket
		r.loadCount = 0
	}
	r.loadCount += msgs
}

// record appends one trajectory snapshot at barrier time t.
func (r *shardedRun) record(t float64) {
	p := metrics.Snapshot(t, r.cols, r.cfg.K, r.plurality)
	p.MaxGen = r.maxGen
	p.MaxGenFrac = float64(r.genCount[r.maxGen]) / float64(r.cfg.N)
	r.rec.Append(p)
}

// HandleEvent dispatches one shard's typed events; it runs on a worker
// goroutine inside a window and touches only shard-owned and published
// state.
func (ss *shardState) HandleEvent(ev sim.Event) {
	switch ev.Kind {
	case evTick:
		ss.clocks.Fire(ev.Node, ss.tickFn)
	case evSignal:
		// Routed to shard 0 only (directly or through the outbox merge).
		ss.run.leaderSignal2(int(ev.A), ss)
	case evComplete:
		ss.complete(int(ev.Node), int(ev.A), int(ev.B))
	case evAdvDeliver:
		// A delayed local event reaching its stretched delivery time;
		// unpark and dispatch it.
		ss.HandleEvent(ss.payload.Take(ev.A))
	}
}

// signal sends an i-signal from node v to the leader: shard 0 schedules it
// on its own ladder, every other shard appends it to the window outbox. A
// delay adversary stretches the delivery time in place rather than parking:
// the payload is a bare generation number, and a stretched outbox entry
// redelivers through the same window-barrier merge either way.
func (ss *shardState) signal(v int, d float64, gen int32) {
	if ss.view != nil {
		d += ss.view.DelayExtra(v, ss.lat)
	}
	if ss.id == 0 {
		ss.sm.ScheduleAfter(d, sim.Event{Kind: evSignal, A: gen})
		return
	}
	ss.outAt = append(ss.outAt, ss.sm.Now()+d)
	ss.outGen = append(ss.outGen, gen)
}

// sendMsg schedules a shard-local protocol message, giving the delay
// adversary a chance to stretch the delivery: a delayed message parks the
// original event in the shard's payload arena and is re-dispatched by
// evAdvDeliver. Honest runs take the plain path untouched.
func (ss *shardState) sendMsg(v int, d float64, ev sim.Event) {
	if ss.view != nil {
		if extra := ss.view.DelayExtra(v, ss.lat); extra > 0 {
			ss.sm.ScheduleAfter(d+extra, sim.Event{Kind: evAdvDeliver, A: ss.payload.Put(ev)})
			return
		}
	}
	ss.sm.ScheduleAfter(d, ev)
}

// tick is Algorithm 2 lines 1-3 for one owned node.
func (ss *shardState) tick(v int) {
	r := ss.run
	if r.mono || r.crashed[v] {
		return
	}
	loss := r.cfg.SignalLoss
	if loss == 0 || !ss.latR.Bernoulli(loss) {
		ss.signal(v, ss.lat.Sample(ss.latR), 0)
	}
	if r.locked[v] {
		return
	}
	r.locked[v] = true
	vs, out := ss.scratch.Buffers(2)
	vs[0], vs[1] = int32(v), int32(v)
	ss.bs.SampleNeighbors(ss.tickR, vs, out)
	d := math.Max(ss.lat.Sample(ss.latR), ss.lat.Sample(ss.latR)) +
		ss.lat.Sample(ss.latR)
	ss.sendMsg(v, d, sim.Event{Kind: evComplete, Node: int32(v), A: out[0], B: out[1]})
}

// read returns a partner's (color, generation): live for owned nodes,
// published (last barrier) for remote ones — ownership rule 1.
func (ss *shardState) read(x int) (opinion.Opinion, int32) {
	r := ss.run
	if r.owner[x] == ss.id {
		return r.cols[x], r.gens[x]
	}
	return r.pubCols[x], r.pubGens[x]
}

// complete is Algorithm 2 lines 5-15 for one owned node. Remote partners'
// crashed flags are frozen inside a window (toggles happen only at
// barriers), so the liveness reads here are safe at any worker count.
func (ss *shardState) complete(v, a, b int) {
	r := ss.run
	r.locked[v] = false
	if r.mono || r.crashed[v] {
		return
	}
	ss.msgs++ // the leader state read
	var lGen int
	var lProp bool
	if ss.id == 0 {
		lGen, lProp = r.leaderGen, r.leaderProp
	} else {
		lGen, lProp = int(r.pubLeaderGen), r.pubLeaderProp
	}
	if int(r.seenG[v]) != lGen || r.seenP[v] != lProp {
		r.seenG[v] = int32(lGen)
		r.seenP[v] = lProp
		return
	}
	aUp, bUp := !r.crashed[a], !r.crashed[b]
	colA, gA := ss.read(a)
	colB, gB := ss.read(b)
	if ss.view != nil {
		aUp = aUp && !ss.view.DropMessage(v)
		bUp = bUp && !ss.view.DropMessage(v)
		colA = opinion.Opinion(ss.view.Lie(a, int32(colA)))
		colB = opinion.Opinion(ss.view.Lie(b, int32(colB)))
	}
	if aUp && bUp && !lProp && gA == gB && int(gA) == lGen-1 && colA == colB {
		ss.setNode(v, colA, int32(lGen))
		return
	}
	pick := false
	var pickGen int32 = -1
	var pickCol opinion.Opinion
	gv := r.gens[v]
	if aUp && gA > gv && (int(gA) < lGen || lProp) && gA > pickGen {
		pick, pickGen, pickCol = true, gA, colA
	}
	if bUp && gB > gv && (int(gB) < lGen || lProp) && gB > pickGen {
		pick, pickGen, pickCol = true, gB, colB
	}
	if pick {
		ss.setNode(v, pickCol, pickGen)
	}
}

// setNode commits a color/generation update of an owned node, tracks the
// window deltas, and raises the line 12 gen-signal on increase.
func (ss *shardState) setNode(v int, col opinion.Opinion, gen int32) {
	r := ss.run
	old := r.cols[v]
	oldGen := r.gens[v]
	if old == col && oldGen == gen {
		return
	}
	r.cols[v] = col
	r.gens[v] = gen
	ss.dirty = append(ss.dirty, int32(v))
	if old != col {
		ss.colorDelta[old]--
		ss.colorDelta[col]++
	}
	if gen != oldGen {
		ss.genDelta[oldGen]--
		ss.genDelta[gen]++
		if int(gen) > ss.maxGen {
			ss.maxGen = int(gen)
		}
		if gen > oldGen {
			loss := r.cfg.SignalLoss
			if loss == 0 || !ss.latR.Bernoulli(loss) {
				ss.signal(v, ss.lat.Sample(ss.latR), gen)
			}
		}
	}
}

// leaderSignal2 is Algorithm 3 on the sharded kernel; it executes only
// inside shard 0's window, so the leader automaton has a single writer.
func (r *shardedRun) leaderSignal2(i int, ss *shardState) {
	ss.msgs++
	if r.mono {
		return
	}
	if i == 0 {
		r.leaderT++
		if !r.leaderProp && r.leaderT >= r.c3Ticks {
			r.leaderProp = true
			r.res.PhaseLog = append(r.res.PhaseLog, PhaseEvent{
				Time: ss.sm.Now(), Gen: r.leaderGen, Phase: PhasePropagation})
		}
	}
	if i == r.leaderGen {
		r.leaderSize++
		if r.leaderSize >= r.genThresh && r.leaderGen < r.gStar {
			r.leaderGen++
			r.leaderT = 0
			r.leaderSize = 0
			r.leaderProp = false
			r.res.PhaseLog = append(r.res.PhaseLog, PhaseEvent{
				Time: ss.sm.Now(), Gen: r.leaderGen, Phase: PhaseTwoChoices})
		}
	}
}
