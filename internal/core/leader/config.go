// Package leader implements the paper's asynchronous plurality-consensus
// protocol with a designated leader (Algorithms 2 and 3, §3).
//
// Every node owns a rate-1 Poisson clock. On a tick it sends a 0-signal to
// the leader (fire-and-forget, latency T2) and — unless it is locked by an
// earlier attempt — dials two random nodes in parallel and then the leader
// (accumulated latency max(T2,T2)+T2). When all three channels are up it
// reads the sampled nodes' states and the leader's (gen, prop) pair and
// applies a two-choices or a propagation step, but only if the leader state
// matches what it saw on its previous leader contact; this "seen it twice"
// rule is what keeps two-choices and propagation steps of one generation
// from interleaving. The leader is purely reactive: it counts 0-signals as a
// clock and gen-signals as a population estimate of the newest generation,
// flipping prop after C3·n ticks and advancing gen when the newest
// generation reaches half the system.
package leader

import (
	"context"
	"fmt"
	"math"

	"plurality/internal/adversary"
	"plurality/internal/metrics"
	"plurality/internal/opinion"
	"plurality/internal/sim"
	"plurality/internal/snap"
	"plurality/internal/topo"
	"plurality/internal/xrand"
)

// Config parametrizes one asynchronous single-leader run.
type Config struct {
	// N is the number of nodes (>= 2) and K the number of opinions (>= 1).
	N, K int
	// Alpha builds a planted-bias assignment when Assignment is nil.
	Alpha float64
	// Assignment optionally fixes the initial opinions (not mutated).
	Assignment []opinion.Opinion
	// Latency is the channel-establishment distribution T2; default
	// sim.ExpLatency{Rate: 1}, the paper's model with λ = 1.
	Latency sim.Latency
	// Topo is the interaction graph the two random contacts are sampled
	// from; nil means the complete graph on N nodes (the paper's model).
	// Its size must equal N. The leader channel is unaffected: 0- and
	// gen-signals reach the leader on any topology.
	Topo topo.Sampler
	// C1 is the number of time steps per time unit; default the measured
	// 0.9-quantile of T3 = T'2 + T1 + T'2 for the configured latency
	// (§3.1). It only affects the derived C3 default and reporting.
	C1 float64
	// C3 is the 0-signal count threshold (divided by N) after which the
	// leader allows propagation; default 2·C1, making the two-choices
	// phase last about two time units (Proposition 16).
	C3 float64
	// GenFraction is the fraction of N the newest generation must reach
	// (measured in gen-signals) before the leader allows the next
	// generation; default 0.5 (the ⌈n/2⌉ of Algorithm 3).
	GenFraction float64
	// GStar caps the number of generations; default
	// syncgen.GenerationBudget(N, α̂) + 2 (see the syncgen documentation
	// for why the Lemma 11 tail needs the slack).
	GStar int
	// MaxTime aborts a run that fails to converge (virtual time steps);
	// default derived from the theoretical horizon with a ×16 safety
	// factor.
	MaxTime float64
	// Seed drives all randomness of the run.
	Seed uint64
	// RecordEvery sets the snapshot interval in time steps; default C1
	// (one snapshot per time unit).
	RecordEvery float64
	// Eps defines ε-convergence for the reported outcome; default
	// 1/log² n, matching the 1/polylog n statement of Theorem 13.
	Eps float64
	// CheckInvariants enables the §3.2 invariant assertions (node
	// generation never exceeds the leader's; no two-choices promotion into
	// a generation after its propagation phase started). Panics on
	// violation; meant for tests.
	CheckInvariants bool
	// SignalLoss drops each 0-signal and gen-signal independently with
	// this probability — a robustness extension beyond the paper (§5
	// discusses model generalizations): the leader's tick counter and
	// population estimate then run slow, which stretches phases but must
	// not break correctness. Must lie in [0, 1).
	SignalLoss float64
	// CrashFrac is the fraction of non-leader nodes that fail-stop at
	// CrashTime — another robustness extension (the paper's §4 motivates
	// decentralization by resilience but does not model failures). Crashed
	// nodes stop ticking and become unreadable when sampled. With
	// CrashFrac > 0, FullConsensus and ConsensusTime in the result refer
	// to the surviving nodes. Must lie in [0, 1). This is the legacy knob:
	// it now runs on the shared adversary subsystem (the victim set and its
	// substream are unchanged, so legacy runs are bit-identical) and is
	// mutually exclusive with Adv.
	CrashFrac float64
	// CrashTime is the virtual time of the crash event (>= 0).
	CrashTime float64
	// Adv configures the shared adversary layer (crash/churn, message
	// delay/drop, Byzantine lying; see internal/adversary). The zero value
	// disables it; the adversary draws from its own generator, so honest
	// runs are byte-identical whether or not the field existed.
	Adv adversary.Config
	// Ctx cancels or bounds the run; polled every few hundred simulator
	// events. nil means never cancelled.
	Ctx context.Context
	// Ckpt requests a mid-run state capture and/or resumes from one; nil
	// disables checkpointing. See snap.Checkpoint for the semantics shared
	// by every engine.
	Ckpt *snap.Checkpoint
	// Observe, when non-nil, receives every recorded snapshot as it
	// happens.
	Observe func(metrics.Point)
	// DiscardTrajectory leaves Result.Trajectory empty, keeping O(1)
	// recording memory; the Outcome is evaluated incrementally instead.
	DiscardTrajectory bool
	// Scratch optionally supplies reusable batch-sampling buffers; nil
	// allocates run-local ones. The public batch layer passes one per
	// worker so replications sharing a worker share buffers. Sharded runs
	// (Shards > 1) ignore it and use per-shard buffers.
	Scratch *topo.Scratch
	// Shards splits the node set across this many event ladders run in
	// parallel and synchronized at ladder-window barriers (conservative
	// PDES; see runSharded). 0 or 1 selects the serial kernel, whose
	// output is byte-identical to every release since the ladder landed.
	// For fixed Shards > 1 the result is a pure function of (config, seed,
	// shards) — reproducible, but a different sample path than the serial
	// kernel's. Sharded runs support adversaries (Adv; decisions are keyed
	// by node id, see adversary.ShardView) and checkpointing (captured at a
	// window barrier; a blob taken at Shards=S resumes only at Shards=S),
	// but reject the legacy CrashFrac knob and skip CheckInvariants (remote
	// leader-state reads are one window stale, so the §3.2 assertions do
	// not apply verbatim).
	Shards int
	// ShardWorkers bounds the worker pool driving the shards; 0 means
	// GOMAXPROCS. Any value produces identical results (worker-count
	// invariance), it only changes how much hardware parallelism is used.
	ShardWorkers int
}

func (cfg *Config) normalize() error {
	if cfg.N < 2 {
		return fmt.Errorf("leader: need N >= 2, got %d", cfg.N)
	}
	if cfg.K < 1 {
		return fmt.Errorf("leader: need K >= 1, got %d", cfg.K)
	}
	if cfg.Assignment != nil && len(cfg.Assignment) != cfg.N {
		return fmt.Errorf("leader: assignment length %d != N %d", len(cfg.Assignment), cfg.N)
	}
	if cfg.Latency == nil {
		cfg.Latency = sim.ExpLatency{Rate: 1}
	}
	tp, err := topo.OrComplete(cfg.Topo, cfg.N)
	if err != nil {
		return fmt.Errorf("leader: %w", err)
	}
	cfg.Topo = tp
	if cfg.GenFraction == 0 {
		cfg.GenFraction = 0.5
	}
	if cfg.GenFraction <= 0 || cfg.GenFraction >= 1 {
		return fmt.Errorf("leader: GenFraction %v outside (0,1)", cfg.GenFraction)
	}
	if cfg.C1 <= 0 {
		cfg.C1 = EstimateC1(cfg.Latency, cfg.Seed)
	}
	if cfg.C3 <= 0 {
		cfg.C3 = 2 * cfg.C1
	}
	if cfg.RecordEvery <= 0 {
		cfg.RecordEvery = cfg.C1
	}
	if cfg.Eps <= 0 {
		l := math.Log2(float64(cfg.N))
		cfg.Eps = 1 / (l * l)
	}
	if cfg.SignalLoss < 0 || cfg.SignalLoss >= 1 {
		return fmt.Errorf("leader: SignalLoss %v outside [0,1)", cfg.SignalLoss)
	}
	if cfg.CrashFrac < 0 || cfg.CrashFrac >= 1 {
		return fmt.Errorf("leader: CrashFrac %v outside [0,1)", cfg.CrashFrac)
	}
	if cfg.CrashTime < 0 {
		return fmt.Errorf("leader: negative CrashTime %v", cfg.CrashTime)
	}
	if cfg.Adv.Kind != adversary.None {
		if cfg.CrashFrac > 0 {
			return fmt.Errorf("leader: legacy CrashFrac and Adv are mutually exclusive")
		}
		cfg.Adv.N = cfg.N
	}
	if cfg.Shards < 0 {
		return fmt.Errorf("leader: negative Shards %d", cfg.Shards)
	}
	if cfg.Shards > cfg.N {
		return fmt.Errorf("leader: Shards %d exceeds N %d", cfg.Shards, cfg.N)
	}
	if cfg.Shards > 1 && cfg.CrashFrac > 0 {
		// The legacy knob's bit-compat contract is defined against the serial
		// kernel's "crash" substream; the sharded path runs the shared
		// adversary layer instead. Use Adv with Kind Crash.
		return fmt.Errorf("leader: sharded execution (Shards=%d) does not support the legacy CrashFrac; use Adv (Kind Crash) or run with Shards <= 1", cfg.Shards)
	}
	return nil
}

// EstimateC1 returns the 0.9-quantile of the waiting time
// T3 = T'2 + T1 + T'2 with T'2 = max(T2,T2) + T2, estimated by Monte-Carlo
// from the given latency distribution; the estimate is deterministic in
// seed. This is the paper's "time unit" constant C1 for arbitrary latencies;
// for exponential latencies it agrees with the Γ-majorant computation within
// sampling error (cross-checked in the E1/E11 experiments).
func EstimateC1(lat sim.Latency, seed uint64) float64 {
	r := xrand.New(seed).SplitNamed("c1-estimate")
	const samples = 40000
	xs := make([]float64, samples)
	for i := range xs {
		xs[i] = sampleT3(r, lat)
	}
	// 0.9-quantile by partial sort: simple nth-element via full sort is
	// fine at this size but avoid the dependency by counting.
	return quantile09(xs)
}

// sampleT3 draws one waiting time between two completed operations: the
// accumulated latency of the previous operation, an Exp(1) tick gap, and the
// accumulated latency of the next operation.
func sampleT3(r *xrand.RNG, lat sim.Latency) float64 {
	acc := func() float64 {
		return math.Max(lat.Sample(r), lat.Sample(r)) + lat.Sample(r)
	}
	return acc() + r.Exp(1) + acc()
}

func quantile09(xs []float64) float64 {
	// Selection by repeated partitioning would be overkill; a simple
	// insertion into a bounded max-heap of the top 10% keeps this O(n log n)
	// worst case with tiny constants. Use sort-free quickselect.
	k := int(0.9 * float64(len(xs)))
	return quickselect(xs, k)
}

// quickselect returns the k-th smallest element (0-based) of xs, reordering
// xs in place.
func quickselect(xs []float64, k int) float64 {
	lo, hi := 0, len(xs)-1
	for {
		if lo == hi {
			return xs[lo]
		}
		// Median-of-three pivot for robustness on sorted inputs.
		mid := (lo + hi) / 2
		if xs[mid] < xs[lo] {
			xs[mid], xs[lo] = xs[lo], xs[mid]
		}
		if xs[hi] < xs[lo] {
			xs[hi], xs[lo] = xs[lo], xs[hi]
		}
		if xs[hi] < xs[mid] {
			xs[hi], xs[mid] = xs[mid], xs[hi]
		}
		pivot := xs[mid]
		i, j := lo, hi
		for i <= j {
			for xs[i] < pivot {
				i++
			}
			for xs[j] > pivot {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return xs[k]
		}
	}
}
