package leader

import (
	"context"
	"fmt"

	"plurality/internal/metrics"
	"plurality/internal/opinion"
	"plurality/internal/sim"
	"plurality/internal/snap"
)

// This file implements the single-leader engine's checkpoint hooks. A
// capture serializes every mutable word of a run — the kernel event heap,
// the struct-of-arrays Poisson clocks, the sampling/latency RNG streams,
// the dense node state, the leader automaton, the congestion counters, the
// partial result and the trajectory recorder — while everything derivable
// from the Config (thresholds, the planted assignment, the victim set, the
// topology) is recomputed at restore from the same seed, keeping blobs
// small and version drift detectable.

// runSim drives the kernel through the shared checkpoint barrier
// (sim.RunCheckpointed): a run that stops before reaching Ckpt.At takes no
// snapshot.
func (rs *runState) runSim(ctx context.Context) error {
	return sim.RunCheckpointed(ctx, rs.sm, rs.cfg.Ckpt, rs.capture)
}

// capture serializes the run's mutable state.
func (rs *runState) capture() ([]byte, error) {
	w := &snap.Writer{}
	if err := rs.sm.EncodeState(w); err != nil {
		return nil, err
	}
	rs.clocks.EncodeState(w)
	w.RNG(rs.tickR)
	w.RNG(rs.latR)
	opinion.EncodeSlice(w, rs.cols)
	w.I32s(rs.gens)
	w.Bools(rs.locked)
	w.I32s(rs.seenG)
	w.Bools(rs.seenP)
	opinion.EncodeCounts(w, rs.colorCount)
	w.Ints(rs.genCount)
	w.Int(rs.maxGen)
	w.Int(rs.leaderGen)
	w.Bool(rs.leaderProp)
	w.Int(rs.leaderT)
	w.Int(rs.leaderSize)
	w.Bools(rs.propSeen)
	w.I32(rs.loadBucket)
	w.U64(rs.loadCount)
	w.U64(rs.peakLoad)
	w.Bool(rs.mono)
	w.F64(rs.monoAt)
	w.U64(rs.totalTicks)
	w.Bools(rs.crashed)
	w.Int(rs.aliveN)
	w.U64(rs.res.TotalLeaderMessages)
	w.Bool(rs.res.TimedOut)
	w.Len32(len(rs.res.PhaseLog))
	for _, pe := range rs.res.PhaseLog {
		w.F64(pe.Time)
		w.Int(pe.Gen)
		w.Int(int(pe.Phase))
	}
	metrics.EncodeRecorder(w, rs.rec)
	// Adversarial runs append the adversary generator/counters and the
	// payload arena; the suffix's presence is a pure function of the Config,
	// so capture and restore agree on it and honest (pre-adversary) blobs
	// decode unchanged.
	if rs.adv != nil {
		rs.adv.EncodeState(w)
		rs.payload.EncodeState(w)
	}
	return w.Bytes(), nil
}

// restore overwrites the run's mutable state from a captured payload and
// applies the divergence perturbation. It must run after the deterministic
// setup (which allocates every slice at its configured size) and instead of
// the initial event scheduling.
func (rs *runState) restore(state []byte, perturb uint64) error {
	r := snap.NewReader(state)
	if err := rs.sm.DecodeState(r); err != nil {
		return fmt.Errorf("leader: kernel state: %w", err)
	}
	if err := rs.clocks.DecodeState(r); err != nil {
		return fmt.Errorf("leader: clock state: %w", err)
	}
	if err := r.ReadRNG(rs.tickR); err != nil {
		return fmt.Errorf("leader: sampling rng: %w", err)
	}
	if err := r.ReadRNG(rs.latR); err != nil {
		return fmt.Errorf("leader: latency rng: %w", err)
	}
	cols, err := opinion.DecodeSlice(r, rs.cfg.K)
	if err != nil {
		return fmt.Errorf("leader: opinions: %w", err)
	}
	gens := r.I32s()
	locked := r.Bools()
	seenG := r.I32s()
	seenP := r.Bools()
	colorCount, err := opinion.DecodeCounts(r, rs.cfg.K)
	if err != nil {
		return fmt.Errorf("leader: color counts: %w", err)
	}
	genCount := r.Ints()
	maxGen := r.Int()
	leaderGen := r.Int()
	leaderProp := r.Bool()
	leaderT := r.Int()
	leaderSize := r.Int()
	propSeen := r.Bools()
	loadBucket := r.I32()
	loadCount := r.U64()
	peakLoad := r.U64()
	mono := r.Bool()
	monoAt := r.F64()
	totalTicks := r.U64()
	crashed := r.Bools()
	aliveN := r.Int()
	leaderMsgs := r.U64()
	timedOut := r.Bool()
	nPhases := r.Len32(24)
	if err := r.Err(); err != nil {
		return fmt.Errorf("leader: state: %w", err)
	}
	phaseLog := make([]PhaseEvent, nPhases)
	for i := range phaseLog {
		phaseLog[i] = PhaseEvent{Time: r.F64(), Gen: r.Int(), Phase: Phase(r.Int())}
	}
	if err := metrics.DecodeRecorder(r, rs.rec); err != nil {
		return fmt.Errorf("leader: recorder: %w", err)
	}
	if rs.adv != nil {
		if err := rs.adv.DecodeState(r); err != nil {
			return fmt.Errorf("leader: adversary state: %w", err)
		}
		if err := rs.payload.DecodeState(r); err != nil {
			return fmt.Errorf("leader: payload arena: %w", err)
		}
	}
	if err := r.Finish(); err != nil {
		return fmt.Errorf("leader: state: %w", err)
	}
	n := rs.cfg.N
	if len(cols) != n || len(gens) != n || len(locked) != n || len(seenG) != n ||
		len(seenP) != n || len(crashed) != n {
		return fmt.Errorf("leader: %w: node-state length mismatch (blob for a different N?)", snap.ErrCorrupt)
	}
	if len(genCount) != len(rs.genCount) || len(propSeen) != len(rs.propSeen) {
		return fmt.Errorf("leader: %w: generation-state length mismatch (blob for a different G*?)", snap.ErrCorrupt)
	}
	if maxGen < 0 || maxGen >= len(genCount) || leaderGen < 1 || leaderGen > rs.gStar {
		return fmt.Errorf("leader: %w: generation indices out of range", snap.ErrCorrupt)
	}
	rs.cols = cols
	rs.gens = gens
	rs.locked = locked
	rs.seenG = seenG
	rs.seenP = seenP
	rs.colorCount = colorCount
	rs.genCount = genCount
	rs.maxGen = maxGen
	rs.leaderGen = leaderGen
	rs.leaderProp = leaderProp
	rs.leaderT = leaderT
	rs.leaderSize = leaderSize
	rs.propSeen = propSeen
	rs.loadBucket = loadBucket
	rs.loadCount = loadCount
	rs.peakLoad = peakLoad
	rs.mono = mono
	rs.monoAt = monoAt
	rs.totalTicks = totalTicks
	rs.crashed = crashed
	rs.aliveN = aliveN
	rs.res.TotalLeaderMessages = leaderMsgs
	rs.res.TimedOut = timedOut
	rs.res.PhaseLog = phaseLog
	if perturb != 0 {
		rs.tickR.Perturb(perturb)
		rs.latR.Perturb(perturb)
		rs.clocks.Perturb(perturb)
		if rs.adv != nil {
			rs.adv.Perturb(perturb)
		}
	}
	return nil
}
