package leader

import (
	"reflect"
	"testing"

	"plurality/internal/snap"
)

// TestCheckpointRoundtrip pins the engine-level guarantee the public
// snapshot API builds on: running to the horizon in one piece and running
// half way, capturing, restoring into a fresh engine and finishing must
// produce deeply equal Results — same trajectory, same phase log, same
// event and message counters.
func TestCheckpointRoundtrip(t *testing.T) {
	base := Config{N: 400, K: 3, Alpha: 2, Seed: 11}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	var blob []byte
	ckpt := base
	ckpt.Ckpt = &snap.Checkpoint{
		At:   plain.EndTime / 2,
		Halt: true,
		Sink: func(state []byte, at float64, events uint64) {
			blob = append([]byte(nil), state...)
			if at <= 0 || at > plain.EndTime/2 {
				t.Errorf("capture at %v outside (0, %v]", at, plain.EndTime/2)
			}
			if events == 0 {
				t.Error("capture reported zero executed events")
			}
		},
	}
	halted, err := Run(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if blob == nil {
		t.Fatal("no snapshot captured")
	}
	if halted.EndTime >= plain.EndTime {
		t.Fatalf("halted run reached %v, want < %v", halted.EndTime, plain.EndTime)
	}

	resumed := base
	resumed.Ckpt = &snap.Checkpoint{Restore: blob}
	res, err := Run(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, plain) {
		t.Errorf("resumed result differs from uninterrupted run:\nresumed: %+v\nplain:   %+v", res, plain)
	}
}

// TestCheckpointPerturb checks that a non-zero perturbation label yields a
// deterministic but divergent future: two resumes with the same label agree
// with each other and (almost surely) disagree with the exact continuation
// on at least the event counter trace.
func TestCheckpointPerturb(t *testing.T) {
	base := Config{N: 400, K: 3, Alpha: 1.5, Seed: 5}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	var blob []byte
	ckpt := base
	ckpt.Ckpt = &snap.Checkpoint{
		At:   plain.EndTime / 2,
		Halt: true,
		Sink: func(state []byte, _ float64, _ uint64) { blob = append([]byte(nil), state...) },
	}
	if _, err := Run(ckpt); err != nil {
		t.Fatal(err)
	}
	if blob == nil {
		t.Fatal("no snapshot captured")
	}

	run := func(label uint64) *Result {
		cfg := base
		cfg.Ckpt = &snap.Checkpoint{Restore: blob, Perturb: label}
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(7), run(7)
	if !reflect.DeepEqual(a, b) {
		t.Error("same perturbation label produced different results")
	}
	if reflect.DeepEqual(a, plain) {
		t.Error("perturbed future identical to the exact continuation")
	}
}

// TestRestoreRejectsGarbage pins that a truncated or mismatched payload is
// a typed error, not a panic.
func TestRestoreRejectsGarbage(t *testing.T) {
	base := Config{N: 100, K: 2, Alpha: 2, Seed: 3}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	var blob []byte
	ckpt := base
	ckpt.Ckpt = &snap.Checkpoint{
		At:   plain.EndTime / 2,
		Halt: true,
		Sink: func(state []byte, _ float64, _ uint64) { blob = append([]byte(nil), state...) },
	}
	if _, err := Run(ckpt); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, 7, len(blob) / 2, len(blob) - 1} {
		cfg := base
		cfg.Ckpt = &snap.Checkpoint{Restore: blob[:cut]}
		if _, err := Run(cfg); err == nil {
			t.Errorf("restore of %d/%d bytes succeeded, want error", cut, len(blob))
		}
	}
	// A blob captured under a different N must be rejected.
	other := base
	other.N = 120
	other.Ckpt = &snap.Checkpoint{Restore: blob}
	if _, err := Run(other); err == nil {
		t.Error("restore into a different N succeeded, want error")
	}
}
