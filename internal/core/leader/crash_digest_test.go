package leader

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"strings"
	"testing"
)

// legacyCrashDigest is the pinned digest of the bespoke CrashFrac/CrashTime
// configuration recorded before the crash path was re-expressed on top of
// internal/adversary. The refactor must keep this configuration bit-exact:
// same victim set (root "crash" substream), same event ordering, same
// survivor-consensus detection.
const legacyCrashDigest = "b8907c0ef533319fa36a6a8b3c93b1d0c96db940923004392ac5af27c9b6c5f2"

// digestCrashResult renders every digest-relevant field of a crash run in
// hex-float precision and hashes it, mirroring the public kernel-golden
// digest convention.
func digestCrashResult(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "outcome=%v|%v|%v|%x|%x|%x|%d\n", res.Outcome.FullConsensus,
		res.Outcome.PluralityWon, res.Outcome.EpsReached,
		res.Outcome.ConsensusTime, res.Outcome.EpsTime, res.Outcome.Eps,
		res.Outcome.Winner)
	fmt.Fprintf(&b, "end=%x events=%d timedout=%v\n", res.EndTime, res.Events, res.TimedOut)
	fmt.Fprintf(&b, "msgs=%d peak=%x\n", res.TotalLeaderMessages, res.PeakLeaderLoad)
	fmt.Fprintf(&b, "counts=%v initial=%d gstar=%d\n", res.FinalCounts, res.InitialPlurality, res.GStar)
	for _, p := range res.Trajectory {
		fmt.Fprintf(&b, "t=%x top=%x pl=%x bias=%x maxgen=%d frac=%x\n",
			p.Time, p.TopFrac, p.PluralityFrac, p.Bias, p.MaxGen, p.MaxGenFrac)
	}
	for _, pe := range res.PhaseLog {
		fmt.Fprintf(&b, "phase=%x|%d|%d\n", pe.Time, pe.Gen, pe.Phase)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// TestLegacyCrashDigest pins the exact behavior of the legacy crash-injection
// configuration across the adversary refactor (ISSUE 6 satellite: digest
// equivalence for the legacy configuration).
func TestLegacyCrashDigest(t *testing.T) {
	res, err := Run(Config{N: 1000, K: 3, Alpha: 3, Seed: 25, CrashFrac: 0.3, CrashTime: 20})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	got := digestCrashResult(res)
	if os.Getenv("PLURALITY_GOLDEN_RECORD") != "" {
		t.Logf("legacy crash digest: %s", got)
		return
	}
	if got != legacyCrashDigest {
		t.Fatalf("legacy crash digest drifted:\n got %s\nwant %s", got, legacyCrashDigest)
	}
}
