package xrand

import (
	"fmt"
	"math"
)

// This file holds the special functions the experiments need analytically:
// the regularized incomplete gamma function (CDF of the Gamma distribution),
// its quantile, and the normal CDF/quantile. Figure 1 of the paper plots
// F⁻¹(0.9) of the waiting time T3, whose majorant is Γ(7, β); Remark 14
// bounds that quantile by 10/(3β). These functions let the harness compute
// the paper's curve without Monte-Carlo, so simulation and closed form can
// be cross-checked against each other.

// GammaCDF returns P(X <= x) for X ~ Gamma(shape, rate), i.e. the
// regularized lower incomplete gamma function P(shape, rate*x).
func GammaCDF(shape, rate, x float64) float64 {
	if shape <= 0 || rate <= 0 {
		panic(fmt.Sprintf("xrand: GammaCDF with shape=%v rate=%v", shape, rate))
	}
	if x <= 0 {
		return 0
	}
	return regIncGammaP(shape, rate*x)
}

// GammaQuantile returns the q-quantile of Gamma(shape, rate): the smallest x
// with GammaCDF(shape, rate, x) >= q. It panics unless 0 < q < 1.
func GammaQuantile(shape, rate, q float64) float64 {
	if q <= 0 || q >= 1 {
		panic(fmt.Sprintf("xrand: GammaQuantile with q=%v", q))
	}
	if shape <= 0 || rate <= 0 {
		panic(fmt.Sprintf("xrand: GammaQuantile with shape=%v rate=%v", shape, rate))
	}
	// Bracket the root. The mean is shape/rate and the standard deviation is
	// sqrt(shape)/rate; expand the upper bound geometrically from there.
	lo := 0.0
	hi := (shape + 10*math.Sqrt(shape) + 10) / rate
	for GammaCDF(shape, rate, hi) < q {
		hi *= 2
		if math.IsInf(hi, 1) {
			panic("xrand: GammaQuantile failed to bracket")
		}
	}
	// Bisection to ~1e-12 relative width: robust and plenty fast for the
	// handful of evaluations the experiments perform.
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if GammaCDF(shape, rate, mid) < q {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo <= 1e-13*hi {
			break
		}
	}
	return 0.5 * (lo + hi)
}

// regIncGammaP computes the regularized lower incomplete gamma function
// P(a, x) using the series expansion for x < a+1 and the continued fraction
// for the complement otherwise (Numerical Recipes construction).
func regIncGammaP(a, x float64) float64 {
	if x < 0 || a <= 0 {
		panic(fmt.Sprintf("xrand: regIncGammaP with a=%v x=%v", a, x))
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		return gammaPSeries(a, x)
	}
	return 1 - gammaQContinuedFraction(a, x)
}

// gammaPSeries evaluates P(a,x) by its power series.
func gammaPSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-16 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaQContinuedFraction evaluates Q(a,x) = 1 - P(a,x) by Lentz's method.
func gammaQContinuedFraction(a, x float64) float64 {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-16 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// NormalCDF returns P(Z <= z) for a standard normal Z.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormalQuantile returns the q-quantile of the standard normal distribution
// using the Acklam rational approximation refined by one Halley step; the
// result is accurate to ~1e-15 over (0, 1). It panics unless 0 < q < 1.
func NormalQuantile(q float64) float64 {
	if q <= 0 || q >= 1 || math.IsNaN(q) {
		panic(fmt.Sprintf("xrand: NormalQuantile with q=%v", q))
	}
	// Acklam coefficients.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const pLow = 0.02425
	var x float64
	switch {
	case q < pLow:
		u := math.Sqrt(-2 * math.Log(q))
		x = (((((c[0]*u+c[1])*u+c[2])*u+c[3])*u+c[4])*u + c[5]) /
			((((d[0]*u+d[1])*u+d[2])*u+d[3])*u + 1)
	case q <= 1-pLow:
		u := q - 0.5
		t := u * u
		x = (((((a[0]*t+a[1])*t+a[2])*t+a[3])*t+a[4])*t + a[5]) * u /
			(((((b[0]*t+b[1])*t+b[2])*t+b[3])*t+b[4])*t + 1)
	default:
		u := math.Sqrt(-2 * math.Log(1-q))
		x = -((((((c[0]*u+c[1])*u+c[2])*u+c[3])*u+c[4])*u + c[5]) /
			((((d[0]*u+d[1])*u+d[2])*u+d[3])*u + 1))
	}
	// One Halley refinement step against the true CDF.
	e := NormalCDF(x) - q
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// LogAddExp returns log(exp(a) + exp(b)) without overflow. The synchronous
// schedule arithmetic needs ln(α^{2^i} + k - 1) for biases whose direct
// power would overflow float64; it is computed as LogAddExp(2^i·ln α,
// ln(k-1)).
func LogAddExp(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}

// ExpCDF returns P(X <= x) for X ~ Exp(rate).
func ExpCDF(rate, x float64) float64 {
	if rate <= 0 {
		panic(fmt.Sprintf("xrand: ExpCDF with rate=%v", rate))
	}
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-rate * x)
}
