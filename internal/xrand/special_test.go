package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGammaCDFKnownValues(t *testing.T) {
	// Gamma(1, rate) is Exp(rate): CDF(x) = 1 - e^{-rate x}.
	for _, rate := range []float64{0.5, 1, 3} {
		for _, x := range []float64{0.1, 1, 2, 10} {
			got := GammaCDF(1, rate, x)
			want := 1 - math.Exp(-rate*x)
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("GammaCDF(1,%v,%v) = %v, want %v", rate, x, got, want)
			}
		}
	}
}

func TestGammaCDFErlangAgainstSum(t *testing.T) {
	// Erlang(k, rate) CDF has closed form 1 - e^{-rate x} sum_{i<k} (rate x)^i/i!.
	closed := func(k int, rate, x float64) float64 {
		sum := 0.0
		term := 1.0
		for i := 0; i < k; i++ {
			if i > 0 {
				term *= rate * x / float64(i)
			}
			sum += term
		}
		return 1 - math.Exp(-rate*x)*sum
	}
	for _, k := range []int{2, 5, 7} {
		for _, x := range []float64{0.5, 2, 7, 20} {
			got := GammaCDF(float64(k), 1, x)
			want := closed(k, 1, x)
			if math.Abs(got-want) > 1e-10 {
				t.Errorf("GammaCDF(%d,1,%v) = %v, want %v", k, x, got, want)
			}
		}
	}
}

func TestGammaCDFMonotone(t *testing.T) {
	prev := -1.0
	for x := 0.0; x < 30; x += 0.25 {
		v := GammaCDF(7, 1, x)
		if v < prev-1e-15 {
			t.Fatalf("GammaCDF not monotone at x=%v", x)
		}
		if v < 0 || v > 1 {
			t.Fatalf("GammaCDF out of [0,1] at x=%v: %v", x, v)
		}
		prev = v
	}
}

func TestGammaQuantileRoundTrip(t *testing.T) {
	for _, shape := range []float64{0.5, 1, 2, 7, 25} {
		for _, rate := range []float64{0.2, 1, 4} {
			for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.99} {
				x := GammaQuantile(shape, rate, q)
				back := GammaCDF(shape, rate, x)
				if math.Abs(back-q) > 1e-9 {
					t.Errorf("roundtrip Gamma(%v,%v) q=%v: CDF(Q(q))=%v",
						shape, rate, q, back)
				}
			}
		}
	}
}

func TestRemark14Scaling(t *testing.T) {
	// Remark 14 claims C1 = F^{-1}(0.9) of the Γ(7, β) majorant is below
	// 10/(3β). The remark's proof drops the e^{-βx} factor of the Erlang
	// CDF, and the claimed constant is in fact too small: the true quantile
	// is ≈ 10.53/β (which is also what the paper's own Figure 1 plots at
	// λ = 1). What survives — and what we verify — is the remark's substance:
	// C1 scales exactly as c/β with a λ-independent constant c, so a time
	// unit is Θ(1/β) steps.
	base := GammaQuantile(7, 1, 0.9)
	if math.Abs(base-10.532072106498482) > 1e-9 {
		t.Errorf("0.9-quantile of Γ(7,1) = %v, want ~10.5321", base)
	}
	for _, beta := range []float64{0.05, 0.1, 0.5, 1, 4} {
		c1 := GammaQuantile(7, beta, 0.9)
		if math.Abs(c1-base/beta) > 1e-8*base/beta {
			t.Errorf("C1(beta=%v) = %v, want %v/beta = %v", beta, c1, base, base/beta)
		}
		// The paper's claimed numeric bound does NOT hold; document that it
		// fails by the expected factor ≈ 3.16 so a future tightening of the
		// sampler cannot silently flip this finding.
		if c1 < 10/(3*beta) {
			t.Errorf("Remark 14 bound unexpectedly holds at beta=%v; "+
				"EXPERIMENTS.md finding F-R14 needs revisiting", beta)
		}
	}
}

func TestGammaQuantileMonteCarloAgreement(t *testing.T) {
	// The analytic 0.9-quantile of Γ(7,1) should match the empirical
	// quantile of Erlang samples.
	r := New(200)
	const n = 200000
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = r.Erlang(7, 1)
	}
	// Count below analytic quantile.
	q := GammaQuantile(7, 1, 0.9)
	count := 0
	for _, s := range samples {
		if s <= q {
			count++
		}
	}
	got := float64(count) / n
	if math.Abs(got-0.9) > 0.005 {
		t.Errorf("empirical mass below analytic 0.9-quantile: %v", got)
	}
}

func TestNormalCDFSymmetry(t *testing.T) {
	for _, z := range []float64{0, 0.5, 1, 2, 5} {
		if d := NormalCDF(z) + NormalCDF(-z) - 1; math.Abs(d) > 1e-14 {
			t.Errorf("NormalCDF symmetry broken at %v: %v", z, d)
		}
	}
	if math.Abs(NormalCDF(0)-0.5) > 1e-15 {
		t.Error("NormalCDF(0) != 0.5")
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ q, z float64 }{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.995, 2.5758293035489004},
		{0.9, 1.2815515655446004},
		{0.025, -1.959963984540054},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.q); math.Abs(got-c.z) > 1e-8 {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.q, got, c.z)
		}
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	f := func(raw uint32) bool {
		q := (float64(raw) + 1) / (float64(math.MaxUint32) + 2)
		z := NormalQuantile(q)
		return math.Abs(NormalCDF(z)-q) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestLogAddExp(t *testing.T) {
	cases := []struct{ a, b float64 }{
		{0, 0}, {1, 2}, {-3, 5}, {700, 710}, {1000, 1000}, {math.Inf(-1), 3},
	}
	for _, c := range cases {
		got := LogAddExp(c.a, c.b)
		var want float64
		if math.IsInf(c.a, -1) {
			want = c.b
		} else if c.a < 600 && c.b < 600 {
			want = math.Log(math.Exp(c.a) + math.Exp(c.b))
		} else {
			m := math.Max(c.a, c.b)
			want = m + math.Log(math.Exp(c.a-m)+math.Exp(c.b-m))
		}
		if math.Abs(got-want) > 1e-12*math.Max(1, math.Abs(want)) {
			t.Errorf("LogAddExp(%v,%v) = %v, want %v", c.a, c.b, got, want)
		}
	}
}

func TestLogAddExpCommutative(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 1) || math.IsInf(b, 1) {
			return true
		}
		// Clamp to avoid overflow-irrelevant regions.
		a = math.Mod(a, 1e6)
		b = math.Mod(b, 1e6)
		x := LogAddExp(a, b)
		y := LogAddExp(b, a)
		return x == y && x >= math.Max(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestExpCDF(t *testing.T) {
	if got := ExpCDF(2, 0); got != 0 {
		t.Errorf("ExpCDF(2,0) = %v", got)
	}
	got := ExpCDF(2, 1)
	want := 1 - math.Exp(-2)
	if math.Abs(got-want) > 1e-14 {
		t.Errorf("ExpCDF(2,1) = %v, want %v", got, want)
	}
}

func BenchmarkGammaQuantile(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = GammaQuantile(7, 1, 0.9)
	}
	_ = sink
}
