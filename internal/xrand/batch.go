package xrand

import (
	"fmt"
	"math/bits"
)

// This file implements the bulk draw primitives behind the repository's
// batched sampling fast paths (topo.BatchSampler, the synchronous engine's
// staged step pipeline). Every Fill* function is defined by one invariant:
//
//	Filling a slice of length m consumes the generator stream exactly as m
//	scalar calls of the corresponding method would, and writes the exact
//	values those calls would have returned.
//
// That scalar-equivalence invariant is what keeps the golden kernel digests
// (TestKernelGolden) and snapshot roundtrips valid while the hot loops move
// to batches: a batched run and a scalar run are byte-identical, so batching
// is purely a performance choice. It is pinned draw-for-draw by
// TestFillEquivalence and, through the topology layer, by
// topo.TestSampleNeighborsEquivalence.
//
// The speed of the batch forms comes from keeping the xoshiro state in
// locals across the whole slice — the scalar methods reload and store the
// four state words on every call.

// FillUint64 fills dst with uniformly distributed 64-bit values, advancing
// the stream exactly as len(dst) Uint64 calls.
func (r *RNG) FillUint64(dst []uint64) {
	s0, s1, s2, s3 := r.s0, r.s1, r.s2, r.s3
	for i := range dst {
		result := bits.RotateLeft64(s0+s3, 23) + s0
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = bits.RotateLeft64(s3, 45)
		dst[i] = result
	}
	r.s0, r.s1, r.s2, r.s3 = s0, s1, s2, s3
}

// next is the xoshiro256++ step over explicit state words, the register
// form shared by the bounded fill loops.
func next(s0, s1, s2, s3 uint64) (out, n0, n1, n2, n3 uint64) {
	out = bits.RotateLeft64(s0+s3, 23) + s0
	t := s1 << 17
	s2 ^= s0
	s3 ^= s1
	s1 ^= s2
	s0 ^= s3
	s2 ^= t
	s3 = bits.RotateLeft64(s3, 45)
	return out, s0, s1, s2, s3
}

// FillUint64n fills dst with uniform values in [0, n), advancing the stream
// exactly as len(dst) Uint64n(n) calls (same Lemire multiply-shift
// reduction, same rejection sequence). It panics if n == 0.
func (r *RNG) FillUint64n(n uint64, dst []uint64) {
	if n == 0 {
		panic("xrand: FillUint64n with n=0")
	}
	s0, s1, s2, s3 := r.s0, r.s1, r.s2, r.s3
	for i := range dst {
		var v uint64
		v, s0, s1, s2, s3 = next(s0, s1, s2, s3)
		hi, lo := bits.Mul64(v, n)
		if lo < n {
			// The rejection threshold -n % n costs a hardware divide;
			// computing it lazily (exactly like the scalar path) keeps short
			// fills divide-free and cannot change which draws are rejected —
			// the threshold is a pure function of n.
			threshold := -n % n
			for lo < threshold {
				v, s0, s1, s2, s3 = next(s0, s1, s2, s3)
				hi, lo = bits.Mul64(v, n)
			}
		}
		dst[i] = hi
	}
	r.s0, r.s1, r.s2, r.s3 = s0, s1, s2, s3
}

// FillIntn fills dst with uniform ints in [0, n), advancing the stream
// exactly as len(dst) Intn(n) calls. It panics if n <= 0.
func (r *RNG) FillIntn(n int, dst []int) {
	if n <= 0 {
		panic(fmt.Sprintf("xrand: FillIntn with non-positive n=%d", n))
	}
	un := uint64(n)
	s0, s1, s2, s3 := r.s0, r.s1, r.s2, r.s3
	for i := range dst {
		var v uint64
		v, s0, s1, s2, s3 = next(s0, s1, s2, s3)
		hi, lo := bits.Mul64(v, un)
		if lo < un {
			threshold := -un % un // lazy, see FillUint64n
			for lo < threshold {
				v, s0, s1, s2, s3 = next(s0, s1, s2, s3)
				hi, lo = bits.Mul64(v, un)
			}
		}
		dst[i] = int(hi)
	}
	r.s0, r.s1, r.s2, r.s3 = s0, s1, s2, s3
}

// FillInt32n fills dst with uniform values in [0, n), advancing the stream
// exactly as len(dst) Intn(n) calls. It is the form the topology batch
// samplers use (node ids are int32 throughout the event kernel); n must fit
// an int32. It panics if n <= 0.
func (r *RNG) FillInt32n(n int32, dst []int32) {
	if n <= 0 {
		panic(fmt.Sprintf("xrand: FillInt32n with non-positive n=%d", n))
	}
	un := uint64(n)
	s0, s1, s2, s3 := r.s0, r.s1, r.s2, r.s3
	for i := range dst {
		var v uint64
		v, s0, s1, s2, s3 = next(s0, s1, s2, s3)
		hi, lo := bits.Mul64(v, un)
		if lo < un {
			threshold := -un % un // lazy, see FillUint64n
			for lo < threshold {
				v, s0, s1, s2, s3 = next(s0, s1, s2, s3)
				hi, lo = bits.Mul64(v, un)
			}
		}
		dst[i] = int32(hi)
	}
	r.s0, r.s1, r.s2, r.s3 = s0, s1, s2, s3
}
