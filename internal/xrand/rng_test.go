package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %d != %d", i, av, bv)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestReseedRestartsStream(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Reseed(7)
	for i := range first {
		if v := r.Uint64(); v != first[i] {
			t.Fatalf("reseeded stream diverged at %d", i)
		}
	}
}

func TestZeroSeedNonDegenerate(t *testing.T) {
	r := New(0)
	zeros := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == 0 {
			zeros++
		}
	}
	if zeros > 2 {
		t.Fatalf("seed 0 produced %d zero outputs in 100 draws", zeros)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 256; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("sibling splits produced %d identical outputs", same)
	}
}

func TestSplitNamedStable(t *testing.T) {
	a := New(5).SplitNamed("latency")
	b := New(5).SplitNamed("latency")
	for i := 0; i < 64; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("named split not reproducible at draw %d", i)
		}
	}
	c := New(5).SplitNamed("latency")
	d := New(5).SplitNamed("clock")
	diff := false
	for i := 0; i < 64; i++ {
		if c.Uint64() != d.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("differently named splits produced identical streams")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		u := r.Float64()
		if u < 0 || u >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", u)
		}
	}
}

func TestFloat64MeanVariance(t *testing.T) {
	r := New(11)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		u := r.Float64()
		sum += u
		sumSq += u * u
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean %v, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Errorf("uniform variance %v, want ~%v", variance, 1.0/12)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(13)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniform(t *testing.T) {
	r := New(17)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d deviates from %v", i, c, want)
		}
	}
}

func TestTwoDistinct(t *testing.T) {
	r := New(19)
	for i := 0; i < 10000; i++ {
		a, b := r.TwoDistinct(5)
		if a == b {
			t.Fatal("TwoDistinct returned equal indices")
		}
		if a < 0 || a >= 5 || b < 0 || b >= 5 {
			t.Fatalf("TwoDistinct out of range: %d %d", a, b)
		}
	}
}

func TestTwoDistinctMarginalUniform(t *testing.T) {
	r := New(23)
	const n, draws = 4, 80000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		a, b := r.TwoDistinct(n)
		counts[a]++
		counts[b]++
	}
	want := float64(2*draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("index %d appeared %d times, want ~%v", i, c, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(29)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid permutation at value %d", v)
		}
		seen[v] = true
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(31)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(37)
	const p, n = 0.3, 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-p) > 0.01 {
		t.Errorf("Bernoulli(%v) empirical rate %v", p, got)
	}
}

func TestQuickUint64nInRange(t *testing.T) {
	r := New(41)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := r.Uint64n(n)
		return v < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSplitNamedDeterministic(t *testing.T) {
	f := func(seed uint64, label string) bool {
		a := New(seed).SplitNamed(label).Uint64()
		b := New(seed).SplitNamed(label).Uint64()
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Intn(1000003)
	}
	_ = sink
}

func BenchmarkExp(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.Exp(1)
	}
	_ = sink
}
