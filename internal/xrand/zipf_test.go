package xrand

import (
	"math"
	"testing"
)

func TestZipfProbabilities(t *testing.T) {
	for _, c := range []struct {
		k int
		s float64
	}{
		{1, 0}, {1, 2}, {4, 0}, {4, 1}, {8, 1.5}, {32, 0.8}, {100, 2},
	} {
		z := NewZipf(c.k, c.s)
		if z.K() != c.k {
			t.Fatalf("NewZipf(%d, %v).K() = %d", c.k, c.s, z.K())
		}
		// Probabilities normalize and follow (i+1)^{-s} ratios.
		total := 0.0
		norm := 0.0
		for i := 0; i < c.k; i++ {
			norm += math.Pow(float64(i+1), -c.s)
		}
		for i := 0; i < c.k; i++ {
			p := z.Prob(i)
			if p <= 0 || p > 1 {
				t.Fatalf("Zipf(%d, %v).Prob(%d) = %v out of range", c.k, c.s, i, p)
			}
			want := math.Pow(float64(i+1), -c.s) / norm
			if math.Abs(p-want) > 1e-12 {
				t.Errorf("Zipf(%d, %v).Prob(%d) = %v, want %v", c.k, c.s, i, p, want)
			}
			total += p
		}
		if math.Abs(total-1) > 1e-9 {
			t.Errorf("Zipf(%d, %v) probabilities sum to %v", c.k, c.s, total)
		}
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	z := NewZipf(10, 0)
	for i := 0; i < 10; i++ {
		if math.Abs(z.Prob(i)-0.1) > 1e-12 {
			t.Fatalf("Zipf(10, 0).Prob(%d) = %v, want 0.1", i, z.Prob(i))
		}
	}
}

func TestZipfSampleDistribution(t *testing.T) {
	const k, s, n = 6, 1.2, 200_000
	z := NewZipf(k, s)
	r := New(42)
	counts := make([]int, k)
	for i := 0; i < n; i++ {
		v := z.Sample(r)
		if v < 0 || v >= k {
			t.Fatalf("sample %d outside [0, %d)", v, k)
		}
		counts[v]++
	}
	// Each empirical frequency within 5 sd of its binomial expectation.
	for i := 0; i < k; i++ {
		p := z.Prob(i)
		sd := math.Sqrt(n * p * (1 - p))
		if d := math.Abs(float64(counts[i]) - n*p); d > 5*sd {
			t.Errorf("outcome %d: count %d deviates %.1f sd from expectation %.0f",
				i, counts[i], d/sd, n*p)
		}
	}
	// Monotone decreasing head: outcome 0 strictly dominates outcome k-1.
	if counts[0] <= counts[k-1] {
		t.Errorf("Zipf head %d not heavier than tail %d", counts[0], counts[k-1])
	}
}

func TestZipfOrdering(t *testing.T) {
	z := NewZipf(10, 1.5)
	for i := 1; i < 10; i++ {
		if z.Prob(i) > z.Prob(i-1)+1e-15 {
			t.Errorf("Zipf probs not non-increasing at %d", i)
		}
	}
}

func TestZipfDeterministic(t *testing.T) {
	z := NewZipf(16, 1.1)
	a, b := New(7), New(7)
	for i := 0; i < 10_000; i++ {
		if x, y := z.Sample(a), z.Sample(b); x != y {
			t.Fatalf("draw %d: same seed diverged (%d vs %d)", i, x, y)
		}
	}
}

func TestZipfPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("k=0", func() { NewZipf(0, 1) })
	expectPanic("negative s", func() { NewZipf(4, -1) })
	expectPanic("NaN s", func() { NewZipf(4, math.NaN()) })
	expectPanic("Prob out of range", func() { NewZipf(4, 1).Prob(4) })
	expectPanic("Prob negative", func() { NewZipf(4, 1).Prob(-1) })
}
