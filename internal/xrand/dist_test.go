package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

// moments draws n samples and returns their mean and variance.
func moments(n int, draw func() float64) (mean, variance float64) {
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := draw()
		sum += x
		sumSq += x * x
	}
	mean = sum / float64(n)
	variance = sumSq/float64(n) - mean*mean
	return mean, variance
}

func TestExpMoments(t *testing.T) {
	for _, lambda := range []float64{0.1, 0.5, 1, 2, 10} {
		r := New(100)
		mean, variance := moments(200000, func() float64 { return r.Exp(lambda) })
		if math.Abs(mean-1/lambda) > 0.03/lambda {
			t.Errorf("Exp(%v) mean %v, want %v", lambda, mean, 1/lambda)
		}
		if math.Abs(variance-1/(lambda*lambda)) > 0.1/(lambda*lambda) {
			t.Errorf("Exp(%v) variance %v, want %v", lambda, variance, 1/(lambda*lambda))
		}
	}
}

func TestExpMemorylessTail(t *testing.T) {
	// P(X > 1) should equal e^{-lambda}.
	r := New(101)
	const lambda, n = 1.5, 200000
	count := 0
	for i := 0; i < n; i++ {
		if r.Exp(lambda) > 1 {
			count++
		}
	}
	got := float64(count) / n
	want := math.Exp(-lambda)
	if math.Abs(got-want) > 0.005 {
		t.Errorf("Exp tail prob %v, want %v", got, want)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(102)
	mean, variance := moments(300000, r.Norm)
	if math.Abs(mean) > 0.01 {
		t.Errorf("Norm mean %v, want 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("Norm variance %v, want 1", variance)
	}
}

func TestGammaMoments(t *testing.T) {
	cases := []struct{ shape, rate float64 }{
		{0.5, 1}, {1, 1}, {2, 3}, {7, 0.25}, {30, 2},
	}
	for _, c := range cases {
		r := New(103)
		mean, variance := moments(200000, func() float64 { return r.Gamma(c.shape, c.rate) })
		wantMean := c.shape / c.rate
		wantVar := c.shape / (c.rate * c.rate)
		if math.Abs(mean-wantMean) > 0.05*wantMean+0.01 {
			t.Errorf("Gamma(%v,%v) mean %v, want %v", c.shape, c.rate, mean, wantMean)
		}
		if math.Abs(variance-wantVar) > 0.1*wantVar+0.02 {
			t.Errorf("Gamma(%v,%v) variance %v, want %v", c.shape, c.rate, variance, wantVar)
		}
	}
}

func TestErlangMatchesGammaMean(t *testing.T) {
	r := New(104)
	for _, k := range []int{1, 2, 7, 16, 40} {
		mean, _ := moments(100000, func() float64 { return r.Erlang(k, 2) })
		want := float64(k) / 2
		if math.Abs(mean-want) > 0.03*want {
			t.Errorf("Erlang(%d,2) mean %v, want %v", k, mean, want)
		}
	}
}

func TestPoissonMoments(t *testing.T) {
	for _, mu := range []float64{0.5, 3, 12, 30, 100, 500} {
		r := New(105)
		mean, variance := moments(100000, func() float64 { return float64(r.Poisson(mu)) })
		if math.Abs(mean-mu) > 0.03*mu+0.02 {
			t.Errorf("Poisson(%v) mean %v", mu, mean)
		}
		if math.Abs(variance-mu) > 0.1*mu+0.05 {
			t.Errorf("Poisson(%v) variance %v", mu, variance)
		}
	}
}

func TestPoissonZeroMean(t *testing.T) {
	r := New(106)
	for i := 0; i < 100; i++ {
		if r.Poisson(0) != 0 {
			t.Fatal("Poisson(0) != 0")
		}
	}
}

func TestBinomialMoments(t *testing.T) {
	cases := []struct {
		n int
		p float64
	}{
		{10, 0.5}, {100, 0.01}, {100, 0.99}, {1000, 0.3}, {100000, 0.001}, {50000, 0.5},
	}
	for _, c := range cases {
		r := New(107)
		mean, variance := moments(20000, func() float64 { return float64(r.Binomial(c.n, c.p)) })
		wantMean := float64(c.n) * c.p
		wantVar := float64(c.n) * c.p * (1 - c.p)
		if math.Abs(mean-wantMean) > 0.05*wantMean+0.05 {
			t.Errorf("Binomial(%d,%v) mean %v, want %v", c.n, c.p, mean, wantMean)
		}
		if wantVar > 0.5 && math.Abs(variance-wantVar) > 0.15*wantVar {
			t.Errorf("Binomial(%d,%v) variance %v, want %v", c.n, c.p, variance, wantVar)
		}
	}
}

func TestBinomialEdgeCases(t *testing.T) {
	r := New(108)
	if got := r.Binomial(0, 0.5); got != 0 {
		t.Errorf("Binomial(0, .5) = %d", got)
	}
	if got := r.Binomial(10, 0); got != 0 {
		t.Errorf("Binomial(10, 0) = %d", got)
	}
	if got := r.Binomial(10, 1); got != 10 {
		t.Errorf("Binomial(10, 1) = %d", got)
	}
}

func TestBinomialRange(t *testing.T) {
	r := New(109)
	f := func(n uint16, pRaw uint16) bool {
		n64 := int(n%5000) + 1
		p := float64(pRaw) / 65535
		v := r.Binomial(n64, p)
		return v >= 0 && v <= n64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestGeometricMoments(t *testing.T) {
	for _, p := range []float64{0.1, 0.5, 0.9} {
		r := New(110)
		mean, _ := moments(200000, func() float64 { return float64(r.Geometric(p)) })
		want := (1 - p) / p
		if math.Abs(mean-want) > 0.05*want+0.01 {
			t.Errorf("Geometric(%v) mean %v, want %v", p, mean, want)
		}
	}
}

func TestBetaMoments(t *testing.T) {
	r := New(111)
	const a, b = 2.0, 5.0
	mean, variance := moments(200000, func() float64 { return r.Beta(a, b) })
	wantMean := a / (a + b)
	wantVar := a * b / ((a + b) * (a + b) * (a + b + 1))
	if math.Abs(mean-wantMean) > 0.01 {
		t.Errorf("Beta mean %v, want %v", mean, wantMean)
	}
	if math.Abs(variance-wantVar) > 0.01 {
		t.Errorf("Beta variance %v, want %v", variance, wantVar)
	}
}

func TestUniformRange(t *testing.T) {
	r := New(112)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform(2,5) = %v", v)
		}
	}
}

func TestT3CompositionMeanMatchesExample15(t *testing.T) {
	// Example 15: with T1 = Exp(1) and T2 = Exp(lambda),
	// E[T3] = E[T'2 + T1 + T'2] = 1 + 3/lambda where
	// T'2 = max(T2,T2) + T2 and E[max(T2,T2)] = 3/(2 lambda)... note the
	// paper's statement E(T3) = 1 + 3/lambda corresponds to counting one
	// accumulated latency T'2 per good tick plus the tick gap; here we check
	// the building block E[max(T2,T2)+T2] = 3/(2λ) + 1/λ directly and the
	// paper's quoted E(T3) for its T3 = T1 + T'2 reading.
	const lambda = 2.0
	r := New(113)
	const n = 300000
	sum := 0.0
	for i := 0; i < n; i++ {
		m := math.Max(r.Exp(lambda), r.Exp(lambda)) + r.Exp(lambda)
		sum += m
	}
	got := sum / n
	want := 3/(2*lambda) + 1/lambda
	if math.Abs(got-want) > 0.02*want {
		t.Errorf("E[max(T2,T2)+T2] = %v, want %v", got, want)
	}
}

func BenchmarkGamma7(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.Gamma(7, 1)
	}
	_ = sink
}

func BenchmarkPoissonLarge(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Poisson(1000)
	}
	_ = sink
}

func BenchmarkBinomialLarge(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Binomial(1<<20, 0.3)
	}
	_ = sink
}
