package xrand

import (
	"fmt"
	"math"
)

// Gamma returns a Gamma(shape, rate)-distributed sample (mean shape/rate).
//
// The paper's waiting-time bounds majorize the latency sums by Gamma
// distributions with integral shape (Erlang), e.g. T3 ≼ Γ(7, β) in §3.1, so
// the sampler must be exact for small integral shapes; the Marsaglia–Tsang
// method used here is exact for all shape >= 1 and is extended below 1 by
// the standard boosting identity.
func (r *RNG) Gamma(shape, rate float64) float64 {
	if shape <= 0 || rate <= 0 {
		panic(fmt.Sprintf("xrand: Gamma with shape=%v rate=%v", shape, rate))
	}
	if shape < 1 {
		// Boost: Γ(a) = Γ(a+1) · U^{1/a}.
		u := r.Float64Open()
		return r.Gamma(shape+1, rate) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Norm()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64Open()
		if u < 1-0.0331*x*x*x*x {
			return d * v / rate
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v / rate
		}
	}
}

// Erlang returns the sum of k independent Exp(rate) variables. For small k it
// sums exponentials directly (exact and branch-free); larger shapes defer to
// Gamma.
func (r *RNG) Erlang(k int, rate float64) float64 {
	if k <= 0 || rate <= 0 {
		panic(fmt.Sprintf("xrand: Erlang with k=%d rate=%v", k, rate))
	}
	if k <= 16 {
		// Product of uniforms avoids k logs.
		prod := 1.0
		for i := 0; i < k; i++ {
			prod *= r.Float64Open()
		}
		return -math.Log(prod) / rate
	}
	return r.Gamma(float64(k), rate)
}

// Poisson returns a Poisson(mean)-distributed sample. Small means use
// Knuth's product-of-uniforms method; large means use the PTRS transformed
// rejection method of Hörmann, which is exact and O(1).
func (r *RNG) Poisson(mean float64) int {
	switch {
	case mean < 0 || math.IsNaN(mean):
		panic(fmt.Sprintf("xrand: Poisson with mean=%v", mean))
	case mean == 0:
		return 0
	case mean < 30:
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= r.Float64Open()
			if p <= l {
				return k
			}
			k++
		}
	default:
		return r.poissonPTRS(mean)
	}
}

// poissonPTRS implements Hörmann's PTRS algorithm for mean >= 10.
func (r *RNG) poissonPTRS(mu float64) int {
	b := 0.931 + 2.53*math.Sqrt(mu)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	for {
		u := r.Float64() - 0.5
		v := r.Float64Open()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + mu + 0.43)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lg, _ := math.Lgamma(k + 1)
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*math.Log(mu)-mu-lg {
			return int(k)
		}
	}
}

// Binomial returns a Binomial(n, p) sample: the number of successes in n
// independent Bernoulli(p) trials.
//
// For small n·min(p,1-p) it counts geometric jumps between successes (exact,
// O(np)); otherwise it recurses on a Beta-distributed median split, which
// keeps the work logarithmic in n while remaining exact.
func (r *RNG) Binomial(n int, p float64) int {
	switch {
	case n < 0 || p < 0 || p > 1 || math.IsNaN(p):
		panic(fmt.Sprintf("xrand: Binomial with n=%d p=%v", n, p))
	case n == 0 || p == 0:
		return 0
	case p == 1:
		return n
	case p > 0.5:
		return n - r.Binomial(n, 1-p)
	}
	return r.binomialSplit(n, p)
}

// binomialSplit implements the recursive Beta-split for Binomial sampling.
func (r *RNG) binomialSplit(n int, p float64) int {
	// Iterative form of the BTRS-free splitting algorithm: maintain the
	// invariant that the answer is acc + Bin(n, p).
	acc := 0
	for {
		if float64(n)*p < 32 || n < 64 {
			// Small enough: finish with the geometric-jump counter.
			count := 0
			if p <= 0 {
				return acc
			}
			if p >= 1 {
				return acc + n
			}
			logq := math.Log1p(-p)
			i := 0
			for {
				jump := int(math.Floor(math.Log(r.Float64Open()) / logq))
				i += jump + 1
				if i > n {
					return acc + count
				}
				count++
			}
		}
		m := (n + 1) / 2
		b := r.Beta(float64(m), float64(n-m+1))
		if p < b {
			// All successes lie in the first m-1 trials, conditioned scale.
			n = m - 1
			p = p / b
		} else {
			// m-th order statistic is a success; recurse on the tail.
			acc += m
			n = n - m
			p = (p - b) / (1 - b)
		}
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
	}
}

// Beta returns a Beta(a, b)-distributed sample via the Gamma ratio.
func (r *RNG) Beta(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		panic(fmt.Sprintf("xrand: Beta with a=%v b=%v", a, b))
	}
	x := r.Gamma(a, 1)
	y := r.Gamma(b, 1)
	return x / (x + y)
}

// Geometric returns the number of Bernoulli(p) failures before the first
// success (support {0, 1, 2, ...}). It panics unless 0 < p <= 1.
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 || math.IsNaN(p) {
		panic(fmt.Sprintf("xrand: Geometric with p=%v", p))
	}
	if p == 1 {
		return 0
	}
	return int(math.Floor(math.Log(r.Float64Open()) / math.Log1p(-p)))
}

// Uniform returns a uniform sample in [lo, hi). It panics if hi < lo.
func (r *RNG) Uniform(lo, hi float64) float64 {
	if hi < lo {
		panic(fmt.Sprintf("xrand: Uniform with lo=%v > hi=%v", lo, hi))
	}
	return lo + (hi-lo)*r.Float64()
}
