package xrand

import "testing"

// TestFillEquivalence pins the batch layer's core invariant draw-for-draw:
// filling a slice of length m consumes the stream exactly as m scalar calls
// and produces the exact values those calls return. Bounds are chosen to
// exercise the Lemire rejection path (including near-2^63 bounds where the
// rejection probability is largest) and the lengths to cross the loop
// boundaries.
func TestFillEquivalence(t *testing.T) {
	bounds := []uint64{1, 2, 3, 5, 7, 10, 63, 64, 65, 1000003,
		1 << 31, (1 << 63) + 3, ^uint64(0)}
	lengths := []int{0, 1, 2, 7, 64, 257}
	for _, seed := range []uint64{0, 1, 42, 0xdeadbeef} {
		for _, n := range bounds {
			for _, m := range lengths {
				scalar := New(seed)
				batch := New(seed)

				want := make([]uint64, m)
				for i := range want {
					want[i] = scalar.Uint64n(n)
				}
				got := make([]uint64, m)
				batch.FillUint64n(n, got)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("FillUint64n(%d) seed=%d len=%d: [%d] = %d, scalar %d",
							n, seed, m, i, got[i], want[i])
					}
				}
				if batch.State() != scalar.State() {
					t.Fatalf("FillUint64n(%d) seed=%d len=%d: stream position diverged", n, seed, m)
				}
			}
		}
	}
}

// TestFillUint64Equivalence pins FillUint64 against scalar Uint64 calls.
func TestFillUint64Equivalence(t *testing.T) {
	scalar, batch := New(99), New(99)
	got := make([]uint64, 1000)
	batch.FillUint64(got)
	for i := range got {
		if want := scalar.Uint64(); got[i] != want {
			t.Fatalf("FillUint64: [%d] = %d, scalar %d", i, got[i], want)
		}
	}
	if batch.State() != scalar.State() {
		t.Fatal("FillUint64: stream position diverged")
	}
}

// TestFillIntnEquivalence pins the int and int32 forms against scalar Intn.
func TestFillIntnEquivalence(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 9, 100, 1 << 20} {
		scalar, batch, batch32 := New(7), New(7), New(7)
		got := make([]int, 500)
		got32 := make([]int32, 500)
		batch.FillIntn(n, got)
		batch32.FillInt32n(int32(n), got32)
		for i := range got {
			want := scalar.Intn(n)
			if got[i] != want {
				t.Fatalf("FillIntn(%d): [%d] = %d, scalar %d", n, i, got[i], want)
			}
			if int(got32[i]) != want {
				t.Fatalf("FillInt32n(%d): [%d] = %d, scalar %d", n, i, got32[i], want)
			}
		}
		if batch.State() != scalar.State() || batch32.State() != scalar.State() {
			t.Fatalf("FillIntn(%d): stream position diverged", n)
		}
	}
}

// TestFillPanics pins the degenerate-bound panics, mirroring the scalar
// methods.
func TestFillPanics(t *testing.T) {
	cases := []struct {
		name string
		call func(r *RNG)
	}{
		{"FillUint64n(0)", func(r *RNG) { r.FillUint64n(0, make([]uint64, 1)) }},
		{"FillIntn(0)", func(r *RNG) { r.FillIntn(0, make([]int, 1)) }},
		{"FillIntn(-1)", func(r *RNG) { r.FillIntn(-1, make([]int, 1)) }},
		{"FillInt32n(0)", func(r *RNG) { r.FillInt32n(0, make([]int32, 1)) }},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", tc.name)
				}
			}()
			tc.call(New(1))
		}()
	}
}

// BenchmarkFillInt32n measures the batched bounded-draw throughput against
// the scalar loop it replaces.
func BenchmarkFillInt32n(b *testing.B) {
	r := New(1)
	dst := make([]int32, 1024)
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.FillInt32n(999983, dst)
		}
	})
	b.Run("scalar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := range dst {
				dst[j] = int32(r.Intn(999983))
			}
		}
	})
}
