// Package xrand provides the deterministic random-number substrate for the
// plurality-consensus simulator: a fast splittable PRNG and the samplers and
// special functions the paper's model needs (exponential edge latencies,
// Poisson clocks, Gamma waiting-time bounds, Zipf initial opinions).
//
// All randomness in the repository flows through this package so that every
// simulation and experiment is reproducible from a single seed. The core
// generator is xoshiro256++ seeded through SplitMix64, following the
// reference construction by Blackman and Vigna.
package xrand

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// RNG is a deterministic xoshiro256++ pseudo-random number generator.
//
// The zero value is not valid; construct instances with New or Split. RNG is
// not safe for concurrent use: give each goroutine its own instance (see
// Split), which is also what keeps parallel experiment replication
// deterministic.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// New returns a generator seeded from seed. Two generators created with the
// same seed produce identical streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// Reseed resets the generator state as if it had been created by New(seed).
func (r *RNG) Reseed(seed uint64) {
	// SplitMix64 expansion of the seed into four non-degenerate words, as
	// recommended by the xoshiro authors: the i-th word is the output of a
	// SplitMix64 stream started at seed, i.e. splitmix64(seed + i·golden).
	const golden uint64 = 0x9e3779b97f4a7c15
	sm := seed
	r.s0 = splitmix64(sm)
	sm += golden
	r.s1 = splitmix64(sm)
	sm += golden
	r.s2 = splitmix64(sm)
	sm += golden
	r.s3 = splitmix64(sm)
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		// The all-zero state is the single fixed point of xoshiro; avoid it.
		r.s0 = golden
	}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := bits.RotateLeft64(r.s0+r.s3, 23) + r.s0
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = bits.RotateLeft64(r.s3, 45)
	return result
}

// Split derives an independent child generator from the current stream.
//
// The child is seeded from two draws of the parent, so distinct calls yield
// streams that are, for simulation purposes, independent. Splitting is the
// supported way to hand randomness to concurrent replications.
func (r *RNG) Split() *RNG {
	c := &RNG{}
	r.SplitInto(c)
	return c
}

// SplitInto seeds an existing child generator exactly as Split would,
// without allocating. It is the struct-of-arrays form used by the event
// kernel's per-node Poisson clocks: a []RNG slice seeded by successive
// SplitInto calls is bit-identical to the same number of Split calls.
func (r *RNG) SplitInto(c *RNG) {
	// Mix two parent outputs through SplitMix64-style finalizers so the
	// child state is decorrelated from raw parent outputs.
	a, b := r.Uint64(), r.Uint64()
	c.Reseed(a ^ bits.RotateLeft64(b, 32))
}

// SplitNamed derives a child generator whose stream depends on both the
// parent state and the given label. It allows components ("clock latencies",
// "initial opinions", ...) to own decoupled substreams that do not shift when
// an unrelated component draws more or fewer samples.
func (r *RNG) SplitNamed(label string) *RNG {
	h := fnv64(label)
	a := r.Uint64()
	c := &RNG{}
	c.Reseed(a ^ h)
	return c
}

// fnv64 is the FNV-1a hash of s, used to fold substream labels into seeds.
func fnv64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// State returns the four xoshiro256++ state words. Together with SetState
// it makes a generator's position in its stream checkpointable: a restored
// generator continues the exact sequence the captured one would have
// produced.
func (r *RNG) State() [4]uint64 {
	return [4]uint64{r.s0, r.s1, r.s2, r.s3}
}

// SetState restores a generator to the given state words, as previously
// returned by State. The all-zero state is the fixed point of xoshiro and
// therefore rejected.
func (r *RNG) SetState(s [4]uint64) error {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		return errors.New("xrand: SetState with all-zero state")
	}
	r.s0, r.s1, r.s2, r.s3 = s[0], s[1], s[2], s[3]
	return nil
}

// Perturb folds a non-zero divergence label into the generator state: the
// perturbed generator is a deterministic function of (state, label) but its
// stream is decorrelated from the unperturbed one. Restored checkpoints use
// it to branch independent futures off a shared prefix — same label, same
// future; label 0 is the identity (the bit-exact continuation).
func (r *RNG) Perturb(label uint64) {
	if label == 0 {
		return
	}
	seed := r.s0 ^ bits.RotateLeft64(r.s1, 17) ^ bits.RotateLeft64(r.s2, 31) ^
		bits.RotateLeft64(r.s3, 47)
	r.Reseed(seed ^ splitmix64(label))
}

// splitmix64 is one SplitMix64 step — advance by the golden-ratio
// increment, then finalize. Reseed uses it to expand seeds and Perturb to
// spread labels (often small integers) over the full 64-bit space.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform float64 in the open interval (0, 1); it is
// the right input for -log(u) style transforms that must not see zero.
func (r *RNG) Float64Open() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return u
		}
	}
}

// Intn returns a uniform int in [0, n). It panics if n <= 0, mirroring
// math/rand, because a non-positive support is always a programming error.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("xrand: Intn with non-positive n=%d", n))
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's multiply-shift
// rejection method (unbiased). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with n=0")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		threshold := -n % n
		for lo < threshold {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Bool returns true with probability 1/2.
func (r *RNG) Bool() bool { return r.Uint64()&1 == 1 }

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the Fisher-Yates
// shuffle. swap exchanges the elements with indexes i and j.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	if n < 0 {
		panic("xrand: Shuffle with negative n")
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// TwoDistinct returns two distinct uniform indices in [0, n). It panics if
// n < 2. Protocols use it for sampling two neighbours "u.a.r." where the
// analysis assumes distinct contacts.
func (r *RNG) TwoDistinct(n int) (int, int) {
	if n < 2 {
		panic("xrand: TwoDistinct needs n >= 2")
	}
	i := r.Intn(n)
	j := r.Intn(n - 1)
	if j >= i {
		j++
	}
	return i, j
}

// ErrBadParam reports an invalid distribution parameter.
var ErrBadParam = errors.New("xrand: invalid distribution parameter")

// Exp returns an exponentially distributed sample with rate lambda
// (mean 1/lambda). It panics if lambda <= 0.
func (r *RNG) Exp(lambda float64) float64 {
	if lambda <= 0 || math.IsNaN(lambda) {
		panic(fmt.Sprintf("xrand: Exp with non-positive rate %v", lambda))
	}
	return -math.Log(r.Float64Open()) / lambda
}

// Norm returns a standard normal sample via the polar (Marsaglia) method.
func (r *RNG) Norm() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}
