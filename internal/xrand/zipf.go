package xrand

import (
	"fmt"
	"math"
)

// Zipf samples from a Zipf(s) distribution over {0, 1, ..., k-1}: outcome i
// has probability proportional to (i+1)^{-s}. The experiments use it to
// generate skewed initial opinion assignments, a natural "plurality with
// long tail" workload that the paper's intro motivates (community detection,
// polling).
//
// The support of the consensus problem is small (k ≤ √n), so a precomputed
// cumulative table with binary-search inversion is both exact and fast.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a Zipf distribution over k outcomes with exponent s >= 0.
// s = 0 degenerates to the uniform distribution. It panics if k <= 0 or s is
// negative or NaN.
func NewZipf(k int, s float64) *Zipf {
	if k <= 0 {
		panic(fmt.Sprintf("xrand: NewZipf with k=%d", k))
	}
	if s < 0 || math.IsNaN(s) {
		panic(fmt.Sprintf("xrand: NewZipf with s=%v", s))
	}
	cdf := make([]float64, k)
	total := 0.0
	for i := 0; i < k; i++ {
		total += math.Pow(float64(i+1), -s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	cdf[k-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf}
}

// K returns the number of outcomes.
func (z *Zipf) K() int { return len(z.cdf) }

// Prob returns the probability of outcome i.
func (z *Zipf) Prob(i int) float64 {
	if i < 0 || i >= len(z.cdf) {
		panic(fmt.Sprintf("xrand: Zipf.Prob out of range i=%d k=%d", i, len(z.cdf)))
	}
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}

// Sample draws one outcome using the generator r.
func (z *Zipf) Sample(r *RNG) int {
	u := r.Float64()
	// Binary search for the first index with cdf >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
