package experiments

import (
	"math"

	"plurality/internal/core/leader"
	"plurality/internal/harness"
	"plurality/internal/sim"
	"plurality/internal/stats"
	"plurality/internal/xrand"
)

// C1Constants validates Remark 14 and Example 15: the time-unit constant
// C1 = F⁻¹(0.9) scales as c/β, the Γ(7,β) majorant dominates the measured
// quantile, and E[T'2 + T1] matches the closed form 1 + 3/λ... with one
// documented finding: the remark's numeric bound 10/(3β) does NOT hold (its
// proof drops the e^{-βx} factor of the Erlang CDF); the true majorant
// quantile is ≈ 10.53/β, which is also what the paper's own Figure 1 plots.
// The table reports both so EXPERIMENTS.md can show the discrepancy.
func C1Constants(o Opts) *harness.Table {
	o = o.normalize()
	lambdas := []float64{0.1, 0.25, 0.5, 1, 2, 4}
	if o.Quick {
		lambdas = []float64{0.5, 1}
	}
	t := harness.NewTable(
		"Remark 14 / Example 15 — time-unit constants",
		[]string{"lambda"},
		[]string{"c1_measured", "gamma_majorant", "paper_bound_10_3beta",
			"bound_holds", "mean_T1_plus_acc", "paper_mean_1p3overlambda"},
	)
	for _, lambda := range lambdas {
		lambda := lambda
		beta := math.Min(1, lambda)
		measured := &stats.Summary{}
		meanAcc := &stats.Summary{}
		holds := &stats.Summary{}
		majorant := xrand.GammaQuantile(7, beta, 0.9)
		bound := 10 / (3 * beta)
		for rep := 0; rep < o.Reps; rep++ {
			seed := mergeSeed(o.Seed+1400, uint64(rep))
			c1 := leader.EstimateC1(sim.ExpLatency{Rate: lambda}, seed)
			measured.Add(c1)
			holds.Add(boolMetric(c1 < bound))
			// Example 15: E[T3] = 1 + 3/λ for T3 = T1 + T'2 with
			// T'2 = max(T2,T2) + T2 (E[max] = 3/(2λ), E[T2] = 1/λ gives
			// 1 + 5/(2λ); the paper's 1 + 3/λ counts E[T'2] = 3/λ, i.e.
			// three sequential channels — both are measured: the table
			// column uses the paper's sequential reading).
			r := xrand.New(seed).SplitNamed("ex15")
			sum := 0.0
			const nSamp = 40000
			for i := 0; i < nSamp; i++ {
				sum += r.Exp(1) + r.Exp(lambda) + r.Exp(lambda) + r.Exp(lambda)
			}
			meanAcc.Add(sum / nSamp)
		}
		t.Append(map[string]float64{"lambda": lambda}, map[string]*stats.Summary{
			"c1_measured":              measured,
			"gamma_majorant":           singleCell(majorant),
			"paper_bound_10_3beta":     singleCell(bound),
			"bound_holds":              holds,
			"mean_T1_plus_acc":         meanAcc,
			"paper_mean_1p3overlambda": singleCell(1 + 3/lambda),
		})
	}
	return t
}
