// Package experiments implements the reproduction experiments E1–E13 from
// DESIGN.md: both figures of the paper and every measurable claim
// (theorems, propositions, the γ remark), each as a function returning a
// rendered table. cmd/experiments exposes them as subcommands; the root
// bench_test.go wires them to `go test -bench`.
//
// Sizes are laptop-scale by design: the paper proves asymptotic statements,
// and the experiments check shapes (who wins, what grows, what stays flat),
// not the authors' constants. The Opts.Quick flag shrinks grids for use in
// benchmarks and smoke tests.
package experiments

import (
	"context"
	"math"

	"plurality/internal/harness"
	"plurality/internal/stats"
)

// Opts tunes experiment size.
type Opts struct {
	// Reps is the number of seeded replications per grid point (default 5).
	Reps int
	// Quick shrinks the grids for benchmark/smoke use.
	Quick bool
	// Seed offsets all replication seeds, so independent invocations can
	// draw fresh randomness.
	Seed uint64
	// Ctx cancels a running experiment: once it is done, no further
	// replication starts and the aggregates cover only the completed
	// ones. nil means never cancelled.
	Ctx context.Context
}

// replicate runs fn through the harness pool, honouring o.Ctx. On
// cancellation the partially filled aggregates are returned so a table can
// still be rendered for the replications that completed.
func (o Opts) replicate(reps int, fn func(rep uint64) harness.Metrics) map[string]*stats.Summary {
	agg, _ := harness.ReplicateCtx(o.Ctx, reps,
		func(_ context.Context, rep uint64) (harness.Metrics, error) {
			return fn(rep), nil
		})
	return agg
}

func (o Opts) normalize() Opts {
	if o.Reps <= 0 {
		o.Reps = 5
	}
	return o
}

// boolMetric converts a success flag into a 0/1 measurement.
func boolMetric(ok bool) float64 {
	if ok {
		return 1
	}
	return 0
}

// mergeSeed mixes the per-experiment seed offset into a replication index.
func mergeSeed(base uint64, rep uint64) uint64 {
	x := base*0x9e3779b97f4a7c15 + rep + 1
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// summaries is shorthand for one-value cells in hand-built tables.
func singleCell(v float64) *stats.Summary {
	s := &stats.Summary{}
	s.Add(v)
	return s
}

// logRange returns count log-spaced values from lo to hi inclusive.
func logRange(lo, hi float64, count int) []float64 {
	if count < 2 {
		return []float64{lo}
	}
	out := make([]float64, count)
	ratio := math.Pow(hi/lo, 1/float64(count-1))
	v := lo
	for i := range out {
		out[i] = v
		v *= ratio
	}
	out[count-1] = hi
	return out
}

// fitLine renders a fit as a trailing annotation line for a table.
func fitLine(name string, f stats.Fit) string {
	return "  fit " + name + ": " + f.String() + "\n"
}
