package experiments

import (
	"fmt"
	"sort"

	"plurality/internal/harness"
)

// Spec describes one registered experiment.
type Spec struct {
	// ID is the DESIGN.md experiment id (e.g. "E1").
	ID string
	// Name is the subcommand / bench name.
	Name string
	// Paper is the paper artifact the experiment regenerates.
	Paper string
	// Run executes the experiment.
	Run func(Opts) *harness.Table
}

// All returns every registered experiment in a stable order.
func All() []Spec {
	specs := []Spec{
		{ID: "E1", Name: "fig1", Paper: "Figure 1", Run: Figure1},
		{ID: "E2", Name: "fig2", Paper: "Figure 2 / Proposition 31", Run: Figure2},
		{ID: "E3", Name: "t1", Paper: "Theorem 1", Run: Theorem1Scaling},
		{ID: "E4", Name: "t13", Paper: "Theorem 13", Run: Theorem13Scaling},
		{ID: "E5", Name: "t26", Paper: "Theorem 26", Run: Theorem26HeadToHead},
		{ID: "E6", Name: "clustering", Paper: "Theorem 27", Run: Theorem27Clustering},
		{ID: "E7", Name: "broadcast", Paper: "Theorem 28", Run: Theorem28Broadcast},
		{ID: "E8", Name: "bias", Paper: "Lemma 4 / Corollary 7 / Proposition 8", Run: BiasSquaring},
		{ID: "E9", Name: "growth", Paper: "Proposition 9 / §2.2 X_i", Run: GenerationGrowth},
		{ID: "E10a", Name: "gamma", Paper: "§2.2 empirical remark on γ", Run: GammaSweep},
		{ID: "E10b", Name: "aging", Paper: "§5 / PODC positive aging", Run: AgingLatencies},
		{ID: "E11", Name: "c1", Paper: "Remark 14 / Example 15", Run: C1Constants},
		{ID: "E12", Name: "shootout", Paper: "§1.1 comparative landscape", Run: Shootout},
		{ID: "E13", Name: "tail", Paper: "Lemma 11 / Lemma 25", Run: TailGenerations},
		{ID: "E14", Name: "ablation", Paper: "design-choice ablations (beyond the paper)", Run: Ablations},
		{ID: "E15", Name: "congestion", Paper: "§4.5 complexity parameters", Run: Congestion},
		{ID: "E16", Name: "asyncshootout", Paper: "§1.1 landscape under async semantics", Run: AsyncShootout},
	}
	sort.SliceStable(specs, func(i, j int) bool { return specs[i].ID < specs[j].ID })
	return specs
}

// Lookup finds an experiment by subcommand name.
func Lookup(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("experiments: unknown experiment %q", name)
}
