package experiments

import (
	"fmt"

	"plurality/internal/core/leader"
	"plurality/internal/core/noleader"
	"plurality/internal/harness"
	"plurality/internal/stats"
)

// Congestion validates the §4.5 complexity discussion: the designated
// leader of §3 serves Θ(n) requests per time unit (the bottleneck the paper
// criticizes), while in the decentralized protocol no cluster leader serves
// more than polylog(n) per time unit, with the load balanced across
// Θ(n/polylog n) leaders.
func Congestion(o Opts) *harness.Table {
	o = o.normalize()
	ns := []int{500, 1000, 2000, 4000, 8000}
	if o.Quick {
		ns = []int{500, 1500}
	}
	t := harness.NewTable(
		"§4.5 — leader congestion per time unit: designated leader vs cluster leaders",
		[]string{"n"},
		[]string{"single_peak_load", "single_load_per_n", "multi_peak_load", "leaders"},
	)
	for _, n := range ns {
		n := n
		agg := o.replicate(o.Reps, func(rep uint64) harness.Metrics {
			seed := mergeSeed(o.Seed+1600, rep)
			single, err := leader.Run(leader.Config{N: n, K: 4, Alpha: 2.5, Seed: seed})
			if err != nil {
				panic(fmt.Sprintf("experiments: Congestion single: %v", err))
			}
			multi, err := noleader.Run(noleader.Config{N: n, K: 4, Alpha: 2.5, Seed: seed})
			if err != nil {
				panic(fmt.Sprintf("experiments: Congestion multi: %v", err))
			}
			return harness.Metrics{
				"single_peak_load":  single.PeakLeaderLoad,
				"single_load_per_n": single.PeakLeaderLoad / float64(n),
				"multi_peak_load":   multi.PeakLeaderLoad,
				"leaders":           float64(len(multi.Clustering.ParticipatingLeaders())),
			}
		})
		t.Append(map[string]float64{"n": float64(n)}, agg)
	}
	var xs, ysSingle, ysMulti []float64
	for _, r := range t.Rows {
		xs = append(xs, r.Factors["n"])
		ysSingle = append(ysSingle, r.Cells["single_peak_load"].Mean())
		ysMulti = append(ysMulti, r.Cells["multi_peak_load"].Mean())
	}
	if len(xs) >= 2 {
		t.Caption += "\n" + fitLine("log(single_peak_load) ~ log n (expect ≈ 1)",
			stats.LogLogFit(xs, ysSingle))
		t.Caption += fitLine("log(multi_peak_load) ~ log n (expect ≪ 1)",
			stats.LogLogFit(xs, ysMulti))
	}
	return t
}
