package experiments

import (
	"fmt"

	"plurality/internal/cluster"
	"plurality/internal/harness"
	"plurality/internal/stats"
)

// Theorem27Clustering validates the clustering claims: almost all nodes end
// up in clusters of at least the target size within O(log log n)-scale time,
// and the consensus-mode switch times of participating leaders span an O(1)
// window (t_l − t_f).
func Theorem27Clustering(o Opts) *harness.Table {
	o = o.normalize()
	ns := []int{1000, 2000, 4000, 8000, 16000}
	if o.Quick {
		ns = []int{1000, 4000}
	}
	t := harness.NewTable(
		"Theorem 27 — clustering: coverage, formation time, switch spread",
		[]string{"n"},
		[]string{"participating_frac", "formation_time", "switch_spread",
			"leaders", "target_size", "timed_out"},
	)
	for _, n := range ns {
		agg := o.replicate(o.Reps, func(rep uint64) harness.Metrics {
			cl, err := cluster.Form(cluster.Params{
				N: n, Seed: mergeSeed(o.Seed+600, rep),
			})
			if err != nil {
				panic(fmt.Sprintf("experiments: Theorem27: %v", err))
			}
			m := harness.Metrics{
				"participating_frac": cl.ParticipatingFrac(),
				"formation_time":     cl.EndTime,
				"leaders":            float64(len(cl.ParticipatingLeaders())),
				"target_size":        float64(cl.TargetSize),
				"timed_out":          boolMetric(cl.TimedOut),
			}
			if cl.FirstSwitch >= 0 {
				m["switch_spread"] = cl.LastSwitch - cl.FirstSwitch
			}
			return m
		})
		t.Append(map[string]float64{"n": float64(n)}, agg)
	}
	// The formation-time column should grow sublinearly; annotate the
	// log-log slope (log log n predicts a slope near zero; anything well
	// below 1 confirms sublinearity at these scales).
	var xs, ys []float64
	for _, r := range t.Rows {
		xs = append(xs, r.Factors["n"])
		ys = append(ys, r.Cells["formation_time"].Mean())
	}
	if len(xs) >= 2 {
		t.Caption += "\n" + fitLine("log(formation_time) ~ log n", stats.LogLogFit(xs, ys))
	}
	return t
}

// Theorem28Broadcast validates the inter-cluster broadcast claim: the time
// to inform all participating leaders does not grow with n (an O(1)-time
// broadcast), in contrast to the Θ(log n) push–pull bound for uninformed
// flat gossip.
func Theorem28Broadcast(o Opts) *harness.Table {
	o = o.normalize()
	ns := []int{500, 1000, 2000, 4000, 8000, 16000}
	if o.Quick {
		ns = []int{500, 2000}
	}
	t := harness.NewTable(
		"Theorem 28 — inter-cluster broadcast completion time vs n",
		[]string{"n"},
		[]string{"broadcast_time", "leaders", "timed_out"},
	)
	for _, n := range ns {
		agg := o.replicate(o.Reps, func(rep uint64) harness.Metrics {
			seed := mergeSeed(o.Seed+700, rep)
			cl, err := cluster.Form(cluster.Params{N: n, Seed: seed})
			if err != nil {
				panic(fmt.Sprintf("experiments: Theorem28 form: %v", err))
			}
			res, err := cluster.Broadcast(cl, nil, seed+1, 0)
			if err != nil {
				panic(fmt.Sprintf("experiments: Theorem28 broadcast: %v", err))
			}
			m := harness.Metrics{
				"leaders":   float64(res.LeaderCount),
				"timed_out": boolMetric(res.TimedOut),
			}
			if res.CompleteTime >= 0 {
				m["broadcast_time"] = res.CompleteTime
			}
			return m
		})
		t.Append(map[string]float64{"n": float64(n)}, agg)
	}
	var xs, ys []float64
	for _, r := range t.Rows {
		if s, ok := r.Cells["broadcast_time"]; ok && s.N() > 0 {
			xs = append(xs, r.Factors["n"])
			ys = append(ys, s.Mean())
		}
	}
	if len(xs) >= 2 {
		t.Caption += "\n" + fitLine("log(broadcast_time) ~ log n (flat ⇒ O(1))",
			stats.LogLogFit(xs, ys))
	}
	return t
}
