package experiments

import (
	"fmt"

	"plurality/internal/baseline"
	"plurality/internal/core/syncgen"
	"plurality/internal/harness"
	"plurality/internal/opinion"
	"plurality/internal/sim"
	"plurality/internal/xrand"

	coreleader "plurality/internal/core/leader"
)

// Shootout compares the generation protocol against the §1.1 baselines on
// identical initial assignments: synchronous rounds to full consensus and
// plurality success rate, across a k sweep. The paper's positioning
// predicts: pull voting is slowest and least reliable; 3-majority degrades
// linearly in k (Θ(k log n)); two-choices and the generation protocol stay
// polylogarithmic, with the generation protocol tolerating smaller bias.
func Shootout(o Opts) *harness.Table {
	o = o.normalize()
	ks := []int{2, 8, 32}
	n := 10000
	alpha := 1.5
	if o.Quick {
		ks = []int{2, 8}
		n = 2000
		alpha = 2
	}
	t := harness.NewTable(
		fmt.Sprintf("Shootout — rounds to consensus and success rate (n=%d, α=%g)", n, alpha),
		[]string{"k"},
		[]string{"generations_rounds", "generations_won",
			"two_choices_rounds", "two_choices_won",
			"three_majority_rounds", "three_majority_won",
			"undecided_rounds", "undecided_won",
			"pull_voting_rounds", "pull_voting_won"},
	)
	for _, k := range ks {
		k := k
		agg := o.replicate(o.Reps, func(rep uint64) harness.Metrics {
			seed := mergeSeed(o.Seed+1200, rep)
			assignRNG := xrand.New(seed).SplitNamed("shootout-assign")
			assign := opinion.PlantedBias(n, k, alpha, assignRNG)
			m := harness.Metrics{}

			res, err := syncgen.Run(syncgen.Config{
				N: n, K: k, Assignment: assign, Seed: seed,
			})
			if err != nil {
				panic(fmt.Sprintf("experiments: Shootout syncgen: %v", err))
			}
			if res.Outcome.FullConsensus {
				m["generations_rounds"] = float64(res.Steps)
			}
			m["generations_won"] = boolMetric(res.Outcome.PluralityWon &&
				res.Outcome.FullConsensus)

			runBase := func(name, prefix string) {
				rule, err := baseline.NewRule(name, xrand.New(seed).SplitNamed(name))
				if err != nil {
					panic(fmt.Sprintf("experiments: Shootout rule: %v", err))
				}
				br, err := baseline.RunSync(rule, baseline.Config{
					N: n, K: k, Assignment: assign, Seed: seed,
					RecordEvery: 4,
				})
				if err != nil {
					panic(fmt.Sprintf("experiments: Shootout %s: %v", name, err))
				}
				if br.Outcome.FullConsensus {
					m[prefix+"_rounds"] = float64(br.Rounds)
				}
				m[prefix+"_won"] = boolMetric(br.Outcome.PluralityWon &&
					br.Outcome.FullConsensus)
			}
			runBase("two-choices", "two_choices")
			runBase("3-majority", "three_majority")
			runBase("undecided-state", "undecided")
			runBase("pull-voting", "pull_voting")
			return m
		})
		t.Append(map[string]float64{"k": float64(k)}, agg)
	}
	return t
}

// AgingLatencies exercises the positive-aging generalization (the PODC
// title): the single-leader protocol under exponential, constant, uniform
// and Erlang channel latencies with identical means. The claim carried over
// from the published version is that convergence, measured in time units
// (C1 adapts per distribution), is insensitive to the latency shape.
func AgingLatencies(o Opts) *harness.Table {
	o = o.normalize()
	n := 2000
	if o.Quick {
		n = 800
	}
	lats := []sim.Latency{
		sim.ExpLatency{Rate: 1},
		sim.ConstLatency{D: 1},
		sim.UniformLatency{Lo: 0, Hi: 2},
		sim.ErlangLatency{K: 4, Rate: 4},
	}
	t := harness.NewTable(
		fmt.Sprintf("Positive aging — latency shapes with mean 1 (n=%d, k=4, α=2.5)", n),
		[]string{"shape"},
		[]string{"c1", "eps_units", "consensus_units", "plurality_won"},
	)
	for i, lat := range lats {
		lat := lat
		agg := o.replicate(o.Reps, func(rep uint64) harness.Metrics {
			res, err := coreleader.Run(coreleader.Config{
				N: n, K: 4, Alpha: 2.5, Latency: lat,
				Seed: mergeSeed(o.Seed+1300+uint64(i), rep),
			})
			if err != nil {
				panic(fmt.Sprintf("experiments: AgingLatencies: %v", err))
			}
			m := harness.Metrics{
				"c1": res.C1,
				"plurality_won": boolMetric(res.Outcome.PluralityWon &&
					res.Outcome.FullConsensus),
			}
			if res.Outcome.EpsReached {
				m["eps_units"] = res.Outcome.EpsTime / res.C1
			}
			if res.Outcome.FullConsensus {
				m["consensus_units"] = res.Outcome.ConsensusTime / res.C1
			}
			return m
		})
		t.Append(map[string]float64{"shape": float64(i)}, agg)
	}
	t.Caption += "\n  shape index: 0=exp(1) 1=const(1) 2=uniform[0,2) 3=erlang(4, mean 1)\n"
	return t
}
