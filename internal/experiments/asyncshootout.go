package experiments

import (
	"fmt"

	"plurality/internal/baseline"
	"plurality/internal/core/leader"
	"plurality/internal/harness"
	"plurality/internal/opinion"
	"plurality/internal/xrand"
)

// AsyncShootout compares the single-leader generation protocol against the
// classical dynamics under the *same* asynchronous semantics (Poisson
// clocks, parallel channel latencies, locking): everything measured in
// virtual time steps on identical assignments. The generation protocol's
// advantage over two-choices/3-majority is bias tolerance, not raw speed at
// comfortable bias — both facts should be visible.
func AsyncShootout(o Opts) *harness.Table {
	o = o.normalize()
	type workload struct {
		k     int
		alpha float64
	}
	n := 2000
	loads := []workload{{2, 2}, {8, 1.5}, {16, 1.5}}
	if o.Quick {
		n = 800
		loads = []workload{{4, 2}}
	}
	t := harness.NewTable(
		fmt.Sprintf("Async shootout — time steps to full consensus (n=%d, Poisson+Exp(1) latency)", n),
		[]string{"k", "alpha"},
		[]string{"generations_time", "generations_won",
			"two_choices_time", "two_choices_won",
			"three_majority_time", "three_majority_won",
			"undecided_time", "undecided_won"},
	)
	for _, w := range loads {
		w := w
		agg := o.replicate(o.Reps, func(rep uint64) harness.Metrics {
			seed := mergeSeed(o.Seed+1700, rep)
			assign := opinion.PlantedBias(n, w.k, w.alpha,
				xrand.New(seed).SplitNamed("async-shootout"))
			m := harness.Metrics{}

			res, err := leader.Run(leader.Config{
				N: n, K: w.k, Assignment: assign, Seed: seed,
			})
			if err != nil {
				panic(fmt.Sprintf("experiments: AsyncShootout leader: %v", err))
			}
			if res.Outcome.FullConsensus {
				m["generations_time"] = res.Outcome.ConsensusTime
			}
			m["generations_won"] = boolMetric(res.Outcome.PluralityWon &&
				res.Outcome.FullConsensus)

			runBase := func(name, prefix string) {
				rule, err := baseline.NewRule(name, xrand.New(seed).SplitNamed(name))
				if err != nil {
					panic(fmt.Sprintf("experiments: AsyncShootout rule: %v", err))
				}
				br, err := baseline.RunPoisson(rule, baseline.Config{
					N: n, K: w.k, Assignment: assign, Seed: seed,
					RecordEvery: 4, MaxRounds: 4000,
				}, nil)
				if err != nil {
					panic(fmt.Sprintf("experiments: AsyncShootout %s: %v", name, err))
				}
				if br.Outcome.FullConsensus {
					m[prefix+"_time"] = br.Outcome.ConsensusTime
				}
				m[prefix+"_won"] = boolMetric(br.Outcome.PluralityWon &&
					br.Outcome.FullConsensus)
			}
			runBase("two-choices", "two_choices")
			runBase("3-majority", "three_majority")
			runBase("undecided-state", "undecided")
			return m
		})
		t.Append(map[string]float64{"k": float64(w.k), "alpha": w.alpha}, agg)
	}
	return t
}
