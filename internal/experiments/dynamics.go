package experiments

import (
	"fmt"
	"math"

	"plurality/internal/core/syncgen"
	"plurality/internal/harness"
	"plurality/internal/stats"
)

// BiasSquaring validates Lemma 4 / Corollary 7 / Proposition 8: the bias at
// the birth of generation i+1 is close to the square of generation i's
// established bias. It reports, per generation index, the measured ratio
// log(α_{i+1}) / (2·log(α_i)) which the lemma predicts to be ≈ 1 until the
// bias saturates.
func BiasSquaring(o Opts) *harness.Table {
	o = o.normalize()
	n := 200000
	if o.Quick {
		n = 20000
	}
	t := harness.NewTable(
		"Lemma 4 / Prop. 8 — bias squaring per generation (ratio ≈ 1 expected)",
		[]string{"gen"},
		[]string{"birth_bias", "parent_bias", "log_ratio"},
	)
	type acc struct{ birth, parent, ratio *stats.Summary }
	accs := map[int]*acc{}
	for rep := 0; rep < o.Reps; rep++ {
		res, err := syncgen.Run(syncgen.Config{
			N: n, K: 2, Alpha: 1.5, Seed: mergeSeed(o.Seed+800, uint64(rep)),
		})
		if err != nil {
			panic(fmt.Sprintf("experiments: BiasSquaring: %v", err))
		}
		// Parent of generation 1 is the initial assignment.
		parentBias := res.Trajectory[0].Bias
		for _, ev := range res.Generations {
			a, ok := accs[ev.Gen]
			if !ok {
				a = &acc{birth: &stats.Summary{}, parent: &stats.Summary{}, ratio: &stats.Summary{}}
				accs[ev.Gen] = a
			}
			a.birth.Add(ev.BirthBias)
			a.parent.Add(parentBias)
			// Skip saturated generations: once the second color nearly
			// vanishes the ratio is dominated by integer noise.
			if parentBias > 1 && ev.BirthBias > 1 && ev.BirthBias < float64(n)/10 {
				a.ratio.Add(math.Log(ev.BirthBias) / (2 * math.Log(parentBias)))
			}
			if ev.EstablishedStep >= 0 && ev.EstablishedBias > 0 {
				parentBias = ev.EstablishedBias
			} else {
				parentBias = ev.BirthBias
			}
		}
	}
	for g := 1; ; g++ {
		a, ok := accs[g]
		if !ok {
			break
		}
		t.Append(map[string]float64{"gen": float64(g)}, map[string]*stats.Summary{
			"birth_bias": a.birth, "parent_bias": a.parent, "log_ratio": a.ratio,
		})
	}
	return t
}

// GenerationGrowth validates Proposition 9 (and the Xi schedule of §2.2):
// each generation reaches the γ fraction within its predicted life-cycle
// length X_i. Reported per generation: measured steps from birth to
// establishment vs the ⌈X_i⌉ prediction.
func GenerationGrowth(o Opts) *harness.Table {
	o = o.normalize()
	n := 100000
	if o.Quick {
		n = 10000
	}
	const k, alpha, gamma = 8, 1.5, 0.5
	t := harness.NewTable(
		"Proposition 9 — generation growth: measured life-cycle vs predicted X_i",
		[]string{"gen"},
		[]string{"measured_steps", "predicted_Xi", "within_prediction"},
	)
	type acc struct{ measured, within *stats.Summary }
	accs := map[int]*acc{}
	for rep := 0; rep < o.Reps; rep++ {
		res, err := syncgen.Run(syncgen.Config{
			N: n, K: k, Alpha: alpha, Gamma: gamma,
			Seed: mergeSeed(o.Seed+900, uint64(rep)),
		})
		if err != nil {
			panic(fmt.Sprintf("experiments: GenerationGrowth: %v", err))
		}
		for _, ev := range res.Generations {
			if ev.EstablishedStep < 0 {
				continue
			}
			a, ok := accs[ev.Gen]
			if !ok {
				a = &acc{measured: &stats.Summary{}, within: &stats.Summary{}}
				accs[ev.Gen] = a
			}
			steps := float64(ev.EstablishedStep - ev.BirthStep + 1)
			a.measured.Add(steps)
			xi := syncgen.LifeCycleLength(alpha, k, gamma, ev.Gen)
			a.within.Add(boolMetric(steps <= math.Ceil(xi)))
		}
	}
	for g := 1; ; g++ {
		a, ok := accs[g]
		if !ok {
			break
		}
		t.Append(map[string]float64{"gen": float64(g)}, map[string]*stats.Summary{
			"measured_steps":    a.measured,
			"predicted_Xi":      singleCell(math.Ceil(syncgen.LifeCycleLength(alpha, k, gamma, g))),
			"within_prediction": a.within,
		})
	}
	return t
}

// GammaSweep validates the empirical remark of §2.2: γ = 1/2 works well,
// larger γ increases the running time, smaller γ decreases stability
// (success rate).
func GammaSweep(o Opts) *harness.Table {
	o = o.normalize()
	gammas := []float64{0.05, 0.1, 0.2, 0.35, 0.5, 0.65, 0.8, 0.92}
	n := 20000
	reps := o.Reps * 4 // success rates need more resolution
	if o.Quick {
		gammas = []float64{0.1, 0.5, 0.9}
		n = 4000
		reps = o.Reps
	}
	t := harness.NewTable(
		"§2.2 remark — γ sweep: running time vs stability (k=16, α=1.3)",
		[]string{"gamma"},
		[]string{"steps", "success_rate", "generations"},
	)
	for _, g := range gammas {
		g := g
		agg := o.replicate(reps, func(rep uint64) harness.Metrics {
			res, err := syncgen.Run(syncgen.Config{
				N: n, K: 16, Alpha: 1.3, Gamma: g,
				Seed: mergeSeed(o.Seed+1000, rep),
			})
			if err != nil {
				panic(fmt.Sprintf("experiments: GammaSweep: %v", err))
			}
			return harness.Metrics{
				"steps":       float64(res.Steps),
				"generations": float64(len(res.Generations)),
				"success_rate": boolMetric(res.Outcome.PluralityWon &&
					res.Outcome.FullConsensus),
			}
		})
		t.Append(map[string]float64{"gamma": g}, agg)
	}
	return t
}

// TailGenerations validates Lemma 11 and Lemma 25: once the bias exceeds k,
// only about log log_k n further generations are needed, and with a hugely
// dominant color O(1) suffice. Reported: generations spent before and after
// the bias first exceeded k.
func TailGenerations(o Opts) *harness.Table {
	o = o.normalize()
	ks := []int{2, 4, 16, 64}
	n := 50000
	if o.Quick {
		ks = []int{2, 16}
		n = 10000
	}
	t := harness.NewTable(
		"Lemma 11/25 — generations before/after the bias exceeds k",
		[]string{"k"},
		[]string{"gens_total", "gens_pre_k", "gens_post_k", "loglogk_n"},
	)
	for _, k := range ks {
		k := k
		agg := o.replicate(o.Reps, func(rep uint64) harness.Metrics {
			res, err := syncgen.Run(syncgen.Config{
				N: n, K: k, Alpha: 1.5, Seed: mergeSeed(o.Seed+1100, rep),
			})
			if err != nil {
				panic(fmt.Sprintf("experiments: TailGenerations: %v", err))
			}
			pre := 0
			for _, ev := range res.Generations {
				bias := ev.EstablishedBias
				if bias == 0 {
					bias = ev.BirthBias
				}
				pre++
				if bias > float64(k) {
					break
				}
			}
			total := len(res.Generations)
			return harness.Metrics{
				"gens_total":  float64(total),
				"gens_pre_k":  float64(pre),
				"gens_post_k": float64(total - pre),
			}
		})
		ll := math.Log2(math.Log(float64(n)) / math.Log(float64(k)))
		if ll < 0 {
			ll = 0
		}
		agg["loglogk_n"] = singleCell(ll)
		t.Append(map[string]float64{"k": float64(k)}, agg)
	}
	return t
}
