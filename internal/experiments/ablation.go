package experiments

import (
	"fmt"

	"plurality/internal/core/leader"
	"plurality/internal/harness"
	"plurality/internal/sim"
)

// Ablations probes the design choices of the single-leader protocol that
// DESIGN.md calls out, beyond what the paper evaluates:
//
//   - the two-choices window C3 (default 2·C1 ≈ two time units,
//     Proposition 16): shorter windows risk under-populated generations,
//     longer ones only add time;
//   - the generation-advance threshold (Algorithm 3's ⌈n/2⌉): lower
//     thresholds advance on noisy estimates, higher ones delay;
//   - signal loss (an extension): the leader's counters run slow under
//     loss; the gen-signal threshold ⌈n/2⌉ becomes unreachable once the
//     loss rate reaches 1 − GenFraction, predicting a sharp cliff at 50%.
func Ablations(o Opts) *harness.Table {
	o = o.normalize()
	n := 2000
	if o.Quick {
		n = 800
	}
	t := harness.NewTable(
		fmt.Sprintf("Ablations — single-leader design knobs (n=%d, k=4, α=2.5)", n),
		[]string{"c3_mult", "gen_fraction", "signal_loss"},
		[]string{"eps_units", "consensus_units", "success_rate"},
	)
	row := func(c3Mult, genFrac, loss float64) {
		agg := o.replicate(o.Reps, func(rep uint64) harness.Metrics {
			cfg := leader.Config{
				N: n, K: 4, Alpha: 2.5,
				GenFraction: genFrac,
				SignalLoss:  loss,
				Seed:        mergeSeed(o.Seed+1500, rep),
			}
			if c3Mult > 0 {
				// C3 is expressed relative to C1; estimate C1 the same way
				// the protocol will so the ratio is exact.
				c1 := leader.EstimateC1(sim.ExpLatency{Rate: 1}, cfg.Seed)
				cfg.C1 = c1
				cfg.C3 = c3Mult * c1
			}
			res, err := leader.Run(cfg)
			if err != nil {
				panic(fmt.Sprintf("experiments: Ablations: %v", err))
			}
			m := harness.Metrics{
				"success_rate": boolMetric(res.Outcome.PluralityWon &&
					res.Outcome.FullConsensus),
			}
			if res.Outcome.EpsReached {
				m["eps_units"] = res.Outcome.EpsTime / res.C1
			}
			if res.Outcome.FullConsensus {
				m["consensus_units"] = res.Outcome.ConsensusTime / res.C1
			}
			return m
		})
		t.Append(map[string]float64{
			"c3_mult": c3Mult, "gen_fraction": genFrac, "signal_loss": loss,
		}, agg)
	}
	c3s := []float64{0.5, 1, 2, 4, 8}
	fracs := []float64{0.25, 0.5, 0.75}
	losses := []float64{0, 0.2, 0.4, 0.6}
	if o.Quick {
		c3s = []float64{2}
		fracs = []float64{0.5}
		losses = []float64{0, 0.4}
	}
	for _, c3 := range c3s {
		row(c3, 0.5, 0)
	}
	for _, f := range fracs {
		if f != 0.5 {
			row(2, f, 0)
		}
	}
	for _, q := range losses {
		if q != 0 {
			row(2, 0.5, q)
		}
	}
	return t
}
