package experiments

import (
	"fmt"
	"math"

	"plurality/internal/core/leader"
	"plurality/internal/core/noleader"
	"plurality/internal/harness"
	"plurality/internal/sim"
	"plurality/internal/stats"
	"plurality/internal/xrand"
)

// Figure1 regenerates the paper's Figure 1: the number of time steps per
// time unit, F⁻¹(0.9) of the waiting time T3, as a function of the expected
// latency 1/λ. Three series are produced: the analytic quantile of the
// Γ(7, β) majorant used in Remark 14, the Monte-Carlo quantile of the exact
// single-leader T3 = max(T2,T2)+T2 + T1 + max(T2,T2)+T2, and the
// multi-leader variant of §4.3. The paper's plot grows linearly in 1/λ on a
// log-log scale; the log-log slope is appended to the caption.
func Figure1(o Opts) *harness.Table {
	o = o.normalize()
	points := 13
	if o.Quick {
		points = 5
	}
	invLambdas := logRange(1, 1000, points)
	t := harness.NewTable(
		"Figure 1 — steps per time unit F⁻¹(0.9) vs expected latency 1/λ",
		[]string{"inv_lambda"},
		[]string{"gamma_majorant", "exact_T3_q90", "multi_leader_q90", "mean_T3", "paper_mean_1p3overlambda"},
	)
	var xs, ys []float64
	for _, il := range invLambdas {
		lambda := 1 / il
		beta := math.Min(1, lambda)
		lat := sim.ExpLatency{Rate: lambda}
		cells := map[string]*stats.Summary{
			"gamma_majorant": singleCell(xrand.GammaQuantile(7, beta, 0.9)),
		}
		exact := &stats.Summary{}
		multi := &stats.Summary{}
		meanT3 := &stats.Summary{}
		for rep := 0; rep < o.Reps; rep++ {
			seed := mergeSeed(o.Seed+100, uint64(rep))
			exact.Add(leader.EstimateC1(lat, seed))
			multi.Add(noleader.EstimateC1(lat, seed))
			// Example 15's closed form E[T3] = 1 + 3/λ: measure the mean of
			// one accumulated latency plus a tick gap... the paper counts
			// E(T3) = 1 + 3/λ for T3 = T1 + T'2 with E[T'2] = 3/(2λ)+... we
			// measure the full round-trip mean for the table.
			r := xrand.New(seed).SplitNamed("meanT3")
			sum := 0.0
			const n = 20000
			for i := 0; i < n; i++ {
				acc := math.Max(r.Exp(lambda), r.Exp(lambda)) + r.Exp(lambda)
				sum += acc + r.Exp(1)
			}
			meanT3.Add(sum / n)
		}
		cells["exact_T3_q90"] = exact
		cells["multi_leader_q90"] = multi
		cells["mean_T3"] = meanT3
		cells["paper_mean_1p3overlambda"] = singleCell(1 + 3/lambda)
		t.Append(map[string]float64{"inv_lambda": il}, cells)
		xs = append(xs, il)
		ys = append(ys, exact.Mean())
	}
	if len(xs) >= 2 {
		t.Caption += "\n" + fitLine("log(exact_T3_q90) ~ log(1/λ)", stats.LogLogFit(xs, ys))
	}
	return t
}

// Figure2 regenerates the paper's Figure 2: the per-generation phase
// diagram of the decentralized protocol. For each generation it reports the
// six marks t̂₀..t̂₅ — first/last leader entering two-choices, sleeping and
// propagation — in time units relative to the generation's birth, which is
// exactly the quantity Proposition 31 constrains.
func Figure2(o Opts) *harness.Table {
	o = o.normalize()
	n := 4000
	if o.Quick {
		n = 1500
	}
	// α is kept small so several generations complete a full
	// two-choices/sleep/propagation cycle before consensus cuts the run
	// short; with large α the late generations are born into an almost
	// monochromatic system and never need their propagation phase.
	t := harness.NewTable(
		"Figure 2 — leader phase marks per generation (time units after generation start)",
		[]string{"gen"},
		[]string{"t0_first_2c", "t1_last_2c", "t2_first_sleep", "t3_last_sleep",
			"t4_first_prop", "t5_last_prop", "prop31a_ok"},
	)
	type mark struct{ vals [6]*stats.Summary }
	marks := map[int]*mark{}
	okByGen := map[int]*stats.Summary{}
	for rep := 0; rep < o.Reps; rep++ {
		res, err := noleader.Run(noleader.Config{
			N: n, K: 4, Alpha: 1.5, Seed: mergeSeed(o.Seed+200, uint64(rep)),
		})
		if err != nil {
			panic(fmt.Sprintf("experiments: Figure2: %v", err))
		}
		unit := res.C1
		for _, ph := range res.PhaseSpans {
			m, ok := marks[ph.Gen]
			if !ok {
				m = &mark{}
				for i := range m.vals {
					m.vals[i] = &stats.Summary{}
				}
				marks[ph.Gen] = m
				okByGen[ph.Gen] = &stats.Summary{}
			}
			base := ph.FirstTwoChoices
			if base < 0 {
				continue
			}
			rel := func(v float64) float64 {
				if v < 0 {
					return math.NaN()
				}
				return (v - base) / unit
			}
			raw := [6]float64{
				rel(ph.FirstTwoChoices), rel(ph.LastTwoChoices),
				rel(ph.FirstSleeping), rel(ph.LastSleeping),
				rel(ph.FirstPropagation), rel(ph.LastPropagation),
			}
			for i, v := range raw {
				if !math.IsNaN(v) {
					m.vals[i].Add(v)
				}
			}
			// Proposition 31(a): every leader is in two-choices before the
			// first one sleeps.
			if ph.FirstSleeping >= 0 && ph.LastTwoChoices >= 0 {
				okByGen[ph.Gen].Add(boolMetric(ph.LastTwoChoices <= ph.FirstSleeping))
			}
		}
	}
	for g := 1; ; g++ {
		m, ok := marks[g]
		if !ok {
			break
		}
		cells := map[string]*stats.Summary{
			"t0_first_2c": m.vals[0], "t1_last_2c": m.vals[1],
			"t2_first_sleep": m.vals[2], "t3_last_sleep": m.vals[3],
			"t4_first_prop": m.vals[4], "t5_last_prop": m.vals[5],
			"prop31a_ok": okByGen[g],
		}
		t.Append(map[string]float64{"gen": float64(g)}, cells)
	}
	return t
}
