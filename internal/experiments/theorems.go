package experiments

import (
	"fmt"
	"math"

	"plurality/internal/core/leader"
	"plurality/internal/core/noleader"
	"plurality/internal/core/syncgen"
	"plurality/internal/harness"
	"plurality/internal/sim"
	"plurality/internal/stats"
)

// Theorem1Scaling validates the synchronous running-time law of Theorem 1:
// O(log k · log log_α k + log log n). It sweeps n at fixed (k, α), k at
// fixed (n, α) and α at fixed (n, k), reporting steps to ε-convergence and
// to full consensus plus the plurality success rate. The n-sweep should be
// nearly flat (log log n), the k-sweep roughly log-linear in k.
func Theorem1Scaling(o Opts) *harness.Table {
	o = o.normalize()
	ns := []int{1000, 4000, 16000, 64000, 256000}
	ks := []int{2, 4, 8, 16, 32, 64}
	alphas := []float64{1.2, 1.5, 2, 3, 5}
	if o.Quick {
		ns = []int{1000, 8000}
		ks = []int{2, 8}
		alphas = []float64{1.5, 3}
	}
	t := harness.NewTable(
		"Theorem 1 — synchronous steps to consensus",
		[]string{"n", "k", "alpha"},
		[]string{"steps", "eps_steps", "generations", "plurality_won"},
	)
	row := func(n, k int, alpha float64) {
		agg := o.replicate(o.Reps, func(rep uint64) harness.Metrics {
			res, err := syncgen.Run(syncgen.Config{
				N: n, K: k, Alpha: alpha,
				Seed:        mergeSeed(o.Seed+300, rep),
				RecordEvery: 1,
			})
			if err != nil {
				panic(fmt.Sprintf("experiments: Theorem1: %v", err))
			}
			m := harness.Metrics{
				"steps":         float64(res.Steps),
				"generations":   float64(len(res.Generations)),
				"plurality_won": boolMetric(res.Outcome.PluralityWon && res.Outcome.FullConsensus),
			}
			if res.Outcome.EpsReached {
				m["eps_steps"] = res.Outcome.EpsTime
			}
			return m
		})
		t.Append(map[string]float64{"n": float64(n), "k": float64(k), "alpha": alpha},
			agg)
	}
	var kxs, kys []float64
	for _, n := range ns {
		row(n, 8, 2)
	}
	for i, k := range ks {
		row(16000, k, 2)
		// Fit ε-convergence steps over the k range the theorem covers
		// (k ≪ √n = 126 here); k = 64 sits at the boundary where full
		// consensus degrades, which is reported in the table but would
		// pollute the law's fit.
		if k*k < 16000 {
			kxs = append(kxs, float64(k))
			r := t.Rows[len(ns)+i]
			if s, ok := r.Cells["eps_steps"]; ok && s.N() > 0 {
				kys = append(kys, s.Mean())
			} else {
				kxs = kxs[:len(kxs)-1]
			}
		}
	}
	for _, a := range alphas {
		row(16000, 8, a)
	}
	if len(kxs) >= 2 {
		t.Caption += "\n" + fitLine("eps_steps ~ log k (k-sweep, k ≪ √n)",
			stats.SemiLogFit(kxs, kys))
	}
	return t
}

// Theorem13Scaling validates the asynchronous single-leader law of
// Theorem 13: ε-convergence in O(log log_α k · log k + log log n) time and
// full consensus after O(log n) more, with times scaling linearly in the
// latency mean through C1.
func Theorem13Scaling(o Opts) *harness.Table {
	o = o.normalize()
	ns := []int{500, 1000, 2000, 4000, 8000}
	lambdas := []float64{0.25, 0.5, 1, 2}
	if o.Quick {
		ns = []int{500, 2000}
		lambdas = []float64{1}
	}
	t := harness.NewTable(
		"Theorem 13 — single-leader asynchronous consensus (times in steps and units)",
		[]string{"n", "inv_lambda"},
		[]string{"eps_time", "consensus_time", "units_eps", "tail_time", "plurality_won"},
	)
	row := func(n int, lambda float64) {
		agg := o.replicate(o.Reps, func(rep uint64) harness.Metrics {
			res, err := leader.Run(leader.Config{
				N: n, K: 8, Alpha: 2,
				Latency: sim.ExpLatency{Rate: lambda},
				Seed:    mergeSeed(o.Seed+400, rep),
			})
			if err != nil {
				panic(fmt.Sprintf("experiments: Theorem13: %v", err))
			}
			m := harness.Metrics{
				"plurality_won": boolMetric(res.Outcome.PluralityWon && res.Outcome.FullConsensus),
			}
			if res.Outcome.EpsReached {
				m["eps_time"] = res.Outcome.EpsTime
				m["units_eps"] = res.Outcome.EpsTime / res.C1
			}
			if res.Outcome.FullConsensus {
				m["consensus_time"] = res.Outcome.ConsensusTime
				if res.Outcome.EpsReached {
					m["tail_time"] = res.Outcome.ConsensusTime - res.Outcome.EpsTime
				}
			}
			return m
		})
		t.Append(map[string]float64{"n": float64(n), "inv_lambda": 1 / lambda}, agg)
	}
	for _, n := range ns {
		row(n, 1)
	}
	for _, l := range lambdas {
		if l != 1 {
			row(2000, l)
		}
	}
	return t
}

// Theorem26HeadToHead compares the decentralized protocol against the
// single-leader protocol on identical workloads: Theorem 26 asserts the
// same asymptotic law, so the unit-normalized times should be within a
// small constant factor.
func Theorem26HeadToHead(o Opts) *harness.Table {
	o = o.normalize()
	ns := []int{1000, 2000, 4000, 8000}
	if o.Quick {
		ns = []int{1000, 2000}
	}
	t := harness.NewTable(
		"Theorem 26 — decentralized vs single leader (time units to ε-convergence)",
		[]string{"n"},
		[]string{"single_units", "multi_units", "multi_over_single",
			"clustering_time", "participating_frac", "multi_won"},
	)
	for _, n := range ns {
		agg := o.replicate(o.Reps, func(rep uint64) harness.Metrics {
			seed := mergeSeed(o.Seed+500, rep)
			single, err := leader.Run(leader.Config{N: n, K: 4, Alpha: 2.5, Seed: seed})
			if err != nil {
				panic(fmt.Sprintf("experiments: Theorem26 single: %v", err))
			}
			multi, err := noleader.Run(noleader.Config{N: n, K: 4, Alpha: 2.5, Seed: seed})
			if err != nil {
				panic(fmt.Sprintf("experiments: Theorem26 multi: %v", err))
			}
			m := harness.Metrics{
				"clustering_time":    multi.ClusteringTime,
				"participating_frac": multi.Clustering.ParticipatingFrac(),
				"multi_won": boolMetric(multi.Outcome.PluralityWon &&
					multi.Outcome.FullConsensus),
			}
			if single.Outcome.EpsReached {
				m["single_units"] = single.Outcome.EpsTime / single.C1
			}
			if multi.Outcome.EpsReached {
				m["multi_units"] = multi.Outcome.EpsTime / multi.C1
			}
			if single.Outcome.EpsReached && multi.Outcome.EpsReached &&
				single.Outcome.EpsTime > 0 {
				m["multi_over_single"] = (multi.Outcome.EpsTime / multi.C1) /
					math.Max(single.Outcome.EpsTime/single.C1, 1e-9)
			}
			return m
		})
		t.Append(map[string]float64{"n": float64(n)}, agg)
	}
	return t
}
