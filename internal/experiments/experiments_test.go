package experiments

import (
	"strings"
	"testing"
)

// All experiments are executed in Quick mode with a single rep: the goal of
// these tests is that every registered experiment runs end to end and emits
// a well-formed table; the scientific content is exercised by
// cmd/experiments and the benchmarks.

func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep skipped in -short mode")
	}
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			tb := spec.Run(Opts{Reps: 1, Quick: true, Seed: 42})
			if tb == nil {
				t.Fatal("nil table")
			}
			if len(tb.Rows) == 0 {
				t.Fatal("empty table")
			}
			out := tb.Render()
			if !strings.Contains(out, "##") {
				t.Error("render missing caption")
			}
			if csv := tb.CSV(); !strings.Contains(csv, ",") {
				t.Error("CSV looks empty")
			}
		})
	}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("fig1"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRegistryUniqueNames(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range All() {
		if seen[s.Name] {
			t.Errorf("duplicate experiment name %q", s.Name)
		}
		seen[s.Name] = true
		if s.ID == "" || s.Paper == "" || s.Run == nil {
			t.Errorf("incomplete spec %+v", s)
		}
	}
}

func TestLogRange(t *testing.T) {
	r := logRange(1, 1000, 4)
	if len(r) != 4 || r[0] != 1 || r[3] != 1000 {
		t.Fatalf("logRange = %v", r)
	}
	for i := 1; i < len(r); i++ {
		if r[i] <= r[i-1] {
			t.Fatalf("logRange not increasing: %v", r)
		}
	}
}

func TestMergeSeedDisperses(t *testing.T) {
	seen := map[uint64]bool{}
	for base := uint64(0); base < 10; base++ {
		for rep := uint64(0); rep < 10; rep++ {
			s := mergeSeed(base, rep)
			if seen[s] {
				t.Fatalf("seed collision at base=%d rep=%d", base, rep)
			}
			seen[s] = true
		}
	}
}
