// Package prof is the shared pprof plumbing of the CLIs: one call wires up
// optional CPU and allocation profiling, and the returned flush is safe to
// invoke from both a defer and an explicit pre-os.Exit path (os.Exit skips
// defers, so error exits must flush by hand).
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath and arranges an allocation
// profile dump to memPath; an empty path disables that profile. It returns
// a flush that stops the CPU profile and writes the allocation profile —
// idempotent, so defer it and also call it before any os.Exit. A profile
// file that cannot be created or written is reported on stderr with exit
// code 1 (for the CPU profile, at Start; for the allocation profile, a
// message at flush time), matching the CLIs' error style.
func Start(cpuPath, memPath string) (flush func()) {
	stopCPU := func() {}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		stopCPU = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	flushed := false
	return func() {
		if flushed {
			return
		}
		flushed = true
		stopCPU()
		if memPath == "" {
			return
		}
		f, err := os.Create(memPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}
}
