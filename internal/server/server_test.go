package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"plurality"
	"plurality/internal/harness"
)

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.pool.Close() })
	return s
}

func do(t *testing.T, s *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

func TestProtocolsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	w := do(t, s, http.MethodGet, "/v1/protocols", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200", w.Code)
	}
	var out []map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("no protocols listed")
	}
	seen := map[string]bool{}
	for _, e := range out {
		name, _ := e["name"].(string)
		if name == "" {
			t.Fatalf("entry missing name: %v", e)
		}
		seen[name] = true
		for _, k := range []string{"family", "checkpointable", "description"} {
			if _, ok := e[k]; !ok {
				t.Errorf("protocol %s missing %q field", name, k)
			}
		}
	}
	if !seen["sync"] || !seen["leader"] {
		t.Fatalf("expected sync and leader in listing, got %v", seen)
	}
}

func TestRunCacheHitMiss(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	body := `{"protocol":"sync","spec":{"n":200,"k":3,"seed":11}}`

	first := do(t, s, http.MethodPost, "/v1/runs", body)
	if first.Code != http.StatusOK {
		t.Fatalf("first run: status %d: %s", first.Code, first.Body)
	}
	if got := first.Header().Get("X-Plurality-Cache"); got != "miss" {
		t.Fatalf("first run cache header = %q, want miss", got)
	}
	before := s.Stats()

	second := do(t, s, http.MethodPost, "/v1/runs", body)
	if second.Code != http.StatusOK {
		t.Fatalf("second run: status %d: %s", second.Code, second.Body)
	}
	if got := second.Header().Get("X-Plurality-Cache"); got != "hit" {
		t.Fatalf("second run cache header = %q, want hit", got)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatal("cached run body differs from computed body")
	}
	after := s.Stats()
	if after.EventsSimulated != before.EventsSimulated {
		t.Fatalf("cache hit simulated %d events", after.EventsSimulated-before.EventsSimulated)
	}
	if after.JobsComputed != before.JobsComputed {
		t.Fatal("cache hit recomputed the job")
	}
	if after.JobsCached != before.JobsCached+1 {
		t.Fatalf("JobsCached went %d -> %d, want +1", before.JobsCached, after.JobsCached)
	}

	// A semantically identical spec written differently (explicit defaults)
	// hits the same cache entry: the key is canonical, not syntactic.
	explicit := `{"protocol":"sync","spec":{"n":200,"k":3,"seed":11,"alpha":1,"sync":{"gamma":0.5}}}`
	third := do(t, s, http.MethodPost, "/v1/runs", explicit)
	if third.Code != http.StatusOK {
		t.Fatalf("third run: status %d: %s", third.Code, third.Body)
	}
	if got := third.Header().Get("X-Plurality-Cache"); got != "hit" {
		t.Fatalf("default-filled spec cache header = %q, want hit", got)
	}
	if !bytes.Equal(first.Body.Bytes(), third.Body.Bytes()) {
		t.Fatal("default-filled spec served different bytes")
	}
}

func TestRunBadRequests(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []struct {
		name, body string
	}{
		{"unknown protocol", `{"protocol":"nope","spec":{"n":100,"k":2,"seed":1}}`},
		{"invalid json", `{"protocol":`},
		{"unknown field", `{"protocol":"sync","spec":{"n":100,"k":2,"seed":1,"typo_field":3}}`},
		{"invalid spec", `{"protocol":"sync","spec":{"n":-5,"k":2,"seed":1}}`},
	}
	for _, c := range cases {
		if w := do(t, s, http.MethodPost, "/v1/runs", c.body); w.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", c.name, w.Code)
		}
	}
	if w := do(t, s, http.MethodGet, "/v1/sweeps/nope", ""); w.Code != http.StatusNotFound {
		t.Errorf("unknown sweep: status = %d, want 404", w.Code)
	}
	if w := do(t, s, http.MethodPost, "/v1/sweeps", `{"protocol":"sync"}`); w.Code != http.StatusBadRequest {
		t.Errorf("invalid sweep base: status = %d, want 400", w.Code)
	}
}

// TestAdmissionControl pins the load-shedding contract: once the queue is
// full, submissions get 429 with a Retry-After hint and no partial
// admission, and capacity freed by finishing jobs is usable again.
func TestAdmissionControl(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueCap: 2})

	// Occupy the lone worker and the whole queue with blocking filler.
	release := make(chan struct{})
	var started sync.WaitGroup
	started.Add(1)
	block := func(ctx context.Context, _ any) error {
		<-release
		return nil
	}
	first := func(ctx context.Context, _ any) error {
		started.Done()
		<-release
		return nil
	}
	if _, ok := s.pool.TrySubmit(first); !ok {
		t.Fatal("could not submit filler job")
	}
	started.Wait() // worker busy; queue empty
	for i := 0; i < 2; i++ {
		if _, ok := s.pool.TrySubmit(block); !ok {
			t.Fatalf("filler %d refused", i)
		}
	}

	body := `{"protocol":"sync","base":{"n":100,"k":2,"seed":1},"reps":2}`
	w := do(t, s, http.MethodPost, "/v1/sweeps", body)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated submit: status = %d, want 429 (%s)", w.Code, w.Body)
	}
	ra := w.Header().Get("Retry-After")
	if ra == "" {
		t.Fatal("429 without Retry-After")
	}
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer", ra)
	}
	// Nothing was partially admitted: the sweep is unknown.
	if got := s.lookupSweepCount(); got != 0 {
		t.Fatalf("refused sweep left %d registrations", got)
	}

	close(release)
	waitIdle(t, s)
	w = do(t, s, http.MethodPost, "/v1/sweeps", body)
	if w.Code != http.StatusOK {
		t.Fatalf("post-drain submit: status = %d, want 200 (%s)", w.Code, w.Body)
	}
}

func (s *Server) lookupSweepCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sweeps)
}

// waitIdle blocks until the pool has no queued or running jobs.
func waitIdle(t *testing.T, s *Server) {
	t.Helper()
	for {
		q, r := s.pool.Pending()
		if q == 0 && r == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSegmentedComputeMatchesUninterrupted pins the serving layer's core
// determinism claim: a job executed as a chain of checkpoint segments —
// including a simulated shutdown between segments and a resume from the
// persisted snapshot — produces a Result deeply equal to one uninterrupted
// run.
func TestSegmentedComputeMatchesUninterrupted(t *testing.T) {
	specs := []struct {
		protocol string
		spec     plurality.Spec
	}{
		{"sync", plurality.Spec{N: 300, K: 3, Seed: 5, DiscardTrajectory: true}},
		{"leader", plurality.Spec{N: 200, K: 3, Alpha: 2, Seed: 7, DiscardTrajectory: true}},
	}
	for _, c := range specs {
		t.Run(c.protocol, func(t *testing.T) {
			plain, err := plurality.Run(context.Background(), c.protocol, c.spec)
			if err != nil {
				t.Fatal(err)
			}

			s := newTestServer(t, Config{Dir: t.TempDir(), CheckpointEvery: 2})
			key, err := jobKey("cell", c.protocol, c.spec)
			if err != nil {
				t.Fatal(err)
			}

			// First attempt suspends after one segment, as SIGTERM would.
			s.testMaxSegments = 1
			if _, err := s.compute(context.Background(), c.protocol, c.spec, key); err != errSuspended {
				t.Fatalf("compute with testMaxSegments=1: err = %v, want errSuspended", err)
			}
			if s.store.LoadJobSnapshot(key) == nil {
				t.Fatal("suspended job left no snapshot")
			}

			// Second attempt resumes the snapshot and runs to completion.
			s.testMaxSegments = 0
			res, err := s.compute(context.Background(), c.protocol, c.spec, key)
			if err != nil {
				t.Fatal(err)
			}
			if res.Snapshot != nil {
				t.Fatal("completed compute returned a snapshot")
			}
			if !reflect.DeepEqual(res, plain) {
				t.Fatalf("segmented result differs from uninterrupted run:\nsegmented:     %+v\nuninterrupted: %+v", res, plain)
			}
			if s.store.LoadJobSnapshot(key) != nil {
				t.Fatal("completed job left its snapshot behind")
			}
		})
	}
}

func TestCacheDiskReload(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	blob := []byte(`{"duration":4}`)
	if err := c1.Put("aabbccdd", blob); err != nil {
		t.Fatal(err)
	}
	c2, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get("aabbccdd")
	if !ok {
		t.Fatal("cache entry lost across reopen")
	}
	if !bytes.Equal(got, blob) {
		t.Fatalf("reloaded blob = %q, want %q", got, blob)
	}
	if _, ok := c2.Get("eeff0011"); ok {
		t.Fatal("cache invented an entry")
	}
}

func TestJobKeyDistinguishesDomains(t *testing.T) {
	spec := plurality.Spec{N: 100, K: 2, Seed: 1}
	run, err := jobKey("run", "sync", spec)
	if err != nil {
		t.Fatal(err)
	}
	cell, err := jobKey("cell", "sync", spec)
	if err != nil {
		t.Fatal(err)
	}
	if run == cell {
		t.Fatal("run and cell domains share a key")
	}
	other, err := jobKey("run", "leader", spec)
	if err != nil {
		t.Fatal(err)
	}
	if run == other {
		t.Fatal("distinct protocols share a key")
	}
}

// TestPoolTypes double-checks the harness wiring the server relies on:
// TrySubmitAll is all-or-nothing even at the exact boundary.
func TestSubmitAllBoundary(t *testing.T) {
	pool := harness.NewPool(1, 2, nil)
	defer pool.Close()
	release := make(chan struct{})
	var started sync.WaitGroup
	started.Add(1)
	pool.TrySubmit(func(ctx context.Context, _ any) error { started.Done(); <-release; return nil })
	started.Wait()
	block := func(ctx context.Context, _ any) error { return nil }
	if _, ok := pool.TrySubmitAll([]harness.Job{block, block, block}); ok {
		t.Fatal("batch beyond capacity was admitted")
	}
	if _, ok := pool.TrySubmitAll([]harness.Job{block, block}); !ok {
		t.Fatal("batch at exactly remaining capacity was refused")
	}
	close(release)
}

// TestRunCacheSharedAcrossShardCounts pins the serving-layer consequence of
// Shards being an execution knob: a leader run computed at one shard count is
// served from cache for requests at every other shard count (including
// serial), byte for byte — the shard count names hardware, not an experiment.
func TestRunCacheSharedAcrossShardCounts(t *testing.T) {
	// CheckpointEvery matches the pluralityd binary's default mode: sharded
	// jobs must bypass segmentation (they reject checkpoints) instead of
	// failing with 400.
	s := newTestServer(t, Config{Workers: 2, CheckpointEvery: 8, Dir: t.TempDir()})

	first := do(t, s, http.MethodPost, "/v1/runs",
		`{"protocol":"leader","spec":{"n":300,"k":3,"alpha":2,"seed":5,"shards":2}}`)
	if first.Code != http.StatusOK {
		t.Fatalf("sharded run: status %d: %s", first.Code, first.Body)
	}
	if got := first.Header().Get("X-Plurality-Cache"); got != "miss" {
		t.Fatalf("sharded run cache header = %q, want miss", got)
	}
	before := s.Stats()

	for _, spec := range []string{
		`{"protocol":"leader","spec":{"n":300,"k":3,"alpha":2,"seed":5,"shards":4}}`,
		`{"protocol":"leader","spec":{"n":300,"k":3,"alpha":2,"seed":5}}`,
	} {
		w := do(t, s, http.MethodPost, "/v1/runs", spec)
		if w.Code != http.StatusOK {
			t.Fatalf("status %d: %s", w.Code, w.Body)
		}
		if got := w.Header().Get("X-Plurality-Cache"); got != "hit" {
			t.Fatalf("spec %s cache header = %q, want hit", spec, got)
		}
		if !bytes.Equal(first.Body.Bytes(), w.Body.Bytes()) {
			t.Fatalf("spec %s served different bytes than the sharded original", spec)
		}
	}
	if after := s.Stats(); after.JobsComputed != before.JobsComputed {
		t.Fatal("shard-count variants recomputed the job")
	}
}
