// Package server is the simulation-as-a-service layer behind cmd/pluralityd:
// an HTTP/JSON daemon that accepts run and sweep specs, fans cells ×
// replications onto a bounded harness.Pool with explicit admission control
// (bounded queue, 429 + Retry-After when saturated), streams per-cell
// results as NDJSON while a sweep is still computing, and caches every
// completed job in a content-addressed store keyed by
// Spec.CanonicalBytes — so repeated or overlapping sweeps are served
// byte-identically and instantly, with zero simulation work.
//
// Jobs survive restarts: sweep manifests persist on submission, long cells
// run as checkpoint segments whose snapshots land in the store, graceful
// shutdown drains in-flight cells to their latest snapshot, and the next
// boot recovers every unfinished sweep and resumes its missing jobs —
// cached jobs are never recomputed, snapshotted jobs continue via Resume
// rather than restarting. Determinism is the product guarantee: a cell
// served from cache, computed fresh, or completed across a restart is the
// same bytes.
package server

import (
	"encoding/json"
	"fmt"

	"plurality"
)

// RunRequest is the body of POST /v1/runs: one protocol run, executed (or
// served from cache) synchronously. Checkpoint requests are stripped — the
// serving layer owns checkpointing — and Observer has no wire form.
type RunRequest struct {
	// Protocol is the registered protocol name to run.
	Protocol string `json:"protocol"`
	// Spec is the run's configuration.
	Spec plurality.Spec `json:"spec"`
}

// SweepRequest is the body of POST /v1/sweeps: the serializable subset of
// plurality.SweepConfig. Metrics are always the standard set (functions
// have no wire form) and the executor decides worker counts — results are
// worker-count-invariant, so neither limits what a client can express.
type SweepRequest struct {
	// Protocol is the registered protocol name to sweep.
	Protocol string `json:"protocol"`
	// Base is the Spec shared by every grid point (SweepConfig.Base).
	Base plurality.Spec `json:"base"`
	// Ns, Ks and Alphas are the grid axes; an empty axis means the single
	// value from Base.
	Ns     []int     `json:"ns,omitempty"`
	Ks     []int     `json:"ks,omitempty"`
	Alphas []float64 `json:"alphas,omitempty"`
	// Topologies is the interaction-graph axis (SweepConfig.Topologies).
	Topologies []plurality.TopologySpec `json:"topologies,omitempty"`
	// Adversaries is the fault-model axis (SweepConfig.Adversaries).
	Adversaries []plurality.AdversarySpec `json:"adversaries,omitempty"`
	// Reps is the number of seeded replications per grid point; 0 means
	// the sweep default (5).
	Reps int `json:"reps,omitempty"`
}

// Config converts the request to the SweepConfig a local Sweep would run,
// which is also how the server plans it — one code path, identical cells.
func (r SweepRequest) Config() plurality.SweepConfig {
	return plurality.SweepConfig{
		Protocol:    r.Protocol,
		Base:        r.Base,
		Ns:          r.Ns,
		Ks:          r.Ks,
		Alphas:      r.Alphas,
		Topologies:  r.Topologies,
		Adversaries: r.Adversaries,
		Reps:        r.Reps,
	}
}

// SweepStatus is the body of GET /v1/sweeps/{id}: submission identity plus
// progress counters. Jobs are (cell, replication) units; cells complete
// when all their replications have.
type SweepStatus struct {
	ID         string `json:"id"`
	Protocol   string `json:"protocol"`
	Status     string `json:"status"` // "running", "done" or "failed"
	TotalCells int    `json:"total_cells"`
	DoneCells  int    `json:"done_cells"`
	TotalJobs  int    `json:"total_jobs"`
	DoneJobs   int    `json:"done_jobs"`
	// CachedJobs counts the done jobs that were served from the result
	// cache rather than simulated.
	CachedJobs int    `json:"cached_jobs"`
	Error      string `json:"error,omitempty"`
}

// Stats is the body of GET /v1/stats: the server's monotonic work counters
// plus the current pool load. EventsSimulated not moving across a
// resubmission is the observable proof the cache served it.
type Stats struct {
	JobsComputed    uint64 `json:"jobs_computed"`
	JobsCached      uint64 `json:"jobs_cached"`
	SegmentsRun     uint64 `json:"segments_run"`
	EventsSimulated uint64 `json:"events_simulated"`
	QueuedJobs      int    `json:"queued_jobs"`
	RunningJobs     int    `json:"running_jobs"`
}

// streamTrailer is the final NDJSON line of a completed sweep stream.
type streamTrailer struct {
	Done  bool `json:"done"`
	Cells int  `json:"cells"`
}

// streamError is the final NDJSON line of a failed or interrupted stream.
type streamError struct {
	Error string `json:"error"`
}

// EncodeCell renders one aggregated sweep cell as its canonical NDJSON
// line (without the trailing newline). It is the single encoder shared by
// the server's live streams, stream replays and cmd/sweep's -ndjson local
// output, so "cached cell bytes equal freshly computed cell bytes" is a
// statement about one encoding, not two.
func EncodeCell(c plurality.SweepCell) ([]byte, error) {
	b, err := json.Marshal(c)
	if err != nil {
		return nil, fmt.Errorf("server: encoding sweep cell: %w", err)
	}
	return b, nil
}
