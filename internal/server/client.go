package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// StreamSweep is the thin-client mode of cmd/sweep: submit req to a running
// pluralityd at baseURL and copy the sweep's NDJSON cell lines to w as they
// arrive. It returns once the server's completion trailer has been seen, an
// error line arrives (returned as an error), or ctx is cancelled. Cell
// lines pass through byte-for-byte — the client adds nothing, so piping to
// a file yields exactly what a local `sweep -ndjson` run would have
// written.
func StreamSweep(ctx context.Context, baseURL string, req SweepRequest, w io.Writer) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("sweep: encoding request: %w", err)
	}
	url := strings.TrimSuffix(baseURL, "/") + "/v1/sweeps"
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if resp.StatusCode == http.StatusTooManyRequests {
			return fmt.Errorf("sweep: server saturated (retry after %ss): %s",
				resp.Header.Get("Retry-After"), strings.TrimSpace(string(msg)))
		}
		return fmt.Errorf("sweep: server returned %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		// Control lines carry "done" or "error" keys; cell lines never do
		// (cell metrics nest under "metrics").
		var ctl struct {
			Done  *bool  `json:"done"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(line, &ctl); err == nil {
			if ctl.Error != "" {
				return fmt.Errorf("sweep: server: %s", ctl.Error)
			}
			if ctl.Done != nil {
				return nil
			}
		}
		// Write the newline separately: appending to the scanner's token
		// would scribble on its internal buffer.
		if _, err := w.Write(line); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("sweep: reading stream: %w", err)
	}
	return errors.New("sweep: stream ended without a completion trailer")
}
