package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"plurality"
)

// BenchmarkServeCachedCell measures — and asserts — the cache-hit serving
// path: after warming one small sweep, every resubmission must be served
// with zero simulation work (no events, no segments, no computed jobs) and
// a bounded allocation budget per served cell. CI's bench smoke runs this
// with -benchtime 1x, so the assertions gate merges even when nobody reads
// the numbers.
func BenchmarkServeCachedCell(b *testing.B) {
	srv, err := New(Config{Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.pool.Close()

	req := SweepRequest{
		Protocol: "sync",
		Base:     plurality.Spec{N: 100, K: 3, Seed: 21},
		Ns:       []int{60, 100},
		Reps:     2,
	}
	body, err := json.Marshal(req)
	if err != nil {
		b.Fatal(err)
	}
	serve := func() int {
		r := httptest.NewRequest(http.MethodPost, "/v1/sweeps", bytes.NewReader(body))
		w := httptest.NewRecorder()
		srv.Handler().ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			b.Fatalf("sweep submit: status %d: %s", w.Code, w.Body)
		}
		return w.Body.Len()
	}
	serve() // warm: compute every job once
	warm := srv.Stats()
	if warm.JobsComputed == 0 {
		b.Fatal("warm-up did no work")
	}
	const cells = 2

	allocs := testing.AllocsPerRun(5, func() { serve() })
	if perCell := allocs / cells; perCell > 2000 {
		b.Fatalf("cache-hit path allocates %.0f per served cell, budget 2000", perCell)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serve()
	}
	b.StopTimer()

	after := srv.Stats()
	if after.EventsSimulated != warm.EventsSimulated {
		b.Fatalf("cache-hit path simulated %d events", after.EventsSimulated-warm.EventsSimulated)
	}
	if after.JobsComputed != warm.JobsComputed {
		b.Fatalf("cache-hit path recomputed %d jobs", after.JobsComputed-warm.JobsComputed)
	}
	if after.SegmentsRun != warm.SegmentsRun {
		b.Fatalf("cache-hit path ran %d segments", after.SegmentsRun-warm.SegmentsRun)
	}
}
