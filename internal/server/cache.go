package server

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"plurality"
)

// jobKey returns the content address of one unit of work: hex SHA-256 over
// a domain tag ("cell" for sweep jobs, "run" for single runs — the two
// store different value encodings), the protocol name and the spec's
// canonical bytes. The replication seed is already folded into the spec by
// SweepPlan.JobSpec, so (protocol, spec) alone identifies the job; equal
// keys imply equal Results, which is what makes the cache sound.
func jobKey(domain, protocol string, spec plurality.Spec) (string, error) {
	cb, err := spec.CanonicalBytes()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	var lp [8]byte
	binary.LittleEndian.PutUint64(lp[:], uint64(len(domain)))
	h.Write(lp[:])
	h.Write([]byte(domain))
	binary.LittleEndian.PutUint64(lp[:], uint64(len(protocol)))
	h.Write(lp[:])
	h.Write([]byte(protocol))
	h.Write(cb)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// encodeMetrics renders a job's measurement map as its cached value.
// json.Marshal sorts map keys and renders floats in shortest-round-trip
// form, so the encoding is deterministic and lossless — a decoded map
// aggregates into byte-identical cells.
func encodeMetrics(m map[string]float64) ([]byte, error) {
	b, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("server: encoding metrics: %w", err)
	}
	return b, nil
}

// decodeMetrics parses a cached job value.
func decodeMetrics(b []byte) (map[string]float64, error) {
	var m map[string]float64
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("server: corrupt cached metrics: %w", err)
	}
	return m, nil
}

// Cache is the content-addressed result store: immutable blobs under hex
// SHA-256 keys, held in memory and (when dir is set) mirrored to disk so
// results survive restarts. Writes go through a temp file + rename, so a
// crash can truncate at most a temp file, never a published entry; a blob,
// once published, is never rewritten — content addresses make overwrites
// meaningless.
type Cache struct {
	mu  sync.RWMutex
	mem map[string][]byte
	dir string // "" means memory-only
}

// NewCache opens (creating if needed) a cache rooted at dir; dir "" builds
// a memory-only cache.
func NewCache(dir string) (*Cache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("server: creating cache dir: %w", err)
		}
	}
	return &Cache{mem: make(map[string][]byte), dir: dir}, nil
}

func (c *Cache) path(key string) string {
	// Shard by key prefix so no single directory accumulates every entry.
	return filepath.Join(c.dir, key[:2], key[2:])
}

// Get returns the blob stored under key. Disk entries from earlier boots
// are promoted into memory on first hit.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.RLock()
	b, ok := c.mem[key]
	c.mu.RUnlock()
	if ok {
		return b, true
	}
	if c.dir == "" || len(key) < 3 {
		return nil, false
	}
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	c.mu.Lock()
	c.mem[key] = b
	c.mu.Unlock()
	return b, true
}

// Put publishes blob under key. The blob is copied, so callers may reuse
// their buffer.
func (c *Cache) Put(key string, blob []byte) error {
	cp := append([]byte(nil), blob...)
	c.mu.Lock()
	_, exists := c.mem[key]
	if !exists {
		c.mem[key] = cp
	}
	c.mu.Unlock()
	if exists || c.dir == "" || len(key) < 3 {
		return nil
	}
	dir := filepath.Dir(c.path(key))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("server: creating cache shard: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("server: staging cache entry: %w", err)
	}
	if _, err := tmp.Write(cp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("server: writing cache entry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("server: closing cache entry: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("server: publishing cache entry: %w", err)
	}
	return nil
}
