package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Manifest is the durable record of one submitted sweep — everything the
// next boot needs to re-plan it. The request, not the plan, is persisted:
// plans are deterministic functions of requests, so re-planning on recovery
// reproduces the identical job list (and therefore identical cache keys).
type Manifest struct {
	// ID is the sweep's content-derived identifier.
	ID string `json:"id"`
	// Request is the submission, verbatim.
	Request SweepRequest `json:"request"`
	// Done records that every job completed; done sweeps are recovered as
	// pure cache replays.
	Done bool `json:"done"`
}

// Store persists what must survive a restart: sweep manifests and the
// per-job checkpoint snapshots of in-flight cells. A nil *Store (no
// persistence directory configured) is valid and makes every method a
// no-op, so the serving paths never branch on persistence being enabled.
type Store struct {
	dir string
}

// NewStore opens (creating if needed) a store rooted at dir; dir "" returns
// a nil store, meaning no persistence.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, nil
	}
	for _, sub := range []string{"sweeps", "snaps"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("server: creating store dir: %w", err)
		}
	}
	return &Store{dir: dir}, nil
}

// SaveManifest durably records a sweep submission (temp file + rename, so
// a crash never leaves a half-written manifest).
func (s *Store) SaveManifest(m Manifest) error {
	if s == nil {
		return nil
	}
	b, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("server: encoding manifest: %w", err)
	}
	path := filepath.Join(s.dir, "sweeps", m.ID+".json")
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("server: staging manifest: %w", err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("server: writing manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("server: closing manifest: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("server: publishing manifest: %w", err)
	}
	return nil
}

// LoadManifests returns every persisted sweep manifest, unreadable entries
// skipped (a half-written temp file must not block boot).
func (s *Store) LoadManifests() []Manifest {
	if s == nil {
		return nil
	}
	entries, err := os.ReadDir(filepath.Join(s.dir, "sweeps"))
	if err != nil {
		return nil
	}
	var out []Manifest
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(s.dir, "sweeps", e.Name()))
		if err != nil {
			continue
		}
		var m Manifest
		if err := json.Unmarshal(b, &m); err != nil || m.ID == "" {
			continue
		}
		out = append(out, m)
	}
	return out
}

// SaveJobSnapshot persists the latest checkpoint segment of an in-flight
// job under its cache key, replacing any earlier segment.
func (s *Store) SaveJobSnapshot(key string, blob []byte) error {
	if s == nil {
		return nil
	}
	path := s.snapPath(key)
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("server: staging snapshot: %w", err)
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("server: writing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("server: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("server: publishing snapshot: %w", err)
	}
	return nil
}

// LoadJobSnapshot returns the persisted snapshot blob for a job, or nil.
func (s *Store) LoadJobSnapshot(key string) []byte {
	if s == nil {
		return nil
	}
	b, err := os.ReadFile(s.snapPath(key))
	if err != nil {
		return nil
	}
	return b
}

// DeleteJobSnapshot removes a job's snapshot once the job has completed
// (its result now lives in the cache).
func (s *Store) DeleteJobSnapshot(key string) {
	if s == nil {
		return
	}
	os.Remove(s.snapPath(key))
}

func (s *Store) snapPath(key string) string {
	return filepath.Join(s.dir, "snaps", key+".snap")
}
