package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"plurality"
	"plurality/internal/harness"
)

// Config parameterizes a Server.
type Config struct {
	// Dir is the persistence root (result cache, sweep manifests, job
	// snapshots); "" runs fully in memory — restarts then start cold, but
	// every other behaviour is identical.
	Dir string
	// Workers bounds the simulation pool; <= 0 means GOMAXPROCS.
	Workers int
	// QueueCap bounds the admission queue; submissions that would exceed
	// it are refused with 429. <= 0 means 4096.
	QueueCap int
	// CheckpointEvery is the checkpoint segment length in the protocol's
	// native clock (virtual time or rounds): jobs run as a chain of
	// Halt-at-SnapshotAt segments, persisting a snapshot after each, so a
	// shutdown loses at most one segment of work. <= 0 disables
	// segmentation (jobs run to completion in one piece). Ignored without
	// a persistence Dir.
	CheckpointEvery float64
	// MaxBodyBytes bounds request bodies; <= 0 means 8 MiB.
	MaxBodyBytes int64
}

// errSuspended marks a job interrupted by drain with its progress
// persisted; the next boot's recovery resumes it from the stored snapshot.
var errSuspended = errors.New("server: job suspended for shutdown")

// Server is the pluralityd serving core: HTTP handlers over a bounded
// worker pool, a content-addressed result cache and a restart-safe store.
// Construct with New, serve Handler(), stop with Shutdown.
type Server struct {
	cfg   Config
	pool  *harness.Pool
	cache *Cache
	store *Store
	mux   *http.ServeMux

	mu     sync.Mutex
	sweeps map[string]*sweepState

	draining atomic.Bool
	drainCh  chan struct{}

	jobsComputed    atomic.Uint64
	jobsCached      atomic.Uint64
	segmentsRun     atomic.Uint64
	eventsSimulated atomic.Uint64

	// testMaxSegments, when positive, suspends every job after that many
	// checkpoint segments — the deterministic stand-in for "SIGTERM arrived
	// mid-job" in the restart-resume tests.
	testMaxSegments int
}

// New builds a Server, recovering every unfinished persisted sweep: cached
// jobs are replayed from the result cache, snapshotted jobs resume from
// their last checkpoint segment, and only the remainder is simulated from
// scratch.
func New(cfg Config) (*Server, error) {
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 4096
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	cacheDir := ""
	if cfg.Dir != "" {
		cacheDir = filepath.Join(cfg.Dir, "cas")
	}
	cache, err := NewCache(cacheDir)
	if err != nil {
		return nil, err
	}
	store, err := NewStore(cfg.Dir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		pool:    harness.NewPool(cfg.Workers, cfg.QueueCap, nil),
		cache:   cache,
		store:   store,
		sweeps:  make(map[string]*sweepState),
		drainCh: make(chan struct{}),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/protocols", s.handleProtocols)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/runs", s.handleRun)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSweepSubmit)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweepStatus)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/stream", s.handleSweepStream)
	if err := s.recoverSweeps(); err != nil {
		return nil, err
	}
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Stats snapshots the server's work counters and pool load.
func (s *Server) Stats() Stats {
	queued, running := s.pool.Pending()
	return Stats{
		JobsComputed:    s.jobsComputed.Load(),
		JobsCached:      s.jobsCached.Load(),
		SegmentsRun:     s.segmentsRun.Load(),
		EventsSimulated: s.eventsSimulated.Load(),
		QueuedJobs:      queued,
		RunningJobs:     running,
	}
}

// Shutdown drains the server gracefully: admission stops (new work gets
// 503, open streams are told to reconnect after restart), in-flight jobs
// finish their current checkpoint segment, persist it and suspend. When ctx
// expires first, outstanding job contexts are cancelled — the last persisted
// segment still resumes on next boot, only the segment in flight is lost.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.draining.CompareAndSwap(false, true) {
		close(s.drainCh)
	}
	return s.pool.Drain(ctx)
}

// recoverSweeps re-registers every persisted sweep at boot. Manifests store
// requests, and planning is deterministic, so the recovered job list — and
// every cache key — is identical to the original submission's; the cache
// probe then replays finished jobs and only the rest is enqueued.
func (s *Server) recoverSweeps() error {
	for _, m := range s.store.LoadManifests() {
		if _, _, err := s.registerSweep(m.Request); err != nil {
			return fmt.Errorf("server: recovering sweep %s: %w", m.ID, err)
		}
	}
	return nil
}

// registerSweep plans, deduplicates, cache-probes and enqueues a sweep
// submission. The returned status code is the HTTP code a handler should
// fail with when err != nil (400 for bad requests, 429 when admission is
// refused, 503 while draining).
func (s *Server) registerSweep(req SweepRequest) (*sweepState, int, error) {
	plan, err := req.Config().Plan()
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	keys := make([]string, plan.Jobs())
	tmp := &sweepState{plan: plan} // jobSpec needs only the plan
	for job := range keys {
		key, err := jobKey("cell", plan.Protocol, tmp.jobSpec(job))
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		keys[job] = key
	}
	id := sweepID(plan.Protocol, plan.Reps, keys)

	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.sweeps[id]; ok {
		return st, http.StatusOK, nil // resubmission joins the existing sweep
	}
	st := newSweepState(id, req, plan, keys)
	// Probe the cache first: jobs already computed — by an earlier boot, an
	// overlapping sweep or a prior identical submission — replay without
	// touching the pool or the admission budget.
	var missing []int
	for job, key := range keys {
		if blob, ok := s.cache.Get(key); ok {
			if m, err := decodeMetrics(blob); err == nil {
				s.jobsCached.Add(1)
				st.jobDone(job, m, true)
				continue
			}
		}
		missing = append(missing, job)
	}
	if len(missing) > 0 {
		if s.draining.Load() {
			return nil, http.StatusServiceUnavailable, errors.New("server draining; resubmit after restart")
		}
		jobs := make([]harness.Job, len(missing))
		for i, job := range missing {
			jobs[i] = s.cellJob(st, job)
		}
		handles, ok := s.pool.TrySubmitAll(jobs)
		if !ok {
			return nil, http.StatusTooManyRequests,
				fmt.Errorf("queue full: %d jobs would exceed capacity %d", len(missing), s.cfg.QueueCap)
		}
		st.handles = handles
	}
	s.sweeps[id] = st
	if err := s.store.SaveManifest(Manifest{ID: id, Request: req, Done: len(missing) == 0}); err != nil {
		// The sweep still runs this boot; only restart durability degraded.
		// Nothing sensible to do beyond serving what we have.
		_ = err
	}
	return st, http.StatusOK, nil
}

// cellJob builds the pool job for one (cell, replication) unit: re-check
// the cache (an overlapping sweep may have computed the key since
// admission), otherwise simulate — segmented under CheckpointEvery — and
// publish the measurements.
func (s *Server) cellJob(st *sweepState, job int) harness.Job {
	return func(ctx context.Context, _ any) error {
		if st.failedMsg() != "" {
			return nil
		}
		key := st.keys[job]
		if blob, ok := s.cache.Get(key); ok {
			if m, err := decodeMetrics(blob); err == nil {
				s.jobsCached.Add(1)
				s.finishJob(st, job, m, true)
				return nil
			}
		}
		res, err := s.compute(ctx, st.plan.Protocol, st.jobSpec(job), key)
		if err != nil {
			if errors.Is(err, errSuspended) || ctx.Err() != nil {
				return nil // progress persisted; the next boot resumes it
			}
			st.fail(err.Error())
			return nil
		}
		m := plurality.StandardMetrics(res)
		if blob, err := encodeMetrics(m); err == nil {
			if err := s.cache.Put(key, blob); err != nil {
				_ = err // cache write failure only costs future reuse
			}
		}
		s.jobsComputed.Add(1)
		s.finishJob(st, job, m, false)
		return nil
	}
}

// finishJob records a job result and persists the manifest's Done bit when
// it was the sweep's last.
func (s *Server) finishJob(st *sweepState, job int, m map[string]float64, cached bool) {
	if st.jobDone(job, m, cached) {
		if err := s.store.SaveManifest(Manifest{ID: st.id, Request: st.req, Done: true}); err != nil {
			_ = err
		}
	}
}

// compute runs one job to completion, as a chain of checkpoint segments
// when segmentation is on: run (or resume) with Halt at the next
// SnapshotAt, persist the captured snapshot, repeat. A draining server
// suspends between segments with its progress already durable; the final
// segment returns the complete Result — bit-identical to an uninterrupted
// run, which is the snapshot subsystem's roundtrip guarantee.
func (s *Server) compute(ctx context.Context, protocol string, spec plurality.Spec, key string) (*plurality.Result, error) {
	every := s.cfg.CheckpointEvery
	segmented := every > 0 && s.store != nil
	if segmented {
		if info, err := plurality.Info(protocol); err != nil || !info.Checkpointable {
			segmented = false
		}
	}
	if spec.Shards > 1 {
		// Sharded runs reject checkpointing (the snapshot format assumes the
		// serial kernel's single pending set), so they run in one piece; the
		// cache key is shard-independent, so a completed result still serves
		// every shard count.
		segmented = false
	}
	var snap *plurality.Snapshot
	if segmented {
		if blob := s.store.LoadJobSnapshot(key); blob != nil {
			if dec, err := plurality.DecodeSnapshot(blob); err == nil {
				snap = dec // resume an earlier boot's progress
			}
			// Undecodable snapshots (version skew, torn write despite the
			// rename protocol) just recompute from scratch.
		}
	}
	segments := 0
	for {
		if s.draining.Load() && snap != nil {
			return nil, errSuspended
		}
		var (
			res *plurality.Result
			err error
		)
		if snap == nil {
			runSpec := spec
			if segmented {
				runSpec.Checkpoint = plurality.CheckpointSpec{SnapshotAt: every, Halt: true}
			}
			res, err = plurality.Run(ctx, protocol, runSpec)
		} else {
			opts := &plurality.ResumeOptions{DiscardTrajectory: spec.DiscardTrajectory}
			if segmented {
				opts.Checkpoint = plurality.CheckpointSpec{SnapshotAt: snap.Meta().Time + every, Halt: true}
			}
			res, err = plurality.Resume(ctx, snap, opts)
		}
		if err != nil {
			return nil, err
		}
		s.segmentsRun.Add(1)
		segments++
		if res.Snapshot != nil { // halted at the segment boundary
			snap = res.Snapshot
			if blob, err := snap.Encode(); err == nil {
				if err := s.store.SaveJobSnapshot(key, blob); err != nil {
					_ = err // persistence failure only costs restart resume
				}
			}
			if s.testMaxSegments > 0 && segments >= s.testMaxSegments {
				return nil, errSuspended
			}
			continue
		}
		s.eventsSimulated.Add(resultEvents(res, spec.N))
		s.store.DeleteJobSnapshot(key)
		return res, nil
	}
}

// resultEvents is the run's work metric: executed kernel events for
// event-driven protocols, rounds × n for round-based ones (mirroring the
// bench layer's accounting).
func resultEvents(res *plurality.Result, n int) uint64 {
	if ev, ok := res.Stats["events"]; ok {
		return uint64(ev)
	}
	return uint64(res.Duration) * uint64(n)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ok\n"))
}

func (s *Server) handleProtocols(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		Name           string `json:"name"`
		Family         string `json:"family"`
		Async          bool   `json:"async"`
		TopologyAware  bool   `json:"topology_aware"`
		Checkpointable bool   `json:"checkpointable"`
		Description    string `json:"description"`
	}
	names := plurality.Protocols()
	sort.Strings(names)
	out := make([]entry, 0, len(names))
	for _, name := range names {
		info, err := plurality.Info(name)
		if err != nil {
			continue
		}
		out = append(out, entry{
			Name: info.Name, Family: info.Family, Async: info.Async,
			TopologyAware: info.TopologyAware, Checkpointable: info.Checkpointable,
			Description: info.Description,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleRun executes (or serves from cache) one run synchronously. The
// response body is the complete Result JSON; the X-Plurality-Cache header
// says which path served it.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if !decodeBody(w, r, s.cfg.MaxBodyBytes, &req) {
		return
	}
	spec := req.Spec
	spec.Checkpoint = plurality.CheckpointSpec{} // the serving layer owns checkpointing
	if _, err := plurality.Lookup(req.Protocol); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	key, err := jobKey("run", req.Protocol, spec)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if blob, ok := s.cache.Get(key); ok {
		s.jobsCached.Add(1)
		w.Header().Set("X-Plurality-Cache", "hit")
		w.Header().Set("Content-Type", "application/json")
		w.Write(blob)
		return
	}
	if s.draining.Load() {
		http.Error(w, "server draining; resubmit after restart", http.StatusServiceUnavailable)
		return
	}
	var (
		res    *plurality.Result
		runErr error
	)
	h, ok := s.pool.TrySubmit(func(ctx context.Context, _ any) error {
		res, runErr = s.compute(ctx, req.Protocol, spec, key)
		return nil
	})
	if !ok {
		s.refuse(w)
		return
	}
	select {
	case <-h.Done():
	case <-r.Context().Done():
		h.Cancel()
		<-h.Done()
	}
	if runErr != nil {
		code := http.StatusBadRequest
		if errors.Is(runErr, errSuspended) || r.Context().Err() != nil {
			code = http.StatusServiceUnavailable
		}
		http.Error(w, runErr.Error(), code)
		return
	}
	blob, err := json.Marshal(res)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.jobsComputed.Add(1)
	if err := s.cache.Put(key, blob); err != nil {
		_ = err
	}
	w.Header().Set("X-Plurality-Cache", "miss")
	w.Header().Set("Content-Type", "application/json")
	w.Write(blob)
}

// handleSweepSubmit registers a sweep and — unless ?async=1 asked for just
// the ID — streams its cells as NDJSON, in grid order, as they complete.
func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !decodeBody(w, r, s.cfg.MaxBodyBytes, &req) {
		return
	}
	st, code, err := s.registerSweep(req)
	if err != nil {
		if code == http.StatusTooManyRequests {
			s.refuse(w)
			return
		}
		http.Error(w, err.Error(), code)
		return
	}
	if r.URL.Query().Get("async") == "1" {
		writeJSON(w, http.StatusAccepted, st.status())
		return
	}
	s.streamSweep(w, r, st)
}

func (s *Server) handleSweepStatus(w http.ResponseWriter, r *http.Request) {
	st := s.lookupSweep(r.PathValue("id"))
	if st == nil {
		http.Error(w, "unknown sweep", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, st.status())
}

// handleSweepStream replays and follows a sweep's NDJSON cell stream —
// the reconnect path after a dropped submit stream or a server restart.
func (s *Server) handleSweepStream(w http.ResponseWriter, r *http.Request) {
	st := s.lookupSweep(r.PathValue("id"))
	if st == nil {
		http.Error(w, "unknown sweep", http.StatusNotFound)
		return
	}
	s.streamSweep(w, r, st)
}

func (s *Server) lookupSweep(id string) *sweepState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sweeps[id]
}

// streamSweep writes the sweep's cells as NDJSON in grid order, flushing
// each line as it completes, then a {"done":true} trailer — or an
// {"error":...} line on failure or interruption. Cells stream while later
// cells are still computing; a fully cached sweep streams instantly.
func (s *Server) streamSweep(w http.ResponseWriter, r *http.Request, st *sweepState) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Plurality-Sweep", st.id)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	writeLine := func(v any) bool {
		b, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return false
		}
		flush()
		return true
	}
	for i := range st.plan.Cells {
		line, errMsg := st.waitCell(r.Context(), i, s.drainCh)
		if errMsg != "" {
			writeLine(streamError{Error: errMsg})
			return
		}
		// Write the newline separately: line is a shared immutable slice
		// (concurrent streams serve the same cell), so appending to it
		// could race on its backing array.
		if _, err := w.Write(line); err != nil {
			return // client went away; the sweep keeps running
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return
		}
		flush()
	}
	writeLine(streamTrailer{Done: true, Cells: len(st.plan.Cells)})
}

// refuse sheds load: 429 with a Retry-After estimated from the queue depth
// and worker count.
func (s *Server) refuse(w http.ResponseWriter) {
	queued, running := s.pool.Pending()
	workers := s.cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	retry := 1 + (queued+running)/workers
	if retry > 60 {
		retry = 60
	}
	w.Header().Set("Retry-After", strconv.Itoa(retry))
	http.Error(w, "queue full, retry later", http.StatusTooManyRequests)
}

// decodeBody parses a bounded JSON request body, rejecting unknown fields
// so spec typos fail loudly instead of silently running the default.
func decodeBody(w http.ResponseWriter, r *http.Request, limit int64, v any) bool {
	dec := json.NewDecoder(io.LimitReader(r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(b, '\n'))
}
