package server

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"

	"plurality"
	"plurality/internal/harness"
)

// sweepID derives a sweep's identifier from its content: the protocol,
// replication count and every job's cache key. Identical submissions —
// whatever their field order on the wire — therefore share an ID, which is
// what turns a resubmission into a join rather than a duplicate.
func sweepID(protocol string, reps int, keys []string) string {
	h := sha256.New()
	h.Write([]byte("sweep"))
	h.Write([]byte(protocol))
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(reps))
	h.Write(b[:])
	for _, k := range keys {
		h.Write([]byte(k))
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// sweepState is one sweep's in-memory execution state. Job results arrive
// in any order from the pool; cells are encoded the moment their last
// replication lands, in replication order, so the cell bytes are identical
// for every completion order — the same invariant plurality.Sweep's
// index-addressed slots provide.
type sweepState struct {
	id   string
	req  SweepRequest
	plan *plurality.SweepPlan
	keys []string // job index (cell*reps + rep) → cache key

	mu         sync.Mutex
	update     chan struct{} // closed and replaced on every state change
	repMetrics [][]map[string]float64
	repDone    []int
	cellLines  [][]byte
	doneCells  int
	doneJobs   int
	cachedJobs int
	failed     string
	handles    []*harness.JobHandle
}

func newSweepState(id string, req SweepRequest, plan *plurality.SweepPlan, keys []string) *sweepState {
	st := &sweepState{
		id: id, req: req, plan: plan, keys: keys,
		update:     make(chan struct{}),
		repMetrics: make([][]map[string]float64, len(plan.Cells)),
		repDone:    make([]int, len(plan.Cells)),
		cellLines:  make([][]byte, len(plan.Cells)),
	}
	for i := range st.repMetrics {
		st.repMetrics[i] = make([]map[string]float64, plan.Reps)
	}
	return st
}

func (st *sweepState) lock()   { st.mu.Lock() }
func (st *sweepState) unlock() { st.mu.Unlock() }

// broadcast wakes every stream waiting on this sweep; call locked.
func (st *sweepState) broadcast() {
	close(st.update)
	st.update = make(chan struct{})
}

// jobSpec is the exact Spec job runs — the planned cell spec with the
// replication seed, trajectory recording off (cell metrics never need it
// and O(1) recording keeps big cells affordable) and client checkpoint
// requests stripped (the serving layer owns checkpointing). The cache key
// is computed over this same spec, so the key names precisely the work
// performed.
func (st *sweepState) jobSpec(job int) plurality.Spec {
	reps := st.plan.Reps
	s := st.plan.JobSpec(job/reps, job%reps)
	s.DiscardTrajectory = true
	s.Observer = nil
	s.Checkpoint = plurality.CheckpointSpec{}
	return s
}

// jobDone records one job's measurements and, when its cell's replication
// set is complete, aggregates and encodes the cell line. It returns whether
// the whole sweep just completed. Call unlocked.
func (st *sweepState) jobDone(job int, m map[string]float64, cached bool) (sweepDone bool) {
	reps := st.plan.Reps
	cell, rep := job/reps, job%reps
	st.lock()
	defer st.unlock()
	if st.failed != "" || st.repMetrics[cell][rep] != nil {
		return false
	}
	st.repMetrics[cell][rep] = m
	st.repDone[cell]++
	st.doneJobs++
	if cached {
		st.cachedJobs++
	}
	if st.repDone[cell] == reps {
		pc := st.plan.Cells[cell]
		line, err := EncodeCell(plurality.SweepCell{
			N: pc.N, K: pc.K, Alpha: pc.Alpha,
			Topology: pc.Topology, Adversary: pc.Adversary,
			Metrics: plurality.AggregateCellMetrics(st.repMetrics[cell]),
		})
		if err != nil {
			st.failLocked(err.Error())
			return false
		}
		st.cellLines[cell] = line
		st.doneCells++
	}
	st.broadcast()
	return st.doneJobs == st.plan.Jobs()
}

// fail marks the sweep failed (first error wins) and cancels its
// outstanding jobs. Call unlocked.
func (st *sweepState) fail(msg string) {
	st.lock()
	st.failLocked(msg)
	st.unlock()
}

func (st *sweepState) failLocked(msg string) {
	if st.failed != "" {
		return
	}
	st.failed = msg
	for _, h := range st.handles {
		h.Cancel()
	}
	st.broadcast()
}

// failedMsg returns the failure message, or "".
func (st *sweepState) failedMsg() string {
	st.lock()
	defer st.unlock()
	return st.failed
}

// status snapshots the sweep's progress.
func (st *sweepState) status() SweepStatus {
	st.lock()
	defer st.unlock()
	s := SweepStatus{
		ID:         st.id,
		Protocol:   st.plan.Protocol,
		Status:     "running",
		TotalCells: len(st.plan.Cells),
		DoneCells:  st.doneCells,
		TotalJobs:  st.plan.Jobs(),
		DoneJobs:   st.doneJobs,
		CachedJobs: st.cachedJobs,
		Error:      st.failed,
	}
	switch {
	case st.failed != "":
		s.Status = "failed"
	case st.doneJobs == st.plan.Jobs():
		s.Status = "done"
	}
	return s
}

// waitCell blocks until cell i's line is available (returned), the sweep
// has failed (its message returned), or ctx/drain ends the wait (an error
// message naming the resume path returned). Cell lines are immutable once
// set, so the returned slice may be written to the wire unlocked.
func (st *sweepState) waitCell(ctx context.Context, i int, drain <-chan struct{}) (line []byte, errMsg string) {
	for {
		st.lock()
		if st.failed != "" {
			msg := st.failed
			st.unlock()
			return nil, msg
		}
		if st.cellLines[i] != nil {
			line := st.cellLines[i]
			st.unlock()
			return line, ""
		}
		update := st.update
		st.unlock()
		select {
		case <-update:
		case <-ctx.Done():
			return nil, "client went away"
		case <-drain:
			return nil, "server draining; reconnect to GET /v1/sweeps/" + st.id + "/stream after restart"
		}
	}
}
