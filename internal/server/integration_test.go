package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"plurality"
)

// integrationMatrix is the sweep every end-to-end test drives: two
// protocols (one round-based, one event-driven) × two adversaries (none and
// crash churn), small enough to finish in seconds.
var integrationProtocols = []string{"sync", "leader"}

func integrationRequest(protocol string) SweepRequest {
	return SweepRequest{
		Protocol: protocol,
		Base:     plurality.Spec{N: 120, K: 3, Alpha: 2, Seed: 9},
		Ns:       []int{80, 120},
		Adversaries: []plurality.AdversarySpec{
			{},
			{Kind: plurality.AdversaryCrash, Fraction: 0.2},
		},
		Reps: 2,
	}
}

// referenceCellLines computes the sweep locally — the same plurality.Sweep a
// library user would call — and encodes each cell with the shared encoder.
// These bytes are the contract every serving path must reproduce exactly.
func referenceCellLines(t *testing.T, req SweepRequest) [][]byte {
	t.Helper()
	res, err := plurality.Sweep(context.Background(), req.Config())
	if err != nil {
		t.Fatal(err)
	}
	lines := make([][]byte, len(res.Cells))
	for i, c := range res.Cells {
		line, err := EncodeCell(c)
		if err != nil {
			t.Fatal(err)
		}
		lines[i] = line
	}
	return lines
}

// splitStream parses an NDJSON sweep stream into its cell lines, asserting
// it ends with a well-formed completion trailer.
func splitStream(t *testing.T, body []byte) [][]byte {
	t.Helper()
	raw := bytes.Split(bytes.TrimSuffix(body, []byte("\n")), []byte("\n"))
	if len(raw) == 0 {
		t.Fatal("empty stream")
	}
	var trailer streamTrailer
	last := raw[len(raw)-1]
	if err := json.Unmarshal(last, &trailer); err != nil || !trailer.Done {
		t.Fatalf("stream did not end with a done trailer: %q", last)
	}
	cells := raw[:len(raw)-1]
	if trailer.Cells != len(cells) {
		t.Fatalf("trailer says %d cells, stream carried %d", trailer.Cells, len(cells))
	}
	return cells
}

func assertLinesEqual(t *testing.T, got, want [][]byte, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d cell lines, want %d", label, len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("%s: cell %d differs:\ngot:  %s\nwant: %s", label, i, got[i], want[i])
		}
	}
}

func postSweep(t *testing.T, url string, req SweepRequest) []byte {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep submit: status %d: %s", resp.StatusCode, buf.String())
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	if resp.Header.Get("X-Plurality-Sweep") == "" {
		t.Fatal("stream missing X-Plurality-Sweep id header")
	}
	return buf.Bytes()
}

// TestIntegrationSweepServeStreamCache drives the full product claim for
// two protocols × two adversaries: a server-streamed sweep reproduces the
// local library computation byte-for-byte, and a second server booted from
// the same store serves the resubmission entirely from the content-addressed
// cache — identical bytes, zero simulation work.
func TestIntegrationSweepServeStreamCache(t *testing.T) {
	for _, protocol := range integrationProtocols {
		t.Run(protocol, func(t *testing.T) {
			req := integrationRequest(protocol)
			want := referenceCellLines(t, req)
			dir := t.TempDir()

			srvA := newTestServer(t, Config{Dir: dir, Workers: 4})
			tsA := httptest.NewServer(srvA.Handler())
			defer tsA.Close()

			fresh := postSweep(t, tsA.URL, req)
			assertLinesEqual(t, splitStream(t, fresh), want, "fresh stream vs local Sweep")
			statsA := srvA.Stats()
			if statsA.EventsSimulated == 0 || statsA.JobsComputed == 0 {
				t.Fatalf("fresh sweep did no work: %+v", statsA)
			}

			// Same process, same request: the submission joins the finished
			// sweep and replays its immutable cell lines.
			replay := postSweep(t, tsA.URL, req)
			if !bytes.Equal(replay, fresh) {
				t.Fatal("in-process resubmission bytes differ")
			}
			if after := srvA.Stats(); after.EventsSimulated != statsA.EventsSimulated {
				t.Fatal("in-process resubmission simulated events")
			}

			// Fresh process over the same store: recovery sees the done
			// manifest, the cache probe replays every job, and the stream is
			// byte-identical — the content-addressed cache at work.
			srvB := newTestServer(t, Config{Dir: dir, Workers: 4})
			tsB := httptest.NewServer(srvB.Handler())
			defer tsB.Close()

			cached := postSweep(t, tsB.URL, req)
			if !bytes.Equal(cached, fresh) {
				t.Fatal("cache-served sweep bytes differ from freshly computed sweep")
			}
			statsB := srvB.Stats()
			if statsB.EventsSimulated != 0 || statsB.JobsComputed != 0 || statsB.SegmentsRun != 0 {
				t.Fatalf("cache-served sweep did simulation work: %+v", statsB)
			}
			wantJobs := uint64(len(want) * req.Reps)
			if statsB.JobsCached != wantJobs {
				t.Fatalf("JobsCached = %d, want %d", statsB.JobsCached, wantJobs)
			}

			// An overlapping sweep (one shared n) reuses the shared cells'
			// cached jobs and only computes the new ones.
			overlap := req
			overlap.Ns = []int{120, 160}
			got := splitStream(t, postSweep(t, tsB.URL, overlap))
			wantOverlap := referenceCellLines(t, overlap)
			assertLinesEqual(t, got, wantOverlap, "overlapping sweep")
			statsB2 := srvB.Stats()
			// 2 adversaries × 2 reps = 4 jobs per n; n=120 was cached.
			if delta := statsB2.JobsCached - statsB.JobsCached; delta != 4 {
				t.Fatalf("overlap reused %d cached jobs, want 4", delta)
			}
			if delta := statsB2.JobsComputed - statsB.JobsComputed; delta != 4 {
				t.Fatalf("overlap computed %d jobs, want 4", delta)
			}
		})
	}
}

// TestIntegrationRestartResume proves jobs survive restarts: a draining
// server suspends mid-sweep with every in-flight job checkpointed, and the
// next boot recovers the manifest, resumes the snapshots and completes the
// sweep with bytes identical to an uninterrupted run.
func TestIntegrationRestartResume(t *testing.T) {
	req := integrationRequest("sync")
	want := referenceCellLines(t, req)
	dir := t.TempDir()

	// Server A checkpoints every 2 rounds and suspends each job after its
	// first segment — the deterministic stand-in for SIGTERM arriving with
	// the whole sweep in flight.
	srvA, err := New(Config{Dir: dir, Workers: 2, CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	srvA.testMaxSegments = 1
	tsA := httptest.NewServer(srvA.Handler())

	body, _ := json.Marshal(req)
	resp, err := http.Post(tsA.URL+"/v1/sweeps?async=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var status SweepStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || status.ID == "" {
		t.Fatalf("async submit: status %d, id %q", resp.StatusCode, status.ID)
	}

	// Every job runs one segment and suspends; none completes.
	waitIdleAny(t, srvA)
	if st := srvA.lookupSweep(status.ID).status(); st.DoneJobs != 0 {
		t.Fatalf("testMaxSegments=1 let %d jobs complete", st.DoneJobs)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srvA.Shutdown(drainCtx); err != nil {
		t.Fatal(err)
	}
	tsA.Close()

	snaps, err := filepath.Glob(filepath.Join(dir, "snaps", "*.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("drained server persisted no job snapshots")
	}

	// Server B boots from the store: the manifest re-registers the sweep,
	// every job resumes its snapshot, and the sweep completes.
	srvB := newTestServer(t, Config{Dir: dir, Workers: 2, CheckpointEvery: 2})
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()

	if srvB.lookupSweep(status.ID) == nil {
		t.Fatalf("recovered server does not know sweep %s", status.ID)
	}
	streamResp, err := http.Get(tsB.URL + "/v1/sweeps/" + status.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(streamResp.Body); err != nil {
		t.Fatal(err)
	}
	streamResp.Body.Close()
	assertLinesEqual(t, splitStream(t, buf.Bytes()), want, "resumed sweep vs uninterrupted reference")

	// The resumed jobs really continued from their snapshots rather than
	// restarting: server B never ran a job's first segment from scratch
	// (it would have re-persisted a fresh round-2 snapshot either way, so
	// the observable proof is the snapshot files are consumed)...
	waitIdleAny(t, srvB)
	snaps, err = filepath.Glob(filepath.Join(dir, "snaps", "*.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 0 {
		t.Fatalf("%d job snapshots left after completion", len(snaps))
	}
	// ...and the completed sweep's manifest is marked done, so a third boot
	// replays it from cache alone.
	var m Manifest
	mb, err := os.ReadFile(filepath.Join(dir, "sweeps", status.ID+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(mb, &m); err != nil || !m.Done {
		t.Fatalf("manifest not marked done after completion: %s", mb)
	}
}

func waitIdleAny(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		q, r := s.pool.Pending()
		if q == 0 && r == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool never went idle (%d queued, %d running)", q, r)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestIntegrationConcurrentClients streams one sweep to many simultaneous
// clients — a mix of submitters (who all join the same content-derived
// sweep) and followers on the stream endpoint — and requires every client
// to observe identical bytes. Run under -race, this is also the data-race
// proof for the shared cell lines.
func TestIntegrationConcurrentClients(t *testing.T) {
	req := integrationRequest("sync")
	want := referenceCellLines(t, req)

	srv := newTestServer(t, Config{Workers: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const clients = 8
	streams := make([][]byte, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var buf bytes.Buffer
			errs[i] = StreamSweep(context.Background(), ts.URL, req, &buf)
			streams[i] = buf.Bytes()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	// StreamSweep strips the trailer, so each client's bytes are exactly
	// the cell lines.
	wantBody := &bytes.Buffer{}
	for _, line := range want {
		wantBody.Write(line)
		wantBody.WriteByte('\n')
	}
	for i := range streams {
		if !bytes.Equal(streams[i], wantBody.Bytes()) {
			t.Fatalf("client %d observed different bytes than the reference", i)
		}
	}

	// Followers on the replay endpoint see the same cells plus the trailer.
	id := func() string {
		srv.mu.Lock()
		defer srv.mu.Unlock()
		for id := range srv.sweeps {
			return id
		}
		return ""
	}()
	if id == "" {
		t.Fatal("sweep not registered")
	}
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	assertLinesEqual(t, splitStream(t, buf.Bytes()), want, "replay endpoint")

	// Status agrees the work happened exactly once.
	stResp, err := http.Get(ts.URL + "/v1/sweeps/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var st SweepStatus
	if err := json.NewDecoder(stResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	stResp.Body.Close()
	if st.Status != "done" || st.DoneJobs != st.TotalJobs {
		t.Fatalf("status after completion: %+v", st)
	}
	if got := srv.Stats().JobsComputed; got != uint64(st.TotalJobs) {
		t.Fatalf("JobsComputed = %d, want %d (each job exactly once)", got, st.TotalJobs)
	}
}

// TestIntegrationStreamWhileRunning asserts streaming is genuinely
// incremental: the first cell line arrives while later jobs are still
// queued behind a deliberately slowed pool.
func TestIntegrationStreamWhileRunning(t *testing.T) {
	req := integrationRequest("sync")
	srv := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Read just the first line: it must be a well-formed cell the progress
	// endpoint already counts as done, even though the response is still
	// open and later cells may still be computing.
	rd := bufio.NewReader(resp.Body)
	first, err := rd.ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	var cell plurality.SweepCell
	if err := json.Unmarshal(first, &cell); err != nil {
		t.Fatalf("first stream line is not a cell: %q", first)
	}
	id := resp.Header.Get("X-Plurality-Sweep")
	stResp, err := http.Get(ts.URL + "/v1/sweeps/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var st SweepStatus
	if err := json.NewDecoder(stResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	stResp.Body.Close()
	if st.DoneCells == 0 {
		t.Fatal("stream delivered a cell the server says is not done")
	}
	if _, err := io.Copy(io.Discard, rd); err != nil {
		t.Fatal(err)
	}
}
