package plurality

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestExportedDocs fails on undocumented exported identifiers in the root
// package — the public API is the contract, and the CI docs job runs this
// lint so a new exported name cannot land without a doc comment. The rules
// follow the classic golint/revive "exported" rule: every exported
// function, method (on an exported receiver), type, const and var needs a
// doc comment; a group doc on a const/var/type block covers its specs.
func TestExportedDocs(t *testing.T) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	var missing []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: exported %s %s has no doc comment",
			filepath.Base(p.Filename), p.Line, kind, name))
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", name, err)
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || d.Doc != nil {
					continue
				}
				kind := "function"
				if d.Recv != nil {
					if !exportedReceiver(d.Recv) {
						continue // method on an unexported type
					}
					kind = "method"
				}
				report(d.Pos(), kind, d.Name.Name)
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
							report(s.Pos(), "type", s.Name.Name)
						}
					case *ast.ValueSpec:
						for _, id := range s.Names {
							if id.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
								report(id.Pos(), strings.ToLower(d.Tok.String()), id.Name)
							}
						}
					}
				}
			}
		}
	}
	if len(missing) > 0 {
		t.Errorf("%d undocumented exported identifiers:\n%s",
			len(missing), strings.Join(missing, "\n"))
	}
}

// exportedReceiver reports whether a method receiver names an exported
// type.
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	typ := recv.List[0].Type
	for {
		switch v := typ.(type) {
		case *ast.StarExpr:
			typ = v.X
		case *ast.IndexExpr: // generic receiver
			typ = v.X
		case *ast.Ident:
			return v.IsExported()
		default:
			return false
		}
	}
}
