package plurality

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrUnknownProtocol is wrapped by Run and Lookup when no protocol is
// registered under the requested name.
var ErrUnknownProtocol = errors.New("unknown protocol")

// ProtocolInfo describes a registered protocol.
type ProtocolInfo struct {
	// Name is the registry key, e.g. "sync" or "3-majority".
	Name string
	// Family groups related protocols: "generation" for the paper's three
	// algorithms, "baseline" for the classical dynamics.
	Family string
	// Async reports whether the protocol runs on the asynchronous
	// simulator: its times are virtual time steps and its horizon is
	// Spec.MaxTime. Round-based protocols count synchronous rounds and
	// use Spec.MaxSteps.
	Async bool
	// TopologyAware reports that the protocol honours Spec.Topology: it
	// samples interaction partners through the configured graph rather
	// than assuming the clique. All built-in protocols are topology-aware;
	// externally registered protocols that ignore Spec.Topology should
	// leave this false so listings do not overpromise.
	TopologyAware bool
	// Checkpointable reports that the protocol honours Spec.Checkpoint and
	// implements Resumer, i.e. its runs can be snapshotted mid-flight and
	// resumed bit-exactly. All built-in protocols are checkpointable;
	// external protocols that do not implement the capability must leave
	// this false — Run rejects checkpoint requests against them instead of
	// silently ignoring the request.
	Checkpointable bool
	// Description is a one-line summary for listings.
	Description string
}

// Protocol is one runnable consensus protocol. Implementations registered
// via Register become available to Run under their Info().Name. Run
// validates the Spec before calling the implementation, so a Protocol may
// assume the shared invariants (N >= 2, K >= 1, a well-formed assignment,
// Eps in [0, 1), a buildable latency spec) hold.
type Protocol interface {
	// Info identifies the protocol.
	Info() ProtocolInfo
	// Run executes one run under spec, honouring ctx cancellation.
	Run(ctx context.Context, spec Spec) (*Result, error)
}

var (
	registryMu    sync.RWMutex
	registry      = map[string]Protocol{}
	registryOrder []string
)

// Register adds a protocol to the registry under its Info().Name. The
// built-in protocols self-register; external packages may register
// additional dynamics (new update rules, new schedulers) and have them
// served by Run, the CLIs and the sweep layer without further wiring.
// Register panics on an empty or duplicate name, as registration happens
// at init time where a bad name is a programming error.
func Register(p Protocol) {
	name := p.Info().Name
	if name == "" {
		panic("plurality: Register with empty protocol name")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("plurality: protocol %q registered twice", name))
	}
	registry[name] = p
	registryOrder = append(registryOrder, name)
}

// Protocols returns every registered protocol name in registration order:
// the paper's protocols first ("sync", "leader", "decentralized"), then the
// baselines, then anything registered by the caller.
func Protocols() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return append([]string(nil), registryOrder...)
}

// Lookup resolves a protocol by name, errors.Is-matching
// ErrUnknownProtocol when absent.
func Lookup(name string) (Protocol, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	p, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("plurality: %w %q (have %v)", ErrUnknownProtocol, name, registryOrder)
	}
	return p, nil
}

// Info returns the descriptor of a registered protocol.
func Info(name string) (ProtocolInfo, error) {
	p, err := Lookup(name)
	if err != nil {
		return ProtocolInfo{}, err
	}
	return p.Info(), nil
}

// Run executes one run of the named protocol under spec. It is the single
// entry point behind which every protocol — the paper's three algorithms
// and the classical baselines — lives; Protocols() lists the valid names.
// The spec is validated once here, ctx cancellation and deadlines are
// honoured promptly by every engine (a cancelled run returns ctx.Err()),
// and a nil ctx means context.Background(). Runs are deterministic: the
// same (name, spec) pair, including Seed, yields an identical Result.
func Run(ctx context.Context, name string, spec Spec) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	p, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if spec.Checkpoint.SnapshotAt > 0 && !p.Info().Checkpointable {
		return nil, fmt.Errorf("%w: %q", ErrNoCheckpoint, name)
	}
	return p.Run(ctx, spec)
}
