package plurality

import (
	"fmt"
	"math"

	"plurality/internal/adversary"
	"plurality/internal/xrand"
)

// The registered adversary kinds, valid values of AdversarySpec.Kind. The
// paper's theorems cover the honest model only (no failures, benign Poisson
// scheduling); these adversaries probe how far each protocol degrades when
// that model breaks.
const (
	// AdversaryCrash fail-stops a Fraction of the nodes at time At; with
	// Rate > 0 the victims churn (crash and recover) instead, with Exp(Rate)
	// gaps between toggles.
	AdversaryCrash = "crash"
	// AdversaryDelay stretches each message delivery with probability
	// Fraction by Rate× an extra sample of the run's edge-latency
	// distribution — delays stay bounded by (a multiple of) the latency
	// model. Only the asynchronous protocols carry messages with latency;
	// round-based protocols reject this kind.
	AdversaryDelay = "delay"
	// AdversaryDrop loses each sampled contact's reply independently with
	// probability Fraction.
	AdversaryDrop = "drop"
	// AdversaryByzantine makes a Fraction of the nodes lie about their
	// opinion whenever sampled, reporting the initial runner-up opinion.
	AdversaryByzantine = "byzantine"
)

// Adversaries returns the supported adversary kinds in documentation order.
func Adversaries() []string {
	return []string{AdversaryCrash, AdversaryDelay, AdversaryDrop, AdversaryByzantine}
}

// AdversarySpec selects the fault model of a run (see the Adversary* kind
// constants). The zero value disables the adversary and is guaranteed
// byte-identical to pre-adversary runs for the same seed: adversarial
// randomness lives in its own generator, never in the engines' streams.
// Fields not used by the selected Kind are ignored.
type AdversarySpec struct {
	// Kind names the fault model; "" means no adversary.
	Kind string `json:"kind,omitempty"`
	// Fraction is the affected share — of nodes for crash/byzantine, of
	// messages for delay/drop. 0 means 0.1. Crash requires Fraction < 1
	// (somebody must survive); the others accept (0, 1].
	Fraction float64 `json:"fraction,omitempty"`
	// Rate is kind-specific: the crash adversary's churn rate in toggles
	// per unit time (0 means one-shot, the legacy semantics), and the delay
	// adversary's latency multiplier (0 means 1).
	Rate float64 `json:"rate,omitempty"`
	// At is the virtual time (or round) the crash adversary first acts;
	// 0 means from the start.
	At float64 `json:"at,omitempty"`
	// Seed seeds the adversary's private generator; 0 derives it from
	// Spec.Seed through a dedicated substream, so replications with
	// distinct run seeds face distinct adversarial schedules.
	Seed uint64 `json:"seed,omitempty"`
}

// Enabled reports whether an adversary is configured.
func (a AdversarySpec) Enabled() bool { return a.Kind != "" }

// Label renders the spec compactly for tables and sweep axes, e.g. "none",
// "crash(f=0.3)", "crash(f=0.3,r=2)", "delay(f=0.5,x3)", "byzantine(f=0.1)".
// Knobs still at their zero value are omitted.
func (a AdversarySpec) Label() string {
	if !a.Enabled() {
		return "none"
	}
	s := a.Kind
	if a.Fraction > 0 {
		s += fmt.Sprintf("(f=%.4g", a.Fraction)
	} else {
		s += "(f=0.1"
	}
	switch {
	case a.Kind == AdversaryCrash && a.Rate > 0:
		s += fmt.Sprintf(",r=%.4g", a.Rate)
	case a.Kind == AdversaryDelay && a.Rate > 0:
		s += fmt.Sprintf(",x%.4g", a.Rate)
	}
	return s + ")"
}

// validate checks the spec against the registered kinds and parameter
// domains; Spec.validate calls it before any replication starts.
func (a AdversarySpec) validate() error {
	switch a.Kind {
	case "":
		return nil
	case AdversaryCrash, AdversaryDelay, AdversaryDrop, AdversaryByzantine:
	default:
		return fmt.Errorf("plurality: unknown adversary kind %q (have %v)", a.Kind, Adversaries())
	}
	if a.Fraction < 0 || a.Fraction > 1 || math.IsNaN(a.Fraction) {
		return fmt.Errorf("plurality: Adversary.Fraction %v outside [0, 1]", a.Fraction)
	}
	if a.Kind == AdversaryCrash && a.Fraction == 1 {
		return fmt.Errorf("plurality: crash adversary with Fraction 1 leaves no survivors")
	}
	if a.Rate < 0 || math.IsNaN(a.Rate) || math.IsInf(a.Rate, 0) {
		return fmt.Errorf("plurality: invalid Adversary.Rate %v", a.Rate)
	}
	if a.At < 0 || math.IsNaN(a.At) || math.IsInf(a.At, 0) {
		return fmt.Errorf("plurality: invalid Adversary.At %v", a.At)
	}
	return nil
}

// kind maps the public kind string to the internal enum; call only on a
// validated spec.
func (a AdversarySpec) kind() adversary.Kind {
	switch a.Kind {
	case AdversaryCrash:
		return adversary.Crash
	case AdversaryDelay:
		return adversary.Delay
	case AdversaryDrop:
		return adversary.Drop
	case AdversaryByzantine:
		return adversary.Byzantine
	default:
		return adversary.None
	}
}

// resolveFor fills the defaults in and derives the adversary seed from the
// run seed (mirroring TopologySpec.graphSeed: a dedicated substream, so
// engine randomness is untouched), returning the internal engine-facing
// config. A disabled spec resolves to the zero Config.
func (a AdversarySpec) resolveFor(n int, runSeed uint64) adversary.Config {
	if !a.Enabled() {
		return adversary.Config{}
	}
	cfg := adversary.Config{Kind: a.kind(), Fraction: a.Fraction, Rate: a.Rate, At: a.At, N: n, Seed: a.Seed}
	if cfg.Fraction == 0 {
		cfg.Fraction = 0.1
	}
	if cfg.Kind == adversary.Delay && cfg.Rate == 0 {
		cfg.Rate = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = xrand.New(runSeed).SplitNamed("adversary").Uint64()
	}
	return cfg
}

// advStats appends the adversary's action counters to a protocol's Stats map
// for adversarial runs; honest runs add nothing, keeping default results
// byte-identical to pre-adversary code.
func (a AdversarySpec) advStats(c adversary.Counters, extra map[string]float64) {
	if !a.Enabled() {
		return
	}
	extra["adv_crashes"] = float64(c.Crashes)
	extra["adv_recoveries"] = float64(c.Recoveries)
	extra["adv_drops"] = float64(c.Drops)
	extra["adv_delayed"] = float64(c.Delayed)
	extra["adv_lies"] = float64(c.Lies)
}
