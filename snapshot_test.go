package plurality

import (
	"context"
	"errors"
	"testing"
)

// captureSnapshot runs the named protocol with a halting checkpoint at half
// its natural duration and returns the snapshot plus the uninterrupted
// run's digest.
func captureSnapshot(t *testing.T, name string, spec Spec) (*Snapshot, string) {
	t.Helper()
	ctx := context.Background()
	plain, err := Run(ctx, name, spec)
	if err != nil {
		t.Fatal(err)
	}
	cspec := spec
	cspec.Checkpoint = CheckpointSpec{SnapshotAt: plain.Duration / 2, Halt: true}
	half, err := Run(ctx, name, cspec)
	if err != nil {
		t.Fatal(err)
	}
	if half.Snapshot == nil {
		t.Fatalf("no snapshot captured at t=%g of %g", plain.Duration/2, plain.Duration)
	}
	return half.Snapshot, digestResult(plain)
}

func snapshotSpec() Spec { return Spec{N: 300, K: 3, Alpha: 2, Seed: 42} }

// TestSnapshotVersionRejected pins that a blob recorded under a bumped
// format version fails with ErrSnapshotVersion, not a misparse.
func TestSnapshotVersionRejected(t *testing.T) {
	sn, _ := captureSnapshot(t, "leader", snapshotSpec())
	bumped := *sn
	bumped.meta.FormatVersion = SnapshotFormatVersion + 1
	blob, err := bumped.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSnapshot(blob); !errors.Is(err, ErrSnapshotVersion) {
		t.Errorf("decode of version-%d blob: got %v, want ErrSnapshotVersion",
			SnapshotFormatVersion+1, err)
	}
}

// TestSnapshotTruncationRejected pins that every prefix of a valid blob
// fails with a typed error and never panics.
func TestSnapshotTruncationRejected(t *testing.T) {
	sn, _ := captureSnapshot(t, "3-majority", snapshotSpec())
	blob, err := sn.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(blob); cut++ {
		_, err := DecodeSnapshot(blob[:cut])
		if err == nil {
			t.Fatalf("decode of %d/%d bytes succeeded", cut, len(blob))
		}
		if !errors.Is(err, ErrSnapshotTruncated) && !errors.Is(err, ErrSnapshotCorrupt) &&
			!errors.Is(err, ErrSnapshotFormat) {
			t.Fatalf("decode of %d/%d bytes: untyped error %v", cut, len(blob), err)
		}
	}
}

// TestSnapshotChecksumRejected pins that bit flips anywhere in the blob are
// caught by the CRC.
func TestSnapshotChecksumRejected(t *testing.T) {
	sn, _ := captureSnapshot(t, "sync", snapshotSpec())
	blob, err := sn.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{12, len(blob) / 2, len(blob) - 5} {
		tampered := append([]byte(nil), blob...)
		tampered[pos] ^= 0x40
		if _, err := DecodeSnapshot(tampered); err == nil {
			t.Errorf("decode of blob with bit flip at %d succeeded", pos)
		}
	}
}

// TestResumeTruncatedPayload pins that a payload truncated *behind* a valid
// container (lengths and CRC recomputed, so only the engine decoder can
// catch it) fails Resume with a typed error.
func TestResumeTruncatedPayload(t *testing.T) {
	sn, _ := captureSnapshot(t, "leader", snapshotSpec())
	for _, cut := range []int{0, 10, len(sn.payload) / 2, len(sn.payload) - 1} {
		tampered := &Snapshot{meta: sn.meta, payload: sn.payload[:cut]}
		blob, err := tampered.Encode()
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := DecodeSnapshot(blob)
		if err != nil {
			t.Fatalf("container with %d-byte payload should decode: %v", cut, err)
		}
		_, err = Resume(context.Background(), decoded, nil)
		if err == nil {
			t.Fatalf("resume with %d/%d payload bytes succeeded", cut, len(sn.payload))
		}
		if !errors.Is(err, ErrSnapshotTruncated) && !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("resume with %d/%d payload bytes: untyped error %v", cut, len(sn.payload), err)
		}
	}
}

// TestSnapshotDeterministicEncoding pins that capturing the same state
// twice yields byte-identical blobs — what lets snapshot files themselves
// be content-addressed and golden-tested.
func TestSnapshotDeterministicEncoding(t *testing.T) {
	a, _ := captureSnapshot(t, "leader", snapshotSpec())
	b, _ := captureSnapshot(t, "leader", snapshotSpec())
	ab, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(ab) != string(bb) {
		t.Error("two captures of the same state produced different blobs")
	}
}

// TestResumeObserver pins that a re-attached observer sees only the points
// recorded after the restore while the final trajectory stays complete.
func TestResumeObserver(t *testing.T) {
	sn, _ := captureSnapshot(t, "leader", snapshotSpec())
	at := sn.Meta().Time
	var seen []TrajectoryPoint
	res, err := Resume(context.Background(), sn, &ResumeOptions{
		Observer: ObserverFunc(func(p TrajectoryPoint) { seen = append(seen, p) }),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) == 0 {
		t.Fatal("observer saw no points")
	}
	for _, p := range seen {
		if p.Time <= at {
			t.Errorf("observer saw pre-restore point at t=%g (snapshot at %g)", p.Time, at)
		}
	}
	if len(res.Trajectory) <= len(seen) {
		t.Errorf("final trajectory (%d points) should include the pre-snapshot prefix beyond the %d observed",
			len(res.Trajectory), len(seen))
	}

	// DiscardTrajectory from the restore onward: the restored prefix is
	// kept, post-restore points stream to the observer only.
	discarded, err := Resume(context.Background(), sn, &ResumeOptions{DiscardTrajectory: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(discarded.Trajectory) >= len(res.Trajectory) {
		t.Errorf("discarding resume accumulated %d points, want fewer than the full run's %d",
			len(discarded.Trajectory), len(res.Trajectory))
	}
	for _, p := range discarded.Trajectory {
		if p.Time > at {
			t.Errorf("discarding resume accumulated post-restore point at t=%g", p.Time)
		}
	}
}

// TestResumeHorizonExtension pins the long-horizon use case: a run that
// timed out can be resumed past its original deadline.
func TestResumeHorizonExtension(t *testing.T) {
	spec := snapshotSpec()
	spec.MaxTime = 6 // far too short for consensus at this size
	ctx := context.Background()
	short, err := Run(ctx, "leader", spec)
	if err != nil {
		t.Fatal(err)
	}
	if !short.TimedOut {
		t.Skip("short-horizon run unexpectedly converged")
	}
	cspec := spec
	cspec.Checkpoint = CheckpointSpec{SnapshotAt: 3, Halt: true}
	half, err := Run(ctx, "leader", cspec)
	if err != nil {
		t.Fatal(err)
	}
	if half.Snapshot == nil {
		t.Fatal("no snapshot captured")
	}
	res, err := Resume(ctx, half.Snapshot, &ResumeOptions{MaxTime: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Errorf("resumed run still timed out at extended horizon (duration %g)", res.Duration)
	}
	if res.Duration <= spec.MaxTime {
		t.Errorf("resumed run ended at %g, expected to pass the original deadline %g", res.Duration, spec.MaxTime)
	}
}

// TestRunBatchFromDeterminism pins warm-start batches: replication 0 is the
// exact continuation, replications are worker-count invariant, and distinct
// perturbation labels give distinct (but reproducible) futures.
func TestRunBatchFromDeterminism(t *testing.T) {
	sn, want := captureSnapshot(t, "leader", snapshotSpec())
	ctx := context.Background()
	a, err := RunBatchFrom(ctx, sn, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBatchFrom(ctx, sn, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := digestResult(a[0]); got != want {
		t.Errorf("replication 0 digest %s != uninterrupted %s", got, want)
	}
	for i := range a {
		if digestResult(a[i]) != digestResult(b[i]) {
			t.Errorf("replication %d differs between worker counts", i)
		}
	}
	if digestResult(a[1]) == want || digestResult(a[2]) == want ||
		digestResult(a[1]) == digestResult(a[2]) {
		t.Error("perturbed replications should diverge from the continuation and each other")
	}
}

// TestSweepWarmStart pins the warm-started replication study: one frozen
// cell, Reps resumed futures, and a hard error when structural axes are
// requested.
func TestSweepWarmStart(t *testing.T) {
	sn, _ := captureSnapshot(t, "leader", snapshotSpec())
	ctx := context.Background()
	res, err := Sweep(ctx, SweepConfig{WarmStart: sn, Reps: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 1 {
		t.Fatalf("warm-start sweep produced %d cells, want 1", len(res.Cells))
	}
	cell := res.Cells[0]
	if cell.N != 300 || cell.K != 3 {
		t.Errorf("cell carries %d/%d, want the snapshot's 300/3", cell.N, cell.K)
	}
	if s, ok := cell.Metrics["duration"]; !ok || s.N != 3 {
		t.Errorf("duration summary %+v, want 3 observations", s)
	}
	if _, err := Sweep(ctx, SweepConfig{WarmStart: sn, Ns: []int{100}}); err == nil {
		t.Error("warm-start sweep with a structural axis succeeded, want error")
	}
	if _, err := Sweep(ctx, SweepConfig{WarmStart: sn, Protocol: "sync"}); err == nil {
		t.Error("warm-start sweep with mismatched protocol succeeded, want error")
	}
}

// TestCheckpointSinkStreaming pins the observer-style trigger: the sink
// fires during the run and receives the same snapshot Result.Snapshot
// carries; without Halt the run continues to its normal end.
func TestCheckpointSinkStreaming(t *testing.T) {
	spec := snapshotSpec()
	ctx := context.Background()
	plain, err := Run(ctx, "leader", spec)
	if err != nil {
		t.Fatal(err)
	}
	var streamed *Snapshot
	cspec := spec
	cspec.Checkpoint = CheckpointSpec{
		SnapshotAt: plain.Duration / 2,
		Sink:       func(s *Snapshot) { streamed = s },
	}
	res, err := Run(ctx, "leader", cspec)
	if err != nil {
		t.Fatal(err)
	}
	if streamed == nil || res.Snapshot != streamed {
		t.Fatal("sink did not receive the run's snapshot")
	}
	// Without Halt the run finishes normally and is unperturbed by the
	// capture: the digest matches the checkpoint-free run.
	if digestResult(res) != digestResult(plain) {
		t.Error("non-halting capture perturbed the run")
	}
	// And the captured state resumes to the same end state.
	resumed, err := Resume(ctx, streamed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if digestResult(resumed) != digestResult(plain) {
		t.Error("snapshot from a non-halting capture resumed to a different result")
	}
}

// FuzzDecodeSnapshot pins that the wire-format decoder never panics,
// whatever the input — the checkpoint files cross machine and version
// boundaries, so hostile or rotted bytes must fail typed.
func FuzzDecodeSnapshot(f *testing.F) {
	spec := Spec{N: 64, K: 2, Alpha: 2, Seed: 1}
	ctx := context.Background()
	plain, err := Run(ctx, "two-choices", spec)
	if err != nil {
		f.Fatal(err)
	}
	cspec := spec
	cspec.Checkpoint = CheckpointSpec{SnapshotAt: plain.Duration / 2, Halt: true}
	half, err := Run(ctx, "two-choices", cspec)
	if err != nil {
		f.Fatal(err)
	}
	if half.Snapshot != nil {
		if blob, err := half.Snapshot.Encode(); err == nil {
			f.Add(blob)
			f.Add(blob[:len(blob)/2])
			f.Add(blob[:11])
		}
	}
	// An adversarial blob seeds the corpus too: its payload carries the
	// crash flags, adversary RNG and parked-message suffix the honest blob
	// lacks, so mutations exercise those decode paths.
	aspec := spec
	aspec.Adversary = AdversarySpec{Kind: AdversaryCrash, Fraction: 0.3, Rate: 2}
	aplain, err := Run(ctx, "two-choices", aspec)
	if err != nil {
		f.Fatal(err)
	}
	aspec.Checkpoint = CheckpointSpec{SnapshotAt: aplain.Duration / 2, Halt: true}
	ahalf, err := Run(ctx, "two-choices", aspec)
	if err != nil {
		f.Fatal(err)
	}
	if ahalf.Snapshot != nil {
		if blob, err := ahalf.Snapshot.Encode(); err == nil {
			f.Add(blob)
			f.Add(blob[:len(blob)-3])
		}
	}
	// A sharded (v3) blob rounds out the corpus: its payload leads with the
	// shard count and carries per-shard ladder/clock/RNG sections plus the
	// delay adversary's parked-message arenas.
	sspec := Spec{N: 64, K: 2, Alpha: 2, Seed: 1, Shards: 3,
		Adversary: AdversarySpec{Kind: AdversaryDelay, Fraction: 0.3, Rate: 2}}
	splain, err := Run(ctx, "leader", sspec)
	if err != nil {
		f.Fatal(err)
	}
	sspec.Checkpoint = CheckpointSpec{SnapshotAt: splain.Duration / 2, Halt: true}
	shalf, err := Run(ctx, "leader", sspec)
	if err != nil {
		f.Fatal(err)
	}
	if shalf.Snapshot != nil {
		if blob, err := shalf.Snapshot.Encode(); err == nil {
			f.Add(blob)
			f.Add(blob[:len(blob)-7])
		}
	}
	f.Add([]byte(snapshotMagic))
	f.Add([]byte("PLURSNAPxxxxxxxxxxxx"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		sn, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		// A decodable blob must re-encode cleanly.
		if _, err := sn.Encode(); err != nil {
			t.Errorf("decoded snapshot failed to re-encode: %v", err)
		}
	})
}
