package plurality

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// BenchReport is the machine-readable throughput record of one benchmarked
// run — the unit of the repository's performance trajectory (BENCH_*.json).
// Events are simulator events for asynchronous protocols and node-updates
// (rounds × n) for round-based ones, so events/sec is comparable across a
// protocol's own history but not across protocol families.
type BenchReport struct {
	// Protocol, Topology, N, K, Alpha and Seed identify the benchmarked
	// instance.
	Protocol string  `json:"protocol"`
	Topology string  `json:"topology"`
	N        int     `json:"n"`
	K        int     `json:"k"`
	Alpha    float64 `json:"alpha"`
	Seed     uint64  `json:"seed"`
	// Events is the work metric (see type comment) and WallSeconds the
	// wall-clock duration of the run.
	Events      uint64  `json:"events"`
	WallSeconds float64 `json:"wall_seconds"`
	// EventsPerSec is Events / WallSeconds.
	EventsPerSec float64 `json:"events_per_sec"`
	// WorkUnit names what Events counts: "events" (simulator events, the
	// asynchronous protocols) or "node_updates" (rounds × n, the
	// round-based protocols — the synchronous engine's throughput is
	// node-updates/s, not events/s). The field makes the unit explicit in
	// every report; the events/events_per_sec key names are kept for
	// BENCH_*.json continuity.
	WorkUnit string `json:"work_unit"`
	// AllocBytes and Allocs are the heap traffic of the run (TotalAlloc and
	// Mallocs deltas), and BytesPerEvent / AllocsPerEvent the per-event
	// quotients. The steady-state scheduling path allocates nothing, so
	// AllocsPerEvent is dominated by the O(n) setup and tends to zero as
	// the run length grows.
	AllocBytes     uint64  `json:"alloc_bytes"`
	Allocs         uint64  `json:"allocs"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	// PeakHeapBytes is the maximum live heap observed while the run was in
	// flight, sampled at millisecond granularity (approximate from below).
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
	// GoMaxProcs records the parallelism available to the process and
	// Workers how many the benchmark actually used (1 for a single run).
	GoMaxProcs int `json:"gomaxprocs"`
	Workers    int `json:"workers"`
	// Shards is the sharded-execution degree of the run (Spec.Shards,
	// minimum 1): how many parallel event ladders one run was split across.
	// 1 is the serial kernel.
	Shards int `json:"shards"`
	// Reps is the number of replications a batch benchmark executed (1 for
	// a single run).
	Reps int `json:"reps"`
}

// JSON renders the report as one indented JSON object.
func (r *BenchReport) JSON() string {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		// A flat struct of scalars cannot fail to marshal.
		panic(err)
	}
	return string(b)
}

// heapSampler polls the live heap size in a background goroutine and
// records the maximum, approximating peak heap without instrumenting the
// hot path. The 25ms cadence keeps the stop-the-world cost of
// runtime.ReadMemStats well under 1% of the measured window.
type heapSampler struct {
	stop chan struct{}
	wg   sync.WaitGroup
	peak uint64
}

func startHeapSampler() *heapSampler {
	hs := &heapSampler{stop: make(chan struct{})}
	hs.wg.Add(1)
	go func() {
		defer hs.wg.Done()
		ticker := time.NewTicker(25 * time.Millisecond)
		defer ticker.Stop()
		var ms runtime.MemStats
		for {
			select {
			case <-hs.stop:
				return
			case <-ticker.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > hs.peak {
					hs.peak = ms.HeapAlloc
				}
			}
		}
	}()
	return hs
}

func (hs *heapSampler) finish() uint64 {
	close(hs.stop)
	hs.wg.Wait()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > hs.peak {
		hs.peak = ms.HeapAlloc
	}
	return hs.peak
}

// benchEvents extracts the work metric and its unit from a finished run:
// simulator events for asynchronous protocols, node-updates (rounds × n)
// for round-based ones.
func benchEvents(res *Result, n int) (uint64, string) {
	if ev, ok := res.Stats["events"]; ok {
		return uint64(ev), "events"
	}
	return uint64(res.Duration) * uint64(n), "node_updates"
}

// Bench executes one run of the named protocol with trajectory recording
// disabled and returns its throughput report: events/sec, allocation
// traffic and approximate peak heap. The run itself is the ordinary
// deterministic Run — benchmarking changes measurement, not behaviour.
func Bench(ctx context.Context, name string, spec Spec) (*BenchReport, error) {
	spec = benchSpec(spec)
	return benchRun(ctx, name, spec, 1, 1, func(ctx context.Context) (uint64, string, error) {
		res, err := Run(ctx, name, spec)
		if err != nil {
			return 0, "", err
		}
		events, unit := benchEvents(res, spec.N)
		return events, unit, nil
	})
}

// BenchBatch executes reps seeded replications through RunBatch on the
// given worker bound and reports aggregate throughput: total events across
// all replications over the batch's wall-clock time. Comparing workers=1
// with workers=GOMAXPROCS measures the batch layer's parallel speedup.
func BenchBatch(ctx context.Context, name string, spec Spec, reps, workers int) (*BenchReport, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	spec = benchSpec(spec)
	return benchRun(ctx, name, spec, reps, workers, func(ctx context.Context) (uint64, string, error) {
		results, err := RunBatch(ctx, name, spec, reps, workers)
		if err != nil {
			return 0, "", err
		}
		// Fold the batch into the summed work count; every replication runs
		// the same protocol, so they all report the same unit.
		total, unit := uint64(0), ""
		for _, r := range results {
			ev, u := benchEvents(r, spec.N)
			total += ev
			unit = u
		}
		return total, unit, nil
	})
}

// benchSpec sanitizes a spec for benchmarking: trajectory accumulation and
// observers would measure the recorder and the sink, not the kernel.
func benchSpec(spec Spec) Spec {
	spec.DiscardTrajectory = true
	spec.Observer = nil
	return spec
}

func benchRun(ctx context.Context, name string, spec Spec, reps, workers int,
	run func(context.Context) (uint64, string, error)) (*BenchReport, error) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	hs := startHeapSampler()
	start := time.Now()
	events, unit, err := run(ctx)
	wall := time.Since(start).Seconds()
	peak := hs.finish()
	runtime.ReadMemStats(&m1)
	if err != nil {
		return nil, err
	}
	if events == 0 {
		return nil, fmt.Errorf("plurality: bench of %q produced no events", name)
	}
	rep := &BenchReport{
		Protocol:      name,
		Topology:      spec.Topology.ResolvedLabel(spec.N),
		N:             spec.N,
		K:             spec.K,
		Alpha:         spec.Alpha,
		Seed:          spec.Seed,
		Events:        events,
		WallSeconds:   wall,
		EventsPerSec:  float64(events) / wall,
		WorkUnit:      unit,
		AllocBytes:    m1.TotalAlloc - m0.TotalAlloc,
		Allocs:        m1.Mallocs - m0.Mallocs,
		PeakHeapBytes: peak,
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Workers:       workers,
		Shards:        max(1, spec.Shards),
		Reps:          reps,
	}
	rep.BytesPerEvent = float64(rep.AllocBytes) / float64(events)
	rep.AllocsPerEvent = float64(rep.Allocs) / float64(events)
	return rep, nil
}
