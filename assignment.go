package plurality

import (
	"fmt"

	"plurality/internal/opinion"
	"plurality/internal/xrand"
)

// PlantedBias returns an n-node assignment over k opinions in which opinion
// 0 has multiplicative bias approximately alpha over every other opinion
// (the minority opinions share the remainder evenly — the worst case of the
// paper's Remark 2). The slice is shuffled deterministically from seed.
func PlantedBias(n, k int, alpha float64, seed uint64) ([]int, error) {
	if n < 0 || k <= 0 {
		return nil, fmt.Errorf("plurality: PlantedBias with n=%d k=%d", n, k)
	}
	if alpha < 1 {
		return nil, fmt.Errorf("plurality: PlantedBias with alpha=%v < 1", alpha)
	}
	a := opinion.PlantedBias(n, k, alpha, xrand.New(seed).SplitNamed("assignment"))
	return fromInternal(a), nil
}

// PlantedGap returns an assignment in which opinion 0 has an additive lead
// of about gap supporters over each other opinion.
func PlantedGap(n, k, gap int, seed uint64) ([]int, error) {
	if n < 0 || k <= 0 || gap < 0 {
		return nil, fmt.Errorf("plurality: PlantedGap with n=%d k=%d gap=%d", n, k, gap)
	}
	a := opinion.PlantedGap(n, k, gap, xrand.New(seed).SplitNamed("assignment"))
	return fromInternal(a), nil
}

// UniformAssignment returns i.i.d. uniform opinions — the unbiased α ≈ 1
// stress case.
func UniformAssignment(n, k int, seed uint64) ([]int, error) {
	if n < 0 || k <= 0 {
		return nil, fmt.Errorf("plurality: UniformAssignment with n=%d k=%d", n, k)
	}
	a := opinion.Uniform(n, k, xrand.New(seed).SplitNamed("assignment"))
	return fromInternal(a), nil
}

// ZipfAssignment returns i.i.d. Zipf(s) opinions: opinion i has probability
// proportional to (i+1)^{-s} — a skewed long-tail workload.
func ZipfAssignment(n, k int, s float64, seed uint64) ([]int, error) {
	if n < 0 || k <= 0 || s < 0 {
		return nil, fmt.Errorf("plurality: ZipfAssignment with n=%d k=%d s=%v", n, k, s)
	}
	a := opinion.Zipf(n, k, s, xrand.New(seed).SplitNamed("assignment"))
	return fromInternal(a), nil
}

// Bias returns the multiplicative bias (largest count over second-largest)
// of an assignment over k opinions.
func Bias(assignment []int, k int) (float64, error) {
	a, err := toInternalAssignment(assignment, len(assignment), k)
	if err != nil {
		return 0, err
	}
	return opinion.CountOf(a, k).Bias(), nil
}

// Counts tallies an assignment over k opinions.
func Counts(assignment []int, k int) ([]int, error) {
	a, err := toInternalAssignment(assignment, len(assignment), k)
	if err != nil {
		return nil, err
	}
	return opinion.CountOf(a, k), nil
}

func fromInternal(a []opinion.Opinion) []int {
	out := make([]int, len(a))
	for i, v := range a {
		out[i] = int(v)
	}
	return out
}
